module hypersearch

go 1.22
