GO ?= go

.PHONY: all build vet test race ci faults fuzz

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run the fault campaign: every named scenario must pass its
# invariant replay, and the rerun must be byte-identical.
faults:
	$(GO) run ./cmd/hqfaults -verify

ci: build vet race faults

# Short real fuzz runs of the fault-plan parser and the engine under
# fuzzed fault application (regression corpus always runs under `test`).
fuzz:
	$(GO) test ./internal/faults -fuzz FuzzParse -fuzztime 15s
	$(GO) test ./internal/runtime -fuzz FuzzFaultApplication -fuzztime 20s
