GO ?= go

.PHONY: all build vet test race ci faults fuzz bench bench-smoke

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run the fault campaign: every named scenario must pass its
# invariant replay, and the rerun must be byte-identical.
faults:
	$(GO) run ./cmd/hqfaults -verify

# Full machine-readable benchmark report (compare against the
# committed BENCH_*.json baselines before merging perf changes).
bench:
	$(GO) run ./cmd/hqbench -out BENCH.json

# One-iteration pass over every testing.B benchmark: catches bit-rot
# in the bench harness without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build vet race faults bench-smoke

# Short real fuzz runs of the fault-plan parser and the engine under
# fuzzed fault application (regression corpus always runs under `test`).
fuzz:
	$(GO) test ./internal/faults -fuzz FuzzParse -fuzztime 15s
	$(GO) test ./internal/runtime -fuzz FuzzFaultApplication -fuzztime 20s
