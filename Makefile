GO ?= go

.PHONY: all build vet staticcheck test race ci faults faults-netsim fuzz bench bench-smoke bench-check bench-scale bench-scale-smoke serve-smoke serve-loadtest

# Committed benchmark baseline the regression gate compares against.
BENCH_BASELINE ?= BENCH_pr8.json

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Deeper static analysis when the tool is on PATH; CI images without
# staticcheck (nothing is installed on the fly) skip with a notice
# instead of failing the whole pipeline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run the fault campaign: every named scenario must pass its
# invariant replay, and the rerun must be byte-identical.
faults:
	$(GO) run ./cmd/hqfaults -verify

# Wire-fault smoke: the small-d netsim scenario campaign under the
# race detector, plus a byte-identical -verify replay of the netsim
# scenario family. Full-depth coverage lives in
# TestFaultedRunsTerminateClean (d<=8, plain `test`/`race`).
faults-netsim:
	$(GO) test -race -run 'Faulted|DualValidatorUnderLinkFaults' ./internal/netsim/...
	$(GO) run ./cmd/hqfaults -d 3 -family netsim -verify

# Full machine-readable benchmark report (compare against the
# committed BENCH_*.json baselines before merging perf changes).
bench:
	$(GO) run ./cmd/hqbench -out BENCH.json

# One-iteration pass over every testing.B benchmark: catches bit-rot
# in the bench harness without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regression gate: re-measure the hqbench families and fail if any
# regresses past the committed baseline's tolerance bands (ns/op +25%,
# allocs/op exact-or-better). Prints the offending families.
bench-check:
	$(GO) run ./cmd/hqbench -out /tmp/BENCH_check.json -against $(BENCH_BASELINE)

# Big-board scale gate alone: the implicit-topology families (d>=16,
# megannode board at d=20) re-measured and gated against the committed
# baseline. Subset runs compare only the families they measured, so
# this is the cheap way to revalidate a kernel or board change at
# scale without re-running the whole suite.
bench-scale:
	$(GO) run ./cmd/hqbench -out /tmp/BENCH_scale.json -families clean/d=16,clean/d=20,visibility/d=16,visibility/d=20 -against $(BENCH_BASELINE)

# Scale smoke for CI: just the d=16 points (clean and visibility), so
# every pipeline exercises the implicit-topology engines and their
# closed-form self-checks without paying for the d=20 megannode runs.
bench-scale-smoke:
	$(GO) run ./cmd/hqbench -out /tmp/BENCH_scale_smoke.json -families clean/d=16,visibility/d=16 -against $(BENCH_BASELINE)

# End-to-end smoke of the campaign service: start an hqserved daemon,
# submit a d<=8 campaign over HTTP, require streamed per-run progress,
# resubmit it verbatim and require a byte-identical cache hit, then
# POST /compact, restart the daemon on the compacted journal, and
# require the same campaign served byte-identically from the warmed
# cache (the compaction round-trip).
serve-smoke:
	$(GO) run ./cmd/hqserved -smoke

# The full robustness load test (concurrent mixed campaigns, mid-flight
# cancellation, panic isolation, 429/503 shedding, drain + restart
# resume, compaction under load vs an uncompacted twin, bounded-cache
# eviction) with reportable numbers; the -race variant runs under
# `race` via TestLoadHarness.
serve-loadtest:
	$(GO) run ./cmd/hqserved -loadtest

ci: build vet staticcheck race faults faults-netsim serve-smoke bench-smoke bench-scale-smoke bench-check

# Short real fuzz runs of the fault-plan parser and the engine under
# fuzzed fault application (regression corpus always runs under `test`).
fuzz:
	$(GO) test ./internal/faults -fuzz FuzzParse -fuzztime 15s
	$(GO) test ./internal/runtime -fuzz FuzzFaultApplication -fuzztime 20s
	$(GO) test ./internal/serve -fuzz FuzzParseRequest -fuzztime 10s
	$(GO) test ./internal/serve -fuzz FuzzReadEntries -fuzztime 10s
