// The benchmark suite regenerates every evaluation artefact of the
// paper under testing.B, one benchmark family per experiment row of
// DESIGN.md. Custom metrics carry the paper's quantities (agents,
// moves, steps) alongside wall-clock ns/op:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkCleanAgents -benchtime=1x
package hypersearch

import (
	"fmt"
	"testing"

	"hypersearch/internal/core"
	"hypersearch/internal/envpool"
	"hypersearch/internal/experiments"
	"hypersearch/internal/graph"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/isoperimetry"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netsim"
	"hypersearch/internal/sched"
	"hypersearch/internal/strategy/greedy"
	"hypersearch/internal/strategy/levelsweep"
	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/strategy/treesearch"
	"hypersearch/internal/topologies"
)

// benchDims is the sweep used by the per-theorem benchmarks.
var benchDims = []int{4, 6, 8, 10, 12}

// benchPool reuses one environment per dimension across the whole
// suite — benchmarks run serially, so the unsynchronized pool is safe,
// and allocs/op reflects the pooled steady state that sweeps see.
var benchPool = envpool.New()

// runSpec executes one strategy run on the shared pool and fails the
// benchmark on any invariant violation — a benchmark that lies about
// correctness is worse than a slow one.
func runSpec(b *testing.B, spec core.Spec) metrics.Result {
	b.Helper()
	res, env, err := core.RunWith(spec, benchPool)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Ok() {
		b.Fatalf("invariants violated: %s", res)
	}
	benchPool.Release(env)
	return res
}

// benchStrategy runs a strategy across benchDims, reporting the
// paper's cost measures as custom metrics.
func benchStrategy(b *testing.B, name string) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				last = runSpec(b, core.Spec{Strategy: name, Dim: d})
			}
			b.ReportMetric(float64(last.TeamSize), "agents")
			b.ReportMetric(float64(last.TotalMoves), "moves")
			b.ReportMetric(float64(last.Makespan), "steps")
		})
	}
}

// BenchmarkCleanAgents regenerates experiment T2 (Theorem 2): the team
// size of Algorithm CLEAN across dimensions.
func BenchmarkCleanAgents(b *testing.B) { benchStrategy(b, core.Clean) }

// BenchmarkCleanMoves regenerates experiment T3 (Theorem 3): total
// traffic of Algorithm CLEAN, split by role.
func BenchmarkCleanMoves(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				last = runSpec(b, core.Spec{Strategy: core.Clean, Dim: d})
			}
			b.ReportMetric(float64(last.AgentMoves), "agent-moves")
			b.ReportMetric(float64(last.SyncMoves), "sync-moves")
		})
	}
}

// BenchmarkCleanTime regenerates experiment T4 (Theorem 4): the
// unit-latency makespan of Algorithm CLEAN.
func BenchmarkCleanTime(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				last = runSpec(b, core.Spec{Strategy: core.Clean, Dim: d})
			}
			b.ReportMetric(float64(last.Makespan), "steps")
		})
	}
}

// BenchmarkVisibilityAgents regenerates experiment T5 (Theorem 5):
// n/2 agents for CLEAN WITH VISIBILITY.
func BenchmarkVisibilityAgents(b *testing.B) { benchStrategy(b, core.Visibility) }

// BenchmarkVisibilityTime regenerates experiment T7 (Theorem 7): the
// log n makespan of the visibility strategy.
func BenchmarkVisibilityTime(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				last = runSpec(b, core.Spec{Strategy: core.Visibility, Dim: d})
			}
			if last.Makespan != int64(d) {
				b.Fatalf("makespan %d, want %d", last.Makespan, d)
			}
			b.ReportMetric(float64(last.Makespan), "steps")
		})
	}
}

// BenchmarkVisibilityMoves regenerates experiment T8 (Theorem 8).
func BenchmarkVisibilityMoves(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				last = runSpec(b, core.Spec{Strategy: core.Visibility, Dim: d})
			}
			b.ReportMetric(float64(last.TotalMoves), "moves")
		})
	}
}

// BenchmarkCloning regenerates experiment V1 (Section 5): n-1 moves.
func BenchmarkCloning(b *testing.B) {
	for _, d := range benchDims {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				last = runSpec(b, core.Spec{Strategy: core.Cloning, Dim: d})
			}
			b.ReportMetric(float64(last.TotalMoves), "moves")
			b.ReportMetric(float64(last.TeamSize), "agents")
		})
	}
}

// BenchmarkSynchronous regenerates experiment V2 (Section 5).
func BenchmarkSynchronous(b *testing.B) { benchStrategy(b, core.Synchronous) }

// BenchmarkAllStrategies regenerates experiment X1: the trade-off
// table at one representative size.
func BenchmarkAllStrategies(b *testing.B) {
	const d = 8
	for _, name := range []string{core.Clean, core.Visibility, core.Cloning, core.Synchronous} {
		b.Run(name, func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				last = runSpec(b, core.Spec{Strategy: name, Dim: d})
			}
			b.ReportMetric(float64(last.TeamSize), "agents")
			b.ReportMetric(float64(last.TotalMoves), "moves")
			b.ReportMetric(float64(last.Makespan), "steps")
		})
	}
}

// BenchmarkOptimalSearch regenerates experiment X2: exhaustive minimal
// teams on small hypercubes.
func BenchmarkOptimalSearch(b *testing.B) {
	for d := 2; d <= 4; d++ {
		b.Run(fmt.Sprintf("H_%d", d), func(b *testing.B) {
			h := hypercube.New(d)
			var team float64
			for i := 0; i < b.N; i++ {
				a := optimal.MinimalTeam(h, 0, 10, optimal.Limits{})
				if !a.Feasible {
					b.Fatal("no feasible team found")
				}
				team = float64(a.Team)
			}
			b.ReportMetric(team, "agents")
		})
	}
}

// BenchmarkAdversarialRobustness regenerates experiment X3: both
// strategies under randomized asynchrony (DES adversary).
func BenchmarkAdversarialRobustness(b *testing.B) {
	for _, name := range []string{core.Clean, core.Visibility} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSpec(b, core.Spec{
					Strategy: name, Dim: 6,
					AdversarialLatency: 13, Seed: int64(i),
				})
			}
		})
	}
}

// BenchmarkGoroutineEngine regenerates the concurrent half of X3: the
// real-goroutine runtime under scheduler preemption.
func BenchmarkGoroutineEngine(b *testing.B) {
	for _, name := range []string{core.Clean, core.Visibility} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSpec(b, core.Spec{
					Strategy: name, Dim: 6,
					Engine: core.EngineGoroutines, Seed: int64(i),
				})
			}
		})
	}
}

// BenchmarkNaiveBaseline regenerates experiment X4's cost side: what
// the oblivious sweep spends while failing.
func BenchmarkNaiveBaseline(b *testing.B) {
	for _, d := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("dfs/d=%d", d), func(b *testing.B) {
			var last metrics.Result
			for i := 0; i < b.N; i++ {
				res, env, err := core.RunWith(core.Spec{Strategy: core.NaiveDFS, Dim: d}, benchPool)
				if err != nil {
					b.Fatal(err)
				}
				benchPool.Release(env)
				last = res
			}
			b.ReportMetric(float64(last.Recontaminations), "recontaminations")
		})
	}
}

// BenchmarkTreeSearch regenerates experiment X5: the tree-optimal
// comparator on broadcast trees.
func BenchmarkTreeSearch(b *testing.B) {
	for _, d := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("T(%d)", d), func(b *testing.B) {
			tr := heapqueue.New(d).Graph()
			var team float64
			for i := 0; i < b.N; i++ {
				r, _, _ := treesearch.Execute(tr)
				if !r.Captured {
					b.Fatal("tree search failed")
				}
				team = float64(r.TeamSize)
			}
			b.ReportMetric(team, "agents")
		})
	}
}

// BenchmarkIsoperimetricBound regenerates experiment X7: the Harper
// lower bound (closed form, arbitrary d) and the exact exhaustive
// bound (small d).
func BenchmarkIsoperimetricBound(b *testing.B) {
	b.Run("harper/d=20", func(b *testing.B) {
		var bound int64
		for i := 0; i < b.N; i++ {
			bound = isoperimetry.HypercubeLowerBound(20)
		}
		b.ReportMetric(float64(bound), "agents")
	})
	b.Run("exact/H_4", func(b *testing.B) {
		h := hypercube.New(4)
		var bound int
		for i := 0; i < b.N; i++ {
			bound = isoperimetry.ExactMonotoneLowerBound(h)
		}
		b.ReportMetric(float64(bound), "agents")
	})
}

// BenchmarkGenericStrategies regenerates experiment X8: the
// structure-generic strategies on the hypercube.
func BenchmarkGenericStrategies(b *testing.B) {
	for _, d := range []int{4, 6, 8} {
		h := hypercube.New(d)
		b.Run(fmt.Sprintf("level-sweep/d=%d", d), func(b *testing.B) {
			var team float64
			for i := 0; i < b.N; i++ {
				r, _, _ := levelsweep.Run(h, 0)
				if !r.Captured || !r.MonotoneOK {
					b.Fatal("level sweep failed")
				}
				team = float64(r.TeamSize)
			}
			b.ReportMetric(team, "agents")
		})
		b.Run(fmt.Sprintf("greedy/d=%d", d), func(b *testing.B) {
			var team float64
			for i := 0; i < b.N; i++ {
				r, _, _ := greedy.Run(h, 0)
				if !r.Captured || !r.MonotoneOK {
					b.Fatal("greedy failed")
				}
				team = float64(r.TeamSize)
			}
			b.ReportMetric(team, "agents")
		})
	}
}

// BenchmarkGenericTopologies measures the generic strategies on the
// wider topology catalog.
func BenchmarkGenericTopologies(b *testing.B) {
	cases := map[string]graph.Graph{
		"mesh-16x16": topologies.Mesh(16, 16),
		"torus-8x8":  topologies.Torus(8, 8),
		"ring-256":   topologies.Ring(256),
	}
	for name, g := range cases {
		b.Run(name, func(b *testing.B) {
			var team float64
			for i := 0; i < b.N; i++ {
				r, _, _ := levelsweep.Run(g, 0)
				if !r.Captured {
					b.Fatal("sweep failed")
				}
				team = float64(r.TeamSize)
			}
			b.ReportMetric(team, "agents")
		})
	}
}

// BenchmarkNetworkEngine regenerates experiment X9: the message-
// passing realizations (goroutine hosts; 1-bit beacons for visibility,
// source-routed couriers for CLEAN).
func BenchmarkNetworkEngine(b *testing.B) {
	for _, d := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("visibility/d=%d", d), func(b *testing.B) {
			var beacons float64
			for i := 0; i < b.N; i++ {
				s := netsim.Run(d, netsim.Config{Seed: int64(i)})
				if !s.Ok() {
					b.Fatalf("invariants violated: %s", s.Result)
				}
				beacons = float64(s.BeaconMessages)
			}
			b.ReportMetric(beacons, "beacons")
		})
		b.Run(fmt.Sprintf("clean/d=%d", d), func(b *testing.B) {
			var hops float64
			for i := 0; i < b.N; i++ {
				s := netsim.RunClean(d, netsim.Config{Seed: int64(i)})
				if !s.Ok() {
					b.Fatalf("invariants violated: %s", s.Result)
				}
				hops = float64(s.TotalMoves)
			}
			b.ReportMetric(hops, "hops")
		})
	}
}

// BenchmarkExperimentReports measures the full harness end to end (a
// smaller sweep than the CLI default, to keep bench runs bounded),
// once on the serial path and once fanned across the default worker
// count — the wall-clock ratio between the two is the scheduler's
// speedup on this machine.
func BenchmarkExperimentReports(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("workers=%d", sched.DefaultWorkers()), sched.DefaultWorkers()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := len(experiments.All(6, 3, bc.workers)); got != 18 {
					b.Fatalf("%d reports", got)
				}
			}
		})
	}
}
