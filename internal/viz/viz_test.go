package viz

import (
	"strings"
	"testing"

	"hypersearch/internal/strategy"
	"hypersearch/internal/strategy/coordinated"
	"hypersearch/internal/strategy/visibility"
)

func TestBroadcastTreeFigure1(t *testing.T) {
	out := BroadcastTree(6)
	if !strings.Contains(out, "Broadcast tree T(6) of H_6 (64 nodes, 32 leaves)") {
		t.Errorf("header wrong:\n%s", out)
	}
	// 64 node lines + 1 header.
	if got := strings.Count(out, "\n"); got != 65 {
		t.Errorf("%d lines", got)
	}
	// The root and its six children are visible with their types.
	for _, want := range []string{"000000  T(6)", "000001  T(5)", "100000  T(0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestClassesFigure3(t *testing.T) {
	out := Classes(4)
	for _, want := range []string{
		"C_0 ( 1): 0000",
		"C_1 ( 1): 0001",
		"C_2 ( 2): 0010 0011",
		"C_4 ( 8):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCleanOrderFigure2(t *testing.T) {
	_, env := coordinated.Run(4, strategy.Options{Record: true})
	out := CleanOrder(env.H, env.B, false)
	if !strings.Contains(out, "Cleaning order") {
		t.Error("header missing")
	}
	for l := 0; l <= 4; l++ {
		if !strings.Contains(out, "level ") {
			t.Error("levels missing")
		}
	}
	// Every node appears exactly once: count colons.
	if got := strings.Count(out, ":"); got != 22 { // 16 nodes + 5 level labels + header
		t.Errorf("%d node entries", got)
	}
}

func TestCleanScheduleFigure4(t *testing.T) {
	_, env := visibility.Run(4, strategy.Options{Record: true})
	out := CleanOrder(env.H, env.B, true)
	if !strings.Contains(out, "Cleaning schedule") {
		t.Error("header missing")
	}
	if got := strings.Count(out, ":"); got != 22 { // 16 nodes + 5 level labels + header
		t.Errorf("%d node entries", got)
	}
}

func TestStatesSnapshot(t *testing.T) {
	_, env := visibility.Run(3, strategy.Options{})
	out := States(env.H, env.B)
	// Finished run: everything clean or guarded (terminated agents).
	if strings.Contains(out, "#") {
		t.Errorf("contamination in finished run:\n%s", out)
	}
	if !strings.Contains(out, "G") {
		t.Errorf("no guards in finished run (agents end on leaves):\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 4 {
		t.Errorf("%d lines", got)
	}
}
