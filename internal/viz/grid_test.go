package viz

import (
	"strings"
	"testing"

	"hypersearch/internal/board"
	"hypersearch/internal/strategy/meshsweep"
	"hypersearch/internal/topologies"
)

func TestGridOnFinishedSweep(t *testing.T) {
	_, b, _ := meshsweep.Run(3, 5)
	out := Grid(b, 3, 5)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 5 {
			t.Errorf("row %q wrong width", l)
		}
	}
	if strings.Contains(out, "#") {
		t.Errorf("finished sweep still contaminated:\n%s", out)
	}
	// The final column keeps the terminated rank.
	if !strings.HasSuffix(lines[0], "G") {
		t.Errorf("final column not guarded:\n%s", out)
	}
}

func TestGridMidRun(t *testing.T) {
	g := topologies.Mesh(2, 3)
	b := board.New(g, 0)
	a := b.Place(0)
	b.Move(a, 1, 1)
	out := Grid(b, 2, 3)
	if !strings.Contains(out, "G") || !strings.Contains(out, "#") {
		t.Errorf("mid-run grid wrong:\n%s", out)
	}
}

func TestGridValidatesShape(t *testing.T) {
	g := topologies.Mesh(2, 3)
	b := board.New(g, 0)
	defer func() {
		if recover() == nil {
			t.Error("mismatched shape accepted")
		}
	}()
	Grid(b, 3, 3)
}

func TestGridHistory(t *testing.T) {
	out := GridHistory([]string{"t=0", "t=1"}, []string{"##\n", "..\n"})
	if !strings.Contains(out, "t=0\n##") || !strings.Contains(out, "t=1\n..") {
		t.Errorf("history = %q", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched history accepted")
		}
	}()
	GridHistory([]string{"a"}, nil)
}
