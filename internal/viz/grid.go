package viz

import (
	"fmt"
	"strings"

	"hypersearch/internal/board"
)

// Grid renders a rows x cols mesh/torus board as a block of state
// symbols ('#' contaminated, 'G' guarded, '.' clean), row per line —
// the natural view for the mesh and torus sweeps.
func Grid(b *board.Board, rows, cols int) string {
	if rows*cols != b.Graph().Order() {
		panic(fmt.Sprintf("viz: %dx%d grid does not match graph order %d", rows, cols, b.Graph().Order()))
	}
	var out strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			switch b.StateOf(r*cols + c) {
			case board.Contaminated:
				out.WriteByte('#')
			case board.Guarded:
				out.WriteByte('G')
			default:
				out.WriteByte('.')
			}
		}
		out.WriteByte('\n')
	}
	return out.String()
}

// GridHistory replays nothing itself; callers snapshot Grid at the
// times they care about. This helper stacks labelled snapshots for
// side-by-side display in examples.
func GridHistory(labels []string, frames []string) string {
	if len(labels) != len(frames) {
		panic("viz: labels and frames mismatch")
	}
	var out strings.Builder
	for i, label := range labels {
		fmt.Fprintf(&out, "%s\n%s\n", label, strings.TrimRight(frames[i], "\n"))
	}
	return out.String()
}
