// Package viz renders the paper's figures as deterministic ASCII art:
// Figure 1 (the broadcast tree T(6) of H_6), Figure 2 (the cleaning
// order under Algorithm CLEAN), Figure 3 (the classes C_i), and
// Figure 4 (the cleaning schedule under CLEAN WITH VISIBILITY).
package viz

import (
	"fmt"
	"sort"
	"strings"

	"hypersearch/internal/bits"
	"hypersearch/internal/board"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
)

// BroadcastTree renders the broadcast tree T(d) of H_d, one node per
// line, indented by depth, annotated with the node's bitstring and its
// heap-queue type — the content of the paper's Figure 1.
func BroadcastTree(d int) string {
	bt := heapqueue.New(d)
	var b strings.Builder
	fmt.Fprintf(&b, "Broadcast tree T(%d) of H_%d (%d nodes, %d leaves)\n",
		d, d, bt.Order(), len(bt.Leaves()))
	var rec func(v, depth int)
	rec = func(v, depth int) {
		fmt.Fprintf(&b, "%s%s  T(%d)\n", strings.Repeat("  ", depth),
			bits.String(bits.Node(v), d), bt.Type(v))
		for _, c := range bt.Children(v) {
			rec(c, depth+1)
		}
	}
	rec(0, 0)
	return b.String()
}

// Classes renders the class decomposition C_0..C_d of H_d — the
// content of the paper's Figure 3.
func Classes(d int) string {
	h := hypercube.New(d)
	var b strings.Builder
	fmt.Fprintf(&b, "Classes C_i of H_%d (C_i = nodes with msb at position i)\n", d)
	for i := 0; i <= d; i++ {
		nodes := h.NodesInClass(i)
		names := make([]string, len(nodes))
		for j, v := range nodes {
			names[j] = h.String(v)
		}
		fmt.Fprintf(&b, "C_%d (%2d): %s\n", i, len(nodes), strings.Join(names, " "))
	}
	return b.String()
}

// CleanOrder renders the order in which nodes settled in a finished
// run, grouped by level — the content of Figures 2 and 4. The order
// function is board.CleanOrder for the sequential figure (Figure 2)
// and board.CleanTime for the parallel schedule (Figure 4).
func CleanOrder(h *hypercube.Hypercube, b *board.Board, byTime bool) string {
	d := h.Dim()
	var out strings.Builder
	if byTime {
		out.WriteString("Cleaning schedule (node: settle step)\n")
	} else {
		out.WriteString("Cleaning order (node: settle rank)\n")
	}
	for l := 0; l <= d; l++ {
		nodes := h.NodesAtLevel(l)
		type entry struct {
			v    int
			mark int64
		}
		entries := make([]entry, 0, len(nodes))
		for _, v := range nodes {
			if byTime {
				entries = append(entries, entry{v, b.CleanTime(v)})
			} else {
				entries = append(entries, entry{v, int64(b.CleanOrder(v))})
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].mark < entries[j].mark })
		parts := make([]string, len(entries))
		for i, e := range entries {
			parts[i] = fmt.Sprintf("%s:%d", h.String(e.v), e.mark)
		}
		fmt.Fprintf(&out, "level %d: %s\n", l, strings.Join(parts, " "))
	}
	return out.String()
}

// States renders a snapshot of node states level by level, one symbol
// per node: '#' contaminated, 'G' guarded, '.' clean. Handy for traces
// and the examples.
func States(h *hypercube.Hypercube, b *board.Board) string {
	d := h.Dim()
	var out strings.Builder
	for l := 0; l <= d; l++ {
		fmt.Fprintf(&out, "level %d: ", l)
		for _, v := range h.NodesAtLevel(l) {
			switch b.StateOf(v) {
			case board.Contaminated:
				out.WriteByte('#')
			case board.Guarded:
				out.WriteByte('G')
			default:
				out.WriteByte('.')
			}
		}
		out.WriteByte('\n')
	}
	return out.String()
}
