// Package stats provides the small summary statistics the multi-seed
// experiments report: min/max/mean/standard deviation over a sample of
// measurements, without external dependencies.
package stats

import (
	"fmt"
	"math"
)

// Summary condenses a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64 // population standard deviation
}

// Summarize computes the summary of xs; it panics on an empty sample
// (an experiment that measured nothing is a harness bug).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(xs)))
	return s
}

// SummarizeInts is Summarize over integer measurements.
func SummarizeInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders "mean ± stddev [min, max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.3g [%.4g, %.4g] (n=%d)", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// Constant reports whether every sample equaled the first one — the
// schedule-independence checks use it.
func (s Summary) Constant() bool { return s.Min == s.Max }
