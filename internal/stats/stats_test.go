package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.StdDev != 2 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.StdDev != 0 || !s.Constant() {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int64{1, 2, 3})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty sample accepted")
		}
	}()
	Summarize(nil)
}

func TestString(t *testing.T) {
	out := Summarize([]float64{1, 1, 1}).String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "± 0") {
		t.Errorf("String = %q", out)
	}
}

func TestQuickProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.StdDev < 0 {
			return false
		}
		// StdDev is bounded by the half-range.
		return s.StdDev <= (s.Max-s.Min)/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
