// Package combin provides the exact combinatorics used throughout the
// reproduction: binomial coefficients, the closed-form cost expressions
// proved in Theorems 2-8 of Flocchini, Huang and Luccio (IPPS 2005), and
// small asymptotic-fit helpers used by the experiment harness.
//
// All quantities are exact int64 computations with overflow detection;
// for the dimensions this repository simulates (d <= 30) nothing
// overflows, and the guards turn silent wraparound into a panic.
package combin

import (
	"fmt"
	"math"
)

// Binomial returns C(n, k) exactly. By convention C(n, k) = 0 when
// k < 0 or k > n, matching the paper's use of out-of-range binomials.
// It panics if n < 0 or if the result overflows int64.
func Binomial(n, k int) int64 {
	if n < 0 {
		panic(fmt.Sprintf("combin: Binomial with negative n = %d", n))
	}
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 1; i <= k; i++ {
		// c = c * (n - k + i) / i, exact at every step.
		num := int64(n - k + i)
		if c > math.MaxInt64/num {
			panic(fmt.Sprintf("combin: Binomial(%d,%d) overflows int64", n, k))
		}
		c = c * num / int64(i)
	}
	return c
}

// Pow2 returns 2^e as an int64. It panics for e outside [0, 62].
func Pow2(e int) int64 {
	if e < 0 || e > 62 {
		panic(fmt.Sprintf("combin: Pow2(%d) out of range", e))
	}
	return 1 << e
}

// NodesAtLevel returns the number of hypercube nodes at level l of H_d:
// C(d, l).
func NodesAtLevel(d, l int) int64 { return Binomial(d, l) }

// TreeNodesOfType returns the number of broadcast-tree nodes of type
// T(k) at level l of H_d (Property 1): 1 for the root (l = 0, k = d),
// and C(d-k-1, l-1) for l > 0.
func TreeNodesOfType(d, l, k int) int64 {
	if l == 0 {
		if k == d {
			return 1
		}
		return 0
	}
	if k < 0 || k > d-1 {
		return 0
	}
	return Binomial(d-k-1, l-1)
}

// TreeLeavesAtLevel returns the number of broadcast-tree leaves (type
// T(0) nodes) at level l of H_d (Property 2): C(d-1, l-1) for l > 0.
func TreeLeavesAtLevel(d, l int) int64 {
	return TreeNodesOfType(d, l, 0)
}

// ClassSize returns |C_i| for H_d (Property 5): 1 for i = 0, 2^(i-1)
// otherwise.
func ClassSize(d, i int) int64 {
	if i < 0 || i > d {
		panic(fmt.Sprintf("combin: class %d out of range [0,%d]", i, d))
	}
	if i == 0 {
		return 1
	}
	return Pow2(i - 1)
}

// CleanExtraAgents returns the number of extra agents the synchronizer
// requests from the root before cleaning from level l to level l+1 in
// Algorithm CLEAN (Lemma 3): sum over k >= 2 of (k-1) * #T(k)-at-level-l,
// which telescopes to C(d, l+1) - C(d, l) + C(d-1, l-1).
func CleanExtraAgents(d, l int) int64 {
	if l < 1 || l > d-1 {
		return 0
	}
	var sum int64
	for k := 2; k <= d-l; k++ {
		sum += int64(k-1) * TreeNodesOfType(d, l, k)
	}
	return sum
}

// CleanPhasePeak returns the number of agents simultaneously away from
// the root pool during the phase cleaning level l to level l+1 of
// Algorithm CLEAN, including the synchronizer: the C(d, l) level-l
// guards, the Lemma-3 extras, plus one.
func CleanPhasePeak(d, l int) int64 {
	return Binomial(d, l) + CleanExtraAgents(d, l) + 1
}

// CleanTeamSize returns the exact team size Algorithm CLEAN needs on
// H_d: the maximum phase peak over all phases (Theorem 2). Phase 0
// (root to level 1) needs d + 1 agents.
func CleanTeamSize(d int) int64 {
	best := int64(d) + 1
	for l := 1; l <= d-1; l++ {
		if p := CleanPhasePeak(d, l); p > best {
			best = p
		}
	}
	if d == 0 {
		return 1
	}
	return best
}

// CleanAgentMoves returns the exact number of moves performed by the
// non-synchronizer agents in Algorithm CLEAN (Theorem 3): every
// broadcast-tree leaf at level l terminates one root-to-leaf-and-back
// agent trajectory of 2l moves, totalling (d+1) * 2^(d-1).
func CleanAgentMoves(d int) int64 {
	if d == 0 {
		return 0
	}
	return int64(d+1) * Pow2(d-1)
}

// VisibilityAgents returns the team size of Algorithm CLEAN WITH
// VISIBILITY on H_d (Theorem 5): n/2 = 2^(d-1), with the degenerate
// H_0 needing a single agent.
func VisibilityAgents(d int) int64 {
	if d == 0 {
		return 1
	}
	return Pow2(d - 1)
}

// VisibilityMoves returns the exact total moves of Algorithm CLEAN WITH
// VISIBILITY (Theorem 8): each of the n/2 agents ends on a distinct
// broadcast-tree leaf, and the sum of leaf depths is (d+1) * 2^(d-2).
func VisibilityMoves(d int) int64 {
	if d == 0 {
		return 0
	}
	if d == 1 {
		return 1
	}
	return int64(d+1) * Pow2(d-2)
}

// VisibilityTime returns the ideal-time step count of Algorithm CLEAN
// WITH VISIBILITY (Theorem 7): d = log n.
func VisibilityTime(d int) int64 { return int64(d) }

// VisibilityGatherSum returns the total number of gather events in a
// CLEAN WITH VISIBILITY run — the n/2 homebase placements plus one per
// move: 2^(d-1) + (d+1)*2^(d-2) for d >= 2. The event-driven engine
// does constant work per gather, so this is also its exact event
// budget, the quantity the d=20 scale benchmarks are sized by.
func VisibilityGatherSum(d int) int64 {
	return VisibilityAgents(d) + VisibilityMoves(d)
}

// CloningMoves returns the move count of the cloning variant of the
// visibility strategy (Section 5): each broadcast-tree edge is traversed
// exactly once downward, n - 1 moves.
func CloningMoves(d int) int64 { return Pow2(d) - 1 }

// SumLeafDepths returns the sum over all broadcast-tree leaves of their
// level: sum_l l * C(d-1, l-1) = (d+1) * 2^(d-2) for d >= 2. Used by
// move-count identities in tests.
func SumLeafDepths(d int) int64 {
	var sum int64
	for l := 1; l <= d; l++ {
		sum += int64(l) * TreeLeavesAtLevel(d, l)
	}
	return sum
}

// NOverLogN returns n / log2 n = 2^d / d as a float, the paper's stated
// asymptotic for the CLEAN team size.
func NOverLogN(d int) float64 {
	if d == 0 {
		return 1
	}
	return float64(int64(1)<<d) / float64(d)
}

// NOverSqrtLogN returns n / sqrt(log2 n), the tight asymptotic of the
// central-binomial team size realized by Algorithm CLEAN.
func NOverSqrtLogN(d int) float64 {
	if d == 0 {
		return 1
	}
	return float64(int64(1)<<d) / math.Sqrt(float64(d))
}

// NLogN returns n * log2 n.
func NLogN(d int) float64 {
	return float64(int64(1)<<d) * float64(d)
}

// FitRatio returns measured[i] / model[i] for each index, used by the
// experiment harness to show that a measured series tracks a model
// within a bounded constant factor. It panics on length mismatch.
func FitRatio(measured []float64, model []float64) []float64 {
	if len(measured) != len(model) {
		panic("combin: FitRatio length mismatch")
	}
	out := make([]float64, len(measured))
	for i := range measured {
		out[i] = measured[i] / model[i]
	}
	return out
}

// MaxDeviation returns the largest |ratio - 1| over the tail (last
// `tail` entries) of a ratio series, a crude but deterministic check
// that a measured series converges onto a model.
func MaxDeviation(ratios []float64, tail int) float64 {
	if tail > len(ratios) {
		tail = len(ratios)
	}
	worst := 0.0
	for _, r := range ratios[len(ratios)-tail:] {
		if dev := math.Abs(r - 1); dev > worst {
			worst = dev
		}
	}
	return worst
}
