package combin

import (
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {6, 3, 20},
		{10, 5, 252}, {30, 15, 155117520}, {5, -1, 0}, {5, 6, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	// Pascal's rule as a property check over a broad range.
	for n := 1; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			if got := Binomial(n, k); got != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal fails at C(%d,%d) = %d", n, k, got)
			}
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 50)
		k := int(kRaw % 51)
		return Binomial(n, k) == Binomial(n, n-k) || k > n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialRowSum(t *testing.T) {
	for n := 0; n <= 30; n++ {
		var sum int64
		for k := 0; k <= n; k++ {
			sum += Binomial(n, k)
		}
		if sum != Pow2(n) {
			t.Errorf("row %d sums to %d, want 2^%d", n, sum, n)
		}
	}
}

func TestBinomialNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Binomial(-1, 0) did not panic")
		}
	}()
	Binomial(-1, 0)
}

func TestPow2(t *testing.T) {
	if Pow2(0) != 1 || Pow2(10) != 1024 || Pow2(62) != 1<<62 {
		t.Error("Pow2 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Pow2(63) did not panic")
		}
	}()
	Pow2(63)
}

func TestTreeNodesOfTypePartition(t *testing.T) {
	// Summing #T(k) over k at each level must give C(d, l) (every node
	// has exactly one type), and summing over everything gives 2^d.
	for d := 1; d <= 12; d++ {
		var total int64
		for l := 0; l <= d; l++ {
			var atLevel int64
			for k := 0; k <= d; k++ {
				atLevel += TreeNodesOfType(d, l, k)
			}
			if atLevel != Binomial(d, l) {
				t.Errorf("d=%d l=%d: types sum to %d, want %d", d, l, atLevel, Binomial(d, l))
			}
			total += atLevel
		}
		if total != Pow2(d) {
			t.Errorf("d=%d: total %d, want %d", d, total, Pow2(d))
		}
	}
}

func TestTreeLeavesAtLevel(t *testing.T) {
	// Property 2/6: all leaves are in C_d; there are C(d-1, l-1) leaves
	// at level l, and they total 2^(d-1).
	for d := 1; d <= 12; d++ {
		var total int64
		for l := 1; l <= d; l++ {
			total += TreeLeavesAtLevel(d, l)
		}
		if total != Pow2(d-1) {
			t.Errorf("d=%d: %d leaves, want %d", d, total, Pow2(d-1))
		}
	}
}

func TestClassSizesSumToN(t *testing.T) {
	for d := 0; d <= 12; d++ {
		var total int64
		for i := 0; i <= d; i++ {
			total += ClassSize(d, i)
		}
		if total != Pow2(d) {
			t.Errorf("d=%d: classes sum to %d, want %d", d, total, Pow2(d))
		}
	}
}

func TestCleanExtraAgentsClosedForm(t *testing.T) {
	// Lemma 3: the sum telescopes to C(d,l+1) - C(d,l) + C(d-1,l-1).
	for d := 2; d <= 16; d++ {
		for l := 1; l <= d-1; l++ {
			want := Binomial(d, l+1) - Binomial(d, l) + Binomial(d-1, l-1)
			if got := CleanExtraAgents(d, l); got != want {
				t.Errorf("d=%d l=%d: extras = %d, closed form %d", d, l, got, want)
			}
		}
	}
}

func TestCleanPhasePeakClosedForm(t *testing.T) {
	// Peak = C(d, l+1) + C(d-1, l-1) + 1.
	for d := 2; d <= 16; d++ {
		for l := 1; l <= d-1; l++ {
			want := Binomial(d, l+1) + Binomial(d-1, l-1) + 1
			if got := CleanPhasePeak(d, l); got != want {
				t.Errorf("d=%d l=%d: peak = %d, want %d", d, l, got, want)
			}
		}
	}
}

func TestCleanTeamSizeValues(t *testing.T) {
	// Hand-checked small cases. d=4: peak phases l=1,2 give
	// C(4,2)+C(3,0)+1 = 8 and C(4,3)+C(3,1)+1 = 8.
	cases := []struct {
		d    int
		want int64
	}{
		{1, 2}, {2, 3}, {3, 5}, {4, 8}, {6, 26},
	}
	for _, c := range cases {
		if got := CleanTeamSize(c.d); got != c.want {
			t.Errorf("CleanTeamSize(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestCleanTeamSizeGrowth(t *testing.T) {
	// Team size is monotone in d and, from d = 4 on, sits between
	// n/log n (the paper's claim, up to a constant) and n/2 (the
	// visibility strategy's team).
	prev := CleanTeamSize(3)
	for d := 4; d <= 20; d++ {
		got := CleanTeamSize(d)
		if got <= prev {
			t.Errorf("team size not increasing at d=%d: %d <= %d", d, got, prev)
		}
		prev = got
		n := Pow2(d)
		if float64(got) < NOverLogN(d)/4 {
			t.Errorf("d=%d: team %d unexpectedly below n/logn/4", d, got)
		}
		if got > n/2 {
			t.Errorf("d=%d: team %d above n/2", d, got)
		}
	}
}

func TestCleanAgentMoves(t *testing.T) {
	// (d+1)*2^(d-1) equals twice the sum of broadcast-tree leaf depths.
	for d := 2; d <= 20; d++ {
		if got, want := CleanAgentMoves(d), 2*SumLeafDepths(d); got != want {
			t.Errorf("d=%d: CleanAgentMoves = %d, 2*SumLeafDepths = %d", d, got, want)
		}
	}
	if CleanAgentMoves(0) != 0 {
		t.Error("H_0 needs no agent moves")
	}
}

func TestVisibilityFormulas(t *testing.T) {
	for d := 2; d <= 20; d++ {
		if got, want := VisibilityAgents(d), Pow2(d-1); got != want {
			t.Errorf("d=%d agents = %d, want %d", d, got, want)
		}
		if got, want := VisibilityMoves(d), SumLeafDepths(d); got != want {
			t.Errorf("d=%d moves = %d, want sum of leaf depths %d", d, got, want)
		}
		if VisibilityTime(d) != int64(d) {
			t.Errorf("d=%d time wrong", d)
		}
	}
	if VisibilityAgents(0) != 1 || VisibilityMoves(0) != 0 || VisibilityMoves(1) != 1 {
		t.Error("degenerate visibility formulas wrong")
	}
}

func TestCloningMoves(t *testing.T) {
	for d := 0; d <= 20; d++ {
		if got := CloningMoves(d); got != Pow2(d)-1 {
			t.Errorf("d=%d cloning moves = %d", d, got)
		}
	}
}

func TestAsymptoticHelpers(t *testing.T) {
	if NOverLogN(0) != 1 || NOverSqrtLogN(0) != 1 {
		t.Error("degenerate asymptotics wrong")
	}
	if NOverLogN(10) != 1024.0/10 {
		t.Error("NOverLogN wrong")
	}
	if NLogN(3) != 24 {
		t.Error("NLogN wrong")
	}
}

func TestFitRatioAndMaxDeviation(t *testing.T) {
	r := FitRatio([]float64{2, 4, 6}, []float64{1, 2, 3})
	for _, v := range r {
		if v != 2 {
			t.Errorf("ratio = %v", r)
		}
	}
	if dev := MaxDeviation([]float64{1.5, 1.1, 0.9}, 2); dev != 0.1+1e-17 && dev != 0.10000000000000009 && !(dev > 0.09 && dev < 0.11) {
		t.Errorf("MaxDeviation = %v", dev)
	}
	if dev := MaxDeviation([]float64{3}, 10); dev != 2 {
		t.Errorf("MaxDeviation tail clamp = %v", dev)
	}
}

func TestFitRatioMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FitRatio length mismatch did not panic")
		}
	}()
	FitRatio([]float64{1}, []float64{1, 2})
}

// TestVisibilityGatherSum pins the event budget of the event-driven
// visibility engine: placements plus moves, with the closed form
// 2^(d-1) + (d+1)*2^(d-2) holding from d = 2 on.
func TestVisibilityGatherSum(t *testing.T) {
	if VisibilityGatherSum(0) != 1 || VisibilityGatherSum(1) != 2 {
		t.Errorf("degenerate gather sums: d=0 -> %d, d=1 -> %d",
			VisibilityGatherSum(0), VisibilityGatherSum(1))
	}
	for d := 2; d <= 30; d++ {
		want := Pow2(d-1) + int64(d+1)*Pow2(d-2)
		if got := VisibilityGatherSum(d); got != want {
			t.Errorf("d=%d: gather sum %d, want %d", d, got, want)
		}
	}
}
