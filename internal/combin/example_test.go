package combin_test

import (
	"fmt"

	"hypersearch/internal/combin"
)

// The exact closed forms behind the paper's theorems.
func Example() {
	d := 6
	fmt.Println("CLEAN team (Thm 2):      ", combin.CleanTeamSize(d))
	fmt.Println("CLEAN agent moves (Thm 3):", combin.CleanAgentMoves(d))
	fmt.Println("visibility team (Thm 5): ", combin.VisibilityAgents(d))
	fmt.Println("visibility moves (Thm 8):", combin.VisibilityMoves(d))
	fmt.Println("cloning moves (S5):      ", combin.CloningMoves(d))
	// Output:
	// CLEAN team (Thm 2):       26
	// CLEAN agent moves (Thm 3): 224
	// visibility team (Thm 5):  32
	// visibility moves (Thm 8): 112
	// cloning moves (S5):       63
}
