package suggest

import "testing"

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"clean/d=12", "clean/d=16", 1},
		{"visibilty", "visibility", 1},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Distance(c.b, c.a); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestNearest(t *testing.T) {
	cands := []string{"cleaner-crash", "synchronizer-crash", "lossy-links", "dup-storm"}
	if got := Nearest("lossy-link", cands); got != "lossy-links" {
		t.Errorf("Nearest(lossy-link) = %q, want lossy-links", got)
	}
	if got := Nearest("cleaner-cras", cands); got != "cleaner-crash" {
		t.Errorf("Nearest(cleaner-cras) = %q, want cleaner-crash", got)
	}
	if got := Nearest("anything", nil); got != "" {
		t.Errorf("Nearest with no candidates = %q, want empty", got)
	}
	// Ties keep the earliest candidate: deterministic suggestions.
	if got := Nearest("x", []string{"ab", "cd"}); got != "ab" {
		t.Errorf("Nearest tie = %q, want ab", got)
	}
}
