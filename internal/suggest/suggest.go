// Package suggest turns an unknown-name error into a usable hint: the
// CLIs and the campaign service all accept exact names (bench
// families, fault scenarios, protocols), and a typo should answer with
// the name the user probably meant instead of a bare "unknown".
package suggest

// Distance is the Levenshtein edit distance between a and b, computed
// byte-wise (every accepted name in this repo is ASCII).
func Distance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Nearest returns the candidate closest to name by edit distance, or
// "" when there are no candidates. Ties keep the earliest candidate,
// so a fixed candidate order makes the suggestion deterministic.
func Nearest(name string, candidates []string) string {
	best, bestDist := "", -1
	for _, c := range candidates {
		if d := Distance(name, c); bestDist < 0 || d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}
