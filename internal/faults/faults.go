// Package faults defines seeded, fully deterministic fault plans for
// the agent runtimes, the discrete-event engine, and the netsim wire:
// agent crashes at a given step, stalls, move-latency spikes,
// whiteboard lock starvation, lost visibility wakeups, and — for the
// message-passing engine — per-link frame drops, duplications, delays
// and host crashes. A Plan is declarative data; an Injector compiles
// it into the hooks the engines consult on every move, broadcast, and
// (for the DES kernel) every dispatched event, while
// netsim/faultlink compiles the same plan's link faults into its wire
// hooks — one JSON grammar drives every engine.
//
// Determinism contract: triggers count deterministic quantities — a
// role's move sequence ("sync"), an order's edge sequence
// ("order:<key>"), an agent's own moves ("agent:<id>"), a directed
// link's logical frame sequence ("link:<u>-<v>") — so the same plan
// always fires at the same point of the computation regardless of OS
// scheduling. Crash faults are restricted to the "sync" and "order:"
// targets because only those have schedule-independent move
// sequences; host-crash faults are restricted to "link:" targets
// because a link's frame sequence is fixed by the sender's program
// order; delay-only faults (stall, spike, starve, lost wakeups) may
// use any target since they never change which moves happen, only
// when.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Kind labels a fault.
type Kind string

// The fault kinds of the robustness model.
const (
	Crash        Kind = "crash"         // target stops executing at its At-th move
	Stall        Kind = "stall"         // target pauses Delay units before its At-th move
	LatencySpike Kind = "latency-spike" // moves At..Until of the target each take +Delay units
	LockStarve   Kind = "lock-starve"   // target holds the engine lock Delay units during its At-th move
	LostWakeup   Kind = "lost-wakeup"   // broadcasts At..Until are dropped (watchdog must heal)
	KernelLag    Kind = "kernel-lag"    // DES kernel: events in virtual window [From,To) are deferred to To

	// Link-fault kinds, consumed by the netsim wire layer
	// (internal/netsim/faultlink); the move/broadcast/kernel hooks of
	// this package's Injector ignore them. All four trigger on the
	// target link's logical frame sequence numbers, never wall-clock.
	LinkDrop  Kind = "link-drop"  // frames At..Until each lose their first Times transmissions (ack/retransmit heals)
	LinkDup   Kind = "link-dup"   // frames At..Until are delivered twice (receiver dedup discards the copy)
	LinkDelay Kind = "link-delay" // frames At..Until take +Delay units in flight (reordering past successors)
	HostCrash Kind = "host-crash" // receiving host loses its soft state at delivery of frame At (ledger replay heals)
)

// Target sentinels. "agent:<id>" and "order:<key>" are parameterized.
const (
	TargetSync = "sync" // whichever agent currently holds the synchronizer role
	TargetAny  = "any"  // every move, counted globally
)

// MaxDelay bounds a single fault's delay so fuzzed plans cannot stall
// an engine for unbounded wall time.
const MaxDelay = 1 << 20

// MaxLinkRetransmits bounds the transmissions of one wire frame: a
// link-drop fault may swallow at most MaxLinkRetransmits-2 attempts,
// so every frame still delivers within the budget and the wire layer
// can treat budget exhaustion as a plan bug rather than a live state.
const MaxLinkRetransmits = 8

// Fault is one injected adversity.
type Fault struct {
	Kind Kind `json:"kind"`
	// Target selects whose counter triggers the fault: "sync",
	// "any", "agent:<id>", "order:<key>", or — for the link kinds —
	// "link:<u>-<v>" (the directed link from host u to host v).
	// Ignored by lost-wakeup (global broadcast counter) and
	// kernel-lag (virtual time).
	Target string `json:"target,omitempty"`
	At     int    `json:"at,omitempty"`    // 1-based trigger count
	Until  int    `json:"until,omitempty"` // window end for spikes / lost wakeups / link windows (default At)
	Delay  int64  `json:"delay,omitempty"` // delay in engine units
	Times  int    `json:"times,omitempty"` // link-drop: transmissions lost per matching frame (default 1)
	From   int64  `json:"from,omitempty"`  // kernel-lag: virtual window start
	To     int64  `json:"to,omitempty"`    // kernel-lag: virtual window end
}

// IsLink reports whether the fault is consumed by the wire layer
// rather than the move/broadcast/kernel hooks.
func (f Fault) IsLink() bool {
	switch f.Kind {
	case LinkDrop, LinkDup, LinkDelay, HostCrash:
		return true
	}
	return false
}

// Plan is a named, seeded fault campaign for one run.
type Plan struct {
	Name   string  `json:"name,omitempty"`
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Crashes returns the number of crash faults, which bounds the spare
// agents a recovering runtime must provision.
func (p *Plan) Crashes() int {
	n := 0
	for _, f := range p.Faults {
		if f.Kind == Crash {
			n++
		}
	}
	return n
}

// RequiresRecovery reports whether the plan kills agents, i.e. whether
// it can only run on the crash-tolerant runtime.
func (p *Plan) RequiresRecovery() bool { return p.Crashes() > 0 }

// LinkFaults returns the faults consumed by the netsim wire layer.
// Safe on a nil plan.
func (p *Plan) LinkFaults() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.IsLink() {
			out = append(out, f)
		}
	}
	return out
}

// HasLinkFaults reports whether the plan carries any wire-level fault.
// Safe on a nil plan, so engines can gate on it directly.
func (p *Plan) HasLinkFaults() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.IsLink() {
			return true
		}
	}
	return false
}

// Validate checks the plan's structural rules; an Injector may only be
// built from a valid plan.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("faults: nil plan")
	}
	if len(p.Faults) > 256 {
		return fmt.Errorf("faults: %d faults exceeds the 256-fault cap", len(p.Faults))
	}
	for i, f := range p.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("faults: fault %d: %w", i, err)
		}
	}
	return nil
}

func (f Fault) validate() error {
	if f.Delay < 0 || f.Delay > MaxDelay {
		return fmt.Errorf("delay %d outside [0,%d]", f.Delay, MaxDelay)
	}
	switch f.Kind {
	case Crash:
		if strings.HasPrefix(f.Target, "order:") {
			if err := validTarget(f.Target); err != nil {
				return err
			}
		} else if f.Target != TargetSync {
			return fmt.Errorf("crash target %q: only %q and \"order:<key>\" have deterministic move sequences", f.Target, TargetSync)
		}
		if f.At < 1 {
			return fmt.Errorf("crash needs at >= 1, got %d", f.At)
		}
	case Stall, LockStarve:
		if err := validTarget(f.Target); err != nil {
			return err
		}
		if f.At < 1 {
			return fmt.Errorf("%s needs at >= 1, got %d", f.Kind, f.At)
		}
		if f.Delay == 0 {
			return fmt.Errorf("%s needs a positive delay", f.Kind)
		}
	case LatencySpike:
		if err := validTarget(f.Target); err != nil {
			return err
		}
		if f.At < 1 || (f.Until != 0 && f.Until < f.At) {
			return fmt.Errorf("spike window [%d,%d] invalid", f.At, f.Until)
		}
		if f.Delay == 0 {
			return fmt.Errorf("latency-spike needs a positive delay")
		}
	case LostWakeup:
		if f.At < 1 || (f.Until != 0 && f.Until < f.At) {
			return fmt.Errorf("lost-wakeup window [%d,%d] invalid", f.At, f.Until)
		}
	case KernelLag:
		if f.From < 0 || f.To <= f.From {
			return fmt.Errorf("kernel-lag window [%d,%d) invalid", f.From, f.To)
		}
	case LinkDrop, LinkDup, LinkDelay, HostCrash:
		if _, _, err := ParseLinkTarget(f.Target); err != nil {
			return err
		}
		if f.At < 1 || (f.Until != 0 && f.Until < f.At) {
			return fmt.Errorf("%s window [%d,%d] invalid", f.Kind, f.At, f.Until)
		}
		switch f.Kind {
		case LinkDrop:
			if f.Times < 0 || f.Times > MaxLinkRetransmits-2 {
				return fmt.Errorf("link-drop times %d outside [0,%d]", f.Times, MaxLinkRetransmits-2)
			}
		case LinkDelay:
			if f.Delay < 1 {
				return fmt.Errorf("link-delay needs a positive delay")
			}
		case HostCrash:
			if f.Until != 0 && f.Until != f.At {
				return fmt.Errorf("host-crash is one-shot; until %d must equal at %d (or be omitted)", f.Until, f.At)
			}
		}
	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	return nil
}

// ParseLinkTarget decodes a "link:<u>-<v>" target into the directed
// link's endpoints.
func ParseLinkTarget(t string) (from, to int, err error) {
	rest, ok := strings.CutPrefix(t, "link:")
	if !ok {
		return 0, 0, fmt.Errorf("link fault needs a \"link:<u>-<v>\" target, got %q", t)
	}
	a, b, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, 0, fmt.Errorf("bad link target %q", t)
	}
	from, err = strconv.Atoi(a)
	if err == nil {
		to, err = strconv.Atoi(b)
	}
	if err != nil || from < 0 || to < 0 || from == to {
		return 0, 0, fmt.Errorf("bad link target %q", t)
	}
	return from, to, nil
}

// LinkTarget renders the canonical target string for a directed link.
func LinkTarget(from, to int) string { return fmt.Sprintf("link:%d-%d", from, to) }

func validTarget(t string) error {
	switch {
	case t == TargetSync || t == TargetAny:
		return nil
	case strings.HasPrefix(t, "agent:"):
		if _, err := strconv.Atoi(t[len("agent:"):]); err != nil {
			return fmt.Errorf("bad agent target %q", t)
		}
		return nil
	case strings.HasPrefix(t, "order:"):
		if t == "order:" {
			return fmt.Errorf("empty order key in target")
		}
		return nil
	default:
		return fmt.Errorf("unknown target %q", t)
	}
}

// MoveCtx identifies one move attempt to the injector.
type MoveCtx struct {
	Agent    int    // agent id
	Sync     bool   // the agent currently holds the synchronizer role
	OrderKey string // ledger key of the order being executed, if any
}

// Action is the injector's verdict for one move.
type Action struct {
	Crash bool  // the agent dies before making this move
	Delay int64 // units to sleep before the move, outside all locks
	Hold  int64 // units to hold the engine lock while applying the move
}

// Injector is the compiled, concurrency-safe form of a Plan. One
// injector serves exactly one run: it owns the per-target counters.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	fired  []bool

	anyMoves   int
	syncMoves  int
	agentMoves map[int]int
	orderEdges map[string]int
	broadcasts int
	firedCount int
}

// NewInjector compiles a validated plan. It panics on an invalid plan
// so engines can assume injector queries never fail.
func NewInjector(p *Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		faults:     append([]Fault(nil), p.Faults...),
		fired:      make([]bool, len(p.Faults)),
		agentMoves: map[int]int{},
		orderEdges: map[string]int{},
	}
}

// Crashes returns the number of crash faults in the compiled plan.
func (in *Injector) Crashes() int {
	n := 0
	for _, f := range in.faults {
		if f.Kind == Crash {
			n++
		}
	}
	return n
}

// Fired returns how many one-shot faults have triggered so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.firedCount
}

// BeforeMove advances the move counters for ctx and returns the
// combined action of every fault that triggers on this move.
func (in *Injector) BeforeMove(ctx MoveCtx) Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.anyMoves++
	if ctx.Sync {
		in.syncMoves++
	}
	in.agentMoves[ctx.Agent]++
	if ctx.OrderKey != "" {
		in.orderEdges[ctx.OrderKey]++
	}
	var act Action
	for i, f := range in.faults {
		n, ok := in.count(f.Target, ctx)
		if !ok {
			continue
		}
		switch f.Kind {
		case Crash:
			if !in.fired[i] && n == f.At {
				in.fired[i] = true
				in.firedCount++
				act.Crash = true
			}
		case Stall:
			if !in.fired[i] && n == f.At {
				in.fired[i] = true
				in.firedCount++
				act.Delay += f.Delay
			}
		case LockStarve:
			if !in.fired[i] && n == f.At {
				in.fired[i] = true
				in.firedCount++
				act.Hold += f.Delay
			}
		case LatencySpike:
			if n >= f.At && n <= f.window() {
				act.Delay += f.Delay
			}
		}
	}
	return act
}

// count resolves the trigger counter for a target in this context,
// reporting false when the fault does not apply to the move at all.
func (in *Injector) count(target string, ctx MoveCtx) (int, bool) {
	switch {
	case target == TargetAny || target == "":
		return in.anyMoves, true
	case target == TargetSync:
		if !ctx.Sync {
			return 0, false
		}
		return in.syncMoves, true
	case strings.HasPrefix(target, "agent:"):
		id, _ := strconv.Atoi(target[len("agent:"):])
		if ctx.Agent != id {
			return 0, false
		}
		return in.agentMoves[id], true
	case strings.HasPrefix(target, "order:"):
		key := target[len("order:"):]
		if ctx.OrderKey != key {
			return 0, false
		}
		return in.orderEdges[key], true
	default:
		return 0, false
	}
}

func (f Fault) window() int {
	if f.Until == 0 {
		return f.At
	}
	return f.Until
}

// DropWakeup advances the global broadcast counter and reports whether
// this broadcast should be swallowed. Engines that honour it must run
// a periodic re-broadcast (the watchdog) to stay live.
func (in *Injector) DropWakeup() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.broadcasts++
	for _, f := range in.faults {
		if f.Kind == LostWakeup && in.broadcasts >= f.At && in.broadcasts <= f.window() {
			return true
		}
	}
	return false
}

// KernelInterceptor returns a DES event interceptor deferring every
// event whose virtual time falls in a kernel-lag window to that
// window's end, or nil when the plan has no kernel-lag faults. A
// deferred event lands exactly at To, outside the half-open window, so
// it is never deferred twice by the same fault.
func (in *Injector) KernelInterceptor() func(at, seq int64) int64 {
	has := false
	for _, f := range in.faults {
		if f.Kind == KernelLag {
			has = true
			break
		}
	}
	if !has {
		return nil
	}
	return func(at, _ int64) int64 {
		var defer_ int64
		for _, f := range in.faults {
			if f.Kind == KernelLag && at >= f.From && at < f.To {
				if d := f.To - at; d > defer_ {
					defer_ = d
				}
			}
		}
		return defer_
	}
}
