// Package faults defines seeded, fully deterministic fault plans for
// the agent runtimes, the discrete-event engine, and the netsim wire:
// agent crashes at a given step, stalls, move-latency spikes,
// whiteboard lock starvation, lost visibility wakeups, and — for the
// message-passing engine — per-link frame drops, duplications, delays
// and host crashes. A Plan is declarative data; an Injector compiles
// it into the hooks the engines consult on every move, broadcast, and
// (for the DES kernel) every dispatched event, while
// netsim/faultlink compiles the same plan's link faults into its wire
// hooks — one JSON grammar drives every engine.
//
// Determinism contract: triggers count deterministic quantities — a
// role's move sequence ("sync"), an order's edge sequence
// ("order:<key>"), an agent's own moves ("agent:<id>"), a directed
// link's logical frame sequence ("link:<u>-<v>") — so the same plan
// always fires at the same point of the computation regardless of OS
// scheduling. Crash faults are restricted to the "sync" and "order:"
// targets because only those have schedule-independent move
// sequences; host-crash faults are restricted to "link:" targets
// because a link's frame sequence is fixed by the sender's program
// order; delay-only faults (stall, spike, starve, lost wakeups) may
// use any target since they never change which moves happen, only
// when.
package faults

import (
	"fmt"
	mathbits "math/bits"
	"strconv"
	"strings"
	"sync"
)

// Kind labels a fault.
type Kind string

// The fault kinds of the robustness model.
const (
	Crash        Kind = "crash"         // target stops executing at its At-th move
	Stall        Kind = "stall"         // target pauses Delay units before its At-th move
	LatencySpike Kind = "latency-spike" // moves At..Until of the target each take +Delay units
	LockStarve   Kind = "lock-starve"   // target holds the engine lock Delay units during its At-th move
	LostWakeup   Kind = "lost-wakeup"   // broadcasts At..Until are dropped (watchdog must heal)
	KernelLag    Kind = "kernel-lag"    // DES kernel: events in virtual window [From,To) are deferred to To

	// Link-fault kinds, consumed by the netsim wire layer
	// (internal/netsim/faultlink); the move/broadcast/kernel hooks of
	// this package's Injector ignore them. All four trigger on the
	// target link's logical frame sequence numbers, never wall-clock.
	LinkDrop  Kind = "link-drop"  // frames At..Until each lose their first Times transmissions (ack/retransmit heals)
	LinkDup   Kind = "link-dup"   // frames At..Until are delivered twice (receiver dedup discards the copy)
	LinkDelay Kind = "link-delay" // frames At..Until take +Delay units in flight (reordering past successors)
	HostCrash Kind = "host-crash" // receiving host loses its soft state at delivery of frame At (ledger replay heals)

	// Correlated link-fault kinds. A partition cuts a declared *set*
	// of links atomically: on every member link, frames At..Until are
	// parked in the link's backlog and released — in per-link order —
	// only when the partition heals, Delay logical units later. A
	// cascade is a host crash whose recovery load spreads: it fires
	// like host-crash at frame At of its link, and if the crashed
	// host's ledger replay volume reaches Threshold entries, the named
	// neighbour hosts in Victims crash too.
	Partition Kind = "partition" // member-link frames At..Until are backlogged until the cut heals Delay units later
	Cascade   Kind = "cascade"   // host-crash at frame At; replay volume >= Threshold crashes every host in Victims
)

// Target sentinels. "agent:<id>" and "order:<key>" are parameterized.
const (
	TargetSync = "sync" // whichever agent currently holds the synchronizer role
	TargetAny  = "any"  // every move, counted globally
)

// MaxDelay bounds a single fault's delay so fuzzed plans cannot stall
// an engine for unbounded wall time.
const MaxDelay = 1 << 20

// MaxLinkRetransmits bounds the transmissions of one wire frame: a
// link-drop fault may swallow at most MaxLinkRetransmits-2 attempts,
// so every frame still delivers within the budget and the wire layer
// can treat budget exhaustion as a plan bug rather than a live state.
const MaxLinkRetransmits = 8

// MaxCascadeVictims bounds the secondary crashes one cascade fault may
// name; a host has at most MaxDim neighbours anyway.
const MaxCascadeVictims = 30

// MaxPartitionLinks bounds the directed links one declared-set
// partition target may cut, so fuzzed plans stay parseable in bounded
// work. (A cut:dim boundary is bounded by the topology instead.)
const MaxPartitionLinks = 256

// Fault is one injected adversity.
type Fault struct {
	Kind Kind `json:"kind"`
	// Target selects whose counter triggers the fault: "sync",
	// "any", "agent:<id>", "order:<key>", or — for the link kinds —
	// "link:<u>-<v>" (the directed link from host u to host v).
	// Ignored by lost-wakeup (global broadcast counter) and
	// kernel-lag (virtual time).
	Target string `json:"target,omitempty"`
	At     int    `json:"at,omitempty"`    // 1-based trigger count
	Until  int    `json:"until,omitempty"` // window end for spikes / lost wakeups / link windows (default At)
	Delay  int64  `json:"delay,omitempty"` // delay in engine units
	Times  int    `json:"times,omitempty"` // link-drop: transmissions lost per matching frame (default 1)
	From   int64  `json:"from,omitempty"`  // kernel-lag: virtual window start
	To     int64  `json:"to,omitempty"`    // kernel-lag: virtual window end

	// Threshold is the cascade trigger: secondary crashes fire only
	// when the primary crash's ledger replay redelivers at least this
	// many entries (recovery load crossing the bar).
	Threshold int `json:"threshold,omitempty"`
	// Victims names the neighbour hosts a tripped cascade crashes, in
	// order. Every victim must be a hypercube neighbour of the faulted
	// link's receiving host.
	Victims []int `json:"victims,omitempty"`
}

// IsLink reports whether the fault is consumed by the wire layer
// rather than the move/broadcast/kernel hooks.
func (f Fault) IsLink() bool {
	switch f.Kind {
	case LinkDrop, LinkDup, LinkDelay, HostCrash, Partition, Cascade:
		return true
	}
	return false
}

// CrashesHosts reports whether the fault can wipe a receiving host's
// soft state: engines whose protocols cannot rebuild from a ledger
// replay (the coordinated netsim protocol, whose program state rides
// the messages themselves) must reject plans carrying one.
func (f Fault) CrashesHosts() bool { return f.Kind == HostCrash || f.Kind == Cascade }

// Plan is a named, seeded fault campaign for one run.
type Plan struct {
	Name   string  `json:"name,omitempty"`
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Crashes returns the number of crash faults, which bounds the spare
// agents a recovering runtime must provision.
func (p *Plan) Crashes() int {
	n := 0
	for _, f := range p.Faults {
		if f.Kind == Crash {
			n++
		}
	}
	return n
}

// RequiresRecovery reports whether the plan kills agents, i.e. whether
// it can only run on the crash-tolerant runtime.
func (p *Plan) RequiresRecovery() bool { return p.Crashes() > 0 }

// LinkFaults returns the faults consumed by the netsim wire layer.
// Safe on a nil plan.
func (p *Plan) LinkFaults() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.IsLink() {
			out = append(out, f)
		}
	}
	return out
}

// HasLinkFaults reports whether the plan carries any wire-level fault.
// Safe on a nil plan, so engines can gate on it directly.
func (p *Plan) HasLinkFaults() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.IsLink() {
			return true
		}
	}
	return false
}

// HasHostCrashFaults reports whether the plan carries a wire fault
// that wipes a receiving host's soft state (host-crash or cascade).
// Safe on a nil plan. Engines whose protocols cannot rebuild from the
// order-ledger replay must reject such plans.
func (p *Plan) HasHostCrashFaults() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.CrashesHosts() {
			return true
		}
	}
	return false
}

// Validate checks the plan's structural rules; an Injector may only be
// built from a valid plan.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("faults: nil plan")
	}
	if len(p.Faults) > 256 {
		return fmt.Errorf("faults: %d faults exceeds the 256-fault cap", len(p.Faults))
	}
	for i, f := range p.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("faults: fault %d: %w", i, err)
		}
	}
	return nil
}

func (f Fault) validate() error {
	if f.Delay < 0 || f.Delay > MaxDelay {
		return fmt.Errorf("delay %d outside [0,%d]", f.Delay, MaxDelay)
	}
	switch f.Kind {
	case Crash:
		if strings.HasPrefix(f.Target, "order:") {
			if err := validTarget(f.Target); err != nil {
				return err
			}
		} else if f.Target != TargetSync {
			return fmt.Errorf("crash target %q: only %q and \"order:<key>\" have deterministic move sequences", f.Target, TargetSync)
		}
		if f.At < 1 {
			return fmt.Errorf("crash needs at >= 1, got %d", f.At)
		}
	case Stall, LockStarve:
		if err := validTarget(f.Target); err != nil {
			return err
		}
		if f.At < 1 {
			return fmt.Errorf("%s needs at >= 1, got %d", f.Kind, f.At)
		}
		if f.Delay == 0 {
			return fmt.Errorf("%s needs a positive delay", f.Kind)
		}
	case LatencySpike:
		if err := validTarget(f.Target); err != nil {
			return err
		}
		if f.At < 1 || (f.Until != 0 && f.Until < f.At) {
			return fmt.Errorf("spike window [%d,%d] invalid", f.At, f.Until)
		}
		if f.Delay == 0 {
			return fmt.Errorf("latency-spike needs a positive delay")
		}
	case LostWakeup:
		if f.At < 1 || (f.Until != 0 && f.Until < f.At) {
			return fmt.Errorf("lost-wakeup window [%d,%d] invalid", f.At, f.Until)
		}
	case KernelLag:
		if f.From < 0 || f.To <= f.From {
			return fmt.Errorf("kernel-lag window [%d,%d) invalid", f.From, f.To)
		}
	case LinkDrop, LinkDup, LinkDelay, HostCrash, Cascade:
		from, to, err := ParseLinkTarget(f.Target)
		if err != nil {
			return err
		}
		if f.At < 1 || (f.Until != 0 && f.Until < f.At) {
			return fmt.Errorf("%s window [%d,%d] invalid", f.Kind, f.At, f.Until)
		}
		switch f.Kind {
		case LinkDrop:
			if f.Times < 0 || f.Times > MaxLinkRetransmits-2 {
				return fmt.Errorf("link-drop times %d outside [0,%d]", f.Times, MaxLinkRetransmits-2)
			}
		case LinkDelay:
			if f.Delay < 1 {
				return fmt.Errorf("link-delay needs a positive delay")
			}
		case HostCrash:
			if f.Until != 0 && f.Until != f.At {
				return fmt.Errorf("host-crash is one-shot; until %d must equal at %d (or be omitted)", f.Until, f.At)
			}
		case Cascade:
			if f.Until != 0 && f.Until != f.At {
				return fmt.Errorf("cascade is one-shot; until %d must equal at %d (or be omitted)", f.Until, f.At)
			}
			if f.Threshold < 1 {
				return fmt.Errorf("cascade needs threshold >= 1, got %d", f.Threshold)
			}
			if len(f.Victims) == 0 {
				return fmt.Errorf("cascade needs at least one victim host")
			}
			if len(f.Victims) > MaxCascadeVictims {
				return fmt.Errorf("cascade names %d victims, cap is %d", len(f.Victims), MaxCascadeVictims)
			}
			seen := make(map[int]bool, len(f.Victims))
			for _, v := range f.Victims {
				if v < 0 {
					return fmt.Errorf("cascade victim %d is negative", v)
				}
				if seen[v] {
					return fmt.Errorf("cascade victim %d named twice", v)
				}
				seen[v] = true
				if mathbits.OnesCount32(uint32(v^to)) != 1 {
					return fmt.Errorf("cascade victim %d is not a hypercube neighbour of crashed host %d", v, to)
				}
				if v == from {
					// A neighbour, but crashing the sender of the frame
					// that tripped the cascade would wipe the host whose
					// program order defines the link's frame sequence.
					return fmt.Errorf("cascade victim %d is the faulted link's sender", v)
				}
			}
		}
	case Partition:
		if _, err := parsePartitionTarget(f.Target); err != nil {
			return err
		}
		if f.At < 1 || (f.Until != 0 && f.Until < f.At) {
			return fmt.Errorf("partition window [%d,%d] invalid", f.At, f.Until)
		}
		if f.Delay < 1 {
			return fmt.Errorf("partition needs a positive heal delay")
		}
	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	return nil
}

// ParseLinkTarget decodes a "link:<u>-<v>" target into the directed
// link's endpoints.
func ParseLinkTarget(t string) (from, to int, err error) {
	rest, ok := strings.CutPrefix(t, "link:")
	if !ok {
		return 0, 0, fmt.Errorf("link fault needs a \"link:<u>-<v>\" target, got %q", t)
	}
	a, b, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, 0, fmt.Errorf("bad link target %q", t)
	}
	from, err = strconv.Atoi(a)
	if err == nil {
		to, err = strconv.Atoi(b)
	}
	if err != nil || from < 0 || to < 0 || from == to {
		return 0, 0, fmt.Errorf("bad link target %q", t)
	}
	return from, to, nil
}

// LinkTarget renders the canonical target string for a directed link.
func LinkTarget(from, to int) string { return fmt.Sprintf("link:%d-%d", from, to) }

// partitionTarget is the parsed form of a partition fault's target:
// either an explicit directed-link set or a dimension whose matching
// (the subcube boundary) is resolved against the topology later.
type partitionTarget struct {
	dim   int      // 1-based cut dimension, 0 for a declared link set
	links [][2]int // declared directed links (dim == 0)
}

// parsePartitionTarget decodes "cut:dim=<k>" (the dimension-k matching
// of the hypercube, both directions) or "links:<u>-<v>,<u>-<v>,..."
// (an explicit directed-link set).
func parsePartitionTarget(t string) (partitionTarget, error) {
	if rest, ok := strings.CutPrefix(t, "cut:dim="); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 1 {
			return partitionTarget{}, fmt.Errorf("bad partition target %q: want cut:dim=<k> with k >= 1", t)
		}
		return partitionTarget{dim: k}, nil
	}
	rest, ok := strings.CutPrefix(t, "links:")
	if !ok {
		return partitionTarget{}, fmt.Errorf("partition needs a \"cut:dim=<k>\" or \"links:<u>-<v>,...\" target, got %q", t)
	}
	parts := strings.Split(rest, ",")
	if len(parts) > MaxPartitionLinks {
		return partitionTarget{}, fmt.Errorf("partition target cuts %d links, cap is %d", len(parts), MaxPartitionLinks)
	}
	pt := partitionTarget{links: make([][2]int, 0, len(parts))}
	seen := make(map[[2]int]bool, len(parts))
	for _, p := range parts {
		from, to, err := ParseLinkTarget("link:" + p)
		if err != nil {
			return partitionTarget{}, fmt.Errorf("partition target %q: bad link %q", t, p)
		}
		lk := [2]int{from, to}
		if seen[lk] {
			return partitionTarget{}, fmt.Errorf("partition target %q names link %s twice", t, p)
		}
		seen[lk] = true
		pt.links = append(pt.links, lk)
	}
	return pt, nil
}

// CutDimTarget renders the partition target severing the dimension-k
// matching (1-based, matching the repo's bit-position convention): the
// 2^(d-1) undirected links whose endpoints differ exactly in bit k,
// cut in both directions.
func CutDimTarget(k int) string { return fmt.Sprintf("cut:dim=%d", k) }

// LinksTarget renders the partition target cutting an explicit set of
// directed links.
func LinksTarget(links [][2]int) string {
	var sb strings.Builder
	sb.WriteString("links:")
	for i, lk := range links {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d-%d", lk[0], lk[1])
	}
	return sb.String()
}

// IslandLinks returns the directed links isolating host v from its d
// hypercube neighbours — both directions of every incident edge — for
// use with LinksTarget: the "islanded host" partition cut.
func IslandLinks(v, d int) [][2]int {
	links := make([][2]int, 0, 2*d)
	for i := 1; i <= d; i++ {
		w := v ^ (1 << (i - 1))
		links = append(links, [2]int{v, w}, [2]int{w, v})
	}
	return links
}

// PartitionLinks resolves a partition fault's target to the concrete
// directed links it cuts on H_d. A cut:dim=k target expands to both
// directions of the dimension-k matching; a links: target is returned
// as declared. Every endpoint must fit the topology.
func PartitionLinks(target string, d int) ([][2]int, error) {
	pt, err := parsePartitionTarget(target)
	if err != nil {
		return nil, err
	}
	n := 1 << d
	if pt.dim > 0 {
		if pt.dim > d {
			return nil, fmt.Errorf("partition target %q cuts dimension %d of a %d-dimensional cube", target, pt.dim, d)
		}
		bit := 1 << (pt.dim - 1)
		links := make([][2]int, 0, n)
		for u := 0; u < n; u++ {
			if u&bit == 0 {
				links = append(links, [2]int{u, u | bit}, [2]int{u | bit, u})
			}
		}
		return links, nil
	}
	for _, lk := range pt.links {
		if lk[0] >= n || lk[1] >= n {
			return nil, fmt.Errorf("partition target %q: link %d-%d outside the %d-node topology", target, lk[0], lk[1], n)
		}
	}
	return pt.links, nil
}

// ValidateForHosts checks the plan against a concrete topology size on
// top of Validate: every link-fault endpoint, partition member link
// and cascade victim must name a host below `hosts`. Engines consult
// it at config time — a fault naming host 99 on an 8-node cube would
// otherwise compile to a trigger that can never fire and silently
// weaken the campaign.
func (p *Plan) ValidateForHosts(hosts int) error {
	if p == nil {
		return nil // engines treat a nil plan as fault-free pass-through
	}
	if err := p.Validate(); err != nil {
		return err
	}
	d := mathbits.Len(uint(hosts)) - 1
	for i, f := range p.Faults {
		if !f.IsLink() {
			continue
		}
		if f.Kind == Partition {
			if _, err := PartitionLinks(f.Target, d); err != nil {
				return fmt.Errorf("faults: fault %d: %w", i, err)
			}
			continue
		}
		from, to, err := ParseLinkTarget(f.Target)
		if err != nil {
			return fmt.Errorf("faults: fault %d: %w", i, err)
		}
		if from >= hosts || to >= hosts {
			return fmt.Errorf("faults: fault %d: target %q names a host outside the %d-node topology — it could never fire", i, f.Target, hosts)
		}
		if mathbits.OnesCount32(uint32(from^to)) != 1 {
			return fmt.Errorf("faults: fault %d: target %q is not a hypercube edge", i, f.Target)
		}
		for _, v := range f.Victims {
			if v >= hosts {
				return fmt.Errorf("faults: fault %d: cascade victim %d outside the %d-node topology", i, v, hosts)
			}
		}
	}
	return nil
}

func validTarget(t string) error {
	switch {
	case t == TargetSync || t == TargetAny:
		return nil
	case strings.HasPrefix(t, "agent:"):
		if _, err := strconv.Atoi(t[len("agent:"):]); err != nil {
			return fmt.Errorf("bad agent target %q", t)
		}
		return nil
	case strings.HasPrefix(t, "order:"):
		if t == "order:" {
			return fmt.Errorf("empty order key in target")
		}
		return nil
	default:
		return fmt.Errorf("unknown target %q", t)
	}
}

// MoveCtx identifies one move attempt to the injector.
type MoveCtx struct {
	Agent    int    // agent id
	Sync     bool   // the agent currently holds the synchronizer role
	OrderKey string // ledger key of the order being executed, if any
}

// Action is the injector's verdict for one move.
type Action struct {
	Crash bool  // the agent dies before making this move
	Delay int64 // units to sleep before the move, outside all locks
	Hold  int64 // units to hold the engine lock while applying the move
}

// Injector is the compiled, concurrency-safe form of a Plan. One
// injector serves exactly one run: it owns the per-target counters.
type Injector struct {
	mu     sync.Mutex
	faults []Fault
	fired  []bool

	anyMoves   int
	syncMoves  int
	agentMoves map[int]int
	orderEdges map[string]int
	broadcasts int
	firedCount int
}

// NewInjector compiles a validated plan. It panics on an invalid plan
// so engines can assume injector queries never fail.
func NewInjector(p *Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		faults:     append([]Fault(nil), p.Faults...),
		fired:      make([]bool, len(p.Faults)),
		agentMoves: map[int]int{},
		orderEdges: map[string]int{},
	}
}

// Crashes returns the number of crash faults in the compiled plan.
func (in *Injector) Crashes() int {
	n := 0
	for _, f := range in.faults {
		if f.Kind == Crash {
			n++
		}
	}
	return n
}

// Fired returns how many one-shot faults have triggered so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.firedCount
}

// BeforeMove advances the move counters for ctx and returns the
// combined action of every fault that triggers on this move.
func (in *Injector) BeforeMove(ctx MoveCtx) Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.anyMoves++
	if ctx.Sync {
		in.syncMoves++
	}
	in.agentMoves[ctx.Agent]++
	if ctx.OrderKey != "" {
		in.orderEdges[ctx.OrderKey]++
	}
	var act Action
	for i, f := range in.faults {
		n, ok := in.count(f.Target, ctx)
		if !ok {
			continue
		}
		switch f.Kind {
		case Crash:
			if !in.fired[i] && n == f.At {
				in.fired[i] = true
				in.firedCount++
				act.Crash = true
			}
		case Stall:
			if !in.fired[i] && n == f.At {
				in.fired[i] = true
				in.firedCount++
				act.Delay += f.Delay
			}
		case LockStarve:
			if !in.fired[i] && n == f.At {
				in.fired[i] = true
				in.firedCount++
				act.Hold += f.Delay
			}
		case LatencySpike:
			if n >= f.At && n <= f.window() {
				act.Delay += f.Delay
			}
		}
	}
	return act
}

// count resolves the trigger counter for a target in this context,
// reporting false when the fault does not apply to the move at all.
func (in *Injector) count(target string, ctx MoveCtx) (int, bool) {
	switch {
	case target == TargetAny || target == "":
		return in.anyMoves, true
	case target == TargetSync:
		if !ctx.Sync {
			return 0, false
		}
		return in.syncMoves, true
	case strings.HasPrefix(target, "agent:"):
		id, _ := strconv.Atoi(target[len("agent:"):])
		if ctx.Agent != id {
			return 0, false
		}
		return in.agentMoves[id], true
	case strings.HasPrefix(target, "order:"):
		key := target[len("order:"):]
		if ctx.OrderKey != key {
			return 0, false
		}
		return in.orderEdges[key], true
	default:
		return 0, false
	}
}

func (f Fault) window() int {
	if f.Until == 0 {
		return f.At
	}
	return f.Until
}

// DropWakeup advances the global broadcast counter and reports whether
// this broadcast should be swallowed. Engines that honour it must run
// a periodic re-broadcast (the watchdog) to stay live.
func (in *Injector) DropWakeup() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.broadcasts++
	for _, f := range in.faults {
		if f.Kind == LostWakeup && in.broadcasts >= f.At && in.broadcasts <= f.window() {
			return true
		}
	}
	return false
}

// KernelInterceptor returns a DES event interceptor deferring every
// event whose virtual time falls in a kernel-lag window to that
// window's end, or nil when the plan has no kernel-lag faults. A
// deferred event lands exactly at To, outside the half-open window, so
// it is never deferred twice by the same fault.
func (in *Injector) KernelInterceptor() func(at, seq int64) int64 {
	has := false
	for _, f := range in.faults {
		if f.Kind == KernelLag {
			has = true
			break
		}
	}
	if !has {
		return nil
	}
	return func(at, _ int64) int64 {
		var defer_ int64
		for _, f := range in.faults {
			if f.Kind == KernelLag && at >= f.From && at < f.To {
				if d := f.To - at; d > defer_ {
					defer_ = d
				}
			}
		}
		return defer_
	}
}
