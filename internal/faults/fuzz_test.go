package faults

import (
	"bytes"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the plan decoder: it must reject
// or accept, never panic, and whatever it accepts must survive its own
// validator and compile into an injector whose hooks tolerate any move
// context thrown at them. This is the "fuzzed plans never panic the
// engines" half of the harness contract; the engine-level half (fuzzed
// plans never wedge a real run) lives in the runtime package's tests.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"seed":1,"faults":[]}`))
	f.Add([]byte(`{"name":"x","seed":-9,"faults":[{"kind":"crash","target":"sync","at":3}]}`))
	f.Add([]byte(`{"seed":0,"faults":[{"kind":"crash","target":"order:p0.e1","at":1}]}`))
	f.Add([]byte(`{"seed":2,"faults":[{"kind":"stall","target":"agent:0","at":2,"delay":40}]}`))
	f.Add([]byte(`{"seed":3,"faults":[{"kind":"latency-spike","target":"any","at":1,"until":9,"delay":5}]}`))
	f.Add([]byte(`{"seed":4,"faults":[{"kind":"lock-starve","target":"sync","at":4,"delay":12}]}`))
	f.Add([]byte(`{"seed":5,"faults":[{"kind":"lost-wakeup","at":1,"until":30}]}`))
	f.Add([]byte(`{"seed":6,"faults":[{"kind":"kernel-lag","from":5,"to":50}]}`))
	f.Add([]byte(`{"seed":7,"faults":[{"kind":"crash","target":"any","at":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"seed":1,"faults":[{"kind":"stall","target":"any","at":1,"delay":99999999999}]}`))
	f.Add([]byte(`{"seed":8,"faults":[{"kind":"link-drop","target":"link:0-1","at":1,"until":8,"times":2}]}`))
	f.Add([]byte(`{"seed":9,"faults":[{"kind":"link-dup","target":"link:3-7","at":2,"until":5}]}`))
	f.Add([]byte(`{"seed":10,"faults":[{"kind":"link-delay","target":"link:1-0","at":1,"delay":500}]}`))
	f.Add([]byte(`{"seed":11,"faults":[{"kind":"host-crash","target":"link:0-4","at":2}]}`))
	f.Add([]byte(`{"seed":12,"faults":[{"kind":"link-drop","target":"link:1-1","at":1}]}`))
	f.Add([]byte(`{"seed":13,"faults":[{"kind":"link-drop","target":"link:0-1","at":1,"times":99}]}`))
	f.Add([]byte(`{"seed":14,"faults":[{"kind":"host-crash","target":"sync","at":1}]}`))
	f.Add([]byte(`{"seed":15,"faults":[{"kind":"partition","target":"cut:dim=2","at":1,"until":4,"delay":100}]}`))
	f.Add([]byte(`{"seed":16,"faults":[{"kind":"partition","target":"links:0-1,1-0,0-2,2-0","at":2,"delay":60}]}`))
	f.Add([]byte(`{"seed":17,"faults":[{"kind":"partition","target":"links:0-1,0-1","at":1,"delay":10}]}`))
	f.Add([]byte(`{"seed":18,"faults":[{"kind":"cascade","target":"link:0-1","at":2,"threshold":2,"victims":[3,5]}]}`))
	f.Add([]byte(`{"seed":19,"faults":[{"kind":"cascade","target":"link:0-1","at":2,"threshold":0,"victims":[3]}]}`))
	f.Add([]byte(`{"seed":20,"faults":[{"kind":"cascade","target":"link:0-1","at":1,"threshold":1,"victims":[6]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted a plan its own validator rejects: %v", err)
		}
		in := NewInjector(p)
		// Hammer the hooks with contexts the engines could produce.
		ctxs := []MoveCtx{
			{},
			{Agent: 1},
			{Agent: 2, Sync: true},
			{Agent: 3, OrderKey: "p0.e1"},
			{Agent: -1, OrderKey: "w1.x1.e0", Sync: true},
		}
		for i := 0; i < 64; i++ {
			act := in.BeforeMove(ctxs[i%len(ctxs)])
			if act.Delay < 0 || act.Delay > int64(len(p.Faults))*MaxDelay {
				t.Fatalf("delay %d out of bounds", act.Delay)
			}
			if act.Hold < 0 || act.Hold > int64(len(p.Faults))*MaxDelay {
				t.Fatalf("hold %d out of bounds", act.Hold)
			}
			in.DropWakeup()
		}
		if ic := in.KernelInterceptor(); ic != nil {
			for at := int64(-4); at < 64; at++ {
				if d := ic(at, 0); d < 0 {
					t.Fatalf("interceptor returned negative deferral %d at %d", d, at)
				}
			}
		}
		if in.Fired() > len(p.Faults) {
			t.Fatalf("Fired()=%d exceeds plan size %d", in.Fired(), len(p.Faults))
		}
	})
}
