package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// NoPlanHash is the canonical hash of a nil (fault-free) plan, so
// cache keys built over optional plans never collide with a real one.
const NoPlanHash = "fault-free"

// CanonicalHash returns a stable content hash of the plan's semantic
// payload: the seed and the fault list, every field in a fixed order.
// Two plans that decode to the same campaign hash equal no matter how
// their JSON source was formatted (key order, whitespace, omitted
// zero-value fields), and any semantic difference — one fault field,
// one victim, the order of faults — changes the hash. The cosmetic
// Name is deliberately excluded: renaming a plan must still hit the
// result cache, because the simulation it produces is identical.
//
// Determinism makes a run a pure function of (d, protocol, seed,
// plan), so this hash is the plan's component of a result-cache key; a
// hit is byte-identical to a re-simulation. Safe on a nil plan.
func (p *Plan) CanonicalHash() string {
	if p == nil {
		return NoPlanHash
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d;", p.Seed)
	for _, f := range p.Faults {
		fmt.Fprintf(&sb, "kind=%s|target=%q|at=%d|until=%d|delay=%d|times=%d|from=%d|to=%d|threshold=%d|victims=",
			f.Kind, f.Target, f.At, f.Until, f.Delay, f.Times, f.From, f.To, f.Threshold)
		for i, v := range f.Victims {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte(';')
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:16])
}
