package faults

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		fault Fault
	}{
		{"crash on any", Fault{Kind: Crash, Target: TargetAny, At: 1}},
		{"crash on agent", Fault{Kind: Crash, Target: "agent:3", At: 1}},
		{"crash without at", Fault{Kind: Crash, Target: TargetSync}},
		{"stall without delay", Fault{Kind: Stall, Target: TargetAny, At: 1}},
		{"stall without at", Fault{Kind: Stall, Target: TargetAny, Delay: 5}},
		{"starve bad target", Fault{Kind: LockStarve, Target: "nonsense", At: 1, Delay: 5}},
		{"spike inverted window", Fault{Kind: LatencySpike, Target: TargetAny, At: 9, Until: 3, Delay: 5}},
		{"spike without delay", Fault{Kind: LatencySpike, Target: TargetAny, At: 1}},
		{"lost-wakeup inverted window", Fault{Kind: LostWakeup, At: 9, Until: 3}},
		{"kernel-lag empty window", Fault{Kind: KernelLag, From: 5, To: 5}},
		{"kernel-lag negative start", Fault{Kind: KernelLag, From: -1, To: 5}},
		{"unknown kind", Fault{Kind: "meteor", Target: TargetAny, At: 1}},
		{"negative delay", Fault{Kind: Stall, Target: TargetAny, At: 1, Delay: -1}},
		{"oversized delay", Fault{Kind: Stall, Target: TargetAny, At: 1, Delay: MaxDelay + 1}},
		{"empty order key", Fault{Kind: Crash, Target: "order:", At: 1}},
		{"bad agent id", Fault{Kind: Stall, Target: "agent:xyz", At: 1, Delay: 5}},
		{"link-drop non-link target", Fault{Kind: LinkDrop, Target: TargetAny, At: 1}},
		{"link-drop self loop", Fault{Kind: LinkDrop, Target: "link:2-2", At: 1}},
		{"link-drop negative host", Fault{Kind: LinkDrop, Target: "link:-1-2", At: 1}},
		{"link-drop without at", Fault{Kind: LinkDrop, Target: "link:0-1"}},
		{"link-drop inverted window", Fault{Kind: LinkDrop, Target: "link:0-1", At: 5, Until: 2}},
		{"link-drop over retransmit budget", Fault{Kind: LinkDrop, Target: "link:0-1", At: 1, Times: MaxLinkRetransmits - 1}},
		{"link-drop negative times", Fault{Kind: LinkDrop, Target: "link:0-1", At: 1, Times: -1}},
		{"link-delay without delay", Fault{Kind: LinkDelay, Target: "link:0-1", At: 1}},
		{"link-dup malformed target", Fault{Kind: LinkDup, Target: "link:01", At: 1}},
		{"host-crash window", Fault{Kind: HostCrash, Target: "link:0-1", At: 2, Until: 5}},
		{"host-crash sync target", Fault{Kind: HostCrash, Target: TargetSync, At: 1}},
		{"partition link target", Fault{Kind: Partition, Target: "link:0-1", At: 1, Delay: 10}},
		{"partition without delay", Fault{Kind: Partition, Target: "links:0-1,1-0", At: 1}},
		{"partition without at", Fault{Kind: Partition, Target: "links:0-1", Delay: 10}},
		{"partition inverted window", Fault{Kind: Partition, Target: "links:0-1", At: 5, Until: 2, Delay: 10}},
		{"partition zero dim", Fault{Kind: Partition, Target: "cut:dim=0", At: 1, Delay: 10}},
		{"partition bad dim", Fault{Kind: Partition, Target: "cut:dim=x", At: 1, Delay: 10}},
		{"partition bad link", Fault{Kind: Partition, Target: "links:0-1,2-2", At: 1, Delay: 10}},
		{"partition duplicate link", Fault{Kind: Partition, Target: "links:0-1,0-1", At: 1, Delay: 10}},
		{"cascade without threshold", Fault{Kind: Cascade, Target: "link:0-1", At: 2, Victims: []int{3}}},
		{"cascade without victims", Fault{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2}},
		{"cascade window", Fault{Kind: Cascade, Target: "link:0-1", At: 2, Until: 5, Threshold: 2, Victims: []int{3}}},
		{"cascade non-neighbour victim", Fault{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2, Victims: []int{6}}},
		{"cascade sender victim", Fault{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2, Victims: []int{0}}},
		{"cascade duplicate victim", Fault{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2, Victims: []int{3, 3}}},
		{"cascade negative victim", Fault{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2, Victims: []int{-1}}},
	}
	for _, c := range cases {
		p := &Plan{Seed: 1, Faults: []Fault{c.fault}}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	big := &Plan{Seed: 1, Faults: make([]Fault, 257)}
	for i := range big.Faults {
		big.Faults[i] = Fault{Kind: LostWakeup, At: 1}
	}
	if err := big.Validate(); err == nil {
		t.Error("257-fault plan validated")
	}
	if err := (*Plan)(nil).Validate(); err == nil {
		t.Error("nil plan validated")
	}
}

func TestLinkFaultGrammar(t *testing.T) {
	plan := &Plan{Seed: 3, Faults: []Fault{
		{Kind: LinkDrop, Target: "link:0-5", At: 1, Until: 8, Times: 2},
		{Kind: LinkDup, Target: "link:5-0", At: 2},
		{Kind: LinkDelay, Target: "link:1-3", At: 1, Delay: 400},
		{Kind: HostCrash, Target: "link:0-5", At: 3},
		{Kind: Stall, Target: TargetAny, At: 1, Delay: 5},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("valid link plan rejected: %v", err)
	}
	if !plan.HasLinkFaults() {
		t.Error("HasLinkFaults false on a plan with four link faults")
	}
	if got := len(plan.LinkFaults()); got != 4 {
		t.Errorf("LinkFaults returned %d faults, want 4", got)
	}
	if (*Plan)(nil).HasLinkFaults() {
		t.Error("nil plan reports link faults")
	}
	if (*Plan)(nil).LinkFaults() != nil {
		t.Error("nil plan returns link faults")
	}

	from, to, err := ParseLinkTarget(LinkTarget(12, 7))
	if err != nil || from != 12 || to != 7 {
		t.Errorf("ParseLinkTarget(LinkTarget(12,7)) = %d,%d,%v", from, to, err)
	}
	for _, bad := range []string{"", "link:", "link:3", "link:a-b", "link:1-1", "sync"} {
		if _, _, err := ParseLinkTarget(bad); err == nil {
			t.Errorf("ParseLinkTarget(%q) accepted", bad)
		}
	}

	// The move-hook injector must treat link faults as inert: they
	// belong to the wire layer, not the move counters.
	in := NewInjector(plan)
	for i := 0; i < 16; i++ {
		act := in.BeforeMove(MoveCtx{Agent: i, Sync: true})
		if act.Crash {
			t.Fatal("link fault crashed a move-hook agent")
		}
	}
	if plan.RequiresRecovery() {
		t.Error("link faults must not force the crash-tolerant runtime")
	}
}

func TestPartitionTargetGrammar(t *testing.T) {
	// cut:dim=k expands to both directions of the dimension-k matching.
	links, err := PartitionLinks(CutDimTarget(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 8 {
		t.Fatalf("cut:dim=2 on H_3 cut %d directed links, want 8", len(links))
	}
	for _, lk := range links {
		if lk[0]^lk[1] != 2 {
			t.Errorf("cut:dim=2 cut link %d-%d, not a dimension-2 edge", lk[0], lk[1])
		}
	}
	if _, err := PartitionLinks(CutDimTarget(4), 3); err == nil {
		t.Error("cut:dim=4 accepted on H_3")
	}

	// A declared set round-trips through LinksTarget.
	declared := [][2]int{{0, 1}, {1, 0}, {0, 2}}
	got, err := PartitionLinks(LinksTarget(declared), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, declared) {
		t.Errorf("LinksTarget round trip: got %v want %v", got, declared)
	}
	if _, err := PartitionLinks("links:0-9", 3); err == nil {
		t.Error("links:0-9 accepted on the 8-node cube")
	}

	// IslandLinks isolates a host in both directions.
	island := IslandLinks(0, 3)
	if len(island) != 6 {
		t.Fatalf("IslandLinks(0,3) returned %d links, want 6", len(island))
	}
	plan := &Plan{Seed: 1, Faults: []Fault{
		{Kind: Partition, Target: LinksTarget(island), At: 1, Until: 4, Delay: 100},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("island partition plan rejected: %v", err)
	}
	if !plan.HasLinkFaults() {
		t.Error("partition plan reports no link faults")
	}
	if plan.HasHostCrashFaults() {
		t.Error("partition plan reports host-crash faults")
	}
}

func TestCascadeGrammar(t *testing.T) {
	plan := &Plan{Seed: 1, Faults: []Fault{
		{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2, Victims: []int{3, 5}},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("valid cascade plan rejected: %v", err)
	}
	if !plan.HasHostCrashFaults() {
		t.Error("cascade plan reports no host-crash faults")
	}
	if plan.RequiresRecovery() {
		t.Error("cascade faults must not force the crash-tolerant runtime")
	}
}

// TestValidateForHosts is the regression test for the silent-dead-fault
// bug: link targets naming hosts outside the configured topology used
// to compile into triggers that could never fire. They must now be
// rejected at engine-config time.
func TestValidateForHosts(t *testing.T) {
	good := &Plan{Seed: 1, Faults: []Fault{
		{Kind: LinkDrop, Target: "link:0-4", At: 1, Times: 2},
		{Kind: Partition, Target: CutDimTarget(3), At: 1, Delay: 50},
		{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 1, Victims: []int{3, 5}},
	}}
	if err := good.ValidateForHosts(8); err != nil {
		t.Fatalf("valid plan rejected for 8 hosts: %v", err)
	}

	cases := []struct {
		name  string
		fault Fault
	}{
		{"link host beyond order", Fault{Kind: LinkDrop, Target: "link:99-98", At: 1}},
		{"link to beyond order", Fault{Kind: LinkDup, Target: "link:0-8", At: 1}},
		{"non-edge link", Fault{Kind: LinkDrop, Target: "link:1-2", At: 1}},
		{"partition dim beyond cube", Fault{Kind: Partition, Target: "cut:dim=4", At: 1, Delay: 10}},
		{"partition link beyond order", Fault{Kind: Partition, Target: "links:0-8", At: 1, Delay: 10}},
		{"cascade victim beyond order", Fault{Kind: Cascade, Target: "link:0-1", At: 1, Threshold: 1, Victims: []int{9}}},
	}
	for _, c := range cases {
		p := &Plan{Seed: 1, Faults: []Fault{c.fault}}
		if err := p.ValidateForHosts(8); err == nil {
			t.Errorf("%s: accepted for 8 hosts", c.name)
		}
	}

	// Sanity: the same out-of-range plans pass the d-independent
	// Validate — the rejection is an engine-config concern.
	oob := &Plan{Seed: 1, Faults: []Fault{{Kind: LinkDrop, Target: "link:99-98", At: 1}}}
	if err := oob.Validate(); err != nil {
		t.Fatalf("d-independent Validate rejected an in-grammar plan: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := &Plan{Name: "mixed", Seed: 42, Faults: []Fault{
		{Kind: Crash, Target: "order:p0.e1", At: 1},
		{Kind: Crash, Target: TargetSync, At: 7},
		{Kind: Stall, Target: "agent:2", At: 3, Delay: 50},
		{Kind: LatencySpike, Target: TargetAny, At: 5, Until: 25, Delay: 10},
		{Kind: LostWakeup, At: 2, Until: 9},
		{Kind: KernelLag, From: 100, To: 250},
		{Kind: Partition, Target: "cut:dim=2", At: 1, Until: 6, Delay: 75},
		{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2, Victims: []int{3, 5}},
	}}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", p, got)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"seed":1,"faults":[],"bogus":true}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseRejectsInvalidPlan(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"seed":1,"faults":[{"kind":"crash","target":"any","at":1}]}`))
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestInjectorCrashOneShot(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Faults: []Fault{
		{Kind: Crash, Target: "order:k", At: 2},
	}})
	ctx := MoveCtx{Agent: 0, OrderKey: "k"}
	if in.BeforeMove(ctx).Crash {
		t.Fatal("crashed on edge 1, wanted edge 2")
	}
	if !in.BeforeMove(ctx).Crash {
		t.Fatal("no crash on edge 2")
	}
	if in.BeforeMove(ctx).Crash {
		t.Fatal("crash fired twice")
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
	if in.Crashes() != 1 {
		t.Fatalf("Crashes() = %d, want 1", in.Crashes())
	}
}

func TestInjectorTargetIsolation(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Faults: []Fault{
		{Kind: Crash, Target: TargetSync, At: 2},
	}})
	// Non-sync moves must never advance the sync counter.
	for i := 0; i < 10; i++ {
		if in.BeforeMove(MoveCtx{Agent: i}).Crash {
			t.Fatal("sync crash fired on a worker move")
		}
	}
	if in.BeforeMove(MoveCtx{Agent: 0, Sync: true}).Crash {
		t.Fatal("fired on sync move 1")
	}
	if !in.BeforeMove(MoveCtx{Agent: 3, Sync: true}).Crash {
		t.Fatal("did not fire on sync move 2 (counter must follow the role, not the agent)")
	}
}

func TestInjectorSpikeWindow(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Faults: []Fault{
		{Kind: LatencySpike, Target: TargetAny, At: 2, Until: 3, Delay: 7},
	}})
	want := []int64{0, 7, 7, 0}
	for i, d := range want {
		if got := in.BeforeMove(MoveCtx{}).Delay; got != d {
			t.Fatalf("move %d: delay %d, want %d", i+1, got, d)
		}
	}
}

func TestInjectorStallAndStarveCombine(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Faults: []Fault{
		{Kind: Stall, Target: TargetAny, At: 1, Delay: 11},
		{Kind: LockStarve, Target: TargetAny, At: 1, Delay: 5},
	}})
	act := in.BeforeMove(MoveCtx{})
	if act.Delay != 11 || act.Hold != 5 {
		t.Fatalf("act = %+v, want Delay 11 Hold 5", act)
	}
}

func TestDropWakeupWindow(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Faults: []Fault{
		{Kind: LostWakeup, At: 2, Until: 3},
	}})
	want := []bool{false, true, true, false}
	for i, drop := range want {
		if got := in.DropWakeup(); got != drop {
			t.Fatalf("broadcast %d: drop=%v, want %v", i+1, got, drop)
		}
	}
}

func TestKernelInterceptor(t *testing.T) {
	none := NewInjector(&Plan{Seed: 1, Faults: []Fault{{Kind: LostWakeup, At: 1}}})
	if none.KernelInterceptor() != nil {
		t.Fatal("interceptor without kernel-lag faults")
	}
	in := NewInjector(&Plan{Seed: 1, Faults: []Fault{
		{Kind: KernelLag, From: 10, To: 20},
	}})
	ic := in.KernelInterceptor()
	cases := []struct{ at, defer_ int64 }{
		{9, 0}, {10, 10}, {15, 5}, {19, 1}, {20, 0}, {25, 0},
	}
	for _, c := range cases {
		if got := ic(c.at, 0); got != c.defer_ {
			t.Fatalf("at=%d: defer %d, want %d", c.at, got, c.defer_)
		}
	}
}
