package faults

import (
	"encoding/json"
	"fmt"
	"io"
)

// Parse decodes and validates a JSON plan, e.g.
//
//	{"name":"mixed","seed":7,"faults":[
//	  {"kind":"crash","target":"order:p0.e1","at":1},
//	  {"kind":"latency-spike","target":"any","at":10,"until":40,"delay":25}]}
func Parse(r io.Reader) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// WriteJSON streams the plan as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}
