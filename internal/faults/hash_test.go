package faults

import (
	"strings"
	"testing"
)

// Two JSON documents that differ only in key order, whitespace and
// explicitly-spelled zero values must decode to plans with equal
// canonical hashes: the result cache keys on content, not formatting.
func TestCanonicalHashStableAcrossJSONFormatting(t *testing.T) {
	a := `{"seed":7,"faults":[
		{"kind":"latency-spike","target":"any","at":10,"until":40,"delay":25},
		{"kind":"link-drop","target":"link:0-1","at":1,"until":8,"times":2}]}`
	b := `{
		"faults": [
			{"delay": 25, "until": 40, "at": 10, "target": "any", "kind": "latency-spike"},
			{"times": 2, "kind": "link-drop", "until": 8, "at": 1, "target": "link:0-1"}
		],
		"seed": 7
	}`
	pa, err := Parse(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Parse(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if pa.CanonicalHash() != pb.CanonicalHash() {
		t.Errorf("reordered/reformatted JSON changed the hash: %s vs %s",
			pa.CanonicalHash(), pb.CanonicalHash())
	}
}

// The cosmetic name is excluded: renaming a plan must still hit the
// cache, because the simulation it drives is identical.
func TestCanonicalHashIgnoresName(t *testing.T) {
	p := &Plan{Name: "alpha", Seed: 3, Faults: []Fault{{Kind: Stall, Target: TargetAny, At: 2, Delay: 10}}}
	q := &Plan{Name: "beta", Seed: 3, Faults: []Fault{{Kind: Stall, Target: TargetAny, At: 2, Delay: 10}}}
	if p.CanonicalHash() != q.CanonicalHash() {
		t.Error("name changed the canonical hash")
	}
}

// Every semantic field must move the hash: a cache collision between
// distinct plans would serve wrong results as if re-simulated.
func TestCanonicalHashDistinguishesPlans(t *testing.T) {
	base := func() *Plan {
		return &Plan{Seed: 5, Faults: []Fault{
			{Kind: LatencySpike, Target: TargetAny, At: 4, Until: 9, Delay: 7},
			{Kind: Cascade, Target: "link:0-1", At: 2, Threshold: 2, Victims: []int{3, 5}},
		}}
	}
	ref := base().CanonicalHash()
	seen := map[string]string{ref: "base"}
	mutate := []struct {
		name string
		mod  func(p *Plan)
	}{
		{"seed", func(p *Plan) { p.Seed = 6 }},
		{"kind", func(p *Plan) { p.Faults[0].Kind = Stall }},
		{"target", func(p *Plan) { p.Faults[0].Target = TargetSync }},
		{"at", func(p *Plan) { p.Faults[0].At = 5 }},
		{"until", func(p *Plan) { p.Faults[0].Until = 10 }},
		{"delay", func(p *Plan) { p.Faults[0].Delay = 8 }},
		{"times", func(p *Plan) { p.Faults[0].Times = 1 }},
		{"from", func(p *Plan) { p.Faults[0].From = 1 }},
		{"to", func(p *Plan) { p.Faults[0].To = 2 }},
		{"threshold", func(p *Plan) { p.Faults[1].Threshold = 3 }},
		{"victims", func(p *Plan) { p.Faults[1].Victims = []int{3} }},
		{"victim order", func(p *Plan) { p.Faults[1].Victims = []int{5, 3} }},
		{"fault order", func(p *Plan) { p.Faults[0], p.Faults[1] = p.Faults[1], p.Faults[0] }},
		{"dropped fault", func(p *Plan) { p.Faults = p.Faults[:1] }},
	}
	for _, m := range mutate {
		p := base()
		m.mod(p)
		h := p.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q (hash %s)", m.name, prev, h)
		}
		seen[h] = m.name
	}
}

// A nil plan — the fault-free default of every engine — has a fixed
// sentinel hash that no real plan can produce.
func TestCanonicalHashNilPlan(t *testing.T) {
	var p *Plan
	if p.CanonicalHash() != NoPlanHash {
		t.Errorf("nil plan hash = %q, want %q", p.CanonicalHash(), NoPlanHash)
	}
	if (&Plan{}).CanonicalHash() == NoPlanHash {
		t.Error("empty non-nil plan collides with the nil sentinel")
	}
}
