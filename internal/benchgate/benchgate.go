// Package benchgate is the benchmark regression gate: it owns the
// BENCH.json schema written by cmd/hqbench and compares a freshly
// measured report against a committed baseline under tolerance bands.
// Wall-clock moves with the hardware, so ns/op gets a wide relative
// band; allocation counts are deterministic for a pinned workload, so
// allocs/op must be exact-or-better. `make bench-check` runs the gate
// in CI and fails listing the offending families.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
)

// Result is one family's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole BENCH.json document.
type Report struct {
	Schema     string   `json:"schema"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Families   []Result `json:"families"`
}

// Load reads a report from disk.
func Load(path string) (Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("benchgate: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return Report{}, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return rep, nil
}

// DefaultNsTolerance is the relative ns/op regression band: wall-clock
// readings on shared CI hardware jitter, so only a slowdown beyond 25%
// of the baseline fails the gate.
const DefaultNsTolerance = 0.25

// Violation is one family measurement outside its tolerance band.
type Violation struct {
	Family string
	Field  string // "ns/op", "allocs/op" or "missing"
	Base   int64
	Got    int64
	Limit  int64 // largest acceptable value
}

func (v Violation) String() string {
	if v.Field == "missing" {
		return fmt.Sprintf("%s: family present in baseline but not measured", v.Family)
	}
	return fmt.Sprintf("%s: %s regressed: baseline %d, limit %d, measured %d",
		v.Family, v.Field, v.Base, v.Limit, v.Got)
}

// Compare checks got against base family by family (matched on name)
// and returns every violation, in baseline order:
//
//   - ns/op may grow by at most nsTol relative to the baseline
//     (nsTol <= 0 selects DefaultNsTolerance);
//   - allocs/op must be exact-or-better — allocation counts for a
//     pinned, pooled workload are deterministic, so any extra
//     allocation is a real regression, not noise;
//   - a baseline family missing from got is a violation (a silently
//     dropped benchmark would otherwise pass forever).
//
// Families measured in got but absent from base are ignored: new
// benchmarks land before their baseline is regenerated.
func Compare(base, got Report, nsTol float64) []Violation {
	if nsTol <= 0 {
		nsTol = DefaultNsTolerance
	}
	measured := make(map[string]Result, len(got.Families))
	for _, f := range got.Families {
		measured[f.Name] = f
	}
	var out []Violation
	for _, b := range base.Families {
		g, ok := measured[b.Name]
		if !ok {
			out = append(out, Violation{Family: b.Name, Field: "missing"})
			continue
		}
		nsLimit := b.NsPerOp + int64(float64(b.NsPerOp)*nsTol)
		if g.NsPerOp > nsLimit {
			out = append(out, Violation{
				Family: b.Name, Field: "ns/op",
				Base: b.NsPerOp, Got: g.NsPerOp, Limit: nsLimit,
			})
		}
		if g.AllocsPerOp > b.AllocsPerOp {
			out = append(out, Violation{
				Family: b.Name, Field: "allocs/op",
				Base: b.AllocsPerOp, Got: g.AllocsPerOp, Limit: b.AllocsPerOp,
			})
		}
	}
	return out
}
