// Package benchgate is the benchmark regression gate: it owns the
// BENCH.json schema written by cmd/hqbench and compares a freshly
// measured report against a committed baseline under tolerance bands.
// Wall-clock moves with the hardware, so ns/op gets a wide relative
// band; allocation counts are deterministic for a pinned workload, so
// allocs/op must be exact-or-better. `make bench-check` runs the gate
// in CI and fails listing the offending families.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result is one family's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	// Reruns and NsSpread are present when hqbench -reruns re-measured
	// the family: NsPerOp is the minimum over the reruns and NsSpread
	// their relative spread, (max-min)/min. A wide spread means the
	// machine was too noisy for the reading to gate anything.
	Reruns   int     `json:"reruns,omitempty"`
	NsSpread float64 `json:"ns_spread,omitempty"`
}

// Provenance records where a report came from, so committed
// BENCH_*.json baselines are attributable: the git commit the suite
// ran at, the Go toolchain, the kernel release and the CPU count.
// Every field is best-effort — a missing git binary or a non-repo
// checkout leaves its field empty rather than failing the run — and
// the gate never compares provenance, only measurements.
type Provenance struct {
	GitCommit string `json:"git_commit,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Kernel    string `json:"kernel,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`
}

// Report is the whole BENCH.json document.
type Report struct {
	Schema     string      `json:"schema"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Provenance *Provenance `json:"provenance,omitempty"`
	Families   []Result    `json:"families"`
}

// Load reads a report from disk.
func Load(path string) (Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("benchgate: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return Report{}, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return rep, nil
}

// DefaultNsTolerance is the relative ns/op regression band: wall-clock
// readings on shared CI hardware jitter, so only a slowdown beyond 25%
// of the baseline fails the gate.
const DefaultNsTolerance = 0.25

// Violation is one family measurement outside its tolerance band.
type Violation struct {
	Family string
	Field  string // "ns/op", "allocs/op", "missing" or "metrics[<key>]"
	Base   int64
	Got    int64
	Limit  int64 // largest acceptable value

	// BaseF/GotF carry the values for metrics[<key>] violations; the
	// paper metrics are recorded as float64 in the schema.
	BaseF float64
	GotF  float64
}

func (v Violation) String() string {
	if v.Field == "missing" {
		return fmt.Sprintf("%s: family present in baseline but not measured", v.Family)
	}
	if v.Field == "ns_spread" {
		return fmt.Sprintf("%s: ns/op spread %.1f%% across %d reruns exceeds the %.1f%% band — the machine is too noisy for this reading to be a baseline",
			v.Family, 100*v.GotF, v.Base, 100*v.BaseF)
	}
	if strings.HasPrefix(v.Field, "metrics[") {
		return fmt.Sprintf("%s: %s diverged: baseline %v, measured %v — paper metrics are deterministic, so this is a correctness regression, not noise",
			v.Family, v.Field, v.BaseF, v.GotF)
	}
	return fmt.Sprintf("%s: %s regressed: baseline %d, limit %d, measured %d",
		v.Family, v.Field, v.Base, v.Limit, v.Got)
}

// Subset returns a copy of base keeping only the named families, in
// baseline order. Subset runs (hqbench -families / -filter) gate
// against it so the families they deliberately skipped do not fail the
// comparison as "missing"; a full run must still gate against the full
// baseline to keep that protection.
func Subset(base Report, names []string) Report {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	out := base
	out.Families = nil
	for _, f := range base.Families {
		if keep[f.Name] {
			out.Families = append(out.Families, f)
		}
	}
	return out
}

// DefaultSpreadBand is the default relative ns/op spread allowed
// across hqbench reruns of one family before the run is rejected as
// too noisy to serve as a baseline or to gate one.
const DefaultSpreadBand = 0.40

// SpreadViolations rejects rerun-measured families whose ns/op spread
// exceeds the band (band <= 0 selects DefaultSpreadBand). Families
// measured without reruns carry no spread and are never rejected here.
func SpreadViolations(rep Report, band float64) []Violation {
	if band <= 0 {
		band = DefaultSpreadBand
	}
	var out []Violation
	for _, f := range rep.Families {
		if f.Reruns > 1 && f.NsSpread > band {
			out = append(out, Violation{
				Family: f.Name, Field: "ns_spread",
				Base: int64(f.Reruns), BaseF: band, GotF: f.NsSpread,
			})
		}
	}
	return out
}

// Compare checks got against base family by family (matched on name)
// and returns every violation, in baseline order:
//
//   - ns/op may grow by at most nsTol relative to the baseline
//     (nsTol <= 0 selects DefaultNsTolerance);
//   - allocs/op must be exact-or-better — allocation counts for a
//     pinned, pooled workload are deterministic, so any extra
//     allocation is a real regression, not noise;
//   - every paper metric in the baseline (agents, moves, steps …)
//     must match exactly — the workloads are seeded and deterministic,
//     so a metrics drift means the computation changed, turning the
//     perf gate into a correctness diff as well;
//   - a baseline family missing from got is a violation (a silently
//     dropped benchmark would otherwise pass forever).
//
// Families measured in got but absent from base are ignored: new
// benchmarks land before their baseline is regenerated.
func Compare(base, got Report, nsTol float64) []Violation {
	if nsTol <= 0 {
		nsTol = DefaultNsTolerance
	}
	measured := make(map[string]Result, len(got.Families))
	for _, f := range got.Families {
		measured[f.Name] = f
	}
	var out []Violation
	for _, b := range base.Families {
		g, ok := measured[b.Name]
		if !ok {
			out = append(out, Violation{Family: b.Name, Field: "missing"})
			continue
		}
		nsLimit := b.NsPerOp + int64(float64(b.NsPerOp)*nsTol)
		if g.NsPerOp > nsLimit {
			out = append(out, Violation{
				Family: b.Name, Field: "ns/op",
				Base: b.NsPerOp, Got: g.NsPerOp, Limit: nsLimit,
			})
		}
		if g.AllocsPerOp > b.AllocsPerOp {
			out = append(out, Violation{
				Family: b.Name, Field: "allocs/op",
				Base: b.AllocsPerOp, Got: g.AllocsPerOp, Limit: b.AllocsPerOp,
			})
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if gv := g.Metrics[k]; gv != b.Metrics[k] {
				out = append(out, Violation{
					Family: b.Name, Field: "metrics[" + k + "]",
					BaseF: b.Metrics[k], GotF: gv,
				})
			}
		}
	}
	return out
}
