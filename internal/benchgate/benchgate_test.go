package benchgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(fams ...Result) Report {
	return Report{Schema: "hqbench/v1", Families: fams}
}

func TestCompareWithinBandsPasses(t *testing.T) {
	base := report(
		Result{Name: "clean/d=8", NsPerOp: 1000, AllocsPerOp: 300},
		Result{Name: "visibility/d=8", NsPerOp: 400, AllocsPerOp: 120},
	)
	got := report(
		Result{Name: "clean/d=8", NsPerOp: 1250, AllocsPerOp: 300},    // exactly +25% ns, equal allocs
		Result{Name: "visibility/d=8", NsPerOp: 380, AllocsPerOp: 90}, // strictly better
		Result{Name: "brand-new/d=4", NsPerOp: 9999, AllocsPerOp: 9999},
	)
	if vs := Compare(base, got, 0); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

// TestCompareFailsOnAllocsRegression is the gate's reason to exist: a
// single extra allocation per op over the baseline must fail, even
// with wall-clock well inside its band.
func TestCompareFailsOnAllocsRegression(t *testing.T) {
	base := report(Result{Name: "clean/d=12", NsPerOp: 1000, AllocsPerOp: 4000})
	got := report(Result{Name: "clean/d=12", NsPerOp: 900, AllocsPerOp: 4001})
	vs := Compare(base, got, 0)
	if len(vs) != 1 || vs[0].Field != "allocs/op" {
		t.Fatalf("want one allocs/op violation, got %v", vs)
	}
	if !strings.Contains(vs[0].String(), "clean/d=12") {
		t.Errorf("violation should name the family: %s", vs[0])
	}
}

func TestCompareFailsOnNsRegressionBeyondBand(t *testing.T) {
	base := report(Result{Name: "des-throughput/events=100k", NsPerOp: 1000, AllocsPerOp: 10})
	got := report(Result{Name: "des-throughput/events=100k", NsPerOp: 1251, AllocsPerOp: 10})
	vs := Compare(base, got, 0)
	if len(vs) != 1 || vs[0].Field != "ns/op" {
		t.Fatalf("want one ns/op violation, got %v", vs)
	}
	if vs[0].Limit != 1250 {
		t.Errorf("limit = %d, want 1250", vs[0].Limit)
	}
}

func TestCompareFlagsMissingFamily(t *testing.T) {
	base := report(
		Result{Name: "kept", NsPerOp: 10, AllocsPerOp: 1},
		Result{Name: "dropped", NsPerOp: 10, AllocsPerOp: 1},
	)
	got := report(Result{Name: "kept", NsPerOp: 10, AllocsPerOp: 1})
	vs := Compare(base, got, 0)
	if len(vs) != 1 || vs[0].Field != "missing" || vs[0].Family != "dropped" {
		t.Fatalf("want one missing-family violation, got %v", vs)
	}
}

// TestSubsetGatesOnlyMeasuredFamilies: a subset run (hqbench
// -families) cuts the baseline down to what it measured, so skipped
// families neither fail as missing nor sneak regressions through for
// the families that did run.
func TestSubsetGatesOnlyMeasuredFamilies(t *testing.T) {
	base := report(
		Result{Name: "clean/d=16", NsPerOp: 100, AllocsPerOp: 5},
		Result{Name: "clean/d=20", NsPerOp: 1000, AllocsPerOp: 9},
		Result{Name: "visibility/d=8", NsPerOp: 10, AllocsPerOp: 1},
	)
	sub := Subset(base, []string{"clean/d=16", "clean/d=20"})
	if len(sub.Families) != 2 || sub.Families[0].Name != "clean/d=16" || sub.Families[1].Name != "clean/d=20" {
		t.Fatalf("Subset kept %v", sub.Families)
	}
	got := report(
		Result{Name: "clean/d=16", NsPerOp: 100, AllocsPerOp: 5},
		Result{Name: "clean/d=20", NsPerOp: 1000, AllocsPerOp: 9},
	)
	if vs := Compare(sub, got, 0); len(vs) != 0 {
		t.Fatalf("subset comparison should pass, got %v", vs)
	}
	// A regression inside the subset still fails.
	got.Families[1].AllocsPerOp = 10
	if vs := Compare(sub, got, 0); len(vs) != 1 || vs[0].Field != "allocs/op" {
		t.Fatalf("want one allocs/op violation, got %v", vs)
	}
}

// TestCompareFailsOnMetricsDrift makes the gate a correctness diff:
// the paper metrics are deterministic for a seeded workload, so any
// drift — even with perf inside every band — must fail.
func TestCompareFailsOnMetricsDrift(t *testing.T) {
	base := report(Result{
		Name: "visibility/d=8", NsPerOp: 1000, AllocsPerOp: 100,
		Metrics: map[string]float64{"agents": 128, "moves": 1024, "steps": 17},
	})
	got := report(Result{
		Name: "visibility/d=8", NsPerOp: 1000, AllocsPerOp: 100,
		Metrics: map[string]float64{"agents": 128, "moves": 1025, "steps": 17},
	})
	vs := Compare(base, got, 0)
	if len(vs) != 1 || vs[0].Field != "metrics[moves]" {
		t.Fatalf("want one metrics[moves] violation, got %v", vs)
	}
	if vs[0].BaseF != 1024 || vs[0].GotF != 1025 {
		t.Errorf("violation values = %v/%v, want 1024/1025", vs[0].BaseF, vs[0].GotF)
	}
	if !strings.Contains(vs[0].String(), "correctness") {
		t.Errorf("metrics violation should say it is a correctness regression: %s", vs[0])
	}
}

func TestCompareMetricsExactEqualityPasses(t *testing.T) {
	m := map[string]float64{"agents": 8, "moves": 20, "steps": 5}
	base := report(Result{Name: "f", NsPerOp: 100, AllocsPerOp: 10, Metrics: m})
	got := report(Result{Name: "f", NsPerOp: 110, AllocsPerOp: 9,
		Metrics: map[string]float64{"agents": 8, "moves": 20, "steps": 5, "extra": 1}})
	if vs := Compare(base, got, 0); len(vs) != 0 {
		t.Fatalf("identical baseline metrics must pass (extra measured keys ignored): %v", vs)
	}
}

func TestCompareFailsOnMissingMetric(t *testing.T) {
	base := report(Result{Name: "f", NsPerOp: 100, AllocsPerOp: 10,
		Metrics: map[string]float64{"moves": 20}})
	got := report(Result{Name: "f", NsPerOp: 100, AllocsPerOp: 10})
	vs := Compare(base, got, 0)
	if len(vs) != 1 || vs[0].Field != "metrics[moves]" || vs[0].GotF != 0 {
		t.Fatalf("a baseline metric that vanished must fail the gate, got %v", vs)
	}
}

func TestCompareCustomTolerance(t *testing.T) {
	base := report(Result{Name: "f", NsPerOp: 100, AllocsPerOp: 1})
	got := report(Result{Name: "f", NsPerOp: 190, AllocsPerOp: 1})
	if vs := Compare(base, got, 1.0); len(vs) != 0 {
		t.Fatalf("+90%% within a 100%% band should pass: %v", vs)
	}
	if vs := Compare(base, got, 0.5); len(vs) != 1 {
		t.Fatalf("+90%% outside a 50%% band should fail: %v", vs)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	want := Report{
		Schema: "hqbench/v1", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 4, NumCPU: 8,
		Families: []Result{{
			Name: "clean/d=8", Iters: 8, NsPerOp: 123, AllocsPerOp: 45,
			BytesPerOp: 678, Metrics: map[string]float64{"agents": 8},
		}},
	}
	buf, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCPU != 8 || got.GOMAXPROCS != 4 || len(got.Families) != 1 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if got.Families[0].Name != "clean/d=8" || got.Families[0].Metrics["agents"] != 8 {
		t.Fatalf("family mangled: %+v", got.Families[0])
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON should error")
	}
}
