package sched

import (
	"errors"
	"testing"
)

// FuzzMap drives the pool with arbitrary task counts, worker counts
// and panic patterns: it must never deadlock (the harness's own test
// timeout would fire), every surviving result must land in its input
// slot, and every injected panic must surface as a *PanicError rather
// than vanish or kill the batch.
func FuzzMap(f *testing.F) {
	f.Add(10, 4, uint16(0))
	f.Add(0, 1, uint16(0))
	f.Add(1, 9, uint16(1))
	f.Add(100, 3, uint16(0xffff))
	f.Add(257, 16, uint16(0b1010101010101010))
	f.Fuzz(func(t *testing.T, n, workers int, panicMask uint16) {
		if n < 0 || n > 2000 {
			n = (n%2000 + 2000) % 2000
		}
		if workers < -2 || workers > 64 {
			workers = workers%64 + 1
		}
		panics := func(i int) bool { return panicMask&(1<<(uint(i)%16)) != 0 }
		out, err := Map(workers, n, func(i int) (int, error) {
			if panics(i) {
				panic(i)
			}
			return i*31 + 7, nil
		})
		if len(out) != n {
			t.Fatalf("len(out) = %d, want %d", len(out), n)
		}
		wantErr := false
		for i := 0; i < n; i++ {
			if panics(i) {
				wantErr = true
				if out[i] != 0 {
					t.Fatalf("panicked slot %d holds %d", i, out[i])
				}
			} else if out[i] != i*31+7 {
				t.Fatalf("slot %d = %d, want %d", i, out[i], i*31+7)
			}
		}
		if wantErr {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("panics occurred but error is %v", err)
			}
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	})
}
