package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapRunsEveryTaskOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	_, err := Map(7, n, func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	task := func(i int) (string, error) { return fmt.Sprintf("r%d", i*7%13), nil }
	serial, err := Map(1, 50, task)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(8, 50, task)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %q, parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapErrorsJoinInInputOrder(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for _, i := range []int{0, 3, 6, 9} {
		if out[i] != 0 {
			t.Errorf("failed slot %d holds %d, want zero", i, out[i])
		}
		want := fmt.Sprintf("task %d: boom %d", i, i)
		if !contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
	if out[1] != 1 || out[8] != 8 {
		t.Error("successful slots clobbered")
	}
}

func TestMapPanicsBecomeErrors(t *testing.T) {
	out, err := Map(4, 20, func(i int) (int, error) {
		if i == 13 {
			panic("unlucky")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("panic lost")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 13 {
		t.Fatalf("want PanicError for task 13, got %v", err)
	}
	if out[13] != 0 {
		t.Errorf("panicked slot holds %d", out[13])
	}
	if out[12] != 13 || out[14] != 15 {
		t.Error("neighbouring tasks damaged")
	}
}

func TestMapEdgeCases(t *testing.T) {
	if out, err := Map(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Errorf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Map(4, -1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Error("n=-1 accepted")
	}
	// More workers than tasks, and the default pool size.
	for _, w := range []int{100, 0, -5} {
		out, err := Map(w, 3, func(i int) (int, error) { return i, nil })
		if err != nil || len(out) != 3 || out[2] != 2 {
			t.Errorf("workers=%d: out=%v err=%v", w, out, err)
		}
	}
}

func TestCollect(t *testing.T) {
	out, err := Collect(3, 5, func(i int) int { return -i })
	if err != nil {
		t.Fatal(err)
	}
	if out[4] != -4 {
		t.Errorf("out=%v", out)
	}
	if _, err := Collect(3, 5, func(i int) int { panic("x") }); err == nil {
		t.Error("Collect lost a panic")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMapWWorkerExclusive verifies the per-worker contract behind
// pooled environments: worker ids stay in range, and one worker never
// runs two tasks concurrently — so state indexed by w needs no locks.
func TestMapWWorkerExclusive(t *testing.T) {
	const workers, n = 4, 200
	var busy [workers]atomic.Int32
	out, err := MapW(workers, n, func(w, i int) (int, error) {
		if w < 0 || w >= workers {
			t.Errorf("task %d: worker id %d out of range", i, w)
		}
		if busy[w].Add(1) != 1 {
			t.Errorf("worker %d ran two tasks at once", w)
		}
		runtime.Gosched()
		busy[w].Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMapWSerialUsesWorkerZero pins the legacy path: a single worker
// (or a degenerate task count) always reports worker id 0.
func TestMapWSerialUsesWorkerZero(t *testing.T) {
	for _, workers := range []int{1, 8} {
		n := 1
		if workers == 1 {
			n = 5
		}
		if _, err := MapW(workers, n, func(w, i int) (struct{}, error) {
			if w != 0 {
				t.Errorf("workers=%d n=%d task %d: worker %d, want 0", workers, n, i, w)
			}
			return struct{}{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCollectWMatchesCollect: the worker-aware variant returns the
// same input-ordered results and converts panics the same way.
func TestCollectWMatchesCollect(t *testing.T) {
	want, _ := Collect(3, 20, func(i int) int { return 3 * i })
	got, err := CollectW(3, 20, func(_, i int) int { return 3 * i })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: %d vs %d", i, got[i], want[i])
		}
	}
	if _, err := CollectW(3, 5, func(_, i int) int { panic("x") }); err == nil {
		t.Error("CollectW lost a panic")
	}
}

// MapWCtx with a live context behaves exactly like MapW.
func TestMapWCtxNoCancellation(t *testing.T) {
	out, err := MapWCtx(context.Background(), 4, 50, func(_, i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	out, err = MapWCtx(nil, 1, 3, func(_, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("nil ctx: %v %v", out, err)
	}
}

// Once the context is cancelled, tasks that have not started are
// skipped with ctx.Err() recorded, while already-running tasks finish
// normally — the no-poisoning contract pooled environments rely on.
func TestMapWCtxCancelSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 64
	var started atomic.Int32
	out, err := MapWCtx(ctx, 1, n, func(_, i int) (int, error) {
		started.Add(1)
		if i == 9 {
			cancel() // in-flight: must still complete and keep its result
		}
		return i * 2, nil
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in joined error, got %v", err)
	}
	if got := started.Load(); got != 10 {
		t.Fatalf("started %d tasks after cancel at task 9 (serial), want 10", got)
	}
	if out[9] != 18 {
		t.Fatalf("in-flight task's result dropped: out[9] = %d", out[9])
	}
	for i := 10; i < n; i++ {
		if out[i] != 0 {
			t.Fatalf("skipped task %d has result %d", i, out[i])
		}
	}
}

// A deadline already expired skips every task; nothing runs.
func TestMapWCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := MapWCtx(ctx, 4, 10, func(_, _ int) (int, error) { ran = true; return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran {
		t.Fatal("task ran under an already-cancelled context")
	}
}

// Panics still surface as *PanicError through the ctx wrapper, and a
// cancelled batch joins both panic and cancellation errors.
func TestMapWCtxPanicAndCancelJoin(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapWCtx(ctx, 1, 5, func(_, i int) (int, error) {
		if i == 1 {
			cancel()
			panic("boom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("want *PanicError for task 1, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled joined, got %v", err)
	}
}
