// Package sched is the batch runner behind every evaluation surface:
// it fans a slice of independent simulation tasks (experiment reports,
// per-seed adversarial runs, fault scenarios) across a work-stealing
// worker pool while keeping the output deterministic.
//
// The determinism contract:
//
//   - Results are returned in input order, written to a pre-sized
//     slice slot per task — never through a channel whose arrival
//     order depends on scheduling.
//   - Tasks must be self-seeding: any randomness is derived from the
//     task index (or an explicit per-task seed), never from a shared
//     RNG, so task i computes the same value no matter which worker
//     runs it or when.
//   - workers == 1 is the legacy serial path: every task runs on the
//     caller's goroutine, in input order, with no pool at all. A
//     parallel run of deterministic tasks is therefore byte-identical
//     to the serial run.
//
// Work distribution is work-stealing over index ranges: the input
// [0,n) is split into one contiguous span per worker; each worker
// drains its own span from the front and, when empty, steals the back
// half of the largest remaining victim span. Both ends are claimed by
// CAS on a single packed word, so distribution is lock-free and a
// panicking task can never strand indices.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// PanicError is the error recorded for a task that panicked: the task
// index and the recovered value, with the result slot left zero.
type PanicError struct {
	Index int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %d panicked: %v", e.Index, e.Value)
}

// span is one worker's index range [lo, hi), packed into a single
// atomic word (hi<<32 | lo). The owner takes from lo, thieves steal
// from hi; both transitions are CAS, so no index is ever run twice or
// lost.
type span struct {
	bounds atomic.Uint64
	_      [7]uint64 // pad to a cache line: spans sit in one array
}

func pack(lo, hi int) uint64     { return uint64(hi)<<32 | uint64(lo) }
func unpack(b uint64) (int, int) { return int(b & 0xffffffff), int(b >> 32) }

func (s *span) store(lo, hi int) { s.bounds.Store(pack(lo, hi)) }

// take claims the front index of the span (owner side).
func (s *span) take() (int, bool) {
	for {
		b := s.bounds.Load()
		lo, hi := unpack(b)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(b, pack(lo+1, hi)) {
			return lo, true
		}
	}
}

// stealHalf claims the back half of the span (thief side), returning
// the stolen range.
func (s *span) stealHalf() (int, int, bool) {
	for {
		b := s.bounds.Load()
		lo, hi := unpack(b)
		n := hi - lo
		if n <= 0 {
			return 0, 0, false
		}
		mid := hi - (n+1)/2
		if s.bounds.CompareAndSwap(b, pack(lo, mid)) {
			return mid, hi, true
		}
	}
}

// size reports the remaining span length (racy, used only to pick the
// largest victim — correctness never depends on it).
func (s *span) size() int {
	lo, hi := unpack(s.bounds.Load())
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Map runs fn(0..n-1) across a work-stealing pool of the given size
// and returns the n results in input order. workers <= 0 uses
// DefaultWorkers; workers == 1 runs every task serially on the
// caller's goroutine (the legacy path). A task that returns an error
// or panics leaves its result slot zero; all failures are joined (in
// input order) into the returned error.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapW(workers, n, func(_, i int) (T, error) { return fn(i) })
}

// MapW is Map with the worker identity exposed: fn(w, i) runs task i
// on worker w, where 0 <= w < effective workers. A worker runs one
// task at a time and a stolen index runs under the thief's id, so
// per-worker state — an environment pool, scratch buffers — indexed
// by w needs no locking. The serial path (workers == 1, or n <= 1)
// passes w == 0 for every task. Determinism is unchanged: w may vary
// run to run, so tasks must not let it influence their *result*, only
// which cache they use.
func MapW[T any](workers, n int, fn func(w, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sched: negative task count %d", n)
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runTask(0, i, fn, out, errs)
		}
		return out, errors.Join(errs...)
	}

	spans := make([]span, workers)
	chunk := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		spans[w].store(lo, hi)
		lo = hi
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				// Drain our own span.
				for {
					i, ok := spans[self].take()
					if !ok {
						break
					}
					runTask(self, i, fn, out, errs)
				}
				// Steal the back half of the largest victim span.
				victim, best := -1, 0
				for v := range spans {
					if v == self {
						continue
					}
					if sz := spans[v].size(); sz > best {
						victim, best = v, sz
					}
				}
				if victim < 0 {
					return
				}
				slo, shi, ok := spans[victim].stealHalf()
				if !ok {
					continue // lost the race; rescan
				}
				spans[self].store(slo, shi)
			}
		}(w)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// MapWCtx is MapW with cooperative cancellation: once ctx is done, a
// task that has not yet started is skipped — its result slot stays
// zero and ctx.Err() is recorded for it — while tasks already running
// run to completion. That granularity is deliberate: a simulation
// aborted mid-run would leave blocked processes holding references
// into its pooled environment (poisoning it, see envpool), whereas a
// run that finishes cleanly hands its environment back for reuse. The
// campaign service uses this for deadlines and client cancellations;
// errors.Is(err, ctx.Err()) distinguishes skipped work from failures.
// A nil ctx means no cancellation (plain MapW).
func MapWCtx[T any](ctx context.Context, workers, n int, fn func(w, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		return MapW(workers, n, fn)
	}
	return MapW(workers, n, func(w, i int) (T, error) {
		if err := ctx.Err(); err != nil {
			var zero T
			return zero, err
		}
		return fn(w, i)
	})
}

// runTask executes one task, converting a panic into a *PanicError so
// a crashing task costs its own slot, never the batch.
func runTask[T any](w, i int, fn func(int, int) (T, error), out []T, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			errs[i] = &PanicError{Index: i, Value: r}
		}
	}()
	v, err := fn(w, i)
	if err != nil {
		errs[i] = fmt.Errorf("sched: task %d: %w", i, err)
		return
	}
	out[i] = v
}

// Collect is Map for infallible tasks: panics still surface as errors.
func Collect[T any](workers, n int, fn func(i int) T) ([]T, error) {
	return Map(workers, n, func(i int) (T, error) { return fn(i), nil })
}

// CollectW is MapW for infallible tasks.
func CollectW[T any](workers, n int, fn func(w, i int) T) ([]T, error) {
	return MapW(workers, n, func(w, i int) (T, error) { return fn(w, i), nil })
}
