package topologies

import (
	"testing"

	"hypersearch/internal/graph"
)

func TestCubeConnectedCyclesStructure(t *testing.T) {
	for d := 3; d <= 6; d++ {
		g := CubeConnectedCycles(d)
		if g.Order() != d*(1<<d) {
			t.Fatalf("CCC(%d) order = %d", d, g.Order())
		}
		// 3-regular: d*2^d vertices, 3*d*2^d/2 edges.
		if g.Size() != 3*d*(1<<d)/2 {
			t.Errorf("CCC(%d) size = %d", d, g.Size())
		}
		for v := 0; v < g.Order(); v++ {
			if len(g.Neighbours(v)) != 3 {
				t.Fatalf("CCC(%d) vertex %d has degree %d", d, v, len(g.Neighbours(v)))
			}
		}
		if !graph.Connected(g) {
			t.Errorf("CCC(%d) disconnected", d)
		}
	}
}

func TestCCCBounds(t *testing.T) {
	for _, d := range []int{2, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CCC(%d) accepted", d)
				}
			}()
			CubeConnectedCycles(d)
		}()
	}
}

func TestButterflyStructure(t *testing.T) {
	for d := 1; d <= 6; d++ {
		g := Butterfly(d)
		if g.Order() != (d+1)*(1<<d) {
			t.Fatalf("BF(%d) order = %d", d, g.Order())
		}
		// Each of the d levels contributes 2^(d+1) edges.
		if g.Size() != d*(1<<(d+1)) {
			t.Errorf("BF(%d) size = %d", d, g.Size())
		}
		if !graph.Connected(g) {
			t.Errorf("BF(%d) disconnected", d)
		}
		// End levels have degree 2, middle levels degree 4.
		rows := 1 << d
		if len(g.Neighbours(0)) != 2 || len(g.Neighbours(d*rows)) != 2 {
			t.Errorf("BF(%d) end degrees wrong", d)
		}
		if d >= 2 && len(g.Neighbours(rows)) != 4 {
			t.Errorf("BF(%d) middle degree = %d", d, len(g.Neighbours(rows)))
		}
	}
}

func TestButterflyBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Butterfly(0) accepted")
		}
	}()
	Butterfly(0)
}
