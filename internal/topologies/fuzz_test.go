package topologies

import (
	"testing"

	"hypersearch/internal/graph"
)

// FuzzParse asserts that no spec string can panic the parser and that
// every accepted spec yields a connected graph.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"hypercube:4", "path:9", "ring:8", "mesh:3x4", "torus:3x4",
		"complete:6", "star:5", "random:12:4:7", "mesh:0x0", "blob", ":",
		"hypercube:-1", "random:1:0:9223372036854775807", "mesh:1x1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := Parse(spec)
		if err != nil {
			return
		}
		if g.Order() < 1 {
			t.Fatalf("spec %q produced empty graph", spec)
		}
		if g.Order() <= 1<<12 && !graph.Connected(g) {
			t.Fatalf("spec %q produced a disconnected graph", spec)
		}
	})
}
