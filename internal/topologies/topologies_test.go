package topologies

import (
	"testing"
	"testing/quick"

	"hypersearch/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.Order() != 5 || g.Size() != 4 || !graph.IsTree(g) {
		t.Error("path wrong")
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.Order() != 6 || g.Size() != 6 || !graph.Connected(g) {
		t.Error("ring wrong")
	}
	for v := 0; v < 6; v++ {
		if len(g.Neighbours(v)) != 2 {
			t.Errorf("ring vertex %d has degree %d", v, len(g.Neighbours(v)))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Ring(2) accepted")
		}
	}()
	Ring(2)
}

func TestMesh(t *testing.T) {
	g := Mesh(3, 4)
	if g.Order() != 12 {
		t.Fatal("order wrong")
	}
	// Edge count: rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17.
	if g.Size() != 17 {
		t.Errorf("mesh size = %d, want 17", g.Size())
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if len(g.Neighbours(0)) != 2 || len(g.Neighbours(1)) != 3 || len(g.Neighbours(5)) != 4 {
		t.Error("mesh degrees wrong")
	}
	if !graph.Connected(g) {
		t.Error("mesh disconnected")
	}
}

func TestMeshDegenerate(t *testing.T) {
	if Mesh(1, 7).Size() != 6 {
		t.Error("1xN mesh should be a path")
	}
	defer func() {
		if recover() == nil {
			t.Error("Mesh(0, 3) accepted")
		}
	}()
	Mesh(0, 3)
}

func TestTorus(t *testing.T) {
	g := Torus(3, 4)
	if g.Order() != 12 || g.Size() != 24 {
		t.Fatalf("torus order/size = %d/%d", g.Order(), g.Size())
	}
	for v := 0; v < g.Order(); v++ {
		if len(g.Neighbours(v)) != 4 {
			t.Errorf("torus vertex %d degree %d", v, len(g.Neighbours(v)))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Torus(2, 4) accepted")
		}
	}()
	Torus(2, 4)
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.Size() != 15 {
		t.Errorf("K_6 size = %d", g.Size())
	}
	for v := 0; v < 6; v++ {
		if len(g.Neighbours(v)) != 5 {
			t.Error("K_6 degree wrong")
		}
	}
}

func TestStar(t *testing.T) {
	g := Star(4)
	if g.Order() != 5 || len(g.Neighbours(0)) != 4 || len(g.Neighbours(3)) != 1 {
		t.Error("star wrong")
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	f := func(rawN, rawExtra uint8, seed int64) bool {
		n := 1 + int(rawN)%30
		extra := int(rawExtra) % 20
		g := RandomConnected(n, extra, seed)
		if g.Order() != n || !graph.Connected(g) {
			return false
		}
		maxEdges := n * (n - 1) / 2
		return g.Size() <= maxEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(20, 10, 5)
	b := RandomConnected(20, 10, 5)
	for v := 0; v < 20; v++ {
		na, nb := a.Neighbours(v), b.Neighbours(v)
		if len(na) != len(nb) {
			t.Fatal("seeded generator not deterministic")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("seeded generator not deterministic")
			}
		}
	}
}

func TestRandomConnectedSaturation(t *testing.T) {
	// Asking for more chords than fit must terminate with K_n.
	g := RandomConnected(5, 100, 1)
	if g.Size() != 10 {
		t.Errorf("saturated graph has %d edges", g.Size())
	}
}

func TestRandomTree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := RandomTree(1+int(seed)*3%25, seed)
		if !graph.IsTree(tr) {
			t.Fatalf("seed %d: not a tree", seed)
		}
		if tr.Root() != 0 {
			t.Fatal("root moved")
		}
	}
}
