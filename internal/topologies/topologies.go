// Package topologies is a catalog of interconnection networks beyond
// the paper's hypercube, letting the library's topology-generic pieces
// (board, invariant checkers, optimal search, level sweep, greedy
// search) be exercised and compared across the structures the
// graph-searching literature studies: paths, rings, meshes, tori,
// complete graphs, and random connected graphs.
package topologies

import (
	"fmt"
	"math/rand"

	"hypersearch/internal/graph"
)

// Path returns the path graph on n vertices (0 - 1 - ... - n-1).
func Path(n int) *graph.Adjacency {
	g := graph.NewAdjacency(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle on n vertices (n >= 3).
func Ring(n int) *graph.Adjacency {
	if n < 3 {
		panic(fmt.Sprintf("topologies: ring needs >= 3 vertices, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Mesh returns the rows x cols grid graph; vertex (r, c) has index
// r*cols + c.
func Mesh(rows, cols int) *graph.Adjacency {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("topologies: mesh %dx%d invalid", rows, cols))
	}
	g := graph.NewAdjacency(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus (grid with wraparound); both
// sides must be >= 3 so no duplicate edges arise.
func Torus(rows, cols int) *graph.Adjacency {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("topologies: torus needs sides >= 3, got %dx%d", rows, cols))
	}
	g := graph.NewAdjacency(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			g.AddEdge(v, r*cols+(c+1)%cols)
			g.AddEdge(v, ((r+1)%rows)*cols+c)
		}
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Adjacency {
	g := graph.NewAdjacency(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns the star with the given number of leaves; the center is
// vertex 0.
func Star(leaves int) *graph.Adjacency {
	g := graph.NewAdjacency(leaves + 1)
	for v := 1; v <= leaves; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// RandomConnected returns a random connected graph on n vertices:
// a uniform random spanning tree skeleton (random parent attachment)
// plus `extra` random chords, deterministically from the seed.
func RandomConnected(n, extra int, seed int64) *graph.Adjacency {
	if n < 1 {
		panic("topologies: need at least one vertex")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewAdjacency(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			// Bail out when the graph saturates.
			if g.Size() == n*(n-1)/2 {
				break
			}
			continue
		}
		g.AddEdge(u, v)
		added++
	}
	return g
}

// RandomTree returns a random tree on n vertices rooted at 0,
// deterministically from the seed.
func RandomTree(n int, seed int64) *graph.Tree {
	if n < 1 {
		panic("topologies: need at least one vertex")
	}
	rng := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return graph.MustTree(0, parent)
}
