package topologies

import (
	"fmt"

	"hypersearch/internal/graph"
)

// CubeConnectedCycles returns CCC(d): each hypercube corner is blown
// up into a d-cycle; cycle vertex (x, i) connects to its cycle
// neighbours (x, i±1 mod d) and across dimension i to (x ^ 2^i, i).
// CCC(d) has d*2^d vertices, all of degree 3 — the classic
// constant-degree stand-in for the hypercube. Vertex (x, i) has index
// x*d + i. Requires d >= 3 so the cycle edges are simple.
func CubeConnectedCycles(d int) *graph.Adjacency {
	if d < 3 || d > 16 {
		panic(fmt.Sprintf("topologies: CCC dimension %d out of range [3,16]", d))
	}
	n := d * (1 << d)
	g := graph.NewAdjacency(n)
	id := func(x, i int) int { return x*d + i }
	for x := 0; x < 1<<d; x++ {
		for i := 0; i < d; i++ {
			// Cycle edge to (x, i+1); added once per pair.
			g.AddEdge(id(x, i), id(x, (i+1)%d))
			// Cube edge across dimension i; add from the lower copy.
			if x&(1<<i) == 0 {
				g.AddEdge(id(x, i), id(x^(1<<i), i))
			}
		}
	}
	return g
}

// Butterfly returns the d-dimensional (wrapped = false) butterfly
// network: levels 0..d of 2^d rows; vertex (l, r) connects to
// (l+1, r) and (l+1, r ^ 2^l). It has (d+1)*2^d vertices. Vertex
// (l, r) has index l*2^d + r.
func Butterfly(d int) *graph.Adjacency {
	if d < 1 || d > 16 {
		panic(fmt.Sprintf("topologies: butterfly dimension %d out of range [1,16]", d))
	}
	rows := 1 << d
	g := graph.NewAdjacency((d + 1) * rows)
	id := func(l, r int) int { return l*rows + r }
	for l := 0; l < d; l++ {
		for r := 0; r < rows; r++ {
			g.AddEdge(id(l, r), id(l+1, r))
			g.AddEdge(id(l, r), id(l+1, r^(1<<l)))
		}
	}
	return g
}
