package topologies

import (
	"fmt"
	"strconv"
	"strings"

	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
)

// Parse builds a graph from a compact spec string, for the generic
// command-line tools:
//
//	hypercube:4      H_4
//	path:9           path on 9 vertices
//	ring:8           cycle on 8 vertices
//	mesh:3x4         3x4 grid
//	torus:3x4        3x4 torus
//	complete:6       K_6
//	star:5           star with 5 leaves
//	random:12:4:7    12 vertices, 4 extra chords, seed 7
func Parse(spec string) (graph.Graph, error) {
	kind, rest, found := strings.Cut(spec, ":")
	if !found {
		return nil, fmt.Errorf("topologies: spec %q has no parameters (want kind:params)", spec)
	}
	atoi := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("topologies: bad number %q in spec %q", s, spec)
		}
		return v, nil
	}
	switch kind {
	case "hypercube":
		d, err := atoi(rest)
		if err != nil {
			return nil, err
		}
		if d < 0 || d > 20 {
			return nil, fmt.Errorf("topologies: hypercube dimension %d out of range [0,20]", d)
		}
		return hypercube.New(d), nil
	case "ccc":
		d, err := atoi(rest)
		if err != nil {
			return nil, err
		}
		if d < 3 || d > 16 {
			return nil, fmt.Errorf("topologies: ccc dimension %d out of range [3,16]", d)
		}
		return CubeConnectedCycles(d), nil
	case "butterfly":
		d, err := atoi(rest)
		if err != nil {
			return nil, err
		}
		if d < 1 || d > 16 {
			return nil, fmt.Errorf("topologies: butterfly dimension %d out of range [1,16]", d)
		}
		return Butterfly(d), nil
	case "path", "ring", "complete", "star":
		n, err := atoi(rest)
		if err != nil {
			return nil, err
		}
		if n < 1 || n > 1<<20 {
			return nil, fmt.Errorf("topologies: size %d out of range", n)
		}
		switch kind {
		case "path":
			return Path(n), nil
		case "ring":
			if n < 3 {
				return nil, fmt.Errorf("topologies: ring needs >= 3 vertices")
			}
			return Ring(n), nil
		case "complete":
			return Complete(n), nil
		default:
			return Star(n), nil
		}
	case "mesh", "torus":
		rs, cs, ok := strings.Cut(rest, "x")
		if !ok {
			return nil, fmt.Errorf("topologies: %s spec %q wants RxC", kind, spec)
		}
		r, err := atoi(rs)
		if err != nil {
			return nil, err
		}
		c, err := atoi(cs)
		if err != nil {
			return nil, err
		}
		if kind == "mesh" {
			if r < 1 || c < 1 {
				return nil, fmt.Errorf("topologies: mesh %dx%d invalid", r, c)
			}
			return Mesh(r, c), nil
		}
		if r < 3 || c < 3 {
			return nil, fmt.Errorf("topologies: torus needs sides >= 3")
		}
		return Torus(r, c), nil
	case "random":
		parts := strings.Split(rest, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topologies: random spec wants random:N:EXTRA:SEED")
		}
		n, err := atoi(parts[0])
		if err != nil {
			return nil, err
		}
		extra, err := atoi(parts[1])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("topologies: bad seed %q", parts[2])
		}
		if n < 1 {
			return nil, fmt.Errorf("topologies: need at least one vertex")
		}
		return RandomConnected(n, extra, seed), nil
	default:
		return nil, fmt.Errorf("topologies: unknown kind %q (want hypercube, ccc, butterfly, path, ring, mesh, torus, complete, star, random)", kind)
	}
}
