package topologies

import (
	"testing"

	"hypersearch/internal/graph"
)

func TestParseValidSpecs(t *testing.T) {
	cases := []struct {
		spec  string
		order int
		size  int
	}{
		{"hypercube:3", 8, 12},
		{"path:5", 5, 4},
		{"ring:6", 6, 6},
		{"mesh:3x4", 12, 17},
		{"torus:3x4", 12, 24},
		{"complete:5", 5, 10},
		{"star:4", 5, 4},
		{"ccc:3", 24, 36},
		{"butterfly:2", 12, 16},
	}
	for _, c := range cases {
		g, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.Order() != c.order || graph.Size(g) != c.size {
			t.Errorf("%s: order/size = %d/%d, want %d/%d",
				c.spec, g.Order(), graph.Size(g), c.order, c.size)
		}
	}
}

func TestParseRandom(t *testing.T) {
	g, err := Parse("random:12:4:7")
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 12 || !graph.Connected(g) {
		t.Error("random parse wrong")
	}
	// Same spec, same graph.
	h, _ := Parse("random:12:4:7")
	if graph.Size(g) != graph.Size(h) {
		t.Error("random spec not deterministic")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "hypercube", "hypercube:x", "hypercube:25", "mesh:3", "mesh:ax4",
		"mesh:3xb", "mesh:0x4", "torus:2x4", "ring:2", "path:0", "blob:3",
		"random:5:2", "random:5:2:x", "random:0:0:1", "ccc:2", "ccc:zz",
		"butterfly:0", "butterfly:q",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
