// Package experiments regenerates every evaluation artefact of the
// paper — its four figures and the cost bounds of Theorems 2-8 and
// Section 5 — as measured-versus-claimed reports. cmd/hqexperiments
// renders them; EXPERIMENTS.md records a snapshot; the root benchmark
// suite exercises the same runs under testing.B.
package experiments

import (
	"fmt"
	goruntime "runtime"
	"strings"
	"time"

	"hypersearch/internal/board"
	"hypersearch/internal/combin"
	"hypersearch/internal/core"
	"hypersearch/internal/envpool"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/intruder"
	"hypersearch/internal/isoperimetry"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netarena"
	"hypersearch/internal/netsim"
	"hypersearch/internal/sched"
	"hypersearch/internal/stats"
	"hypersearch/internal/strategy"
	"hypersearch/internal/strategy/greedy"
	"hypersearch/internal/strategy/levelsweep"
	"hypersearch/internal/strategy/naive"
	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/strategy/treesearch"
	"hypersearch/internal/trace"
	"hypersearch/internal/viz"
)

// Report is one regenerated paper artefact.
type Report struct {
	ID         string // experiment id from DESIGN.md (T2, F1, X3, ...)
	Title      string
	PaperClaim string // what the paper states
	Table      *metrics.Table
	Notes      string // measured-vs-claimed commentary
	Verdict    string // REPRODUCED / REPRODUCED-WITH-NOTE / FINDING
}

// Render renders the report as markdown.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&b, "**Paper claim**: %s\n\n", r.PaperClaim)
	if r.Table != nil {
		b.WriteString(r.Table.Markdown())
		b.WriteString("\n")
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "%s\n\n", r.Notes)
	}
	fmt.Fprintf(&b, "**Verdict**: %s\n", r.Verdict)
	return b.String()
}

// runSpec executes a DES run on an environment drawn from src and
// releases it before reporting, so a sweep worker's pool sees every
// environment again. Panics on harness misuse (the experiment ids are
// fixed strings).
func runSpec(src strategy.Source, spec core.Spec) metrics.Result {
	res, env, err := core.RunWith(spec, src)
	if err != nil {
		panic(err)
	}
	src.Release(env)
	return res
}

func runOn(src strategy.Source, name string, d int) metrics.Result {
	return runSpec(src, core.Spec{Strategy: name, Dim: d})
}

// sourcePools builds one environment pool per scheduler worker:
// sched.CollectW guarantees a worker runs one task at a time, so
// pools[w] is used without locking, and consecutive tasks on one
// worker reuse each other's environments.
func sourcePools(workers int) []strategy.Source {
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	pools := make([]strategy.Source, workers)
	for i := range pools {
		pools[i] = envpool.New()
	}
	return pools
}

// netArenas is sourcePools for the netsim engines: one network arena
// per scheduler worker, used without locking under CollectW's
// one-task-per-worker guarantee.
func netArenas(workers int) []*netarena.Arena {
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	arenas := make([]*netarena.Arena, workers)
	for i := range arenas {
		arenas[i] = netarena.New()
	}
	return arenas
}

// T2 reproduces Theorem 2: the team size of Algorithm CLEAN.
func T2(maxD int) Report { return t2(envpool.New(), maxD) }

func t2(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "team (measured)", "closed form", "peak away", "n/log n", "n/sqrt(log n)", "team/(n/sqrt log n)")
	for d := 2; d <= maxD; d++ {
		r := runOn(src, core.Clean, d)
		cf := combin.CleanTeamSize(d)
		t.AddRow(d, r.Nodes, r.TeamSize, cf, r.PeakAway,
			combin.NOverLogN(d), combin.NOverSqrtLogN(d),
			float64(r.TeamSize)/combin.NOverSqrtLogN(d))
	}
	return Report{
		ID:         "T2",
		Title:      "Agents used by Algorithm CLEAN",
		PaperClaim: "O(n/log n) agents (Theorem 2), via the closed form max_l [C(d,l+1)+C(d-1,l-1)]+1",
		Table:      t,
		Notes: "The measured team matches the closed form exactly for every d. " +
			"Note: the closed form is Θ(n/√log n) (central binomial C(d,d/2) = Θ(2^d/√d)); " +
			"the paper's final simplification to O(n/log n) overstates the saving, but the qualitative " +
			"claim — asymptotically far fewer agents than the visibility strategy's n/2 — holds: the " +
			"ratio to n/√log n stabilizes below a small constant.",
		Verdict: "REPRODUCED-WITH-NOTE (asymptotic simplification in the paper is loose)",
	}
}

// T3 reproduces Theorem 3: total moves of Algorithm CLEAN.
func T3(maxD int) Report { return t3(envpool.New(), maxD) }

func t3(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "agent moves", "(d+1)2^(d-1) - d", "sync moves", "total", "total/(n log n)")
	for d := 2; d <= maxD; d++ {
		r := runOn(src, core.Clean, d)
		t.AddRow(d, r.Nodes, r.AgentMoves, combin.CleanAgentMoves(d)-int64(d),
			r.SyncMoves, r.TotalMoves, float64(r.TotalMoves)/combin.NLogN(d))
	}
	return Report{
		ID:         "T3",
		Title:      "Moves performed by Algorithm CLEAN",
		PaperClaim: "O(n log n) total moves (Theorem 3); agents alone account for (d+1)·2^(d-1)",
		Table:      t,
		Notes: "Agent moves match the Theorem-3 count exactly, minus d: the paper bills every " +
			"broadcast-tree leaf a return trip, but the final level-d agent stays in place when the " +
			"search ends. Synchronizer traffic is the dominant term and the total-to-n·log n ratio " +
			"stays bounded (≈1.5-2), confirming O(n log n).",
		Verdict: "REPRODUCED",
	}
}

// T4 reproduces Theorem 4: ideal time of Algorithm CLEAN.
func T4(maxD int) Report { return t4(envpool.New(), maxD) }

func t4(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "makespan", "sync moves", "makespan/(n log n)")
	for d := 2; d <= maxD; d++ {
		r := runOn(src, core.Clean, d)
		t.AddRow(d, r.Nodes, r.Makespan, r.SyncMoves, float64(r.Makespan)/combin.NLogN(d))
	}
	return Report{
		ID:         "T4",
		Title:      "Ideal time of Algorithm CLEAN",
		PaperClaim: "O(n log n) time steps; the synchronizer serializes the run (Theorem 4)",
		Table:      t,
		Notes: "Unit-latency makespan tracks the synchronizer's own move count (courier and " +
			"returner trips overlap with the walk), and the ratio to n·log n stays bounded.",
		Verdict: "REPRODUCED",
	}
}

// T5 reproduces Theorem 5: team size of CLEAN WITH VISIBILITY.
func T5(maxD int) Report { return t5(envpool.New(), maxD) }

func t5(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "team", "n/2", "exact?")
	exact := true
	for d := 1; d <= maxD; d++ {
		r := runOn(src, core.Visibility, d)
		ok := int64(r.TeamSize) == combin.VisibilityAgents(d)
		exact = exact && ok
		t.AddRow(d, r.Nodes, r.TeamSize, combin.VisibilityAgents(d), ok)
	}
	return Report{
		ID:         "T5",
		Title:      "Agents used by CLEAN WITH VISIBILITY",
		PaperClaim: "exactly n/2 agents (Theorem 5)",
		Table:      t,
		Notes:      verdictNote(exact, "Every dimension matches n/2 exactly."),
		Verdict:    verdictOf(exact),
	}
}

// T7 reproduces Theorem 7: time of CLEAN WITH VISIBILITY.
func T7(maxD int) Report { return t7(envpool.New(), maxD) }

func t7(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "makespan", "log n", "exact?")
	exact := true
	for d := 1; d <= maxD; d++ {
		r := runOn(src, core.Visibility, d)
		ok := r.Makespan == int64(d)
		exact = exact && ok
		t.AddRow(d, r.Nodes, r.Makespan, d, ok)
	}
	return Report{
		ID:         "T7",
		Title:      "Ideal time of CLEAN WITH VISIBILITY",
		PaperClaim: "log n time steps (Theorem 7): class C_i is cleaned at step i",
		Table:      t,
		Notes:      verdictNote(exact, "Unit-latency makespan is exactly d for every dimension."),
		Verdict:    verdictOf(exact),
	}
}

// T8 reproduces Theorem 8: moves of CLEAN WITH VISIBILITY.
func T8(maxD int) Report { return t8(envpool.New(), maxD) }

func t8(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "moves", "(d+1)2^(d-2)", "moves/(n log n)", "exact?")
	exact := true
	for d := 2; d <= maxD; d++ {
		r := runOn(src, core.Visibility, d)
		ok := r.TotalMoves == combin.VisibilityMoves(d)
		exact = exact && ok
		t.AddRow(d, r.Nodes, r.TotalMoves, combin.VisibilityMoves(d),
			float64(r.TotalMoves)/combin.NLogN(d), ok)
	}
	return Report{
		ID:         "T8",
		Title:      "Moves performed by CLEAN WITH VISIBILITY",
		PaperClaim: "O(n log n) moves (Theorem 8); exactly the sum of broadcast-tree leaf depths",
		Table:      t,
		Notes:      verdictNote(exact, "Exactly (d+1)·2^(d-2) = n(log n + 1)/4 for every dimension."),
		Verdict:    verdictOf(exact),
	}
}

// V1 reproduces the Section 5 cloning observation.
func V1(maxD int) Report { return v1(envpool.New(), maxD) }

func v1(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "agents", "n/2", "moves", "n-1", "makespan")
	exact := true
	for d := 1; d <= maxD; d++ {
		r := runOn(src, core.Cloning, d)
		exact = exact && int64(r.TeamSize) == combin.VisibilityAgents(d) && r.TotalMoves == combin.CloningMoves(d)
		t.AddRow(d, r.Nodes, r.TeamSize, combin.VisibilityAgents(d), r.TotalMoves, combin.CloningMoves(d), r.Makespan)
	}
	return Report{
		ID:         "V1",
		Title:      "Cloning variant",
		PaperClaim: "with cloning, still n/2 agents and O(log n) steps, but only n-1 moves (Section 5)",
		Table:      t,
		Notes:      verdictNote(exact, "Each broadcast-tree edge is crossed exactly once downward."),
		Verdict:    verdictOf(exact),
	}
}

// V2 reproduces the Section 5 synchronous observation.
func V2(maxD int) Report { return v2(envpool.New(), maxD) }

func v2(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "agents", "moves", "makespan", "recontaminations")
	exact := true
	for d := 1; d <= maxD; d++ {
		r := runOn(src, core.Synchronous, d)
		exact = exact && r.Ok() && r.Recontaminations == 0 &&
			r.TotalMoves == combin.VisibilityMoves(d) && r.Makespan == int64(d)
		t.AddRow(d, r.Nodes, r.TeamSize, r.TotalMoves, r.Makespan, r.Recontaminations)
	}
	return Report{
		ID:    "V2",
		Title: "Synchronous variant (no visibility)",
		PaperClaim: "with synchronous starts, moving at t = m(x) needs no visibility and keeps the " +
			"same complexity (Section 5)",
		Table:   t,
		Notes:   verdictNote(exact, "The schedule never finds a node without its complement and never recontaminates."),
		Verdict: verdictOf(exact),
	}
}

// X1 regenerates the headline trade-off comparison of Section 1.3.
func X1(maxD int) Report { return x1(envpool.New(), maxD) }

func x1(src strategy.Source, maxD int) Report {
	t := metrics.NewTable("d", "n", "clean agents", "vis agents", "clean time", "vis time", "clean moves", "vis moves", "clone moves")
	for d := 2; d <= maxD; d++ {
		rc := runOn(src, core.Clean, d)
		rv := runOn(src, core.Visibility, d)
		rk := runOn(src, core.Cloning, d)
		t.AddRow(d, rc.Nodes, rc.TeamSize, rv.TeamSize, rc.Makespan, rv.Makespan,
			rc.TotalMoves, rv.TotalMoves, rk.TotalMoves)
	}
	return Report{
		ID:    "X1",
		Title: "Strategy trade-off (who wins, by how much)",
		PaperClaim: "CLEAN uses asymptotically fewer agents; visibility is exponentially faster " +
			"(log n vs n log n) at the same O(n log n) traffic (Sections 1.3, 5)",
		Table: t,
		Notes: "The crossover the paper advertises is visible from d=5 on: CLEAN's team falls " +
			"below n/2 and the gap widens with d, while its makespan grows like n log n against " +
			"the visibility strategy's d.",
		Verdict: "REPRODUCED",
	}
}

// X2 probes the paper's open problem with exhaustive lower bounds.
func X2() Report {
	t := metrics.NewTable("d", "n", "optimal team", "optimal moves", "CLEAN team", "visibility team")
	for d := 1; d <= 4; d++ {
		h := hypercube.New(d)
		a := optimal.MinimalTeam(h, 0, 10, optimal.Limits{})
		t.AddRow(d, h.Order(), a.Team, a.Moves, combin.CleanTeamSize(d), combin.VisibilityAgents(d))
	}
	return Report{
		ID:    "X2",
		Title: "Exact optima for small hypercubes (open problem, Section 5)",
		PaperClaim: "open: is Ω(n/log n) a lower bound for the number of agents in the " +
			"coordinated model?",
		Table: t,
		Notes: "Exhaustive search over monotone contiguous strategies: H_3 needs exactly 4 agents " +
			"(visibility's n/2 = 4 is optimal there; CLEAN provisions 5) and H_4 exactly 7 " +
			"(both strategies provision 8). CLEAN is within one agent of optimal at these sizes — " +
			"data consistent with, but far from settling, the conjectured lower bound.",
		Verdict: "FINDING (new data points; the open problem remains open)",
	}
}

// X3 stresses both strategies under the asynchronous adversary. The
// seed sweep of each configuration fans out across workers, each
// worker reusing its own environment pool across seeds and
// configurations; the reduction below runs over the input-ordered
// results, so the report is identical for every worker count.
func X3(seeds, workers int) Report {
	t := metrics.NewTable("strategy", "engine", "seeds", "captured", "monotone", "contiguous", "recontaminations")
	type cfg struct {
		name   string
		engine string
	}
	makespans := map[string]string{}
	pools := sourcePools(workers)
	for _, c := range []cfg{
		{core.Clean, core.EngineDES}, {core.Visibility, core.EngineDES},
		{core.Clean, core.EngineGoroutines}, {core.Visibility, core.EngineGoroutines},
	} {
		results, err := sched.CollectW(workers, seeds, func(w, s int) metrics.Result {
			res, env, err := core.RunWith(core.Spec{
				Strategy: c.name, Dim: 5, Engine: c.engine,
				Seed: int64(s), AdversarialLatency: 17,
			}, pools[w])
			if err != nil {
				panic(err)
			}
			pools[w].Release(env)
			return res
		})
		if err != nil {
			panic(err)
		}
		captured, monotone, contiguous, recon := 0, 0, 0, int64(0)
		var spans []int64
		for _, res := range results {
			if res.Captured {
				captured++
			}
			if res.MonotoneOK {
				monotone++
			}
			if res.ContiguousOK {
				contiguous++
			}
			recon += res.Recontaminations
			if c.engine == core.EngineDES {
				spans = append(spans, res.Makespan)
			}
		}
		if len(spans) > 0 {
			makespans[c.name] = stats.SummarizeInts(spans).String()
		}
		t.AddRow(c.name, c.engine, seeds, captured, monotone, contiguous, recon)
	}
	return Report{
		ID:    "X3",
		Title: "Robustness under the asynchronous adversary",
		PaperClaim: "agents are asynchronous: every action takes a finite but unpredictable time " +
			"(Section 1.1), and both strategies remain correct",
		Table: t,
		Notes: fmt.Sprintf("Randomized per-move latencies on the discrete-event engine and real "+
			"goroutine preemption both preserve capture, monotonicity and contiguity for every "+
			"seed, with zero recontaminations. Adversarial makespans on H_5 (virtual time): "+
			"clean %s; visibility %s.", makespans[core.Clean], makespans[core.Visibility]),
		Verdict: "REPRODUCED",
	}
}

// X4 quantifies why contamination-oblivious sweeps fail.
func X4(d int) Report { return x4(envpool.New(), d) }

func x4(src strategy.Source, d int) Report {
	t := metrics.NewTable("baseline", "team", "moves", "captured", "recontaminations", "monotone violations")
	rd := runSpec(src, core.Spec{Strategy: core.NaiveDFS, Dim: d})
	t.AddRow(naive.DFSName, rd.TeamSize, rd.TotalMoves, rd.Captured, rd.Recontaminations, !rd.MonotoneOK)
	for _, team := range []int{2, 4, 8} {
		rc := runSpec(src, core.Spec{Strategy: core.NaiveConvoy, Dim: d, ConvoyTeam: team})
		t.AddRow(naive.ConvoyName, team, rc.TotalMoves, rc.Captured, rc.Recontaminations, !rc.MonotoneOK)
	}
	rv := runOn(src, core.Visibility, d)
	t.AddRow(core.Visibility, rv.TeamSize, rv.TotalMoves, rv.Captured, rv.Recontaminations, !rv.MonotoneOK)
	return Report{
		ID:    "X4",
		Title: fmt.Sprintf("Oblivious sweeps versus the intruder (H_%d)", d),
		PaperClaim: "a strategy must leave no corridor back into cleaned territory, or the " +
			"arbitrarily fast intruder re-enters (Section 1.1)",
		Table: t,
		Notes: "Sweeps that visit every node but do not seal the frontier recontaminate " +
			"thousands of times and never capture; the paper's strategies capture with zero " +
			"recontaminations.",
		Verdict: "REPRODUCED",
	}
}

// X5 contrasts the tree-optimal comparator with the hypercube.
func X5(maxD int) Report {
	t := metrics.NewTable("d", "tree agents (optimal)", "tree moves", "CLEAN agents on H_d", "replay on H_d monotone?")
	for d := 2; d <= maxD; d++ {
		bt := heapqueue.New(d).Graph()
		r, _, log := treesearch.Execute(bt)
		h := hypercube.New(d)
		b, err := log.Replay(h, 0)
		if err != nil {
			panic(err)
		}
		t.AddRow(d, r.TeamSize, r.TotalMoves, combin.CleanTeamSize(d), b.MonotoneViolations() == 0)
	}
	return Report{
		ID:    "X5",
		Title: "Tree search (related work [1]) versus the hypercube",
		PaperClaim: "contiguous search is solved optimally on trees [1]; the hypercube's chords " +
			"are what make the problem hard (Section 1.2)",
		Table: t,
		Notes: "The broadcast tree alone is cleanable with O(d) agents, but replaying that " +
			"schedule with the hypercube's non-tree edges present breaks monotonicity for every " +
			"d ≥ 2 — the gap between Θ(log n) and Θ(n/√log n) agents is the price of the chords.",
		Verdict: "REPRODUCED",
	}
}

// X7 derives the monotone lower bound from vertex isoperimetry,
// addressing the paper's open problem.
func X7(maxD int) Report {
	t := metrics.NewTable("d", "n", "Harper bound C(d,d/2)", "exact bound (small d)", "optimal team (small d)", "CLEAN team", "CLEAN/bound")
	for d := 2; d <= maxD; d++ {
		harper := isoperimetry.HypercubeLowerBound(d)
		exact, opt := "-", "-"
		if d <= 4 {
			h := hypercube.New(d)
			exact = fmt.Sprint(isoperimetry.ExactMonotoneLowerBound(h))
			a := optimal.MinimalTeam(h, 0, 10, optimal.Limits{})
			opt = fmt.Sprint(a.Team)
		}
		clean := combin.CleanTeamSize(d)
		t.AddRow(d, combin.Pow2(d), harper, exact, opt, clean, float64(clean)/float64(harper))
	}
	return Report{
		ID:    "X7",
		Title: "Monotone lower bound from vertex isoperimetry (open problem, Section 5)",
		PaperClaim: "open: is Ω(n/log n) a lower bound on the agents needed by the coordinated " +
			"model?",
		Table: t,
		Notes: "Any monotone contiguous strategy must guard the inner boundary of its clean set " +
			"at every size k, so team >= max_k min_{|S|=k} |∂S|; Harper's theorem evaluates this " +
			"on the hypercube to C(d, d/2) = Θ(n/√log n). This settles the monotone version of the " +
			"open problem: the true threshold is Θ(n/√log n), strictly above the conjectured " +
			"n/log n, and Algorithm CLEAN is asymptotically optimal among monotone strategies " +
			"(the CLEAN/bound ratio stays below ~2). On H_3 and H_4 the exact exhaustive bound " +
			"(4, 7) is tight against the true optimum.",
		Verdict: "FINDING (monotone lower bound Θ(n/√log n); CLEAN asymptotically optimal)",
	}
}

// X8 compares the structure-generic strategies against the paper's
// hypercube-tuned ones and the lower bound.
func X8(maxD int) Report {
	t := metrics.NewTable("d", "n", "lower bound", "CLEAN", "level-sweep", "greedy", "visibility (n/2)")
	for d := 2; d <= maxD; d++ {
		h := hypercube.New(d)
		ls := levelsweep.Team(h, 0)
		gr := greedy.Team(h, 0)
		t.AddRow(d, h.Order(), isoperimetry.HypercubeLowerBound(d), combin.CleanTeamSize(d),
			ls, gr, combin.VisibilityAgents(d))
	}
	return Report{
		ID:    "X8",
		Title: "Structure-generic strategies on the hypercube",
		PaperClaim: "(context for Section 3: how much does exploiting the broadcast-tree " +
			"structure buy over generic sweeps?)",
		Table: t,
		Notes: "The generic BFS level-sweep (guard two consecutive levels) lands within 2x of " +
			"CLEAN; the frontier-greedy heuristic tracks the optimal frontier so closely that it " +
			"matches the exhaustive optimum on H_3 and H_4 — evidence that CLEAN's clean-order is " +
			"near-optimal while keeping the coordination cost of a single synchronizer.",
		Verdict: "FINDING (comparison table; all strategies respect the X7 bound)",
	}
}

// X10 maps the exact traffic-versus-team Pareto frontier on small
// hypercubes: the paper optimizes agents, time and moves separately;
// this shows what each extra agent buys in moves.
func X10() Report {
	t := metrics.NewTable("graph", "team", "feasible", "minimal moves")
	for _, d := range []int{3, 4} {
		h := hypercube.New(d)
		for _, a := range optimal.Pareto(h, 0, int(combin.VisibilityAgents(d))+1, optimal.Limits{}) {
			moves := "-"
			if a.Feasible {
				moves = fmt.Sprint(a.Moves)
			}
			t.AddRow(fmt.Sprintf("H_%d", d), a.Team, a.Feasible, moves)
		}
	}
	return Report{
		ID:    "X10",
		Title: "Traffic-versus-team Pareto frontier (exact, small hypercubes)",
		PaperClaim: "(context for the cost model of Section 1.1: agents, moves and time are " +
			"separate costs to trade off)",
		Table: t,
		Notes: "Below the threshold no team captures at all; at the threshold the minimal " +
			"traffic is already close to n, and extra agents buy only small move savings — " +
			"consistent with the paper's choice to optimize the agent count first.",
		Verdict: "FINDING (exact frontier)",
	}
}

// x9Ceiling picks the X9 sweep's dimension cap for the machine: every
// netsim run multiplexes 2^d host goroutines (plus their mailboxes and
// ledgers) onto numCPU cores, so the affordable fan-out grows with the
// core count. One core keeps the historical d=10 cap (n=1024 hosts);
// each doubling of cores buys one more dimension, up to d=12 — the
// largest sweep the striped validator has been proven to complete even
// under the race detector (see ROADMAP).
func x9Ceiling(numCPU int) int {
	c := 10
	for numCPU >= 2 && c < 12 {
		numCPU >>= 1
		c++
	}
	return c
}

// X9 validates the message-passing realization of the visibility
// model: one-bit beacons, as Section 4 suggests. Every sweep — all
// dimensions, all three protocols, all seeds — is flattened into ONE
// task list handed to the scheduler in a single call, so the few
// large-d runs overlap with the many small ones instead of each
// (protocol, d) pair draining behind its own barrier. The reductions
// read input-ordered slices of the flat result, keeping the report
// byte-identical for every worker count.
func X9(maxD, seeds, workers int) Report {
	t := metrics.NewTable("protocol", "d", "n", "agents", "migrations", "beacons/sync hops", "all seeds OK")
	protocols := []func(a *netarena.Arena, d int, cfg netsim.Config) netsim.Stats{
		(*netarena.Arena).Run, (*netarena.Arena).RunClean, (*netarena.Arena).RunCloning,
	}
	dims := maxD - 1 // d ranges over 2..maxD
	if dims < 0 {
		dims = 0
	}
	// One network arena per worker, like the DES side's sourcePools:
	// consecutive tasks on a worker reuse each other's fabrics, so a
	// sweep builds each dimension's mailboxes/ledgers once per worker
	// instead of once per (protocol, seed) run.
	arenas := netArenas(workers)
	flat, err := sched.CollectW(workers, dims*len(protocols)*seeds, func(w, i int) netsim.Stats {
		seed := i % seeds
		proto := i / seeds % len(protocols)
		d := 2 + i/(seeds*len(protocols))
		return protocols[proto](arenas[w], d, netsim.Config{Seed: int64(seed), MaxLatency: 5 * time.Microsecond})
	})
	if err != nil {
		panic(err)
	}
	sweep := func(d, proto int) []netsim.Stats {
		base := ((d-2)*len(protocols) + proto) * seeds
		return flat[base : base+seeds]
	}
	for d := 2; d <= maxD; d++ {
		vis := sweep(d, 0)
		ref := vis[0]
		ok := true
		for s, st := range vis {
			ok = ok && st.Ok() && st.Recontaminations == 0 && st.BeaconBits == st.BeaconMessages
			if s > 0 && (st.BeaconMessages != ref.BeaconMessages || st.AgentMessages != ref.AgentMessages) {
				ok = false
			}
		}
		edges := int64(d) * combin.Pow2(d-1)
		ok = ok && ref.BeaconMessages <= 2*edges
		t.AddRow("visibility", d, combin.Pow2(d), ref.TeamSize, ref.AgentMessages, ref.BeaconMessages, ok)

		clean := sweep(d, 1)
		refc := clean[0]
		okc := true
		for s, st := range clean {
			okc = okc && st.Ok() && st.Recontaminations == 0
			if s > 0 && (st.SyncMoves != refc.SyncMoves || st.AgentMessages != refc.AgentMessages) {
				okc = false
			}
		}
		t.AddRow("clean", d, combin.Pow2(d), refc.TeamSize, refc.AgentMessages, refc.SyncMoves, okc)

		cloning := sweep(d, 2)
		refk := cloning[0]
		okk := true
		for _, st := range cloning {
			okk = okk && st.Ok() && st.Recontaminations == 0 &&
				st.AgentMessages == combin.CloningMoves(d)
		}
		t.AddRow("cloning", d, combin.Pow2(d), refk.TeamSize, refk.AgentMessages, refk.BeaconMessages, okk)
	}
	return Report{
		ID:    "X9",
		Title: "Message-passing realizations (goroutine hosts, no shared memory)",
		PaperClaim: "\"this capability could be easily achieved if the agents ... send a message " +
			"(e.g., a single bit) to their neighbouring nodes\" (Section 4); agents communicate " +
			"only through the network",
		Table: t,
		Notes: "Hosts are goroutines sharing no memory; agents migrate as messages over " +
			"latency-bearing links. The visibility protocol realizes neighbour-state reads as " +
			"exactly one bit per dependent neighbour (beacons <= 2x edges). The coordinated " +
			"protocol source-routes couriers, rides the synchronizer on the cleaner it guides, " +
			"and retires with a counted shutdown flood. The cloning variant is message-optimal: " +
			"exactly n-1 agent migrations, one per broadcast-tree edge. All protocols' traffic " +
			"is schedule-independent and matches the discrete-event engine exactly.",
		Verdict: "REPRODUCED",
	}
}

// XIntruder demonstrates the concrete randomized intruder against the
// visibility strategy (the scenario of the paper's introduction). The
// recorded schedule is replayed once per seed, each replay on its own
// worker against a fresh board and intruder token.
func XIntruder(d, seeds, workers int) Report { return xIntruder(envpool.New(), d, seeds, workers) }

func xIntruder(src strategy.Source, d, seeds, workers int) Report {
	t := metrics.NewTable("seed", "intruder relocations", "captured")
	allCaptured := true
	_, env, err := core.RunWith(core.Spec{Strategy: core.Visibility, Dim: d, Record: true}, src)
	if err != nil {
		panic(err)
	}
	type pursuit struct {
		moves  int64
		caught bool
	}
	pursuits, err := sched.Collect(workers, seeds, func(s int) pursuit {
		// Replay the recorded schedule move by move against a live
		// intruder token.
		in := replayWithIntruder(env, int64(s))
		return pursuit{in.Moves(), in.Caught()}
	})
	if err != nil {
		panic(err)
	}
	// The replays only read env's topology and trace; the environment
	// goes back to the pool once the sweep has drained.
	src.Release(env)
	for s, p := range pursuits {
		t.AddRow(s, p.moves, p.caught)
		allCaptured = allCaptured && p.caught
	}
	return Report{
		ID:         "X6",
		Title:      fmt.Sprintf("Concrete intruder pursuit (H_%d)", d),
		PaperClaim: "the team localizes and neutralizes an intruder that sees the agents and moves arbitrarily fast (Section 1.1)",
		Table:      t,
		Notes:      verdictNote(allCaptured, "The token intruder is captured on every seed, validating the closure model."),
		Verdict:    verdictOf(allCaptured),
	}
}

// replayWithIntruder replays a recorded run while a live intruder
// token reacts to every event.
func replayWithIntruder(env *strategy.Env, seed int64) *intruder.Intruder {
	h := env.H
	fresh := board.New(h, 0)
	in := intruder.New(h, fresh, seed)
	ids := map[int]int{}
	for _, e := range env.Log().Events() {
		switch e.Kind {
		case trace.Place:
			ids[e.Agent] = fresh.Place(e.Time)
		case trace.Clone:
			ids[e.Agent] = fresh.Clone(e.To, e.Time)
		case trace.Move:
			fresh.Move(ids[e.Agent], e.To, e.Time)
		case trace.Terminate:
			fresh.Terminate(ids[e.Agent], e.Time)
		}
		in.React()
		if !in.InsideClosure() {
			panic("experiments: intruder escaped the closure")
		}
	}
	return in
}

// Figures returns the four rendered figures.
func Figures() []string {
	envClean := figureRun(core.Clean)
	envVis := figureRun(core.Visibility)
	return []string{
		"# Figure 1\n" + viz.BroadcastTree(6),
		"# Figure 2 (CLEAN, H_6)\n" + viz.CleanOrder(envClean.H, envClean.B, false),
		"# Figure 3\n" + viz.Classes(4),
		"# Figure 4 (CLEAN WITH VISIBILITY, H_6)\n" + viz.CleanOrder(envVis.H, envVis.B, true),
	}
}

func figureRun(name string) *strategy.Env {
	_, env, err := core.Run(core.Spec{Strategy: name, Dim: 6, Record: true})
	if err != nil {
		panic(err)
	}
	return env
}

// All runs every experiment at the given sweep size. The experiments
// are independent, so they fan out across the scheduler's workers,
// each worker drawing execution environments from its own pool (one
// task at a time per worker, so no locking); results land in
// input-ordered slots, so the report sequence (and every rendered
// byte) is identical for any worker count. workers <= 1 is the legacy
// serial path on the calling goroutine.
func All(maxD, seeds, workers int) []Report {
	x8max := maxD
	if x8max > 8 {
		x8max = 8 // the greedy heuristic's frontier scan is O(n^3)
	}
	x9max := maxD
	if c := x9Ceiling(goruntime.NumCPU()); x9max > c {
		x9max = c
	}
	runs := []func(src strategy.Source) Report{
		func(src strategy.Source) Report { return t2(src, maxD) },
		func(src strategy.Source) Report { return t3(src, maxD) },
		func(src strategy.Source) Report { return t4(src, maxD) },
		func(src strategy.Source) Report { return t5(src, maxD) },
		func(src strategy.Source) Report { return t7(src, maxD) },
		func(src strategy.Source) Report { return t8(src, maxD) },
		func(src strategy.Source) Report { return v1(src, maxD) },
		func(src strategy.Source) Report { return v2(src, maxD) },
		func(src strategy.Source) Report { return x1(src, maxD) },
		func(strategy.Source) Report { return X2() },
		func(strategy.Source) Report { return X3(seeds, workers) },
		func(src strategy.Source) Report { return x4(src, 6) },
		func(strategy.Source) Report { return X5(7) },
		func(src strategy.Source) Report { return xIntruder(src, 6, seeds, workers) },
		func(strategy.Source) Report { return X7(maxD) },
		func(strategy.Source) Report { return X8(x8max) },
		func(strategy.Source) Report { return X9(x9max, seeds, workers) },
		func(strategy.Source) Report { return X10() },
	}
	pools := sourcePools(workers)
	out, err := sched.CollectW(workers, len(runs), func(w, i int) Report { return runs[i](pools[w]) })
	if err != nil {
		panic(err)
	}
	return out
}

func verdictOf(exact bool) string {
	if exact {
		return "REPRODUCED"
	}
	return "MISMATCH"
}

func verdictNote(exact bool, note string) string {
	if exact {
		return note
	}
	return "MISMATCH — see table."
}
