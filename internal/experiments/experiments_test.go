package experiments

import (
	"strings"
	"testing"
)

func TestReportRender(t *testing.T) {
	r := T5(4)
	out := r.Render()
	for _, want := range []string{"## T5", "Paper claim", "Verdict", "| d "} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTheoremReportsReproduce(t *testing.T) {
	const maxD = 7
	for _, rep := range []Report{T5(maxD), T7(maxD), T8(maxD), V1(maxD), V2(maxD)} {
		if rep.Verdict != "REPRODUCED" {
			t.Errorf("%s verdict = %q", rep.ID, rep.Verdict)
		}
		if rep.Table.Rows() == 0 {
			t.Errorf("%s has no rows", rep.ID)
		}
	}
}

func TestT2Verdict(t *testing.T) {
	rep := T2(7)
	if !strings.Contains(rep.Verdict, "REPRODUCED") {
		t.Errorf("T2 verdict = %q", rep.Verdict)
	}
	if rep.Table.Rows() != 6 {
		t.Errorf("T2 rows = %d", rep.Table.Rows())
	}
}

func TestT3T4HaveBoundedRatios(t *testing.T) {
	for _, rep := range []Report{T3(7), T4(7)} {
		if rep.Table.Rows() == 0 {
			t.Errorf("%s empty", rep.ID)
		}
	}
}

func TestX2FindsKnownOptima(t *testing.T) {
	rep := X2()
	md := rep.Table.Markdown()
	// H_4 -> 7 agents optimal vs 8 provisioned (exhaustively verified).
	if !strings.Contains(md, "7") || !strings.Contains(md, "8") {
		t.Errorf("unexpected X2 table:\n%s", md)
	}
	if rep.Table.Rows() != 4 {
		t.Errorf("X2 rows = %d", rep.Table.Rows())
	}
}

func TestX3AllSeedsSafe(t *testing.T) {
	rep := X3(4, 1)
	if !strings.Contains(rep.Verdict, "REPRODUCED") {
		t.Errorf("X3 verdict = %q", rep.Verdict)
	}
	md := rep.Table.Markdown()
	if strings.Contains(md, "false") {
		t.Errorf("X3 has failures:\n%s", md)
	}
}

func TestX4ShowsBaselineFailure(t *testing.T) {
	rep := X4(5)
	md := rep.Table.Markdown()
	if !strings.Contains(md, "false") {
		t.Errorf("X4 should show failed captures:\n%s", md)
	}
	if !strings.Contains(md, "visibility") {
		t.Errorf("X4 missing the working strategy:\n%s", md)
	}
}

func TestX5ShowsChordBreakage(t *testing.T) {
	rep := X5(5)
	md := rep.Table.Markdown()
	if !strings.Contains(md, "false") {
		t.Errorf("X5 replay should break on the hypercube:\n%s", md)
	}
}

func TestXIntruderCaptures(t *testing.T) {
	rep := XIntruder(5, 3, 1)
	if rep.Verdict != "REPRODUCED" {
		t.Errorf("intruder verdict = %q", rep.Verdict)
	}
}

func TestFiguresRender(t *testing.T) {
	figs := Figures()
	if len(figs) != 4 {
		t.Fatalf("%d figures", len(figs))
	}
	wants := []string{"Broadcast tree T(6)", "Cleaning order", "Classes C_i", "Cleaning schedule"}
	for i, w := range wants {
		if !strings.Contains(figs[i], w) {
			t.Errorf("figure %d missing %q", i+1, w)
		}
	}
}

func TestX7LowerBound(t *testing.T) {
	rep := X7(8)
	if !strings.Contains(rep.Verdict, "FINDING") {
		t.Errorf("X7 verdict = %q", rep.Verdict)
	}
	if rep.Table.Rows() != 7 {
		t.Errorf("X7 rows = %d", rep.Table.Rows())
	}
}

func TestX8GenericStrategies(t *testing.T) {
	rep := X8(5)
	if rep.Table.Rows() != 4 {
		t.Errorf("X8 rows = %d", rep.Table.Rows())
	}
}

func TestX9Netsim(t *testing.T) {
	rep := X9(5, 3, 1)
	if rep.Verdict != "REPRODUCED" {
		t.Errorf("X9 verdict = %q", rep.Verdict)
	}
	if strings.Contains(rep.Table.Markdown(), "false") {
		t.Errorf("X9 has failures:\n%s", rep.Table.Markdown())
	}
}

func TestX9CeilingAdaptsToCores(t *testing.T) {
	cases := []struct{ cpus, want int }{
		{1, 10}, // historical cap on a single core
		{2, 11},
		{3, 11},
		{4, 12},
		{8, 12}, // saturates at the proven d=12 sweep
		{64, 12},
	}
	for _, c := range cases {
		if got := x9Ceiling(c.cpus); got != c.want {
			t.Errorf("x9Ceiling(%d) = %d, want %d", c.cpus, got, c.want)
		}
	}
}

// The adaptive ceiling must not disturb the determinism contract: the
// X9 sweep renders byte-identically on the serial and parallel paths
// at any capped dimension.
func TestX9SerialRenderingPinned(t *testing.T) {
	serial := X9(4, 2, 1)
	parallel := X9(4, 2, 4)
	if serial.Table.Markdown() != parallel.Table.Markdown() {
		t.Fatalf("X9 rendering diverges between serial and parallel:\n%s\nvs\n%s",
			serial.Table.Markdown(), parallel.Table.Markdown())
	}
}

func TestX10Pareto(t *testing.T) {
	rep := X10()
	md := rep.Table.Markdown()
	// H_3's frontier starts at team 4; H_4's at team 7.
	if !strings.Contains(md, "H_3") || !strings.Contains(md, "H_4") {
		t.Errorf("X10 table:\n%s", md)
	}
	if rep.Table.Rows() != 5+9 {
		t.Errorf("X10 rows = %d", rep.Table.Rows())
	}
}

func TestAllProducesEveryReport(t *testing.T) {
	reps := All(5, 2, 4)
	if len(reps) != 18 {
		t.Errorf("All produced %d reports", len(reps))
	}
	seen := map[string]bool{}
	for _, r := range reps {
		if seen[r.ID] {
			t.Errorf("duplicate report %s", r.ID)
		}
		seen[r.ID] = true
		if r.Verdict == "MISMATCH" {
			t.Errorf("%s mismatched", r.ID)
		}
	}
}

// The scheduler determinism contract, end to end: the fully rendered
// report set must be byte-identical between the serial path and a
// parallel fan-out.
func TestAllParallelMatchesSerial(t *testing.T) {
	render := func(reps []Report) string {
		var sb strings.Builder
		for _, r := range reps {
			sb.WriteString(r.Render())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	serial := render(All(4, 2, 1))
	parallel := render(All(4, 2, 4))
	if serial != parallel {
		t.Fatal("parallel All diverged from the serial rendering")
	}
}

// The per-experiment seed sweeps must likewise be worker-count
// independent.
func TestSeedSweepsParallelMatchSerial(t *testing.T) {
	if s, p := X3(3, 1).Render(), X3(3, 4).Render(); s != p {
		t.Error("X3 parallel rendering diverged from serial")
	}
	if s, p := X9(4, 3, 1).Render(), X9(4, 3, 4).Render(); s != p {
		t.Error("X9 parallel rendering diverged from serial")
	}
	if s, p := XIntruder(4, 3, 1).Render(), XIntruder(4, 3, 4).Render(); s != p {
		t.Error("XIntruder parallel rendering diverged from serial")
	}
}
