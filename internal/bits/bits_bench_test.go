package bits

import "testing"

func BenchmarkMsb(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Msb(Node(i) & 0xFFFFF)
	}
	_ = sink
}

func BenchmarkNeighbours(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Neighbours(Node(i)&0xFFFF, 16)
	}
}

func BenchmarkHammingPath(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		p := HammingPath(Node(i)&0xFFFF, Node(i*7)&0xFFFF, 16)
		sink += len(p)
	}
	_ = sink
}

func BenchmarkNodesAtLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NodesAtLevel(16, 8)
	}
}
