package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMsb(t *testing.T) {
	cases := []struct {
		x    Node
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {7, 3}, {8, 4}, {1 << 29, 30},
	}
	for _, c := range cases {
		if got := Msb(c.x); got != c.want {
			t.Errorf("Msb(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLevel(t *testing.T) {
	cases := []struct {
		x    Node
		want int
	}{
		{0, 0}, {1, 1}, {3, 2}, {7, 3}, {0b101010, 3}, {0b111111, 6},
	}
	for _, c := range cases {
		if got := Level(c.x); got != c.want {
			t.Errorf("Level(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBitSetClearFlip(t *testing.T) {
	x := Node(0b1010)
	if !Bit(x, 2) || Bit(x, 1) {
		t.Fatalf("Bit readout wrong for %04b", x)
	}
	if got := Set(x, 1); got != 0b1011 {
		t.Errorf("Set = %04b", got)
	}
	if got := Clear(x, 2); got != 0b1000 {
		t.Errorf("Clear = %04b", got)
	}
	if got := Flip(x, 4); got != 0b0010 {
		t.Errorf("Flip = %04b", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label(0b1010, 0b1000); got != 2 {
		t.Errorf("Label = %d, want 2", got)
	}
	if got := Label(0, 1); got != 1 {
		t.Errorf("Label = %d, want 1", got)
	}
}

func TestLabelPanicsOnNonNeighbours(t *testing.T) {
	for _, pair := range [][2]Node{{0, 0}, {0, 3}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Label(%d,%d) did not panic", pair[0], pair[1])
				}
			}()
			Label(pair[0], pair[1])
		}()
	}
}

func TestIsNeighbour(t *testing.T) {
	if !IsNeighbour(0, 4) {
		t.Error("0 and 4 should be neighbours")
	}
	if IsNeighbour(0, 0) || !IsNeighbour(1, 3) {
		t.Error("neighbour classification wrong")
	}
	if IsNeighbour(0, 3) {
		t.Error("0 and 3 are not neighbours")
	}
}

func TestNeighbours(t *testing.T) {
	got := Neighbours(0b0101, 4)
	want := []Node{0b0100, 0b0111, 0b0001, 0b1101}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Neighbours[%d] = %04b, want %04b", i, got[i], want[i])
		}
	}
}

func TestSmallerBiggerNeighboursPartition(t *testing.T) {
	const d = 6
	for x := Node(0); x < 1<<d; x++ {
		s := SmallerNeighbours(x, d)
		b := BiggerNeighbours(x, d)
		if len(s)+len(b) != d {
			t.Fatalf("x=%d: %d smaller + %d bigger != %d", x, len(s), len(b), d)
		}
		m := Msb(x)
		for _, y := range s {
			if Label(x, y) > m {
				t.Errorf("x=%d: smaller neighbour %d has label > m(x)", x, y)
			}
		}
		for _, y := range b {
			if Label(x, y) <= m {
				t.Errorf("x=%d: bigger neighbour %d has label <= m(x)", x, y)
			}
			if Level(y) != Level(x)+1 {
				t.Errorf("x=%d: bigger neighbour %d not one level up", x, y)
			}
			if Parent(y) != x {
				t.Errorf("x=%d: bigger neighbour %d has parent %d", x, y, Parent(y))
			}
		}
	}
}

func TestParentRoot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Parent(0) did not panic")
		}
	}()
	Parent(0)
}

func TestTreeType(t *testing.T) {
	const d = 6
	if got := TreeType(0, d); got != d {
		t.Errorf("root type = T(%d), want T(%d)", got, d)
	}
	// Children of the root have types T(d-1) .. T(0) in label order.
	for i, c := range BiggerNeighbours(0, d) {
		if got := TreeType(c, d); got != d-1-i {
			t.Errorf("child %d type = T(%d), want T(%d)", c, got, d-1-i)
		}
	}
	// A node of type T(k) has exactly k broadcast-tree children, of
	// types T(k-1) .. T(0) (Definition 1).
	for x := Node(0); x < 1<<d; x++ {
		k := TreeType(x, d)
		ch := BiggerNeighbours(x, d)
		if len(ch) != k {
			t.Fatalf("x=%d: type T(%d) but %d children", x, k, len(ch))
		}
		for i, c := range ch {
			if got := TreeType(c, d); got != k-1-i {
				t.Errorf("x=%d child %d: type T(%d), want T(%d)", x, c, got, k-1-i)
			}
		}
	}
}

func TestIsTreeLeaf(t *testing.T) {
	const d = 5
	for x := Node(0); x < 1<<d; x++ {
		want := Msb(x) == d
		if got := IsTreeLeaf(x, d); got != want {
			t.Errorf("IsTreeLeaf(%d) = %v, want %v", x, got, want)
		}
	}
}

func TestClassSizes(t *testing.T) {
	// Property 5: |C_0| = 1 and |C_i| = 2^(i-1).
	const d = 7
	counts := make([]int, d+1)
	for x := Node(0); x < 1<<d; x++ {
		counts[Class(x)]++
	}
	if counts[0] != 1 {
		t.Errorf("|C_0| = %d", counts[0])
	}
	for i := 1; i <= d; i++ {
		if counts[i] != 1<<(i-1) {
			t.Errorf("|C_%d| = %d, want %d", i, counts[i], 1<<(i-1))
		}
	}
}

func TestNodesInClassMatchesClass(t *testing.T) {
	const d = 6
	for i := 0; i <= d; i++ {
		nodes := NodesInClass(d, i)
		for _, x := range nodes {
			if Class(x) != i {
				t.Errorf("NodesInClass(%d,%d) contains %d with class %d", d, i, x, Class(x))
			}
		}
		want := 1
		if i > 0 {
			want = 1 << (i - 1)
		}
		if len(nodes) != want {
			t.Errorf("|NodesInClass(%d,%d)| = %d, want %d", d, i, len(nodes), want)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	if got := HammingDistance(0b1010, 0b0101); got != 4 {
		t.Errorf("distance = %d, want 4", got)
	}
	if got := HammingDistance(7, 7); got != 0 {
		t.Errorf("distance = %d, want 0", got)
	}
}

func TestHammingPath(t *testing.T) {
	const d = 5
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		x := Node(rng.Intn(1 << d))
		y := Node(rng.Intn(1 << d))
		p := HammingPath(x, y, d)
		if p[0] != x || p[len(p)-1] != y {
			t.Fatalf("path endpoints wrong: %v for %d->%d", p, x, y)
		}
		if len(p) != HammingDistance(x, y)+1 {
			t.Fatalf("path not shortest: %v", p)
		}
		for i := 1; i < len(p); i++ {
			if !IsNeighbour(p[i-1], p[i]) {
				t.Fatalf("path has non-edge step: %v", p)
			}
		}
	}
}

func TestHammingPathDescendsFirst(t *testing.T) {
	// The path must clear bits before setting them so that transit stays
	// as low (as clean) as possible.
	p := HammingPath(0b0110, 0b1001, 4)
	minLevel := Level(0b0110)
	seenBottom := false
	for _, x := range p {
		if Level(x) < minLevel {
			minLevel = Level(x)
		}
		if Level(x) == 1 {
			seenBottom = true
		}
		if seenBottom && Level(x) < minLevel {
			t.Fatalf("path rises then falls: %v", p)
		}
	}
	if !seenBottom {
		t.Fatalf("path did not descend first: %v", p)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	const d = 8
	f := func(raw uint32) bool {
		x := Node(raw % (1 << d))
		s := String(x, d)
		if len(s) != d {
			return false
		}
		y, err := Parse(s)
		return err == nil && y == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("empty string accepted")
	}
	if _, err := Parse("01x0"); err == nil {
		t.Error("non-binary string accepted")
	}
	if _, err := Parse("0101010101010101010101010101010101"); err == nil {
		t.Error("overlong string accepted")
	}
}

func TestString(t *testing.T) {
	if got := String(0b000101, 6); got != "000101" {
		t.Errorf("String = %q", got)
	}
	if got := String(0, 3); got != "000" {
		t.Errorf("String = %q", got)
	}
}

func TestNodesAtLevel(t *testing.T) {
	const d = 6
	total := 0
	for l := 0; l <= d; l++ {
		nodes := NodesAtLevel(d, l)
		total += len(nodes)
		prev := Node(0)
		for i, x := range nodes {
			if Level(x) != l {
				t.Errorf("NodesAtLevel(%d,%d) contains %d at level %d", d, l, x, Level(x))
			}
			if i > 0 && x <= prev {
				t.Errorf("NodesAtLevel(%d,%d) not strictly increasing at %d", d, l, x)
			}
			prev = x
		}
	}
	if total != 1<<d {
		t.Errorf("levels cover %d nodes, want %d", total, 1<<d)
	}
}

func TestNodesAtLevelEdges(t *testing.T) {
	if got := NodesAtLevel(4, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("level 0 = %v", got)
	}
	if got := NodesAtLevel(4, 4); len(got) != 1 || got[0] != 0b1111 {
		t.Errorf("level d = %v", got)
	}
}

func TestQuickMsbLevelInvariants(t *testing.T) {
	f := func(raw uint32) bool {
		x := Node(raw % (1 << 20))
		if x == 0 {
			return Msb(x) == 0 && Level(x) == 0
		}
		m := Msb(x)
		// msb position is set, and nothing above it is.
		if !Bit(x, m) {
			return false
		}
		for i := m + 1; i <= 20; i++ {
			if Bit(x, i) {
				return false
			}
		}
		// Level of parent is one less.
		return Level(Parent(x)) == Level(x)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickFlipInvolution(t *testing.T) {
	f := func(raw uint32, pos uint8) bool {
		x := Node(raw % (1 << 20))
		i := int(pos)%20 + 1
		return Flip(Flip(x, i), i) == x && IsNeighbour(x, Flip(x, i)) && Label(x, Flip(x, i)) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCheckDim(t *testing.T) {
	CheckDim(0)
	CheckDim(MaxDim)
	for _, d := range []int{-1, MaxDim + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckDim(%d) did not panic", d)
				}
			}()
			CheckDim(d)
		}()
	}
}
