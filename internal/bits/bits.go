// Package bits provides the bit-level node algebra for d-dimensional
// hypercube node identifiers, following the conventions of Flocchini,
// Huang and Luccio (IPPS 2005).
//
// A node of the hypercube H_d is a d-bit binary string stored in a Node
// (an unsigned integer). Bit positions are numbered 1..d, where position
// i corresponds to the integer value 1<<(i-1). The paper's "most
// significant bit" function m(x) is Msb: the highest set position, with
// m(0) = 0. The paper's lexicographic order on binary strings coincides
// with unsigned integer order, which this package uses throughout.
package bits

import (
	"fmt"
	mathbits "math/bits"
	"strings"
)

// Node is a hypercube node identifier: a d-bit binary string packed into
// an unsigned integer. The dimension d is carried separately (the zero
// string of every dimension is the integer 0).
type Node uint32

// MaxDim is the largest supported hypercube dimension. 30 keeps every
// node id inside a Node and every node count inside an int on all
// platforms; simulations in this repository use far smaller dimensions.
const MaxDim = 30

// CheckDim panics if d is outside [0, MaxDim]. It is used by
// constructors of dimension-parameterized structures.
func CheckDim(d int) {
	if d < 0 || d > MaxDim {
		panic(fmt.Sprintf("bits: dimension %d out of range [0,%d]", d, MaxDim))
	}
}

// Msb returns m(x): the position (1-based) of the most significant set
// bit of x, with Msb(0) = 0.
func Msb(x Node) int {
	return mathbits.Len32(uint32(x))
}

// Dim returns d such that n == 2^d: the hypercube dimension recovered
// from its node count. It panics unless n is a power of two in
// [1, 2^MaxDim].
func Dim(n int) int {
	if n <= 0 || n&(n-1) != 0 || n > 1<<MaxDim {
		panic(fmt.Sprintf("bits: %d is not a hypercube order", n))
	}
	return mathbits.TrailingZeros32(uint32(n))
}

// Level returns the level of x in the hypercube's level decomposition:
// the number of 1-bits in its binary string.
func Level(x Node) int {
	return mathbits.OnesCount32(uint32(x))
}

// Bit reports whether position i (1-based) of x is set.
func Bit(x Node, i int) bool {
	return x&(1<<(i-1)) != 0
}

// Set returns x with position i (1-based) set.
func Set(x Node, i int) Node {
	return x | 1<<(i-1)
}

// Clear returns x with position i (1-based) cleared.
func Clear(x Node, i int) Node {
	return x &^ (1 << (i - 1))
}

// Flip returns x with position i (1-based) flipped. Flipping position i
// moves along the hypercube edge labelled i.
func Flip(x Node, i int) Node {
	return x ^ 1<<(i-1)
}

// Label returns the hypercube edge label λ_x(x, y): the position of the
// single bit in which the neighbouring nodes x and y differ. It panics
// if x and y are not hypercube neighbours.
func Label(x, y Node) int {
	diff := uint32(x ^ y)
	if diff == 0 || diff&(diff-1) != 0 {
		panic(fmt.Sprintf("bits: %d and %d are not neighbours", x, y))
	}
	return mathbits.Len32(diff)
}

// IsNeighbour reports whether x and y differ in exactly one bit
// position, i.e. whether (x, y) is a hypercube edge.
func IsNeighbour(x, y Node) bool {
	diff := uint32(x ^ y)
	return diff != 0 && diff&(diff-1) == 0
}

// Neighbours returns the d neighbours of x in H_d, ordered by edge label
// 1..d. The result is freshly allocated.
func Neighbours(x Node, d int) []Node {
	out := make([]Node, d)
	for i := 1; i <= d; i++ {
		out[i-1] = Flip(x, i)
	}
	return out
}

// VisitNeighbours calls yield for each neighbour of x in H_d in
// increasing label order (the order Neighbours returns), stopping early
// when yield returns false. It allocates nothing: each neighbour is one
// XOR away.
func VisitNeighbours(x Node, d int, yield func(y Node) bool) {
	for i := 1; i <= d; i++ {
		if !yield(x ^ 1<<(i-1)) {
			return
		}
	}
}

// VisitSmallerNeighbours calls yield for each neighbour y of x with
// label λ(x,y) <= m(x), in increasing label order, allocation-free.
func VisitSmallerNeighbours(x Node, yield func(y Node) bool) {
	m := Msb(x)
	for i := 1; i <= m; i++ {
		if !yield(x ^ 1<<(i-1)) {
			return
		}
	}
}

// VisitBiggerNeighbours calls yield for each neighbour y of x with
// label λ(x,y) > m(x) — the broadcast-tree children of x in H_d — in
// increasing label order, allocation-free.
func VisitBiggerNeighbours(x Node, d int, yield func(y Node) bool) {
	for i := Msb(x) + 1; i <= d; i++ {
		if !yield(x | 1<<(i-1)) {
			return
		}
	}
}

// SmallerNeighbours returns the neighbours y of x with label
// λ(x,y) <= m(x) (Definition 2 of the paper), ordered by label. The root
// 0 has no smaller neighbours.
func SmallerNeighbours(x Node, d int) []Node {
	m := Msb(x)
	if m > d {
		panic(fmt.Sprintf("bits: node %d does not fit in dimension %d", x, d))
	}
	out := make([]Node, 0, m)
	for i := 1; i <= m; i++ {
		out = append(out, Flip(x, i))
	}
	return out
}

// BiggerNeighbours returns the neighbours y of x with label
// λ(x,y) > m(x), ordered by label. These are exactly the children of x
// in the broadcast (heap queue) spanning tree of H_d.
func BiggerNeighbours(x Node, d int) []Node {
	m := Msb(x)
	if m > d {
		panic(fmt.Sprintf("bits: node %d does not fit in dimension %d", x, d))
	}
	out := make([]Node, 0, d-m)
	for i := m + 1; i <= d; i++ {
		out = append(out, Set(x, i))
	}
	return out
}

// Parent returns the broadcast-tree parent of x: x with its most
// significant bit cleared. It panics on the root 0, which has no parent.
func Parent(x Node) Node {
	if x == 0 {
		panic("bits: the root 0 has no broadcast-tree parent")
	}
	return Clear(x, Msb(x))
}

// TreeType returns k such that x is the root of a heap-queue subtree of
// type T(k) in the broadcast tree of H_d: d - m(x). The hypercube root 0
// has type T(d); broadcast-tree leaves have type T(0).
func TreeType(x Node, d int) int {
	m := Msb(x)
	if m > d {
		panic(fmt.Sprintf("bits: node %d does not fit in dimension %d", x, d))
	}
	return d - m
}

// IsTreeLeaf reports whether x is a leaf of the broadcast tree of H_d,
// i.e. of type T(0): its most significant bit is at position d.
func IsTreeLeaf(x Node, d int) bool {
	return TreeType(x, d) == 0
}

// Class returns i such that x belongs to class C_i of the paper's
// Section 4: the set of nodes whose most significant bit is at position
// i (C_0 = {0}).
func Class(x Node) int {
	return Msb(x)
}

// HammingDistance returns the number of bit positions in which x and y
// differ: the hypercube graph distance between them.
func HammingDistance(x, y Node) int {
	return mathbits.OnesCount32(uint32(x ^ y))
}

// HammingPath returns a shortest hypercube path from x to y, inclusive
// of both endpoints. Differing bits are corrected in increasing label
// order, clearing bits (moving toward lower levels) before setting bits;
// this keeps intermediate nodes at the lowest levels available, which
// matters to the coordinated strategy's synchronizer (lower levels are
// the already-clean region).
func HammingPath(x, y Node, d int) []Node {
	path := make([]Node, 0, HammingDistance(x, y)+1)
	cur := x
	path = append(path, cur)
	for i := 1; i <= d; i++ { // clear bits set in x but not in y
		if Bit(cur, i) && !Bit(y, i) {
			cur = Clear(cur, i)
			path = append(path, cur)
		}
	}
	for i := 1; i <= d; i++ { // then set bits missing from x
		if !Bit(cur, i) && Bit(y, i) {
			cur = Set(cur, i)
			path = append(path, cur)
		}
	}
	return path
}

// NextHopToward returns the neighbour of cur that is the next vertex on
// HammingPath(cur, dst, d), or cur itself when cur == dst. Stepping
// this function until arrival visits exactly the vertices HammingPath
// returns — bits that must be cleared go first, lowest position first,
// then bits that must be set, lowest first — without allocating the
// path slice. Walkers use it for incremental routing.
func NextHopToward(cur, dst Node) Node {
	if extra := uint32(cur &^ dst); extra != 0 {
		return cur &^ Node(extra&-extra) // clear the lowest surplus bit
	}
	if missing := uint32(dst &^ cur); missing != 0 {
		return cur | Node(missing&-missing) // set the lowest missing bit
	}
	return cur
}

// String renders x as a d-bit binary string, most significant position
// (d) first, matching the figures of the paper.
func String(x Node, d int) string {
	var b strings.Builder
	b.Grow(d)
	for i := d; i >= 1; i-- {
		if Bit(x, i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Parse converts a binary string (most significant position first, as
// produced by String) back into a Node. It returns an error on empty
// input, input longer than MaxDim, or non-binary characters.
func Parse(s string) (Node, error) {
	if len(s) == 0 {
		return 0, fmt.Errorf("bits: empty node string")
	}
	if len(s) > MaxDim {
		return 0, fmt.Errorf("bits: node string %q longer than max dimension %d", s, MaxDim)
	}
	var x Node
	for _, c := range s {
		switch c {
		case '0':
			x <<= 1
		case '1':
			x = x<<1 | 1
		default:
			return 0, fmt.Errorf("bits: invalid character %q in node string %q", c, s)
		}
	}
	return x, nil
}

// NodesAtLevel returns all nodes of H_d with exactly l one-bits, in
// increasing (lexicographic) order. It panics if l is outside [0, d].
func NodesAtLevel(d, l int) []Node {
	CheckDim(d)
	if l < 0 || l > d {
		panic(fmt.Sprintf("bits: level %d out of range [0,%d]", l, d))
	}
	out := make([]Node, 0)
	if l == 0 {
		return append(out, 0)
	}
	// Gosper's hack enumerates same-popcount values in increasing order.
	v := uint32(1<<l - 1)
	limit := uint32(1) << d
	for v < limit {
		out = append(out, Node(v))
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
		if c == 0 {
			break
		}
	}
	return out
}

// VisitNodesAtLevel calls yield for every node of H_d with exactly l
// one-bits, in increasing (lexicographic) order, stopping early when
// yield returns false. It enumerates with Gosper's hack and allocates
// nothing — the big-board engines walk million-node levels through it
// without materializing the level slice. It panics if l is outside
// [0, d].
func VisitNodesAtLevel(d, l int, yield func(x Node) bool) {
	CheckDim(d)
	if l < 0 || l > d {
		panic(fmt.Sprintf("bits: level %d out of range [0,%d]", l, d))
	}
	if l == 0 {
		yield(0)
		return
	}
	v := uint32(1<<l - 1)
	limit := uint32(1) << d
	for v < limit {
		if !yield(Node(v)) {
			return
		}
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
		if c == 0 {
			return
		}
	}
}

// NodesInClass returns all nodes of class C_i in increasing order:
// C_0 = {0}; for i >= 1, the 2^(i-1) nodes with msb at position i.
func NodesInClass(d, i int) []Node {
	CheckDim(d)
	if i < 0 || i > d {
		panic(fmt.Sprintf("bits: class %d out of range [0,%d]", i, d))
	}
	if i == 0 {
		return []Node{0}
	}
	base := Node(1) << (i - 1)
	out := make([]Node, 0, 1<<(i-1))
	for low := Node(0); low < base; low++ {
		out = append(out, base|low)
	}
	return out
}
