package netarena

import (
	"testing"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/netsim"
)

// engines are the three netsim protocols, paired fresh-vs-arena.
var engines = []struct {
	name  string
	fresh func(d int, cfg netsim.Config) netsim.Stats
	arena func(a *Arena, d int, cfg netsim.Config) netsim.Stats
}{
	{"visibility", netsim.Run, (*Arena).Run},
	{"clean", netsim.RunClean, (*Arena).RunClean},
	{"cloning", netsim.RunCloning, (*Arena).RunCloning},
}

// dupPlan builds a link-fault plan whose duplicate copies and delays
// schedule timers that can outlive the run — the straggler shape the
// quiescence barrier exists for.
func dupPlan(d int) *faults.Plan {
	c0 := heapqueue.New(d).Children(0)[0]
	return &faults.Plan{Name: "arena-dup", Seed: 21, Faults: []faults.Fault{
		{Kind: faults.LinkDup, Target: faults.LinkTarget(0, c0), At: 1, Until: 16},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, c0), At: 1, Until: 8, Delay: 300},
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, c0), At: 2, Until: 4, Times: 1},
	}}
}

// TestArenaMatchesFreshByteIdentity reuses one fabric per dimension
// across repeated runs of every engine and requires Stats == the
// fresh-fabric run's, byte for byte — the netsim mirror of envpool's
// pooled-vs-fresh tests. Acceptance: identical at every d <= 8.
func TestArenaMatchesFreshByteIdentity(t *testing.T) {
	a := New()
	for _, e := range engines {
		for d := 0; d <= 8; d++ {
			if testing.Short() && d > 5 {
				continue
			}
			cfg := netsim.Config{Seed: int64(11*d + 5), MaxLatency: 20 * time.Microsecond}
			fresh := e.fresh(d, cfg)
			for round := 0; round < 3; round++ {
				got := e.arena(a, d, cfg)
				if got != fresh {
					t.Errorf("%s d=%d round %d: arena stats diverge from fresh:\narena: %+v\nfresh: %+v",
						e.name, d, round, got, fresh)
				}
			}
		}
	}
}

// TestArenaReuseAcrossFaultedThenClean runs a link-faulted run and a
// fault-free run back to back on the same fabric: the clean run's
// Stats must match a fresh fabric's exactly, including a zero wire
// Summary — no ledger, ARQ or counter state may leak across the reset.
func TestArenaReuseAcrossFaultedThenClean(t *testing.T) {
	a := New()
	for _, e := range engines {
		for _, d := range []int{3, 5, 7} {
			if testing.Short() && d > 5 {
				continue
			}
			cfg := netsim.Config{Seed: int64(7 * d), MaxLatency: 100 * time.Microsecond}
			fresh := e.fresh(d, cfg)

			faulted := cfg
			faulted.Faults = dupPlan(d)
			ff := e.arena(a, d, faulted)
			if ff.Link.Dups == 0 {
				t.Errorf("%s d=%d: faulted run injected no duplicates; plan inert", e.name, d)
			}
			got := e.arena(a, d, cfg)
			if got != fresh {
				t.Errorf("%s d=%d: clean run after faulted reuse diverges:\narena: %+v\nfresh: %+v",
					e.name, d, got, fresh)
			}
			if got.Link != (netsim.Stats{}).Link {
				t.Errorf("%s d=%d: wire summary leaked across reset: %+v", e.name, d, got.Link)
			}
		}
	}
}

// TestArenaPoolsCompletedFabric pins the pooling mechanics: a
// completed fabric comes back from the next Acquire of its dimension,
// and dimensions do not cross.
func TestArenaPoolsCompletedFabric(t *testing.T) {
	a := New()
	f := a.Acquire(4)
	netsim.RunOn(f, netsim.Config{Seed: 1})
	a.Release(f)
	if g := a.Acquire(4); g != f {
		t.Error("completed fabric was not pooled for its dimension")
	} else {
		a.Release(g)
	}
	if g := a.Acquire(5); g == f {
		t.Error("arena handed a d=4 fabric to a d=5 acquire")
	}
}

// TestArenaDropsUnrunFabric pins poison-on-incomplete: a fabric that
// never completed a run (fresh, or panicked mid-flight) must not be
// pooled.
func TestArenaDropsUnrunFabric(t *testing.T) {
	a := New()
	f := a.Acquire(3)
	if f.Completed() {
		t.Fatal("fresh fabric reports completed")
	}
	a.Release(f)
	if g := a.Acquire(3); g == f {
		t.Error("arena pooled a fabric that never completed a run")
	}
}

// TestArenaQuiescentOnRelease asserts the load-bearing correctness
// property of pooling: at every Release, no timer from the run is
// still pending — even under a fault plan built to leave duplicate
// copies flying after the protocol completes.
func TestArenaQuiescentOnRelease(t *testing.T) {
	a := New()
	const d = 3
	cfg := netsim.Config{Seed: 9, MaxLatency: 500 * time.Microsecond, Faults: dupPlan(d)}
	for i := 0; i < 20; i++ {
		f := a.Acquire(d)
		netsim.RunOn(f, cfg)
		if n := f.PendingTimers(); n != 0 {
			t.Fatalf("iteration %d: %d timers still pending after RunOn returned", i, n)
		}
		a.Release(f)
	}
}

// partitionPlan cuts every link incident to the homebase for a frame
// window and heals it 800 logical units later: the heal releases the
// parked backlog on wall-clock timers, the exact straggler shape that
// could chase a recycled fabric.
func partitionPlan(d int) *faults.Plan {
	return &faults.Plan{Name: "arena-partition", Seed: 23, Faults: []faults.Fault{
		{Kind: faults.Partition, Target: faults.LinksTarget(faults.IslandLinks(0, d)),
			At: 1, Until: 4, Delay: 800},
	}}
}

// TestArenaReuseAfterPartition reuses a fabric immediately after a
// partition-faulted run, for every engine: no parked frame released by
// the heal may survive the quiescence barrier into the next run, and
// the fault-free rerun must match a fresh fabric byte for byte.
func TestArenaReuseAfterPartition(t *testing.T) {
	a := New()
	for _, e := range engines {
		for _, d := range []int{3, 6} {
			if testing.Short() && d > 5 {
				continue
			}
			cfg := netsim.Config{Seed: int64(19*d + 2), MaxLatency: 150 * time.Microsecond}
			fresh := e.fresh(d, cfg)

			faulted := cfg
			faulted.Faults = partitionPlan(d)
			f := a.Acquire(d)
			var ff netsim.Stats
			switch e.name {
			case "visibility":
				ff = netsim.RunOn(f, faulted)
			case "clean":
				ff = netsim.RunCleanOn(f, faulted)
			case "cloning":
				ff = netsim.RunCloningOn(f, faulted)
			}
			if ff.Link.Partitioned == 0 {
				t.Errorf("%s d=%d: partition parked no frames; plan inert (%+v)", e.name, d, ff.Link)
			}
			if n := f.PendingTimers(); n != 0 {
				t.Fatalf("%s d=%d: %d timers still pending right after the partition-faulted run", e.name, d, n)
			}
			a.Release(f)

			got := e.arena(a, d, cfg)
			if got != fresh {
				t.Errorf("%s d=%d: fault-free run on the reused fabric diverges:\narena: %+v\nfresh: %+v",
					e.name, d, got, fresh)
			}
		}
	}
}
