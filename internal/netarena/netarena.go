// Package netarena pools netsim network fabrics so sweeps reuse them
// across runs instead of rebuilding 2^d mailboxes, validator ledgers,
// per-host scratch and wire-fault state every time — the netsim
// analogue of internal/envpool for DES environments.
//
// Sharing contract (see ALGORITHMS.md, "Network arena reset contract"):
//
//   - the topology (hypercube + broadcast tree) is immutable and
//     shared process-wide via envpool.Topology, even across arenas;
//   - all mutable fabric state — mailboxes (retained capacity bounded
//     by the mailbox reset), validator ledgers and replay scratch,
//     per-host RNG/gather/ready scratch, faultlink link and ledger
//     maps — is reset in O(n) when the next run starts on the fabric;
//   - a fabric whose run panicked mid-flight is poisoned
//     (Fabric.Completed stays false): Release drops it, because
//     blocked host goroutines may still hold references into its
//     mailboxes and ledgers;
//   - no wall-clock timer outlives its run: the engines drain the
//     fabric's timer quiescence barrier before returning, and Release
//     re-asserts the drain, so a pooled fabric can never be touched
//     by a straggler from the run before.
//
// An Arena is NOT safe for concurrent use. Parallel sweeps give each
// sched worker its own Arena, mirroring envpool's per-worker pools:
// workers then reuse fabrics without locking, and only the read-mostly
// topology cache is shared.
package netarena

import (
	"hypersearch/internal/envpool"
	"hypersearch/internal/netsim"
)

// Arena hands out reusable network fabrics, at most one cached per
// dimension (a sweep worker hosts one run at a time, so deeper stacks
// would only pin memory).
type Arena struct {
	fabrics map[int]*netsim.Fabric
}

// New returns an empty arena.
func New() *Arena { return &Arena{fabrics: map[int]*netsim.Fabric{}} }

// Acquire returns a fabric for dimension d: a pooled one when
// available, otherwise a fresh one on the process-wide shared
// topology. The caller owns it until Release.
func (a *Arena) Acquire(d int) *netsim.Fabric {
	if f := a.fabrics[d]; f != nil {
		delete(a.fabrics, d)
		return f
	}
	h, bt := envpool.Topology(d)
	return netsim.NewFabricOn(h, bt)
}

// Release returns a fabric to the arena. Poisoned fabrics — those
// whose run never completed, i.e. panicked or were never run at all —
// are dropped: their host goroutines may still reference the
// mailboxes and ledgers, so they must never be reused. For completed
// fabrics the quiescence barrier is re-asserted (a no-op after the
// engines' own drain) before the fabric becomes available again.
func (a *Arena) Release(f *netsim.Fabric) {
	if f == nil || !f.Completed() {
		return
	}
	f.Quiesce()
	a.fabrics[f.Dim()] = f
}

// Run executes the visibility protocol on a pooled fabric: Acquire,
// netsim.RunOn, Release. A panicking run skips the Release, so the
// poisoned fabric is dropped rather than pooled.
func (a *Arena) Run(d int, cfg netsim.Config) netsim.Stats {
	f := a.Acquire(d)
	s := netsim.RunOn(f, cfg)
	a.Release(f)
	return s
}

// RunClean executes Algorithm CLEAN on a pooled fabric.
func (a *Arena) RunClean(d int, cfg netsim.Config) netsim.Stats {
	f := a.Acquire(d)
	s := netsim.RunCleanOn(f, cfg)
	a.Release(f)
	return s
}

// RunCloning executes the cloning variant on a pooled fabric.
func (a *Arena) RunCloning(d int, cfg netsim.Config) netsim.Stats {
	f := a.Acquire(d)
	s := netsim.RunCloningOn(f, cfg)
	a.Release(f)
	return s
}
