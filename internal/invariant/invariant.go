// Package invariant replays recorded traces against a fresh board and
// asserts, event by event, that the defining invariants of contiguous
// monotone search still hold: no stably-clean node is ever
// recontaminated (monotonicity) and the decontaminated region stays
// connected (contiguity). The fault-injection campaign runs it over
// every trace so that recovery machinery cannot quietly trade
// correctness for liveness.
package invariant

import (
	"fmt"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
	"hypersearch/internal/trace"
)

// maxViolations bounds how many violation messages a report keeps.
const maxViolations = 8

// Report is the outcome of checking one trace.
type Report struct {
	Events       int   // events replayed
	Moves        int64 // move events among them
	CheckedEvery int   // contiguity verified every that many events

	MonotoneOK   bool // no stably-clean node was recontaminated
	ContiguousOK bool // decontaminated set stayed connected at every check
	Captured     bool // final board has no contaminated node

	Violations []string // first few violations, for diagnostics
}

// Ok reports whether every invariant held through the whole trace.
func (r Report) Ok() bool { return r.MonotoneOK && r.ContiguousOK && r.Captured }

// String renders a one-line verdict.
func (r Report) String() string {
	return fmt.Sprintf("events=%d moves=%d monotone=%v contiguous=%v captured=%v",
		r.Events, r.Moves, r.MonotoneOK, r.ContiguousOK, r.Captured)
}

// Check replays l on a fresh board over g with the given homebase,
// verifying monotonicity after every event and contiguity every
// CheckedEvery events (1 for small graphs, 32 beyond 1024 nodes, plus
// always after the final event). Structural errors in the trace —
// unknown agents, non-edges, time running backwards — are returned as
// errors rather than panics, so the checker is safe on traces of
// arbitrary provenance.
func Check(l *trace.Log, g graph.Graph, home int) (rep Report, err error) {
	every := 1
	if g.Order() > 1024 {
		every = 32
	}
	rep = Report{MonotoneOK: true, ContiguousOK: true, CheckedEvery: every}

	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invariant: trace violates board rules: %v", r)
		}
	}()

	b := board.New(g, home)
	ids := map[int]int{} // recorded agent id -> replay agent id
	events := l.Events()
	var seenViolations int64
	for i, e := range events {
		switch e.Kind {
		case trace.Place:
			if _, ok := ids[e.Agent]; ok {
				return rep, fmt.Errorf("invariant: place reuses agent id %d (event %d)", e.Agent, e.Seq)
			}
			ids[e.Agent] = b.Place(e.Time)
		case trace.Clone:
			if _, ok := ids[e.Agent]; ok {
				return rep, fmt.Errorf("invariant: clone reuses agent id %d (event %d)", e.Agent, e.Seq)
			}
			ids[e.Agent] = b.Clone(e.To, e.Time)
		case trace.Move:
			id, ok := ids[e.Agent]
			if !ok {
				return rep, fmt.Errorf("invariant: move of unknown agent %d (event %d)", e.Agent, e.Seq)
			}
			b.Move(id, e.To, e.Time)
			rep.Moves++
		case trace.Terminate:
			id, ok := ids[e.Agent]
			if !ok {
				return rep, fmt.Errorf("invariant: terminate of unknown agent %d (event %d)", e.Agent, e.Seq)
			}
			b.Terminate(id, e.Time)
		default:
			return rep, fmt.Errorf("invariant: unknown event kind %q (event %d)", e.Kind, e.Seq)
		}
		if v := b.MonotoneViolations(); v > seenViolations {
			seenViolations = v
			rep.MonotoneOK = false
			rep.addViolation(fmt.Sprintf("event %d (%s agent %d -> %d): stably-clean node recontaminated", e.Seq, e.Kind, e.Agent, e.To))
		}
		if (i%every == 0 || i == len(events)-1) && !b.Contiguous() {
			if rep.ContiguousOK {
				rep.addViolation(fmt.Sprintf("event %d: decontaminated region disconnected", e.Seq))
			}
			rep.ContiguousOK = false
		}
	}
	rep.Events = len(events)
	rep.Captured = b.AllClean()
	return rep, nil
}

func (r *Report) addViolation(msg string) {
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, msg)
	}
}
