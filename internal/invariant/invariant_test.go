package invariant

import (
	"strings"
	"testing"

	"hypersearch/internal/hypercube"
	"hypersearch/internal/strategy"
	"hypersearch/internal/strategy/coordinated"
	"hypersearch/internal/strategy/visibility"
	"hypersearch/internal/trace"
)

// Real traces from the reference strategies must check clean.
func TestCheckAcceptsRealTraces(t *testing.T) {
	for d := 1; d <= 5; d++ {
		for name, run := range map[string]func(int, strategy.Options) (interface{}, *strategy.Env){
			"clean":      func(d int, o strategy.Options) (interface{}, *strategy.Env) { r, e := coordinated.Run(d, o); return r, e },
			"visibility": func(d int, o strategy.Options) (interface{}, *strategy.Env) { r, e := visibility.Run(d, o); return r, e },
		} {
			_, env := run(d, strategy.Options{Record: true})
			rep, err := Check(env.Log(), hypercube.New(d), 0)
			if err != nil {
				t.Fatalf("%s d=%d: %v", name, d, err)
			}
			if !rep.Ok() {
				t.Fatalf("%s d=%d: %s %v", name, d, rep, rep.Violations)
			}
			if rep.Moves == 0 || rep.Events == 0 {
				t.Fatalf("%s d=%d: empty report %s", name, d, rep)
			}
		}
	}
}

// An agent abandoning a frontier post must be flagged as a
// monotonicity violation once the flooding reaches a stably-clean
// node. On H_3: two agents guard 3 and 5 so node 1 settles stably
// clean between them; agent 0 then walks off node 5 while node 7 is
// still contaminated, flooding 5 and, transitively, the stably-clean
// node 1.
func TestCheckFlagsRecontamination(t *testing.T) {
	l := &trace.Log{}
	for a := 0; a < 3; a++ {
		l.Append(trace.Event{Time: 0, Kind: trace.Place, Agent: a, To: 0})
	}
	for a := 0; a < 3; a++ {
		l.Append(trace.Event{Time: int64(a) + 1, Kind: trace.Move, Agent: a, From: 0, To: 1})
	}
	l.Append(trace.Event{Time: 4, Kind: trace.Move, Agent: 0, From: 1, To: 5})
	l.Append(trace.Event{Time: 5, Kind: trace.Move, Agent: 1, From: 1, To: 3})
	// Node 1's neighbours are now all clean or guarded, so when agent 2
	// falls back to the root, node 1 settles stably clean.
	l.Append(trace.Event{Time: 6, Kind: trace.Move, Agent: 2, From: 1, To: 0})
	// Agent 0 abandons node 5 with node 7 still contaminated.
	l.Append(trace.Event{Time: 7, Kind: trace.Move, Agent: 0, From: 5, To: 4})
	rep, err := Check(l, hypercube.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MonotoneOK {
		t.Fatal("flooding of a stably-clean node not flagged")
	}
	if rep.Captured {
		t.Fatal("incomplete search reported as captured")
	}
	if len(rep.Violations) == 0 || !strings.Contains(rep.Violations[0], "recontaminated") {
		t.Fatalf("violations = %v", rep.Violations)
	}
}

// Structural trace damage must surface as errors, not panics.
func TestCheckRejectsDamagedTraces(t *testing.T) {
	unknown := &trace.Log{}
	unknown.Append(trace.Event{Time: 0, Kind: trace.Move, Agent: 9, From: 0, To: 1})
	if _, err := Check(unknown, hypercube.New(2), 0); err == nil {
		t.Error("move of unplaced agent accepted")
	}

	nonEdge := &trace.Log{}
	nonEdge.Append(trace.Event{Time: 0, Kind: trace.Place, Agent: 0, To: 0})
	nonEdge.Append(trace.Event{Time: 1, Kind: trace.Move, Agent: 0, From: 0, To: 3})
	if _, err := Check(nonEdge, hypercube.New(2), 0); err == nil {
		t.Error("non-edge move accepted")
	}

	reuse := &trace.Log{}
	reuse.Append(trace.Event{Time: 0, Kind: trace.Place, Agent: 0, To: 0})
	reuse.Append(trace.Event{Time: 1, Kind: trace.Place, Agent: 0, To: 0})
	if _, err := Check(reuse, hypercube.New(2), 0); err == nil {
		t.Error("agent id reuse accepted")
	}

	badKind := &trace.Log{}
	badKind.Append(trace.Event{Time: 0, Kind: "teleport", Agent: 0, To: 0})
	if _, err := Check(badKind, hypercube.New(2), 0); err == nil {
		t.Error("unknown event kind accepted")
	}
}

// The d=0 degenerate search: place and terminate, nothing to clean.
func TestCheckTrivial(t *testing.T) {
	l := &trace.Log{}
	l.Append(trace.Event{Time: 0, Kind: trace.Place, Agent: 0, To: 0})
	l.Append(trace.Event{Time: 1, Kind: trace.Terminate, Agent: 0, From: 0, To: 0})
	rep, err := Check(l, hypercube.New(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("trivial trace rejected: %s", rep)
	}
}
