package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"hypersearch/internal/sched"
)

// Campaign lifecycle statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed" // a run errored or panicked
	StatusCanceled  = "canceled"
	StatusDeadline  = "deadline-exceeded"
)

// defaultCompactThreshold is the live fraction below which the
// journal auto-compacts. 2/3 means the file is rewritten roughly every
// time it doubles past its live state (each completed campaign leaves
// one dead record behind), so compaction work is amortized O(1) per
// append and replay cost stays proportional to live campaigns.
const defaultCompactThreshold = 2.0 / 3.0

// Submission rejections the HTTP layer maps to status codes.
var (
	ErrOverloaded = errors.New("serve: campaign queue is full") // 429
	ErrDraining   = errors.New("serve: server is draining")     // 503
)

// Config tunes a Server. The zero value is serviceable: every field
// has a default chosen for the machine.
type Config struct {
	// JournalPath is the crash-safe campaign journal. Empty runs
	// without persistence (useful for throwaway tests).
	JournalPath string

	// MaxActive bounds concurrently executing campaigns; defaults to
	// runtime.NumCPU(). QueueDepth bounds campaigns waiting behind
	// them; defaults to 2*MaxActive. A submission past both is shed
	// with ErrOverloaded.
	MaxActive  int
	QueueDepth int

	// Workers is the sched worker count each campaign executes with;
	// defaults to max(1, NumCPU/MaxActive) so the fleets together
	// roughly fill the machine.
	Workers int

	// MaxDim and MaxRuns bound what a single campaign may ask for;
	// defaults 12 and 4096.
	MaxDim  int
	MaxRuns int

	// DefaultDeadline caps campaigns that do not set deadline_ms;
	// 0 means no default deadline.
	DefaultDeadline time.Duration

	// CompactThreshold auto-compacts the journal when the live
	// fraction of its records drops to or below this value (once the
	// file holds at least a handful of records). 0 defaults to 2/3 —
	// the journal is rewritten roughly every time it doubles, so
	// replay cost stays proportional to live state, amortized O(1)
	// per append. Negative disables auto-compaction (POST /compact
	// still works).
	CompactThreshold float64

	// CacheMaxEntries and CacheMaxBytes bound the result cache (LRU);
	// 0 means unlimited on that axis. Eviction never changes what a
	// request returns — an evicted key re-simulates identically.
	CacheMaxEntries int
	CacheMaxBytes   int64

	// BeforeRun, if set, is called before every simulated run with the
	// campaign name and the spec. It exists for tests: gating it makes
	// admission and cancellation deterministic, and panicking from it
	// exercises panic isolation.
	BeforeRun func(campaign string, spec RunSpec)

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.MaxActive <= 0 {
		c.MaxActive = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxActive
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU() / c.MaxActive
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 12
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 4096
	}
	if c.CompactThreshold == 0 {
		c.CompactThreshold = defaultCompactThreshold
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is the campaign service: admission control in front, a fixed
// executor fleet behind, a result cache and a crash-safe journal
// underneath.
type Server struct {
	cfg     Config
	journal *Journal // nil when running without persistence
	cache   *Cache

	mu        sync.Mutex
	draining  bool
	nextID    int
	byID      map[string]*Campaign
	order     []*Campaign
	queue     chan *Campaign // only sent to under mu; admission checks len()
	recovered int            // interrupted campaigns re-enqueued at startup

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewServer opens (and replays) the journal, warms the result cache
// from completed campaigns, re-enqueues interrupted ones, and starts
// the executor fleet. Close the returned server with Drain + Close.
func NewServer(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheMaxEntries, cfg.CacheMaxBytes),
		byID:  map[string]*Campaign{},
		stop:  make(chan struct{}),
	}

	var pending []*Campaign
	if cfg.JournalPath != "" {
		j, entries, torn, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		j.threshold = cfg.CompactThreshold
		j.logf = cfg.Logf
		s.journal = j
		if torn > 0 {
			cfg.Logf("serve: journal: skipped %d torn/corrupt trailing record(s)", torn)
		}
		pending = s.recover(entries)
	}

	// The queue must hold every recovered campaign plus a full
	// admission window; admission still sheds at QueueDepth, so the
	// extra capacity only keeps startup from blocking.
	s.queue = make(chan *Campaign, cfg.QueueDepth+len(pending))
	s.recovered = len(pending)
	for _, c := range pending {
		s.queue <- c
	}

	for i := 0; i < cfg.MaxActive; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// recover rebuilds in-memory state from replayed journal entries:
// completed campaigns become servable history (their runs warm the
// cache), accepted-but-not-completed ones are interrupted work to
// re-run. A compacted journal carries a completed campaign as a
// single completion record with the request inline; replay treats it
// as acceptance and completion in one step, so compacted and
// uncompacted journals recover to the same state. Returns the
// interrupted campaigns in acceptance order.
func (s *Server) recover(entries []Entry) []*Campaign {
	var ids []string
	acc := map[string]*Request{}
	done := map[string]Entry{}
	for _, e := range entries {
		switch e.Type {
		case EntryAccepted:
			if e.Req == nil {
				continue
			}
			if _, ok := acc[e.ID]; !ok {
				acc[e.ID] = e.Req
				ids = append(ids, e.ID)
			}
		case EntryCompleted:
			if _, ok := acc[e.ID]; !ok && e.Req != nil {
				acc[e.ID] = e.Req
				ids = append(ids, e.ID)
			}
			done[e.ID] = e
		}
	}
	var pending []*Campaign
	for _, id := range ids {
		if n := idNumber(id); n >= s.nextID {
			s.nextID = n + 1
		}
		c := newCampaign(id, acc[id])
		s.byID[id] = c
		s.order = append(s.order, c)
		if fin, ok := done[id]; ok {
			// Replay per-run events so a recovered campaign's stream and
			// snapshot (done count) match what the original process served.
			for i := range fin.Runs {
				rec := fin.Runs[i]
				c.event(StreamEvent{Type: "run", Index: i, Total: len(fin.Runs), Run: &rec})
			}
			c.finish(fin.Status, fin.Error, fin.Runs)
			s.warmCache(c, fin.Runs)
			continue
		}
		// Interrupted: determinism makes a re-run identical to what the
		// lost process would have produced, so re-running IS resuming —
		// and any of its runs that made it into other completed
		// campaigns' records come from the warmed cache for free.
		pending = append(pending, c)
		s.cfg.Logf("serve: journal: re-running interrupted campaign %s", id)
	}
	return pending
}

// warmCache memoizes a recovered campaign's runs under their keys.
func (s *Server) warmCache(c *Campaign, runs []RunRecord) {
	if c.status() != StatusCompleted || len(runs) != len(c.specs) {
		return
	}
	for i, spec := range c.specs {
		s.cache.Put(spec.Key(), runs[i])
	}
}

func idNumber(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "c"))
	if err != nil {
		return -1
	}
	return n
}

// Limits reports the admission bounds requests are validated against.
func (s *Server) Limits() Limits {
	return Limits{MaxDim: s.cfg.MaxDim, MaxRuns: s.cfg.MaxRuns}
}

// Cache exposes the result cache (read-mostly: stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Compact rewrites the journal as its snapshot, returning record
// counts before and after. Errors when the server runs journal-less.
func (s *Server) Compact() (before, after int, err error) {
	if s.journal == nil {
		return 0, 0, errors.New("serve: no journal configured")
	}
	return s.journal.Compact()
}

// Submit admits one campaign: validate, journal the acceptance, then
// enqueue. The journal write happens before the enqueue so no executor
// can ever complete a campaign whose acceptance a crash could lose.
func (s *Server) Submit(req *Request) (*Campaign, error) {
	req.Normalize()
	if err := req.Validate(s.Limits()); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		return nil, ErrOverloaded
	}
	id := fmt.Sprintf("c%d", s.nextID)
	s.nextID++
	c := newCampaign(id, req)
	if s.journal != nil {
		if err := s.journal.Append(Entry{Type: EntryAccepted, ID: id, Req: req}); err != nil {
			return nil, err
		}
	}
	s.byID[id] = c
	s.order = append(s.order, c)
	s.queue <- c // cannot block: only mu-holders send, and len was checked
	s.cfg.Logf("serve: accepted %s (%d runs)", id, len(c.specs))
	return c, nil
}

// Get returns a campaign by id.
func (s *Server) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	return c, ok
}

// Campaigns lists all campaigns in acceptance order.
func (s *Server) Campaigns() []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Campaign(nil), s.order...)
}

// Cancel cancels a campaign. Queued campaigns finalize immediately;
// running ones stop cooperatively: not-yet-started runs are skipped,
// in-flight runs finish (killing them mid-run would poison pooled
// environments).
func (s *Server) Cancel(id string) (*Campaign, error) {
	c, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("serve: no campaign %q", id)
	}
	if c.casStatus(StatusQueued, StatusCanceled) {
		// Never started: finalize here; the executor that eventually
		// drains it from the queue sees the terminal status and skips.
		s.finalize(c, StatusCanceled, "canceled before start", nil)
		return c, nil
	}
	c.cancel()
	return c, nil
}

// Drain stops accepting work and waits for in-flight campaigns to
// finish. If ctx expires first, remaining campaigns are cancelled
// cooperatively and Drain waits for them to wind down. Queued
// campaigns that never started stay journaled as accepted-only — a
// restarted daemon re-runs them, which is exactly the checkpoint
// semantics the journal exists for.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range s.Campaigns() {
			c.cancel()
		}
		<-done
		return ctx.Err()
	}
}

// Close releases the journal. Call after Drain.
func (s *Server) Close() error {
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// executor is one of MaxActive campaign runners. Each owns a private
// per-worker fleet, so a panic-poisoned pool entry is confined to one
// executor and replaced lazily.
func (s *Server) executor() {
	defer s.wg.Done()
	f := newFleet(s.cfg.Workers)
	for {
		select {
		case <-s.stop:
			return
		case c := <-s.queue:
			// A drain may race the dequeue: prefer stopping, leaving
			// the campaign journaled for the next process.
			select {
			case <-s.stop:
				return
			default:
			}
			s.runCampaign(f, c)
		}
	}
}

// runCampaign executes one campaign on fleet f and finalizes it.
func (s *Server) runCampaign(f *fleet, c *Campaign) {
	if !c.casStatus(StatusQueued, StatusRunning) {
		return // canceled while queued; already finalized
	}
	c.event(StreamEvent{Type: "status", Status: StatusRunning})

	ctx := c.ctx
	deadline := s.cfg.DefaultDeadline
	if c.req.DeadlineMS > 0 {
		deadline = time.Duration(c.req.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	specs := c.specs
	out, err := sched.MapWCtx(ctx, s.cfg.Workers, len(specs), func(w, i int) (RunRecord, error) {
		spec := specs[i]
		if s.cfg.BeforeRun != nil {
			s.cfg.BeforeRun(c.req.Name, spec)
		}
		key := spec.Key()
		if rec, ok := s.cache.Get(key); ok {
			rec.Cached = true
			c.event(StreamEvent{Type: "run", Index: i, Total: len(specs), Run: &rec})
			return rec, nil
		}
		rec, rerr := f.run(w, spec)
		if rerr != nil {
			return RunRecord{}, rerr
		}
		s.cache.Put(key, rec)
		c.event(StreamEvent{Type: "run", Index: i, Total: len(specs), Run: &rec})
		return rec, nil
	})

	switch {
	case err == nil:
		// Journal ground truth, not presentation: strip Cached so a
		// restarted daemon replays records byte-identical to fresh ones.
		for i := range out {
			out[i].Cached = false
		}
		s.finalize(c, StatusCompleted, "", out)
	default:
		s.finalize(c, failureStatus(err), err.Error(), nil)
	}
}

// failureStatus classifies a campaign error. Panic isolation comes
// first: a run that panicked is a failure even if the deadline also
// expired while the joined error was assembled.
func failureStatus(err error) string {
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		return StatusFailed
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return StatusDeadline
	}
	if errors.Is(err, context.Canceled) {
		return StatusCanceled
	}
	return StatusFailed
}

// finalize journals the completion and publishes the terminal state.
// The journal append comes first: once a client observes a terminal
// status, a crash cannot un-complete the campaign.
func (s *Server) finalize(c *Campaign, status, errMsg string, runs []RunRecord) {
	if s.journal != nil {
		e := Entry{Type: EntryCompleted, ID: c.id, Status: status, Error: errMsg, Runs: runs}
		if jerr := s.journal.Append(e); jerr != nil {
			// Results are in memory and correct; only durability is
			// degraded. Serve them, shout about it.
			s.cfg.Logf("serve: journal append failed for %s: %v", c.id, jerr)
		}
	}
	c.finish(status, errMsg, runs)
	s.cfg.Logf("serve: %s %s", c.id, status)
}

// --- Campaign ---

// StreamEvent is one line of a campaign's progress stream.
type StreamEvent struct {
	Type   string     `json:"type"` // "status", "run", "done"
	Status string     `json:"status,omitempty"`
	Index  int        `json:"index,omitempty"`
	Total  int        `json:"total,omitempty"`
	Run    *RunRecord `json:"run,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// Campaign is one admitted request and its observable life: a status
// machine, an append-only event log streamed to any number of
// watchers, and (when completed) the run records in canonical order.
type Campaign struct {
	id    string
	req   *Request
	specs []RunSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	state   string
	errMsg  string
	records []RunRecord
	events  []StreamEvent
	final   bool
}

func newCampaign(id string, req *Request) *Campaign {
	q := *req
	q.Normalize()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Campaign{
		id:     id,
		req:    &q,
		specs:  q.Expand(),
		ctx:    ctx,
		cancel: cancel,
		state:  StatusQueued,
	}
	c.cond = sync.NewCond(&c.mu)
	c.events = append(c.events, StreamEvent{Type: "status", Status: StatusQueued})
	return c
}

// ID returns the campaign's identifier.
func (c *Campaign) ID() string { return c.id }

// Request returns the normalized request the campaign runs.
func (c *Campaign) Request() *Request { return c.req }

// Runs returns the expansion size.
func (c *Campaign) Runs() int { return len(c.specs) }

func (c *Campaign) status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

func (c *Campaign) casStatus(from, to string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != from {
		return false
	}
	c.state = to
	return true
}

func (c *Campaign) event(e StreamEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// finish publishes the terminal state and the final "done" event.
func (c *Campaign) finish(status, errMsg string, runs []RunRecord) {
	c.cancel() // release the context's resources in every path
	c.mu.Lock()
	if c.final {
		c.mu.Unlock()
		return
	}
	c.state = status
	c.errMsg = errMsg
	c.records = runs
	c.final = true
	c.events = append(c.events, StreamEvent{Type: "done", Status: status, Error: errMsg})
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Wait blocks until the campaign reaches a terminal status (or ctx
// expires) and returns that status.
func (c *Campaign) Wait(ctx context.Context) (string, error) {
	stop := context.AfterFunc(ctx, c.cond.Broadcast)
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.final {
		if err := ctx.Err(); err != nil {
			return c.state, err
		}
		c.cond.Wait()
	}
	return c.state, nil
}

// next returns event i, blocking until it exists. ok=false means the
// stream is over (i is past the final event) or ctx expired.
func (c *Campaign) next(ctx context.Context, i int) (StreamEvent, bool) {
	stop := context.AfterFunc(ctx, c.cond.Broadcast)
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i >= len(c.events) {
		if c.final || ctx.Err() != nil {
			return StreamEvent{}, false
		}
		c.cond.Wait()
	}
	return c.events[i], true
}

// Snapshot is a campaign's queryable state.
type Snapshot struct {
	ID       string      `json:"id"`
	Name     string      `json:"name,omitempty"`
	Status   string      `json:"status"`
	Total    int         `json:"total"`
	Done     int         `json:"done"`
	Error    string      `json:"error,omitempty"`
	Runs     []RunRecord `json:"runs,omitempty"` // completed campaigns only
}

// Snapshot returns the campaign's current state. Done counts runs
// whose records have been produced so far.
func (c *Campaign) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := 0
	for _, e := range c.events {
		if e.Type == "run" {
			done++
		}
	}
	return Snapshot{
		ID:     c.id,
		Name:   c.req.Name,
		Status: c.state,
		Total:  len(c.specs),
		Done:   done,
		Error:  c.errMsg,
		Runs:   append([]RunRecord(nil), c.records...),
	}
}

// Records returns the completed campaign's run records in canonical
// order (nil unless completed).
func (c *Campaign) Records() []RunRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RunRecord(nil), c.records...)
}

// --- HTTP ---

// Handler returns the service's HTTP API:
//
//	POST /campaigns               submit (202, body = snapshot)
//	GET  /campaigns               list snapshots
//	GET  /campaigns/{id}          one snapshot (runs included when done)
//	GET  /campaigns/{id}/stream   progress as chunked JSONL (x-ndjson)
//	POST /campaigns/{id}/cancel   cooperative cancel (202)
//	POST /compact                 compact the journal now (200, counts)
//	GET  /healthz                 liveness
//	GET  /statsz                  cache + journal + admission counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /compact", s.handleCompact)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /statsz", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := ParseRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	c, err := s.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, c.Snapshot())
	case errors.Is(err, ErrOverloaded):
		writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	cs := s.Campaigns()
	snaps := make([]Snapshot, 0, len(cs))
	for _, c := range cs {
		sn := c.Snapshot()
		sn.Runs = nil // listings stay light; fetch one id for records
		snaps = append(snaps, sn)
	}
	writeJSON(w, http.StatusOK, snaps)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("no campaign %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, c.Snapshot())
}

// handleStream replays the campaign's whole event log and then follows
// it live, one JSON object per line, flushed per event so clients see
// progress as it happens. The stream ends after the "done" event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("no campaign %q", r.PathValue("id"))})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		e, ok := c.next(r.Context(), i)
		if !ok {
			return
		}
		if enc.Encode(e) != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		if e.Type == "done" {
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, c.Snapshot())
}

// CompactResult is the POST /compact body: journal record counts
// around the rewrite.
type CompactResult struct {
	RecordsBefore int `json:"records_before"`
	RecordsAfter  int `json:"records_after"`
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	before, after, err := s.Compact()
	if err != nil {
		code := http.StatusInternalServerError
		if s.journal == nil {
			code = http.StatusConflict // journal-less daemon: nothing to compact
		}
		writeJSON(w, code, errorBody{err.Error()})
		return
	}
	s.cfg.Logf("serve: journal compacted: %d -> %d records", before, after)
	writeJSON(w, http.StatusOK, CompactResult{RecordsBefore: before, RecordsAfter: after})
}

// ServiceStats is the /statsz body.
type ServiceStats struct {
	Campaigns       map[string]int `json:"campaigns"` // status -> count
	Queued          int            `json:"queue_len"`
	QueueDepth      int            `json:"queue_depth"`
	MaxActive       int            `json:"max_active"`
	Workers         int            `json:"workers_per_campaign"`
	CacheSize       int            `json:"cache_size"`
	CacheBytes      int64          `json:"cache_bytes"`
	CacheHits       int64          `json:"cache_hits"`
	CacheMisses     int64          `json:"cache_misses"`
	CacheEvictions  int64          `json:"cache_evictions"`
	CacheMaxEntries int            `json:"cache_max_entries,omitempty"`
	CacheMaxBytes   int64          `json:"cache_max_bytes,omitempty"`
	Journal         *JournalStats  `json:"journal,omitempty"` // nil when journal-less
	Recovered       int            `json:"recovered_campaigns"`
	Draining        bool           `json:"draining"`
}

// Stats reports service counters.
func (s *Server) Stats() ServiceStats {
	s.mu.Lock()
	st := ServiceStats{
		Campaigns:       map[string]int{},
		Queued:          len(s.queue),
		QueueDepth:      s.cfg.QueueDepth,
		MaxActive:       s.cfg.MaxActive,
		Workers:         s.cfg.Workers,
		CacheMaxEntries: s.cfg.CacheMaxEntries,
		CacheMaxBytes:   s.cfg.CacheMaxBytes,
		Recovered:       s.recovered,
		Draining:        s.draining,
	}
	order := append([]*Campaign(nil), s.order...)
	s.mu.Unlock()
	for _, c := range order {
		st.Campaigns[c.status()]++
	}
	hits, misses := s.cache.Stats()
	st.CacheSize, st.CacheHits, st.CacheMisses = s.cache.Len(), hits, misses
	st.CacheBytes, st.CacheEvictions = s.cache.Bytes(), s.cache.Evictions()
	if s.journal != nil {
		js := s.journal.Stats()
		st.Journal = &js
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
