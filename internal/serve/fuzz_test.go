package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hypersearch/internal/core"
)

// FuzzParseRequest hardens the submission decoder: arbitrary bytes
// must produce a request or an error, never a panic, and anything that
// decodes must survive Normalize+Validate (which feed directly into
// Expand and the scheduler).
func FuzzParseRequest(f *testing.F) {
	f.Add(`{"dim_min":2,"protocols":["visibility"]}`)
	f.Add(`{"name":"x","dim_min":2,"dim_max":8,"protocols":["clean","cloning"],"seeds":[1,2,3],"engine":"network"}`)
	f.Add(`{"dim_min":2,"protocols":["visibility"],"faults":{"seed":1,"faults":[{"kind":"latency-spike","target":"any","at":1,"delay":3}]}}`)
	f.Add(`{"dim_min":-1,"protocols":[]}`)
	f.Add(`{"dim_min":2,"protocols":["visibility"],"deadline_ms":-1}`)
	f.Add(`[]`)
	f.Add(`{"dim_min":1e9}`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := ParseRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		req.Normalize()
		if err := req.Validate(Limits{MaxDim: 10, MaxRuns: 256}); err != nil {
			return
		}
		// A validated request must expand to exactly its declared run
		// count, with every spec inside the admitted bounds.
		specs := req.Expand()
		if len(specs) != req.runs() {
			t.Fatalf("expansion size %d != declared %d", len(specs), req.runs())
		}
		for _, s := range specs {
			if s.Dim < 1 || s.Dim > 10 {
				t.Fatalf("validated request expanded to out-of-bounds dim %d", s.Dim)
			}
			s.Key() // must not panic, plan hash included
		}
	})
}

// FuzzReadEntries hardens journal recovery: any byte soup — including
// the torn tails a crash mid-append leaves behind — must replay
// without panicking, and whatever replays must itself round-trip
// cleanly (re-serializing the recovered entries and reading them back
// loses nothing).
func FuzzReadEntries(f *testing.F) {
	acc, _ := json.Marshal(Entry{Type: EntryAccepted, ID: "c0",
		Req: &Request{DimMin: 2, Protocols: []string{core.Visibility}}})
	fin, _ := json.Marshal(Entry{Type: EntryCompleted, ID: "c0", Status: StatusCompleted,
		Runs: []RunRecord{{Dim: 2, Protocol: core.Visibility, Engine: EngineDES}}})
	full := append(append(append([]byte{}, acc...), '\n'), append(fin, '\n')...)
	// The compacted form: a completion carrying its request inline, as
	// journal compaction writes it.
	compacted, _ := json.Marshal(Entry{Type: EntryCompleted, ID: "c1", Status: StatusCompleted,
		Req:  &Request{DimMin: 2, Protocols: []string{core.Visibility}},
		Runs: []RunRecord{{Dim: 2, Protocol: core.Visibility, Engine: EngineDES}}})
	orphan, _ := json.Marshal(Entry{Type: EntryCompleted, ID: "c9", Status: StatusFailed, Error: "no request anywhere"})
	f.Add(full)
	f.Add(full[:len(full)-7]) // torn final record
	f.Add(append(compacted, '\n'))
	f.Add(append(append(append([]byte{}, compacted...), '\n'), append(orphan, '\n')...))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"type":"accepted","id":""}` + "\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, skipped, err := ReadEntries(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadEntries on in-memory data returned I/O error: %v", err)
		}
		if skipped < 0 {
			t.Fatalf("negative skip count %d", skipped)
		}
		for _, e := range entries {
			if !validEntry(e) {
				t.Fatalf("replayed an invalid entry: %+v", e)
			}
		}
		// Round trip: a recovered history re-serialized is a journal
		// with nothing torn and nothing skipped.
		var buf bytes.Buffer
		for _, e := range entries {
			b, merr := json.Marshal(e)
			if merr != nil {
				t.Fatalf("re-marshal: %v", merr)
			}
			buf.Write(append(b, '\n'))
		}
		again, skipped2, err := ReadEntries(&buf)
		if err != nil || skipped2 != 0 || len(again) != len(entries) {
			t.Fatalf("round trip: %d entries, %d skipped, %v (want %d, 0, nil)",
				len(again), skipped2, err, len(entries))
		}

		// Compaction equivalence on arbitrary histories: the snapshot
		// is never larger than the history, replays with nothing torn,
		// and is a fixed point — snapshotting the replayed snapshot
		// reproduces it byte-for-byte. That is the "replay after
		// compaction == replay before" contract, fuzzed.
		snap := snapshotEntries(entries)
		if len(snap) > len(entries) {
			t.Fatalf("snapshot grew: %d entries from a %d-entry history", len(snap), len(entries))
		}
		var sbuf bytes.Buffer
		for _, e := range snap {
			b, merr := json.Marshal(e)
			if merr != nil {
				t.Fatalf("snapshot marshal: %v", merr)
			}
			sbuf.Write(append(b, '\n'))
		}
		replayed, sk, err := ReadEntries(&sbuf)
		if err != nil || sk != 0 {
			t.Fatalf("snapshot replay: skipped %d, %v", sk, err)
		}
		sj, _ := json.Marshal(snap)
		rj, _ := json.Marshal(snapshotEntries(replayed))
		if !bytes.Equal(sj, rj) {
			t.Fatalf("snapshot is not a replay fixed point:\nsnapshot:  %s\nresnapshot: %s", sj, rj)
		}
	})
}
