package serve

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes completed runs by their deterministic Key. Because a
// run is a pure function of its key, a hit is byte-identical to a
// re-simulation — the cache is a correctness-preserving shortcut, and
// the service proves it in its tests by comparing cached and serially
// re-simulated records.
//
// The cache is safe for concurrent use: campaign executors read and
// write it in parallel, and the journal-recovery path warms it before
// the executors start.
type Cache struct {
	mu     sync.RWMutex
	m      map[Key]RunRecord
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[Key]RunRecord{}} }

// Get returns the memoized record for k. The returned record always
// has Cached=false (the stored ground truth); callers mark their copy.
func (c *Cache) Get(k Key) (RunRecord, bool) {
	c.mu.RLock()
	rec, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return rec, ok
}

// Put memoizes a freshly simulated record under k. The Cached flag is
// stripped so recovery-warmed and live-simulated entries are
// indistinguishable.
func (c *Cache) Put(k Key, rec RunRecord) {
	rec.Cached = false
	c.mu.Lock()
	c.m[k] = rec
	c.mu.Unlock()
}

// Len reports the number of memoized runs.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats reports the lookup counters.
func (c *Cache) Stats() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }
