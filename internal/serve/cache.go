package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheEntryOverhead approximates the per-entry bookkeeping cost (key,
// map slot, list element) added to each record's JSON length for the
// byte budget.
const cacheEntryOverhead = 128

// Cache memoizes completed runs by their deterministic Key. Because a
// run is a pure function of its key, a hit is byte-identical to a
// re-simulation — the cache is a correctness-preserving shortcut, and
// the service proves it in its tests by comparing cached and serially
// re-simulated records.
//
// The cache is bounded: an LRU with an entry-count budget and an
// approximate byte budget (either 0 = unlimited). Eviction is also
// correctness-preserving — an evicted key is a future cache miss that
// re-simulates to the identical record — so budgets trade CPU for
// memory, never correctness. The most recently inserted entry is
// never evicted, so a single record above the byte budget still
// caches (the budget is approximate, not a hard ceiling).
//
// Safe for concurrent use: campaign executors read and write it in
// parallel, and the journal-recovery path warms it before the
// executors start.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	m          map[Key]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  Key
	rec  RunRecord
	size int64
}

// NewCache returns an empty cache bounded to maxEntries records and
// approximately maxBytes of record payload; 0 for either means
// unlimited on that axis.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		m:          map[Key]*list.Element{},
	}
}

// Get returns the memoized record for k, promoting it to most
// recently used. The returned record always has Cached=false (the
// stored ground truth); callers mark their copy.
func (c *Cache) Get(k Key) (RunRecord, bool) {
	c.mu.Lock()
	el, ok := c.m[k]
	var rec RunRecord
	if ok {
		c.ll.MoveToFront(el)
		rec = el.Value.(*cacheEntry).rec
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return rec, ok
}

// Put memoizes a freshly simulated record under k, evicting from the
// LRU tail until the budgets hold. The Cached flag is stripped so
// recovery-warmed and live-simulated entries are indistinguishable.
func (c *Cache) Put(k Key, rec RunRecord) {
	rec.Cached = false
	size := rec.approxBytes() + cacheEntryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		// Determinism: an existing entry under the same key already
		// holds the byte-identical record; just refresh its recency.
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, rec: rec, size: size})
	c.bytes += size
	for c.ll.Len() > 1 && c.overBudget() {
		back := c.ll.Back()
		ce := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.m, ce.key)
		c.bytes -= ce.size
		c.evictions.Add(1)
	}
}

// overBudget reports whether either budget is exceeded; callers hold mu.
func (c *Cache) overBudget() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	if c.maxBytes > 0 && c.bytes > c.maxBytes {
		return true
	}
	return false
}

// Len reports the number of memoized runs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the approximate resident payload.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats reports the lookup counters.
func (c *Cache) Stats() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }

// Evictions reports how many records the budgets have pushed out.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
