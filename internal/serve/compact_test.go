package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hypersearch/internal/core"
	"hypersearch/internal/metrics"
)

// journalFixture appends a mixed history to a fresh journal at path:
// nDone completed campaigns (each accepted + completed = 2 records),
// one interrupted campaign (accepted only), and one canceled-before-
// start campaign (accepted + completed-with-error). Returns the
// entries in append order.
func journalFixture(t *testing.T, path string, nDone int) []Entry {
	t.Helper()
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	var entries []Entry
	add := func(e Entry) {
		t.Helper()
		if err := j.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
		entries = append(entries, e)
	}
	req := func(seed int64) *Request {
		return &Request{DimMin: 2, DimMax: 3, Protocols: []string{core.Visibility}, Seeds: []int64{seed}}
	}
	for i := 0; i < nDone; i++ {
		id := fmt.Sprintf("c%d", i)
		add(Entry{Type: EntryAccepted, ID: id, Req: req(int64(i))})
		add(Entry{Type: EntryCompleted, ID: id, Status: StatusCompleted, Runs: []RunRecord{
			{Dim: 2, Protocol: core.Visibility, Engine: EngineDES, Seed: int64(i), Result: metrics.Result{Dim: 2}},
			{Dim: 3, Protocol: core.Visibility, Engine: EngineDES, Seed: int64(i), Result: metrics.Result{Dim: 3}},
		}})
	}
	add(Entry{Type: EntryAccepted, ID: fmt.Sprintf("c%d", nDone), Req: req(99)})
	add(Entry{Type: EntryAccepted, ID: fmt.Sprintf("c%d", nDone+1), Req: req(100)})
	add(Entry{Type: EntryCompleted, ID: fmt.Sprintf("c%d", nDone+1), Status: StatusCanceled, Error: "canceled before start"})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return entries
}

// canonicalState reduces a journal file to its replay semantics: the
// snapshot of whatever ReadEntries recovers, as canonical JSON. Two
// journals with equal canonical states recover identical servers.
func canonicalState(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	entries, skipped, err := ReadEntries(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ReadEntries: %v", err)
	}
	if skipped != 0 {
		t.Fatalf("journal %s has %d torn/corrupt records after compaction machinery ran", path, skipped)
	}
	js, err := json.Marshal(snapshotEntries(entries))
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// TestJournalCompactionEquivalence is the compaction contract:
// replaying a compacted journal reaches exactly the state replaying
// its uncompacted twin does — same campaigns, same completions, same
// records — while the file shrinks to one record per campaign.
func TestJournalCompactionEquivalence(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	journalFixture(t, a, 4)
	raw, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j, _, _, err := OpenJournal(a)
	if err != nil {
		t.Fatalf("reopen a: %v", err)
	}
	before, after, err := j.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// 4 done (2 records each) + 1 interrupted + 1 canceled (2 records)
	// = 11 records; the snapshot holds one per campaign = 6.
	if before != 11 || after != 6 {
		t.Fatalf("Compact: want 11 -> 6 records, got %d -> %d", before, after)
	}
	if got, want := canonicalState(t, a), canonicalState(t, b); !bytes.Equal(got, want) {
		t.Fatalf("compacted journal replays differently:\ncompacted:   %s\nuncompacted: %s", got, want)
	}

	// The recovered servers agree too: same campaigns, same statuses,
	// same records, same interrupted set.
	sa := newTestServer(t, Config{JournalPath: a, MaxActive: 1, Workers: 1, QueueDepth: 8})
	sb := newTestServer(t, Config{JournalPath: b, MaxActive: 1, Workers: 1, QueueDepth: 8})
	if ra, rb := sa.Stats().Recovered, sb.Stats().Recovered; ra != 1 || rb != 1 {
		t.Fatalf("recovered campaigns: compacted %d, uncompacted %d, want 1 and 1", ra, rb)
	}
	ctx := testCtx(t)
	ca, cb := sa.Campaigns(), sb.Campaigns()
	if len(ca) != len(cb) {
		t.Fatalf("campaign counts diverge: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if _, err := ca[i].Wait(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := cb[i].Wait(ctx); err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(ca[i].Snapshot())
		jb, _ := json.Marshal(cb[i].Snapshot())
		if !bytes.Equal(ja, jb) {
			t.Fatalf("campaign %s diverges after compaction:\ncompacted:   %s\nuncompacted: %s", ca[i].ID(), ja, jb)
		}
	}
}

// TestJournalAutoCompaction drives the threshold trigger: appending
// completions until the live fraction drops must compact in place,
// leaving a file of exactly the live records, and the compacted
// journal must still replay into a serving server.
func TestJournalAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "auto.jsonl")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.threshold = 0.9
	j.logf = t.Logf
	req := &Request{DimMin: 2, Protocols: []string{core.Visibility}}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("c%d", i)
		if err := j.Append(Entry{Type: EntryAccepted, ID: id, Req: req}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Entry{Type: EntryCompleted, ID: id, Status: StatusCompleted,
			Runs: []RunRecord{{Dim: 2, Protocol: core.Visibility, Engine: EngineDES}}}); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no auto-compaction after 12 appends at threshold 0.9: %+v", st)
	}
	if st.Records != st.Live {
		t.Fatalf("auto-compacted journal still carries dead records: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{JournalPath: path, MaxActive: 1, Workers: 1, QueueDepth: 8})
	if got := len(s.Campaigns()); got != 6 {
		t.Fatalf("compacted journal recovered %d campaigns, want 6", got)
	}
	for _, c := range s.Campaigns() {
		if st := c.status(); st != StatusCompleted {
			t.Fatalf("campaign %s recovered as %s, want completed", c.ID(), st)
		}
	}
}

// TestJournalCrashDuringCompaction kills compaction in both crash
// windows — after the snapshot is written but before the rename, and
// after the rename but before the directory sync — and requires the
// reopened journal to replay to the one canonical state (old and new
// are equivalent by the compaction contract), never a torn hybrid.
func TestJournalCrashDuringCompaction(t *testing.T) {
	for _, stage := range []string{"snapshot", "rename"} {
		t.Run(stage, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "crash.jsonl")
			journalFixture(t, path, 3)
			want := canonicalState(t, path)

			j, _, _, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			boom := errors.New("injected crash: " + stage)
			j.crashAt = func(s string) error {
				if s == stage {
					return boom
				}
				return nil
			}
			if _, _, err := j.Compact(); !errors.Is(err, boom) {
				t.Fatalf("Compact should die at the injected %s crash, got %v", stage, err)
			}
			// The dead process's lock would be released by the kernel;
			// here Close releases it (the file writes already happened).
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			got := canonicalState(t, path)
			if !bytes.Equal(got, want) {
				t.Fatalf("journal after %s crash replays a different state:\ngot:  %s\nwant: %s", stage, got, want)
			}
			// And a full reopen (which also clears any stray snapshot
			// temp file) still appends cleanly.
			j2, entries, skipped, err := OpenJournal(path)
			if err != nil {
				t.Fatalf("reopen after %s crash: %v", stage, err)
			}
			if skipped != 0 {
				t.Fatalf("reopen after %s crash skipped %d records", stage, skipped)
			}
			if len(entries) == 0 {
				t.Fatalf("reopen after %s crash lost the journal", stage)
			}
			if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
				t.Fatalf("stray compaction snapshot survived reopen (stat err %v)", err)
			}
			if err := j2.Append(Entry{Type: EntryAccepted, ID: "c-after",
				Req: &Request{DimMin: 2, Protocols: []string{core.Visibility}}}); err != nil {
				t.Fatalf("append after crash recovery: %v", err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestJournalExclusiveLock is the two-daemons bugfix: a second open of
// the same journal path must fail fast with an error naming the
// holder, and the path must become reusable once the holder closes.
func TestJournalExclusiveLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.jsonl")
	j1, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = OpenJournal(path)
	if err == nil {
		j1.Close()
		t.Fatal("second OpenJournal on a locked path succeeded")
	}
	if !strings.Contains(err.Error(), "in use") || !strings.Contains(err.Error(), fmt.Sprintf("pid %d", os.Getpid())) {
		t.Fatalf("lock error should name the holder, got: %v", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after holder closed: %v", err)
	}
	j2.Close()
}

// TestServerCompactAndRestartUnderActivity compacts through the
// Server API with completed and in-flight work present, then restarts
// on the compacted journal and requires the completed history to be
// served without re-simulation.
func TestServerCompactAndRestartUnderActivity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "srv.jsonl")
	s, err := NewServer(Config{JournalPath: path, MaxActive: 1, Workers: 1, QueueDepth: 8, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	req := &Request{Name: "done", DimMin: 2, DimMax: 4, Protocols: []string{core.Visibility}}
	c, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Wait(ctx); st != StatusCompleted {
		t.Fatalf("done: %s", st)
	}
	before, after, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if before != 2 || after != 1 {
		t.Fatalf("Compact: want 2 -> 1, got %d -> %d", before, after)
	}
	// A post-compaction submission appends to the new file.
	c2, err := s.Submit(&Request{Name: "later", DimMin: 2, DimMax: 3, Protocols: []string{core.Cloning}})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := c2.Wait(ctx); st != StatusCompleted {
		t.Fatalf("later: %s", st)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{JournalPath: path, MaxActive: 1, Workers: 1, QueueDepth: 8})
	if got := s2.Stats().Recovered; got != 0 {
		t.Fatalf("restart: want 0 recovered (all completed), got %d", got)
	}
	r, ok := s2.Get(c.ID())
	if !ok || r.status() != StatusCompleted || len(r.Records()) != c.Runs() {
		t.Fatalf("compacted completed campaign not served after restart")
	}
	want, _ := SerialRecords(req)
	gj, _ := json.Marshal(r.Records())
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("compaction-replayed records diverge from serial:\nservice: %s\nserial:  %s", gj, wj)
	}
}
