package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal entry types.
const (
	EntryAccepted  = "accepted"  // a campaign was admitted; carries the request
	EntryCompleted = "completed" // a campaign finished; carries status and results
)

// Entry is one record of the crash-safe campaign journal: an
// append-only JSONL file, one JSON object per line, fsync'd per
// append. An accepted entry without a matching completed entry is an
// interrupted campaign — a restarted daemon re-runs it (determinism
// makes the re-run identical to what the lost run would have
// produced); a completed entry's results warm the result cache, so
// finished work survives restarts without re-simulation.
type Entry struct {
	Type   string      `json:"type"`
	ID     string      `json:"id"`
	Req    *Request    `json:"req,omitempty"`    // accepted only
	Status string      `json:"status,omitempty"` // completed only
	Error  string      `json:"error,omitempty"`  // completed only (failed/deadline)
	Runs   []RunRecord `json:"runs,omitempty"`   // completed-successfully only
}

// Journal is the append side. Safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its entries, and positions for appending. A torn final record — the
// signature of a crash mid-append — is detected and skipped, and the
// next append first terminates the torn line so the journal stays one
// valid JSON object per line. The skipped count reports how many
// trailing records were unreadable (0 or 1 for a crash; more only for
// external corruption).
func OpenJournal(path string) (*Journal, []Entry, int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: opening journal: %w", err)
	}
	entries, skipped, tail, err := readEntries(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("serve: reading journal: %w", err)
	}
	// Truncate the torn tail (if any) so the next append starts at a
	// record boundary instead of gluing onto half a line.
	if err := f.Truncate(tail); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("serve: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(tail, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("serve: seeking journal tail: %w", err)
	}
	return &Journal{f: f}, entries, skipped, nil
}

// Append writes one entry and fsyncs before returning: once Append
// returns, the entry survives a crash.
func (j *Journal) Append(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("serve: encoding journal entry: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("serve: appending journal entry: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: fsyncing journal: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ReadEntries decodes a journal stream. Malformed trailing data — a
// final line without its newline, or one that does not decode — is
// where a crash mid-append leaves the file, so it is skipped, not an
// error: resume must never be wedged by the very crash it exists to
// recover from. Decoding stops at the first bad record (everything
// after it is unreachable garbage by the append-only contract) and
// reports how many non-empty trailing lines were skipped. The only
// errors are I/O errors from r.
func ReadEntries(r io.Reader) ([]Entry, int, error) {
	entries, skipped, _, err := readEntries(r)
	return entries, skipped, err
}

// readEntries additionally returns the byte offset just past the last
// valid record — the truncation point for crash recovery.
func readEntries(r io.Reader) (entries []Entry, skipped int, tail int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, 0, 0, rerr
		}
		complete := rerr == nil // saw the terminating newline
		rec := bytes.TrimSpace(line)
		if len(rec) > 0 {
			var e Entry
			if !complete || json.Unmarshal(rec, &e) != nil || !validEntry(e) {
				// Torn or corrupt: count this and every further
				// non-empty line, then stop replaying.
				skipped++
				for {
					more, merr := br.ReadBytes('\n')
					if len(bytes.TrimSpace(more)) > 0 {
						skipped++
					}
					if merr != nil {
						return entries, skipped, tail, nil
					}
				}
			}
			entries = append(entries, e)
		}
		if complete {
			tail += int64(len(line))
		}
		if rerr == io.EOF {
			return entries, skipped, tail, nil
		}
	}
}

// validEntry keeps replay honest: a decodable line that is not a
// journal record (wrong type, no id) is corruption, not history.
func validEntry(e Entry) bool {
	if e.ID == "" {
		return false
	}
	switch e.Type {
	case EntryAccepted:
		return e.Req != nil
	case EntryCompleted:
		return e.Status != ""
	}
	return false
}
