package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// Journal entry types.
const (
	EntryAccepted  = "accepted"  // a campaign was admitted; carries the request
	EntryCompleted = "completed" // a campaign finished; carries status and results
)

// Entry is one record of the crash-safe campaign journal: an
// append-only JSONL file, one JSON object per line, fsync'd per
// append. An accepted entry without a matching completed entry is an
// interrupted campaign — a restarted daemon re-runs it (determinism
// makes the re-run identical to what the lost run would have
// produced); a completed entry's results warm the result cache, so
// finished work survives restarts without re-simulation.
//
// A compacted journal collapses each completed campaign's two records
// into one: a completed entry that also carries the request. Replay
// treats such an entry as acceptance and completion in one step, so
// replaying a compacted journal reaches exactly the state replaying
// the uncompacted one would.
type Entry struct {
	Type   string      `json:"type"`
	ID     string      `json:"id"`
	Req    *Request    `json:"req,omitempty"`    // accepted, or compacted completed
	Status string      `json:"status,omitempty"` // completed only
	Error  string      `json:"error,omitempty"`  // completed only (failed/deadline)
	Runs   []RunRecord `json:"runs,omitempty"`   // completed-successfully only
}

// compactSuffix names the temp file a compaction snapshot is written
// to before the atomic rename; a crash can strand one, so open
// removes any stray.
const compactSuffix = ".compact"

// minCompactRecords keeps auto-compaction from churning on journals
// too small for the rewrite to matter.
const minCompactRecords = 8

// Journal is the append side. Safe for concurrent use.
//
// Beyond the file, the journal maintains the live replay state — per
// campaign, its acceptance and (if any) latest completion — which is a
// pure function of the append sequence. Compaction rewrites the file
// as exactly that state (the snapshot), so replay-after-compaction is
// equivalent to replay of the uncompacted journal by construction.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	lock *os.File // flocked <path>.lock, held for the journal's lifetime
	path string

	// threshold enables auto-compaction: after an append, if the live
	// fraction of records drops to or below it (and the file holds at
	// least minCompactRecords), the journal compacts in place. <= 0
	// disables; the server defaults it.
	threshold float64
	logf      func(format string, args ...any) // never nil after open

	total       int // records physically in the file
	ids         []string
	live        map[string]*campaignEntries
	compactions int64

	// crashAt simulates a crash at a named compaction stage (tests
	// only): its error aborts Compact exactly where a kill would,
	// leaving the on-disk state for recovery to prove out.
	crashAt func(stage string) error
}

// campaignEntries is one campaign's live journal state.
type campaignEntries struct {
	acc Entry  // acceptance; Req == nil only for orphan completions
	fin *Entry // latest completion, nil while in flight
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its entries, and positions for appending. The parent directory is
// fsync'd so a crash cannot lose a freshly created journal's name
// even though every append fsyncs the file itself. An exclusive
// advisory lock on <path>.lock guards against two daemons interleaving
// appends into the same journal; the loser's error names the holder.
// A torn final record — the signature of a crash mid-append — is
// detected and skipped, and the next append first terminates the torn
// line so the journal stays one valid JSON object per line. The
// skipped count reports how many trailing records were unreadable (0
// or 1 for a crash; more only for external corruption).
func OpenJournal(path string) (*Journal, []Entry, int, error) {
	lock, err := lockJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	fail := func(err error) (*Journal, []Entry, int, error) {
		lock.Close()
		return nil, nil, 0, err
	}
	// A compaction crash can strand a snapshot temp file; it is
	// garbage (the rename never happened), never replay state.
	os.Remove(path + compactSuffix)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fail(fmt.Errorf("serve: opening journal: %w", err))
	}
	if err := syncDir(path); err != nil {
		f.Close()
		return fail(err)
	}
	entries, skipped, tail, err := readEntries(f)
	if err != nil {
		f.Close()
		return fail(fmt.Errorf("serve: reading journal: %w", err))
	}
	// Truncate the torn tail (if any) so the next append starts at a
	// record boundary instead of gluing onto half a line.
	if err := f.Truncate(tail); err != nil {
		f.Close()
		return fail(fmt.Errorf("serve: truncating torn journal tail: %w", err))
	}
	if _, err := f.Seek(tail, io.SeekStart); err != nil {
		f.Close()
		return fail(fmt.Errorf("serve: seeking journal tail: %w", err))
	}
	j := &Journal{
		f:    f,
		lock: lock,
		path: path,
		logf: func(string, ...any) {},
		live: map[string]*campaignEntries{},
	}
	for _, e := range entries {
		j.absorb(e)
	}
	return j, entries, skipped, nil
}

// lockJournal takes the exclusive advisory lock guarding path. The
// lock file records the holder's pid so the losing process's startup
// error can name it.
func lockJournal(path string) (*os.File, error) {
	lf, err := os.OpenFile(path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal lock: %w", err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder, _ := io.ReadAll(io.LimitReader(lf, 256))
		lf.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			h := strings.TrimSpace(string(holder))
			if h == "" {
				h = "unknown holder"
			}
			return nil, fmt.Errorf("serve: journal %s is already in use by another hqserved (%s)", path, h)
		}
		return nil, fmt.Errorf("serve: locking journal %s: %w", path, err)
	}
	lf.Truncate(0)
	lf.Seek(0, io.SeekStart)
	fmt.Fprintf(lf, "pid %d", os.Getpid())
	return lf, nil
}

// syncDir fsyncs the directory holding path, making a just-created or
// just-renamed name durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("serve: opening journal directory: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("serve: fsyncing journal directory: %w", err)
	}
	return nil
}

// absorb folds one appended (or replayed) entry into the live state.
func (j *Journal) absorb(e Entry) {
	j.total++
	st := j.live[e.ID]
	if st == nil {
		st = &campaignEntries{}
		j.live[e.ID] = st
		j.ids = append(j.ids, e.ID)
	}
	switch e.Type {
	case EntryAccepted:
		if st.acc.Req == nil {
			st.acc = e
		}
	case EntryCompleted:
		if st.acc.Req == nil && e.Req != nil {
			// Compacted form: the completion carries the request.
			st.acc = Entry{Type: EntryAccepted, ID: e.ID, Req: e.Req}
		}
		fin := e
		fin.Req = nil // canonical: the request lives on the accepted side
		st.fin = &fin
	}
}

// liveCount is the number of records a snapshot would hold: one per
// campaign whose acceptance is known. Orphan completions (no request
// anywhere) replay to nothing and count for nothing.
func (j *Journal) liveCount() int {
	n := 0
	for _, st := range j.live {
		if st.acc.Req != nil {
			n++
		}
	}
	return n
}

// snapshotLocked lists the journal's live state in first-mention
// (acceptance) order: completed campaigns as one merged completion
// record carrying the request, in-flight ones as their accepted entry.
func (j *Journal) snapshotLocked() []Entry {
	out := make([]Entry, 0, len(j.ids))
	for _, id := range j.ids {
		st := j.live[id]
		if st.acc.Req == nil {
			continue // orphan completion: replay ignores it, so the snapshot drops it
		}
		if st.fin != nil {
			e := *st.fin
			e.Req = st.acc.Req
			out = append(out, e)
		} else {
			out = append(out, st.acc)
		}
	}
	return out
}

// snapshotEntries computes the compacted form of a replayed history —
// package-visible so tests and the fuzzer can prove
// replay(snapshot(h)) == replay(h) without touching a file.
func snapshotEntries(entries []Entry) []Entry {
	j := &Journal{live: map[string]*campaignEntries{}}
	for _, e := range entries {
		j.absorb(e)
	}
	return j.snapshotLocked()
}

// Append writes one entry and fsyncs before returning: once Append
// returns, the entry survives a crash. When auto-compaction is
// enabled and the append tips the live fraction under the threshold,
// the journal compacts before returning; a compaction failure only
// degrades the file's size, never the append's durability, so it is
// logged rather than returned.
func (j *Journal) Append(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("serve: encoding journal entry: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("serve: appending journal entry: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: fsyncing journal: %w", err)
	}
	j.absorb(e)
	if j.threshold > 0 && j.total >= minCompactRecords {
		if live := j.liveCount(); live < j.total && float64(live) <= j.threshold*float64(j.total) {
			if _, _, err := j.compactLocked(); err != nil {
				j.logf("serve: journal auto-compaction failed (append is durable): %v", err)
			}
		}
	}
	return nil
}

// Compact rewrites the journal as its snapshot: written to a temp
// file, fsync'd, atomically renamed over the old journal, with the
// parent directory fsync'd after the rename. A crash at any point
// leaves a journal that replays to either the old or the new state —
// never a torn hybrid — because the old file is untouched until the
// rename, and the rename is atomic. Returns the record counts before
// and after.
func (j *Journal) Compact() (before, after int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

func (j *Journal) compactLocked() (before, after int, err error) {
	before = j.total
	snap := j.snapshotLocked()
	tmp := j.path + compactSuffix
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return before, before, fmt.Errorf("serve: creating compaction snapshot: %w", err)
	}
	w := bufio.NewWriter(tf)
	for _, e := range snap {
		b, merr := json.Marshal(e)
		if merr != nil {
			tf.Close()
			return before, before, fmt.Errorf("serve: encoding compaction snapshot: %w", merr)
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tf.Close()
		return before, before, fmt.Errorf("serve: writing compaction snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return before, before, fmt.Errorf("serve: fsyncing compaction snapshot: %w", err)
	}
	if err := j.crash("snapshot"); err != nil { // crash window 1: snapshot written, not yet renamed
		tf.Close()
		return before, before, err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		tf.Close()
		return before, before, fmt.Errorf("serve: renaming compaction snapshot: %w", err)
	}
	// Point of no return: the path now names the snapshot. Future
	// appends go to the new file; the old fd is dropped.
	old := j.f
	j.f = tf
	j.total = len(snap)
	j.compactions++
	old.Close()
	after = len(snap)
	if err := j.crash("rename"); err != nil { // crash window 2: renamed, directory not yet synced
		return before, after, err
	}
	if err := syncDir(j.path); err != nil {
		return before, after, err
	}
	return before, after, nil
}

func (j *Journal) crash(stage string) error {
	if j.crashAt == nil {
		return nil
	}
	return j.crashAt(stage)
}

// JournalStats reports the journal's size and compaction counters.
type JournalStats struct {
	Records     int   `json:"records"`     // records physically in the file
	Live        int   `json:"live"`        // records a compaction would keep
	Compactions int64 `json:"compactions"` // rewrites since open (manual + automatic)
}

// Stats reports the journal's current counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Records: j.total, Live: j.liveCount(), Compactions: j.compactions}
}

// Close syncs and closes the journal file and releases the advisory
// lock.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if j.lock != nil {
		j.lock.Close() // closing the fd releases the flock
		j.lock = nil
	}
	return err
}

// ReadEntries decodes a journal stream. Malformed trailing data — a
// final line without its newline, or one that does not decode — is
// where a crash mid-append leaves the file, so it is skipped, not an
// error: resume must never be wedged by the very crash it exists to
// recover from. Decoding stops at the first bad record (everything
// after it is unreachable garbage by the append-only contract) and
// reports how many non-empty trailing lines were skipped. The only
// errors are I/O errors from r.
func ReadEntries(r io.Reader) ([]Entry, int, error) {
	entries, skipped, _, err := readEntries(r)
	return entries, skipped, err
}

// readEntries additionally returns the byte offset just past the last
// valid record — the truncation point for crash recovery.
func readEntries(r io.Reader) (entries []Entry, skipped int, tail int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, 0, 0, rerr
		}
		complete := rerr == nil // saw the terminating newline
		rec := bytes.TrimSpace(line)
		if len(rec) > 0 {
			var e Entry
			if !complete || json.Unmarshal(rec, &e) != nil || !validEntry(e) {
				// Torn or corrupt: count this and every further
				// non-empty line, then stop replaying.
				skipped++
				for {
					more, merr := br.ReadBytes('\n')
					if len(bytes.TrimSpace(more)) > 0 {
						skipped++
					}
					if merr != nil {
						return entries, skipped, tail, nil
					}
				}
			}
			entries = append(entries, e)
		}
		if complete {
			tail += int64(len(line))
		}
		if rerr == io.EOF {
			return entries, skipped, tail, nil
		}
	}
}

// validEntry keeps replay honest: a decodable line that is not a
// journal record (wrong type, no id) is corruption, not history.
func validEntry(e Entry) bool {
	if e.ID == "" {
		return false
	}
	switch e.Type {
	case EntryAccepted:
		return e.Req != nil
	case EntryCompleted:
		return e.Status != ""
	}
	return false
}
