package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hypersearch/internal/core"
	"hypersearch/internal/faults"
)

// LoadConfig tunes the load-test harness.
type LoadConfig struct {
	Dir    string // scratch directory for the phase journals (required)
	MaxDim int    // largest dimension the mixed campaigns sweep to; default 8
	Logf   func(format string, args ...any)
}

// LoadReport is what the harness measured. Every count is also an
// assertion: the harness errors out if an expected behaviour (a 429, a
// 503, a recovery, an identity match) did not happen.
type LoadReport struct {
	Submitted   int           `json:"submitted"`    // campaigns admitted across all phases
	Shed        int           `json:"shed_429"`     // submissions shed by admission control
	DrainReject int           `json:"drain_503"`    // submissions rejected while draining
	Completed   int           `json:"completed"`    // campaigns that finished all runs
	Canceled    int           `json:"canceled"`     // campaigns cancelled mid-flight
	Failed      int           `json:"failed"`       // campaigns failed by an injected panic
	Runs        int           `json:"runs"`         // run records produced by completed campaigns
	StreamRuns  int           `json:"stream_runs"`  // run events observed over HTTP streams
	CacheHits   int64         `json:"cache_hits"`   // result-cache hits across phases
	CacheMisses int64         `json:"cache_misses"` // result-cache misses across phases
	Interrupted int           `json:"interrupted"`  // campaigns left queued by the drain
	Recovered   int           `json:"recovered"`    // campaigns re-run after restart
	Identity    int           `json:"identity_checked"` // campaigns compared byte-for-byte to the serial batch path
	Compactions int64         `json:"compactions"`    // journal compactions observed under load
	CompactSaved int          `json:"compact_saved"`  // journal records the compacted twin avoided vs the uncompacted one
	Evicted     int64         `json:"evicted"`        // cache evictions forced by the bounded-cache phase
	Elapsed     time.Duration `json:"elapsed_ns"`
}

func (r LoadReport) String() string {
	return fmt.Sprintf(
		"submitted=%d shed429=%d drain503=%d completed=%d canceled=%d failed=%d runs=%d stream_runs=%d cache=%d/%d interrupted=%d recovered=%d identity=%d compactions=%d compact_saved=%d evicted=%d elapsed=%s",
		r.Submitted, r.Shed, r.DrainReject, r.Completed, r.Canceled, r.Failed,
		r.Runs, r.StreamRuns, r.CacheHits, r.CacheMisses,
		r.Interrupted, r.Recovered, r.Identity,
		r.Compactions, r.CompactSaved, r.Evicted, r.Elapsed.Round(time.Millisecond))
}

// gate lets the harness hold a named campaign's runs at a known point:
// the first gated run signals started and every gated run blocks until
// release is closed. That turns "cancel mid-flight" and "drain with
// work in the queue" from races into sequenced steps.
type gate struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGate() *gate {
	return &gate{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) hook() func() {
	return func() {
		g.once.Do(func() { close(g.started) })
		<-g.release
	}
}

// RunLoadTest hammers the campaign service through its real HTTP
// surface and returns what it measured. Three phases:
//
//  1. Concurrency: >=9 mixed campaigns (both engines, fault plans,
//     adversarial latency, duplicates) submitted at once against
//     MaxActive=4 executors, progress consumed over live JSONL
//     streams, two campaigns cancelled mid-flight, one killed by an
//     injected panic — and every completed campaign compared
//     byte-for-byte against the serial batch path.
//  2. Admission: a gated single-executor server is filled past its
//     queue depth to force a 429, then drained to force a 503.
//  3. Crash-restart: a journalled server is drained with campaigns
//     still queued; a second server on the same journal re-runs them
//     to completion and serves the pre-drain results from the warmed
//     cache, again byte-identical to serial.
//  4. Compaction: twin journalled servers run the same campaign mix —
//     one auto-compacting aggressively and hit with concurrent
//     POST /compact, the other never compacting — and after a restart
//     of both, every campaign served from the compacted journal is
//     byte-identical to its uncompacted twin and to serial.
//  5. Eviction: a server whose cache budget is far below the campaign
//     size re-runs a verbatim duplicate; results stay byte-identical
//     to serial while the eviction counters climb.
//
// The harness runs under -race in the test suite (d <= 8) and behind
// `hqserved -loadtest` for reportable numbers.
func RunLoadTest(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("loadtest: LoadConfig.Dir is required")
	}
	if cfg.MaxDim <= 0 {
		cfg.MaxDim = 8
	}
	if cfg.MaxDim < 4 {
		return nil, fmt.Errorf("loadtest: MaxDim %d too small (need >= 4)", cfg.MaxDim)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rep := &LoadReport{}
	start := time.Now()
	if err := loadPhaseConcurrent(cfg, rep); err != nil {
		return rep, fmt.Errorf("loadtest phase 1 (concurrency): %w", err)
	}
	if err := loadPhaseAdmission(cfg, rep); err != nil {
		return rep, fmt.Errorf("loadtest phase 2 (admission): %w", err)
	}
	if err := loadPhaseRestart(cfg, rep); err != nil {
		return rep, fmt.Errorf("loadtest phase 3 (drain/restart): %w", err)
	}
	if err := loadPhaseCompaction(cfg, rep); err != nil {
		return rep, fmt.Errorf("loadtest phase 4 (compaction): %w", err)
	}
	if err := loadPhaseEviction(cfg, rep); err != nil {
		return rep, fmt.Errorf("loadtest phase 5 (eviction): %w", err)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// mixedCampaigns is the phase-1 workload: both engines, a DES delay
// plan, a network wire-fault plan, adversarial latency, two designated
// cancellation victims, one campaign that panics, and a duplicate pair
// proving the cache. Dimensions are capped so the whole mix stays
// -race-friendly.
func mixedCampaigns(maxDim int) []*Request {
	clamp := func(d int) int {
		if d < 2 {
			return 2
		}
		return d
	}
	netDim := maxDim
	if netDim > 5 {
		netDim = 5 // network engine spawns 2^d hosts; keep goroutine count sane
	}
	spike := &faults.Plan{Name: "spike", Seed: 1, Faults: []faults.Fault{
		{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 3, Until: 6, Delay: 4},
	}}
	lossy := &faults.Plan{Name: "lossy", Seed: 2, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 1), At: 1, Until: 4, Times: 1},
	}}
	return []*Request{
		{Name: "des-vis", DimMin: 2, DimMax: maxDim, Protocols: []string{core.Visibility}, Seeds: []int64{1, 2}},
		{Name: "des-all", DimMin: 2, DimMax: clamp(maxDim - 1), Protocols: []string{core.Clean, core.Visibility, core.Cloning, core.Synchronous}},
		{Name: "des-adv", DimMin: 2, DimMax: clamp(maxDim - 2), Protocols: []string{core.Visibility, core.Cloning}, Seeds: []int64{7}, AdversarialLatency: 5},
		{Name: "des-faulty", DimMin: 3, DimMax: clamp(maxDim - 1), Protocols: []string{core.Clean, core.Visibility}, Seeds: []int64{3}, Faults: spike},
		{Name: "net-vis", Engine: EngineNetwork, DimMin: 2, DimMax: netDim, Protocols: []string{core.Visibility, core.Cloning}, Seeds: []int64{1}},
		{Name: "net-lossy", Engine: EngineNetwork, DimMin: 2, DimMax: clamp(netDim - 1), Protocols: []string{core.Visibility}, Seeds: []int64{2}, Faults: lossy},
		{Name: "victim-1", DimMin: 2, DimMax: maxDim, Protocols: []string{core.Visibility, core.Synchronous}, Seeds: []int64{1, 2, 3}},
		{Name: "victim-2", DimMin: 2, DimMax: maxDim, Protocols: []string{core.Cloning}, Seeds: []int64{1, 2, 3, 4}},
		{Name: "boom", DimMin: 2, DimMax: 2, Protocols: []string{core.Visibility}},
		{Name: "dup", DimMin: 2, DimMax: clamp(maxDim - 1), Protocols: []string{core.Visibility}, Seeds: []int64{5}},
	}
}

func loadPhaseConcurrent(cfg LoadConfig, rep *LoadReport) error {
	gates := map[string]*gate{"victim-1": newGate(), "victim-2": newGate()}
	srv, err := NewServer(Config{
		JournalPath: filepath.Join(cfg.Dir, "load-concurrent.jsonl"),
		MaxActive:   4,
		QueueDepth:  32,
		Workers:     1,
		MaxDim:      cfg.MaxDim,
		Logf:        cfg.Logf,
		BeforeRun: func(campaign string, _ RunSpec) {
			if campaign == "boom" {
				panic("injected fault: boom")
			}
			if g := gates[campaign]; g != nil {
				g.hook()()
			}
		},
	})
	if err != nil {
		return err
	}
	base, shutdown, err := serveHTTP(srv)
	if err != nil {
		return err
	}
	defer shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	client := &http.Client{}

	reqs := mixedCampaigns(cfg.MaxDim)
	byName := map[string]*Request{}
	ids := make([]string, len(reqs))
	var wg sync.WaitGroup
	errc := make(chan error, 4*len(reqs)) // every goroutine below writes at most once
	for i, q := range reqs {
		byName[q.Name] = q
		wg.Add(1)
		go func(i int, q *Request) {
			defer wg.Done()
			id, code, err := postCampaign(client, base, q)
			if err != nil {
				errc <- fmt.Errorf("submitting %s: %w", q.Name, err)
				return
			}
			if code != http.StatusAccepted {
				errc <- fmt.Errorf("submitting %s: got HTTP %d", q.Name, code)
				return
			}
			ids[i] = id
		}(i, q)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}
	rep.Submitted += len(reqs)

	// Cancel the victims mid-flight: wait for each to enter its first
	// run (held at the gate), cancel it, then let the held run finish —
	// the remaining runs are skipped and the campaign lands canceled.
	for name, g := range gates {
		wg.Add(1)
		go func(name string, g *gate) {
			defer wg.Done()
			select {
			case <-g.started:
			case <-ctx.Done():
				errc <- fmt.Errorf("victim %s never started", name)
				return
			}
			id := idOf(ids, reqs, name)
			if _, err := client.Post(base+"/campaigns/"+id+"/cancel", "", nil); err != nil {
				errc <- fmt.Errorf("cancelling %s: %w", name, err)
			}
			close(g.release)
		}(name, g)
	}

	// Consume every campaign's live stream concurrently.
	statuses := make([]string, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, runs, err := streamCampaign(client, base, ids[i])
			if err != nil {
				errc <- fmt.Errorf("streaming %s: %w", reqs[i].Name, err)
				return
			}
			statuses[i] = status
			rep.addStreamRuns(runs)
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}

	// The daemon must have survived the panic.
	if resp, err := client.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon unhealthy after injected panic: %v", err)
	}
	for i, q := range reqs {
		switch q.Name {
		case "boom":
			if statuses[i] != StatusFailed {
				return fmt.Errorf("boom: want %s, got %s", StatusFailed, statuses[i])
			}
			rep.Failed++
		case "victim-1", "victim-2":
			if statuses[i] != StatusCanceled {
				return fmt.Errorf("%s: want %s, got %s", q.Name, StatusCanceled, statuses[i])
			}
			rep.Canceled++
		default:
			if statuses[i] != StatusCompleted {
				return fmt.Errorf("%s: want %s, got %s", q.Name, StatusCompleted, statuses[i])
			}
			rep.Completed++
		}
	}

	// Cache proof: resubmit the dup campaign verbatim; every run must
	// come from the cache and the records must still match serial.
	hits0, _ := srv.Cache().Stats()
	dup := *byName["dup"]
	dup.Name = "dup-again"
	id, code, err := postCampaign(client, base, &dup)
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("resubmitting dup: HTTP %d, %v", code, err)
	}
	rep.Submitted++
	status, runs, err := streamCampaign(client, base, id)
	if err != nil || status != StatusCompleted {
		return fmt.Errorf("dup-again: status %s, %v", status, err)
	}
	rep.Completed++
	rep.addStreamRuns(runs)
	c, _ := srv.Get(id)
	if hits1, _ := srv.Cache().Stats(); hits1-hits0 < int64(c.Runs()) {
		return fmt.Errorf("dup-again: want >= %d cache hits, got %d", c.Runs(), hits1-hits0)
	}

	// Byte-identity: every completed campaign's records equal the
	// serial batch path's, whether simulated fresh or cache-served.
	for i, q := range reqs {
		if statuses[i] != StatusCompleted {
			continue
		}
		cc, _ := srv.Get(ids[i])
		if err := checkIdentity(q, cc.Records()); err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		rep.Identity++
		rep.Runs += len(cc.Records())
	}
	if err := checkIdentity(&dup, c.Records()); err != nil {
		return fmt.Errorf("dup-again: %w", err)
	}
	rep.Identity++
	rep.Runs += len(c.Records())

	hits, misses := srv.Cache().Stats()
	rep.CacheHits += hits
	rep.CacheMisses += misses

	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return srv.Close()
}

func loadPhaseAdmission(cfg LoadConfig, rep *LoadReport) error {
	g := newGate()
	srv, err := NewServer(Config{
		MaxActive:  1,
		QueueDepth: 2,
		Workers:    1,
		MaxDim:     cfg.MaxDim,
		Logf:       cfg.Logf,
		BeforeRun:  func(string, RunSpec) { g.hook()() },
	})
	if err != nil {
		return err
	}
	base, shutdown, err := serveHTTP(srv)
	if err != nil {
		return err
	}
	defer shutdown()
	client := &http.Client{}

	small := func(name string) *Request {
		return &Request{Name: name, DimMin: 2, DimMax: 3, Protocols: []string{core.Visibility}}
	}
	// First submission reaches the (gated) executor and blocks there,
	// leaving the queue empty; the next two fill the queue; the fourth
	// must be shed with 429.
	if _, code, err := postCampaign(client, base, small("shed-0")); err != nil || code != http.StatusAccepted {
		return fmt.Errorf("shed-0: HTTP %d, %v", code, err)
	}
	select {
	case <-g.started:
	case <-time.After(time.Minute):
		return fmt.Errorf("shed-0 never reached the executor")
	}
	for _, name := range []string{"shed-1", "shed-2"} {
		if _, code, err := postCampaign(client, base, small(name)); err != nil || code != http.StatusAccepted {
			return fmt.Errorf("%s: HTTP %d, %v", name, code, err)
		}
	}
	rep.Submitted += 3
	_, code, err := postCampaign(client, base, small("shed-3"))
	if err != nil {
		return err
	}
	if code != http.StatusTooManyRequests {
		return fmt.Errorf("shed-3: want 429, got HTTP %d", code)
	}
	rep.Shed++

	// Release the gate and drain; a post-drain submission must get 503.
	close(g.release)
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	_, code, err = postCampaign(client, base, small("late"))
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("post-drain submission: want 503, got HTTP %d", code)
	}
	rep.DrainReject++
	return srv.Close()
}

func loadPhaseRestart(cfg LoadConfig, rep *LoadReport) error {
	journal := filepath.Join(cfg.Dir, "load-restart.jsonl")
	g := newGate()
	srv, err := NewServer(Config{
		JournalPath: journal,
		MaxActive:   1,
		QueueDepth:  8,
		Workers:     1,
		MaxDim:      cfg.MaxDim,
		Logf:        cfg.Logf,
		BeforeRun: func(campaign string, _ RunSpec) {
			if campaign == "hold" {
				g.hook()()
			}
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	pre := &Request{Name: "pre", DimMin: 2, DimMax: 4, Protocols: []string{core.Visibility}}
	a, err := srv.Submit(pre)
	if err != nil {
		return err
	}
	if st, err := a.Wait(ctx); err != nil || st != StatusCompleted {
		return fmt.Errorf("pre: status %s, %v", st, err)
	}
	hold := &Request{Name: "hold", DimMin: 2, DimMax: 4, Protocols: []string{core.Cloning}}
	b, err := srv.Submit(hold)
	if err != nil {
		return err
	}
	// Same runs as "pre": after restart this must be served entirely
	// from the journal-warmed cache.
	rePre := *pre
	rePre.Name = "re-pre"
	cCamp, err := srv.Submit(&rePre)
	if err != nil {
		return err
	}
	fresh := &Request{Name: "fresh", DimMin: 2, DimMax: 5, Protocols: []string{core.Synchronous}, Seeds: []int64{9}}
	dCamp, err := srv.Submit(fresh)
	if err != nil {
		return err
	}
	rep.Submitted += 4

	select {
	case <-g.started: // "hold" is now in-flight on the only executor
	case <-ctx.Done():
		return fmt.Errorf("hold never started")
	}
	drainErr := make(chan error, 1)
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	go func() { drainErr <- srv.Drain(dctx) }()
	for !srv.Stats().Draining {
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Submit(pre); err != ErrDraining {
		return fmt.Errorf("submit while draining: want ErrDraining, got %v", err)
	}
	rep.DrainReject++
	close(g.release) // let the in-flight campaign finish; drain completes
	if err := <-drainErr; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if st := b.status(); st != StatusCompleted {
		return fmt.Errorf("hold after graceful drain: want completed, got %s", st)
	}
	rep.Completed += 2 // pre + hold
	for _, c := range []*Campaign{cCamp, dCamp} {
		if st := c.status(); st != StatusQueued {
			return fmt.Errorf("%s at drain: want queued, got %s", c.req.Name, st)
		}
		rep.Interrupted++
	}
	if err := srv.Close(); err != nil {
		return err
	}

	// Restart on the same journal: the two interrupted campaigns are
	// re-run (determinism makes the re-run the resume), the completed
	// ones are served from the journal without re-simulation.
	srv2, err := NewServer(Config{
		JournalPath: journal,
		MaxActive:   1,
		QueueDepth:  8,
		Workers:     1,
		MaxDim:      cfg.MaxDim,
		Logf:        cfg.Logf,
	})
	if err != nil {
		return err
	}
	if got := srv2.Stats().Recovered; got != 2 {
		return fmt.Errorf("restart: want 2 recovered campaigns, got %d", got)
	}
	rep.Recovered += 2
	for _, idReq := range []struct {
		id  string
		req *Request
	}{{cCamp.ID(), &rePre}, {dCamp.ID(), fresh}} {
		c2, ok := srv2.Get(idReq.id)
		if !ok {
			return fmt.Errorf("restart: campaign %s not recovered", idReq.id)
		}
		if st, err := c2.Wait(ctx); err != nil || st != StatusCompleted {
			return fmt.Errorf("recovered %s: status %s, %v", idReq.id, st, err)
		}
		if err := checkIdentity(idReq.req, c2.Records()); err != nil {
			return fmt.Errorf("recovered %s: %w", idReq.id, err)
		}
		rep.Identity++
		rep.Runs += len(c2.Records())
		rep.Completed++
	}
	// "re-pre" duplicates "pre", whose records the journal replay
	// warmed into the cache — its re-run must be pure cache hits.
	if hits, _ := srv2.Cache().Stats(); hits < int64(cCamp.Runs()) {
		return fmt.Errorf("restart: want >= %d warmed-cache hits, got %d", cCamp.Runs(), hits)
	}
	// And the journal-replayed records themselves match serial.
	a2, ok := srv2.Get(a.ID())
	if !ok || a2.status() != StatusCompleted {
		return fmt.Errorf("restart: completed campaign %s not served from journal", a.ID())
	}
	if err := checkIdentity(pre, a2.Records()); err != nil {
		return fmt.Errorf("journal-replayed %s: %w", a.ID(), err)
	}
	rep.Identity++

	hits, misses := srv2.Cache().Stats()
	rep.CacheHits += hits
	rep.CacheMisses += misses
	if err := srv2.Drain(dctx); err != nil {
		return fmt.Errorf("drain 2: %w", err)
	}
	return srv2.Close()
}

// loadPhaseCompaction runs the same campaign mix through two
// journalled servers — one compacting aggressively (auto-threshold
// 0.9 plus concurrent POST /compact over HTTP), one never compacting —
// then restarts both and proves the compacted journal replays to the
// same campaigns, byte-identical to the uncompacted twin and to the
// serial batch path, while keeping strictly fewer records on disk.
func loadPhaseCompaction(cfg LoadConfig, rep *LoadReport) error {
	jA := filepath.Join(cfg.Dir, "load-compact-a.jsonl")
	jB := filepath.Join(cfg.Dir, "load-compact-b.jsonl")
	mk := func(path string, threshold float64) (*Server, error) {
		return NewServer(Config{
			JournalPath:      path,
			CompactThreshold: threshold,
			MaxActive:        2,
			QueueDepth:       16,
			Workers:          1,
			MaxDim:           cfg.MaxDim,
			Logf:             cfg.Logf,
		})
	}
	srvA, err := mk(jA, 0.9) // compacts almost every time a completion lands
	if err != nil {
		return err
	}
	srvB, err := mk(jB, -1) // the uncompacted twin
	if err != nil {
		return err
	}
	base, shutdown, err := serveHTTP(srvA)
	if err != nil {
		return err
	}
	defer shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := &http.Client{}

	const n = 8
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = &Request{Name: fmt.Sprintf("cmp-%d", i), DimMin: 2, DimMax: 4,
			Protocols: []string{core.Visibility}, Seeds: []int64{int64(i + 1)}}
	}

	// The compacting twin takes the whole mix at once over HTTP, with
	// explicit compactions racing the submissions.
	idsA := make([]string, n)
	var wg sync.WaitGroup
	errc := make(chan error, n+3)
	for i, q := range reqs {
		wg.Add(1)
		go func(i int, q *Request) {
			defer wg.Done()
			id, code, err := postCampaign(client, base, q)
			if err != nil || code != http.StatusAccepted {
				errc <- fmt.Errorf("submitting %s: HTTP %d, %v", q.Name, code, err)
				return
			}
			idsA[i] = id
			status, runs, err := streamCampaign(client, base, id)
			if err != nil || status != StatusCompleted {
				errc <- fmt.Errorf("%s: status %s, %v", q.Name, status, err)
				return
			}
			rep.addStreamRuns(runs)
		}(i, q)
	}
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			resp, err := client.Post(base+"/compact", "", nil)
			if err != nil {
				errc <- fmt.Errorf("POST /compact #%d: %w", k, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("POST /compact #%d: HTTP %d", k, resp.StatusCode)
				return
			}
			var cr CompactResult
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				errc <- fmt.Errorf("POST /compact #%d: decoding result: %w", k, err)
			}
		}(k)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}
	rep.Submitted += n
	rep.Completed += n

	// The uncompacted twin takes the identical mix.
	campB := make([]*Campaign, n)
	for i, q := range reqs {
		c, err := srvB.Submit(q)
		if err != nil {
			return fmt.Errorf("twin submitting %s: %w", q.Name, err)
		}
		campB[i] = c
	}
	for i, c := range campB {
		if st, err := c.Wait(ctx); err != nil || st != StatusCompleted {
			return fmt.Errorf("twin %s: status %s, %v", reqs[i].Name, st, err)
		}
	}
	rep.Submitted += n
	rep.Completed += n

	stA := srvA.Stats()
	if stA.Journal == nil || stA.Journal.Compactions == 0 {
		return fmt.Errorf("compacting twin never compacted: %+v", stA.Journal)
	}
	rep.Compactions += stA.Journal.Compactions

	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	for name, s := range map[string]*Server{"A": srvA, "B": srvB} {
		if err := s.Drain(dctx); err != nil {
			return fmt.Errorf("drain %s: %w", name, err)
		}
		if err := s.Close(); err != nil {
			return fmt.Errorf("close %s: %w", name, err)
		}
	}

	// On disk, compaction must have actually saved records.
	recA, err := countJournalRecords(jA)
	if err != nil {
		return err
	}
	recB, err := countJournalRecords(jB)
	if err != nil {
		return err
	}
	if recA >= recB {
		return fmt.Errorf("compacted journal holds %d records, uncompacted twin %d", recA, recB)
	}
	rep.CompactSaved += recB - recA

	// Restart both and compare what they serve, campaign by campaign.
	srvA2, err := mk(jA, -1)
	if err != nil {
		return fmt.Errorf("reopening compacted journal: %w", err)
	}
	srvB2, err := mk(jB, -1)
	if err != nil {
		return fmt.Errorf("reopening uncompacted journal: %w", err)
	}
	if got := srvA2.Stats().Recovered; got != 0 {
		return fmt.Errorf("compacted journal resurrected %d campaigns as unfinished", got)
	}
	for i := range reqs {
		a2, ok := srvA2.Get(idsA[i])
		if !ok || a2.status() != StatusCompleted {
			return fmt.Errorf("%s not served completed from the compacted journal", reqs[i].Name)
		}
		b2, ok := srvB2.Get(campB[i].ID())
		if !ok || b2.status() != StatusCompleted {
			return fmt.Errorf("%s not served completed from the uncompacted journal", reqs[i].Name)
		}
		aj, _ := json.Marshal(a2.Records())
		bj, _ := json.Marshal(b2.Records())
		if !bytes.Equal(aj, bj) {
			return fmt.Errorf("%s diverges across the twins:\ncompacted:   %s\nuncompacted: %s", reqs[i].Name, aj, bj)
		}
		if err := checkIdentity(reqs[i], a2.Records()); err != nil {
			return fmt.Errorf("%s from compacted journal: %w", reqs[i].Name, err)
		}
		rep.Identity++
		rep.Runs += len(a2.Records())
	}
	for name, s := range map[string]*Server{"A2": srvA2, "B2": srvB2} {
		if err := s.Drain(dctx); err != nil {
			return fmt.Errorf("drain %s: %w", name, err)
		}
		if err := s.Close(); err != nil {
			return fmt.Errorf("close %s: %w", name, err)
		}
	}
	return nil
}

func countJournalRecords(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	entries, skipped, err := ReadEntries(f)
	if err != nil {
		return 0, err
	}
	if skipped != 0 {
		return 0, fmt.Errorf("journal %s: %d torn records after clean shutdown", path, skipped)
	}
	return len(entries), nil
}

// loadPhaseEviction drives campaigns much larger than the cache budget
// through bounded caches — entry-bounded first, then byte-bounded —
// and checks that eviction never bends correctness: a verbatim
// duplicate campaign re-simulates whatever was evicted and still lands
// byte-identical to the serial batch path.
func loadPhaseEviction(cfg LoadConfig, rep *LoadReport) error {
	const budget = 6
	srv, err := NewServer(Config{
		MaxActive:       2,
		QueueDepth:      8,
		Workers:         1,
		MaxDim:          cfg.MaxDim,
		CacheMaxEntries: budget,
		Logf:            cfg.Logf,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	big := &Request{Name: "evict", DimMin: 2, DimMax: cfg.MaxDim,
		Protocols: []string{core.Visibility, core.Cloning}, Seeds: []int64{11, 12}}
	first, err := srv.Submit(big)
	if err != nil {
		return err
	}
	if st, err := first.Wait(ctx); err != nil || st != StatusCompleted {
		return fmt.Errorf("evict: status %s, %v", st, err)
	}
	dup := *big
	dup.Name = "evict-again"
	second, err := srv.Submit(&dup)
	if err != nil {
		return err
	}
	if st, err := second.Wait(ctx); err != nil || st != StatusCompleted {
		return fmt.Errorf("evict-again: status %s, %v", st, err)
	}
	rep.Submitted += 2
	rep.Completed += 2
	for _, c := range []*Campaign{first, second} {
		if err := checkIdentity(big, c.Records()); err != nil {
			return fmt.Errorf("%s under eviction: %w", c.req.Name, err)
		}
		rep.Identity++
		rep.Runs += len(c.Records())
	}
	if got := srv.Cache().Len(); got > budget {
		return fmt.Errorf("cache holds %d entries past its budget of %d", got, budget)
	}
	ev := srv.Cache().Evictions()
	if ev == 0 {
		return fmt.Errorf("%d-run campaigns against a %d-entry cache never evicted", first.Runs(), budget)
	}
	rep.Evicted += ev
	hits, misses := srv.Cache().Stats()
	rep.CacheHits += hits
	rep.CacheMisses += misses
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}

	// Byte-budget variant: a 1 KiB cache against a multi-run sweep.
	srvB, err := NewServer(Config{
		MaxActive:     1,
		QueueDepth:    8,
		Workers:       1,
		MaxDim:        cfg.MaxDim,
		CacheMaxBytes: 1 << 10,
		Logf:          cfg.Logf,
	})
	if err != nil {
		return err
	}
	small := &Request{Name: "evict-bytes", DimMin: 2, DimMax: cfg.MaxDim,
		Protocols: []string{core.Visibility}, Seeds: []int64{13}}
	c, err := srvB.Submit(small)
	if err != nil {
		return err
	}
	if st, err := c.Wait(ctx); err != nil || st != StatusCompleted {
		return fmt.Errorf("evict-bytes: status %s, %v", st, err)
	}
	if err := checkIdentity(small, c.Records()); err != nil {
		return fmt.Errorf("evict-bytes: %w", err)
	}
	rep.Submitted++
	rep.Completed++
	rep.Identity++
	rep.Runs += len(c.Records())
	if ev := srvB.Cache().Evictions(); ev == 0 {
		return fmt.Errorf("byte-bounded cache never evicted at %d resident bytes", srvB.Cache().Bytes())
	} else {
		rep.Evicted += ev
	}
	if err := srvB.Drain(dctx); err != nil {
		return fmt.Errorf("drain bytes: %w", err)
	}
	return srvB.Close()
}

// --- harness plumbing ---

var streamRunsMu sync.Mutex

func (r *LoadReport) addStreamRuns(n int) {
	streamRunsMu.Lock()
	r.StreamRuns += n
	streamRunsMu.Unlock()
}

// serveHTTP serves s.Handler() on an ephemeral localhost port.
func serveHTTP(s *Server) (base string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("loadtest: listen: %w", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}, nil
}

func postCampaign(client *http.Client, base string, q *Request) (id string, code int, err error) {
	body, err := json.Marshal(q)
	if err != nil {
		return "", 0, err
	}
	resp, err := client.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode, nil
	}
	var sn Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		return "", resp.StatusCode, err
	}
	return sn.ID, resp.StatusCode, nil
}

// streamCampaign consumes one campaign's JSONL progress stream to its
// terminal event, returning the final status and run-event count.
func streamCampaign(client *http.Client, base, id string) (status string, runs int, err error) {
	resp, err := client.Get(base + "/campaigns/" + id + "/stream")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("stream: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return "", runs, fmt.Errorf("stream: bad event line: %w", err)
		}
		switch e.Type {
		case "run":
			runs++
		case "done":
			return e.Status, runs, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", runs, err
	}
	return "", runs, fmt.Errorf("stream ended without a done event")
}

// checkIdentity asserts a completed campaign's records are byte-
// identical (as canonical JSON) to the serial batch path's.
func checkIdentity(q *Request, got []RunRecord) error {
	want, err := SerialRecords(q)
	if err != nil {
		return fmt.Errorf("serial reference: %w", err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		return err
	}
	wj, err := json.Marshal(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(gj, wj) {
		return fmt.Errorf("records diverge from the serial batch path:\nservice: %s\nserial:  %s", gj, wj)
	}
	return nil
}

func idOf(ids []string, reqs []*Request, name string) string {
	for i, q := range reqs {
		if q.Name == name {
			return ids[i]
		}
	}
	return ""
}
