package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hypersearch/internal/core"
	"hypersearch/internal/faults"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// newTestServer builds a server and tears it down with the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	})
	return s
}

func TestParseRequestRejectsUnknownFields(t *testing.T) {
	_, err := ParseRequest(strings.NewReader(`{"dim_min":2,"protocols":["visibility"],"dimmax":4}`))
	if err == nil || !strings.Contains(err.Error(), "dimmax") {
		t.Fatalf("want unknown-field error naming dimmax, got %v", err)
	}
}

func TestParseRequestBounded(t *testing.T) {
	// A body larger than MaxRequestBytes is cut off mid-stream and must
	// fail to decode rather than being silently truncated into a
	// different, valid request.
	huge := `{"dim_min":2,"protocols":["visibility"],"seeds":[` +
		strings.Repeat("1,", MaxRequestBytes/2) + `1]}`
	if _, err := ParseRequest(strings.NewReader(huge)); err == nil {
		t.Fatal("want decode error for oversized body, got nil")
	}
}

func TestValidateRejections(t *testing.T) {
	lim := Limits{MaxDim: 8, MaxRuns: 100}
	crash := &faults.Plan{Seed: 1, Faults: []faults.Fault{{Kind: faults.Crash, Target: "order:p0.e1", At: 1}}}
	link := &faults.Plan{Seed: 1, Faults: []faults.Fault{{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 1), At: 1}}}
	bigLink := &faults.Plan{Seed: 1, Faults: []faults.Fault{{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 128), At: 1}}}
	hostCrash := &faults.Plan{Seed: 1, Faults: []faults.Fault{{Kind: faults.HostCrash, Target: faults.LinkTarget(0, 1), At: 1}}}
	manySeeds := make([]int64, 20)
	for i := range manySeeds {
		manySeeds[i] = int64(i)
	}
	cases := []struct {
		name string
		req  Request
		want string // substring of the rejection
	}{
		{"bad engine", Request{DimMin: 2, Engine: "quantum", Protocols: []string{core.Visibility}}, "unknown engine"},
		{"dim too small", Request{DimMin: 0, Protocols: []string{core.Visibility}}, "dim_min"},
		{"empty range", Request{DimMin: 4, DimMax: 3, Protocols: []string{core.Visibility}}, "empty"},
		{"dim over limit", Request{DimMin: 2, DimMax: 9, Protocols: []string{core.Visibility}}, "limit"},
		{"no protocols", Request{DimMin: 2}, "no protocols"},
		{"unknown protocol", Request{DimMin: 2, Protocols: []string{"visibilty"}}, `did you mean "visibility"`},
		{"dup protocol", Request{DimMin: 2, Protocols: []string{core.Visibility, core.Visibility}}, "twice"},
		{"dup seed", Request{DimMin: 2, Protocols: []string{core.Visibility}, Seeds: []int64{3, 1, 3}}, "seed 3 requested twice"},
		{"clean from d=1", Request{DimMin: 1, Protocols: []string{core.Clean}}, "dim_min >= 2"},
		{"negative latency", Request{DimMin: 2, Protocols: []string{core.Visibility}, AdversarialLatency: -1}, "negative"},
		{"negative deadline", Request{DimMin: 2, Protocols: []string{core.Visibility}, DeadlineMS: -5}, "negative"},
		{"too many runs", Request{DimMin: 2, DimMax: 8, Protocols: []string{core.Visibility}, Seeds: manySeeds}, "runs"},
		{"crash plan", Request{DimMin: 2, Protocols: []string{core.Visibility}, Faults: crash}, "crash"},
		{"link plan on des", Request{DimMin: 2, Protocols: []string{core.Visibility}, Faults: link}, "network engine"},
		{"link target outside small cube", Request{DimMin: 2, DimMax: 3, Engine: EngineNetwork, Protocols: []string{core.Visibility}, Faults: bigLink}, "at d=2"},
		{"host crash vs clean net", Request{DimMin: 2, Engine: EngineNetwork, Protocols: []string{core.Clean}, Faults: hostCrash}, "clean"},
		{"network-only protocol", Request{DimMin: 2, Engine: EngineNetwork, Protocols: []string{core.Synchronous}}, "unknown protocol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.req
			q.Normalize()
			err := q.Validate(lim)
			if err == nil {
				t.Fatalf("want rejection containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want rejection containing %q, got %q", tc.want, err)
			}
		})
	}
}

func TestExpandCanonicalOrder(t *testing.T) {
	q := Request{DimMin: 2, DimMax: 3, Protocols: []string{core.Cloning, core.Visibility}, Seeds: []int64{7, 9}}
	q.Normalize()
	specs := q.Expand()
	var got []string
	for _, s := range specs {
		got = append(got, fmt.Sprintf("%d/%s/%d", s.Dim, s.Protocol, s.Seed))
	}
	want := []string{
		"2/cloning/7", "2/cloning/9", "2/visibility/7", "2/visibility/9",
		"3/cloning/7", "3/cloning/9", "3/visibility/7", "3/visibility/9",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("expansion order:\ngot  %v\nwant %v", got, want)
	}
}

func TestSubmitCompletesMatchingSerial(t *testing.T) {
	s := newTestServer(t, Config{MaxActive: 2, Workers: 1, QueueDepth: 8})
	req := &Request{Name: "basic", DimMin: 2, DimMax: 4,
		Protocols: []string{core.Visibility, core.Clean}, Seeds: []int64{1, 2}}
	c, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st, err := c.Wait(testCtx(t)); err != nil || st != StatusCompleted {
		t.Fatalf("Wait: %s, %v", st, err)
	}
	recs := c.Records()
	if len(recs) != c.Runs() {
		t.Fatalf("got %d records, want %d", len(recs), c.Runs())
	}
	want, err := SerialRecords(req)
	if err != nil {
		t.Fatalf("SerialRecords: %v", err)
	}
	gj, _ := json.Marshal(recs)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("service records diverge from serial batch path:\nservice: %s\nserial:  %s", gj, wj)
	}
}

// TestCacheHitByteIdentity is the acceptance test for the result
// cache: an identical resubmission is served from the cache (observed
// via the stream's Cached flags and the hit counter) and its records
// are byte-identical to both the first simulation and an independent
// serial re-simulation.
func TestCacheHitByteIdentity(t *testing.T) {
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 8})
	ctx := testCtx(t)
	req := &Request{Name: "one", DimMin: 2, DimMax: 5,
		Protocols: []string{core.Visibility, core.Cloning}, Seeds: []int64{3}}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st, _ := first.Wait(ctx); st != StatusCompleted {
		t.Fatalf("first: %s", st)
	}

	dup := *req
	dup.Name = "two"
	hits0, _ := s.Cache().Stats()
	second, err := s.Submit(&dup)
	if err != nil {
		t.Fatalf("Submit dup: %v", err)
	}
	if st, _ := second.Wait(ctx); st != StatusCompleted {
		t.Fatalf("second: %s", st)
	}
	hits1, _ := s.Cache().Stats()
	if got := hits1 - hits0; got != int64(second.Runs()) {
		t.Fatalf("want %d cache hits for the resubmission, got %d", second.Runs(), got)
	}
	cached := 0
	for i := 0; ; i++ {
		e, ok := second.next(ctx, i)
		if !ok || e.Type == "done" {
			break
		}
		if e.Type == "run" && e.Run != nil && e.Run.Cached {
			cached++
		}
	}
	if cached != second.Runs() {
		t.Fatalf("want every streamed run marked cached, got %d/%d", cached, second.Runs())
	}

	fj, _ := json.Marshal(first.Records())
	sj, _ := json.Marshal(second.Records())
	if !bytes.Equal(fj, sj) {
		t.Fatalf("cache hit is not byte-identical to the original simulation:\nfirst:  %s\nsecond: %s", fj, sj)
	}
	serial, err := SerialRecords(req)
	if err != nil {
		t.Fatalf("SerialRecords: %v", err)
	}
	wj, _ := json.Marshal(serial)
	if !bytes.Equal(sj, wj) {
		t.Fatalf("cache hit is not byte-identical to re-simulation:\ncached: %s\nserial: %s", sj, wj)
	}
}

// TestPanicIsolation proves a panicking run fails only its own
// campaign: the daemon keeps executing, and the executor whose pool
// entry was poisoned serves the next campaign correctly.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 8,
		BeforeRun: func(campaign string, spec RunSpec) {
			if campaign == "boom" && spec.Dim == 3 {
				panic("injected: poison the pool mid-campaign")
			}
		}})
	ctx := testCtx(t)
	boom, err := s.Submit(&Request{Name: "boom", DimMin: 2, DimMax: 4, Protocols: []string{core.Visibility}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := boom.Wait(ctx)
	if err != nil || st != StatusFailed {
		t.Fatalf("boom: want %s, got %s (%v)", StatusFailed, st, err)
	}
	if snap := boom.Snapshot(); !strings.Contains(snap.Error, "panicked") {
		t.Fatalf("boom error should name the panic, got %q", snap.Error)
	}

	// Same executor, same pools: the poisoned d=3 entry must have been
	// dropped, not reused, so this campaign still matches serial.
	after := &Request{Name: "after", DimMin: 2, DimMax: 4, Protocols: []string{core.Visibility}}
	c, err := s.Submit(after)
	if err != nil {
		t.Fatalf("Submit after: %v", err)
	}
	if st, _ := c.Wait(ctx); st != StatusCompleted {
		t.Fatalf("after: %s", st)
	}
	want, _ := SerialRecords(after)
	gj, _ := json.Marshal(c.Records())
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("post-panic records diverge from serial:\nservice: %s\nserial:  %s", gj, wj)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	g := newGate()
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 8,
		BeforeRun: func(campaign string, _ RunSpec) {
			if campaign == "slow" {
				g.hook()()
			}
		}})
	c, err := s.Submit(&Request{Name: "slow", DimMin: 2, DimMax: 6,
		Protocols: []string{core.Visibility}, DeadlineMS: 50})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-g.started
	time.Sleep(80 * time.Millisecond) // let the deadline lapse while run 0 is held
	close(g.release)
	st, err := c.Wait(testCtx(t))
	if err != nil || st != StatusDeadline {
		t.Fatalf("want %s, got %s (%v)", StatusDeadline, st, err)
	}
	if c.Records() != nil {
		t.Fatalf("deadline-exceeded campaign should publish no records")
	}
}

func TestCancelMidFlight(t *testing.T) {
	g := newGate()
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 8,
		BeforeRun: func(campaign string, _ RunSpec) {
			if campaign == "victim" {
				g.hook()()
			}
		}})
	c, err := s.Submit(&Request{Name: "victim", DimMin: 2, DimMax: 6, Protocols: []string{core.Visibility}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-g.started
	if _, err := s.Cancel(c.ID()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	close(g.release)
	st, err := c.Wait(testCtx(t))
	if err != nil || st != StatusCanceled {
		t.Fatalf("want %s, got %s (%v)", StatusCanceled, st, err)
	}
}

func TestCancelQueued(t *testing.T) {
	g := newGate()
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 8,
		BeforeRun: func(campaign string, _ RunSpec) {
			if campaign == "holder" {
				g.hook()()
			}
		}})
	holder, err := s.Submit(&Request{Name: "holder", DimMin: 2, Protocols: []string{core.Visibility}})
	if err != nil {
		t.Fatalf("Submit holder: %v", err)
	}
	<-g.started
	queued, err := s.Submit(&Request{Name: "queued", DimMin: 2, Protocols: []string{core.Visibility}})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	// The only executor is held, so "queued" cannot have started; its
	// cancellation must finalize immediately, without an executor.
	if _, err := s.Cancel(queued.ID()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st := queued.status(); st != StatusCanceled {
		t.Fatalf("queued campaign after cancel: want %s, got %s", StatusCanceled, st)
	}
	close(g.release)
	if st, _ := holder.Wait(testCtx(t)); st != StatusCompleted {
		t.Fatalf("holder: %s", st)
	}
}

func TestOverloadShedding(t *testing.T) {
	g := newGate()
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 1,
		BeforeRun: func(string, RunSpec) { g.hook()() }})
	small := func(n string) *Request { return &Request{Name: n, DimMin: 2, Protocols: []string{core.Visibility}} }
	if _, err := s.Submit(small("active")); err != nil {
		t.Fatalf("Submit active: %v", err)
	}
	<-g.started // the executor holds "active"; the queue is empty again
	if _, err := s.Submit(small("waiting")); err != nil {
		t.Fatalf("Submit waiting: %v", err)
	}
	if _, err := s.Submit(small("shed")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	close(g.release)
}

// TestGracefulDrain is the SIGTERM semantics test: in-flight campaigns
// complete, queued ones stay journaled as accepted (checkpointed for
// the next process), new submissions are rejected, and a restarted
// server re-runs the queued work to completion.
func TestGracefulDrain(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	g := newGate()
	s, err := NewServer(Config{JournalPath: journal, MaxActive: 1, Workers: 1, QueueDepth: 8, Logf: t.Logf,
		BeforeRun: func(campaign string, _ RunSpec) {
			if campaign == "inflight" {
				g.hook()()
			}
		}})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx := testCtx(t)
	inflight, err := s.Submit(&Request{Name: "inflight", DimMin: 2, DimMax: 3, Protocols: []string{core.Visibility}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	queued, err := s.Submit(&Request{Name: "checkpointed", DimMin: 2, DimMax: 4, Protocols: []string{core.Cloning}})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	<-g.started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()
	for !s.Stats().Draining {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(&Request{Name: "late", DimMin: 2, Protocols: []string{core.Visibility}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission while draining: want ErrDraining, got %v", err)
	}
	close(g.release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := inflight.status(); st != StatusCompleted {
		t.Fatalf("in-flight campaign after drain: want %s, got %s", StatusCompleted, st)
	}
	if st := queued.status(); st != StatusQueued {
		t.Fatalf("queued campaign after drain: want %s, got %s", StatusQueued, st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := newTestServer(t, Config{JournalPath: journal, MaxActive: 1, Workers: 1, QueueDepth: 8})
	if got := s2.Stats().Recovered; got != 1 {
		t.Fatalf("restart: want 1 recovered campaign, got %d", got)
	}
	c2, ok := s2.Get(queued.ID())
	if !ok {
		t.Fatalf("restart: campaign %s missing", queued.ID())
	}
	if st, err := c2.Wait(ctx); err != nil || st != StatusCompleted {
		t.Fatalf("recovered campaign: %s, %v", st, err)
	}
	want, _ := SerialRecords(queued.Request())
	gj, _ := json.Marshal(c2.Records())
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("recovered records diverge from serial:\nservice: %s\nserial:  %s", gj, wj)
	}
	// The in-flight campaign that completed before the drain must be
	// served from the journal, with its records, not re-run.
	a2, ok := s2.Get(inflight.ID())
	if !ok || a2.status() != StatusCompleted || len(a2.Records()) != inflight.Runs() {
		t.Fatalf("completed campaign not served from journal after restart")
	}
	// Recovery replays the per-run events, so a journal-served snapshot
	// reports the same done count a live one would.
	if snap := a2.Snapshot(); snap.Done != snap.Total || snap.Done != inflight.Runs() {
		t.Fatalf("restart: journal-served snapshot done=%d total=%d, want %d", snap.Done, snap.Total, inflight.Runs())
	}
}

func TestJournalTornTailSkippedAndTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	good := Entry{Type: EntryAccepted, ID: "c0", Req: &Request{DimMin: 2, Protocols: []string{core.Visibility}}}
	gb, _ := json.Marshal(good)
	torn := []byte(`{"type":"completed","id":"c0","status":"comp`) // crashed mid-append
	if err := os.WriteFile(path, append(append(gb, '\n'), torn...), 0o644); err != nil {
		t.Fatal(err)
	}
	j, entries, skipped, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(entries) != 1 || entries[0].ID != "c0" || entries[0].Type != EntryAccepted {
		t.Fatalf("want the 1 intact entry, got %+v", entries)
	}
	if skipped != 1 {
		t.Fatalf("want 1 skipped torn record, got %d", skipped)
	}
	// The torn bytes must be gone: the next append starts a clean line.
	fin := Entry{Type: EntryCompleted, ID: "c0", Status: StatusCanceled}
	if err := j.Append(fin); err != nil {
		t.Fatalf("Append after torn tail: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries2, skipped2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if skipped2 != 0 || len(entries2) != 2 || entries2[1].Status != StatusCanceled {
		t.Fatalf("after truncate+append want 2 clean entries, got %d (skipped %d): %+v", len(entries2), skipped2, entries2)
	}
}

func TestJournalCorruptMiddleStopsReplay(t *testing.T) {
	var buf bytes.Buffer
	for _, e := range []Entry{
		{Type: EntryAccepted, ID: "c0", Req: &Request{DimMin: 2, Protocols: []string{core.Visibility}}},
		{Type: EntryCompleted, ID: "c0", Status: StatusCompleted},
	} {
		b, _ := json.Marshal(e)
		buf.Write(append(b, '\n'))
	}
	buf.WriteString("NOT JSON AT ALL\n")
	b, _ := json.Marshal(Entry{Type: EntryAccepted, ID: "c1", Req: &Request{DimMin: 2, Protocols: []string{core.Visibility}}})
	buf.Write(append(b, '\n'))

	entries, skipped, err := ReadEntries(&buf)
	if err != nil {
		t.Fatalf("ReadEntries: %v", err)
	}
	// Replay stops at the corruption: the append-only contract makes
	// everything after it untrustworthy.
	if len(entries) != 2 || skipped != 2 {
		t.Fatalf("want 2 entries replayed and 2 skipped, got %d and %d", len(entries), skipped)
	}
}

func TestHTTPSurface(t *testing.T) {
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Bad JSON -> 400 with a JSON error body.
	resp, err := ts.Client().Post(ts.URL+"/campaigns", "application/json", strings.NewReader(`{"dim_min":`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("bad body: want 400, got %d", resp.StatusCode)
	}
	resp.Body.Close()

	id, code, err := postCampaign(ts.Client(), ts.URL,
		&Request{Name: "http", DimMin: 2, DimMax: 3, Protocols: []string{core.Visibility}})
	if err != nil || code != 202 {
		t.Fatalf("submit: HTTP %d, %v", code, err)
	}
	status, runs, err := streamCampaign(ts.Client(), ts.URL, id)
	if err != nil || status != StatusCompleted || runs != 2 {
		t.Fatalf("stream: status %s, %d runs, %v", status, runs, err)
	}

	resp, err = ts.Client().Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Status != StatusCompleted || len(snap.Runs) != 2 || snap.Done != 2 {
		t.Fatalf("snapshot: %+v", snap)
	}

	for _, probe := range []struct {
		path string
		want int
	}{
		{"/campaigns/nope", 404},
		{"/campaigns", 200},
		{"/healthz", 200},
		{"/statsz", 200},
	} {
		resp, err := ts.Client().Get(ts.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != probe.want {
			t.Fatalf("GET %s: want %d, got %d", probe.path, probe.want, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err = ts.Client().Post(ts.URL+"/campaigns/nope/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("cancel nope: want 404, got %d", resp.StatusCode)
	}
	resp.Body.Close()
}
