// Package serve is the sweep-as-a-service layer: a long-lived daemon
// (cmd/hqserved) that accepts concurrent campaign requests — a
// dimension range, a protocol set, seeds, and an optional fault plan —
// schedules their runs onto the repo's per-worker envpool/netarena
// fleet through internal/sched, and streams per-run progress as
// chunked JSONL.
//
// The robustness contract, built on the determinism contract of PRs
// 1-8 (every run is a pure function of (d, protocol, seed, plan)):
//
//   - Admission control: at most MaxActive campaigns execute at once
//     (bounded by runtime.NumCPU()), a bounded queue holds the rest,
//     and submissions beyond the queue are shed with 429 — overload
//     degrades into explicit rejection, never into an unbounded pile
//     of goroutines.
//   - Deadlines and cancellation: every campaign carries a context;
//     when it expires, runs not yet started are skipped and in-flight
//     runs finish cleanly (aborting a simulation mid-run would poison
//     its pooled environment — see sched.MapWCtx).
//   - Panic isolation: a panicking run surfaces as sched.*PanicError
//     and fails its own campaign; the worker's poisoned pool entry is
//     dropped (envpool/netarena never repool an incomplete run) and
//     replaced lazily, and the daemon keeps serving.
//   - Crash safety: accepted requests and completion records append to
//     an fsync'd JSONL journal; a restarted daemon re-runs interrupted
//     campaigns (determinism makes the re-run identical) and serves
//     completed ones from the journal without re-simulation. The
//     journal is bounded: compaction rewrites it as its snapshot
//     (completed campaigns collapsed to one record, interrupted ones
//     kept as accepted entries) via temp file + fsync + atomic rename,
//     automatically past a live-fraction threshold or on POST /compact,
//     and replay-after-compaction is equivalent by construction.
//   - Result cache: runs are memoized by (d, protocol, engine, seed,
//     latency, plan.CanonicalHash()); a hit is byte-identical to a
//     re-simulation, so repeated queries under multi-user traffic cost
//     one map lookup. The cache is a bounded LRU (entry-count and
//     approximate-byte budgets); an evicted key just re-simulates, so
//     eviction never changes what a request returns.
package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"hypersearch/internal/core"
	"hypersearch/internal/faults"
	"hypersearch/internal/suggest"
)

// Engine names a campaign may request.
const (
	EngineDES     = "des"     // deterministic discrete-event engine (default)
	EngineNetwork = "network" // message-passing goroutine hosts (netsim)
)

// MaxRequestBytes bounds one submission body so a hostile client
// cannot balloon the decoder.
const MaxRequestBytes = 1 << 20

// Request is one campaign submission: the cartesian product of a
// dimension range, a protocol set and a seed list, all under one
// engine and optional fault plan.
type Request struct {
	Name      string   `json:"name,omitempty"`
	DimMin    int      `json:"dim_min"`
	DimMax    int      `json:"dim_max,omitempty"` // default DimMin
	Protocols []string `json:"protocols"`
	Seeds     []int64  `json:"seeds,omitempty"`  // default [0]
	Engine    string   `json:"engine,omitempty"` // "des" (default) or "network"

	// AdversarialLatency > 0 runs the asynchronous adversary: per-move
	// latencies in [1, v] on the DES engine, per-delivery latencies up
	// to v microseconds on the network engine.
	AdversarialLatency int64 `json:"adversarial_latency,omitempty"`

	// Faults optionally injects a deterministic fault plan into every
	// run. DES campaigns take delay faults (stall, spike, starve,
	// lost-wakeup, kernel-lag); network campaigns take wire faults
	// (drop/dup/delay/host-crash/partition/cascade). Crash faults need
	// the goroutine runtime and are rejected at admission.
	Faults *faults.Plan `json:"faults,omitempty"`

	// DeadlineMS caps the campaign's wall-clock execution; 0 uses the
	// server default. Past the deadline, remaining runs are skipped
	// and the campaign completes as "deadline-exceeded".
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// RunSpec is one expanded run of a campaign.
type RunSpec struct {
	Dim                int
	Protocol           string
	Engine             string
	Seed               int64
	AdversarialLatency int64
	Plan               *faults.Plan
}

// Key is the result-cache identity of a run: determinism means two
// runs with equal keys produce byte-identical results, so a cache hit
// substitutes for a re-simulation exactly.
type Key struct {
	Engine   string
	Protocol string
	Dim      int
	Seed     int64
	Latency  int64
	PlanHash string
}

// Key returns the spec's result-cache identity.
func (r RunSpec) Key() Key {
	return Key{
		Engine:   r.Engine,
		Protocol: r.Protocol,
		Dim:      r.Dim,
		Seed:     r.Seed,
		Latency:  r.AdversarialLatency,
		PlanHash: r.Plan.CanonicalHash(),
	}
}

// desProtocols are the strategies served on the DES engine. The naive
// baselines are deliberately absent: the service exists for the
// paper's deterministic strategies, and every admitted run must be
// cacheable by its key.
var desProtocols = []string{core.Clean, core.Visibility, core.Cloning, core.Synchronous}

// networkProtocols are the protocols with a message-passing engine.
var networkProtocols = []string{core.Visibility, core.Clean, core.Cloning}

func protocolsFor(engine string) []string {
	if engine == EngineNetwork {
		return networkProtocols
	}
	return desProtocols
}

// ParseRequest decodes one campaign submission, rejecting unknown
// fields so typos fail loudly instead of silently defaulting.
// Validation is separate (Validate) so recovered journal entries can
// re-validate against the server limits of the day.
func ParseRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decoding campaign request: %w", err)
	}
	return &req, nil
}

// Limits are the admission bounds a request is validated against.
type Limits struct {
	MaxDim  int // largest admissible dimension
	MaxRuns int // largest admissible expansion
}

// Normalize fills the request's defaults in place: DimMax from DimMin,
// the [0] seed list, the DES engine.
func (q *Request) Normalize() {
	if q.DimMax == 0 {
		q.DimMax = q.DimMin
	}
	if len(q.Seeds) == 0 {
		q.Seeds = []int64{0}
	}
	if q.Engine == "" {
		q.Engine = EngineDES
	}
}

// Validate checks the normalized request against the admission rules
// and limits. Every rejection names what to fix; unknown protocols
// come back with the nearest real one.
func (q *Request) Validate(lim Limits) error {
	switch q.Engine {
	case EngineDES, EngineNetwork:
	default:
		return fmt.Errorf("unknown engine %q (want %q or %q)", q.Engine, EngineDES, EngineNetwork)
	}
	if q.DimMin < 1 {
		return fmt.Errorf("dim_min %d: need >= 1", q.DimMin)
	}
	if q.DimMax < q.DimMin {
		return fmt.Errorf("dimension range [%d,%d] is empty", q.DimMin, q.DimMax)
	}
	if q.DimMax > lim.MaxDim {
		return fmt.Errorf("dim_max %d exceeds the server's limit %d", q.DimMax, lim.MaxDim)
	}
	if len(q.Protocols) == 0 {
		return fmt.Errorf("no protocols requested (want a subset of %v)", protocolsFor(q.Engine))
	}
	known := protocolsFor(q.Engine)
	seen := map[string]bool{}
	for _, p := range q.Protocols {
		ok := false
		for _, k := range known {
			if p == k {
				ok = true
				break
			}
		}
		if !ok {
			if close := suggest.Nearest(p, known); close != "" {
				return fmt.Errorf("unknown protocol %q on engine %q — did you mean %q?", p, q.Engine, close)
			}
			return fmt.Errorf("unknown protocol %q on engine %q", p, q.Engine)
		}
		if seen[p] {
			return fmt.Errorf("protocol %q requested twice", p)
		}
		seen[p] = true
		if p == core.Clean && q.DimMin < 2 {
			return fmt.Errorf("protocol %q needs dim_min >= 2 (the coordinated schedule's orders exist from d=2)", p)
		}
	}
	seenSeed := map[int64]bool{}
	for _, sd := range q.Seeds {
		if seenSeed[sd] {
			// Same error shape as duplicate protocols: a duplicate seed
			// would inflate the run count against MaxRuns and emit
			// duplicate records.
			return fmt.Errorf("seed %d requested twice", sd)
		}
		seenSeed[sd] = true
	}
	if q.AdversarialLatency < 0 {
		return fmt.Errorf("adversarial_latency %d is negative", q.AdversarialLatency)
	}
	if q.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms %d is negative", q.DeadlineMS)
	}
	if n := q.runs(); n > lim.MaxRuns {
		return fmt.Errorf("campaign expands to %d runs, server limit is %d", n, lim.MaxRuns)
	}
	return q.validatePlan()
}

// validatePlan applies the per-engine fault-plan admission rules, the
// same checks the engines enforce at config time — rejected here they
// cost a 400, rejected there they'd cost a failed campaign.
func (q *Request) validatePlan() error {
	if q.Faults == nil {
		return nil
	}
	if err := q.Faults.Validate(); err != nil {
		return err
	}
	if q.Faults.RequiresRecovery() {
		return fmt.Errorf("plan %q carries crash faults, which need the crash-tolerant goroutine runtime — not served", q.Faults.Name)
	}
	switch q.Engine {
	case EngineDES:
		if q.Faults.HasLinkFaults() {
			return fmt.Errorf("plan %q carries link faults, which need the network engine", q.Faults.Name)
		}
	case EngineNetwork:
		// A link target valid on H_8 may name a host outside H_4, so
		// the plan must fit every dimension of the range.
		for d := q.DimMin; d <= q.DimMax; d++ {
			if err := q.Faults.ValidateForHosts(1 << d); err != nil {
				return fmt.Errorf("at d=%d: %w", d, err)
			}
		}
		if q.Faults.HasHostCrashFaults() {
			for _, p := range q.Protocols {
				if p == core.Clean {
					return fmt.Errorf("plan %q carries host-crash/cascade faults, which the clean network protocol rejects", q.Faults.Name)
				}
			}
		}
	}
	return nil
}

// runs is the expansion size of the normalized request.
func (q *Request) runs() int {
	return (q.DimMax - q.DimMin + 1) * len(q.Protocols) * len(q.Seeds)
}

// Expand lists the campaign's runs in canonical input order —
// dimension-major, then the protocols as requested, then seeds — the
// order results are reported in, independent of scheduling.
func (q *Request) Expand() []RunSpec {
	specs := make([]RunSpec, 0, q.runs())
	for d := q.DimMin; d <= q.DimMax; d++ {
		for _, p := range q.Protocols {
			for _, s := range q.Seeds {
				specs = append(specs, RunSpec{
					Dim:                d,
					Protocol:           p,
					Engine:             q.Engine,
					Seed:               s,
					AdversarialLatency: q.AdversarialLatency,
					Plan:               q.Faults,
				})
			}
		}
	}
	return specs
}
