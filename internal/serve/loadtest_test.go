package serve

import "testing"

// TestLoadHarness is the tentpole acceptance run: the full five-phase
// load test — >=9 concurrent mixed campaigns over live HTTP streams,
// mid-flight cancellations, an injected panic, queue-overflow shedding,
// a graceful drain with queued work, a restart that resumes it,
// compaction under load against an uncompacted twin, and bounded-cache
// eviction — under the race detector at d <= 8.
func TestLoadHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness skipped in -short")
	}
	rep, err := RunLoadTest(LoadConfig{Dir: t.TempDir(), MaxDim: 8, Logf: t.Logf})
	if err != nil {
		t.Fatalf("load test: %v\nreport so far: %v", err, rep)
	}
	t.Logf("load test report: %v", rep)
	for name, got := range map[string]int{
		"submitted":  rep.Submitted,
		"shed":       rep.Shed,
		"drain503":   rep.DrainReject,
		"completed":  rep.Completed,
		"canceled":   rep.Canceled,
		"failed":     rep.Failed,
		"recovered":  rep.Recovered,
		"identity":   rep.Identity,
		"streamRuns": rep.StreamRuns,
	} {
		if got <= 0 {
			t.Errorf("report.%s = %d, want > 0", name, got)
		}
	}
	if rep.Submitted < 8 {
		t.Errorf("want >= 8 concurrent campaigns submitted, got %d", rep.Submitted)
	}
	if rep.CacheHits <= 0 {
		t.Errorf("want cache hits under mixed load, got %d", rep.CacheHits)
	}
	if rep.Compactions <= 0 {
		t.Errorf("want journal compactions under load, got %d", rep.Compactions)
	}
	if rep.CompactSaved <= 0 {
		t.Errorf("want the compacted journal to hold fewer records than its twin, saved %d", rep.CompactSaved)
	}
	if rep.Evicted <= 0 {
		t.Errorf("want cache evictions under load, got %d", rep.Evicted)
	}
}
