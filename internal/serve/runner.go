package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"hypersearch/internal/core"
	"hypersearch/internal/envpool"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netarena"
	"hypersearch/internal/netsim"
	"hypersearch/internal/netsim/faultlink"
)

// RunRecord is the service's per-run result: the paper's cost summary
// plus, for network runs, the wire accounting. Records are what the
// journal persists, the cache memoizes, and the stream carries — and
// because runs are deterministic, a record is byte-identical whether
// it came from a fresh simulation, the cache, or a journal replay.
type RunRecord struct {
	Dim      int    `json:"d"`
	Protocol string `json:"protocol"`
	Engine   string `json:"engine"`
	Seed     int64  `json:"seed"`

	// Cached marks a record served from the result cache instead of a
	// fresh simulation. It is presentation metadata: it is stripped
	// before caching, journaling, and serial-equivalence comparison.
	Cached bool `json:"cached,omitempty"`

	Result metrics.Result `json:"result"`
	Net    *NetStats      `json:"net,omitempty"` // network engine only
}

// approxBytes estimates the record's resident size for the cache's
// byte budget as its canonical JSON length — the same bytes the
// journal and the stream pay for it.
func (r RunRecord) approxBytes() int64 {
	b, err := json.Marshal(r)
	if err != nil {
		return cacheEntryOverhead // unreachable: records marshal by construction
	}
	return int64(len(b))
}

// NetStats is the wire-level accounting of a network-engine run.
type NetStats struct {
	AgentMessages  int64             `json:"agent_messages"`
	BeaconMessages int64             `json:"beacon_messages"`
	BeaconBits     int64             `json:"beacon_bits"`
	Link           faultlink.Summary `json:"link"`
}

// fleet is one campaign executor's per-worker simulation state: a DES
// environment pool and a netsim arena per sched worker. An executor
// runs one campaign at a time and sched.MapW runs one task at a time
// per worker, so fleet state needs no locking — the same contract
// experiments.sourcePools relies on.
type fleet struct {
	pools  []*envpool.Pool
	arenas []*netarena.Arena
}

func newFleet(workers int) *fleet {
	f := &fleet{
		pools:  make([]*envpool.Pool, workers),
		arenas: make([]*netarena.Arena, workers),
	}
	for i := 0; i < workers; i++ {
		f.pools[i] = envpool.New()
		f.arenas[i] = netarena.New()
	}
	return f
}

// run executes one spec on worker w's pooled state. A panic inside the
// simulation propagates (sched converts it to a *PanicError and fails
// the campaign); the Release is then skipped, so the poisoned
// environment or fabric is dropped from the pool — never reused — and
// the next Acquire builds a fresh replacement.
func (f *fleet) run(w int, spec RunSpec) (RunRecord, error) {
	return executeSpec(f.pools[w], f.arenas[w], spec)
}

// executeSpec is the single simulation entry point shared by the
// service path and the serial reference path, so "byte-identical to
// the batch path" is a property of scheduling and caching, not of two
// divergent run implementations.
func executeSpec(pool *envpool.Pool, arena *netarena.Arena, spec RunSpec) (RunRecord, error) {
	rec := RunRecord{Dim: spec.Dim, Protocol: spec.Protocol, Engine: spec.Engine, Seed: spec.Seed}
	switch spec.Engine {
	case EngineDES, "":
		res, env, err := core.RunWith(core.Spec{
			Strategy:           spec.Protocol,
			Dim:                spec.Dim,
			Seed:               spec.Seed,
			AdversarialLatency: spec.AdversarialLatency,
			Faults:             spec.Plan,
		}, pool)
		if err != nil {
			return rec, err
		}
		pool.Release(env)
		rec.Engine = EngineDES
		rec.Result = res
	case EngineNetwork:
		cfg := netsim.Config{
			Seed:       spec.Seed,
			MaxLatency: time.Duration(spec.AdversarialLatency) * time.Microsecond,
			Faults:     spec.Plan,
		}
		var st netsim.Stats
		switch spec.Protocol {
		case core.Visibility:
			st = arena.Run(spec.Dim, cfg)
		case core.Clean:
			st = arena.RunClean(spec.Dim, cfg)
		case core.Cloning:
			st = arena.RunCloning(spec.Dim, cfg)
		default:
			return rec, fmt.Errorf("serve: protocol %q has no network engine", spec.Protocol)
		}
		rec.Result = st.Result
		rec.Net = &NetStats{
			AgentMessages:  st.AgentMessages,
			BeaconMessages: st.BeaconMessages,
			BeaconBits:     st.BeaconBits,
			Link:           st.Link,
		}
	default:
		return rec, fmt.Errorf("serve: unknown engine %q", spec.Engine)
	}
	return rec, nil
}

// SerialRecords executes the request's expansion one run at a time on
// fresh pools — the repo's classic batch path, no scheduler, no cache,
// no service. The load-test harness compares every campaign the
// service completes against this reference byte-for-byte; determinism
// demands equality.
func SerialRecords(req *Request) ([]RunRecord, error) {
	q := *req // normalize a copy; the caller's request stays as submitted
	q.Normalize()
	pool, arena := envpool.New(), netarena.New()
	specs := q.Expand()
	out := make([]RunRecord, 0, len(specs))
	for _, spec := range specs {
		rec, err := executeSpec(pool, arena, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
