package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"hypersearch/internal/core"
)

func cacheKey(i int) Key {
	return Key{Engine: EngineDES, Protocol: core.Visibility, Dim: 2, Seed: int64(i)}
}

func TestCacheEntryBudgetLRU(t *testing.T) {
	c := NewCache(3, 0)
	for i := 0; i < 10; i++ {
		c.Put(cacheKey(i), RunRecord{Dim: 2, Seed: int64(i)})
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len after 10 puts at budget 3: %d", got)
	}
	if got := c.Evictions(); got != 7 {
		t.Fatalf("want 7 evictions, got %d", got)
	}
	// Newest three survive; the rest re-simulate (miss).
	for i := 7; i < 10; i++ {
		if _, ok := c.Get(cacheKey(i)); !ok {
			t.Fatalf("recently inserted key %d evicted", i)
		}
	}
	if _, ok := c.Get(cacheKey(0)); ok {
		t.Fatal("LRU key 0 should have been evicted")
	}

	// Get promotes: touch 7, insert one more, and 8 (now LRU) goes.
	c.Get(cacheKey(7))
	c.Put(cacheKey(10), RunRecord{Dim: 2, Seed: 10})
	if _, ok := c.Get(cacheKey(7)); !ok {
		t.Fatal("promoted key 7 was evicted")
	}
	if _, ok := c.Get(cacheKey(8)); ok {
		t.Fatal("unpromoted LRU key 8 survived")
	}
}

func TestCacheByteBudget(t *testing.T) {
	one := RunRecord{Dim: 2, Protocol: core.Visibility, Engine: EngineDES}
	size := one.approxBytes() + cacheEntryOverhead
	c := NewCache(0, 3*size)
	for i := 0; i < 8; i++ {
		rec := one
		rec.Seed = int64(i)
		c.Put(cacheKey(i), rec)
	}
	if got := c.Bytes(); got > 3*size+size { // sizes vary a little with the seed digits
		t.Fatalf("resident bytes %d way past budget %d", got, 3*size)
	}
	if c.Evictions() == 0 {
		t.Fatal("byte budget never evicted")
	}
	// A single record above the whole budget still caches: the newest
	// entry is never evicted.
	big := NewCache(0, 1)
	big.Put(cacheKey(0), one)
	if big.Len() != 1 {
		t.Fatal("oversized record was not retained as the sole entry")
	}
}

// TestBoundedCacheStillCorrect is the eviction acceptance test: a
// server whose cache budget is far below the campaign size still
// answers every request correctly — evicted keys just re-simulate —
// with nonzero eviction counters and the budget held.
func TestBoundedCacheStillCorrect(t *testing.T) {
	const budget = 3
	s := newTestServer(t, Config{MaxActive: 1, Workers: 1, QueueDepth: 8, CacheMaxEntries: budget})
	ctx := testCtx(t)
	req := &Request{Name: "big", DimMin: 2, DimMax: 5,
		Protocols: []string{core.Visibility, core.Cloning}, Seeds: []int64{1, 2}}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := first.Wait(ctx); st != StatusCompleted {
		t.Fatalf("first: %s", st)
	}
	dup := *req
	dup.Name = "big-again"
	second, err := s.Submit(&dup)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := second.Wait(ctx); st != StatusCompleted {
		t.Fatalf("second: %s", st)
	}
	if got := s.Cache().Len(); got > budget {
		t.Fatalf("cache size %d exceeds budget %d", got, budget)
	}
	if s.Cache().Evictions() == 0 {
		t.Fatalf("16-run campaigns against a %d-entry cache never evicted", budget)
	}
	want, err := SerialRecords(req)
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want)
	for _, c := range []*Campaign{first, second} {
		gj, _ := json.Marshal(c.Records())
		if !bytes.Equal(gj, wj) {
			t.Fatalf("%s records diverge from serial under eviction:\nservice: %s\nserial:  %s", c.ID(), gj, wj)
		}
	}
	st := s.Stats()
	if st.CacheEvictions == 0 || st.CacheSize > budget || st.CacheMaxEntries != budget {
		t.Fatalf("stats don't reflect the bounded cache: %+v", st)
	}
}

// TestCacheConcurrentBounded hammers a tiny cache from parallel
// campaigns under the race detector's eye: correctness must not
// depend on eviction timing.
func TestCacheConcurrentBounded(t *testing.T) {
	s := newTestServer(t, Config{MaxActive: 4, Workers: 1, QueueDepth: 16, CacheMaxEntries: 2, CacheMaxBytes: 8 << 10})
	ctx := testCtx(t)
	var campaigns []*Campaign
	var reqs []*Request
	for i := 0; i < 4; i++ {
		req := &Request{Name: fmt.Sprintf("par-%d", i), DimMin: 2, DimMax: 4,
			Protocols: []string{core.Visibility}, Seeds: []int64{int64(i % 2)}}
		c, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		campaigns = append(campaigns, c)
		reqs = append(reqs, req)
	}
	for i, c := range campaigns {
		if st, _ := c.Wait(ctx); st != StatusCompleted {
			t.Fatalf("%s: %s", reqs[i].Name, st)
		}
		want, _ := SerialRecords(reqs[i])
		gj, _ := json.Marshal(c.Records())
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("%s diverges from serial", reqs[i].Name)
		}
	}
	if got := s.Cache().Len(); got > 2 {
		t.Fatalf("cache size %d exceeds entry budget 2", got)
	}
}
