// Package cloning implements the cloning variant of the visibility
// strategy (Section 5, "Observations on Cloning"): a single agent
// starts at the homebase, and agents clone themselves on demand, so
// nobody ever travels up from the root pool. Each broadcast-tree edge
// is traversed exactly once downward, for n-1 total moves, by a total
// of n/2 agents (one per broadcast-tree leaf).
//
// Local rule at node x of type T(k), on arrival of the single incoming
// agent and once every smaller neighbour is clean or guarded: clone
// k-1 times and send one agent down each broadcast-tree edge. Leaves
// terminate.
package cloning

import (
	"hypersearch/internal/board"
	"hypersearch/internal/des"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
)

// Name identifies the strategy in results and registries.
const Name = "cloning"

// Run executes the cloning variant on H_d.
func Run(d int, opts strategy.Options) (metrics.Result, *strategy.Env) {
	env := strategy.NewEnv(d, opts)
	return RunEnv(env), env
}

// RunEnv executes the cloning variant on an existing (fresh or reset)
// environment; pooled sweeps use it to reuse environments.
func RunEnv(env *strategy.Env) metrics.Result {
	d := env.H.Dim()
	at := env.NodeLists() // node -> the (single) agent standing there
	seed := env.Place(strategy.RoleCleaner)
	at[0] = append(at[0], seed)

	if d > 0 {
		for v := 0; v < env.H.Order(); v++ {
			spawnNode(env, at, v)
		}
	}
	env.Sim.Run()

	for id := 0; id < env.B.Agents(); id++ {
		if _, active := env.B.Position(id); active {
			env.Terminate(id)
		}
	}
	return env.Result(Name)
}

func spawnNode(env *strategy.Env, at [][]int, v int) {
	env.Sim.Spawn("node", func(p *des.Process) {
		env.AwaitNode(p, v, func() bool {
			if len(at[v]) == 0 {
				return false
			}
			ready := true
			env.H.VisitSmallerNeighbours(v, func(w int) bool {
				if env.B.StateOf(w) == board.Contaminated {
					ready = false
					return false
				}
				return true
			})
			return ready
		})
		a := at[v][0]
		children := env.BT.Children(v)
		if len(children) == 0 {
			env.Terminate(a)
			return
		}
		// The incumbent continues to the first child; clones take the
		// rest. Cloning is local and instantaneous.
		movers := []int{a}
		for i := 1; i < len(children); i++ {
			movers = append(movers, env.Clone(a, v, strategy.RoleCleaner))
		}
		for i, child := range children {
			m, child := movers[i], child
			env.Sim.Spawn("mover", func(q *des.Process) {
				env.Move(q, m, child, strategy.RoleCleaner)
				at[child] = append(at[child], m)
				env.Sim.Fire(env.Signal(child))
			})
		}
	})
}
