package cloning

import (
	"testing"

	"hypersearch/internal/combin"
	"hypersearch/internal/strategy"
)

func TestCloningSmallDimensionsFullChecks(t *testing.T) {
	for d := 0; d <= 8; d++ {
		r, _ := Run(d, strategy.Options{Contiguity: strategy.CheckEveryMove})
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("d=%d: %s", d, r.String())
		}
		if r.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, r.Recontaminations)
		}
	}
}

func TestCloningMovesAreNMinus1(t *testing.T) {
	// Section 5: each broadcast-tree edge is traversed exactly once
	// downward: n-1 moves.
	for d := 1; d <= 10; d++ {
		r, _ := Run(d, strategy.Options{})
		if r.TotalMoves != combin.CloningMoves(d) {
			t.Errorf("d=%d: moves %d, want %d", d, r.TotalMoves, combin.CloningMoves(d))
		}
	}
}

func TestCloningAgentsAreNOver2(t *testing.T) {
	// One trajectory per broadcast-tree leaf: n/2 agents in total.
	for d := 1; d <= 10; d++ {
		r, _ := Run(d, strategy.Options{})
		if int64(r.TeamSize) != combin.VisibilityAgents(d) {
			t.Errorf("d=%d: agents %d, want %d", d, r.TeamSize, combin.VisibilityAgents(d))
		}
	}
}

func TestCloningTimeIsD(t *testing.T) {
	for d := 1; d <= 9; d++ {
		r, _ := Run(d, strategy.Options{})
		if r.Makespan != int64(d) {
			t.Errorf("d=%d: makespan %d", d, r.Makespan)
		}
	}
}

func TestCloningUnderAdversarialAsynchrony(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r, _ := Run(5, strategy.Options{
			Latency:    strategy.NewAdversarial(seed, 7),
			Contiguity: strategy.CheckEveryMove,
		})
		if !r.Ok() || r.TotalMoves != combin.CloningMoves(5) {
			t.Errorf("seed %d: %s", seed, r.String())
		}
	}
}

func TestCloningTraceReplays(t *testing.T) {
	r, env := Run(5, strategy.Options{Record: true})
	b, err := env.Log().Replay(env.H, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AllClean() || b.Moves() != r.TotalMoves || b.Agents() != r.TeamSize {
		t.Error("replay disagrees with live run")
	}
}
