package optimal

import (
	"testing"

	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
)

func pathGraph(n int) graph.Graph {
	g := graph.NewAdjacency(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycleGraph(n int) graph.Graph {
	g := graph.NewAdjacency(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestPathNeedsOneAgent(t *testing.T) {
	a := MinimalTeam(pathGraph(6), 0, 3, Limits{})
	if !a.Feasible || a.Team != 1 {
		t.Fatalf("answer = %+v", a)
	}
	if a.Moves != 5 {
		t.Errorf("minimal moves = %d, want 5", a.Moves)
	}
}

func TestPathFromMiddle(t *testing.T) {
	// Starting mid-path, one agent cannot hold both directions; two
	// can (one sweeps each side... actually one guards while the other
	// sweeps, then they swap roles through clean territory).
	a := MinimalTeam(pathGraph(5), 2, 3, Limits{})
	if !a.Feasible || a.Team != 2 {
		t.Fatalf("answer = %+v", a)
	}
}

func TestCycleNeedsTwoAgents(t *testing.T) {
	a := MinimalTeam(cycleGraph(6), 0, 3, Limits{})
	if !a.Feasible || a.Team != 2 {
		t.Fatalf("answer = %+v", a)
	}
}

func TestInfeasibleTeamReported(t *testing.T) {
	a := Search(cycleGraph(6), 0, 1, Limits{})
	if a.Feasible || a.Aborted {
		t.Fatalf("one agent on a cycle must be cleanly infeasible: %+v", a)
	}
}

func TestSingleNodeGraph(t *testing.T) {
	a := Search(graph.NewAdjacency(1), 0, 1, Limits{})
	if !a.Feasible || a.Moves != 0 {
		t.Fatalf("answer = %+v", a)
	}
}

func TestHypercubeH1H2H3(t *testing.T) {
	// Exact contiguous monotone search numbers of small hypercubes.
	// H_3 = 4 is a finding of this reproduction: the visibility
	// strategy's n/2 = 4 is optimal there, while CLEAN uses 5.
	cases := []struct {
		d    int
		want int
	}{
		{1, 1}, {2, 2}, {3, 4},
	}
	for _, c := range cases {
		h := hypercube.New(c.d)
		a := MinimalTeam(h, 0, 8, Limits{})
		if !a.Feasible {
			t.Fatalf("H_%d: %+v", c.d, a)
		}
		if a.Team != c.want {
			t.Errorf("H_%d minimal team = %d, want %d", c.d, a.Team, c.want)
		}
	}
}

func TestHypercubeH4ExactMinimum(t *testing.T) {
	// A finding of this reproduction, bearing on the paper's open
	// problem: the contiguous monotone search number of H_4 is exactly
	// 7 (19 moves suffice). CLEAN provisions 8 and the visibility
	// strategy n/2 = 8, so both are one agent above optimal at d = 4.
	h := hypercube.New(4)
	infeasible := Search(h, 0, 6, Limits{})
	if infeasible.Feasible || infeasible.Aborted {
		t.Fatalf("6 agents should be cleanly infeasible: %+v", infeasible)
	}
	a := Search(h, 0, 7, Limits{})
	if !a.Feasible || a.Aborted {
		t.Fatalf("7 agents should suffice: %+v", a)
	}
	if a.Moves != 19 {
		t.Errorf("minimal moves with 7 agents = %d, want 19", a.Moves)
	}
}

func TestParetoFrontier(t *testing.T) {
	h := hypercube.New(3)
	front := Pareto(h, 0, 6, Limits{})
	if len(front) != 6 {
		t.Fatalf("%d rows", len(front))
	}
	// Infeasible up to team 3, feasible from 4 on, with non-increasing
	// minimal moves as the team grows.
	for i, a := range front {
		team := i + 1
		if a.Team != team {
			t.Fatalf("row %d has team %d", i, a.Team)
		}
		if team < 4 && a.Feasible {
			t.Errorf("team %d should be infeasible", team)
		}
		if team >= 4 && !a.Feasible {
			t.Errorf("team %d should be feasible", team)
		}
	}
	for i := 4; i < len(front); i++ {
		if front[i].Moves > front[i-1].Moves {
			t.Errorf("minimal moves increased: team %d needs %d, team %d needed %d",
				i+1, front[i].Moves, i, front[i-1].Moves)
		}
	}
}

func TestStateCapAborts(t *testing.T) {
	h := hypercube.New(3)
	a := Search(h, 0, 3, Limits{MaxStates: 10})
	if !a.Aborted {
		t.Errorf("tiny cap did not abort: %+v", a)
	}
}

func TestRejectsOversizedGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized graph accepted")
		}
	}()
	Search(graph.NewAdjacency(27), 0, 1, Limits{})
}

func TestRejectsZeroTeam(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero team accepted")
		}
	}()
	Search(pathGraph(3), 0, 0, Limits{})
}

func TestMonotonePruningKeepsContiguity(t *testing.T) {
	// Every explored state's decontaminated set stays connected by
	// construction (growth is always adjacent to an agent). Verify on
	// a run by re-deriving: minimal solutions on a star.
	g := graph.NewAdjacency(5)
	for v := 1; v <= 4; v++ {
		g.AddEdge(0, v)
	}
	a := MinimalTeam(g, 0, 4, Limits{})
	if !a.Feasible || a.Team != 2 {
		t.Fatalf("star answer = %+v", a)
	}
}
