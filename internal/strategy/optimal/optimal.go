// Package optimal finds the exact minimal team for contiguous,
// monotone node search on small graphs by exhaustive search over game
// states — the paper leaves the hypercube lower bound open
// (Section 5), and experiment X2 probes it on H_1..H_4.
//
// A state is (decontaminated set, multiset of agent positions). All
// agents start on the homebase. A transition moves one agent along an
// edge; the destination joins the decontaminated set; the contamination
// closure then floods every unguarded decontaminated node reachable
// from a contaminated one. Monotone search means the decontaminated
// set never shrinks, so transitions that flood anything are pruned;
// the decontaminated set then only grows, which keeps the reachable
// state space finite and layered.
//
// Because agents are indistinguishable, positions are canonicalized as
// a sorted multiset. The search is breadth-first, so the first goal
// state found also carries the minimal move count for that team size.
package optimal

import (
	"fmt"
	"sort"

	"hypersearch/internal/graph"
)

// Limits guards the exhaustive search against state-space blowups.
type Limits struct {
	MaxStates int // abort after this many distinct states (0 = 4M)
}

// Answer is the outcome for one team size.
type Answer struct {
	Team     int
	Feasible bool
	Moves    int  // minimal moves when feasible
	Aborted  bool // hit the state cap before deciding
	States   int  // states explored
}

// node count above which packing into a uint64 key would overflow.
const maxOrder = 26

// MinimalTeam searches team sizes 1, 2, ... up to maxTeam and returns
// the first feasible answer; if none is feasible the last answer is
// returned with Feasible false.
func MinimalTeam(g graph.Graph, home, maxTeam int, lim Limits) Answer {
	var last Answer
	for team := 1; team <= maxTeam; team++ {
		last = Search(g, home, team, lim)
		if last.Feasible {
			return last
		}
	}
	return last
}

// Pareto sweeps team sizes from the minimum feasible one up to maxTeam
// and returns the minimal move count at each, exposing the
// traffic-versus-team trade-off the paper's cost model cares about.
// Infeasible team sizes below the threshold are included with
// Feasible=false.
func Pareto(g graph.Graph, home, maxTeam int, lim Limits) []Answer {
	out := make([]Answer, 0, maxTeam)
	for team := 1; team <= maxTeam; team++ {
		out = append(out, Search(g, home, team, lim))
	}
	return out
}

// Search decides whether `team` agents suffice for contiguous monotone
// search of g from home, and if so the minimal number of moves.
func Search(g graph.Graph, home, team int, lim Limits) Answer {
	n := g.Order()
	if n > maxOrder {
		panic(fmt.Sprintf("optimal: graph order %d exceeds exhaustive-search limit %d", n, maxOrder))
	}
	if team < 1 {
		panic("optimal: team must be >= 1")
	}
	cap := lim.MaxStates
	if cap == 0 {
		cap = 4 << 20
	}

	full := uint32(1)<<n - 1
	start := state{mask: 1 << home, agents: canonical(repeat(home, team))}
	if start.mask == full {
		return Answer{Team: team, Feasible: true, Moves: 0, States: 1}
	}

	type entry struct {
		s     state
		moves int
	}
	seen := map[uint64]bool{start.key(n): true}
	queue := []entry{{s: start}}
	explored := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range successors(g, cur.s) {
			k := next.key(n)
			if seen[k] {
				continue
			}
			if next.mask == full {
				return Answer{Team: team, Feasible: true, Moves: cur.moves + 1, States: explored}
			}
			seen[k] = true
			explored++
			if explored > cap {
				return Answer{Team: team, Aborted: true, States: explored}
			}
			queue = append(queue, entry{s: next, moves: cur.moves + 1})
		}
	}
	return Answer{Team: team, Feasible: false, States: explored}
}

// state is (decontaminated mask, canonical agent positions).
type state struct {
	mask   uint32
	agents []int
}

// key packs the state into a uint64: the mask in the low n bits, then
// each agent position in 5-bit fields (n <= 26 and team <= (64-n)/5).
func (s state) key(n int) uint64 {
	k := uint64(s.mask)
	shift := uint(n)
	for _, a := range s.agents {
		if shift+5 > 64 {
			panic("optimal: state does not fit a uint64 key; reduce graph or team size")
		}
		k |= uint64(a) << shift
		shift += 5
	}
	return k
}

func repeat(v, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = v
	}
	return out
}

func canonical(agents []int) []int {
	sort.Ints(agents)
	return agents
}

// successors enumerates the monotone transitions from s: move one
// agent to a neighbour such that the contamination closure stays
// empty-handed (no decontaminated node floods).
func successors(g graph.Graph, s state) []state {
	var out []state
	tried := map[[2]int]bool{} // (position, destination) dedup across equal agents
	for i, a := range s.agents {
		for _, w := range g.Neighbours(a) {
			if tried[[2]int{a, w}] {
				continue
			}
			tried[[2]int{a, w}] = true
			next, ok := apply(g, s, i, w)
			if ok {
				out = append(out, next)
			}
		}
	}
	return out
}

// apply moves agent index i to w and recomputes the closure; it reports
// false if the move would recontaminate (non-monotone) — such moves
// are never useful for a monotone strategy.
func apply(g graph.Graph, s state, i, w int) (state, bool) {
	agents := append([]int(nil), s.agents...)
	from := agents[i]
	agents[i] = w
	mask := s.mask | 1<<uint(w)

	// Guard counts after the move.
	guarded := make([]bool, g.Order())
	for _, a := range agents {
		guarded[a] = true
	}
	// The only possible flood conduit is `from` if now unguarded.
	if !guarded[from] {
		for _, x := range g.Neighbours(from) {
			if mask&(1<<uint(x)) == 0 {
				return state{}, false // from would flood: non-monotone
			}
		}
	}
	return state{mask: mask, agents: canonical(agents)}, true
}
