package treesearch

import (
	"testing"

	"hypersearch/internal/graph"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/strategy/optimal"
)

func pathTree(n int) *graph.Tree {
	parent := make([]int, n)
	for i := 1; i < n; i++ {
		parent[i] = i - 1
	}
	return graph.MustTree(0, parent)
}

func starTree(leaves int) *graph.Tree {
	parent := make([]int, leaves+1)
	return graph.MustTree(0, parent)
}

// completeBinary returns a complete binary tree with `levels` levels.
func completeBinary(levels int) *graph.Tree {
	n := 1<<levels - 1
	parent := make([]int, n)
	for i := 1; i < n; i++ {
		parent[i] = (i - 1) / 2
	}
	return graph.MustTree(0, parent)
}

func TestCostPath(t *testing.T) {
	for n := 1; n <= 10; n++ {
		if got := Cost(pathTree(n)); got != 1 {
			t.Errorf("path of %d: cost %d", n, got)
		}
	}
}

func TestCostStar(t *testing.T) {
	if got := Cost(starTree(1)); got != 1 {
		t.Errorf("star-1 cost %d", got)
	}
	for leaves := 2; leaves <= 6; leaves++ {
		if got := Cost(starTree(leaves)); got != 2 {
			t.Errorf("star-%d cost %d, want 2", leaves, got)
		}
	}
}

func TestCostCompleteBinary(t *testing.T) {
	// Two equal children of cost c give cost c+1: height h tree costs h.
	for levels := 1; levels <= 6; levels++ {
		if got := Cost(completeBinary(levels)); got != levels {
			t.Errorf("binary %d levels: cost %d", levels, got)
		}
	}
}

func TestExecuteRealizesCostOnAssortedTrees(t *testing.T) {
	trees := map[string]*graph.Tree{
		"path":   pathTree(9),
		"star":   starTree(5),
		"binary": completeBinary(4),
		"bt-H5":  heapqueue.New(5).Graph(),
	}
	for name, tr := range trees {
		r, b, log := Execute(tr)
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("%s: %s", name, r.String())
		}
		if r.Recontaminations != 0 {
			t.Errorf("%s: %d recontaminations", name, r.Recontaminations)
		}
		if r.TeamSize != Cost(tr) {
			t.Errorf("%s: team %d, DP %d", name, r.TeamSize, Cost(tr))
		}
		if b.Moves() != r.TotalMoves {
			t.Errorf("%s: move accounting mismatch", name)
		}
		// The recorded schedule replays cleanly on the tree.
		rb, err := log.Replay(tr, tr.Root())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rb.AllClean() || rb.MonotoneViolations() != 0 {
			t.Errorf("%s: replay differs", name)
		}
	}
}

func TestDPMatchesBruteForceOnSmallTrees(t *testing.T) {
	trees := []*graph.Tree{
		pathTree(6), starTree(4), completeBinary(3), heapqueue.New(3).Graph(),
		heapqueue.New(4).Graph(),
	}
	for i, tr := range trees {
		want := optimal.MinimalTeam(tr, tr.Root(), 6, optimal.Limits{}).Team
		if got := Cost(tr); got != want {
			t.Errorf("tree %d: DP %d, brute force %d", i, got, want)
		}
	}
}

func TestBroadcastTreeCostsGrowSlowly(t *testing.T) {
	// The broadcast tree is searchable with O(d) agents — far fewer
	// than the hypercube's Theta(n/sqrt(log n)).
	prev := 0
	for d := 1; d <= 10; d++ {
		c := Cost(heapqueue.New(d).Graph())
		if c < prev {
			t.Errorf("d=%d: cost %d decreased", d, c)
		}
		if c > d {
			t.Errorf("d=%d: cost %d exceeds d", d, c)
		}
		prev = c
	}
}

// The X5 contrast: the tree schedule, replayed with the hypercube's
// chords present, breaks monotonicity — the chords are what the
// hypercube strategies must (and do) defend.
func TestTreeScheduleBreaksOnHypercube(t *testing.T) {
	const d = 4
	bt := heapqueue.New(d)
	_, _, log := Execute(bt.Graph())
	h := hypercube.New(d)
	b, err := log.Replay(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.MonotoneViolations() == 0 && b.AllClean() {
		t.Error("tree schedule unexpectedly survives the hypercube chords")
	}
}
