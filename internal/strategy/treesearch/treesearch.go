// Package treesearch implements optimal contiguous, monotone node
// search on trees — the setting of Barrière, Flocchini, Fraigniaud and
// Santoro cited as [1] by the paper, and the comparator for experiment
// X5: the broadcast tree T(d) can be searched with far fewer agents
// than the hypercube it spans, because the hypercube's non-tree edges
// leak contamination.
//
// The minimal team from a fixed homebase follows the classic rooted
// recursion: a leaf costs 1; a node with children subtree costs
// γ1 >= γ2 >= ... >= γk costs γ1 when k = 1 and max(γ1, γ2+1) when
// k >= 2 (clean the cheaper subtrees first while one agent guards the
// node, and let the guard itself descend into the most expensive
// subtree last).
//
// Execute produces an actual move schedule realizing that bound on a
// board over the tree, so the bound is verified constructively, and
// the schedule can be replayed against richer graphs (the hypercube)
// to count how badly the chords break it.
package treesearch

import (
	"sort"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
	"hypersearch/internal/metrics"
	"hypersearch/internal/trace"
)

// Name identifies the strategy in results.
const Name = "tree-search"

// Cost returns the minimal number of agents for contiguous monotone
// search of the rooted tree from its root.
func Cost(t *graph.Tree) int {
	return subtreeCost(t, t.Root())
}

func subtreeCost(t *graph.Tree, v int) int {
	children := t.Children(v)
	if len(children) == 0 {
		return 1
	}
	costs := make([]int, len(children))
	for i, c := range children {
		costs[i] = subtreeCost(t, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(costs)))
	if len(costs) == 1 {
		return costs[0]
	}
	if costs[1]+1 > costs[0] {
		return costs[1] + 1
	}
	return costs[0]
}

// Execute runs the optimal strategy on the tree and returns the
// result, the board, and the recorded trace. The agent team is exactly
// Cost(t); the execution asserts it suffices (the board panics if a
// move is illegal, and the run fails if capture or monotonicity fail).
func Execute(t *graph.Tree) (metrics.Result, *board.Board, *trace.Log) {
	b := board.New(t, t.Root())
	log := &trace.Log{}
	team := Cost(t)
	ex := &executor{t: t, b: b, log: log}
	for i := 0; i < team; i++ {
		id := b.Place(0)
		log.Append(trace.Event{Time: 0, Kind: trace.Place, Agent: id, To: t.Root(), Role: "cleaner"})
		ex.free = append(ex.free, id)
	}

	// Seed: one agent guards the root, then the recursion cleans it.
	first := ex.takeFree()
	ex.clean(t.Root(), first)

	// Retire everything still active.
	for id := 0; id < b.Agents(); id++ {
		if _, active := b.Position(id); active {
			b.Terminate(id, ex.clock)
			log.Append(trace.Event{Time: ex.clock, Kind: trace.Terminate, Agent: id})
		}
	}

	return metrics.Result{
		Strategy:         Name,
		Dim:              0,
		Nodes:            t.Order(),
		TeamSize:         team,
		PeakAway:         b.PeakAway(),
		AgentMoves:       b.Moves(),
		TotalMoves:       b.Moves(),
		Makespan:         ex.clock,
		Recontaminations: b.Recontaminations(),
		MonotoneOK:       b.MonotoneViolations() == 0,
		ContiguousOK:     b.Contiguous(),
		Captured:         b.AllClean(),
	}, b, log
}

// executor carries the sequential execution state. Agents positions
// are tracked on the board; free agents idle inside cleaned territory.
type executor struct {
	t     *graph.Tree
	b     *board.Board
	log   *trace.Log
	clock int64
	free  []int // agents idling at the root, available for summoning
}

func (ex *executor) takeFree() int {
	if len(ex.free) == 0 {
		panic("treesearch: team exhausted — the DP bound is wrong")
	}
	a := ex.free[len(ex.free)-1]
	ex.free = ex.free[:len(ex.free)-1]
	return a
}

// move advances the clock one step and moves agent a to node w.
func (ex *executor) move(a, w int) {
	ex.clock++
	from, _ := ex.b.Position(a)
	ex.b.Move(a, w, ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Move, Agent: a, From: from, To: w, Role: "cleaner"})
}

// walk moves agent a along the unique tree path to node w (through
// cleaned or guarded territory).
func (ex *executor) walk(a, dst int) {
	from, _ := ex.b.Position(a)
	path := graph.ShortestPath(ex.t, from, dst)
	for _, v := range path[1:] {
		ex.move(a, v)
	}
}

// release returns agent a to the root pool (walking back through clean
// territory).
func (ex *executor) release(a int) {
	ex.walk(a, ex.t.Root())
	ex.free = append(ex.free, a)
}

// clean decontaminates the subtree rooted at v; on entry, agent
// `guard` stands on v (just arrived). On exit the whole subtree is
// clean and every agent used has been released back to the pool.
func (ex *executor) clean(v, guard int) {
	children := append([]int(nil), ex.t.Children(v)...)
	if len(children) == 0 {
		ex.release(guard)
		return
	}
	// Order children by cost ascending; the guard descends into the
	// most expensive child last.
	sort.Slice(children, func(i, j int) bool {
		return subtreeCost(ex.t, children[i]) < subtreeCost(ex.t, children[j])
	})
	for _, c := range children[:len(children)-1] {
		worker := ex.takeFree()
		ex.walk(worker, v) // summon through clean territory
		ex.move(worker, c)
		ex.clean(c, worker)
	}
	last := children[len(children)-1]
	ex.move(guard, last)
	ex.clean(last, guard)
}
