package strategy

import (
	"testing"

	"hypersearch/internal/des"
	"hypersearch/internal/trace"
)

func TestUnitLatency(t *testing.T) {
	if (Unit{}).Draw(0, 1) != 1 {
		t.Error("unit latency wrong")
	}
}

func TestAdversarialLatencyRangeAndDeterminism(t *testing.T) {
	a := NewAdversarial(5, 10)
	b := NewAdversarial(5, 10)
	for i := 0; i < 1000; i++ {
		x := a.Draw(0, 1)
		if x < 1 || x > 10 {
			t.Fatalf("draw %d out of range", x)
		}
		if x != b.Draw(0, 1) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAdversarialRejectsBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("max < 1 accepted")
		}
	}()
	NewAdversarial(1, 0)
}

func TestEnvPlaceMoveWalk(t *testing.T) {
	e := NewEnv(3, Options{Record: true, Contiguity: CheckEveryMove})
	a := e.Place(RoleCleaner)
	e.Sim.Spawn("walker", func(p *des.Process) {
		e.Walk(p, a, e.H.ShortestPath(0, 7), RoleCleaner)
	})
	e.Sim.Run()
	if got, _ := e.B.Position(a); got != 7 {
		t.Errorf("agent at %d", got)
	}
	if e.RoleMoves(RoleCleaner) != 3 {
		t.Errorf("moves = %d", e.RoleMoves(RoleCleaner))
	}
	if e.Log().Len() != 4 { // 1 place + 3 moves
		t.Errorf("log len = %d", e.Log().Len())
	}
	if e.B.Now() != 3 {
		t.Errorf("makespan = %d", e.B.Now())
	}
}

func TestEnvWalkValidatesStart(t *testing.T) {
	e := NewEnv(2, Options{})
	a := e.Place(RoleCleaner)
	e.Sim.Spawn("bad", func(p *des.Process) {
		defer func() {
			if recover() == nil {
				t.Error("walk from wrong start accepted")
			}
		}()
		e.Walk(p, a, []int{1, 3}, RoleCleaner)
	})
	e.Sim.Run()
}

func TestMoveTogetherSimultaneous(t *testing.T) {
	e := NewEnv(2, Options{Record: true})
	a := e.Place(RoleSynchronizer)
	b := e.Place(RoleCleaner)
	e.Sim.Spawn("pair", func(p *des.Process) {
		e.MoveTogether(p, []int{a, b}, 1, []string{RoleSynchronizer, RoleCleaner})
	})
	e.Sim.Run()
	events := e.Log().Events()
	last := events[len(events)-1]
	prev := events[len(events)-2]
	if last.Time != prev.Time {
		t.Error("escorted moves not simultaneous")
	}
	if e.RoleMoves(RoleSynchronizer) != 1 || e.RoleMoves(RoleCleaner) != 1 {
		t.Error("role accounting wrong")
	}
}

func TestMoveTogetherValidation(t *testing.T) {
	e := NewEnv(2, Options{})
	a := e.Place(RoleCleaner)
	e.Sim.Spawn("bad", func(p *des.Process) {
		defer func() {
			if recover() == nil {
				t.Error("mismatched roles accepted")
			}
		}()
		e.MoveTogether(p, []int{a}, 1, nil)
	})
	e.Sim.Run()
}

func TestSignalsFireOnNeighbourChange(t *testing.T) {
	e := NewEnv(3, Options{})
	a := e.Place(RoleCleaner)
	woke := false
	e.Sim.Spawn("watcher", func(p *des.Process) {
		// Node 3 is a neighbour of 1; moving the agent to 1 must wake it.
		e.AwaitNode(p, 3, func() bool { return e.B.AgentsOn(1) > 0 })
		woke = true
	})
	e.Sim.Spawn("mover", func(p *des.Process) {
		e.Move(p, a, 1, RoleCleaner)
	})
	e.Sim.Run()
	if !woke {
		t.Error("signal did not propagate to neighbour")
	}
}

func TestResultAssembly(t *testing.T) {
	e := NewEnv(1, Options{Record: true})
	a := e.Place(RoleCleaner)
	e.Sim.Spawn("m", func(p *des.Process) { e.Move(p, a, 1, RoleCleaner) })
	e.Sim.Run()
	e.Terminate(a)
	r := e.Result("test")
	if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
		t.Errorf("result = %+v", r)
	}
	if r.TeamSize != 1 || r.TotalMoves != 1 || r.Makespan != 1 || r.Dim != 1 || r.Nodes != 2 {
		t.Errorf("result = %+v", r)
	}
	if r.SyncMoves != 0 || r.AgentMoves != 1 {
		t.Errorf("role split = %+v", r)
	}
}

func TestContiguityViolationDetected(t *testing.T) {
	// Two agents on H_3: one stays home, the other walks 0->1->3. When
	// it leaves node 1, node 1 floods (neighbour 5 is contaminated),
	// leaving the decontaminated set {0 guarded, 3 guarded}, and 0-3 is
	// not an edge: the every-move contiguity check must trip.
	e := NewEnv(3, Options{Contiguity: CheckEveryMove})
	e.Place(RoleCleaner) // rear guard stays home
	a := e.Place(RoleCleaner)
	e.Sim.Spawn("w", func(p *des.Process) {
		e.Walk(p, a, []int{0, 1, 3}, RoleCleaner)
	})
	e.Sim.Run()
	r := e.Result("bad")
	if r.ContiguousOK {
		t.Error("disconnected clean set not detected")
	}
	if r.Captured {
		t.Error("this walk cannot capture")
	}
}

// A Record:false -> true flip must hand back the trace retired by the
// last recorded run, pre-sized, instead of regrowing a fresh log
// (ROADMAP: trace-capacity reuse across option flips).
func TestResetReusesTraceCapacityAcrossRecordFlips(t *testing.T) {
	env := NewEnv(3, Options{Record: true})
	for i := 0; i < 512; i++ {
		env.Log().Append(trace.Event{Kind: trace.Move, Agent: 1, From: 0, To: 1})
	}
	warmed := env.Log().Cap()
	if warmed < 512 {
		t.Fatalf("log capacity %d after 512 appends", warmed)
	}

	env.Reset(Options{Record: false})
	if env.Log() != nil {
		t.Fatal("Record:false must expose no log")
	}

	env.Reset(Options{Record: true})
	if env.Log() == nil {
		t.Fatal("Record:true must expose a log again")
	}
	if got := env.Log().Cap(); got < warmed {
		t.Errorf("flip regrew the trace: capacity %d, want the warmed %d", got, warmed)
	}
	if env.Log().Len() != 0 {
		t.Errorf("reused log must start empty, has %d events", env.Log().Len())
	}

	// A straight Record:true -> Record:true reset also keeps capacity.
	env.Reset(Options{Record: true})
	if got := env.Log().Cap(); got < warmed {
		t.Errorf("plain reset regrew the trace: capacity %d, want %d", got, warmed)
	}
}
