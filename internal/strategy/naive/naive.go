// Package naive implements contamination-oblivious sweep baselines:
// traversals that visit every node but do not guard the frontier. They
// motivate the paper's problem — against an arbitrarily fast intruder,
// covering the graph is not capturing (experiment X4).
package naive

import (
	"hypersearch/internal/des"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
)

// DFSName and ConvoyName identify the baselines in results.
const (
	DFSName    = "naive-dfs"
	ConvoyName = "naive-convoy"
)

// RunDFS sweeps H_d with a single agent walking a depth-first
// traversal (each tree retreat walks back along tree edges). It visits
// every node, but the contamination closure reclaims territory behind
// it; the result records how badly.
func RunDFS(d int, opts strategy.Options) (metrics.Result, *strategy.Env) {
	env := strategy.NewEnv(d, opts)
	return RunDFSEnv(env), env
}

// RunDFSEnv executes the DFS baseline on an existing environment.
func RunDFSEnv(env *strategy.Env) metrics.Result {
	d := env.H.Dim()
	a := env.Place(strategy.RoleCleaner)
	if d > 0 {
		env.Sim.Spawn("dfs", func(p *des.Process) {
			walkDFS(env, p, a)
		})
	}
	env.Sim.Run()
	env.Terminate(a)
	return env.Result(DFSName)
}

// walkDFS performs an explicit-stack DFS from the homebase, moving the
// agent along each tree edge down and back up.
func walkDFS(env *strategy.Env, p *des.Process, a int) {
	seen := make([]bool, env.H.Order())
	var rec func(v int)
	rec = func(v int) {
		seen[v] = true
		for _, w := range env.H.Neighbours(v) {
			if !seen[w] {
				env.Move(p, a, w, strategy.RoleCleaner)
				rec(w)
				env.Move(p, a, v, strategy.RoleCleaner)
			}
		}
	}
	rec(0)
}

// RunConvoy sweeps with `team` agents marching in single file along the
// same DFS route, one step apart: more bodies, same obliviousness. It
// shows that throwing agents at an unguarded sweep does not help until
// the team is large enough to behave like a frontier.
func RunConvoy(d, team int, opts strategy.Options) (metrics.Result, *strategy.Env) {
	env := strategy.NewEnv(d, opts)
	return RunConvoyEnv(env, team), env
}

// RunConvoyEnv executes the convoy baseline on an existing environment.
func RunConvoyEnv(env *strategy.Env, team int) metrics.Result {
	d := env.H.Dim()
	if team < 1 {
		team = 1
	}
	agents := make([]int, team)
	for i := range agents {
		agents[i] = env.Place(strategy.RoleCleaner)
	}
	if d > 0 {
		walk := expandWalk(env)
		env.Sim.Spawn("convoy", func(p *des.Process) {
			// Agent i trails agent i-1 by one walk position, guarding
			// a moving window of `team` nodes behind the leader.
			for step := 0; step < len(walk)+team-1; step++ {
				for i := 0; i < team; i++ {
					idx := step - i
					if idx >= 0 && idx < len(walk) {
						env.Move(p, agents[i], walk[idx], strategy.RoleCleaner)
					}
				}
			}
		})
	}
	env.Sim.Run()
	for _, a := range agents {
		env.Terminate(a)
	}
	return env.Result(ConvoyName)
}

// expandWalk turns the DFS of the hypercube into a legal edge walk
// starting at the homebase (with backtrack steps), excluding the start
// node itself.
func expandWalk(env *strategy.Env) []int {
	seen := make([]bool, env.H.Order())
	var walk []int
	var rec func(v int)
	rec = func(v int) {
		seen[v] = true
		for _, w := range env.H.Neighbours(v) {
			if !seen[w] {
				walk = append(walk, w)
				rec(w)
				walk = append(walk, v)
			}
		}
	}
	rec(0)
	return walk
}
