package naive

import (
	"testing"

	"hypersearch/internal/strategy"
)

func TestDFSVisitsEverythingButFailsCapture(t *testing.T) {
	for d := 2; d <= 6; d++ {
		r, env := RunDFS(d, strategy.Options{})
		// Every node is visited: the DFS walk covers the graph.
		if r.TotalMoves < int64(env.H.Order()-1) {
			t.Errorf("d=%d: only %d moves", d, r.TotalMoves)
		}
		// Against the arbitrarily fast intruder, covering is not
		// capturing: contamination reclaims territory behind the agent.
		if r.Captured {
			t.Errorf("d=%d: a single oblivious DFS cannot capture", d)
		}
		if r.Recontaminations == 0 {
			t.Errorf("d=%d: expected recontaminations", d)
		}
	}
}

func TestDFSOnTrivialCubes(t *testing.T) {
	// H_0 is captured trivially; H_1 is a single edge: a sweep works.
	r, _ := RunDFS(0, strategy.Options{})
	if !r.Captured {
		t.Error("H_0 should be trivially captured")
	}
	r, _ = RunDFS(1, strategy.Options{})
	if !r.Captured {
		t.Error("H_1 is a path; even DFS captures it")
	}
}

func TestConvoyImprovesButSmallTeamsStillFail(t *testing.T) {
	const d = 4
	prev := int64(-1)
	for _, team := range []int{1, 2, 4} {
		r, _ := RunConvoy(d, team, strategy.Options{})
		if r.Captured {
			t.Errorf("team %d: oblivious convoy should not capture H_%d", team, d)
		}
		if prev >= 0 && r.Recontaminations > prev*2 {
			t.Errorf("team %d: recontaminations %d grew vs %d", team, r.Recontaminations, prev)
		}
		prev = r.Recontaminations
	}
}

func TestConvoyTeamFloor(t *testing.T) {
	r, _ := RunConvoy(2, 0, strategy.Options{})
	if r.TeamSize != 1 {
		t.Errorf("team floor = %d", r.TeamSize)
	}
}

func TestConvoyLargeTeamOnTinyCube(t *testing.T) {
	// With a window as large as the walk itself the convoy does
	// capture small cubes (it degenerates into a guarded sweep).
	r, _ := RunConvoy(2, 8, strategy.Options{})
	if !r.Captured {
		t.Errorf("full-window convoy on H_2 failed: %s", r.String())
	}
}
