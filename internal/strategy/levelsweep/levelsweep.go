// Package levelsweep is the generic ancestor of Algorithm CLEAN: a
// monotone contiguous search for an arbitrary graph that cleans BFS
// level by BFS level from the homebase, keeping two consecutive levels
// guarded while the frontier advances.
//
// Team size is max over l of |L_l| + |L_{l+1}| + 1 (the levels being
// swapped, plus a courier), which is within a factor two of the
// hypercube-tuned Algorithm CLEAN — experiment X8 measures the gap the
// paper's structure exploitation buys. On a path it degenerates to two
// agents, on a mesh to about two columns.
//
// The schedule is sequential and deterministic: before any level-l
// guard departs, every level-(l+1) node is guarded (couriers walk from
// the pool through cleaned territory); only then do level-l agents
// retire to the pool. Monotonicity is therefore structural, and the
// executor asserts it on the board.
package levelsweep

import (
	"fmt"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
	"hypersearch/internal/metrics"
	"hypersearch/internal/trace"
)

// Name identifies the strategy in results.
const Name = "level-sweep"

// Team returns the team size the sweep provisions for g from home.
func Team(g graph.Graph, home int) int {
	levels := graph.BFS(g, home)
	sizes := levelSizes(levels)
	best := 1
	for l := 0; l < len(sizes); l++ {
		next := 0
		if l+1 < len(sizes) {
			next = sizes[l+1]
		}
		if sizes[l]+next+1 > best {
			best = sizes[l] + next + 1
		}
	}
	return best
}

func levelSizes(levels []int) []int {
	max := -1
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	sizes := make([]int, max+1)
	for _, l := range levels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}

// Run executes the sweep on g from home, returning the result, the
// final board, and the trace. The graph must be connected.
func Run(g graph.Graph, home int) (metrics.Result, *board.Board, *trace.Log) {
	levels := graph.BFS(g, home)
	for v, l := range levels {
		if l < 0 {
			panic(fmt.Sprintf("levelsweep: vertex %d unreachable from home", v))
		}
	}
	ex := &executor{
		g:      g,
		home:   home,
		b:      board.New(g, home),
		log:    &trace.Log{},
		levels: levels,
		at:     make(map[int]int),
	}
	team := Team(g, home)
	for i := 0; i < team; i++ {
		id := ex.b.Place(0)
		ex.log.Append(trace.Event{Time: 0, Kind: trace.Place, Agent: id, To: home, Role: "cleaner"})
		ex.pool = append(ex.pool, id)
	}
	ex.sweep()
	for id := 0; id < ex.b.Agents(); id++ {
		if _, active := ex.b.Position(id); active {
			ex.b.Terminate(id, ex.clock)
			ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Terminate, Agent: id})
		}
	}
	return metrics.Result{
		Strategy:         Name,
		Nodes:            g.Order(),
		TeamSize:         team,
		PeakAway:         ex.b.PeakAway(),
		AgentMoves:       ex.b.Moves(),
		TotalMoves:       ex.b.Moves(),
		Makespan:         ex.clock,
		Recontaminations: ex.b.Recontaminations(),
		MonotoneOK:       ex.b.MonotoneViolations() == 0,
		ContiguousOK:     ex.b.Contiguous(),
		Captured:         ex.b.AllClean(),
	}, ex.b, ex.log
}

type executor struct {
	g      graph.Graph
	home   int
	b      *board.Board
	log    *trace.Log
	levels []int
	clock  int64
	pool   []int       // idle agents parked at home
	at     map[int]int // guarded node -> agent id
}

// sweep advances level by level: guard all of level l+1, then retire
// level l's guards to the pool.
func (ex *executor) sweep() {
	maxLevel := 0
	for _, l := range ex.levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	// Level 0 is the home, guarded by the parked pool itself; register
	// one explicit guard so retirement logic is uniform.
	guard := ex.take()
	ex.at[ex.home] = guard

	for l := 0; l < maxLevel; l++ {
		// Guard every level-(l+1) node. Couriers walk from home
		// through decontaminated territory to a guarded level-l
		// neighbour, then step across.
		for v := 0; v < ex.g.Order(); v++ {
			if ex.levels[v] != l+1 {
				continue
			}
			gate := ex.gateFor(v, l)
			a := ex.take()
			ex.walkThroughClean(a, gate)
			ex.move(a, v)
			ex.at[v] = a
		}
		// Retire level-l guards: their neighbours are now all guarded
		// or clean, so departure cannot recontaminate.
		for v := 0; v < ex.g.Order(); v++ {
			if ex.levels[v] != l {
				continue
			}
			a, ok := ex.at[v]
			if !ok {
				panic(fmt.Sprintf("levelsweep: level-%d node %d unguarded", l, v))
			}
			delete(ex.at, v)
			ex.walkThroughClean(a, ex.home)
			ex.pool = append(ex.pool, a)
		}
	}
}

// gateFor returns a guarded level-l neighbour of the level-(l+1) node v.
func (ex *executor) gateFor(v, l int) int {
	for _, w := range ex.g.Neighbours(v) {
		if ex.levels[w] == l {
			if _, ok := ex.at[w]; ok {
				return w
			}
		}
	}
	panic(fmt.Sprintf("levelsweep: no guarded gate into node %d", v))
}

func (ex *executor) take() int {
	if len(ex.pool) == 0 {
		panic("levelsweep: pool exhausted — Team() undercounts")
	}
	a := ex.pool[len(ex.pool)-1]
	ex.pool = ex.pool[:len(ex.pool)-1]
	return a
}

// walkThroughClean routes agent a to dst through decontaminated
// territory only (guards block nothing: transit is allowed through
// guarded nodes).
func (ex *executor) walkThroughClean(a, dst int) {
	from, _ := ex.b.Position(a)
	if from == dst {
		return
	}
	path := ex.cleanPath(from, dst)
	if path == nil {
		panic(fmt.Sprintf("levelsweep: no clean path %d -> %d", from, dst))
	}
	for _, v := range path[1:] {
		ex.move(a, v)
	}
}

// cleanPath is a BFS restricted to decontaminated nodes.
func (ex *executor) cleanPath(src, dst int) []int {
	parent := make([]int, ex.g.Order())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			var rev []int
			for x := dst; x != src; x = parent[x] {
				rev = append(rev, x)
			}
			rev = append(rev, src)
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		for _, w := range ex.g.Neighbours(v) {
			if parent[w] < 0 && ex.b.StateOf(w) != board.Contaminated {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}

func (ex *executor) move(a, to int) {
	ex.clock++
	from, _ := ex.b.Position(a)
	ex.b.Move(a, to, ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Move, Agent: a, From: from, To: to, Role: "cleaner"})
}
