package levelsweep

import (
	"testing"

	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/topologies"
)

func assertOK(t *testing.T, name string, g graph.Graph, home int) {
	t.Helper()
	r, b, log := Run(g, home)
	if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
		t.Errorf("%s: %s", name, r.String())
	}
	if r.Recontaminations != 0 {
		t.Errorf("%s: %d recontaminations", name, r.Recontaminations)
	}
	if r.TeamSize != Team(g, home) {
		t.Errorf("%s: team %d, Team() %d", name, r.TeamSize, Team(g, home))
	}
	if b.Moves() != r.TotalMoves {
		t.Errorf("%s: move accounting mismatch", name)
	}
	// Replay must agree.
	rb, err := log.Replay(g, home)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !rb.AllClean() || rb.MonotoneViolations() != 0 {
		t.Errorf("%s: replay differs", name)
	}
}

func TestSweepAcrossTopologies(t *testing.T) {
	cases := map[string]graph.Graph{
		"path-9":    topologies.Path(9),
		"ring-8":    topologies.Ring(8),
		"mesh-4x5":  topologies.Mesh(4, 5),
		"torus-3x4": topologies.Torus(3, 4),
		"K6":        topologies.Complete(6),
		"star-5":    topologies.Star(5),
		"H4":        hypercube.New(4),
		"H6":        hypercube.New(6),
		"CCC3":      topologies.CubeConnectedCycles(3),
		"CCC4":      topologies.CubeConnectedCycles(4),
		"BF3":       topologies.Butterfly(3),
	}
	for name, g := range cases {
		assertOK(t, name, g, 0)
	}
}

func TestSweepRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := topologies.RandomConnected(4+int(seed), int(seed)%7, seed)
		assertOK(t, "random", g, 0)
	}
}

func TestTeamFormula(t *testing.T) {
	// Path: levels are singletons -> team 3 (two levels + courier).
	if got := Team(topologies.Path(9), 0); got != 3 {
		t.Errorf("path team = %d", got)
	}
	// Ring of 8 from 0: levels 1,2,2,2,1 -> max pair 4 -> team 5.
	if got := Team(topologies.Ring(8), 0); got != 5 {
		t.Errorf("ring team = %d", got)
	}
	// Hypercube: max consecutive binomials + 1.
	for d := 2; d <= 8; d++ {
		want := int64(0)
		for l := 0; l < d; l++ {
			if s := combin.Binomial(d, l) + combin.Binomial(d, l+1); s > want {
				want = s
			}
		}
		if got := Team(hypercube.New(d), 0); int64(got) != want+1 {
			t.Errorf("H_%d team = %d, want %d", d, got, want+1)
		}
	}
}

func TestSweepCostVersusClean(t *testing.T) {
	// The generic sweep must stay within a small factor of the
	// hypercube-tuned CLEAN team (it guards two full levels instead of
	// one level plus tree-local extras).
	for d := 3; d <= 8; d++ {
		sweep := int64(Team(hypercube.New(d), 0))
		clean := combin.CleanTeamSize(d)
		if sweep < clean {
			t.Errorf("d=%d: generic sweep %d beats CLEAN %d — CLEAN analysis is wrong", d, sweep, clean)
		}
		if sweep > 3*clean {
			t.Errorf("d=%d: generic sweep %d more than 3x CLEAN %d", d, sweep, clean)
		}
	}
}

func TestSweepDisconnectedPanics(t *testing.T) {
	g := graph.NewAdjacency(4)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("disconnected graph accepted")
		}
	}()
	Run(g, 0)
}

func TestSweepNonZeroHome(t *testing.T) {
	assertOK(t, "mesh-center", topologies.Mesh(5, 5), 12)
}
