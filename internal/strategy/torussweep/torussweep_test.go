package torussweep

import (
	"testing"

	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/topologies"
)

func TestSweepVariousShapes(t *testing.T) {
	shapes := [][2]int{{3, 3}, {3, 5}, {5, 3}, {4, 4}, {4, 7}, {6, 6}}
	for _, s := range shapes {
		rows, cols := s[0], s[1]
		r, _, log := Run(rows, cols)
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("%dx%d: %s", rows, cols, r.String())
		}
		if r.Recontaminations != 0 {
			t.Errorf("%dx%d: %d recontaminations", rows, cols, r.Recontaminations)
		}
		if r.TeamSize != Team(rows, cols) {
			t.Errorf("%dx%d: team %d, want %d", rows, cols, r.TeamSize, Team(rows, cols))
		}
		rb, err := log.Replay(topologies.Torus(rows, cols), 0)
		if err != nil {
			t.Fatalf("%dx%d: %v", rows, cols, err)
		}
		if !rb.AllClean() || rb.MonotoneViolations() != 0 {
			t.Errorf("%dx%d: replay differs", rows, cols)
		}
	}
}

func TestSweepWithinOneOfOptimal(t *testing.T) {
	// On small square tori the exhaustive optimum is 2*min - 1; the
	// two-rank sweep pays exactly one extra agent for its simplicity.
	for _, s := range [][2]int{{3, 3}, {3, 4}, {4, 4}} {
		rows, cols := s[0], s[1]
		g := topologies.Torus(rows, cols)
		a := optimal.MinimalTeam(g, 0, 10, optimal.Limits{})
		if !a.Feasible {
			t.Fatalf("%dx%d: no optimum", rows, cols)
		}
		if Team(rows, cols) < a.Team {
			t.Fatalf("%dx%d: sweep %d beats proven optimum %d", rows, cols, Team(rows, cols), a.Team)
		}
		if Team(rows, cols) > a.Team+1 {
			t.Errorf("%dx%d: sweep %d more than optimum+1 (%d)", rows, cols, Team(rows, cols), a.Team)
		}
	}
}

func TestSweepRejectsSmallSides(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("2x5 torus accepted")
		}
	}()
	Run(2, 5)
}

func TestTransposeSymmetry(t *testing.T) {
	a, _, _ := Run(3, 6)
	b, _, _ := Run(6, 3)
	if a.TeamSize != b.TeamSize || a.TotalMoves != b.TotalMoves {
		t.Errorf("transpose differs: %s vs %s", a.String(), b.String())
	}
}
