// Package torussweep is the dedicated contiguous search for tori: the
// wraparound means a single advancing rank would be chased from
// behind, so one rank anchors a column while a second sweeps the long
// way around — team 2*min(rows, cols), against the exhaustive optimum
// of 2*min(rows, cols) - 1 on the small square tori (the anchor and
// sweeper can share one corner agent; the simple two-rank schedule
// spends that one extra agent for a far simpler invariant).
package torussweep

import (
	"fmt"

	"hypersearch/internal/board"
	"hypersearch/internal/metrics"
	"hypersearch/internal/topologies"
	"hypersearch/internal/trace"
)

// Name identifies the strategy in results.
const Name = "torus-sweep"

// Team returns the team the sweep provisions: 2*min(rows, cols).
func Team(rows, cols int) int {
	if rows < cols {
		return 2 * rows
	}
	return 2 * cols
}

// Run executes the sweep on a rows x cols torus (both >= 3), homebase
// cell (0, 0).
func Run(rows, cols int) (metrics.Result, *board.Board, *trace.Log) {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("torussweep: torus needs sides >= 3, got %dx%d", rows, cols))
	}
	realRows, realCols := rows, cols
	transposed := rows > cols
	if transposed {
		rows, cols = cols, rows
	}
	at := func(r, c int) int {
		r, c = (r+rows)%rows, (c+cols)%cols
		if transposed {
			return c*realCols + r
		}
		return r*realCols + c
	}
	b := board.New(topologies.Torus(realRows, realCols), at(0, 0))
	ex := &executor{b: b, log: &trace.Log{}}

	anchor := make([]int, rows)
	sweep := make([]int, rows)
	for r := range anchor {
		anchor[r] = ex.place(at(0, 0))
	}
	for r := range sweep {
		sweep[r] = ex.place(at(0, 0))
	}

	// Deploy the anchor rank down column 0, shallowest-first (each
	// agent transits only guarded cells).
	for r := 1; r < rows; r++ {
		for rr := 1; rr <= r; rr++ {
			ex.move(anchor[r], at(rr, 0))
		}
	}
	// Deploy the sweep rank onto column 1 through the anchored column.
	for r := 0; r < rows; r++ {
		for rr := 1; rr <= r; rr++ {
			ex.move(sweep[r], at(rr, 0))
		}
		ex.move(sweep[r], at(r, 1))
	}
	// Sweep the long way around; the anchor blocks the wrap.
	for c := 2; c < cols; c++ {
		for r := 0; r < rows; r++ {
			ex.move(sweep[r], at(r, c))
		}
	}
	for _, a := range anchor {
		ex.terminate(a)
	}
	for _, a := range sweep {
		ex.terminate(a)
	}

	return metrics.Result{
		Strategy:         Name,
		Nodes:            b.Graph().Order(),
		TeamSize:         2 * rows,
		PeakAway:         b.PeakAway(),
		AgentMoves:       b.Moves(),
		TotalMoves:       b.Moves(),
		Makespan:         ex.clock,
		Recontaminations: b.Recontaminations(),
		MonotoneOK:       b.MonotoneViolations() == 0,
		ContiguousOK:     b.Contiguous(),
		Captured:         b.AllClean(),
	}, b, ex.log
}

type executor struct {
	b     *board.Board
	log   *trace.Log
	clock int64
}

func (ex *executor) place(home int) int {
	id := ex.b.Place(ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Place, Agent: id, To: home, Role: "cleaner"})
	return id
}

func (ex *executor) move(a, to int) {
	ex.clock++
	from, _ := ex.b.Position(a)
	ex.b.Move(a, to, ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Move, Agent: a, From: from, To: to, Role: "cleaner"})
}

func (ex *executor) terminate(a int) {
	ex.b.Terminate(a, ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Terminate, Agent: a})
}
