// Package coordinated implements Algorithm CLEAN (Section 3 of the
// paper): the synchronizer-led, level-by-level cleaning of the
// hypercube on its broadcast tree.
//
// One agent — the synchronizer — sequences the entire search:
//
//	Phase 0:   it escorts one agent from the root to each of the root's
//	           d broadcast-tree children, returning to the root each
//	           time.
//	Phase l:   (cleaning level l to l+1, for l = 1..d-1)
//	  step 2.1 back at the root, it has the pool send k-1 extra agents
//	           to every level-l node of type T(k), k >= 2 (couriers
//	           travel concurrently down the all-clean broadcast tree);
//	  step 2.2 it walks level l in increasing lexicographic order; at
//	           each node it waits (via the whiteboard, here the board
//	           state) for the node's full complement, then escorts one
//	           agent down each broadcast-tree edge, returning between
//	           escorts;
//	  step 2.3 when it passes a leaf (type T(0)), the leaf's agent
//	           walks back to the root pool and becomes available again.
//
// Safety (Lemmas 1-2): when the last agent leaves a level-l node x,
// every level-(l+1) neighbour of x is already guarded, because its
// broadcast-tree parent is lexicographically smaller than x and was
// processed earlier in the walk. All navigation uses clear-bits-first
// shortest paths, which stay inside the already-clean lower levels, so
// a correct run has zero recontaminations.
package coordinated

import (
	"fmt"

	"hypersearch/internal/combin"
	"hypersearch/internal/des"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
)

// Name identifies the strategy in results and registries.
const Name = "clean"

// Run executes Algorithm CLEAN on H_d and returns the run summary and
// the environment (for trace/figure extraction). The team size is the
// exact Theorem-2 requirement; the run fails loudly if the pool ever
// proves insufficient, so a passing run is a constructive validation
// of the bound.
func Run(d int, opts strategy.Options) (metrics.Result, *strategy.Env) {
	env := strategy.NewEnv(d, opts)
	return RunEnv(env), env
}

// RunEnv executes Algorithm CLEAN on an existing (fresh or reset)
// environment; pooled sweeps use it to reuse environments across runs.
func RunEnv(env *strategy.Env) metrics.Result {
	d := env.H.Dim()
	team := int(combin.CleanTeamSize(d))
	c := &cleaner{
		env:  env,
		at:   env.NodeLists(),
		pool: make([]int, 0, team),
	}
	// The wait conditions are hoisted here so the synchronizer's level
	// walk does not allocate a fresh closure per node (the parameters
	// travel through the cleaner's fields; only the synchronizer
	// process evaluates them).
	c.havePool = func() bool { return len(c.pool) > 0 }
	c.nodeReady = func() bool { return len(c.at[c.waitNode]) >= c.waitK }

	// The synchronizer is elected first (whiteboard access order); the
	// rest of the team forms the available pool at the root.
	c.sync = env.Place(strategy.RoleSynchronizer)
	for i := 1; i < team; i++ {
		c.pool = append(c.pool, env.Place(strategy.RoleCleaner))
	}

	if d > 0 {
		env.Sim.Spawn("synchronizer", c.run)
	}
	env.Sim.Run()

	// Retire every agent in place so clean-order accounting settles.
	c.terminateAll(team)
	return env.Result(Name)
}

// cleaner carries the run state shared by the synchronizer process and
// the courier/returner processes.
type cleaner struct {
	env  *strategy.Env
	sync int

	pool     []int      // agent ids available at the root
	poolSig  des.Signal // fired when a returner reaches the root
	at       [][]int    // node -> cleaner agent ids standing there
	inFlight int        // couriers and returners on the move

	// Hoisted wait conditions and their parameters (see RunEnv).
	havePool  func() bool
	nodeReady func() bool
	waitNode  int
	waitK     int
}

func (c *cleaner) run(p *des.Process) {
	env := c.env
	d := env.H.Dim()

	// Phase 0: root to level 1.
	env.BT.VisitChildren(0, func(child int) bool {
		a := c.take(p)
		env.MoveTogether(p, []int{c.sync, a}, child, escortRoles)
		c.at[child] = append(c.at[child], a)
		env.Move(p, c.sync, 0, strategy.RoleSynchronizer)
		return true
	})

	// Phases 1..d-1.
	for l := 1; l <= d-1; l++ {
		c.dispatchExtras(p, l)
		c.walkLevel(p, l)
		// Back to the root to collect agents for the next phase.
		env.WalkTo(p, c.sync, 0, strategy.RoleSynchronizer)
	}
}

// dispatchExtras implements step 2.1: k-1 couriers to each type-T(k)
// node of level l, k >= 2, drawn from the pool (waiting for returners
// when the pool runs dry — they are always inbound, so this cannot
// deadlock).
func (c *cleaner) dispatchExtras(p *des.Process, l int) {
	env := c.env
	env.H.VisitNodesAtLevel(l, func(x int) bool {
		k := env.BT.Type(x)
		for i := 0; i < k-1; i++ {
			a := c.take(p)
			c.spawnCourier(a, x)
		}
		return true
	})
}

// walkLevel implements steps 2.2 and 2.3 for level l. Level nodes and
// tree children are visited through the allocation-free iterators, so
// a big-board walk materializes no level slices.
func (c *cleaner) walkLevel(p *des.Process, l int) {
	env := c.env
	env.H.VisitNodesAtLevel(l, func(x int) bool {
		env.WalkTo(p, c.sync, x, strategy.RoleSynchronizer)
		k := env.BT.Type(x)
		if k == 0 {
			// 2.3: the leaf agent returns to the pool.
			a := c.pop(x)
			c.spawnReturner(a, x)
			return true
		}
		// Wait for the full complement of k agents (extras may still
		// be in flight), then escort one down each tree edge.
		c.waitNode, c.waitK = x, k
		env.AwaitNode(p, x, c.nodeReady)
		if len(c.at[x]) != k {
			panic(fmt.Sprintf("coordinated: node %d holds %d agents, want %d", x, len(c.at[x]), k))
		}
		env.BT.VisitChildren(x, func(child int) bool {
			a := c.pop(x)
			env.MoveTogether(p, []int{c.sync, a}, child, escortRoles)
			c.at[child] = append(c.at[child], a)
			env.Move(p, c.sync, x, strategy.RoleSynchronizer)
			return true
		})
		return true
	})
}

// spawnCourier sends agent a from the root down the broadcast tree to
// x, concurrently with the synchronizer's walk.
func (c *cleaner) spawnCourier(a, x int) {
	env := c.env
	c.inFlight++
	env.Sim.Spawn("courier", func(p *des.Process) {
		env.WalkDown(p, a, x, strategy.RoleCleaner)
		c.at[x] = append(c.at[x], a)
		c.inFlight--
		env.Sim.Fire(env.Signal(x))
	})
}

// spawnReturner walks agent a from leaf x back to the root pool.
func (c *cleaner) spawnReturner(a, x int) {
	env := c.env
	c.inFlight++
	env.Sim.Spawn("returner", func(p *des.Process) {
		env.WalkTo(p, a, 0, strategy.RoleCleaner)
		c.pool = append(c.pool, a)
		c.inFlight--
		env.Sim.Fire(&c.poolSig)
	})
}

// take pops an available agent from the root pool, waiting for a
// returner when the pool is empty.
func (c *cleaner) take(p *des.Process) int {
	p.AwaitCond(&c.poolSig, c.havePool)
	a := c.pool[len(c.pool)-1]
	c.pool = c.pool[:len(c.pool)-1]
	return a
}

// pop removes one agent from node x's registry.
func (c *cleaner) pop(x int) int {
	agents := c.at[x]
	if len(agents) == 0 {
		panic(fmt.Sprintf("coordinated: no agent to take at node %d", x))
	}
	a := agents[len(agents)-1]
	c.at[x] = agents[:len(agents)-1]
	return a
}

// pos returns the synchronizer's current node.
func (c *cleaner) pos() int {
	v, _ := c.env.B.Position(c.sync)
	return v
}

// terminateAll retires every agent after the simulation drains.
func (c *cleaner) terminateAll(team int) {
	for id := 0; id < team; id++ {
		if _, active := c.env.B.Position(id); active {
			c.env.Terminate(id)
		}
	}
}

// escortRoles labels the two moves of an escorted pair: the
// synchronizer and its cleaner move as one action, each recorded under
// its own role.
var escortRoles = []string{strategy.RoleSynchronizer, strategy.RoleCleaner}
