package coordinated

import (
	"testing"

	"hypersearch/internal/combin"
	"hypersearch/internal/strategy"
)

func TestCleanSmallDimensionsFullChecks(t *testing.T) {
	for d := 0; d <= 7; d++ {
		r, _ := Run(d, strategy.Options{Contiguity: strategy.CheckEveryMove})
		if !r.Captured {
			t.Errorf("d=%d: intruder not captured", d)
		}
		if !r.MonotoneOK {
			t.Errorf("d=%d: monotonicity violated", d)
		}
		if !r.ContiguousOK {
			t.Errorf("d=%d: contiguity violated", d)
		}
		if r.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations (descend-first routing should avoid all)", d, r.Recontaminations)
		}
		if r.TeamSize != int(combin.CleanTeamSize(d)) {
			t.Errorf("d=%d: team %d, want %d", d, r.TeamSize, combin.CleanTeamSize(d))
		}
	}
}

func TestCleanOddAndEvenDegrees(t *testing.T) {
	// The paper assumes d even "for ease of discussion"; the
	// implementation must handle odd d identically.
	for _, d := range []int{5, 6} {
		r, _ := Run(d, strategy.Options{})
		if !r.Ok() {
			t.Errorf("d=%d: %s", d, r.String())
		}
	}
}

func TestCleanAgentMovesMatchTheorem3(t *testing.T) {
	// Theorem 3 counts one root-to-leaf-and-back trajectory of 2l moves
	// per broadcast-tree leaf at level l, totalling (d+1)*2^(d-1). The
	// run is exactly d moves cheaper: the topmost leaf (the all-ones
	// node, at level d) keeps its agent when the search ends instead of
	// sending it home.
	for d := 1; d <= 8; d++ {
		r, _ := Run(d, strategy.Options{})
		want := combin.CleanAgentMoves(d) - int64(d)
		if r.AgentMoves != want {
			t.Errorf("d=%d: agent moves %d, want %d", d, r.AgentMoves, want)
		}
	}
}

func TestCleanSyncMovesOrderNLogN(t *testing.T) {
	// Synchronizer traffic is O(n log n): check the ratio to n*log n is
	// bounded and does not grow.
	var prevRatio float64
	for d := 4; d <= 9; d++ {
		r, _ := Run(d, strategy.Options{})
		ratio := float64(r.SyncMoves) / combin.NLogN(d)
		if ratio > 3 {
			t.Errorf("d=%d: sync moves %d = %.2f * n log n", d, r.SyncMoves, ratio)
		}
		if d > 4 && ratio > prevRatio*1.25 {
			t.Errorf("d=%d: sync ratio growing: %.3f after %.3f", d, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestCleanPeakAwayMatchesPhaseFormula(t *testing.T) {
	// Under unit latency the peak number of agents simultaneously away
	// from the root equals the Theorem-2 phase maximum (the provisioned
	// team never needs to be exceeded, and it is fully used).
	for d := 2; d <= 8; d++ {
		r, _ := Run(d, strategy.Options{})
		if int64(r.PeakAway) > combin.CleanTeamSize(d) {
			t.Errorf("d=%d: peak away %d exceeds team %d", d, r.PeakAway, combin.CleanTeamSize(d))
		}
		// The peak must reach at least the largest phase requirement
		// minus the pool slack: every phase puts its guards + extras
		// out simultaneously.
		var maxPhase int64
		for l := 1; l <= d-1; l++ {
			if p := combin.CleanPhasePeak(d, l); p > maxPhase {
				maxPhase = p
			}
		}
		if d >= 2 && int64(r.PeakAway) < maxPhase-1 {
			t.Errorf("d=%d: peak away %d below phase requirement %d", d, r.PeakAway, maxPhase)
		}
	}
}

func TestCleanMakespanTracksSyncSerialization(t *testing.T) {
	// Theorem 4: ideal time is O(n log n); the synchronizer serializes
	// the run, so the makespan is at least its own move count and at
	// most total moves.
	for d := 3; d <= 8; d++ {
		r, _ := Run(d, strategy.Options{})
		if r.Makespan < r.SyncMoves {
			t.Errorf("d=%d: makespan %d below sync moves %d", d, r.Makespan, r.SyncMoves)
		}
		if r.Makespan > r.TotalMoves {
			t.Errorf("d=%d: makespan %d above total moves %d (everything is serialized or overlapped)", d, r.Makespan, r.TotalMoves)
		}
	}
}

func TestCleanUnderAdversarialAsynchrony(t *testing.T) {
	// The whiteboard-coordinated strategy must stay correct under
	// arbitrary per-move latencies.
	for seed := int64(0); seed < 12; seed++ {
		r, _ := Run(5, strategy.Options{
			Latency:    strategy.NewAdversarial(seed, 9),
			Contiguity: strategy.CheckEveryMove,
		})
		if !r.Ok() || r.Recontaminations != 0 {
			t.Errorf("seed %d: %s", seed, r.String())
		}
		if r.TeamSize != int(combin.CleanTeamSize(5)) {
			t.Errorf("seed %d: team %d", seed, r.TeamSize)
		}
	}
}

func TestCleanOrderIsLevelByLevel(t *testing.T) {
	// Figure 2's headline property: nodes settle level by level; every
	// level-l node settles before any level-(l+1) node.
	const d = 6
	_, env := Run(d, strategy.Options{Record: true})
	h := env.H
	maxOrder := make([]int, d+1)
	minOrder := make([]int, d+1)
	for l := range minOrder {
		minOrder[l] = 1 << 30
	}
	for v := 0; v < h.Order(); v++ {
		o := env.B.CleanOrder(v)
		if o < 0 {
			t.Fatalf("node %d never settled", v)
		}
		if v == 0 {
			// The root hosts the pool and the synchronizer until the
			// very end, so it settles last by construction; the
			// paper's figure marks it first because its neighbourhood
			// is secured after phase 0. Skip it.
			continue
		}
		l := h.Level(v)
		if o > maxOrder[l] {
			maxOrder[l] = o
		}
		if o < minOrder[l] {
			minOrder[l] = o
		}
	}
	for l := 1; l < d; l++ {
		if maxOrder[l] > minOrder[l+1] {
			t.Errorf("level %d finishes at order %d after level %d starts at %d",
				l, maxOrder[l], l+1, minOrder[l+1])
		}
	}
}

func TestCleanTraceReplays(t *testing.T) {
	const d = 5
	r, env := Run(d, strategy.Options{Record: true})
	b, err := env.Log().Replay(env.H, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AllClean() || b.Moves() != r.TotalMoves || b.MonotoneViolations() != 0 {
		t.Error("replay disagrees with live run")
	}
}
