package greedy

import (
	"testing"

	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/topologies"
)

func assertOK(t *testing.T, name string, g graph.Graph, home int) int {
	t.Helper()
	r, _, log := Run(g, home)
	if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
		t.Errorf("%s: %s", name, r.String())
	}
	if r.Recontaminations != 0 {
		t.Errorf("%s: %d recontaminations", name, r.Recontaminations)
	}
	rb, err := log.Replay(g, home)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !rb.AllClean() || rb.MonotoneViolations() != 0 {
		t.Errorf("%s: replay differs", name)
	}
	return r.TeamSize
}

func TestGreedyAcrossTopologies(t *testing.T) {
	cases := map[string]graph.Graph{
		"path-9":    topologies.Path(9),
		"ring-8":    topologies.Ring(8),
		"mesh-4x5":  topologies.Mesh(4, 5),
		"torus-3x4": topologies.Torus(3, 4),
		"K6":        topologies.Complete(6),
		"star-5":    topologies.Star(5),
		"H4":        hypercube.New(4),
		"H5":        hypercube.New(5),
		"CCC3":      topologies.CubeConnectedCycles(3),
		"BF3":       topologies.Butterfly(3),
	}
	for name, g := range cases {
		assertOK(t, name, g, 0)
	}
}

func TestGreedyConstantDegreeNetworksNeedFewAgents(t *testing.T) {
	// CCC is 3-regular: its frontier never needs to be wide. The
	// greedy team should stay far below the hypercube's at comparable
	// sizes — the degree, not the node count, drives the team.
	cccTeam := Team(topologies.CubeConnectedCycles(4), 0) // 64 nodes
	cubeTeam := Team(hypercube.New(6), 0)                 // 64 nodes
	if cccTeam >= cubeTeam {
		t.Errorf("CCC(4) team %d not below H_6 team %d", cccTeam, cubeTeam)
	}
}

func TestGreedyEasyOptima(t *testing.T) {
	// On a path the heuristic should find the 1-agent sweep; on a ring
	// the 2-agent pincer.
	if team := assertOK(t, "path", topologies.Path(10), 0); team != 1 {
		t.Errorf("path team = %d, want 1", team)
	}
	if team := assertOK(t, "ring", topologies.Ring(9), 0); team != 2 {
		t.Errorf("ring team = %d, want 2", team)
	}
}

func TestGreedyWithinFactorOfOptimal(t *testing.T) {
	// On small graphs, compare with the exact optimum.
	cases := map[string]graph.Graph{
		"H_3":      hypercube.New(3),
		"H_4":      hypercube.New(4),
		"mesh-3x4": topologies.Mesh(3, 4),
		"K_5":      topologies.Complete(5),
	}
	for name, g := range cases {
		team := assertOK(t, name, g, 0)
		opt := optimal.MinimalTeam(g, 0, 12, optimal.Limits{})
		if !opt.Feasible {
			t.Fatalf("%s: optimum not found", name)
		}
		if team < opt.Team {
			t.Fatalf("%s: greedy %d beats the proven optimum %d", name, team, opt.Team)
		}
		if team > 2*opt.Team {
			t.Errorf("%s: greedy %d more than 2x optimum %d", name, team, opt.Team)
		}
	}
}

func TestGreedyOnHypercubeVersusClean(t *testing.T) {
	// The structure-oblivious heuristic should land in the same
	// ballpark as CLEAN on mid-size cubes (it rediscovers a
	// frontier-shaped sweep), without ever beating the isoperimetric
	// lower bound.
	for d := 3; d <= 6; d++ {
		team := int64(Team(hypercube.New(d), 0))
		if team < combin.Binomial(d, d/2) {
			t.Errorf("d=%d: greedy team %d below the isoperimetric bound %d",
				d, team, combin.Binomial(d, d/2))
		}
		if team > 3*combin.CleanTeamSize(d) {
			t.Errorf("d=%d: greedy team %d more than 3x CLEAN %d", d, team, combin.CleanTeamSize(d))
		}
	}
}

func TestGreedyRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := topologies.RandomConnected(5+int(seed)%20, int(seed)%8, seed)
		assertOK(t, "random", g, 0)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g := topologies.RandomConnected(15, 6, 3)
	r1, _, _ := Run(g, 0)
	r2, _, _ := Run(g, 0)
	if r1.TeamSize != r2.TeamSize || r1.TotalMoves != r2.TotalMoves {
		t.Error("greedy is not deterministic")
	}
}

func TestGreedyTrivial(t *testing.T) {
	g := graph.NewAdjacency(1)
	r, _, _ := Run(g, 0)
	if !r.Captured || r.TeamSize != 1 || r.TotalMoves != 0 {
		t.Errorf("trivial graph: %s", r.String())
	}
}
