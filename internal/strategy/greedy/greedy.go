// Package greedy is a frontier-minimizing heuristic for monotone
// contiguous search on arbitrary graphs: at every step it annexes the
// contaminated node whose addition keeps the guarded frontier
// smallest, summoning agents from the homebase pool on demand and
// releasing guards the moment their posts fall inside the clean
// interior.
//
// It makes no optimality promise — experiment X8 measures it against
// the exact optimum on small graphs and against the structure-aware
// strategies on the hypercube — but it is monotone and contiguous by
// construction on every connected graph, which the property tests
// exercise over random topologies.
package greedy

import (
	"fmt"
	"sort"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
	"hypersearch/internal/metrics"
	"hypersearch/internal/trace"
)

// Name identifies the strategy in results.
const Name = "greedy"

// Run executes the heuristic on g from home. The team grows on demand;
// TeamSize in the result is the high-water mark actually used.
func Run(g graph.Graph, home int) (metrics.Result, *board.Board, *trace.Log) {
	ex := &executor{
		g:    g,
		home: home,
		b:    board.New(g, home),
		log:  &trace.Log{},
		at:   make(map[int]int),
	}
	ex.run()
	for id := 0; id < ex.b.Agents(); id++ {
		if _, active := ex.b.Position(id); active {
			ex.b.Terminate(id, ex.clock)
			ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Terminate, Agent: id})
		}
	}
	return metrics.Result{
		Strategy:         Name,
		Nodes:            g.Order(),
		TeamSize:         ex.b.Agents(),
		PeakAway:         ex.b.PeakAway(),
		AgentMoves:       ex.b.Moves(),
		TotalMoves:       ex.b.Moves(),
		Makespan:         ex.clock,
		Recontaminations: ex.b.Recontaminations(),
		MonotoneOK:       ex.b.MonotoneViolations() == 0,
		ContiguousOK:     ex.b.Contiguous(),
		Captured:         ex.b.AllClean(),
	}, ex.b, ex.log
}

// Team returns just the team size the heuristic ends up using.
func Team(g graph.Graph, home int) int {
	r, _, _ := Run(g, home)
	return r.TeamSize
}

type executor struct {
	g     graph.Graph
	home  int
	b     *board.Board
	log   *trace.Log
	clock int64
	at    map[int]int // guarded node -> agent id
	idle  []int       // agents parked at home, reusable
}

func (ex *executor) run() {
	// The homebase starts as the whole frontier.
	ex.at[ex.home] = ex.place()
	for {
		ex.releaseInterior()
		target := ex.pickTarget()
		if target < 0 {
			return // nothing contaminated remains
		}
		ex.annex(target)
	}
}

// pickTarget chooses the contaminated node adjacent to the clean
// region whose annexation minimizes the resulting frontier size,
// breaking ties toward smaller vertex ids for determinism. Returns -1
// when the board is clean.
func (ex *executor) pickTarget() int {
	bestV, bestScore := -1, 1<<30
	for v := 0; v < ex.g.Order(); v++ {
		if ex.b.StateOf(v) != board.Contaminated || !ex.touchesClean(v) {
			continue
		}
		score := ex.frontierAfter(v)
		if score < bestScore {
			bestV, bestScore = v, score
		}
	}
	return bestV
}

func (ex *executor) touchesClean(v int) bool {
	for _, w := range ex.g.Neighbours(v) {
		if ex.b.StateOf(w) != board.Contaminated {
			return true
		}
	}
	return false
}

// frontierAfter counts how many decontaminated nodes would still
// touch contamination if v were annexed.
func (ex *executor) frontierAfter(v int) int {
	count := 0
	for w := 0; w < ex.g.Order(); w++ {
		if w != v && ex.b.StateOf(w) == board.Contaminated {
			continue
		}
		touches := false
		for _, u := range ex.g.Neighbours(w) {
			if u != v && ex.b.StateOf(u) == board.Contaminated {
				touches = true
				break
			}
		}
		if touches {
			count++
		}
	}
	return count
}

// annex guards v, preferring to advance an adjacent guard whose post
// becomes interior once v is clean (the leapfrog that lets a path cost
// one agent); otherwise it summons an agent from the pool through the
// clean region.
func (ex *executor) annex(v int) {
	if w := ex.advanceableGuard(v); w >= 0 {
		a := ex.at[w]
		delete(ex.at, w)
		ex.move(a, v)
		ex.at[v] = a
		return
	}
	gate := -1
	for _, w := range ex.g.Neighbours(v) {
		if ex.b.StateOf(w) != board.Contaminated {
			gate = w
			break
		}
	}
	if gate < 0 {
		panic(fmt.Sprintf("greedy: target %d has no clean gate", v))
	}
	a := ex.summon(gate)
	ex.move(a, v)
	ex.at[v] = a
}

// advanceableGuard returns a guarded neighbour w of v whose only
// contaminated neighbour is v itself (so moving its guard into v
// exposes nothing), or -1. Smallest vertex wins for determinism.
func (ex *executor) advanceableGuard(v int) int {
	best := -1
	for _, w := range ex.g.Neighbours(v) {
		if _, ok := ex.at[w]; !ok {
			continue
		}
		clean := true
		for _, u := range ex.g.Neighbours(w) {
			if u != v && ex.b.StateOf(u) == board.Contaminated {
				clean = false
				break
			}
		}
		if clean && (best < 0 || w < best) {
			best = w
		}
	}
	return best
}

// releaseInterior retires guards whose node no longer touches
// contamination: they walk home and rejoin the idle pool. Posts are
// scanned in vertex order so the schedule is deterministic.
func (ex *executor) releaseInterior() {
	var posts []int
	for v := range ex.at {
		posts = append(posts, v)
	}
	sort.Ints(posts)
	for _, v := range posts {
		touches := false
		for _, w := range ex.g.Neighbours(v) {
			if ex.b.StateOf(w) == board.Contaminated {
				touches = true
				break
			}
		}
		if !touches {
			a := ex.at[v]
			delete(ex.at, v)
			ex.walkClean(a, ex.home)
			ex.idle = append(ex.idle, a)
		}
	}
}

// summon routes an idle agent (or a fresh one) to the gate node.
func (ex *executor) summon(gate int) int {
	var a int
	if len(ex.idle) > 0 {
		a = ex.idle[len(ex.idle)-1]
		ex.idle = ex.idle[:len(ex.idle)-1]
	} else {
		a = ex.place()
	}
	ex.walkClean(a, gate)
	return a
}

func (ex *executor) place() int {
	id := ex.b.Place(ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Place, Agent: id, To: ex.home, Role: "cleaner"})
	return id
}

// walkClean routes an agent through decontaminated territory.
func (ex *executor) walkClean(a, dst int) {
	from, _ := ex.b.Position(a)
	if from == dst {
		return
	}
	parent := make([]int, ex.g.Order())
	for i := range parent {
		parent[i] = -1
	}
	parent[from] = from
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			break
		}
		for _, w := range ex.g.Neighbours(v) {
			if parent[w] < 0 && ex.b.StateOf(w) != board.Contaminated {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	if parent[dst] < 0 {
		panic(fmt.Sprintf("greedy: no clean route %d -> %d", from, dst))
	}
	var rev []int
	for x := dst; x != from; x = parent[x] {
		rev = append(rev, x)
	}
	for i := len(rev) - 1; i >= 0; i-- {
		ex.move(a, rev[i])
	}
}

func (ex *executor) move(a, to int) {
	ex.clock++
	from, _ := ex.b.Position(a)
	ex.b.Move(a, to, ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Move, Agent: a, From: from, To: to, Role: "cleaner"})
}
