// Package strategy provides the shared execution environment the
// cleaning strategies run on: a hypercube board driven by the
// discrete-event simulator, with per-move latency models (unit latency
// for ideal-time measurement, seeded random latency as the asynchronous
// adversary), structured trace recording, per-node condition signals
// for visibility-style waiting, and result assembly.
package strategy

import (
	"fmt"
	"math/rand"

	"hypersearch/internal/board"
	"hypersearch/internal/des"
	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/metrics"
	"hypersearch/internal/trace"
)

// Latency models how long one edge traversal takes. Draws happen in
// deterministic DES order, so a seeded latency makes the whole run
// reproducible.
type Latency interface {
	// Draw returns the duration (>= 1) of a move from one node to a
	// neighbour.
	Draw(from, to int) int64
}

// Unit is the ideal-time model: every move takes exactly one step.
type Unit struct{}

// Draw implements Latency.
func (Unit) Draw(_, _ int) int64 { return 1 }

// Adversarial draws durations uniformly from [1, Max], seeded: the
// standard asynchronous adversary used by the robustness experiments.
type Adversarial struct {
	rng *rand.Rand
	max int64
}

// NewAdversarial returns an adversarial latency with durations in
// [1, max].
func NewAdversarial(seed, max int64) *Adversarial {
	if max < 1 {
		panic("strategy: adversarial max latency must be >= 1")
	}
	return &Adversarial{rng: rand.New(rand.NewSource(seed)), max: max}
}

// Draw implements Latency.
func (a *Adversarial) Draw(_, _ int) int64 { return 1 + a.rng.Int63n(a.max) }

// ContiguityCheck selects how often the O(n) connectivity invariant is
// verified during a run.
type ContiguityCheck int

// Checking modes, from cheapest to most thorough.
const (
	CheckFinal     ContiguityCheck = iota // once, at the end
	CheckEveryMove                        // after every move (tests, small d)
	CheckNever                            // benchmarks
)

// Options configures an execution environment.
type Options struct {
	Latency    Latency         // nil means Unit{}
	Contiguity ContiguityCheck // default CheckFinal
	Record     bool            // keep a full trace log

	// Stream, when non-nil, receives every trace event as it happens
	// without the environment retaining it: the memory-bounded way to
	// capture megannode runs whose full in-memory log would not fit.
	// It composes with Record (events go to both) but is typically
	// used instead of it. The environment never resets or closes the
	// sink; the caller owns its lifecycle.
	Stream trace.Sink

	// Faults optionally injects deterministic adversity: stalls,
	// latency spikes, and lock starvation become extra virtual delay
	// on the affected moves, and kernel-lag faults are installed as a
	// DES event interceptor. Crash faults are not supported by the
	// discrete-event engine (a dead process would wedge the kernel);
	// they require the crash-tolerant goroutine runtime.
	Faults *faults.Injector
}

// Env is the execution environment for one strategy run on H_d.
type Env struct {
	H   *hypercube.Hypercube
	BT  *heapqueue.Tree
	Sim *des.Simulator
	B   *board.Board

	opts     Options
	log      *trace.Log
	logStash *trace.Log // trace retired by a Record:false flip, kept for its capacity
	sink     trace.Sink // optional streaming sink (Options.Stream)
	// sigs and armed are allocated lazily, on the first AwaitNode or
	// Signal call: per-node condition waiting is a goroutine-process
	// idiom, and the inline-actor strategies never touch it. At big
	// dimensions that laziness matters — the sigs array alone is tens
	// of megabytes at d=20, which an event-driven megannode run should
	// not pay for.
	sigs []des.Signal
	// armed mirrors "sigs[v] has waiters" as one bit per node. At big
	// dimensions the sigs array is tens of megabytes, so fireAround
	// consults this L2-resident bitset and only touches the Signal
	// structs that actually have a sleeper. Bits are set by AwaitNode
	// before blocking and cleared by fireAt before firing; a woken
	// process that blocks again re-arms its bit, so no wakeup is lost.
	armed        []uint64
	armedCount   int // number of set bits in armed; 0 short-circuits fireAround
	contiguousOK bool
	completed    bool
	// aux holds per-environment scratch owned by individual strategies
	// (keyed by strategy name): the event-driven engines park their
	// counter tables and event pools here so pooled environments reuse
	// them across runs, keeping allocs/op flat. The environment only
	// stores the values; resetting them is the owning strategy's job.
	aux map[string]any
	// Per-role move counters. The two standard roles dominate every
	// run (one increment per move), so they get dedicated counters;
	// exotic roles fall back to the map.
	syncMoves    int64
	cleanerMoves int64
	roleMoves    map[string]int64
	// lists is per-run scratch for strategies that track agents per
	// node (one []int per node, emptied by NodeLists); reusing it
	// across pooled runs avoids rebuilding per-node maps.
	lists [][]int
}

// NewEnv builds an environment for dimension d with all nodes
// contaminated except the homebase 0, choosing the materialized or
// implicit topology representation by dimension (hypercube.ForDim).
func NewEnv(d int, opts Options) *Env {
	return NewEnvOn(hypercube.ForDim(d), heapqueue.ForDim(d), opts)
}

// NewEnvOn builds an environment over an existing hypercube and
// broadcast tree (which must share the same dimension). The topology
// structures are read-only to the environment, so one pair can back
// any number of environments concurrently — the basis of envpool's
// per-dimension sharing.
func NewEnvOn(h *hypercube.Hypercube, bt *heapqueue.Tree, opts Options) *Env {
	if h.Dim() != bt.Dim() {
		panic(fmt.Sprintf("strategy: hypercube H_%d paired with tree T(%d)", h.Dim(), bt.Dim()))
	}
	e := &Env{
		H:         h,
		BT:        bt,
		Sim:       des.New(),
		B:         board.New(h, 0),
		roleMoves: map[string]int64{},
	}
	e.applyOptions(opts)
	return e
}

// applyOptions installs a run's options onto a clean environment.
func (e *Env) applyOptions(opts Options) {
	if opts.Latency == nil {
		opts.Latency = Unit{}
	}
	e.opts = opts
	e.sink = opts.Stream
	e.contiguousOK = true
	e.completed = false
	e.B.RecordClean(opts.Record)
	if opts.Record {
		if e.log == nil {
			// A Record:false -> true flip reuses the trace retired by
			// the last recorded run of this environment (and thus this
			// dimension), so the log is pre-sized instead of regrowing
			// from scratch.
			if e.logStash != nil {
				e.log, e.logStash = e.logStash, nil
			} else {
				e.log = &trace.Log{}
			}
		}
	} else {
		if e.log != nil {
			e.log.Reset()
			e.logStash = e.log
		}
		e.log = nil
	}
	if opts.Faults != nil {
		if ic := opts.Faults.KernelInterceptor(); ic != nil {
			e.Sim.Intercept(des.Interceptor(ic))
		}
	}
}

// Reset prepares the environment for a fresh run under new options,
// reusing every allocation from the previous run: the board, trace
// log, signals, role counters and scratch lists are cleared in O(n),
// and the simulator keeps its warmed event heap (plus, under
// KeepWorkers, its parked process goroutines). It panics — via
// Sim.Reset — if the previous run was abandoned with blocked
// processes; such poisoned environments must be discarded, not reset.
func (e *Env) Reset(opts Options) {
	e.Sim.Reset()
	e.B.Reset()
	for i := range e.sigs {
		e.sigs[i].Reset()
	}
	for i := range e.armed {
		e.armed[i] = 0
	}
	e.armedCount = 0
	e.syncMoves, e.cleanerMoves = 0, 0
	for k := range e.roleMoves {
		delete(e.roleMoves, k)
	}
	if e.log != nil {
		e.log.Reset()
	}
	e.applyOptions(opts)
}

// Completed reports whether Result has been called since the last
// Reset: the run finished and its summary was taken. Pools use it to
// reject environments whose run panicked mid-simulation.
func (e *Env) Completed() bool { return e.completed }

// NodeLists returns one empty []int per node, reusing backing arrays
// across calls and runs. Strategies use it as per-node agent
// registries instead of allocating map[int][]int every run. The
// environment owns the storage; only one caller may use it at a time.
// The table is allocated on first use — O(n) slice headers that the
// event-driven strategies, which track agents in packed per-node
// stacks instead, never pay for.
func (e *Env) NodeLists() [][]int {
	if e.lists == nil {
		e.lists = make([][]int, e.H.Order())
	}
	for i := range e.lists {
		e.lists[i] = e.lists[i][:0]
	}
	return e.lists
}

// Aux returns the per-environment scratch value stored under key, or
// nil. Strategies key their reusable engine state by their own name;
// a pooled environment then carries that state across runs, which is
// what keeps an event-driven strategy's allocs/op flat under reuse.
func (e *Env) Aux(key string) any { return e.aux[key] }

// SetAux stores a per-environment scratch value under key; see Aux.
func (e *Env) SetAux(key string, v any) {
	if e.aux == nil {
		e.aux = map[string]any{}
	}
	e.aux[key] = v
}

// faultDelay consults the injector for one move of agent in role and
// returns the extra virtual delay to impose. Lock starvation has no
// distinct meaning under the single-threaded kernel, so hold time is
// folded into the delay.
func (e *Env) faultDelay(agent int, role string) int64 {
	if e.opts.Faults == nil {
		return 0
	}
	act := e.opts.Faults.BeforeMove(faults.MoveCtx{Agent: agent, Sync: role == RoleSynchronizer})
	if act.Crash {
		panic("strategy: crash faults require the crash-tolerant goroutine runtime (runtime.RunCleanFT)")
	}
	return act.Delay + act.Hold
}

// Log returns the trace log, or nil if recording was off.
func (e *Env) Log() *trace.Log { return e.log }

// emit delivers one trace event to the in-memory log and/or the
// streaming sink, whichever are configured. Callers guard with
// `e.log != nil || e.sink != nil` so unrecorded runs never build the
// event struct.
func (e *Env) emit(ev trace.Event) {
	if e.log != nil {
		e.log.Append(ev)
	}
	if e.sink != nil {
		e.sink.Append(ev)
	}
}

// ensureSigs allocates the per-node signal array and armed bitset on
// first use; environments running only inline-actor strategies never
// build them.
func (e *Env) ensureSigs() {
	if e.sigs == nil {
		e.sigs = make([]des.Signal, e.H.Order())
		e.armed = make([]uint64, (e.H.Order()+63)/64)
	}
}

// Signal returns node v's condition signal; it fires whenever the
// board changes at v or at a neighbour of v. Waiting on it directly
// with p.Await/p.AwaitCond bypasses the armed bitset and can miss
// board-change wakeups — use AwaitNode instead. Firing it directly is
// always safe.
func (e *Env) Signal(v int) *des.Signal {
	e.ensureSigs()
	return &e.sigs[v]
}

// AwaitNode blocks p until cond() holds, re-checking whenever the
// board changes at node v or one of its neighbours. It is the node
// analogue of p.AwaitCond(e.Signal(v), cond), but arms v's bit in the
// armed bitset before each block so fireAround knows a sleeper exists
// without reading the (large, cold) Signal array.
func (e *Env) AwaitNode(p *des.Process, v int, cond func() bool) {
	e.ensureSigs()
	for !cond() {
		if w, bit := v>>6, uint64(1)<<(uint(v)&63); e.armed[w]&bit == 0 {
			e.armed[w] |= bit
			e.armedCount++
		}
		p.Await(&e.sigs[v])
	}
}

// fireAt wakes the waiters of node v's signal, if the armed bitset
// says there are any. The bit is cleared before firing; re-blocking
// waiters re-arm it through AwaitNode.
func (e *Env) fireAt(v int) {
	w, bit := v>>6, uint64(1)<<(uint(v)&63)
	if e.armed[w]&bit == 0 {
		return
	}
	e.armed[w] &^= bit
	e.armedCount--
	e.Sim.Fire(&e.sigs[v])
}

// fireAround signals a board change at v: v's own waiters and those of
// every neighbour (whose "all my neighbours are clean"-style conditions
// may have just flipped) get woken. The armed count makes the dominant
// case — no sleeper anywhere on the board, true for every transit move
// of a courier convoy — a single comparison; otherwise the neighbour
// loop is the XOR walk over the armed bitset, with no topology lookup
// and no allocation.
func (e *Env) fireAround(v int) {
	if e.armedCount == 0 {
		return
	}
	e.fireAt(v)
	for i := 0; i < e.H.Dim(); i++ {
		e.fireAt(v ^ 1<<i)
	}
}

// Place creates an agent on the homebase at the current time.
func (e *Env) Place(role string) int {
	id := e.B.Place(e.Sim.Now())
	if e.log != nil || e.sink != nil {
		e.emit(trace.Event{Time: e.Sim.Now(), Kind: trace.Place, Agent: id, To: e.B.Home(), Role: role})
	}
	e.fireAround(e.B.Home())
	return id
}

// Clone creates an agent on v (which must hold one) at the current
// time; parent records provenance in the trace.
func (e *Env) Clone(parent, v int, role string) int {
	id := e.B.Clone(v, e.Sim.Now())
	if e.log != nil || e.sink != nil {
		e.emit(trace.Event{Time: e.Sim.Now(), Kind: trace.Clone, Agent: id, From: parent, To: v, Role: role})
	}
	e.fireAround(v)
	return id
}

// Terminate retires an agent in place.
func (e *Env) Terminate(agent int) {
	v, _ := e.B.Position(agent)
	e.B.Terminate(agent, e.Sim.Now())
	if e.log != nil || e.sink != nil {
		e.emit(trace.Event{Time: e.Sim.Now(), Kind: trace.Terminate, Agent: agent, From: v, To: v})
	}
	e.fireAround(v)
}

// apply performs the instantaneous part of a move at the current
// simulation time: board update, trace, invariant check, signals.
func (e *Env) apply(agent, to int, role string) {
	from, _ := e.B.Position(agent)
	e.B.Move(agent, to, e.Sim.Now())
	switch role {
	case RoleCleaner:
		e.cleanerMoves++
	case RoleSynchronizer:
		e.syncMoves++
	default:
		e.roleMoves[role]++
	}
	if e.log != nil || e.sink != nil {
		e.emit(trace.Event{Time: e.Sim.Now(), Kind: trace.Move, Agent: agent, From: from, To: to, Role: role})
	}
	if e.opts.Contiguity == CheckEveryMove && e.contiguousOK {
		e.contiguousOK = e.B.Contiguous()
	}
	e.fireAround(from)
	e.fireAround(to)
}

// Move walks one edge: the calling process sleeps for the drawn
// latency, then the move applies atomically (the agent occupies the
// source until completion — the standard graph-search action model).
func (e *Env) Move(p *des.Process, agent, to int, role string) {
	from, _ := e.B.Position(agent)
	p.Delay(e.opts.Latency.Draw(from, to) + e.faultDelay(agent, role))
	e.apply(agent, to, role)
}

// MoveLatency draws the duration of agent's next move from from to to
// (latency model plus any injected fault delay), without performing
// it. Inline-actor strategies call it at dispatch time and schedule
// the completion themselves; pairing each draw with a later ApplyMove
// in the same order a goroutine process would have drawn and applied
// keeps the two styles byte-identical.
func (e *Env) MoveLatency(agent, from, to int, role string) int64 {
	return e.opts.Latency.Draw(from, to) + e.faultDelay(agent, role)
}

// ApplyMove performs the instantaneous part of a move at the current
// simulation time: board update, per-role accounting, trace, invariant
// check, signals. It is Move without the latency sleep — the
// inline-actor half of the split that MoveLatency opens.
func (e *Env) ApplyMove(agent, to int, role string) { e.apply(agent, to, role) }

// MoveTogether moves a group of agents across the same edge as one
// action (the synchronizer escorting a cleaner): one latency draw, all
// moves applied at the same instant. roles[i] labels agents[i]'s move.
func (e *Env) MoveTogether(p *des.Process, agents []int, to int, roles []string) {
	if len(agents) == 0 || len(agents) != len(roles) {
		panic("strategy: MoveTogether needs matching agents and roles")
	}
	from, _ := e.B.Position(agents[0])
	p.Delay(e.opts.Latency.Draw(from, to) + e.faultDelay(agents[0], roles[0]))
	for i, a := range agents {
		e.apply(a, to, roles[i])
	}
}

// Walk moves an agent along a path (path[0] must be its current node).
func (e *Env) Walk(p *des.Process, agent int, path []int, role string) {
	if len(path) == 0 {
		return
	}
	if at, _ := e.B.Position(agent); at != path[0] {
		panic(fmt.Sprintf("strategy: Walk of agent %d starting at %d, path starts at %d", agent, at, path[0]))
	}
	for _, v := range path[1:] {
		e.Move(p, agent, v, role)
	}
}

// WalkTo moves an agent from its current node to dst along the
// canonical shortest hypercube path (the same vertices H.ShortestPath
// returns), stepping via NextHopToward so no path slice is allocated.
func (e *Env) WalkTo(p *des.Process, agent, dst int, role string) {
	at, _ := e.B.Position(agent)
	for at != dst {
		at = e.H.NextHopToward(at, dst)
		e.Move(p, agent, at, role)
	}
}

// WalkDown moves an agent from its current node down the broadcast
// tree to its descendant dst (the same vertices BT.PathFromRoot visits
// below the current node), without allocating the path slice.
func (e *Env) WalkDown(p *des.Process, agent, dst int, role string) {
	at, _ := e.B.Position(agent)
	for at != dst {
		at = e.BT.NextHopDown(at, dst)
		e.Move(p, agent, at, role)
	}
}

// RoleMoves returns the number of moves recorded for a role.
func (e *Env) RoleMoves(role string) int64 {
	switch role {
	case RoleCleaner:
		return e.cleanerMoves
	case RoleSynchronizer:
		return e.syncMoves
	default:
		return e.roleMoves[role]
	}
}

// Result assembles the run's cost and correctness summary. Call it
// after Sim.Run has returned; it also marks the environment's run as
// completed, which is what allows a pooled environment to be reused.
func (e *Env) Result(name string) metrics.Result {
	e.completed = true
	ok := e.contiguousOK
	if e.opts.Contiguity != CheckNever {
		ok = ok && e.B.Contiguous()
	}
	agentMoves, syncMoves := e.cleanerMoves, e.syncMoves
	for role, n := range e.roleMoves {
		if role == RoleSynchronizer {
			syncMoves += n
		} else {
			agentMoves += n
		}
	}
	return metrics.Result{
		Strategy:         name,
		Dim:              e.H.Dim(),
		Nodes:            e.H.Order(),
		TeamSize:         e.B.Agents(),
		PeakAway:         e.B.PeakAway(),
		AgentMoves:       agentMoves,
		SyncMoves:        syncMoves,
		TotalMoves:       e.B.Moves(),
		Makespan:         e.B.Now(),
		Recontaminations: e.B.Recontaminations(),
		MonotoneOK:       e.B.MonotoneViolations() == 0,
		ContiguousOK:     ok,
		Captured:         e.B.AllClean(),
	}
}

// Role names used in traces and per-role move accounting.
const (
	RoleSynchronizer = "synchronizer"
	RoleCleaner      = "cleaner"
)

// Source hands out execution environments. Fresh allocates per call;
// envpool.Pool reuses them. Callers must Release every Acquired
// environment when done with it (after taking Result) and must not
// touch it afterwards.
type Source interface {
	Acquire(d int, opts Options) *Env
	Release(*Env)
}

// Fresh is the non-pooling Source: every Acquire builds a new
// environment and Release discards it.
type Fresh struct{}

// Acquire implements Source.
func (Fresh) Acquire(d int, opts Options) *Env { return NewEnv(d, opts) }

// Release implements Source.
func (Fresh) Release(*Env) {}
