package visibility

import (
	"fmt"
	"testing"

	"hypersearch/internal/faults"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
	"hypersearch/internal/trace"
)

// The inline event-driven engine claims byte-identity with the
// goroutine-per-node reference path: identical traces (every event,
// in order, with times), identical metrics, identical clean orders
// and clean times — under unit latency, adversarial latency, and
// seeded fault plans alike. These tests state that claim as a
// property over dimensions and seeds; `-race` covers the goroutine
// side of the comparison.

// capture is everything observable about one run.
type capture struct {
	res        metrics.Result
	events     []trace.Event
	cleanOrder []int
	cleanTime  []int64
}

// runPath executes one visibility run on a fresh environment through
// the selected engine and captures its observables.
func runPath(d int, opts strategy.Options, legacy bool) capture {
	opts.Record = true
	opts.Contiguity = strategy.CheckEveryMove
	env := strategy.NewEnv(d, opts)
	var c capture
	if legacy {
		c.res = RunEnvLegacy(env)
	} else {
		c.res = RunEnvInline(env)
	}
	c.events = append(c.events, env.Log().Events()...)
	n := env.H.Order()
	c.cleanOrder = make([]int, n)
	c.cleanTime = make([]int64, n)
	for v := 0; v < n; v++ {
		c.cleanOrder[v] = env.B.CleanOrder(v)
		c.cleanTime[v] = env.B.CleanTime(v)
	}
	return c
}

// assertIdentical compares two captures field by field with a usable
// first-divergence report.
func assertIdentical(t *testing.T, legacy, inline capture) {
	t.Helper()
	if legacy.res != inline.res {
		t.Fatalf("metrics diverge:\nlegacy: %+v\ninline: %+v", legacy.res, inline.res)
	}
	if len(legacy.events) != len(inline.events) {
		t.Fatalf("trace lengths diverge: legacy %d events, inline %d", len(legacy.events), len(inline.events))
	}
	for i := range legacy.events {
		if legacy.events[i] != inline.events[i] {
			t.Fatalf("trace diverges at event %d:\nlegacy: %+v\ninline: %+v", i, legacy.events[i], inline.events[i])
		}
	}
	for v := range legacy.cleanOrder {
		if legacy.cleanOrder[v] != inline.cleanOrder[v] || legacy.cleanTime[v] != inline.cleanTime[v] {
			t.Fatalf("clean record diverges at node %d: legacy (order %d, time %d), inline (order %d, time %d)",
				v, legacy.cleanOrder[v], legacy.cleanTime[v], inline.cleanOrder[v], inline.cleanTime[v])
		}
	}
}

// TestInlineMatchesLegacyUnit: identity under the ideal-time model,
// every dimension the reference path can reasonably run.
func TestInlineMatchesLegacyUnit(t *testing.T) {
	for d := 0; d <= 8; d++ {
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			assertIdentical(t,
				runPath(d, strategy.Options{}, true),
				runPath(d, strategy.Options{}, false))
		})
	}
}

// TestInlineMatchesLegacyAdversarial: identity under seeded random
// latencies — the asynchronous adversary exercises every interleaving
// the counter engine must reproduce, and the latency draw sequence
// itself is part of the identity (a reordered draw would desync the
// shared RNG stream immediately).
func TestInlineMatchesLegacyAdversarial(t *testing.T) {
	for d := 1; d <= 8; d++ {
		for _, seed := range []int64{1, 2, 7, 40, 1337} {
			for _, max := range []int64{1, 3, 16} {
				t.Run(fmt.Sprintf("d=%d/seed=%d/max=%d", d, seed, max), func(t *testing.T) {
					mk := func() strategy.Options {
						return strategy.Options{Latency: strategy.NewAdversarial(seed, max)}
					}
					assertIdentical(t, runPath(d, mk(), true), runPath(d, mk(), false))
				})
			}
		}
	}
}

// TestInlineMatchesLegacyFaults: identity under seeded fault plans —
// stalls and latency spikes consult the injector's move counters in
// move order, and kernel lag defers DES events as a pure function of
// virtual time, so both paths must produce the same deferred schedule.
func TestInlineMatchesLegacyFaults(t *testing.T) {
	plans := []*faults.Plan{
		{Name: "stall-any", Seed: 3, Faults: []faults.Fault{
			{Kind: faults.Stall, Target: faults.TargetAny, At: 3, Delay: 5},
			{Kind: faults.Stall, Target: faults.TargetAny, At: 11, Delay: 2},
		}},
		{Name: "spike-agent", Seed: 5, Faults: []faults.Fault{
			{Kind: faults.LatencySpike, Target: "agent:1", At: 1, Until: 4, Delay: 2},
			{Kind: faults.LatencySpike, Target: "agent:0", At: 2, Until: 3, Delay: 7},
		}},
		{Name: "kernel-lag", Seed: 9, Faults: []faults.Fault{
			{Kind: faults.KernelLag, From: 1, To: 4},
		}},
		{Name: "combined", Seed: 11, Faults: []faults.Fault{
			{Kind: faults.Stall, Target: faults.TargetAny, At: 5, Delay: 3},
			{Kind: faults.KernelLag, From: 2, To: 6},
		}},
	}
	for _, plan := range plans {
		for d := 1; d <= 6; d++ {
			t.Run(fmt.Sprintf("%s/d=%d", plan.Name, d), func(t *testing.T) {
				mk := func() strategy.Options {
					return strategy.Options{
						Latency: strategy.NewAdversarial(plan.Seed, 4),
						Faults:  faults.NewInjector(plan),
					}
				}
				assertIdentical(t, runPath(d, mk(), true), runPath(d, mk(), false))
			})
		}
	}
}

// TestInlinePooledResetIdentity: a pooled environment re-running the
// inline engine after Reset reproduces the fresh-environment run
// exactly — the engine's parked counter tables and event pools reset
// cleanly.
func TestInlinePooledResetIdentity(t *testing.T) {
	for d := 1; d <= 8; d++ {
		fresh := runPath(d, strategy.Options{}, false)
		env := strategy.NewEnv(d, strategy.Options{Record: true, Contiguity: strategy.CheckEveryMove})
		RunEnvInline(env)
		env.Reset(strategy.Options{Record: true, Contiguity: strategy.CheckEveryMove})
		res := RunEnvInline(env)
		if res != fresh.res {
			t.Fatalf("d=%d: pooled re-run diverges:\nfresh:  %+v\nre-run: %+v", d, fresh.res, res)
		}
		events := env.Log().Events()
		if len(events) != len(fresh.events) {
			t.Fatalf("d=%d: pooled re-run trace has %d events, fresh %d", d, len(events), len(fresh.events))
		}
		for i := range events {
			if events[i] != fresh.events[i] {
				t.Fatalf("d=%d: pooled re-run trace diverges at event %d: %+v vs %+v", d, i, events[i], fresh.events[i])
			}
		}
	}
}

// TestRunEnvLegacyKnob: the environment knob routes RunEnv to the
// reference path, and both routes agree.
func TestRunEnvLegacyKnob(t *testing.T) {
	viaInline := runPath(5, strategy.Options{}, false)
	t.Setenv(LegacyEnvVar, "1")
	env := strategy.NewEnv(5, strategy.Options{Record: true, Contiguity: strategy.CheckEveryMove})
	res := RunEnv(env)
	if res != viaInline.res {
		t.Fatalf("legacy knob run diverges:\nknob:   %+v\ninline: %+v", res, viaInline.res)
	}
	if got, want := env.Log().Len(), len(viaInline.events); got != want {
		t.Fatalf("legacy knob trace has %d events, inline %d", got, want)
	}
}
