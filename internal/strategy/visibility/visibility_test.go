package visibility

import (
	"testing"

	"hypersearch/internal/combin"
	"hypersearch/internal/strategy"
)

func TestVisibilitySmallDimensionsFullChecks(t *testing.T) {
	for d := 0; d <= 8; d++ {
		r, _ := Run(d, strategy.Options{Contiguity: strategy.CheckEveryMove})
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("d=%d: %s", d, r.String())
		}
		if r.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, r.Recontaminations)
		}
	}
}

func TestTheorem5AgentCount(t *testing.T) {
	for d := 1; d <= 10; d++ {
		r, _ := Run(d, strategy.Options{})
		if int64(r.TeamSize) != combin.VisibilityAgents(d) {
			t.Errorf("d=%d: team %d, want n/2 = %d", d, r.TeamSize, combin.VisibilityAgents(d))
		}
	}
}

func TestTheorem7TimeIsExactlyD(t *testing.T) {
	// Under unit latency the makespan is exactly d = log n: class C_i
	// is cleaned at time i.
	for d := 1; d <= 10; d++ {
		r, _ := Run(d, strategy.Options{})
		if r.Makespan != int64(d) {
			t.Errorf("d=%d: makespan %d, want %d", d, r.Makespan, d)
		}
	}
}

func TestTheorem8MoveCount(t *testing.T) {
	// Total moves = sum of broadcast-tree leaf depths = (d+1)*2^(d-2).
	for d := 1; d <= 10; d++ {
		r, _ := Run(d, strategy.Options{})
		if r.TotalMoves != combin.VisibilityMoves(d) {
			t.Errorf("d=%d: moves %d, want %d", d, r.TotalMoves, combin.VisibilityMoves(d))
		}
		if r.SyncMoves != 0 {
			t.Errorf("d=%d: local strategy has a synchronizer?", d)
		}
	}
}

func TestClassesCleanInTimeOrder(t *testing.T) {
	// The Theorem 7 induction: the agents on class C_i depart at time i
	// (Figure 4's schedule). The paper calls C_i "clean at time i" at
	// the departure instant; under our atomic-at-completion move
	// semantics a non-leaf C_i node settles when its departures
	// complete, at time i+1. Leaves (all in C_d) terminate once every
	// neighbour is clean or guarded, no later than time d.
	const d = 6
	_, env := Run(d, strategy.Options{Record: true})
	for v := 1; v < env.H.Order(); v++ {
		i := env.H.Class(v)
		got := env.B.CleanTime(v)
		if env.BT.IsLeaf(v) {
			if got < int64(env.H.Level(v)) || got > d {
				t.Errorf("leaf %d settled at %d", v, got)
			}
			continue
		}
		if got != int64(i)+1 {
			t.Errorf("node %d in C_%d settled at %d, want %d", v, i, got, i+1)
		}
	}
	if got := env.B.CleanTime(0); got != 1 {
		t.Errorf("root settled at %d", got)
	}
}

func TestVisibilityUnderAdversarialAsynchrony(t *testing.T) {
	// The waiting condition is monotone, so arbitrary latencies must
	// never deadlock or break the invariants; move totals are
	// schedule-independent.
	for seed := int64(0); seed < 12; seed++ {
		r, _ := Run(5, strategy.Options{
			Latency:    strategy.NewAdversarial(seed, 9),
			Contiguity: strategy.CheckEveryMove,
		})
		if !r.Ok() || r.Recontaminations != 0 {
			t.Errorf("seed %d: %s", seed, r.String())
		}
		if r.TotalMoves != combin.VisibilityMoves(5) {
			t.Errorf("seed %d: moves %d", seed, r.TotalMoves)
		}
		if r.Makespan < 5 {
			t.Errorf("seed %d: impossible makespan %d", seed, r.Makespan)
		}
	}
}

func TestPeakAwayIsWholeTeam(t *testing.T) {
	// Every agent leaves the root (they all end on leaves): the peak
	// away-count equals the team size.
	r, _ := Run(6, strategy.Options{})
	if r.PeakAway != r.TeamSize {
		t.Errorf("peak %d != team %d", r.PeakAway, r.TeamSize)
	}
}

func TestVisibilityTraceReplays(t *testing.T) {
	r, env := Run(5, strategy.Options{Record: true})
	b, err := env.Log().Replay(env.H, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AllClean() || b.Moves() != r.TotalMoves {
		t.Error("replay disagrees with live run")
	}
}

func TestAgentsEndOnDistinctLeaves(t *testing.T) {
	const d = 6
	r, env := Run(d, strategy.Options{})
	seen := map[int]bool{}
	for id := 0; id < r.TeamSize; id++ {
		v, active := env.B.Position(id)
		if active {
			t.Errorf("agent %d still active", id)
		}
		if !env.BT.IsLeaf(v) {
			t.Errorf("agent %d ended on non-leaf %d", id, v)
		}
		if seen[v] {
			t.Errorf("two agents ended on leaf %d", v)
		}
		seen[v] = true
	}
}
