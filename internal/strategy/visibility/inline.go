// inline.go is the event-driven visibility engine: the same local rule
// as the goroutine-per-node reference path, executed by inline DES
// actors (des.Inline) instead of 2^d parked processes.
//
// The dispatch condition of node v — "the agent complement is present
// AND every smaller neighbour is clean or guarded" — is monotone, so
// it never needs to be re-polled: it flips exactly once, at a single
// identifiable event. The engine therefore keeps, per node, two packed
// countdown counters in one uint32:
//
//   - need  (low bits):  agents still missing from the complement,
//   - dirty (high bits): smaller neighbours still contaminated,
//
// and decrements them from the two event kinds that can change them.
// An agent arrival at v decrements need[v]; the first arrival at v
// (its contaminated -> guarded transition) decrements dirty[w] for
// every watcher w that counts v among its smaller neighbours (all of
// v's neighbours except its broadcast-tree parent). A node whose word
// reaches zero is ready. Nothing is ever woken to re-check a condition
// that did not change, so a run does O(moves) work — at d=20 that is
// ~5.5M events for a 1,048,576-node board — instead of O(nodes·wakes).
//
// Byte-identity with the reference path (traces, latency draws, fault
// consultations, clean orders, metrics — see TestInlineMatchesLegacy*)
// requires reproducing not just *which* nodes dispatch at a virtual
// time but *in what order*. The reference path's order is subtle: a
// parked node is woken by the FIRST same-time board event that touches
// its closed neighbourhood (every move fires both endpoints and all
// their neighbours), and since wakes run after every same-time arrival,
// the condition is checked against the post-arrival state — a node can
// dispatch at a wake position scheduled by an arrival EARLIER than the
// one that actually enabled it, including an arrival that merely
// departed from a shared neighbour. The engine reproduces this without
// polling:
//
//   - every arrival stamps its two endpoints with (timestep epoch,
//     arrival index) — two array writes per move;
//   - nodes whose counter word hits zero join a pending list, and the
//     first one per timestep schedules a single flush event, which
//     runs after every same-time arrival;
//   - the flush sorts the pending nodes by their reference wake key —
//     (earliest touching arrival, position within that arrival's
//     fire sequence: source neighbourhood by label, then destination
//     neighbourhood by label) — reconstructed in O(d) per ready node
//     from the endpoint stamps, then dispatches them in key order.
//
// Dispatch draws each departing mover's latency at dispatch time, in
// (child, plan-slot) order. The reference path draws in mover
// processes that run after all same-time wakes, grouped per dispatch
// in the same order, and only the draw sequence is observable (via
// the shared RNG and fault-plan counters), not its position within
// the timestep — so the two paths consume identical draw and
// fault-consultation sequences. Agents gathered on a node are kept in
// a per-node intrusive stack (head/next arrays) pushed on arrival and
// popped on dispatch — the same last-arrived-first selection as the
// reference path's append/pop-from-tail lists, in O(4B) per node
// instead of a slice header.
package visibility

import (
	"fmt"
	"slices"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/des"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
)

const (
	// needBits splits the packed per-node counter word: the complement
	// countdown lives in the low bits, the contaminated-smaller-
	// neighbour countdown above it. The largest complement of any
	// arrival-fed node is 2^(d-2) (the root's T(d-1) child), so 27 need
	// bits cover every dimension up to MaxInlineDim; dirty counts at
	// most d smaller neighbours and fits the remaining 5 bits.
	needBits = 27
	needMask = 1<<needBits - 1
	dirtyOne = 1 << needBits

	// MaxInlineDim is the largest dimension the packed counters (and
	// the node ids packed into sort keys) support. Far beyond it,
	// memory is the binding constraint anyway: d=27 is a 134M-node
	// board with a 67M-agent team.
	MaxInlineDim = 27

	// posBits and nodeBits lay out a flush sort key:
	// arrivalIdx<<posBits|pos (the reference wake position) in the high
	// bits, the node id in the low bits, so one slices.Sort orders
	// ready nodes and carries their identity.
	posBits  = 6
	nodeBits = MaxInlineDim
	nodeMask = 1<<nodeBits - 1
	// noTouchKey sorts above every real wake key; it can only occur
	// for the root's initial dispatch, which flushes alone.
	noTouchKey = int64(1) << 40
)

// engine is the per-environment state of the inline path. It parks
// itself in the environment's aux slot under the strategy name, so a
// pooled environment reuses the arrays and event objects across runs
// and steady-state allocs/op stay flat.
type engine struct {
	env *strategy.Env
	d   int
	n   int

	// state[v] packs need (low) and dirty (high); zero means ready.
	state []uint32
	// head[v] / next[a] form per-node intrusive stacks of gathered
	// agent ids; -1 terminates a chain.
	head []int32
	next []int32

	// Endpoint stamps for wake-key reconstruction: fromEpoch[u] ==
	// epoch means some arrival departed u this timestep, and
	// fromIdx[u] is the index of the earliest one; toEpoch/toIdx are
	// the arrival side. Epochs make the stamps self-invalidating
	// across timesteps (and runs) without O(n) clearing.
	fromEpoch []int32
	fromIdx   []int32
	toEpoch   []int32
	toIdx     []int32

	epoch      int32 // current timestep epoch
	curTime    int64 // timestep the epoch corresponds to
	arrivals   int32 // arrivals processed this timestep
	flushEpoch int32 // epoch the flusher is already scheduled for

	pending []int32 // nodes gone ready this timestep, enabling order
	keys    []int64 // flush scratch: packed sort keys

	// flush is the engine's once-per-timestep dispatch event header; it
	// runs after every same-time arrival and fires the pending nodes in
	// reference wake order.
	flush      des.Inline
	freeFlight *flight
}

// flight is one agent in transit: scheduled at draw time, it lands the
// move when it fires. Pooled via the engine's free list; its header's
// step closure is wired once, when the pool allocates it.
type flight struct {
	des.Inline
	eng   *engine
	free  *flight
	agent int32
	to    int32
}

func (f *flight) step(s *des.Simulator) { f.eng.arrive(s, f) }

// engineFor returns the environment's parked engine, building it on
// first use, and resets it for a fresh run.
func engineFor(env *strategy.Env) *engine {
	d, n := env.H.Dim(), env.H.Order()
	if d > MaxInlineDim {
		panic(fmt.Sprintf("visibility: inline engine supports d <= %d (packed counter width); got d=%d", MaxInlineDim, d))
	}
	eng, _ := env.Aux(Name).(*engine)
	if eng == nil || eng.n != n {
		eng = &engine{
			d:         d,
			n:         n,
			state:     make([]uint32, n),
			head:      make([]int32, n),
			next:      make([]int32, combin.VisibilityAgents(d)),
			fromEpoch: make([]int32, n),
			fromIdx:   make([]int32, n),
			toEpoch:   make([]int32, n),
			toIdx:     make([]int32, n),
		}
		eng.flush.Step = eng.runFlush
		env.SetAux(Name, eng)
	}
	eng.env = env
	eng.reset()
	return eng
}

// reset re-derives every node's initial counter word: need is the
// Theorem-5 complement, dirty the number of smaller neighbours that
// start contaminated — all of them except the guarded homebase, which
// is a smaller neighbour exactly of the powers of two. The root starts
// at zero (its complement is placed, not moved in); the runner puts it
// on the pending list directly.
func (e *engine) reset() {
	for v := 1; v < e.n; v++ {
		m := bits.Msb(bits.Node(v))
		dirty := uint32(m)
		if v&(v-1) == 0 {
			dirty--
		}
		e.state[v] = uint32(heapqueue.AgentsRequired(e.d-m)) | dirty<<needBits
		e.head[v] = -1
	}
	e.state[0] = 0
	e.head[0] = -1
	// Advancing the epoch invalidates every stamp from the previous
	// run; the epoch counter never repeats within one run because each
	// run starts beyond all epochs the previous one used.
	e.epoch++
	e.curTime = 0
	e.arrivals = 0
	e.flushEpoch = e.epoch - 1
	e.pending = e.pending[:0]
}

// push adds agent a to node v's gathered stack.
func (e *engine) push(v int, a int32) {
	e.next[a] = e.head[v]
	e.head[v] = a
}

// pop removes and returns the most recently gathered agent on v.
func (e *engine) pop(v int) int32 {
	a := e.head[v]
	if a < 0 {
		panic(fmt.Sprintf("visibility: node %d dispatching without its complement", v))
	}
	e.head[v] = e.next[a]
	return a
}

// newFlight takes a flight from the pool (or allocates the pool's
// steady-state miss) and arms it.
func (e *engine) newFlight(agent, to int32) *flight {
	f := e.freeFlight
	if f == nil {
		f = &flight{eng: e}
		f.Step = f.step
	} else {
		e.freeFlight = f.free
	}
	f.agent, f.to = agent, to
	return f
}

// ready queues node v for this timestep's flush, scheduling the flush
// event itself on the first ready node of the timestep.
func (e *engine) ready(s *des.Simulator, v int) {
	e.pending = append(e.pending, int32(v))
	if e.flushEpoch != e.epoch {
		e.flushEpoch = e.epoch
		s.SpawnInline(&e.flush)
	}
}

// arrive lands one agent move: board update and trace through the
// environment, endpoint stamps for wake-key reconstruction, then the
// counter decrements the arrival implies — the destination's own
// complement, and on its first arrival the dirty counters of its
// watchers (every neighbour except the tree parent it arrived from).
func (e *engine) arrive(s *des.Simulator, f *flight) {
	a, to := int(f.agent), int(f.to)
	f.free = e.freeFlight
	e.freeFlight = f

	if now := s.Now(); now != e.curTime {
		e.curTime = now
		e.epoch++
		e.arrivals = 0
	}

	e.env.ApplyMove(a, to, strategy.RoleCleaner)
	e.push(to, int32(a))

	m := bits.Msb(bits.Node(to))
	parent := to &^ (1 << (m - 1))
	if e.fromEpoch[parent] != e.epoch {
		e.fromEpoch[parent] = e.epoch
		e.fromIdx[parent] = e.arrivals
	}
	if e.toEpoch[to] != e.epoch {
		e.toEpoch[to] = e.epoch
		e.toIdx[to] = e.arrivals
	}
	e.arrivals++

	st := e.state[to]
	first := int64(st&needMask) == heapqueue.AgentsRequired(e.d-m)
	st--
	e.state[to] = st
	if st == 0 {
		e.ready(s, to)
	}
	if first {
		for i := 0; i < e.d; i++ {
			w := to ^ 1<<i
			if w == parent {
				continue
			}
			wst := e.state[w] - dirtyOne
			e.state[w] = wst
			if wst == 0 {
				e.ready(s, w)
			}
		}
	}
}

// wakeKey reconstructs the queue position at which the reference path
// would wake ready node v this timestep: the earliest same-time
// arrival whose fire sequence touches v, and the position within that
// sequence (source's neighbours by label first, then the
// destination's). Every enabling event is an arrival adjacent to v,
// so a ready node always has at least one touch — except the root's
// initial dispatch, which happens before any arrival and flushes
// alone under noTouchKey.
func (e *engine) wakeKey(v int) int64 {
	best := noTouchKey
	if e.toEpoch[v] == e.epoch {
		// v's own arrivals touch it from the source side: the source
		// is v's tree parent, whose neighbour loop reaches v at the
		// position of v's most significant bit.
		if k := int64(e.toIdx[v])<<posBits | int64(bits.Msb(bits.Node(v))-1); k < best {
			best = k
		}
	}
	for i := 0; i < e.d; i++ {
		x := v ^ 1<<i
		if e.fromEpoch[x] == e.epoch {
			if k := int64(e.fromIdx[x])<<posBits | int64(i); k < best {
				best = k
			}
		}
		if x != v && e.toEpoch[x] == e.epoch {
			if k := int64(e.toIdx[x])<<posBits | int64(e.d+i); k < best {
				best = k
			}
		}
	}
	return best
}

// runFlush fires every node that went ready this timestep, in the
// reference path's wake order.
func (e *engine) runFlush(s *des.Simulator) {
	if len(e.pending) == 1 {
		v := int(e.pending[0])
		e.pending = e.pending[:0]
		e.fire(s, v)
		return
	}
	e.keys = e.keys[:0]
	for _, v := range e.pending {
		e.keys = append(e.keys, e.wakeKey(int(v))<<nodeBits|int64(v))
	}
	e.pending = e.pending[:0]
	slices.Sort(e.keys)
	for _, k := range e.keys {
		e.fire(s, int(k&nodeMask))
	}
}

// fire runs a ready node: a leaf terminates its guard in place; an
// internal node draws each departing mover's latency in child order
// (2^(i-1) agents to the T(i) child, one to the T(0) child — the
// Theorem-5 dispatch plan) and schedules the landings.
func (e *engine) fire(s *des.Simulator, v int) {
	m := bits.Msb(bits.Node(v))
	if e.d-m == 0 {
		e.env.Terminate(int(e.pop(v)))
		return
	}
	for i := m; i < e.d; i++ {
		child := v | 1<<i
		for j := heapqueue.AgentsRequired(e.d - i - 1); j > 0; j-- {
			a := e.pop(v)
			lat := e.env.MoveLatency(int(a), v, child, strategy.RoleCleaner)
			s.AfterInline(lat, &e.newFlight(a, int32(child)).Inline)
		}
	}
	if e.head[v] >= 0 {
		panic(fmt.Sprintf("visibility: node %d kept agents after dispatch", v))
	}
}

// RunEnvInline executes the visibility strategy on the event-driven
// engine: no per-node goroutines, O(moves) events, bounded memory —
// the path that takes the algorithm to d=20 megannode boards. It is
// what RunEnv routes to by default.
func RunEnvInline(env *strategy.Env) metrics.Result {
	d := env.H.Dim()
	team := int(combin.VisibilityAgents(d))
	env.B.Reserve(team)
	eng := engineFor(env)
	for i := 0; i < team; i++ {
		eng.push(0, int32(env.Place(strategy.RoleCleaner)))
	}
	if d > 0 {
		eng.ready(env.Sim, 0)
	}
	env.Sim.Run()
	for id := 0; id < team; id++ {
		if _, active := env.B.Position(id); active {
			env.Terminate(id)
		}
	}
	return env.Result(Name)
}
