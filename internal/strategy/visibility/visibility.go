// Package visibility implements Algorithm CLEAN WITH VISIBILITY
// (Section 4 of the paper): agents can see the state of neighbouring
// nodes and act on a purely local rule, with no coordinator.
//
// Rule for the agents on node x of type T(k):
//
//   - While fewer than 2^(k-1) agents are on x (1 for k <= 1), wait.
//   - Once the complement is present and every smaller neighbour of x
//     is clean or guarded: send one agent to the bigger neighbour of
//     type T(0) and 2^(i-1) agents to the bigger neighbour of type
//     T(i) for 0 < i < k. Leaves terminate.
//
// The waiting condition is monotone (agent counts only grow until
// dispatch; smaller neighbours only progress toward clean/guarded), so
// the strategy is deadlock-free under arbitrary asynchrony; the
// robustness tests drive it with adversarial latencies.
package visibility

import (
	"fmt"
	"os"

	"hypersearch/internal/board"
	"hypersearch/internal/combin"
	"hypersearch/internal/des"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
)

// Name identifies the strategy in results and registries.
const Name = "visibility"

// LegacyEnvVar selects the goroutine-per-node reference path when set
// to any non-empty value. The two paths are byte-identical (traces,
// metrics, clean orders — see TestInlineMatchesLegacy); the reference
// path costs 2^d goroutines and exists as the executable statement of
// the algorithm and as the identity oracle for the inline engine.
const LegacyEnvVar = "HYPERSEARCH_VISIBILITY_LEGACY"

// Run executes the visibility strategy on H_d with the Theorem-5 team
// of n/2 agents and returns the run summary and environment.
func Run(d int, opts strategy.Options) (metrics.Result, *strategy.Env) {
	env := strategy.NewEnv(d, opts)
	return RunEnv(env), env
}

// RunEnv executes the visibility strategy on an existing (fresh or
// reset) environment; pooled sweeps use it to reuse environments. It
// runs the event-driven inline engine (RunEnvInline) unless
// LegacyEnvVar requests the goroutine-per-node reference path.
func RunEnv(env *strategy.Env) metrics.Result {
	if os.Getenv(LegacyEnvVar) != "" {
		return RunEnvLegacy(env)
	}
	return RunEnvInline(env)
}

// RunEnvLegacy executes the goroutine-per-node reference path: one DES
// process per node awaiting the dispatch condition on its node signal.
// O(2^d) goroutines and O(n·wakes) work bound it to small dimensions;
// it is retained as the identity oracle the inline engine is tested
// against.
func RunEnvLegacy(env *strategy.Env) metrics.Result {
	d := env.H.Dim()
	team := int(combin.VisibilityAgents(d))
	at := env.NodeLists()
	for i := 0; i < team; i++ {
		at[0] = append(at[0], env.Place(strategy.RoleCleaner))
	}

	if d > 0 {
		for v := 0; v < env.H.Order(); v++ {
			spawnNode(env, at, v)
		}
	}
	env.Sim.Run()

	for id := 0; id < team; id++ {
		if _, active := env.B.Position(id); active {
			env.Terminate(id)
		}
	}
	return env.Result(Name)
}

// spawnNode starts the local rule for node v: one process per node,
// standing in for the identical local programs of the agents gathered
// there (which one moves where is settled on the node's whiteboard).
func spawnNode(env *strategy.Env, at [][]int, v int) {
	k := env.BT.Type(v)
	required := int(heapqueue.AgentsRequired(k))
	env.Sim.Spawn("node", func(p *des.Process) {
		env.AwaitNode(p, v, func() bool {
			return len(at[v]) >= required && smallerNeighboursReady(env, v)
		})
		if len(at[v]) != required {
			panic(fmt.Sprintf("visibility: node %d gathered %d agents, want %d", v, len(at[v]), required))
		}
		if k == 0 {
			// Leaf: the single agent terminates in place.
			env.Terminate(at[v][0])
			at[v] = nil
			return
		}
		dispatch(env, at, v)
	})
}

// smallerNeighboursReady implements the visibility read: every smaller
// neighbour of v is clean or guarded.
func smallerNeighboursReady(env *strategy.Env, v int) bool {
	ready := true
	env.H.VisitSmallerNeighbours(v, func(w int) bool {
		if env.B.StateOf(w) == board.Contaminated {
			ready = false
			return false
		}
		return true
	})
	return ready
}

// dispatch sends the gathered complement onward: plan[i] agents to the
// i-th broadcast-tree child. Each agent moves as its own concurrent
// process (asynchronous arrivals).
func dispatch(env *strategy.Env, at [][]int, v int) {
	children := env.BT.Children(v)
	plan := heapqueue.DispatchPlan(env.BT.Type(v))
	for i, child := range children {
		for j := int64(0); j < plan[i]; j++ {
			agents := at[v]
			a := agents[len(agents)-1]
			at[v] = agents[:len(agents)-1]
			child := child
			env.Sim.Spawn("mover", func(p *des.Process) {
				env.Move(p, a, child, strategy.RoleCleaner)
				at[child] = append(at[child], a)
				env.Sim.Fire(env.Signal(child))
			})
		}
	}
	if len(at[v]) != 0 {
		panic(fmt.Sprintf("visibility: node %d kept %d agents after dispatch", v, len(at[v])))
	}
}
