package synchronous

import (
	"testing"

	"hypersearch/internal/combin"
	"hypersearch/internal/strategy"
)

func TestSynchronousSmallDimensionsFullChecks(t *testing.T) {
	for d := 0; d <= 8; d++ {
		r, _ := Run(d, strategy.Options{Contiguity: strategy.CheckEveryMove})
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("d=%d: %s", d, r.String())
		}
		// A passing run certifies the Section 5 claim: dispatching at
		// t = m(x) with no visibility never recontaminates.
		if r.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, r.Recontaminations)
		}
	}
}

func TestSynchronousMatchesVisibilityCosts(t *testing.T) {
	// Same agents (n/2), same time (d), same moves as the visibility
	// strategy — only the model differs.
	for d := 1; d <= 9; d++ {
		r, _ := Run(d, strategy.Options{})
		if int64(r.TeamSize) != combin.VisibilityAgents(d) {
			t.Errorf("d=%d: team %d", d, r.TeamSize)
		}
		if r.Makespan != combin.VisibilityTime(d) {
			t.Errorf("d=%d: makespan %d", d, r.Makespan)
		}
		if r.TotalMoves != combin.VisibilityMoves(d) {
			t.Errorf("d=%d: moves %d", d, r.TotalMoves)
		}
	}
}

func TestSynchronousForcesUnitLatency(t *testing.T) {
	// The variant is undefined for asynchronous systems; Run overrides
	// the latency model rather than miscount rounds.
	r, _ := Run(5, strategy.Options{Latency: strategy.NewAdversarial(3, 9)})
	if !r.Ok() || r.Makespan != 5 {
		t.Errorf("latency override failed: %s", r.String())
	}
}
