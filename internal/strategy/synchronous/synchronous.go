// Package synchronous implements the synchronous variant of Section 5
// ("Observations on Synchronicity"): agents move in lockstep rounds
// and start simultaneously, so no visibility is needed. The agents on
// node x move exactly at global time t = m(x) (the position of x's
// most significant bit); at that time all smaller neighbours of x are
// implicitly known to be clean or guarded.
//
// The implementation asserts, rather than assumes, the implicit-safety
// claim: at dispatch time the node must hold its full complement, and
// the run must finish with zero recontaminations — so every passing
// run is a constructive check of the Section 5 observation.
package synchronous

import (
	"fmt"

	"hypersearch/internal/combin"
	"hypersearch/internal/des"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
)

// Name identifies the strategy in results and registries.
const Name = "synchronous"

// Run executes the synchronous variant on H_d. The latency model is
// forced to unit latency: the variant is only defined for synchronous
// systems.
func Run(d int, opts strategy.Options) (metrics.Result, *strategy.Env) {
	opts.Latency = strategy.Unit{}
	env := strategy.NewEnv(d, opts)
	return RunEnv(env), env
}

// RunEnv executes the synchronous variant on an existing environment,
// whose options must already force unit latency (the variant is only
// defined for synchronous systems; Run and core.Run arrange this).
func RunEnv(env *strategy.Env) metrics.Result {
	d := env.H.Dim()
	team := int(combin.VisibilityAgents(d))
	at := env.NodeLists()
	for i := 0; i < team; i++ {
		at[0] = append(at[0], env.Place(strategy.RoleCleaner))
	}

	if d > 0 {
		for v := 0; v < env.H.Order(); v++ {
			spawnNode(env, at, v)
		}
	}
	env.Sim.Run()

	for id := 0; id < team; id++ {
		if _, active := env.B.Position(id); active {
			env.Terminate(id)
		}
	}
	return env.Result(Name)
}

func spawnNode(env *strategy.Env, at [][]int, v int) {
	k := env.BT.Type(v)
	required := int(heapqueue.AgentsRequired(k))
	moveAt := int64(env.H.Class(v)) // t = m(x)
	env.Sim.Spawn("node", func(p *des.Process) {
		p.Delay(moveAt)
		// Re-yield once so that arrivals scheduled for this same round
		// (from t = m(x)-1) apply first: in continuous time an arrival
		// "at t" precedes the dispatch "at t".
		p.Delay(0)
		// No visibility read: the schedule itself must guarantee the
		// complement has arrived. Assert it.
		if len(at[v]) != required {
			panic(fmt.Sprintf("synchronous: node %d holds %d agents at t=%d, want %d",
				v, len(at[v]), p.Now(), required))
		}
		if k == 0 {
			env.Terminate(at[v][0])
			at[v] = nil
			return
		}
		children := env.BT.Children(v)
		plan := heapqueue.DispatchPlan(k)
		for i, child := range children {
			for j := int64(0); j < plan[i]; j++ {
				agents := at[v]
				a := agents[len(agents)-1]
				at[v] = agents[:len(agents)-1]
				child := child
				env.Sim.Spawn("mover", func(q *des.Process) {
					env.Move(q, a, child, strategy.RoleCleaner)
					at[child] = append(at[child], a)
				})
			}
		}
	})
}
