// Package meshsweep is the classic optimal contiguous search for
// rectangular meshes: a rolling rank of guards, one per row of the
// short side, sweeping across the long side. The team is exactly
// min(rows, cols) — which the exhaustive searcher confirms is optimal
// on small meshes — against the generic level sweep's two diagonal
// levels.
//
// Deployment never recontaminates: guards enter column 0 deepest-first
// through already-guarded cells, then the rank advances one cell at a
// time (a guard's departure exposes a cell whose row neighbours are
// still guarded and whose left neighbour is clean).
package meshsweep

import (
	"fmt"

	"hypersearch/internal/board"
	"hypersearch/internal/metrics"
	"hypersearch/internal/topologies"
	"hypersearch/internal/trace"
)

// Name identifies the strategy in results.
const Name = "mesh-sweep"

// Team returns the exact team the sweep uses: min(rows, cols).
func Team(rows, cols int) int {
	if rows < cols {
		return rows
	}
	return cols
}

// Run executes the sweep on a rows x cols mesh with the homebase at
// cell (0, 0). It returns the result, the final board, and the trace.
func Run(rows, cols int) (metrics.Result, *board.Board, *trace.Log) {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("meshsweep: invalid mesh %dx%d", rows, cols))
	}
	// Sweep across the longer side with one guard per line of the
	// shorter side. Internally normalize to rows <= cols by addressing
	// the (possibly transposed) sweep coordinates onto the real mesh.
	realRows, realCols := rows, cols
	transposed := rows > cols
	if transposed {
		rows, cols = cols, rows
	}
	at := func(r, c int) int {
		if transposed {
			return c*realCols + r
		}
		return r*realCols + c
	}
	realG := board.New(topologies.Mesh(realRows, realCols), at(0, 0))

	ex := &executor{b: realG, log: &trace.Log{}}
	agents := make([]int, rows)
	for i := range agents {
		agents[i] = ex.place(at(0, 0))
	}

	// Deploy down column 0, shallowest-first: each later agent
	// transits only already-guarded cells, so nothing is exposed.
	for r := 1; r < rows; r++ {
		a := agents[r]
		for rr := 1; rr <= r; rr++ {
			ex.move(a, at(rr, 0))
		}
	}
	// Advance the rank column by column.
	for c := 1; c < cols; c++ {
		for r := 0; r < rows; r++ {
			ex.move(agents[r], at(r, c))
		}
	}
	for _, a := range agents {
		ex.terminate(a)
	}

	return metrics.Result{
		Strategy:         Name,
		Nodes:            realG.Graph().Order(),
		TeamSize:         rows,
		PeakAway:         realG.PeakAway(),
		AgentMoves:       realG.Moves(),
		TotalMoves:       realG.Moves(),
		Makespan:         ex.clock,
		Recontaminations: realG.Recontaminations(),
		MonotoneOK:       realG.MonotoneViolations() == 0,
		ContiguousOK:     realG.Contiguous(),
		Captured:         realG.AllClean(),
	}, realG, ex.log
}

type executor struct {
	b     *board.Board
	log   *trace.Log
	clock int64
}

func (ex *executor) place(home int) int {
	id := ex.b.Place(ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Place, Agent: id, To: home, Role: "cleaner"})
	return id
}

func (ex *executor) move(a, to int) {
	ex.clock++
	from, _ := ex.b.Position(a)
	ex.b.Move(a, to, ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Move, Agent: a, From: from, To: to, Role: "cleaner"})
}

func (ex *executor) terminate(a int) {
	ex.b.Terminate(a, ex.clock)
	ex.log.Append(trace.Event{Time: ex.clock, Kind: trace.Terminate, Agent: a})
}
