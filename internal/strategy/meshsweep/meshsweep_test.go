package meshsweep

import (
	"testing"

	"hypersearch/internal/strategy/levelsweep"
	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/topologies"
)

func TestSweepVariousShapes(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 8}, {8, 1}, {2, 2}, {3, 5}, {5, 3}, {4, 4}, {6, 9}, {9, 6}}
	for _, s := range shapes {
		rows, cols := s[0], s[1]
		r, b, log := Run(rows, cols)
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("%dx%d: %s", rows, cols, r.String())
		}
		if r.Recontaminations != 0 {
			t.Errorf("%dx%d: %d recontaminations", rows, cols, r.Recontaminations)
		}
		if r.TeamSize != Team(rows, cols) {
			t.Errorf("%dx%d: team %d, want %d", rows, cols, r.TeamSize, Team(rows, cols))
		}
		if b.Agents() != r.TeamSize {
			t.Errorf("%dx%d: board team mismatch", rows, cols)
		}
		// Replay on the same mesh must agree.
		rb, err := log.Replay(topologies.Mesh(rows, cols), 0)
		if err != nil {
			t.Fatalf("%dx%d: %v", rows, cols, err)
		}
		if !rb.AllClean() || rb.MonotoneViolations() != 0 {
			t.Errorf("%dx%d: replay differs", rows, cols)
		}
	}
}

func TestTeamIsMinSide(t *testing.T) {
	if Team(3, 7) != 3 || Team(7, 3) != 3 || Team(5, 5) != 5 {
		t.Error("Team wrong")
	}
}

func TestSweepMatchesOptimalOnSmallMeshes(t *testing.T) {
	shapes := [][2]int{{2, 3}, {3, 3}, {3, 4}, {4, 4}, {2, 6}}
	for _, s := range shapes {
		rows, cols := s[0], s[1]
		g := topologies.Mesh(rows, cols)
		a := optimal.MinimalTeam(g, 0, 8, optimal.Limits{})
		if !a.Feasible {
			t.Fatalf("%dx%d: no optimum found", rows, cols)
		}
		if Team(rows, cols) != a.Team {
			t.Errorf("%dx%d: sweep team %d, optimum %d", rows, cols, Team(rows, cols), a.Team)
		}
	}
}

func TestSweepBeatsGenericLevelSweep(t *testing.T) {
	// The dedicated sweep must never use more agents than the generic
	// BFS-level strategy on the same mesh.
	shapes := [][2]int{{4, 4}, {4, 8}, {6, 6}, {3, 9}}
	for _, s := range shapes {
		rows, cols := s[0], s[1]
		generic := levelsweep.Team(topologies.Mesh(rows, cols), 0)
		if Team(rows, cols) > generic {
			t.Errorf("%dx%d: dedicated %d > generic %d", rows, cols, Team(rows, cols), generic)
		}
	}
}

func TestSweepMoveCount(t *testing.T) {
	// Deployment: sum_{r=1}^{rows-1} r; advance: rows * (cols - 1),
	// in normalized (rows <= cols) orientation.
	r, _, _ := Run(3, 5)
	want := int64(1+2) + int64(3*4)
	if r.TotalMoves != want {
		t.Errorf("3x5 moves = %d, want %d", r.TotalMoves, want)
	}
	// Transposed input gives identical costs.
	rt, _, _ := Run(5, 3)
	if rt.TotalMoves != want || rt.TeamSize != r.TeamSize {
		t.Error("transposed sweep differs")
	}
}

func TestSweepRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0x3 accepted")
		}
	}()
	Run(0, 3)
}
