// Package trace records search executions as structured event logs
// that can be exported as JSON, replayed against a fresh board for
// verification, and rendered by the figure package.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
)

// Kind labels an event.
type Kind string

// Event kinds. Place and Clone create agents; Move traverses one edge;
// Terminate retires an agent in place.
const (
	Place     Kind = "place"
	Move      Kind = "move"
	Clone     Kind = "clone"
	Terminate Kind = "terminate"
)

// Event is one recorded action.
type Event struct {
	Seq   int    `json:"seq"`
	Time  int64  `json:"time"`
	Kind  Kind   `json:"kind"`
	Agent int    `json:"agent"`
	From  int    `json:"from"` // Move: source; Clone: parent agent id
	To    int    `json:"to"`   // Move/Clone: node; Place: homebase
	Role  string `json:"role,omitempty"`
}

// Sink receives trace events as a run emits them. Log is the
// in-memory Sink; Stream writes events through without retaining
// them, which is what megannode runs use — their full logs would not
// fit in memory. Sinks are called from the single-threaded DES
// kernel, so implementations need no locking.
type Sink interface {
	Append(Event)
}

// Log is an append-only event log. The zero value is ready to use.
type Log struct {
	events []Event
}

// Append adds an event, assigning its sequence number.
func (l *Log) Append(e Event) {
	e.Seq = len(l.events)
	l.events = append(l.events, e)
}

// Reset empties the log, keeping the backing array for reuse by pooled
// environments.
func (l *Log) Reset() { l.events = l.events[:0] }

// Cap returns the capacity of the backing event array. Reset keeps
// it, and environments stash retired logs across Record flips, so a
// warmed log never regrows for same-size runs.
func (l *Log) Cap() int { return cap(l.events) }

// Events returns the recorded events; callers must not modify them.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Moves returns the number of Move events, optionally filtered by role
// (empty role matches every move).
func (l *Log) Moves(role string) int64 {
	var n int64
	for _, e := range l.events {
		if e.Kind == Move && (role == "" || e.Role == role) {
			n++
		}
	}
	return n
}

// Makespan returns the largest event time, or 0 for an empty log.
func (l *Log) Makespan() int64 {
	var best int64
	for _, e := range l.events {
		if e.Time > best {
			best = e.Time
		}
	}
	return best
}

// WriteJSON streams the log as a JSON array.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l.events)
}

// ReadJSON parses a log previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Log, error) {
	var events []Event
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("trace: decoding log: %w", err)
	}
	return &Log{events: events}, nil
}

// Stream is the memory-bounded Sink: each event is encoded as one
// JSON line (JSONL) and written through immediately, so a megannode
// run's trace costs O(1) memory no matter how many moves it makes.
// Sequence numbers are assigned in arrival order, exactly as Log
// would. The first write error is latched and reported by Err;
// subsequent events are dropped rather than panicking mid-simulation.
type Stream struct {
	enc *json.Encoder
	seq int
	err error
}

// NewStream returns a Stream writing JSONL events to w. The caller
// owns w's lifecycle (buffering, flushing, closing).
func NewStream(w io.Writer) *Stream { return &Stream{enc: json.NewEncoder(w)} }

// Append implements Sink.
func (s *Stream) Append(e Event) {
	if s.err != nil {
		return
	}
	e.Seq = s.seq
	s.seq++
	s.err = s.enc.Encode(e)
}

// Len returns the number of events streamed so far.
func (s *Stream) Len() int { return s.seq }

// Err returns the first write error, or nil. Check it after the run;
// events following the error were dropped.
func (s *Stream) Err() error { return s.err }

// ReadJSONL parses a stream previously written by Stream back into an
// in-memory Log (for replay or figure rendering of runs small enough
// to load).
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding JSONL stream: %w", err)
		}
		events = append(events, e)
	}
	return &Log{events: events}, nil
}

// Replay applies the log to a fresh board over g with the given
// homebase and returns the final board. Events must appear in
// non-decreasing time order (as recorders emit them); replay panics on
// the same rule violations the live run would have hit, making it a
// strong consistency check for recorded runs.
func (l *Log) Replay(g graph.Graph, home int) (*board.Board, error) {
	b := board.New(g, home)
	ids := map[int]int{} // recorded agent id -> replay agent id
	for _, e := range l.events {
		switch e.Kind {
		case Place:
			if _, ok := ids[e.Agent]; ok {
				return nil, fmt.Errorf("trace: place reuses agent id %d (event %d)", e.Agent, e.Seq)
			}
			ids[e.Agent] = b.Place(e.Time)
		case Clone:
			if _, ok := ids[e.Agent]; ok {
				return nil, fmt.Errorf("trace: clone reuses agent id %d (event %d)", e.Agent, e.Seq)
			}
			ids[e.Agent] = b.Clone(e.To, e.Time)
		case Move:
			id, ok := ids[e.Agent]
			if !ok {
				return nil, fmt.Errorf("trace: move of unknown agent %d (event %d)", e.Agent, e.Seq)
			}
			b.Move(id, e.To, e.Time)
		case Terminate:
			id, ok := ids[e.Agent]
			if !ok {
				return nil, fmt.Errorf("trace: terminate of unknown agent %d (event %d)", e.Agent, e.Seq)
			}
			b.Terminate(id, e.Time)
		default:
			return nil, fmt.Errorf("trace: unknown event kind %q (event %d)", e.Kind, e.Seq)
		}
	}
	return b, nil
}
