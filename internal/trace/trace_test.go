package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
)

func pathGraph(n int) graph.Graph {
	g := graph.NewAdjacency(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// record builds a simple sweep log: place agent 0, walk 0->1->2->3,
// terminate.
func sweepLog() *Log {
	l := &Log{}
	l.Append(Event{Time: 0, Kind: Place, Agent: 0, To: 0, Role: "cleaner"})
	for v := 1; v <= 3; v++ {
		l.Append(Event{Time: int64(v), Kind: Move, Agent: 0, From: v - 1, To: v, Role: "cleaner"})
	}
	l.Append(Event{Time: 4, Kind: Terminate, Agent: 0})
	return l
}

func TestAppendAssignsSeq(t *testing.T) {
	l := sweepLog()
	for i, e := range l.Events() {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if l.Len() != 5 {
		t.Errorf("len = %d", l.Len())
	}
}

func TestMovesAndMakespan(t *testing.T) {
	l := sweepLog()
	if l.Moves("") != 3 || l.Moves("cleaner") != 3 || l.Moves("sync") != 0 {
		t.Error("move counting wrong")
	}
	if l.Makespan() != 4 {
		t.Errorf("makespan = %d", l.Makespan())
	}
	empty := &Log{}
	if empty.Makespan() != 0 {
		t.Error("empty makespan should be 0")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := sweepLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip length %d", back.Len())
	}
	for i, e := range back.Events() {
		if e != l.Events()[i] {
			t.Errorf("event %d differs: %+v vs %+v", i, e, l.Events()[i])
		}
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReplaySweep(t *testing.T) {
	l := sweepLog()
	b, err := l.Replay(pathGraph(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AllClean() || b.Moves() != 3 || b.MonotoneViolations() != 0 {
		t.Error("replayed sweep wrong")
	}
}

func TestReplayClone(t *testing.T) {
	l := &Log{}
	l.Append(Event{Time: 0, Kind: Place, Agent: 0, To: 0})
	l.Append(Event{Time: 0, Kind: Clone, Agent: 1, From: 0, To: 0})
	l.Append(Event{Time: 1, Kind: Move, Agent: 0, From: 0, To: 1})
	l.Append(Event{Time: 2, Kind: Move, Agent: 1, From: 0, To: 1})
	b, err := l.Replay(pathGraph(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Agents() != 2 || b.AgentsOn(1) != 2 {
		t.Error("clone replay wrong")
	}
}

func TestReplayErrors(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"unknown kind", []Event{{Kind: Kind("jump"), Agent: 0}}},
		{"move unknown agent", []Event{{Kind: Move, Agent: 3, To: 1}}},
		{"terminate unknown agent", []Event{{Kind: Terminate, Agent: 3}}},
		{"place reuse", []Event{{Kind: Place, Agent: 0, To: 0}, {Kind: Place, Agent: 0, To: 0}}},
		{"clone reuse", []Event{{Kind: Place, Agent: 0, To: 0}, {Kind: Clone, Agent: 0, To: 0}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := &Log{}
			for _, e := range c.events {
				l.Append(e)
			}
			if _, err := l.Replay(pathGraph(3), 0); err == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
}

func TestReplayDetectsIllegalMove(t *testing.T) {
	l := &Log{}
	l.Append(Event{Time: 0, Kind: Place, Agent: 0, To: 0})
	l.Append(Event{Time: 1, Kind: Move, Agent: 0, From: 0, To: 2}) // not an edge
	defer func() {
		if recover() == nil {
			t.Error("illegal move replayed silently")
		}
	}()
	_, _ = l.Replay(pathGraph(3), 0)
}

var _ = board.Clean // keep the board import tied to replay semantics

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n == 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewStream(&buf)
	for _, e := range sweepLog().Events() {
		e.Seq = 99 // the stream must assign its own sequence numbers
		s.Append(e)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if s.Len() != 5 {
		t.Fatalf("streamed %d events, want 5", s.Len())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sweepLog()
	if got.Len() != want.Len() {
		t.Fatalf("round trip has %d events, want %d", got.Len(), want.Len())
	}
	for i, e := range got.Events() {
		if e != want.Events()[i] {
			t.Fatalf("event %d: %+v, want %+v", i, e, want.Events()[i])
		}
	}
	// A streamed log replays like an in-memory one.
	b, err := got.Replay(pathGraph(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AllClean() {
		t.Error("replayed streamed log did not clean the path")
	}
}

func TestStreamLatchesFirstError(t *testing.T) {
	s := NewStream(&errWriter{n: 2})
	for _, e := range sweepLog().Events() {
		s.Append(e)
	}
	if s.Err() == nil {
		t.Fatal("stream swallowed the write error")
	}
	// Events after the error are dropped, not re-attempted: Len counts
	// only events the stream accepted.
	if s.Len() > 3 {
		t.Errorf("stream kept counting after the error: len=%d", s.Len())
	}
}

func TestReadJSONLError(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":0}\nnot json\n")); err == nil {
		t.Error("malformed JSONL line did not error")
	}
}
