package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON asserts the trace decoder never panics and that any log
// it accepts either replays or fails with a clean error (board rule
// violations surface as panics only for structurally valid moves the
// recorder itself would have rejected, so replay is wrapped).
func FuzzReadJSON(f *testing.F) {
	var good bytes.Buffer
	l := &Log{}
	l.Append(Event{Time: 0, Kind: Place, Agent: 0, To: 0})
	l.Append(Event{Time: 1, Kind: Move, Agent: 0, From: 0, To: 1})
	if err := l.WriteJSON(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("[]")
	f.Add(`[{"kind":"move","agent":3}]`)
	f.Add("not json")
	f.Add(`[{"kind":"place","agent":0,"to":9999}]`)

	f.Fuzz(func(t *testing.T, data string) {
		log, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		g := pathGraph(4)
		func() {
			// Board rule violations (non-edges, bad nodes, time going
			// backwards) panic by design; a fuzzed log may contain
			// them. What must never happen is a panic from the trace
			// layer itself on ids it should have validated.
			defer func() { _ = recover() }()
			_, _ = log.Replay(g, 0)
		}()
	})
}
