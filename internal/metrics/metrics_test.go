package metrics

import (
	"strings"
	"testing"
)

func sample() Result {
	return Result{
		Strategy: "visibility", Dim: 4, Nodes: 16,
		TeamSize: 8, PeakAway: 8, AgentMoves: 40, TotalMoves: 40,
		Makespan: 4, MonotoneOK: true, ContiguousOK: true, Captured: true,
	}
}

func TestResultString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"visibility", "d=4", "agents=8", "time=4", "captured=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestResultOk(t *testing.T) {
	r := sample()
	if !r.Ok() {
		t.Error("healthy result not Ok")
	}
	r.Captured = false
	if r.Ok() {
		t.Error("uncaptured result Ok")
	}
	r = sample()
	r.MonotoneOK = false
	if r.Ok() {
		t.Error("non-monotone result Ok")
	}
	r = sample()
	r.ContiguousOK = false
	if r.Ok() {
		t.Error("non-contiguous result Ok")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("d", "agents", "ratio")
	tb.AddRow(4, 8, 1.0)
	tb.AddRow(10, 252, 0.33333333)
	md := tb.Markdown()
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 4 {
		t.Fatalf("markdown lines = %d:\n%s", len(lines), md)
	}
	if !strings.HasPrefix(lines[0], "| d ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	if !strings.Contains(md, "0.333") {
		t.Errorf("float formatting wrong:\n%s", md)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	// All rows have equal width.
	w := len(lines[0])
	for _, l := range lines {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", md)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	md := tb.Markdown()
	if !strings.Contains(md, "only") {
		t.Error("short row dropped")
	}
}
