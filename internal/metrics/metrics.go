// Package metrics holds the result records produced by strategy runs
// and small table/series helpers the experiment harness uses to render
// paper-versus-measured comparisons as aligned markdown tables.
package metrics

import (
	"fmt"
	"strings"
)

// Result is the cost summary of one complete search run.
type Result struct {
	Strategy string // strategy name
	Dim      int    // hypercube dimension d
	Nodes    int    // n = 2^d

	TeamSize   int   // agents provisioned (placed or cloned)
	PeakAway   int   // max agents simultaneously away from the homebase
	AgentMoves int64 // moves by cleaning agents
	SyncMoves  int64 // moves by the synchronizer (0 for local strategies)
	TotalMoves int64 // all moves
	Makespan   int64 // ideal completion time (unit edge latency)

	Recontaminations int64 // contamination closure re-growth events
	MonotoneOK       bool  // no stably-clean node was ever recontaminated
	ContiguousOK     bool  // decontaminated set stayed connected (when checked)
	Captured         bool  // contaminated set empty at the end
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s d=%d n=%d agents=%d peak=%d moves=%d (agents %d + sync %d) time=%d captured=%v monotone=%v contiguous=%v",
		r.Strategy, r.Dim, r.Nodes, r.TeamSize, r.PeakAway, r.TotalMoves,
		r.AgentMoves, r.SyncMoves, r.Makespan, r.Captured, r.MonotoneOK, r.ContiguousOK)
}

// Ok reports whether the run satisfied every correctness requirement
// of the contiguous monotone model.
func (r Result) Ok() bool {
	return r.Captured && r.MonotoneOK && r.ContiguousOK
}

// Table accumulates rows for an aligned markdown table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are Sprint-ed.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Markdown renders the table as GitHub-flavoured markdown with aligned
// columns.
func (t *Table) Markdown() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for i := range t.header {
		b.WriteString(strings.Repeat("-", widths[i]+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }
