package envpool

import (
	"bytes"
	"testing"

	"hypersearch/internal/core"
	"hypersearch/internal/des"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy"
)

// runSpec executes spec against src and returns the result plus the
// trace serialized to JSON (specs set Record).
func runSpec(t *testing.T, spec core.Spec, src strategy.Source) (metrics.Result, []byte) {
	t.Helper()
	res, env, err := core.RunWith(spec, src)
	if err != nil {
		t.Fatalf("RunWith(%+v): %v", spec, err)
	}
	var buf bytes.Buffer
	if err := env.Log().WriteJSON(&buf); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	src.Release(env)
	return res, buf.Bytes()
}

// TestPooledRunsMatchFresh: for every strategy, dimension 2..8 and
// both latency models, a pooled environment on its second (reused) run
// produces a result and trace byte-identical to a fresh-environment
// run.
func TestPooledRunsMatchFresh(t *testing.T) {
	for _, name := range core.Strategies() {
		for d := 2; d <= 8; d++ {
			for _, adv := range []int64{0, 9} {
				if testing.Short() && d > 5 {
					continue
				}
				spec := core.Spec{
					Strategy:           name,
					Dim:                d,
					AdversarialLatency: adv,
					Seed:               42,
					Record:             true,
				}
				wantRes, wantTrace := runSpec(t, spec, strategy.Fresh{})

				pool := New()
				runSpec(t, spec, pool) // populate: first pooled run
				gotRes, gotTrace := runSpec(t, spec, pool)
				if gotRes != wantRes {
					t.Errorf("%s d=%d adv=%d: reused result %+v, fresh %+v", name, d, adv, gotRes, wantRes)
				}
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Errorf("%s d=%d adv=%d: reused trace differs from fresh", name, d, adv)
				}
			}
		}
	}
}

// TestPooledRunsAcrossOptionChanges: one environment reused across
// different latency models and record settings stays correct — Reset
// fully installs the new options.
func TestPooledRunsAcrossOptionChanges(t *testing.T) {
	pool := New()
	specs := []core.Spec{
		{Strategy: core.Clean, Dim: 5, Record: true},
		{Strategy: core.Clean, Dim: 5, AdversarialLatency: 7, Seed: 3, Record: true},
		{Strategy: core.Visibility, Dim: 5, Record: true},
		{Strategy: core.Clean, Dim: 5, Record: true},
	}
	for _, spec := range specs {
		want, wantTrace := runSpec(t, spec, strategy.Fresh{})
		got, gotTrace := runSpec(t, spec, pool)
		if got != want {
			t.Errorf("%+v: pooled %+v, fresh %+v", spec, got, want)
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("%+v: pooled trace differs", spec)
		}
	}
}

// TestTopologySharedAcrossEnvs: environments of the same dimension —
// even from different pools — share one hypercube and broadcast tree.
func TestTopologySharedAcrossEnvs(t *testing.T) {
	p1, p2 := New(), New()
	e1 := p1.Acquire(6, strategy.Options{})
	e2 := p2.Acquire(6, strategy.Options{})
	if e1 == e2 {
		t.Fatal("two live acquires returned the same environment")
	}
	if e1.H != e2.H || e1.BT != e2.BT {
		t.Error("environments of one dimension should share topology")
	}
	h, bt := Topology(6)
	if e1.H != h || e1.BT != bt {
		t.Error("environment topology differs from the shared cache")
	}
}

// TestAcquireReusesReleasedEnv: a completed environment re-enters the
// pool and is handed out again.
func TestAcquireReusesReleasedEnv(t *testing.T) {
	pool := New()
	spec := core.Spec{Strategy: core.Clean, Dim: 4}
	_, env, err := core.RunWith(spec, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Completed() {
		t.Fatal("finished run should mark the environment completed")
	}
	pool.Release(env)
	if again := pool.Acquire(4, strategy.Options{}); again != env {
		t.Error("Acquire should reuse the released environment")
	}
}

// TestPoisonedEnvNotReused: an environment abandoned mid-simulation
// (here: the kernel's deadlock panic, recovered) is not re-pooled, and
// the pool still hands out working environments afterwards.
func TestPoisonedEnvNotReused(t *testing.T) {
	pool := New()
	env := pool.Acquire(3, strategy.Options{})
	env.Place(strategy.RoleCleaner)
	env.Sim.Spawn("stuck", func(p *des.Process) { p.Await(env.Signal(5)) })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("deadlocked run should panic")
			}
		}()
		env.Sim.Run()
	}()
	if env.Completed() {
		t.Fatal("abandoned run must not read as completed")
	}
	pool.Release(env)
	next := pool.Acquire(3, strategy.Options{})
	if next == env {
		t.Fatal("poisoned environment re-entered the pool")
	}
	// The replacement environment must run correctly end to end.
	pool.Release(next)
	res, env2, err := core.RunWith(core.Spec{Strategy: core.Visibility, Dim: 3}, pool)
	if err != nil || !res.Captured {
		t.Fatalf("replacement run failed: res=%+v err=%v", res, err)
	}
	pool.Release(env2)
}

// TestReleaseNilAndDoubleRelease: Release tolerates nil and keeps at
// most one environment per dimension.
func TestReleaseNilAndDoubleRelease(t *testing.T) {
	pool := New()
	pool.Release(nil)
	_, e1, _ := core.RunWith(core.Spec{Strategy: core.Clean, Dim: 3}, pool)
	_, e2, _ := core.RunWith(core.Spec{Strategy: core.Clean, Dim: 3}, strategy.Fresh{})
	pool.Release(e1)
	pool.Release(e2)
	a := pool.Acquire(3, strategy.Options{})
	b := pool.Acquire(3, strategy.Options{})
	if a == b {
		t.Fatal("pool handed out one environment twice")
	}
}
