// Package envpool pools strategy execution environments so sweeps
// reuse them across runs instead of rebuilding the hypercube,
// broadcast tree, board and trace buffers every time — the dominant
// cost of a swept run now that DES event dispatch is allocation-free.
//
// Sharing contract (see ALGORITHMS.md, "Environment reset contract"):
//
//   - hypercube.Hypercube and heapqueue.Tree are immutable after
//     construction, so one pair per dimension is shared read-only by
//     every environment the pool hands out — including concurrently,
//     across pools, via the process-wide topology cache.
//   - board.Board, trace.Log, the per-node signals, role counters and
//     scratch lists are mutable per-run state; Acquire resets them in
//     O(n) before reuse.
//   - An environment whose run did not complete (no Result taken —
//     typically a panic mid-simulation) is poisoned: Release drops it
//     instead of pooling it, because blocked processes may still hold
//     references into its board and signals.
//
// A Pool is NOT safe for concurrent use. Parallel sweeps give each
// sched worker its own Pool (see experiments): workers then reuse
// environments without any locking on the hot path, and only the
// topology cache — read-mostly, guarded by an RWMutex — is shared.
package envpool

import (
	"sync"

	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/strategy"
)

// topo is the immutable per-dimension topology pair.
type topo struct {
	h  *hypercube.Hypercube
	bt *heapqueue.Tree
}

// topoKey distinguishes the two topology representations: one
// dimension can be cached both materialized (O(n·d) adjacency, shared
// by small-d sweeps) and implicit (O(1), XOR-computed, what big boards
// use), and the two must not collide.
type topoKey struct {
	d        int
	implicit bool
}

// topoCache shares topology pairs process-wide: building H_d and T(d)
// is O(n·d) (or O(1) implicit) and read-only afterwards, so even
// environments in different per-worker pools share one copy per
// dimension and representation.
var topoCache = struct {
	sync.RWMutex
	m map[topoKey]topo
}{m: map[topoKey]topo{}}

// Topology returns the shared immutable hypercube and broadcast tree
// for dimension d, building them on first use. The representation is
// chosen by size, matching hypercube.ForDim: materialized up to
// hypercube.MaterializeLimit, implicit beyond — which is what lets the
// pool serve d>24 at all.
func Topology(d int) (*hypercube.Hypercube, *heapqueue.Tree) {
	return topologyFor(d, d > hypercube.MaterializeLimit)
}

func topologyFor(d int, implicit bool) (*hypercube.Hypercube, *heapqueue.Tree) {
	key := topoKey{d: d, implicit: implicit}
	topoCache.RLock()
	t, ok := topoCache.m[key]
	topoCache.RUnlock()
	if ok {
		return t.h, t.bt
	}
	topoCache.Lock()
	defer topoCache.Unlock()
	if t, ok = topoCache.m[key]; ok {
		return t.h, t.bt
	}
	if implicit {
		t = topo{h: hypercube.Implicit(d), bt: heapqueue.Implicit(d)}
	} else {
		t = topo{h: hypercube.New(d), bt: heapqueue.New(d)}
	}
	topoCache.m[key] = t
	return t.h, t.bt
}

// Pool hands out reusable environments, at most one cached per
// dimension (a sweep worker runs one simulation at a time, so deeper
// stacks would only hold memory). It implements strategy.Source.
type Pool struct {
	envs map[int]*strategy.Env
}

// New returns an empty pool.
func New() *Pool { return &Pool{envs: map[int]*strategy.Env{}} }

// Acquire returns an environment for dimension d configured with
// opts: a pooled one reset in O(n) when available, otherwise a fresh
// one on the shared topology. The caller owns it until Release.
func (p *Pool) Acquire(d int, opts strategy.Options) *strategy.Env {
	if e := p.envs[d]; e != nil {
		delete(p.envs, d)
		e.Reset(opts)
		return e
	}
	h, bt := Topology(d)
	e := strategy.NewEnvOn(h, bt, opts)
	// Keep worker goroutines parked between runs: a reused simulator
	// then respawns its thousands of processes allocation-free.
	e.Sim.KeepWorkers(true)
	return e
}

// Release returns an environment to the pool. Poisoned environments —
// those whose run never took a Result, i.e. panicked or was abandoned
// mid-simulation — are dropped: their blocked processes may still
// reference the board and signals, so they must never be reused.
func (p *Pool) Release(e *strategy.Env) {
	if e == nil || !e.Completed() {
		return
	}
	p.envs[e.H.Dim()] = e
}

var _ strategy.Source = (*Pool)(nil)
