package des

import "testing"

// An interceptor deferring a window of virtual time must push affected
// events to the window's end without reordering unaffected ones.
func TestInterceptorDefersWindow(t *testing.T) {
	s := New()
	var fired []int64
	log := func() { fired = append(fired, s.Now()) }
	for _, at := range []int64{1, 5, 12, 30} {
		s.Schedule(at, log)
	}
	// Defer everything in [4, 20) to exactly 20 — the half-open window
	// means a deferred event landing at 20 is not deferred again.
	s.Intercept(func(at, _ int64) int64 {
		if at >= 4 && at < 20 {
			return 20 - at
		}
		return 0
	})
	end := s.Run()
	want := []int64{1, 20, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if end != 30 {
		t.Fatalf("end time %d, want 30", end)
	}
}

// Deferred events must fire after same-time events that were scheduled
// normally (fresh sequence numbers), preserving kernel determinism.
func TestInterceptorDeterministicOrder(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		s.Schedule(2, func() { order = append(order, "deferred") })
		s.Schedule(10, func() { order = append(order, "native") })
		s.Intercept(func(at, _ int64) int64 {
			if at == 2 {
				return 8
			}
			return 0
		})
		s.Run()
		return order
	}
	first := run()
	if len(first) != 2 || first[0] != "native" || first[1] != "deferred" {
		t.Fatalf("order %v, want [native deferred]", first)
	}
	for i := 0; i < 10; i++ {
		again := run()
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d diverged: %v vs %v", i, again, first)
			}
		}
	}
}

// Removing the interceptor restores plain dispatch.
func TestInterceptorRemoval(t *testing.T) {
	s := New()
	count := 0
	s.Intercept(func(at, seq int64) int64 { return 1 })
	s.Intercept(nil)
	s.Schedule(1, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("event did not fire after interceptor removal")
	}
}

// Processes blocked on Delay go through the queue too: a kernel-lag
// window stretches their virtual sleep.
func TestInterceptorStretchesProcessDelay(t *testing.T) {
	s := New()
	var woke int64
	s.Spawn("sleeper", func(p *Process) {
		p.Delay(5)
		woke = p.Now()
	})
	s.Intercept(func(at, _ int64) int64 {
		if at >= 1 && at < 50 {
			return 50 - at
		}
		return 0
	})
	s.Run()
	if woke != 50 {
		t.Fatalf("process woke at %d, want 50", woke)
	}
}
