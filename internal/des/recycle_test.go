package des

import (
	"runtime"
	"testing"
)

// TestWorkerRecycleReuse: with KeepWorkers, a second wave of spawns
// reuses the parked workers from the first — spawning allocates only
// the caller's closure, not goroutines or Process structs.
func TestWorkerRecycleReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	s := New()
	s.KeepWorkers(true)
	const procs = 64
	run := func() {
		done := 0
		for i := 0; i < procs; i++ {
			s.Spawn("w", func(p *Process) {
				p.Delay(1)
				done++
			})
		}
		s.Run()
		if done != procs {
			t.Fatalf("ran %d processes, want %d", done, procs)
		}
		s.Reset()
	}
	run() // warm the worker pool
	allocs := testing.AllocsPerRun(20, run)
	// One allocation per spawn is the fn closure (captures &done);
	// anything above that means workers are not being recycled.
	if allocs > procs+4 {
		t.Fatalf("reused simulator allocates %.0f per wave, want <= %d", allocs, procs+4)
	}
}

// TestRunRetiresWorkersByDefault: without KeepWorkers, Run leaves no
// goroutines parked — the pre-recycling leak-free behaviour.
func TestRunRetiresWorkersByDefault(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		s := New()
		for j := 0; j < 32; j++ {
			s.Spawn("w", func(p *Process) { p.Delay(1) })
		}
		s.Run()
	}
	runtime.GC() // give exited goroutines a chance to be reaped
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew %d -> %d; workers not retired", before, after)
	}
}

// TestResetReplaysIdentically: a Reset simulator reruns the same
// program with the same timing and ordering as a fresh one.
func TestResetReplaysIdentically(t *testing.T) {
	program := func(s *Simulator) []int64 {
		var times []int64
		var sig Signal
		s.Spawn("a", func(p *Process) {
			p.Delay(3)
			times = append(times, p.Now())
			s.Fire(&sig)
		})
		s.Spawn("b", func(p *Process) {
			p.Await(&sig)
			p.Delay(2)
			times = append(times, p.Now())
		})
		s.Run()
		return times
	}
	fresh := New()
	want := program(fresh)

	s := New()
	s.KeepWorkers(true)
	program(s)
	s.Reset()
	if s.Now() != 0 {
		t.Fatalf("Now after Reset = %d, want 0", s.Now())
	}
	got := program(s)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay times %v, want %v", got, want)
		}
	}
}

// TestResetPanicsWithParkedProcesses: a simulator abandoned with a
// process still blocked on a signal cannot be reused.
func TestResetPanicsWithParkedProcesses(t *testing.T) {
	s := New()
	var sig Signal
	s.Spawn("stuck", func(p *Process) { p.Await(&sig) })
	func() {
		defer func() { recover() }() // swallow the deadlock panic
		s.Run()
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with a parked process should panic")
		}
	}()
	s.Reset()
}
