package des

import "testing"

// BenchmarkEventThroughput measures raw event scheduling and dispatch.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	b.ResetTimer()
	s.Run()
}

// BenchmarkProcessSwitch measures the goroutine-handoff cost of the
// process API: one Delay round trip per op.
func BenchmarkProcessSwitch(b *testing.B) {
	s := New()
	s.Spawn("p", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	s.Run()
}

// BenchmarkSignalFanout measures waking many waiters at once.
func BenchmarkSignalFanout(b *testing.B) {
	const waiters = 256
	for i := 0; i < b.N; i++ {
		s := New()
		var sig Signal
		for w := 0; w < waiters; w++ {
			s.Spawn("w", func(p *Process) { p.Await(&sig) })
		}
		s.Schedule(1, func() { s.Fire(&sig) })
		s.Run()
	}
}
