package des

import (
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"
)

// nop is a prebuilt callback so the tests measure the kernel's own
// allocations, not the test closure's.
var nop = func() {}

// TestScheduleRunZeroAllocs: once heap capacity is warm, scheduling
// and dispatching plain events allocates nothing — the typed 4-ary
// heap moves events without interface boxing.
func TestScheduleRunZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	s := New()
	for i := 0; i < 1024; i++ {
		s.After(int64(i), nop)
	}
	s.Run() // warm the heap's backing array
	allocs := testing.AllocsPerRun(100, func() {
		for i := int64(1); i <= 64; i++ {
			s.After(i, nop)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("schedule+run allocates %.1f per batch, want 0", allocs)
	}
}

// TestDeferralZeroAllocs: an interceptor deferral re-pushes the popped
// event into the slot pop just freed. Before the typed heap, every
// deferral boxed the event into an interface{} — a fresh allocation
// per deferral.
func TestDeferralZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	s := New()
	const horizon = 64
	s.Intercept(func(at, seq int64) int64 {
		if at < horizon {
			return 1 // defer until the event drifts past the horizon
		}
		return 0
	})
	s.After(1, nop)
	s.Run() // warm capacity (and exercise repeated deferral once)
	allocs := testing.AllocsPerRun(100, func() {
		s.After(1, nop)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("deferral allocates %.1f per run, want 0", allocs)
	}
}

// TestDelayStepNearZeroAllocs: a process Delay carries the process
// pointer in the event itself, so steady-state virtual sleeps cost no
// closure and no boxing. Spawning inherently allocates (goroutine,
// channels), so measure the marginal cost per extra Delay instead.
func TestDelayStepNearZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	measure := func(delays int) uint64 {
		s := New()
		s.Spawn("p", func(p *Process) {
			for i := 0; i < delays; i++ {
				p.Delay(1)
			}
		})
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		s.Run()
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	measure(1000) // warmup
	base := measure(1000)
	big := measure(51000)
	perDelay := float64(big-base) / 50000
	if perDelay > 0.01 {
		t.Errorf("Delay allocates %.3f per step, want ~0 (base=%d big=%d)", perDelay, base, big)
	}
}

// TestFireReusesWaiterArrays: steady-state Await/Fire waves recycle
// the Signal's backing arrays, so the marginal cost of a wave is
// (near) zero allocations. Spawning is excluded the same way as in
// the Delay test: compare a short run against a long one.
func TestFireReusesWaiterArrays(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	measure := func(waves int) uint64 {
		s := New()
		var sig Signal
		const waiters = 8
		for w := 0; w < waiters; w++ {
			s.Spawn("w", func(p *Process) {
				for i := 0; i < waves; i++ {
					p.Await(&sig)
				}
			})
		}
		s.Spawn("firer", func(p *Process) {
			for i := 0; i < waves; i++ {
				p.Delay(1)
				s.Fire(&sig)
			}
		})
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		s.Run()
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	measure(100) // warmup
	base := measure(100)
	big := measure(5100)
	perWave := float64(big-base) / 5000
	if perWave > 0.05 {
		t.Errorf("Fire wave allocates %.3f, want ~0 (base=%d big=%d)", perWave, base, big)
	}
}

// TestHeapOrderRandomized: the 4-ary heap dispatches any workload in
// (time, seq) order — the same contract the container/heap version
// obeyed.
func TestHeapOrderRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		n := 1 + rng.Intn(500)
		var got []int64
		for i := 0; i < n; i++ {
			at := int64(rng.Intn(64))
			s.Schedule(at, func() { got = append(got, at) })
		}
		s.Run()
		if len(got) != n {
			t.Fatalf("trial %d: dispatched %d of %d events", trial, len(got), n)
		}
		for i := 1; i < n; i++ {
			if got[i] < got[i-1] {
				t.Fatalf("trial %d: out of order at %d: %v", trial, i, got)
			}
		}
	}
}

// TestHeapSameTimeFIFO: equal-time events fire in scheduling order
// even through heap reshuffles caused by interleaved earlier events.
func TestHeapSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(10, func() { got = append(got, i) })
		if i%3 == 0 {
			s.Schedule(int64(i%7), nop)
		}
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time order broken: got[%d] = %d", i, v)
		}
	}
}
