//go:build race

package des

// raceEnabled skips allocation-count assertions under the race
// detector, whose instrumentation perturbs malloc accounting.
const raceEnabled = true
