// Package des is a deterministic discrete-event simulation kernel for
// asynchronous agent systems. Virtual time is an int64; events at equal
// times fire in scheduling order, so runs are fully reproducible.
//
// Three programming styles are supported:
//
//   - Plain events: Schedule/After run a callback at a virtual time.
//   - Processes: Spawn runs a function on its own goroutine that can
//     block on Delay (virtual sleep) and on Signal.Await (condition
//     wait). Exactly one goroutine runs at a time, so process programs
//     are as deterministic as callback programs while reading like
//     straight sequential agent code — the natural style for the
//     paper's synchronizer.
//   - Inline processes: SpawnInline (and ScheduleInline/AfterInline)
//     run an actor's step function inside the event dispatch itself —
//     no goroutine, no channel hand-off, no per-event closure
//     allocation. Actors embed an Inline header and point its Step at
//     themselves once, at construction. An inline
//     process cannot block; it advances by rescheduling itself (or
//     other inline processes) for a later step. Its events live in the
//     same queue with the same (time, sequence) ordering as callbacks
//     and goroutine-process resumptions, so the three styles compose
//     deterministically. One-actor-per-node engines use this style:
//     a million dormant actors cost a slice of state words, not a
//     million parked goroutines.
//
// Dispatch is direct hand-off: there is no central goroutine bouncing
// control in and out on every event. Whichever goroutine is currently
// running ("holding the baton") dispatches the next event when it
// blocks or finishes — running callbacks inline and waking the next
// process directly — so each event transition costs one goroutine
// switch, not the two a kernel round trip would. Run only parks until
// the queue drains and then reports. Event order is identical to a
// central dispatch loop because pops are serialized on the baton.
//
// The kernel is not safe for concurrent external use; all interaction
// must happen from process goroutines or event callbacks.
package des

import (
	"fmt"
)

// Simulator is a discrete-event simulator. Construct with New.
type Simulator struct {
	now    int64
	seq    int64
	queue  eventHeap
	parked int // processes blocked on signals (not time)
	icept  Interceptor

	// free holds worker goroutines whose process function has returned;
	// Spawn reuses them (struct, channels and goroutine) instead of
	// allocating fresh ones. Unless KeepWorkers(true) was set, Run
	// retires the pool before returning, so a drained simulator leaves
	// no goroutines behind — the pre-recycling behaviour.
	free        []*Process
	keepWorkers bool

	// runDone carries the baton back to Run when the queue drains. It
	// is buffered so the drainer never blocks — including when Run
	// itself drains the queue without ever waking a process.
	runDone chan struct{}
}

// Interceptor inspects every event as it reaches the head of the queue
// and may defer it by returning a positive delay; the event is pushed
// back at its time plus that delay (with a fresh sequence number, so
// deferred events fire after same-time events that were not deferred).
// Fault-injection harnesses use this to impose latency windows on the
// whole kernel without the strategies' cooperation. An interceptor
// must eventually stop deferring an event or Run never terminates.
type Interceptor func(at, seq int64) (delay int64)

// event is one pending dispatch. Exactly one of fn and inl is set:
// plain events carry a callback; process-step and inline-process
// events share the inl slot — it points either at an actor's Inline
// header or at the header embedded in a Process, whose proc mark tells
// the kernel to resume the worker goroutine instead of calling Step.
// Keeping a pointer in the event rather than a closure removes one
// heap allocation from every Delay, Spawn, Fire and inline step — the
// kernel's hottest paths.
//
// The struct must stay at 32 bytes (at, seq, and two payload words):
// anything wider makes every event copy in the heap a memory
// operation and was measured as a 3x regression on the des-throughput
// family. That is why the inl slot is one raw pointer, not an
// interface value, and why processes and inline actors share it.
type event struct {
	at  int64
	seq int64
	fn  func()
	inl *Inline
}

// Inline is the header of an inline process: a simulation actor whose
// Step runs directly inside the event dispatch, on the baton holder,
// with no goroutine or channel hand-off. Embed an Inline in the actor
// struct and set Step once at construction (typically to a method
// value of the enclosing actor); then schedule &actor.Inline via
// SpawnInline/ScheduleInline/AfterInline.
//
// Step may inspect s.Now, schedule events, fire signals, and
// reschedule its own or other headers; it must not block (there is no
// Delay or Await — an inline process that needs to wait reschedules
// itself, or parks in its own data structures until another event
// reschedules it). Actors are typically small pooled structs carrying
// their payload, so the method-value closure is allocated once per
// actor and a step costs zero allocations.
type Inline struct {
	// Step runs one step of the actor. Set once at construction; the
	// kernel calls it with the header's events' times as s.Now().
	Step func(s *Simulator)

	// proc marks this header as a goroutine-process resumption: the
	// kernel hands the baton to the worker directly instead of calling
	// Step. Only the header embedded in a Process carries the mark.
	proc *Process
}

// eventHeap is a concrete 4-ary min-heap ordered by (at, seq). The
// wide fan-out halves tree depth versus a binary heap (fewer compares
// per pop on the mostly-sorted queues simulations produce), and the
// typed slice means push/pop move events without `interface{}` boxing:
// zero allocations per event once capacity is warm. Pops shrink the
// slice in place, so a deferred event's re-push reuses the freed slot
// rather than growing a fresh backing array.
type eventHeap struct {
	ev []event
}

// before is the dispatch order: time, then scheduling sequence.
func (h *eventHeap) before(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.ev) }

// push appends e and sifts it up toward the root.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.before(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{} // release fn/inl for the GC
	h.ev = h.ev[:n]
	if n > 1 {
		h.siftDown()
	}
	return top
}

// siftDown restores the heap property from the root.
func (h *eventHeap) siftDown() {
	n := len(h.ev)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.before(h.ev[c], h.ev[min]) {
				min = c
			}
		}
		if !h.before(h.ev[min], h.ev[i]) {
			return
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
}

// New returns an empty simulator at time 0.
func New() *Simulator { return &Simulator{runDone: make(chan struct{}, 1)} }

// KeepWorkers controls whether Run retains finished process workers
// for reuse by later Spawns (including after a Reset). The default,
// false, retires them when the queue drains, so one-shot simulations
// leave no goroutines parked. Environment pools set it: a reused
// simulator then spawns thousands of processes with zero allocations
// once its worker pool is warm.
func (s *Simulator) KeepWorkers(keep bool) { s.keepWorkers = keep }

// Reset returns a drained simulator to time zero so it can run a fresh
// simulation while keeping warmed capacity: the event heap's backing
// array and (under KeepWorkers) the parked worker goroutines carry
// over. It panics if processes are still blocked on signals — a
// simulator abandoned mid-run cannot be safely reused.
func (s *Simulator) Reset() {
	if s.parked > 0 {
		panic(fmt.Sprintf("des: reset with %d process(es) still blocked on signals", s.parked))
	}
	for i := range s.queue.ev {
		s.queue.ev[i] = event{}
	}
	s.queue.ev = s.queue.ev[:0]
	s.now, s.seq = 0, 0
	s.icept = nil
}

// Intercept installs (or, with nil, removes) the kernel interceptor.
func (s *Simulator) Intercept(i Interceptor) { s.icept = i }

// Now returns the current virtual time.
func (s *Simulator) Now() int64 { return s.now }

// Schedule runs fn at virtual time at, which must not be in the past.
func (s *Simulator) Schedule(at int64, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling into the past (%d < %d)", at, s.now))
	}
	s.queue.push(event{at: at, seq: s.seq, fn: fn})
	s.seq++
}

// scheduleProc schedules a process resumption without allocating a
// closure: the event carries the process pointer itself.
func (s *Simulator) scheduleProc(at int64, p *Process) {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling into the past (%d < %d)", at, s.now))
	}
	s.queue.push(event{at: at, seq: s.seq, inl: &p.hdr})
	s.seq++
}

// After runs fn delay time units from now; delay must be non-negative.
func (s *Simulator) After(delay int64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %d", delay))
	}
	s.Schedule(s.now+delay, fn)
}

// SpawnInline schedules inline process p to step at the current time,
// the inline analogue of Spawn: the step is appended to the queue with
// the next sequence number, so it fires after every already-pending
// same-time event, exactly where a freshly spawned goroutine process
// would start. It allocates nothing.
func (s *Simulator) SpawnInline(p *Inline) { s.ScheduleInline(s.now, p) }

// ScheduleInline schedules p.Step to run at virtual time at, which
// must not be in the past. It allocates nothing: the event carries the
// header pointer itself, no closure.
func (s *Simulator) ScheduleInline(at int64, p *Inline) {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling into the past (%d < %d)", at, s.now))
	}
	s.queue.push(event{at: at, seq: s.seq, inl: p})
	s.seq++
}

// AfterInline schedules p.Step to run delay time units from now; delay
// must be non-negative.
func (s *Simulator) AfterInline(delay int64, p *Inline) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %d", delay))
	}
	s.ScheduleInline(s.now+delay, p)
}

// Run processes events until the queue is empty, then returns the final
// time. It panics if processes remain blocked on signals with no
// pending event to wake them: a deadlocked simulation.
//
// Run starts the dispatch chain and then parks: once control passes to
// a process, the baton travels process-to-process (each dispatches the
// next event as it blocks) until whoever drains the queue wakes Run to
// finish up. The deadlock check and worker retirement therefore still
// happen on the caller's goroutine, where a test can recover the panic.
func (s *Simulator) Run() int64 {
	s.advance()
	<-s.runDone
	if s.parked > 0 {
		panic(fmt.Sprintf("des: deadlock — %d process(es) blocked on signals with no pending events", s.parked))
	}
	if !s.keepWorkers {
		s.retireWorkers()
	}
	return s.now
}

// advance dispatches pending events until control passes to a process
// goroutine or the queue drains. It is called by whichever goroutine
// holds the baton: Run to start the chain, then each process as it
// blocks or finishes. Exactly one goroutine runs at any moment and
// every pop happens on the baton holder, so event order — and hence
// the whole simulation — matches a central dispatch loop exactly.
func (s *Simulator) advance() {
	for s.queue.len() > 0 {
		e := s.queue.pop()
		if s.icept != nil {
			if d := s.icept(e.at, e.seq); d > 0 {
				// Re-push into the slot pop just freed: deferrals reuse
				// heap capacity instead of growing the backing array.
				s.queue.push(event{at: e.at + d, seq: s.seq, fn: e.fn, inl: e.inl})
				s.seq++
				continue
			}
		}
		s.now = e.at
		if h := e.inl; h != nil {
			if p := h.proc; p != nil {
				// Hand the baton to the event's process and stop driving.
				// The buffered send also covers the self-resume case — a
				// process dispatching its own next event parks and wakes
				// without any switch at all.
				p.resume <- struct{}{}
				return
			}
			h.Step(s) // inline processes run on the baton holder
			continue
		}
		e.fn() // callbacks run inline on the baton holder
	}
	s.runDone <- struct{}{} // drained: wake Run to report
}

// retireWorkers shuts down every parked worker goroutine.
func (s *Simulator) retireWorkers() {
	for _, p := range s.free {
		p.resume <- struct{}{} // fn == nil: the worker loop exits
		<-p.yield
	}
	s.free = s.free[:0]
}

// Process is the handle a spawned process uses to interact with
// virtual time. Its methods may only be called from that process's
// goroutine.
type Process struct {
	sim  *Simulator
	name string
	fn   func(*Process) // current program; nil tells the worker loop to exit

	// hdr is the event header resumptions are scheduled through; its
	// proc mark points back at this Process so the kernel resumes the
	// worker instead of calling Step. Set once at construction.
	hdr Inline

	// resume wakes the worker. It is buffered so the baton holder can
	// deposit a wakeup before the worker has finished parking (the
	// hand-off chain makes that window real) and so a process popping
	// its own next event can self-resume without deadlocking.
	resume chan struct{}

	// yield is only used to join retiring workers; the steady-state
	// hand-off path never touches it.
	yield chan struct{}
}

// Spawn starts fn as a simulation process at the current time. The
// process begins running when the kernel reaches its start event.
// Finished workers are recycled: when a previously spawned process has
// already returned, its goroutine, channels and Process struct serve
// the new program, so steady-state spawning allocates nothing beyond
// the caller's fn closure.
func (s *Simulator) Spawn(name string, fn func(p *Process)) {
	var p *Process
	if n := len(s.free); n > 0 {
		p = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		p.name, p.fn = name, fn
	} else {
		p = &Process{sim: s, name: name, fn: fn, resume: make(chan struct{}, 1), yield: make(chan struct{})}
		p.hdr.proc = p
		go p.loop()
	}
	s.scheduleProc(s.now, p)
}

// loop is the worker goroutine: it runs one process function per
// activation and parks between programs. When a program returns, the
// worker parks itself in the free list (it holds the baton, so the
// append is serialized) and dispatches the next event before blocking.
func (p *Process) loop() {
	for {
		<-p.resume
		fn := p.fn
		if fn == nil {
			p.yield <- struct{}{}
			return // retired by the simulator
		}
		fn(p)
		p.fn = nil
		p.sim.free = append(p.sim.free, p)
		p.sim.advance()
	}
}

// block passes the baton onward and waits to be resumed. The advance
// call may dispatch this process's own next event, in which case the
// buffered resume already holds the wakeup and the receive returns
// without a context switch.
func (p *Process) block() {
	p.sim.advance()
	<-p.resume
}

// Name returns the process name (for diagnostics).
func (p *Process) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Process) Now() int64 { return p.sim.Now() }

// Delay suspends the process for d time units (d >= 0).
//
// Fast path: when no pending event precedes the process's own
// resumption — the queue is empty or its head fires strictly later —
// dispatching would pop that resumption and hand control straight
// back. In that case Delay advances virtual time in place and returns
// without touching the queue or the resume channel. This is exact:
// same-time events already queued keep priority (they hold smaller
// sequence numbers, so the head check fails and the slow path runs),
// and an installed interceptor disables the shortcut because every
// event must pass through it.
func (p *Process) Delay(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("des: process %s: negative delay %d", p.name, d))
	}
	s := p.sim
	at := s.now + d
	if s.icept == nil && (len(s.queue.ev) == 0 || at < s.queue.ev[0].at) {
		s.now = at
		return
	}
	s.scheduleProc(at, p)
	p.block()
}

// Signal is a broadcast condition: processes Await it, and Fire wakes
// every current waiter at the current virtual time. The zero value is
// ready to use.
type Signal struct {
	waiters []*Process
	scratch []*Process // recycled backing array; see Fire
}

// Reset empties the waiter list while keeping both recycled backing
// arrays. Only safe when no process is blocked on the signal (a
// simulator that passed its own Reset guarantees that).
func (sig *Signal) Reset() {
	for i := range sig.waiters {
		sig.waiters[i] = nil
	}
	sig.waiters = sig.waiters[:0]
}

// Await blocks the process until the signal next fires. Callers loop:
//
//	for !cond() { p.Await(sig) }
func (p *Process) Await(sig *Signal) {
	sig.waiters = append(sig.waiters, p)
	p.sim.parked++
	p.block()
}

// Fire wakes all waiters at the current time, in arrival order. It may
// be called from event callbacks or processes.
//
// The two slices on the Signal alternate as the live waiter list and
// the snapshot, so steady-state Await/Fire cycles reuse their backing
// arrays instead of growing a fresh one per wave.
func (s *Simulator) Fire(sig *Signal) {
	if len(sig.waiters) == 0 {
		return
	}
	waiters := sig.waiters
	sig.waiters = sig.scratch[:0]
	for i, p := range waiters {
		s.parked--
		s.scheduleProc(s.now, p)
		waiters[i] = nil
	}
	sig.scratch = waiters[:0]
}

// AwaitCond blocks until cond() is true, re-checking every time sig
// fires. It returns immediately if cond() already holds.
func (p *Process) AwaitCond(sig *Signal, cond func() bool) {
	for !cond() {
		p.Await(sig)
	}
}

// HasWaiters reports whether any process is currently blocked on the
// signal. Producers with many signals consult it (or a bitset mirror of
// it) to skip cold signals without touching their waiter slices.
func (sig *Signal) HasWaiters() bool { return len(sig.waiters) > 0 }
