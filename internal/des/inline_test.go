package des

import (
	"testing"
)

// recorder is a minimal inline process: each step appends its tag to a
// shared journal and optionally reschedules itself.
type recorder struct {
	Inline
	journal *[]string
	tag     string
	hops    int   // remaining self-reschedules
	stride  int64 // delay between self-reschedules
}

// rec builds a recorder and wires its header, the construction pattern
// every inline actor follows.
func rec(journal *[]string, tag string, hops int, stride int64) *recorder {
	r := &recorder{journal: journal, tag: tag, hops: hops, stride: stride}
	r.Step = r.step
	return r
}

func (r *recorder) step(s *Simulator) {
	*r.journal = append(*r.journal, r.tag)
	if r.hops > 0 {
		r.hops--
		s.AfterInline(r.stride, &r.Inline)
	}
}

// TestInlineOrderingWithCallbacksAndProcesses: inline steps share the
// queue's (time, sequence) order with plain callbacks and goroutine
// processes — the determinism contract that lets the three styles
// compose.
func TestInlineOrderingWithCallbacksAndProcesses(t *testing.T) {
	s := New()
	var journal []string
	log := func(tag string) func() { return func() { journal = append(journal, tag) } }

	s.Schedule(1, log("cb@1"))
	s.ScheduleInline(1, &rec(&journal, "inl@1", 0, 0).Inline)
	s.Spawn("p", func(p *Process) {
		p.Delay(1)
		journal = append(journal, "proc@1")
		p.Delay(1)
		journal = append(journal, "proc@2")
	})
	s.ScheduleInline(2, &rec(&journal, "inl@2", 0, 0).Inline)
	s.Schedule(2, log("cb@2"))

	if got := s.Run(); got != 2 {
		t.Fatalf("final time %d, want 2", got)
	}
	want := []string{"cb@1", "inl@1", "proc@1", "inl@2", "cb@2", "proc@2"}
	if len(journal) != len(want) {
		t.Fatalf("journal %v, want %v", journal, want)
	}
	for i := range want {
		if journal[i] != want[i] {
			t.Fatalf("journal %v, want %v", journal, want)
		}
	}
}

// TestSpawnInlineRunsAfterPendingSameTimeEvents: SpawnInline appends
// with the next sequence number, exactly where Spawn would start a
// goroutine process.
func TestSpawnInlineRunsAfterPendingSameTimeEvents(t *testing.T) {
	s := New()
	var journal []string
	s.Schedule(0, func() {
		journal = append(journal, "first")
		s.SpawnInline(&rec(&journal, "spawned", 0, 0).Inline)
		s.Schedule(0, func() { journal = append(journal, "second") })
	})
	s.Schedule(0, func() { journal = append(journal, "pending") })
	s.Run()
	want := []string{"first", "pending", "spawned", "second"}
	for i := range want {
		if i >= len(journal) || journal[i] != want[i] {
			t.Fatalf("journal %v, want %v", journal, want)
		}
	}
}

// TestInlineSelfReschedule: an inline actor advances by rescheduling
// itself — the waiting pattern that replaces Delay.
func TestInlineSelfReschedule(t *testing.T) {
	s := New()
	var journal []string
	s.ScheduleInline(0, &rec(&journal, "tick", 5, 3).Inline)
	if got := s.Run(); got != 15 {
		t.Fatalf("final time %d, want 15", got)
	}
	if len(journal) != 6 {
		t.Fatalf("%d steps, want 6", len(journal))
	}
}

// TestInterceptorDefersInlineSteps: kernel-lag interceptors see inline
// steps like any other event and deferrals keep their relative order.
func TestInterceptorDefersInlineSteps(t *testing.T) {
	s := New()
	var journal []string
	s.Intercept(func(at, seq int64) int64 {
		if at < 10 {
			return 10 - at
		}
		return 0
	})
	s.ScheduleInline(2, &rec(&journal, "a", 0, 0).Inline)
	s.ScheduleInline(2, &rec(&journal, "b", 0, 0).Inline)
	s.Schedule(3, func() { journal = append(journal, "cb") })
	if got := s.Run(); got != 10 {
		t.Fatalf("final time %d, want 10", got)
	}
	want := []string{"a", "b", "cb"}
	for i := range want {
		if i >= len(journal) || journal[i] != want[i] {
			t.Fatalf("journal %v, want %v", journal, want)
		}
	}
}

// TestInlineZeroAllocs: scheduling and dispatching inline steps
// allocates nothing once heap capacity is warm — the event carries the
// header pointer, no closure.
func TestInlineZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	s := New()
	var journal []string
	r := rec(&journal, "t", 1024, 1)
	s.ScheduleInline(0, &r.Inline)
	s.Run() // warm the heap and the journal's backing array
	allocs := testing.AllocsPerRun(100, func() {
		journal = journal[:0]
		r.hops = 64
		s.ScheduleInline(s.Now(), &r.Inline)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("inline stepping allocates %.1f per batch, want 0", allocs)
	}
}

// TestInlinePastSchedulingPanics mirrors the Schedule contract.
func TestInlinePastSchedulingPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling an inline step into the past did not panic")
			}
		}()
		s.ScheduleInline(1, &rec(&[]string{}, "past", 0, 0).Inline)
	})
	s.Run()
}
