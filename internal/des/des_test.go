package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(5, func() { order = append(order, 5) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(3, func() { order = append(order, 3) })
	end := s.Run()
	if end != 5 {
		t.Errorf("end time = %d", end)
	}
	want := []int{1, 3, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(7, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New()
	var sawn int64
	s.Schedule(10, func() {
		s.After(5, func() { sawn = s.Now() })
	})
	s.Run()
	if sawn != 15 {
		t.Errorf("nested After fired at %d", sawn)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		s.Schedule(5, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestProcessDelay(t *testing.T) {
	s := New()
	var marks []int64
	s.Spawn("walker", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Delay(4)
			marks = append(marks, p.Now())
		}
	})
	end := s.Run()
	if end != 12 || len(marks) != 3 || marks[0] != 4 || marks[2] != 12 {
		t.Errorf("marks = %v end = %d", marks, end)
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		s.Spawn("a", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Delay(2)
				log = append(log, "a")
			}
		})
		s.Spawn("b", func(p *Process) {
			for i := 0; i < 2; i++ {
				p.Delay(3)
				log = append(log, "b")
			}
		})
		s.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
	// a fires at 2,4,6; b at 3,6; at t=6 a was scheduled... both at 6:
	// a's third delay scheduled at t=4, b's second at t=3, so b first.
	want := []string{"a", "b", "a", "b", "a"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
}

func TestSignalAwaitFire(t *testing.T) {
	s := New()
	var sig Signal
	var got int64 = -1
	s.Spawn("waiter", func(p *Process) {
		p.Await(&sig)
		got = p.Now()
	})
	s.Schedule(9, func() { s.Fire(&sig) })
	s.Run()
	if got != 9 {
		t.Errorf("waiter woke at %d", got)
	}
}

func TestAwaitCond(t *testing.T) {
	s := New()
	var sig Signal
	counter := 0
	var done int64 = -1
	s.Spawn("consumer", func(p *Process) {
		p.AwaitCond(&sig, func() bool { return counter >= 3 })
		done = p.Now()
	})
	s.Spawn("producer", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Delay(5)
			counter++
			p.sim.Fire(&sig)
		}
	})
	s.Run()
	if done != 15 {
		t.Errorf("consumer finished at %d", done)
	}
}

func TestAwaitCondImmediate(t *testing.T) {
	s := New()
	var sig Signal
	ran := false
	s.Spawn("p", func(p *Process) {
		p.AwaitCond(&sig, func() bool { return true })
		ran = true
	})
	s.Run()
	if !ran {
		t.Error("immediate condition did not pass through")
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	var sig Signal
	s.Spawn("stuck", func(p *Process) {
		p.Await(&sig) // nobody fires
	})
	defer func() {
		if recover() == nil {
			t.Error("deadlock not detected")
		}
	}()
	s.Run()
}

func TestManyProcessesBarrier(t *testing.T) {
	// N workers wait on a barrier signal; a releaser fires it once all
	// have arrived (counted), modelling the whiteboard-complement wait
	// of the visibility strategy.
	const n = 100
	s := New()
	var barrier, arrived Signal
	count := 0
	finished := 0
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("w", func(p *Process) {
			p.Delay(int64(i % 7)) // staggered arrivals
			count++
			s.Fire(&arrived)
			p.AwaitCond(&barrier, func() bool { return count == n })
			finished++
		})
	}
	s.Spawn("releaser", func(p *Process) {
		p.AwaitCond(&arrived, func() bool { return count == n })
		s.Fire(&barrier)
	})
	s.Run()
	if finished != n {
		t.Errorf("finished = %d, want %d", finished, n)
	}
}

func TestProcessName(t *testing.T) {
	s := New()
	s.Spawn("alice", func(p *Process) {
		if p.Name() != "alice" {
			t.Errorf("name = %q", p.Name())
		}
	})
	s.Run()
}

func TestNegativeProcessDelayPanics(t *testing.T) {
	s := New()
	s.Spawn("bad", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("negative Delay did not panic")
			}
			// Swallow so the goroutine exits cleanly.
		}()
		p.Delay(-2)
	})
	s.Run()
}
