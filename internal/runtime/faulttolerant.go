package runtime

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hypersearch/internal/combin"
	"hypersearch/internal/faults"
	"hypersearch/internal/metrics"
	"hypersearch/internal/trace"
	"hypersearch/internal/whiteboard"
)

// CleanFTName identifies the crash-tolerant coordinated run in results.
const CleanFTName = "clean-ft-goroutines"

// Whiteboard fields of the recovery protocol, all on the homebase
// board (the root is clean from the start and every agent can reach
// it, so it doubles as the durable registry of the paper's model).
const (
	fieldCk    = "ck"          // synchronizer checkpoint: completed steps
	fieldOwner = "sync.owner"  // current synchronizer id + 1
	fieldEpoch = "sync.epoch." // re-election CAS field, one per epoch
	fieldLease = "lease."      // per-agent heartbeat counter
	fieldFence = "fence."      // set once the watchdog declares an agent dead
	fieldOrder = "ord."        // per-order destination / completion mirror
)

// Field names for the per-agent and per-order dynamic fields. The
// per-agent lease/fence fields are interned once in initAgents and the
// per-order fields once at issue time, so the heartbeat, watchdog and
// walk loops never hash a field name.
func leaseField(id int) string      { return fmt.Sprintf("%s%d", fieldLease, id) }
func fenceField(id int) string      { return fmt.Sprintf("%s%d", fieldFence, id) }
func epochField(e int64) string     { return fmt.Sprintf("%s%d", fieldEpoch, e) }
func orderField(k, f string) string { return fieldOrder + k + "." + f }

// ftOrder is one ledger entry: a walk some agent owes the search. The
// destination plus the walker's board position fully determine the
// remaining path (tree paths for outbound work, clear-bits-first
// shortest paths for homeward walks), which is what makes a crashed
// walk reconstructible.
type ftOrder struct {
	key      string
	assignee int
	dst      int
	register bool // true: report to at[dst]; false: walk home to the pool
	done     bool

	doneF whiteboard.Field // interned "ord.<key>.done" mirror field
}

// FTReport is the outcome of a fault-tolerant run.
type FTReport struct {
	Result metrics.Result
	Log    *trace.Log // nil unless Config.Record

	Team        int // paper team size
	Spares      int // extra agents provisioned for recovery
	Crashes     int // injected crashes that fired
	Reassigned  int // orders re-executed by a spare
	Reelections int // synchronizer CAS re-elections
	SparesUsed  int // spares drafted into service
}

// ftWorld extends the shared world with the recovery protocol's
// replicated state: the order ledger, per-node agent registry, root
// pool, spare pool, fencing flags, and the synchronizer epoch. All of
// it is guarded by the world mutex; the homebase whiteboard mirrors
// the durable fields (leases, checkpoint, order records, fences) that
// the paper's model would store on node whiteboards.
type ftWorld struct {
	*world
	cfg Config
	inj *faults.Injector
	log *trace.Log

	step int64 // logical clock: one tick per board action

	inbox  [][]string
	ledger map[string]*ftOrder
	at     map[int][]int
	pool   []int
	spares []int

	dead   []bool // fenced by the watchdog
	exited []bool // returned cleanly (lease no longer monitored)

	fLease []whiteboard.Field // per-agent heartbeat fields, interned in initAgents
	fFence []whiteboard.Field // per-agent fence fields, interned in initAgents

	syncID   int
	epoch    int64
	needSync bool
	doneFlag bool

	hbQuit []chan struct{}
	hbOnce []sync.Once

	crashes     int
	reassigned  int
	reelections int
	sparesUsed  int
}

func newFTWorld(d int, cfg Config, inj *faults.Injector) *ftWorld {
	w := &ftWorld{
		world:  newWorld(d),
		cfg:    cfg,
		inj:    inj,
		ledger: map[string]*ftOrder{},
		at:     map[int][]int{},
		syncID: -1,
	}
	if cfg.Record {
		w.log = &trace.Log{}
	}
	return w
}

// initAgents places total agents on the homebase (recording the trace)
// and splits them into the working pool (0..team-1) and spares.
func (w *ftWorld) initAgents(total, team int) {
	w.inbox = make([][]string, total)
	w.dead = make([]bool, total)
	w.exited = make([]bool, total)
	w.hbQuit = make([]chan struct{}, total)
	w.hbOnce = make([]sync.Once, total)
	w.fLease = make([]whiteboard.Field, total)
	w.fFence = make([]whiteboard.Field, total)
	for i := 0; i < total; i++ {
		w.fLease[i] = w.wb.Field(leaseField(i))
		w.fFence[i] = w.wb.Field(fenceField(i))
	}
	w.mu.Lock()
	for i := 0; i < total; i++ {
		id := w.b.Place(w.step)
		w.record(trace.Event{Time: w.step, Kind: trace.Place, Agent: id, To: 0, Role: roleFor(i, team)})
		w.step++
		w.hbQuit[i] = make(chan struct{})
		if i < team {
			w.pool = append(w.pool, id)
		} else {
			w.spares = append(w.spares, id)
		}
	}
	w.mu.Unlock()
}

func roleFor(i, team int) string {
	if i < team {
		return "cleaner"
	}
	return "spare"
}

func (w *ftWorld) record(e trace.Event) {
	if w.log != nil {
		w.log.Append(e)
	}
}

// action consults the injector for one move; a nil injector is a
// fault-free run.
func (w *ftWorld) action(ctx faults.MoveCtx) faults.Action {
	if w.inj == nil {
		return faults.Action{}
	}
	return w.inj.BeforeMove(ctx)
}

func (w *ftWorld) sleepUnits(units int64) {
	if units > 0 && w.cfg.FaultUnit > 0 {
		time.Sleep(time.Duration(units) * w.cfg.FaultUnit)
	}
}

// broadcastLocked wakes every waiter unless the injector swallows the
// wakeup (the watchdog's periodic re-broadcast keeps the run live).
func (w *ftWorld) broadcastLocked() {
	if w.inj != nil && w.inj.DropWakeup() {
		return
	}
	w.cond.Broadcast()
}

// applyMove performs one fenced, traced board move. A positive hold
// simulates whiteboard lock starvation: the mutex is held for that
// long with every other agent shut out. Returns false when the agent
// was fenced by the watchdog and must stop acting.
func (w *ftWorld) applyMove(id, to int, hold int64, sync bool, role string) bool {
	w.mu.Lock()
	if w.dead[id] {
		w.mu.Unlock()
		return false
	}
	from, _ := w.b.Position(id)
	w.b.Move(id, to, w.step)
	if sync {
		w.syncMoves++
	}
	w.record(trace.Event{Time: w.step, Kind: trace.Move, Agent: id, From: from, To: to, Role: role})
	w.step++
	if hold > 0 && w.cfg.FaultUnit > 0 {
		time.Sleep(time.Duration(hold) * w.cfg.FaultUnit)
	}
	w.broadcastLocked()
	w.mu.Unlock()
	return true
}

// awaitLocked blocks until cond holds, returning false if the agent is
// fenced first. Caller holds w.mu.
func (w *ftWorld) awaitLocked(id int, cond func() bool) bool {
	for {
		if w.dead[id] {
			return false
		}
		if cond() {
			return true
		}
		w.cond.Wait()
	}
}

// noteCrash is the injected crash: the agent's goroutines stop, its
// heartbeat ceases, and nothing else is cleaned up — detection is the
// watchdog's job, through the expiring lease.
func (w *ftWorld) noteCrash(id int) {
	w.stopHeartbeat(id)
	w.mu.Lock()
	w.crashes++
	w.mu.Unlock()
}

func (w *ftWorld) stopHeartbeat(id int) {
	w.hbOnce[id].Do(func() { close(w.hbQuit[id]) })
}

// finish marks a clean exit: the lease stops being monitored.
func (w *ftWorld) finish(id int) {
	w.mu.Lock()
	w.exited[id] = true
	w.mu.Unlock()
	w.stopHeartbeat(id)
}

// heartbeat renews the agent's lease on the homebase whiteboard. It
// runs on its own goroutine so a stalled (but live) agent is never
// mistaken for a crashed one — liveness and progress are separate.
func (w *ftWorld) heartbeat(id int) {
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	var n int64
	for {
		select {
		case <-w.hbQuit[id]:
			return
		case <-t.C:
			n++
			w.wb.At(0).Write(w.fLease[id], n)
		}
	}
}

// watchdog samples every lease each heartbeat period and declares an
// agent dead once its lease has been silent for LeaseTTL. It also
// re-broadcasts the world condition every tick, healing any wakeups
// the fault injector swallowed.
func (w *ftWorld) watchdog(quit chan struct{}) {
	type lease struct {
		val   int64
		since time.Time
	}
	seen := make([]lease, len(w.hbQuit))
	start := time.Now()
	for i := range seen {
		seen[i].since = start
	}
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-quit:
			return
		case <-t.C:
		}
		w.mu.Lock()
		done := w.doneFlag
		w.cond.Broadcast()
		w.mu.Unlock()
		if done {
			return
		}
		now := time.Now()
		for id := range seen {
			v := w.wb.At(0).Read(w.fLease[id])
			if v != seen[id].val {
				seen[id] = lease{v, now}
				continue
			}
			if now.Sub(seen[id].since) >= w.cfg.LeaseTTL {
				w.declareDead(id)
			}
		}
	}
}

// declareDead fences an expired agent and starts recovery: a dead
// synchronizer opens a new election epoch; a dead worker's incomplete
// outbound orders are reassigned to spares, which re-execute them from
// the root along the (still clean) broadcast-tree paths.
func (w *ftWorld) declareDead(id int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.doneFlag || w.dead[id] || w.exited[id] {
		return
	}
	w.dead[id] = true
	w.wb.At(0).Write(w.fFence[id], 1)
	w.inbox[id] = nil
	if id == w.syncID {
		w.epoch++
		w.needSync = true
		if len(w.spares) == 0 {
			panic("runtime: synchronizer crashed with no spares left to re-elect; raise Config.Spares")
		}
	} else {
		keys := make([]string, 0, 4)
		for key, ord := range w.ledger {
			if ord.assignee == id && !ord.done && ord.register {
				keys = append(keys, key)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			ord := w.ledger[key]
			s := w.takeSpareLocked()
			ord.assignee = s
			w.inbox[s] = append(w.inbox[s], key)
			w.reassigned++
		}
	}
	w.cond.Broadcast()
}

func (w *ftWorld) takeSpareLocked() int {
	if len(w.spares) == 0 {
		panic("runtime: spare pool exhausted during recovery; raise Config.Spares")
	}
	s := w.spares[0]
	w.spares = w.spares[1:]
	w.sparesUsed++
	return s
}

// poolInboundLocked reports whether some live agent still holds an
// incomplete homeward order and will therefore rejoin the root pool.
func (w *ftWorld) poolInboundLocked() bool {
	for _, ord := range w.ledger {
		if !ord.done && !ord.register && ord.assignee >= 0 && !w.dead[ord.assignee] {
			return true
		}
	}
	return false
}

// takeWorkerLocked draws an idle agent from the root pool. When the
// pool is empty it waits for inbound returners rather than racing them
// against the spare reserve — drafting a spare just because a returner
// is a few scheduler ticks from home would make the spare count depend
// on wall-clock timing. A spare is drafted only once the pool can no
// longer refill (every homeward walker is done or dead). Returns false
// if the caller is fenced while waiting.
func (w *ftWorld) takeWorkerLocked(caller int) (int, bool) {
	if !w.awaitLocked(caller, func() bool {
		return len(w.pool) > 0 || (!w.poolInboundLocked() && len(w.spares) > 0)
	}) {
		return -1, false
	}
	if len(w.pool) > 0 {
		a := w.pool[len(w.pool)-1]
		w.pool = w.pool[:len(w.pool)-1]
		return a, true
	}
	return w.takeSpareLocked(), true
}

// popLiveAtLocked removes and returns a live agent standing on x, or
// -1 when only crashed bodies remain (they keep guarding x but cannot
// walk; a spare must take over their onward duty).
func (w *ftWorld) popLiveAtLocked(x int) int {
	agents := w.at[x]
	for i := len(agents) - 1; i >= 0; i-- {
		a := agents[i]
		if w.dead[a] {
			continue
		}
		w.at[x] = append(agents[:i], agents[i+1:]...)
		return a
	}
	return -1
}

// issueLocked records an order on the ledger (mirrored to the homebase
// whiteboard) and posts it to the assignee's inbox. An assignee of -1
// records a vacuously complete order — the work is moot, e.g. a dead
// leaf agent that stays behind as a permanent guard.
func (w *ftWorld) issueLocked(key string, assignee, dst int, register bool) *ftOrder {
	ord := &ftOrder{key: key, assignee: assignee, dst: dst, register: register}
	ord.doneF = w.wb.Field(orderField(key, "done"))
	w.ledger[key] = ord
	w.wb.At(0).Write(w.wb.Field(orderField(key, "dst")), int64(dst))
	if assignee < 0 {
		ord.done = true
		w.wb.At(0).Write(ord.doneF, 1)
	} else {
		w.inbox[assignee] = append(w.inbox[assignee], key)
	}
	w.broadcastLocked()
	return ord
}

// execute walks one order. The remaining path is reconstructed from
// the agent's current position and the order's destination: outbound
// orders follow the broadcast-tree path from the root (of which the
// walker's position is always a prefix node — spares start at the
// root, escorted cleaners at the destination's parent), homeward
// orders the clear-bits-first shortest path. Returns false if the
// agent crashed or was fenced mid-walk.
func (w *ftWorld) execute(id int, ord *ftOrder, rng *rand.Rand) bool {
	w.mu.Lock()
	pos, _ := w.b.Position(id)
	w.mu.Unlock()
	var path []int
	if ord.register {
		tp := w.bt.PathFromRoot(ord.dst)
		i := indexOf(tp, pos)
		if i < 0 {
			panic(fmt.Sprintf("runtime: agent %d at %d is off the tree path to %d (order %s)", id, pos, ord.dst, ord.key))
		}
		path = tp[i:]
	} else {
		path = w.h.ShortestPath(pos, ord.dst)
	}
	for _, v := range path[1:] {
		act := w.action(faults.MoveCtx{Agent: id, OrderKey: ord.key})
		if act.Crash {
			w.noteCrash(id)
			return false
		}
		w.sleepUnits(act.Delay)
		sleepLatency(rng, w.cfg.MaxLatency)
		if !w.applyMove(id, v, act.Hold, false, "cleaner") {
			return false
		}
	}
	w.mu.Lock()
	ord.done = true
	w.wb.At(0).Write(ord.doneF, 1)
	if ord.register {
		w.at[ord.dst] = append(w.at[ord.dst], id)
	} else {
		w.pool = append(w.pool, id)
	}
	w.broadcastLocked()
	w.mu.Unlock()
	return true
}

func indexOf(path []int, v int) int {
	for i, p := range path {
		if p == v {
			return i
		}
	}
	return -1
}

// workerLoop is the local program of every non-synchronizer agent:
// serve orders from the inbox; spares additionally stand for election
// when the watchdog opens a new synchronizer epoch.
func (w *ftWorld) workerLoop(id int, spare bool, rng *rand.Rand) {
	w.mu.Lock()
	for {
		switch {
		case w.dead[id]:
			w.mu.Unlock()
			w.stopHeartbeat(id)
			return
		case len(w.inbox[id]) > 0:
			key := w.inbox[id][0]
			w.inbox[id] = w.inbox[id][1:]
			ord := w.ledger[key]
			w.mu.Unlock()
			if !w.execute(id, ord, rng) {
				return // crashed (lease expires) or fenced (already declared)
			}
			w.mu.Lock()
		case spare && w.needSync && w.inReserveLocked(id):
			e := w.epoch
			w.mu.Unlock()
			won := w.wb.At(0).CompareAndSwap(w.wb.Field(epochField(e)), 0, int64(id)+1)
			w.mu.Lock()
			if won && w.needSync && w.epoch == e {
				w.needSync = false
				w.syncID = id
				w.removeSpareLocked(id)
				w.sparesUsed++
				w.reelections++
				w.wb.At(0).Write(w.fOwner, int64(id)+1)
				w.cond.Broadcast()
				w.mu.Unlock()
				w.syncProgram(id, rng)
				return
			}
			for w.needSync && w.epoch == e && !w.dead[id] {
				w.cond.Wait()
			}
		case w.doneFlag:
			w.mu.Unlock()
			w.finish(id)
			return
		default:
			w.cond.Wait()
		}
	}
}

// inReserveLocked reports whether id is still an undrafted spare. Only
// reserve spares may stand for synchronizer re-election: a drafted
// spare may be standing guard on a frontier node, and abandoning that
// post to run the synchronizer program would recontaminate the region
// behind it.
func (w *ftWorld) inReserveLocked(id int) bool {
	for _, s := range w.spares {
		if s == id {
			return true
		}
	}
	return false
}

func (w *ftWorld) removeSpareLocked(id int) {
	for i, s := range w.spares {
		if s == id {
			w.spares = append(w.spares[:i], w.spares[i+1:]...)
			return
		}
	}
}

// removeFromPoolLocked drops id from the root pool (the elected
// synchronizer stops being assignable).
func (w *ftWorld) removeFromPoolLocked(id int) {
	for i, a := range w.pool {
		if a == id {
			w.pool = append(w.pool[:i], w.pool[i+1:]...)
			return
		}
	}
}

// terminateAllLocked retires every still-active agent in place,
// recording the trace. Crashed bodies stay as permanent guards.
func (w *ftWorld) terminateAllLocked() {
	for id := 0; id < w.b.Agents(); id++ {
		if v, active := w.b.Position(id); active {
			w.b.Terminate(id, w.step)
			w.record(trace.Event{Time: w.step, Kind: trace.Terminate, Agent: id, From: v, To: v})
			w.step++
		}
	}
}

func (w *ftWorld) report(name string, team, spares int) FTReport {
	res := w.result(name, team+spares)
	w.mu.Lock()
	defer w.mu.Unlock()
	return FTReport{
		Result:      res,
		Log:         w.log,
		Team:        team,
		Spares:      spares,
		Crashes:     w.crashes,
		Reassigned:  w.reassigned,
		Reelections: w.reelections,
		SparesUsed:  w.sparesUsed,
	}
}

// RunCleanFT executes Algorithm CLEAN on the crash-tolerant goroutine
// runtime: the team races a whiteboard CAS election, the winner runs
// the checkpointed synchronizer program, every agent maintains a lease
// the watchdog monitors, and cfg.Faults injects deterministic
// adversity. A crashed cleaner's walk is reconstructed from the order
// ledger and reassigned to a spare; a crashed synchronizer triggers a
// CAS re-election among the spares, and the winner resumes from the
// whiteboard checkpoint. The search completes with the surviving team
// as long as spares cover the crashes.
func RunCleanFT(d int, cfg Config) (FTReport, error) {
	cfg = cfg.withDefaults()
	var inj *faults.Injector
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return FTReport{}, err
		}
		inj = faults.NewInjector(cfg.Faults)
	}
	w := newFTWorld(d, cfg, inj)
	team := int(combin.CleanTeamSize(d))
	spares := cfg.Spares
	if spares <= 0 && inj != nil && inj.Crashes() > 0 {
		spares = inj.Crashes() + 1
	}
	total := team + spares
	w.initAgents(total, team)

	if d == 0 {
		w.mu.Lock()
		w.terminateAllLocked()
		w.mu.Unlock()
		return w.report(CleanFTName, team, spares), nil
	}

	wdQuit := make(chan struct{})
	go w.watchdog(wdQuit)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		go w.heartbeat(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, uint64(i))))
			w.agentMain(i, i >= team, rng)
		}(i)
	}
	wg.Wait()
	close(wdQuit)
	for i := 0; i < total; i++ {
		w.stopHeartbeat(i)
	}

	w.mu.Lock()
	w.terminateAllLocked()
	w.mu.Unlock()
	return w.report(CleanFTName, team, spares), nil
}

// agentMain races the initial election (workers only — spares stay in
// reserve) and then runs the won role.
func (w *ftWorld) agentMain(id int, spare bool, rng *rand.Rand) {
	if !spare && w.wb.At(0).CompareAndSwap(w.fSync, 0, int64(id)+1) {
		w.mu.Lock()
		w.syncID = id
		w.removeFromPoolLocked(id)
		w.mu.Unlock()
		w.wb.At(0).Write(w.fOwner, int64(id)+1)
		w.syncProgram(id, rng)
		return
	}
	w.workerLoop(id, spare, rng)
}
