package runtime

// The goroutine runtime never seeds from the wall clock: every random
// stream — per-agent schedulers, the fault injector, the watchdog — is
// derived from the single explicit Config.Seed, so a run is
// reproducible end-to-end from its configuration alone. Streams are
// split with SplitMix64 rather than seed+i so that adjacent agent
// indices get decorrelated schedules.

// splitmix64 is the standard SplitMix64 finalizer (Steele, Lea &
// Flood, "Fast Splittable Pseudorandom Number Generators").
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// deriveSeed returns the seed for an independent stream of the run
// identified by root. The mixing is deliberately asymmetric in (root,
// stream) — an xor of two hashes would collide whenever the pair is
// swapped — and distinct stream ids give decorrelated sources.
func deriveSeed(root int64, stream uint64) int64 {
	return int64(splitmix64(splitmix64(uint64(root)) + stream))
}
