// Package runtime executes the paper's strategies as genuinely
// concurrent Go programs: every agent is a goroutine, nodes carry
// mutual-exclusion whiteboards, and per-move latencies are injected by
// a seeded randomized scheduler — the asynchronous model of Section 2
// made literal. The discrete-event engine (internal/strategy) is the
// metrics reference; this package demonstrates that the algorithms,
// coded as local agent programs, stay correct under real preemption
// (run the tests with -race).
package runtime

import (
	"math/rand"
	"sync"
	"time"

	"hypersearch/internal/board"
	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/metrics"
	"hypersearch/internal/whiteboard"
)

// Config controls a runtime execution. Seed is the only source of
// randomness: every stream (per-agent schedulers, watchdog) is derived
// from it with deriveSeed, so equal configs replay equal runs.
type Config struct {
	Seed       int64         // randomized-scheduler seed
	MaxLatency time.Duration // per-move sleep is uniform in [0, MaxLatency]

	// Fault-tolerant runs (RunCleanFT / RunVisibilityFT) only:

	Faults *faults.Plan // deterministic fault plan (nil = fault-free)
	Spares int          // extra agents provisioned for crash recovery (0 = crashes+1)
	Record bool         // keep a structured trace (logical-clock timestamps)

	HeartbeatEvery time.Duration // lease heartbeat period (0 = 2ms)
	LeaseTTL       time.Duration // watchdog declares an agent dead after this silence (0 = 250ms)
	FaultUnit      time.Duration // wall-clock length of one fault delay unit (0 = 100µs)
}

// Defaults for the fault-tolerant runtime's timing knobs. LeaseTTL is
// two orders of magnitude above the heartbeat so a live-but-slow agent
// (GC pause, race-detector overhead) is never fenced spuriously.
const (
	defaultHeartbeat = 2 * time.Millisecond
	defaultLeaseTTL  = 250 * time.Millisecond
	defaultFaultUnit = 100 * time.Microsecond
)

// withDefaults fills the zero timing knobs.
func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = defaultHeartbeat
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = defaultLeaseTTL
	}
	if c.FaultUnit < 0 {
		c.FaultUnit = 0
	} else if c.FaultUnit == 0 {
		c.FaultUnit = defaultFaultUnit
	}
	return c
}

// world is the shared state of one concurrent run. The board is
// guarded by mu; cond broadcasts on every board change so local agent
// programs can re-evaluate their visibility conditions.
type world struct {
	mu   sync.Mutex
	cond *sync.Cond

	h  *hypercube.Hypercube
	bt *heapqueue.Tree
	b  *board.Board
	wb *whiteboard.Store

	// Whiteboard fields are interned once here, at store construction;
	// the agents' Read/Write/CAS hot paths then index by ID and never
	// hash a field name again.
	fSync    whiteboard.Field
	fOwner   whiteboard.Field
	fCk      whiteboard.Field
	fAgents  whiteboard.Field
	fPlanned whiteboard.Field
	fQuota   []whiteboard.Field // per broadcast-tree child index

	syncMoves int64
}

func newWorld(d int) *world {
	h := hypercube.ForDim(d)
	w := &world{
		h:  h,
		bt: heapqueue.ForDim(d),
		b:  board.New(h, 0),
		wb: whiteboard.NewStore(h.Order()),
	}
	w.cond = sync.NewCond(&w.mu)
	w.fSync = w.wb.Field(fieldSync)
	w.fOwner = w.wb.Field(fieldOwner)
	w.fCk = w.wb.Field(fieldCk)
	w.fAgents = w.wb.Field(fieldAgents)
	w.fPlanned = w.wb.Field(fieldPlanned)
	w.fQuota = make([]whiteboard.Field, d)
	for i := range w.fQuota {
		w.fQuota[i] = w.wb.Field(quotaField(i))
	}
	return w
}

// sleepLatency injects the adversarial scheduler's delay; rng is owned
// by the calling goroutine.
func sleepLatency(rng *rand.Rand, max time.Duration) {
	if max <= 0 {
		return
	}
	time.Sleep(time.Duration(rng.Int63n(int64(max) + 1)))
}

// move performs one atomic move of agent id to node `to` under the
// world lock and wakes every waiting agent.
func (w *world) move(id, to int) {
	w.mu.Lock()
	w.b.Move(id, to, 0)
	w.cond.Broadcast()
	w.mu.Unlock()
}

// result assembles the final summary; real-time runs have no virtual
// makespan, so Makespan is left zero.
func (w *world) result(name string, team int) metrics.Result {
	w.mu.Lock()
	defer w.mu.Unlock()
	return metrics.Result{
		Strategy:         name,
		Dim:              w.h.Dim(),
		Nodes:            w.h.Order(),
		TeamSize:         team,
		PeakAway:         w.b.PeakAway(),
		AgentMoves:       w.b.Moves() - w.syncMoves,
		SyncMoves:        w.syncMoves,
		TotalMoves:       w.b.Moves(),
		Recontaminations: w.b.Recontaminations(),
		MonotoneOK:       w.b.MonotoneViolations() == 0,
		ContiguousOK:     w.b.Contiguous(),
		Captured:         w.b.AllClean(),
	}
}
