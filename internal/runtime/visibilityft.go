package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hypersearch/internal/combin"
	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/trace"
)

// VisibilityFTName identifies the fault-injected visibility run.
const VisibilityFTName = "visibility-ft-goroutines"

// RunVisibilityFT executes CLEAN WITH VISIBILITY under fault
// injection: stalls, latency spikes, whiteboard lock starvation, and
// lost visibility wakeups (healed by the periodic re-broadcaster, the
// visibility model's watchdog). Crash faults are rejected: the local
// rule has no order ledger to reconstruct a dead agent's duty from, so
// crash recovery is the coordinated runtime's province.
func RunVisibilityFT(d int, cfg Config) (FTReport, error) {
	cfg = cfg.withDefaults()
	var inj *faults.Injector
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return FTReport{}, err
		}
		if cfg.Faults.RequiresRecovery() {
			return FTReport{}, fmt.Errorf("runtime: crash faults require the coordinated runtime (RunCleanFT); the visibility local rule is not crash-recoverable")
		}
		inj = faults.NewInjector(cfg.Faults)
	}
	w := newFTWorld(d, cfg, inj)
	team := int(combin.VisibilityAgents(d))
	w.initAgents(team, team)
	w.wb.At(0).Write(w.fAgents, int64(team))

	if d == 0 {
		w.mu.Lock()
		w.terminateAllLocked()
		w.mu.Unlock()
		return w.report(VisibilityFTName, team, 0), nil
	}

	quit := make(chan struct{})
	go w.rebroadcaster(quit)
	var wg sync.WaitGroup
	for i := 0; i < team; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w.ftAgentProgram(i, rand.New(rand.NewSource(deriveSeed(cfg.Seed, uint64(i)))))
		}(i)
	}
	wg.Wait()
	close(quit)
	for i := 0; i < team; i++ {
		w.stopHeartbeat(i)
	}
	return w.report(VisibilityFTName, team, 0), nil
}

// rebroadcaster periodically wakes every waiter, so a wakeup swallowed
// by the fault injector only costs time, never liveness.
func (w *ftWorld) rebroadcaster(quit chan struct{}) {
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-quit:
			return
		case <-t.C:
			w.mu.Lock()
			w.cond.Broadcast()
			w.mu.Unlock()
		}
	}
}

// ftAgentProgram is the visibility local rule of Section 4.2 with
// fault hooks on every move and broadcast.
func (w *ftWorld) ftAgentProgram(id int, rng *rand.Rand) {
	at := 0
	for {
		w.mu.Lock()
		k := w.bt.Type(at)
		if k == 0 {
			w.b.Terminate(id, w.step)
			w.record(trace.Event{Time: w.step, Kind: trace.Terminate, Agent: id, From: at, To: at})
			w.step++
			w.exited[id] = true
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		required := heapqueue.AgentsRequired(k)
		for !(w.wb.At(at).Read(w.fPlanned) == 1 ||
			(w.wb.At(at).Read(w.fAgents) == required && w.smallerReadyLocked(at))) {
			w.cond.Wait()
		}
		target := w.claimSlotLocked(at, k)
		w.mu.Unlock()

		act := w.action(faults.MoveCtx{Agent: id})
		w.sleepUnits(act.Delay)
		sleepLatency(rng, w.cfg.MaxLatency)

		w.mu.Lock()
		w.wb.At(at).Add(w.fAgents, -1)
		w.wb.At(target).Add(w.fAgents, 1)
		w.b.Move(id, target, w.step)
		w.record(trace.Event{Time: w.step, Kind: trace.Move, Agent: id, From: at, To: target, Role: "cleaner"})
		w.step++
		if act.Hold > 0 && w.cfg.FaultUnit > 0 {
			time.Sleep(time.Duration(act.Hold) * w.cfg.FaultUnit)
		}
		w.broadcastLocked()
		w.mu.Unlock()
		at = target
	}
}
