package runtime

import (
	"testing"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/invariant"
)

// Fast watchdog knobs for tests: crash detection costs one TTL, so the
// tests shrink it (while keeping it far above the heartbeat period, as
// the spurious-fencing guard requires).
func testCfg(seed int64, plan *faults.Plan) Config {
	return Config{
		Seed:           seed,
		MaxLatency:     100 * time.Microsecond,
		Faults:         plan,
		Record:         true,
		HeartbeatEvery: time.Millisecond,
		LeaseTTL:       80 * time.Millisecond,
		FaultUnit:      10 * time.Microsecond,
	}
}

func checkTrace(t *testing.T, rep FTReport, d int) {
	t.Helper()
	if rep.Log == nil {
		t.Fatal("Record was set but the report carries no trace")
	}
	ir, err := invariant.Check(rep.Log, hypercube.New(d), 0)
	if err != nil {
		t.Fatalf("invariant.Check: %v", err)
	}
	if !ir.Ok() {
		t.Fatalf("trace violates invariants: %s %v", ir, ir.Violations)
	}
}

// A fault-free FT run must complete the search with exactly the plain
// concurrent runtime's cleaner traffic: the recovery machinery (leases,
// watchdog, ledger) may cost time, never moves.
func TestCleanFTFaultFreeParity(t *testing.T) {
	for d := 0; d <= 4; d++ {
		rep, err := RunCleanFT(d, testCfg(11, nil))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !rep.Result.Ok() {
			t.Fatalf("d=%d: run failed invariants: %+v", d, rep.Result)
		}
		if rep.Crashes != 0 || rep.Reassigned != 0 || rep.Reelections != 0 || rep.SparesUsed != 0 {
			t.Fatalf("d=%d: fault-free run reports recovery activity: %+v", d, rep)
		}
		plain := RunClean(d, Config{Seed: 11, MaxLatency: 100 * time.Microsecond})
		if rep.Result.AgentMoves != plain.AgentMoves {
			t.Errorf("d=%d: FT cleaner moves %d, plain runtime %d", d, rep.Result.AgentMoves, plain.AgentMoves)
		}
		// d <= 1 has no level walks, so the synchronizer never moves.
		if d >= 2 && rep.Result.SyncMoves == 0 {
			t.Errorf("d=%d: synchronizer made no moves", d)
		}
		checkTrace(t, rep, d)
	}
}

// A crashed cleaner's walk must be reconstructed from the order ledger
// and finished by a spare, without recontaminating a single node.
func TestCleanFTCleanerCrashRecovery(t *testing.T) {
	plan := &faults.Plan{Name: "cleaner-crash", Seed: 7, Faults: []faults.Fault{
		{Kind: faults.Crash, Target: "order:p0.e1", At: 1},
	}}
	rep, err := RunCleanFT(3, testCfg(7, plan))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Ok() {
		t.Fatalf("search did not complete cleanly: %+v", rep.Result)
	}
	if rep.Result.Recontaminations != 0 {
		t.Fatalf("recovery recontaminated %d times", rep.Result.Recontaminations)
	}
	if rep.Crashes != 1 || rep.Reassigned != 1 || rep.SparesUsed != 1 || rep.Reelections != 0 {
		t.Fatalf("unexpected recovery stats: %+v", rep)
	}
	checkTrace(t, rep, 3)
}

// A crashed synchronizer must trigger a CAS re-election among the
// spares, and the winner must resume from the whiteboard checkpoint.
func TestCleanFTSynchronizerReelection(t *testing.T) {
	plan := &faults.Plan{Name: "sync-crash", Seed: 7, Faults: []faults.Fault{
		{Kind: faults.Crash, Target: faults.TargetSync, At: 5},
	}}
	rep, err := RunCleanFT(3, testCfg(7, plan))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Ok() {
		t.Fatalf("search did not complete cleanly: %+v", rep.Result)
	}
	if rep.Crashes != 1 || rep.Reelections != 1 || rep.SparesUsed != 1 {
		t.Fatalf("unexpected recovery stats: %+v", rep)
	}
	checkTrace(t, rep, 3)
}

// Delay faults (stall, spike, starvation, lost wakeups) cost time but
// must never change which moves happen.
func TestCleanFTDelayFaultsMovePreserving(t *testing.T) {
	plan := &faults.Plan{Name: "delays", Seed: 3, Faults: []faults.Fault{
		{Kind: faults.Stall, Target: faults.TargetSync, At: 3, Delay: 40},
		{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 5, Until: 15, Delay: 10},
		{Kind: faults.LockStarve, Target: faults.TargetAny, At: 8, Delay: 30},
		{Kind: faults.LostWakeup, At: 2, Until: 20},
	}}
	faulted, err := RunCleanFT(3, testCfg(3, plan))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunCleanFT(3, testCfg(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !faulted.Result.Ok() {
		t.Fatalf("faulted run failed: %+v", faulted.Result)
	}
	if faulted.Result.TotalMoves != clean.Result.TotalMoves {
		t.Errorf("delay faults changed the move count: %d vs %d", faulted.Result.TotalMoves, clean.Result.TotalMoves)
	}
	if faulted.Crashes != 0 || faulted.SparesUsed != 0 {
		t.Errorf("delay-only plan triggered recovery: %+v", faulted)
	}
	checkTrace(t, faulted, 3)
}

// Reruns of the same seed and plan must agree on every move count and
// every recovery statistic — the determinism contract of the harness.
func TestCleanFTDeterministicReruns(t *testing.T) {
	plan := &faults.Plan{Name: "mixed", Seed: 5, Faults: []faults.Fault{
		{Kind: faults.Crash, Target: "order:p0.e0", At: 1},
		{Kind: faults.Crash, Target: faults.TargetSync, At: 7},
		{Kind: faults.Stall, Target: faults.TargetAny, At: 11, Delay: 25},
		{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 4, Until: 9, Delay: 8},
		{Kind: faults.LostWakeup, At: 3, Until: 12},
	}}
	type fingerprint struct {
		total, agent, sync                        int64
		crashes, reassigned, reelections, spares int
	}
	var runs []fingerprint
	for i := 0; i < 3; i++ {
		rep, err := RunCleanFT(3, testCfg(5, plan))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Result.Ok() {
			t.Fatalf("run %d failed: %+v", i, rep.Result)
		}
		checkTrace(t, rep, 3)
		runs = append(runs, fingerprint{
			rep.Result.TotalMoves, rep.Result.AgentMoves, rep.Result.SyncMoves,
			rep.Crashes, rep.Reassigned, rep.Reelections, rep.SparesUsed,
		})
	}
	for i := 1; i < len(runs); i++ {
		if runs[i] != runs[0] {
			t.Fatalf("rerun %d diverged: %+v vs %+v", i, runs[i], runs[0])
		}
	}
}

// Crash plans must be rejected by engines that cannot recover from
// them, with an error pointing at the crash-tolerant runtime.
func TestVisibilityFTRejectsCrashPlans(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Faults: []faults.Fault{
		{Kind: faults.Crash, Target: faults.TargetSync, At: 1},
	}}
	if _, err := RunVisibilityFT(3, testCfg(1, plan)); err == nil {
		t.Fatal("RunVisibilityFT accepted a crash plan")
	}
}

// The visibility runtime under a barrage of lost wakeups must still
// finish (the re-broadcaster heals liveness) with exactly the plain
// visibility run's traffic.
func TestVisibilityFTLostWakeups(t *testing.T) {
	plan := &faults.Plan{Name: "lost-wakeups", Seed: 9, Faults: []faults.Fault{
		{Kind: faults.LostWakeup, At: 1, Until: 100},
	}}
	rep, err := RunVisibilityFT(3, testCfg(9, plan))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Ok() {
		t.Fatalf("run failed: %+v", rep.Result)
	}
	plain := RunVisibility(3, Config{Seed: 9, MaxLatency: 100 * time.Microsecond})
	if rep.Result.AgentMoves != plain.AgentMoves {
		t.Errorf("lost wakeups changed the move count: %d vs %d", rep.Result.AgentMoves, plain.AgentMoves)
	}
	checkTrace(t, rep, 3)
}

// Seed sensitivity: the derived per-agent streams must actually depend
// on the root seed (a regression guard for the seed plumbing).
func TestDeriveSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for root := int64(0); root < 8; root++ {
		for stream := uint64(0); stream < 8; stream++ {
			s := deriveSeed(root, stream)
			if seen[s] {
				t.Fatalf("deriveSeed collision at root=%d stream=%d", root, stream)
			}
			seen[s] = true
		}
	}
}
