package runtime

import (
	"math/rand"
	"sync"
	"time"

	"hypersearch/internal/combin"
	"hypersearch/internal/metrics"
)

// CleanName identifies the concurrent coordinated run in results.
const CleanName = "clean-goroutines"

// fieldSync is the root-whiteboard field agents race on to elect the
// synchronizer: "the first that gains access will become the
// synchronizer" — realized as a compare-and-swap under the
// whiteboard's mutual exclusion.
const fieldSync = "synchronizer"

// order is a command the synchronizer posts to a worker: walk this
// path; done is closed when the walk completes.
type order struct {
	path []int
	done chan struct{}
}

// RunClean executes Algorithm CLEAN with real goroutines: the team is
// placed at the homebase, every agent races the CAS election, the
// winner runs the synchronizer program and the rest follow orders.
// Unlike the discrete-event version (where the synchronizer escorts
// each cleaner in lockstep), the concurrent synchronizer lets the
// cleaner cross first and then performs its own round trip — the same
// moves, and strictly safer interleavings.
func RunClean(d int, cfg Config) metrics.Result {
	w := newWorld(d)
	team := int(combin.CleanTeamSize(d))

	w.mu.Lock()
	ids := make([]int, team)
	for i := range ids {
		ids[i] = w.b.Place(0)
	}
	w.mu.Unlock()

	if d == 0 {
		w.mu.Lock()
		w.b.Terminate(ids[0], 0)
		w.mu.Unlock()
		return w.result(CleanName, team)
	}

	orderCh := make([]chan order, team)
	for i := range orderCh {
		orderCh[i] = make(chan order, 4)
	}

	var wg sync.WaitGroup
	elected := make(chan int, 1)
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, uint64(i))))
			if w.wb.At(0).CompareAndSwap(w.fSync, 0, int64(id)+1) {
				elected <- id
				runSynchronizer(w, id, ids, orderCh, rng, cfg.MaxLatency)
				return
			}
			runWorker(w, id, orderCh[id], rng, cfg.MaxLatency)
		}(i, id)
	}
	wg.Wait()
	<-elected // exactly one winner or the CAS election is broken

	w.mu.Lock()
	for _, id := range ids {
		if _, active := w.b.Position(id); active {
			w.b.Terminate(id, 0)
		}
	}
	w.mu.Unlock()
	return w.result(CleanName, team)
}

// runWorker walks whatever paths the synchronizer posts, injecting the
// adversarial latency before every edge, until its channel closes.
func runWorker(w *world, id int, orders chan order, rng *rand.Rand, maxLat time.Duration) {
	for ord := range orders {
		for _, v := range ord.path[1:] {
			sleepLatency(rng, maxLat)
			w.move(id, v)
		}
		close(ord.done)
	}
}

// synchronizer is the coordinator program: the concurrent analogue of
// the DES implementation in internal/strategy/coordinated.
type synchronizer struct {
	w       *world
	me      int
	orderCh []chan order
	rng     *rand.Rand
	maxLat  time.Duration

	pool     []int         // idle workers at the root
	returned chan int      // workers that have walked home
	at       map[int][]int // node -> workers standing there
	pending  map[int][]chan struct{}
}

func runSynchronizer(w *world, me int, ids []int, orderCh []chan order, rng *rand.Rand, maxLat time.Duration) {
	s := &synchronizer{
		w: w, me: me, orderCh: orderCh, rng: rng, maxLat: maxLat,
		returned: make(chan int, len(ids)),
		at:       make(map[int][]int),
		pending:  make(map[int][]chan struct{}),
	}
	for _, id := range ids {
		if id != me {
			s.pool = append(s.pool, id)
		}
	}
	d := w.h.Dim()

	// Phase 0: one worker to each root child; the synchronizer makes
	// its own escorted round trip.
	for _, child := range w.bt.Children(0) {
		a := s.take()
		s.send(a, []int{0, child}, true)
		s.at[child] = append(s.at[child], a)
		s.selfWalk([]int{0, child, 0})
	}

	// Phases 1..d-1.
	for l := 1; l <= d-1; l++ {
		// 2.1: couriers down the broadcast tree.
		for _, x := range w.h.NodesAtLevel(l) {
			k := w.bt.Type(x)
			for i := 0; i < k-1; i++ {
				a := s.take()
				s.send(a, w.bt.PathFromRoot(x), false)
				s.at[x] = append(s.at[x], a)
			}
		}
		// 2.2 + 2.3: walk the level in lexicographic order.
		cur := 0
		for _, x := range w.h.NodesAtLevel(l) {
			s.selfWalk(w.h.ShortestPath(cur, x))
			cur = x
			if w.bt.IsLeaf(x) {
				a := s.pop(x)
				s.awaitArrivals(x) // courier bookkeeping is per-node; leaves have none
				s.sendHome(a, x)
				continue
			}
			s.awaitArrivals(x)
			for _, child := range w.bt.Children(x) {
				a := s.pop(x)
				s.send(a, []int{x, child}, true)
				s.at[child] = append(s.at[child], a)
				s.selfWalk([]int{x, child, x})
			}
		}
		s.selfWalk(w.h.ShortestPath(cur, 0))
	}
	// Shut the workers down.
	for i, ch := range s.orderCh {
		if i != s.me {
			close(ch)
		}
	}
}

// send posts an order; when wait is true the synchronizer blocks until
// the walk completes (escorts must land before the next action), and
// when false the completion is parked for awaitArrivals.
func (s *synchronizer) send(a int, path []int, wait bool) {
	done := make(chan struct{})
	s.orderCh[a] <- order{path: path, done: done}
	if wait {
		<-done
		return
	}
	dst := path[len(path)-1]
	s.pending[dst] = append(s.pending[dst], done)
}

// sendHome orders a released leaf agent back to the root pool; its
// completion feeds the returned channel asynchronously.
func (s *synchronizer) sendHome(a, from int) {
	done := make(chan struct{})
	s.orderCh[a] <- order{path: s.w.h.ShortestPath(from, 0), done: done}
	go func() {
		<-done
		s.returned <- a
	}()
}

// awaitArrivals blocks until every courier bound for x has landed.
func (s *synchronizer) awaitArrivals(x int) {
	for _, done := range s.pending[x] {
		<-done
	}
	delete(s.pending, x)
}

// take pops an idle worker, draining returners when the pool is empty.
func (s *synchronizer) take() int {
	if len(s.pool) == 0 {
		return <-s.returned
	}
	a := s.pool[len(s.pool)-1]
	s.pool = s.pool[:len(s.pool)-1]
	return a
}

func (s *synchronizer) pop(x int) int {
	agents := s.at[x]
	a := agents[len(agents)-1]
	s.at[x] = agents[:len(agents)-1]
	return a
}

// selfWalk moves the synchronizer itself along a path, counting its
// traffic separately.
func (s *synchronizer) selfWalk(path []int) {
	for _, v := range path[1:] {
		sleepLatency(s.rng, s.maxLat)
		s.w.mu.Lock()
		s.w.b.Move(s.me, v, 0)
		s.w.syncMoves++
		s.w.cond.Broadcast()
		s.w.mu.Unlock()
	}
}
