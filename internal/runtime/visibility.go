package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hypersearch/internal/board"
	"hypersearch/internal/combin"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/metrics"
)

// VisibilityName identifies the concurrent visibility run in results.
const VisibilityName = "visibility-goroutines"

// whiteboard field names used by the visibility agents.
const (
	fieldAgents  = "agents"  // agents currently gathered on the node
	fieldPlanned = "planned" // 1 once some agent published the dispatch plan
	fieldQuota   = "quota."  // per-child remaining dispatch quota (suffix: child index)
)

// RunVisibility executes CLEAN WITH VISIBILITY with one goroutine per
// agent. Each agent runs the identical local program of Section 4.2:
// gather on a node, wait until the complement is present and every
// smaller neighbour is clean or guarded (read under the node's
// visibility), claim a child slot on the whiteboard, and move.
func RunVisibility(d int, cfg Config) metrics.Result {
	w := newWorld(d)
	team := int(combin.VisibilityAgents(d))

	w.mu.Lock()
	ids := make([]int, team)
	for i := range ids {
		ids[i] = w.b.Place(0)
	}
	w.wb.At(0).Write(w.fAgents, int64(team))
	w.mu.Unlock()

	if d == 0 {
		w.mu.Lock()
		w.b.Terminate(ids[0], 0)
		w.mu.Unlock()
		return w.result(VisibilityName, team)
	}

	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			agentProgram(w, id, rand.New(rand.NewSource(deriveSeed(cfg.Seed, uint64(i)))), cfg.MaxLatency)
		}(i, id)
	}
	wg.Wait()
	return w.result(VisibilityName, team)
}

// agentProgram is the local rule one agent executes until it retires
// on a broadcast-tree leaf.
func agentProgram(w *world, id int, rng *rand.Rand, maxLat time.Duration) {
	at := 0
	for {
		w.mu.Lock()
		k := w.bt.Type(at)
		if k == 0 {
			// Leaf: terminate in place.
			w.b.Terminate(id, 0)
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		required := heapqueue.AgentsRequired(k)
		// The gather condition must latch: once any member of the
		// complement observes it and publishes the dispatch plan,
		// members that re-check later (after peers already departed,
		// shrinking the count) must still pass. "planned" is that
		// latch.
		for !(w.wb.At(at).Read(w.fPlanned) == 1 ||
			(w.wb.At(at).Read(w.fAgents) == required && w.smallerReadyLocked(at))) {
			w.cond.Wait()
		}
		target := w.claimSlotLocked(at, k)
		w.mu.Unlock()

		sleepLatency(rng, maxLat)

		w.mu.Lock()
		w.wb.At(at).Add(w.fAgents, -1)
		w.wb.At(target).Add(w.fAgents, 1)
		w.b.Move(id, target, 0)
		w.cond.Broadcast()
		w.mu.Unlock()
		at = target
	}
}

// smallerReadyLocked is the visibility read: every smaller neighbour
// of v is clean or guarded. Caller holds w.mu.
func (w *world) smallerReadyLocked(v int) bool {
	for _, u := range w.h.SmallerNeighbours(v) {
		if w.b.StateOf(u) == board.Contaminated {
			return false
		}
	}
	return true
}

// claimSlotLocked atomically claims one dispatch slot on v's
// whiteboard, publishing the plan on first access, and returns the
// claimed child. Caller holds w.mu.
func (w *world) claimSlotLocked(v, k int) int {
	wb := w.wb.At(v)
	if wb.Read(w.fPlanned) == 0 {
		wb.Write(w.fPlanned, 1)
		for i, q := range heapqueue.DispatchPlan(k) {
			wb.Write(w.fQuota[i], q)
		}
	}
	children := w.bt.Children(v)
	for i, c := range children {
		if wb.Read(w.fQuota[i]) > 0 {
			wb.Add(w.fQuota[i], -1)
			return c
		}
	}
	panic(fmt.Sprintf("runtime: node %d has no free dispatch slot", v))
}

// quotaField names the per-child dispatch-quota fields; interned once
// in newWorld.
func quotaField(i int) string { return fmt.Sprintf("%s%d", fieldQuota, i) }
