package runtime

import (
	"testing"
	"time"

	"hypersearch/internal/combin"
)

func TestRunVisibilityCorrectUnderConcurrency(t *testing.T) {
	for d := 0; d <= 7; d++ {
		r := RunVisibility(d, Config{Seed: int64(d), MaxLatency: 50 * time.Microsecond})
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("d=%d: %s", d, r.String())
		}
		if r.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, r.Recontaminations)
		}
		if int64(r.TeamSize) != combin.VisibilityAgents(d) {
			t.Errorf("d=%d: team %d", d, r.TeamSize)
		}
		if d > 0 && r.TotalMoves != combin.VisibilityMoves(d) {
			t.Errorf("d=%d: moves %d, want %d", d, r.TotalMoves, combin.VisibilityMoves(d))
		}
	}
}

func TestRunVisibilityManySeeds(t *testing.T) {
	// The schedule changes with the seed; the outcome must not.
	for seed := int64(0); seed < 20; seed++ {
		r := RunVisibility(5, Config{Seed: seed, MaxLatency: 20 * time.Microsecond})
		if !r.Ok() || r.TotalMoves != combin.VisibilityMoves(5) {
			t.Errorf("seed %d: %s", seed, r.String())
		}
	}
}

func TestRunVisibilityZeroLatency(t *testing.T) {
	// MaxLatency 0 disables sleeping entirely: maximum contention.
	r := RunVisibility(6, Config{})
	if !r.Ok() {
		t.Errorf("%s", r.String())
	}
}

func TestRunCleanCorrectUnderConcurrency(t *testing.T) {
	for d := 0; d <= 6; d++ {
		r := RunClean(d, Config{Seed: 100 + int64(d), MaxLatency: 50 * time.Microsecond})
		if !r.Captured || !r.MonotoneOK || !r.ContiguousOK {
			t.Errorf("d=%d: %s", d, r.String())
		}
		if r.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, r.Recontaminations)
		}
		if int64(r.TeamSize) != combin.CleanTeamSize(d) {
			t.Errorf("d=%d: team %d", d, r.TeamSize)
		}
	}
}

func TestRunCleanManySeeds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := RunClean(4, Config{Seed: seed, MaxLatency: 30 * time.Microsecond})
		if !r.Ok() {
			t.Errorf("seed %d: %s", seed, r.String())
		}
		// Agent moves are schedule-independent (minus the unreturned
		// final leaf agent, as in the DES implementation).
		want := combin.CleanAgentMoves(4) - 4
		if r.AgentMoves != want {
			t.Errorf("seed %d: agent moves %d, want %d", seed, r.AgentMoves, want)
		}
	}
}

func TestRuntimeMatchesDESCosts(t *testing.T) {
	// The concurrent implementations realize the same move totals as
	// the discrete-event reference for every seed (the schedules differ
	// in time only).
	const d = 6
	r := RunVisibility(d, Config{Seed: 9, MaxLatency: 10 * time.Microsecond})
	if r.TotalMoves != combin.VisibilityMoves(d) {
		t.Errorf("visibility moves %d, want %d", r.TotalMoves, combin.VisibilityMoves(d))
	}
	rc := RunClean(d, Config{Seed: 9, MaxLatency: 10 * time.Microsecond})
	if rc.AgentMoves != combin.CleanAgentMoves(d)-int64(d) {
		t.Errorf("clean agent moves %d", rc.AgentMoves)
	}
	if rc.SyncMoves == 0 {
		t.Error("synchronizer did not move")
	}
}
