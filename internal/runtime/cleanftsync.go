package runtime

import (
	"fmt"
	"math/rand"

	"hypersearch/internal/faults"
)

// The synchronizer program is a deterministic list of resumable steps,
// checkpointed on the homebase whiteboard: after completing step i the
// synchronizer writes ck=i+1, so a re-elected successor skips the
// finished prefix and replays only the step in flight. Replays are
// safe because every order a step issues is recorded on the ledger
// first (issue-if-absent) and completions are awaited by ledger state,
// not by transient channels.
type ftStep struct {
	kind  int
	node  int // escort0: root child; node: the level node x
	level int
	idx   int // escort0: child index (key material)
}

const (
	stepEscort0  = iota // phase 0: send one cleaner to a root child
	stepDispatch        // step 2.1: couriers to every type-T(k) node, k >= 2
	stepNode            // steps 2.2/2.3: process one node of the level walk
	stepHome            // return to the root between levels
)

// buildSteps lays out the whole CLEAN schedule for this dimension.
func (w *ftWorld) buildSteps() []ftStep {
	d := w.h.Dim()
	var steps []ftStep
	for i, c := range w.bt.Children(0) {
		steps = append(steps, ftStep{kind: stepEscort0, node: c, idx: i})
	}
	for l := 1; l <= d-1; l++ {
		steps = append(steps, ftStep{kind: stepDispatch, level: l})
		for _, x := range w.h.NodesAtLevel(l) {
			steps = append(steps, ftStep{kind: stepNode, node: x, level: l})
		}
		steps = append(steps, ftStep{kind: stepHome, level: l})
	}
	return steps
}

// syncProgram runs (or resumes) the synchronizer role from the
// whiteboard checkpoint. On a crash or fencing mid-step it simply
// returns; the watchdog's re-election hands the remainder, ledger and
// all, to a spare.
func (w *ftWorld) syncProgram(id int, rng *rand.Rand) {
	steps := w.buildSteps()
	start := int(w.wb.At(0).Read(w.fCk))
	for i := start; i < len(steps); i++ {
		if !w.execStep(id, steps[i], rng) {
			return
		}
		w.wb.At(0).Write(w.fCk, int64(i+1))
	}
	w.mu.Lock()
	w.doneFlag = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.finish(id)
}

// execStep runs one step, tolerating partial prior execution. Returns
// false when the synchronizer crashed or was fenced.
func (w *ftWorld) execStep(id int, st ftStep, rng *rand.Rand) bool {
	switch st.kind {
	case stepEscort0:
		// The synchronizer observes phase 0 from the root; the cleaner
		// crosses alone (the strictly-safer concurrent interleaving, as
		// in the plain goroutine engine).
		key := fmt.Sprintf("p0.e%d", st.idx)
		return w.issueAndAwait(id, key, st.node, fromPool)

	case stepDispatch:
		if !w.syncWalkTo(id, 0, rng) {
			return false
		}
		for _, x := range w.h.NodesAtLevel(st.level) {
			k := w.bt.Type(x)
			for i := 0; i < k-1; i++ {
				key := fmt.Sprintf("d%d.x%d.c%d", st.level, x, i)
				w.mu.Lock()
				if _, ok := w.ledger[key]; !ok {
					a, alive := w.takeWorkerLocked(id)
					if !alive {
						w.mu.Unlock()
						return false
					}
					w.issueLocked(key, a, x, true)
				}
				w.mu.Unlock()
			}
		}
		return true

	case stepNode:
		return w.execNodeStep(id, st, rng)

	case stepHome:
		return w.syncWalkTo(id, 0, rng)
	}
	panic("runtime: unknown synchronizer step")
}

// execNodeStep walks the synchronizer to x and performs step 2.2/2.3
// there: release a leaf's cleaner homeward, or await the complement
// and send one cleaner down each broadcast-tree edge.
func (w *ftWorld) execNodeStep(id int, st ftStep, rng *rand.Rand) bool {
	x := st.node
	if !w.syncWalkTo(id, x, rng) {
		return false
	}
	k := w.bt.Type(x)
	if k == 0 {
		key := fmt.Sprintf("w%d.x%d.home", st.level, x)
		w.mu.Lock()
		if _, ok := w.ledger[key]; !ok {
			// A dead leaf agent stays behind as a permanent guard; the
			// order is then vacuously complete (assignee -1).
			w.issueLocked(key, w.popLiveAtLocked(x), 0, false)
		}
		w.mu.Unlock()
		return true
	}
	// Await the full complement before the first escort only: on a
	// resumed step the already-issued escorts have consumed part of it.
	firstKey := fmt.Sprintf("w%d.x%d.e0", st.level, x)
	w.mu.Lock()
	if _, ok := w.ledger[firstKey]; !ok {
		if !w.awaitLocked(id, func() bool { return len(w.at[x]) >= k }) {
			w.mu.Unlock()
			return false
		}
	}
	w.mu.Unlock()
	for j, child := range w.bt.Children(x) {
		key := fmt.Sprintf("w%d.x%d.e%d", st.level, x, j)
		if !w.issueAndAwait(id, key, child, fromNode(x)) {
			return false
		}
	}
	return true
}

// Assignee pickers for issueAndAwait. They run under w.mu.
type picker func(w *ftWorld, caller int) (assignee int, alive bool)

func fromPool(w *ftWorld, caller int) (int, bool) {
	return w.takeWorkerLocked(caller)
}

// fromNode prefers a live cleaner standing on x and falls back to a
// spare when only crashed bodies remain there.
func fromNode(x int) picker {
	return func(w *ftWorld, caller int) (int, bool) {
		if a := w.popLiveAtLocked(x); a >= 0 {
			return a, true
		}
		return w.takeSpareLocked(), true
	}
}

// issueAndAwait issues an outbound order (if this step's replay has
// not already) and blocks until it completes. Returns false if the
// synchronizer is fenced while waiting.
func (w *ftWorld) issueAndAwait(id int, key string, dst int, pick picker) bool {
	w.mu.Lock()
	ord, ok := w.ledger[key]
	if !ok {
		a, alive := pick(w, id)
		if !alive {
			w.mu.Unlock()
			return false
		}
		ord = w.issueLocked(key, a, dst, true)
	}
	okDone := w.awaitLocked(id, func() bool { return ord.done })
	w.mu.Unlock()
	return okDone
}

// syncWalkTo moves the synchronizer itself to dst along the
// clear-bits-first shortest path, which stays inside the already-clean
// region. Returns false on an injected crash or fencing.
func (w *ftWorld) syncWalkTo(id, dst int, rng *rand.Rand) bool {
	w.mu.Lock()
	pos, _ := w.b.Position(id)
	w.mu.Unlock()
	for _, v := range w.h.ShortestPath(pos, dst)[1:] {
		act := w.action(faults.MoveCtx{Agent: id, Sync: true})
		if act.Crash {
			w.noteCrash(id)
			return false
		}
		w.sleepUnits(act.Delay)
		sleepLatency(rng, w.cfg.MaxLatency)
		if !w.applyMove(id, v, act.Hold, true, "synchronizer") {
			return false
		}
	}
	return true
}
