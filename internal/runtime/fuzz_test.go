package runtime

import (
	"testing"
	"time"

	"hypersearch/internal/faults"
)

// FuzzFaultApplication drives RunCleanFT with fuzzer-shaped fault
// plans: whatever combination of crashes, stalls, spikes, starvation
// and lost wakeups comes out, the engine must neither panic nor wedge
// — every run completes the search. Plans are built from the raw bytes
// rather than parsed JSON so the fuzzer explores fault-space, not
// JSON-space (FuzzParse in internal/faults covers that side).
func FuzzFaultApplication(f *testing.F) {
	f.Add(int64(1), byte(0), byte(1), byte(2), byte(3))
	f.Add(int64(2), byte(4), byte(9), byte(0), byte(200))
	f.Add(int64(3), byte(255), byte(128), byte(64), byte(32))
	f.Add(int64(-7), byte(17), byte(5), byte(250), byte(7))

	// The deterministic crashable order keys of a d=2 CLEAN run.
	orderKeys := []string{"p0.e0", "p0.e1", "w1.x1.home", "w1.x2.home"}

	f.Fuzz(func(t *testing.T, seed int64, a, b, c, d byte) {
		var fs []faults.Fault
		if a%4 != 0 { // crash a worker order at edge 1 or 2
			fs = append(fs, faults.Fault{
				Kind:   faults.Crash,
				Target: "order:" + orderKeys[int(a)%len(orderKeys)],
				At:     1 + int(a%2),
			})
		}
		if b%3 == 0 { // crash the synchronizer somewhere early
			fs = append(fs, faults.Fault{Kind: faults.Crash, Target: faults.TargetSync, At: 1 + int(b%5)})
		}
		if c%2 == 0 {
			fs = append(fs, faults.Fault{Kind: faults.Stall, Target: faults.TargetAny, At: 1 + int(c%7), Delay: 1 + int64(c)})
			fs = append(fs, faults.Fault{Kind: faults.LockStarve, Target: faults.TargetAny, At: 1 + int(c%5), Delay: 1 + int64(c%50)})
		}
		if d%2 == 0 {
			fs = append(fs, faults.Fault{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 1 + int(d%6), Until: 1 + int(d%6) + int(d%9), Delay: 1 + int64(d%30)})
		}
		fs = append(fs, faults.Fault{Kind: faults.LostWakeup, At: 1 + int(d%3), Until: 1 + int(d%3) + int(a%20)})

		plan := &faults.Plan{Name: "fuzz", Seed: seed, Faults: fs}
		if err := plan.Validate(); err != nil {
			t.Fatalf("fuzz built an invalid plan: %v", err)
		}
		rep, err := RunCleanFT(2, Config{
			Seed:           seed,
			Faults:         plan,
			Record:         true,
			HeartbeatEvery: 500 * time.Microsecond,
			LeaseTTL:       40 * time.Millisecond,
			FaultUnit:      -1, // swallow all injected sleeps: fuzz wants throughput
		})
		if err != nil {
			t.Fatalf("RunCleanFT: %v", err)
		}
		if !rep.Result.Captured {
			t.Fatalf("engine wedged or gave up: %+v", rep.Result)
		}
		if !rep.Result.MonotoneOK || !rep.Result.ContiguousOK {
			t.Fatalf("invariants broken under fuzzed faults: %+v", rep.Result)
		}
		if rep.Crashes > 0 && rep.SparesUsed == 0 && rep.Reassigned+rep.Reelections > 0 {
			t.Fatalf("recovery happened without drafting spares: %+v", rep)
		}
	})
}
