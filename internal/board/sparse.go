package board

import "fmt"

// sparseCount maps node -> number of agents standing on it, for the
// handful of nodes that are occupied at any instant. The legacy board
// kept a dense count []int — O(n·8B) that a d=20 board cannot afford
// when the team touches at most CleanTeamSize(d) ≪ n nodes at once.
//
// Open addressing with linear probing and backward-shift deletion;
// keys are stored as node+1 so the zero word means empty. The table
// grows at 50% load and is bounded by the peak number of simultaneously
// occupied nodes, not by the graph order.
type sparseCount struct {
	keys []int32 // node+1; 0 = empty slot
	vals []int32
	n    int // live entries
}

const sparseMinCap = 16

func (s *sparseCount) init() {
	if s.keys == nil {
		s.keys = make([]int32, sparseMinCap)
		s.vals = make([]int32, sparseMinCap)
	}
}

func (s *sparseCount) slot(key int32) uint32 {
	// Fibonacci hashing; table length is always a power of two.
	return (uint32(key) * 2654435761) & uint32(len(s.keys)-1)
}

// get returns the count for node v (0 when absent).
func (s *sparseCount) get(v int) int {
	if s.n == 0 {
		return 0
	}
	key := int32(v) + 1
	for i := s.slot(key); ; i = (i + 1) & uint32(len(s.keys)-1) {
		switch s.keys[i] {
		case key:
			return int(s.vals[i])
		case 0:
			return 0
		}
	}
}

// inc adds one agent on node v and returns the new count.
func (s *sparseCount) inc(v int) int {
	s.init()
	if 2*(s.n+1) > len(s.keys) {
		s.grow()
	}
	key := int32(v) + 1
	for i := s.slot(key); ; i = (i + 1) & uint32(len(s.keys)-1) {
		switch s.keys[i] {
		case key:
			s.vals[i]++
			return int(s.vals[i])
		case 0:
			s.keys[i] = key
			s.vals[i] = 1
			s.n++
			return 1
		}
	}
}

// dec removes one agent from node v and returns the new count, deleting
// the entry (backward-shift) when it reaches zero. It panics if v holds
// no agents — the board only decrements nodes it incremented.
func (s *sparseCount) dec(v int) int {
	key := int32(v) + 1
	mask := uint32(len(s.keys) - 1)
	for i := s.slot(key); ; i = (i + 1) & mask {
		switch s.keys[i] {
		case key:
			s.vals[i]--
			if s.vals[i] > 0 {
				return int(s.vals[i])
			}
			s.delete(i, mask)
			s.n--
			return 0
		case 0:
			panic(fmt.Sprintf("board: no agents recorded on node %d", v))
		}
	}
}

// delete empties slot i, then shifts later probe-chain entries back so
// linear probing never crosses a hole it should not.
func (s *sparseCount) delete(i, mask uint32) {
	s.keys[i] = 0
	for j := (i + 1) & mask; s.keys[j] != 0; j = (j + 1) & mask {
		home := s.slot(s.keys[j])
		// Shift j back to i unless j's home lies in (i, j] — the
		// circular-distance test standard for backward-shift deletion.
		if (j-home)&mask >= (j-i)&mask {
			s.keys[i], s.vals[i] = s.keys[j], s.vals[j]
			s.keys[j] = 0
			i = j
		}
	}
}

func (s *sparseCount) grow() {
	oldKeys, oldVals := s.keys, s.vals
	s.keys = make([]int32, 2*len(oldKeys))
	s.vals = make([]int32, 2*len(oldVals))
	mask := uint32(len(s.keys) - 1)
	for j, key := range oldKeys {
		if key == 0 {
			continue
		}
		i := s.slot(key)
		for s.keys[i] != 0 {
			i = (i + 1) & mask
		}
		s.keys[i] = key
		s.vals[i] = oldVals[j]
	}
}

// reserve grows the table so it can hold at least k live entries
// without ever rehashing mid-run. A visibility-style run ends with one
// guard per leaf — n/2 simultaneously occupied nodes at d=20 — and
// growing to that size through doubling would rehash megabyte tables a
// dozen times inside the measured region.
func (s *sparseCount) reserve(k int) {
	need := sparseMinCap
	for need < 2*(k+1) {
		need <<= 1
	}
	if len(s.keys) >= need {
		return
	}
	oldKeys, oldVals := s.keys, s.vals
	s.keys = make([]int32, need)
	s.vals = make([]int32, need)
	mask := uint32(need - 1)
	for j, key := range oldKeys {
		if key == 0 {
			continue
		}
		i := s.slot(key)
		for s.keys[i] != 0 {
			i = (i + 1) & mask
		}
		s.keys[i] = key
		s.vals[i] = oldVals[j]
	}
}

// reset drops every entry, keeping the backing arrays.
func (s *sparseCount) reset() {
	for i := range s.keys {
		s.keys[i] = 0
	}
	s.n = 0
}
