// Package board implements the node-search state machine of the
// contiguous, monotone model: node states (contaminated / guarded /
// clean), agent positions, atomic moves along edges, and the
// worst-case intruder as an instantaneous contamination closure.
//
// Semantics (Section 2 of the paper, operationalized):
//
//   - A node is guarded while at least one agent stands on it.
//   - Visiting a node removes it from the contaminated set.
//   - The intruder is arbitrarily fast and omniscient, so after every
//     action contamination spreads instantaneously through every
//     unguarded node: an unguarded decontaminated node adjacent to a
//     contaminated node is recontaminated, transitively. After this
//     fixpoint, every unguarded decontaminated node has all neighbours
//     decontaminated — exactly the paper's recursive definition of
//     "clean".
//   - A *monotonicity violation* is a recontamination of a node that
//     had been stably clean (unguarded and decontaminated after a
//     fixpoint). Transit of an agent through contaminated territory
//     does not create clean nodes and therefore cannot violate
//     monotonicity.
//
// Moves are atomic: an agent occupies the source until the move
// completes and the destination from that instant on, matching the
// standard graph-search action model (there is no intermediate state
// with the agent on neither endpoint).
//
// Representation: per-node booleans live in packed bitplanes (see
// bitset.go), agent counts in a sparse table bounded by the team size
// (see sparse.go), and contaminated-neighbour counts in two byte-wide
// planes — a few bytes per node in all, with Reset a handful of
// memclrs plus one copy. The O(n·16B) clean-order/clean-time record is
// opt-in via RecordClean. The contamination flood and the contiguity
// check reuse board-owned scratch (queue + visited words) and iterate
// neighbours through the graph.NeighbourVisitor fast path, so the hot
// path allocates nothing. This is what lets one board span the d=20
// hypercube (2^20 nodes) without dominating the run's memory or its
// garbage.
package board

import (
	"fmt"

	"hypersearch/internal/graph"
)

// State is the paper's node state.
type State uint8

// The three node states of Section 2.
const (
	Contaminated State = iota
	Guarded
	Clean
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Contaminated:
		return "contaminated"
	case Guarded:
		return "guarded"
	case Clean:
		return "clean"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Board is the search state over a graph. Construct with New. Board is
// not safe for concurrent use; the goroutine runtime serializes access.
type Board struct {
	g    graph.Graph
	n    int
	home int
	pos  []int // agent id -> node; encoded negative once terminated

	counts     sparseCount // node -> agents standing on it (occupied only)
	decon      words       // bitplane: node is decontaminated
	everClean  words       // bitplane: node settled as stably clean
	settled    words       // bitplane: node settled (clean or final guard)
	occupied   words       // bitplane: at least one agent on node
	deconCount int         // popcount of decon, maintained incrementally

	away     int // agents on nodes other than home
	peakAway int

	moves            int64
	recontaminations int64 // nodes recontaminated, total (with multiplicity)
	violations       int64 // recontaminations of stably-clean nodes

	record      bool    // clean-order accounting enabled
	cleanSeq    int     // next clean-order index
	cleanOrder  []int   // node -> order in which it settled (-1 if not yet)
	cleanTime   []int64 // node -> time at which it settled (-1 if not yet)
	currentTime int64

	// contamNbrs[v] counts v's contaminated neighbours, maintained on
	// every decontamination/recontamination. It turns the expose-time
	// settle-vs-flood decision into one byte load instead of a
	// neighbourhood scan per exposure — the per-move cost that would
	// otherwise dominate big sweeps, where every transit step exposes
	// the node behind the agent. degrees keeps the all-contaminated
	// pattern so Reset restores the counters with one copy. Both are
	// nil (and expose falls back to scanning) if any node's degree
	// overflows the byte-wide counters.
	contamNbrs []uint8
	degrees    []uint8

	// Reusable traversal scratch and hoisted visitor callbacks — built
	// once in New so the contamination fixpoint and the contiguity BFS
	// allocate nothing per call.
	queue   []int
	visited words
	spread  bool
	reached int
	visit   func(v int, yield func(w int) bool)
	edge    graph.EdgeChecker // nil when g has no O(1) adjacency test
	scan    func(w int) bool  // expose fallback: any contaminated neighbour?
	flood   func(w int) bool  // expose: recontamination flood step
	sweep   func(w int) bool  // Contiguous: BFS step over decon set
	decNbr  func(w int) bool  // contamNbrs[w]-- (a neighbour was decontaminated)
	incNbr  func(w int) bool  // contamNbrs[w]++ (a neighbour was recontaminated)
}

// New creates a board over g with all nodes contaminated except the
// homebase, which starts decontaminated (agents are placed there).
// Clean-order accounting starts disabled; see RecordClean.
func New(g graph.Graph, home int) *Board {
	n := g.Order()
	if home < 0 || home >= n {
		panic(fmt.Sprintf("board: homebase %d out of range [0,%d)", home, n))
	}
	b := &Board{
		g:         g,
		n:         n,
		home:      home,
		decon:     newWords(n),
		everClean: newWords(n),
		settled:   newWords(n),
		occupied:  newWords(n),
		visited:   newWords(n),
	}
	if nv, ok := g.(graph.NeighbourVisitor); ok {
		b.visit = nv.VisitNeighbours
	} else {
		b.visit = func(v int, yield func(w int) bool) {
			for _, w := range g.Neighbours(v) {
				if !yield(w) {
					return
				}
			}
		}
	}
	if ec, ok := g.(graph.EdgeChecker); ok {
		b.edge = ec
	}
	b.scan = func(w int) bool {
		if !b.decon.get(w) {
			b.spread = true
			return false
		}
		return true
	}
	b.flood = func(w int) bool {
		if b.decon.get(w) && !b.occupied.get(w) {
			b.recontaminate(w)
			b.queue = append(b.queue, w)
		}
		return true
	}
	b.sweep = func(w int) bool {
		if b.decon.get(w) && !b.visited.get(w) {
			b.visited.set(w)
			b.reached++
			b.queue = append(b.queue, w)
		}
		return true
	}
	b.decNbr = func(w int) bool { b.contamNbrs[w]--; return true }
	b.incNbr = func(w int) bool { b.contamNbrs[w]++; return true }
	b.initContamCounters()
	b.decon.set(home)
	b.deconCount = 1
	if b.contamNbrs != nil {
		b.visit(home, b.decNbr)
	}
	return b
}

// initContamCounters sizes and fills the contaminated-neighbour
// counters for the all-contaminated state: contamNbrs[v] = degree(v).
// Graphs with a node of degree > 255 (none of the project's
// topologies) get no counters and fall back to the expose-time scan.
func (b *Board) initContamCounters() {
	deg := make([]uint8, b.n)
	d := 0
	count := func(int) bool { d++; return true }
	for v := 0; v < b.n; v++ {
		d = 0
		b.visit(v, count)
		if d > 255 {
			return
		}
		deg[v] = uint8(d)
	}
	b.degrees = deg
	b.contamNbrs = make([]uint8, b.n)
	copy(b.contamNbrs, deg)
}

// Reset returns the board to its initial state — all nodes
// contaminated except the homebase, no agents, zeroed counters — in
// O(n/64) word clears, reusing every backing array. Pooled
// environments reset their board instead of allocating a fresh one per
// run.
func (b *Board) Reset() {
	b.pos = b.pos[:0]
	b.counts.reset()
	b.decon.clearAll()
	b.everClean.clearAll()
	b.settled.clearAll()
	b.occupied.clearAll()
	b.away, b.peakAway = 0, 0
	b.moves, b.recontaminations, b.violations = 0, 0, 0
	b.cleanSeq = 0
	b.currentTime = 0
	b.queue = b.queue[:0]
	if b.record {
		for i := range b.cleanOrder {
			b.cleanOrder[i] = -1
			b.cleanTime[i] = -1
		}
	}
	b.decon.set(b.home)
	b.deconCount = 1
	if b.contamNbrs != nil {
		copy(b.contamNbrs, b.degrees)
		b.visit(b.home, b.decNbr)
	}
}

// RecordClean toggles the per-node clean-order/clean-time record that
// CleanOrder and CleanTime read. It costs O(n·16B) of memory and an
// O(n) sweep per Reset, so big boards leave it off; visualization and
// figure runs turn it on. Call it on a fresh (or freshly Reset) board:
// settles that happened while recording was off are not backfilled.
func (b *Board) RecordClean(on bool) {
	if on == b.record {
		return
	}
	b.record = on
	if !on {
		return
	}
	if b.cleanOrder == nil {
		b.cleanOrder = make([]int, b.n)
		b.cleanTime = make([]int64, b.n)
	}
	for i := range b.cleanOrder {
		b.cleanOrder[i] = -1
		b.cleanTime[i] = -1
	}
}

// Recording reports whether clean-order accounting is enabled.
func (b *Board) Recording() bool { return b.record }

// Graph returns the underlying topology.
func (b *Board) Graph() graph.Graph { return b.g }

// Home returns the homebase node.
func (b *Board) Home() int { return b.home }

// Agents returns the number of agents created so far (placed or cloned),
// including terminated ones.
func (b *Board) Agents() int { return len(b.pos) }

// Reserve presizes the board for a team of the given size: the agent
// position table gets capacity for that many agents and the sparse
// occupancy table gets room for them all standing on distinct nodes.
// Purely a performance hint — the board grows on demand without it —
// but the n/2-agent visibility teams would otherwise regrow both
// tables through a dozen doublings inside the measured region. The
// reservation survives Reset, so pooled environments pay it once.
func (b *Board) Reserve(agents int) {
	if cap(b.pos) < agents {
		pos := make([]int, len(b.pos), agents)
		copy(pos, b.pos)
		b.pos = pos
	}
	b.counts.reserve(agents)
}

// Place creates a new agent on the homebase and returns its id. The
// contiguous model forbids placing agents anywhere else.
func (b *Board) Place(at int64) int {
	b.advance(at)
	id := len(b.pos)
	b.pos = append(b.pos, b.home)
	if b.counts.inc(b.home) == 1 {
		b.occupied.set(b.home)
	}
	return id
}

// Clone creates a new agent on node v, which must currently hold at
// least one agent (a clone is a copy of an agent standing there).
// Returns the new agent's id.
func (b *Board) Clone(v int, at int64) int {
	b.advance(at)
	if !b.occupied.get(v) {
		panic(fmt.Sprintf("board: cannot clone on unguarded node %d", v))
	}
	id := len(b.pos)
	b.pos = append(b.pos, v)
	b.counts.inc(v)
	if v != b.home {
		b.away++
		if b.away > b.peakAway {
			b.peakAway = b.away
		}
	}
	return id
}

// Move atomically moves agent id along the edge from its current node
// to the neighbouring node `to` at time `at`, then lets contamination
// spread. It panics on a non-edge, an unknown agent, or a terminated
// agent.
func (b *Board) Move(id, to int, at int64) {
	b.advance(at)
	from := b.agentPos(id)
	if !b.adjacent(from, to) {
		panic(fmt.Sprintf("board: agent %d move %d->%d is not an edge", id, from, to))
	}
	b.pos[id] = to
	exposed := b.counts.dec(from) == 0
	if exposed {
		b.occupied.clear(from)
	}
	if b.counts.inc(to) == 1 {
		b.occupied.set(to)
	}
	b.moves++
	if from != b.home {
		b.away--
	}
	if to != b.home {
		b.away++
		if b.away > b.peakAway {
			b.peakAway = b.away
		}
	}
	// Arrival decontaminates the destination.
	if !b.decon.get(to) {
		b.decon.set(to)
		b.deconCount++
		if b.contamNbrs != nil {
			b.visit(to, b.decNbr)
		}
	}
	// Departure may expose the source.
	if exposed {
		b.expose(from)
	}
}

// Terminate marks agent id as permanently passive. The agent remains
// on its node as a guard (agents cannot be removed from the network in
// the contiguous model); terminating settles the node for clean-order
// accounting if the whole board is otherwise quiescent there.
func (b *Board) Terminate(id int, at int64) {
	b.advance(at)
	v := b.agentPos(id)
	b.pos[id] = -1 - v // encode terminated-at-v as negative
	b.settle(v)
}

// agentPos returns the node agent id currently stands on, panicking on
// bad ids or terminated agents.
func (b *Board) agentPos(id int) int {
	if id < 0 || id >= len(b.pos) {
		panic(fmt.Sprintf("board: unknown agent %d", id))
	}
	p := b.pos[id]
	if p < 0 {
		panic(fmt.Sprintf("board: agent %d already terminated", id))
	}
	return p
}

func (b *Board) adjacent(u, v int) bool {
	if b.edge != nil {
		return b.edge.HasEdge(u, v)
	}
	for _, w := range b.g.Neighbours(u) {
		if w == v {
			return true
		}
	}
	return false
}

// advance moves the board clock forward; time may repeat but must not
// run backwards (events are applied in order).
func (b *Board) advance(at int64) {
	if at < b.currentTime {
		panic(fmt.Sprintf("board: time moved backwards (%d -> %d)", b.currentTime, at))
	}
	b.currentTime = at
}

// expose handles node u becoming unguarded: if any neighbour is
// contaminated, contamination floods u and everything reachable from u
// through unguarded decontaminated nodes; otherwise u settles as clean.
// The settle-vs-flood decision is one contamNbrs load (every transit
// move pays it, so it must not scan); the flood reuses the board's
// queue scratch and needs no visited set: clearing a node's decon bit
// is what marks it visited.
func (b *Board) expose(u int) {
	if !b.decon.get(u) {
		return
	}
	if b.contamNbrs != nil {
		if b.contamNbrs[u] == 0 {
			b.settle(u)
			return
		}
	} else {
		b.spread = false
		b.visit(u, b.scan)
		if !b.spread {
			b.settle(u)
			return
		}
	}
	// Flood: u and transitively every unguarded decontaminated node.
	b.queue = b.queue[:0]
	b.recontaminate(u)
	b.queue = append(b.queue, u)
	for head := 0; head < len(b.queue); head++ {
		b.visit(b.queue[head], b.flood)
	}
}

func (b *Board) recontaminate(v int) {
	b.decon.clear(v)
	b.deconCount--
	if b.contamNbrs != nil {
		b.visit(v, b.incNbr)
	}
	b.recontaminations++
	if b.everClean.get(v) {
		b.violations++
	}
	// A recontaminated node loses its settled status.
	b.everClean.clear(v)
	b.settled.clear(v)
	if b.record {
		b.cleanOrder[v] = -1
		b.cleanTime[v] = -1
	}
}

// settle records that v is stably clean (or finally guarded by a
// terminated agent) for clean-order accounting.
func (b *Board) settle(v int) {
	if b.settled.get(v) {
		return
	}
	b.settled.set(v)
	if !b.occupied.get(v) {
		b.everClean.set(v)
	}
	if b.record {
		b.cleanOrder[v] = b.cleanSeq
		b.cleanTime[v] = b.currentTime
	}
	b.cleanSeq++
}

// StateOf returns the paper-state of node v.
func (b *Board) StateOf(v int) State {
	switch {
	case b.occupied.get(v):
		return Guarded
	case b.decon.get(v):
		return Clean
	default:
		return Contaminated
	}
}

// AgentsOn returns the number of agents currently standing on v.
func (b *Board) AgentsOn(v int) int { return b.counts.get(v) }

// Position returns the node agent id stands on and whether it is still
// active (false once terminated).
func (b *Board) Position(id int) (int, bool) {
	if id < 0 || id >= len(b.pos) {
		panic(fmt.Sprintf("board: unknown agent %d", id))
	}
	if b.pos[id] < 0 {
		return -1 - b.pos[id], false
	}
	return b.pos[id], true
}

// ContaminatedCount returns the number of contaminated nodes.
func (b *Board) ContaminatedCount() int { return b.n - b.deconCount }

// AllClean reports whether every node is decontaminated — the capture
// condition: no contaminated node remains for the intruder.
func (b *Board) AllClean() bool { return b.deconCount == b.n }

// Moves returns the total number of agent moves so far.
func (b *Board) Moves() int64 { return b.moves }

// Recontaminations returns the total number of node recontaminations.
func (b *Board) Recontaminations() int64 { return b.recontaminations }

// MonotoneViolations returns the number of recontaminations of stably
// clean nodes; a correct contiguous monotone strategy keeps this zero.
func (b *Board) MonotoneViolations() int64 { return b.violations }

// PeakAway returns the maximum number of agents simultaneously away
// from the homebase: the working-team requirement of the run.
func (b *Board) PeakAway() int { return b.peakAway }

// Now returns the current board clock.
func (b *Board) Now() int64 { return b.currentTime }

// CleanOrder returns, for node v, the order index in which it settled
// (first stayed stably clean, or had an agent terminate on it), or -1.
// Always -1 unless RecordClean(true) was set before the run.
func (b *Board) CleanOrder(v int) int {
	if !b.record {
		return -1
	}
	return b.cleanOrder[v]
}

// CleanTime returns the board time at which node v settled, or -1.
// Always -1 unless RecordClean(true) was set before the run.
func (b *Board) CleanTime(v int) int64 {
	if !b.record {
		return -1
	}
	return b.cleanTime[v]
}

// Contiguous reports whether the decontaminated set (clean plus
// guarded nodes) induces a connected subgraph — the defining constraint
// of contiguous search. Cost: O(n/64 + reached·deg) with zero
// allocations — the BFS runs over the packed decon bitplane with the
// board's reusable scratch.
func (b *Board) Contiguous() bool {
	if b.deconCount == 0 {
		return true
	}
	start := b.decon.firstSet()
	b.visited.clearAll()
	b.queue = b.queue[:0]
	b.visited.set(start)
	b.reached = 1
	b.queue = append(b.queue, start)
	for head := 0; head < len(b.queue); head++ {
		b.visit(b.queue[head], b.sweep)
	}
	return b.reached == b.deconCount
}

// Snapshot returns a copy of the per-node states, for renderers and
// tests.
func (b *Board) Snapshot() []State {
	out := make([]State, b.n)
	for v := range out {
		out[v] = b.StateOf(v)
	}
	return out
}
