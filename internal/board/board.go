// Package board implements the node-search state machine of the
// contiguous, monotone model: node states (contaminated / guarded /
// clean), agent positions, atomic moves along edges, and the
// worst-case intruder as an instantaneous contamination closure.
//
// Semantics (Section 2 of the paper, operationalized):
//
//   - A node is guarded while at least one agent stands on it.
//   - Visiting a node removes it from the contaminated set.
//   - The intruder is arbitrarily fast and omniscient, so after every
//     action contamination spreads instantaneously through every
//     unguarded node: an unguarded decontaminated node adjacent to a
//     contaminated node is recontaminated, transitively. After this
//     fixpoint, every unguarded decontaminated node has all neighbours
//     decontaminated — exactly the paper's recursive definition of
//     "clean".
//   - A *monotonicity violation* is a recontamination of a node that
//     had been stably clean (unguarded and decontaminated after a
//     fixpoint). Transit of an agent through contaminated territory
//     does not create clean nodes and therefore cannot violate
//     monotonicity.
//
// Moves are atomic: an agent occupies the source until the move
// completes and the destination from that instant on, matching the
// standard graph-search action model (there is no intermediate state
// with the agent on neither endpoint).
package board

import (
	"fmt"

	"hypersearch/internal/graph"
)

// State is the paper's node state.
type State uint8

// The three node states of Section 2.
const (
	Contaminated State = iota
	Guarded
	Clean
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Contaminated:
		return "contaminated"
	case Guarded:
		return "guarded"
	case Clean:
		return "clean"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Board is the search state over a graph. Construct with New. Board is
// not safe for concurrent use; the goroutine runtime serializes access.
type Board struct {
	g         graph.Graph
	home      int
	pos       []int // agent id -> node; -1 once terminated
	count     []int // node -> number of agents standing on it
	decon     []bool
	everClean []bool

	away     int // agents on nodes other than home
	peakAway int

	moves            int64
	recontaminations int64 // nodes recontaminated, total (with multiplicity)
	violations       int64 // recontaminations of stably-clean nodes

	cleanSeq    int     // next clean-order index
	cleanOrder  []int   // node -> order in which it settled (-1 if not yet)
	cleanTime   []int64 // node -> time at which it settled (-1 if not yet)
	currentTime int64
}

// New creates a board over g with all nodes contaminated except the
// homebase, which starts decontaminated (agents are placed there).
func New(g graph.Graph, home int) *Board {
	n := g.Order()
	if home < 0 || home >= n {
		panic(fmt.Sprintf("board: homebase %d out of range [0,%d)", home, n))
	}
	b := &Board{
		g:          g,
		home:       home,
		count:      make([]int, n),
		decon:      make([]bool, n),
		everClean:  make([]bool, n),
		cleanOrder: make([]int, n),
		cleanTime:  make([]int64, n),
	}
	for i := range b.cleanOrder {
		b.cleanOrder[i] = -1
		b.cleanTime[i] = -1
	}
	b.decon[home] = true
	return b
}

// Reset returns the board to its initial state — all nodes
// contaminated except the homebase, no agents, zeroed counters — in
// O(n), reusing every backing array. Pooled environments reset their
// board instead of allocating a fresh one per run.
func (b *Board) Reset() {
	b.pos = b.pos[:0]
	for i := range b.count {
		b.count[i] = 0
		b.decon[i] = false
		b.everClean[i] = false
		b.cleanOrder[i] = -1
		b.cleanTime[i] = -1
	}
	b.away, b.peakAway = 0, 0
	b.moves, b.recontaminations, b.violations = 0, 0, 0
	b.cleanSeq = 0
	b.currentTime = 0
	b.decon[b.home] = true
}

// Graph returns the underlying topology.
func (b *Board) Graph() graph.Graph { return b.g }

// Home returns the homebase node.
func (b *Board) Home() int { return b.home }

// Agents returns the number of agents created so far (placed or cloned),
// including terminated ones.
func (b *Board) Agents() int { return len(b.pos) }

// Place creates a new agent on the homebase and returns its id. The
// contiguous model forbids placing agents anywhere else.
func (b *Board) Place(at int64) int {
	b.advance(at)
	id := len(b.pos)
	b.pos = append(b.pos, b.home)
	b.count[b.home]++
	return id
}

// Clone creates a new agent on node v, which must currently hold at
// least one agent (a clone is a copy of an agent standing there).
// Returns the new agent's id.
func (b *Board) Clone(v int, at int64) int {
	b.advance(at)
	if b.count[v] == 0 {
		panic(fmt.Sprintf("board: cannot clone on unguarded node %d", v))
	}
	id := len(b.pos)
	b.pos = append(b.pos, v)
	b.count[v]++
	if v != b.home {
		b.away++
		if b.away > b.peakAway {
			b.peakAway = b.away
		}
	}
	return id
}

// Move atomically moves agent id along the edge from its current node
// to the neighbouring node `to` at time `at`, then lets contamination
// spread. It panics on a non-edge, an unknown agent, or a terminated
// agent.
func (b *Board) Move(id, to int, at int64) {
	b.advance(at)
	from := b.agentPos(id)
	if !b.adjacent(from, to) {
		panic(fmt.Sprintf("board: agent %d move %d->%d is not an edge", id, from, to))
	}
	b.pos[id] = to
	b.count[from]--
	b.count[to]++
	b.moves++
	if from != b.home {
		b.away--
	}
	if to != b.home {
		b.away++
		if b.away > b.peakAway {
			b.peakAway = b.away
		}
	}
	// Arrival decontaminates the destination.
	b.decon[to] = true
	// Departure may expose the source.
	if b.count[from] == 0 {
		b.expose(from)
	}
}

// Terminate marks agent id as permanently passive. The agent remains
// on its node as a guard (agents cannot be removed from the network in
// the contiguous model); terminating settles the node for clean-order
// accounting if the whole board is otherwise quiescent there.
func (b *Board) Terminate(id int, at int64) {
	b.advance(at)
	v := b.agentPos(id)
	b.pos[id] = -1 - v // encode terminated-at-v as negative
	b.settle(v)
}

// agentPos returns the node agent id currently stands on, panicking on
// bad ids or terminated agents.
func (b *Board) agentPos(id int) int {
	if id < 0 || id >= len(b.pos) {
		panic(fmt.Sprintf("board: unknown agent %d", id))
	}
	p := b.pos[id]
	if p < 0 {
		panic(fmt.Sprintf("board: agent %d already terminated", id))
	}
	return p
}

func (b *Board) adjacent(u, v int) bool {
	for _, w := range b.g.Neighbours(u) {
		if w == v {
			return true
		}
	}
	return false
}

// advance moves the board clock forward; time may repeat but must not
// run backwards (events are applied in order).
func (b *Board) advance(at int64) {
	if at < b.currentTime {
		panic(fmt.Sprintf("board: time moved backwards (%d -> %d)", b.currentTime, at))
	}
	b.currentTime = at
}

// expose handles node u becoming unguarded: if any neighbour is
// contaminated, contamination floods u and everything reachable from u
// through unguarded decontaminated nodes; otherwise u settles as clean.
func (b *Board) expose(u int) {
	if !b.decon[u] {
		return
	}
	spread := false
	for _, w := range b.g.Neighbours(u) {
		if !b.decon[w] {
			spread = true
			break
		}
	}
	if !spread {
		b.settle(u)
		return
	}
	// Flood: u and transitively every unguarded decontaminated node.
	queue := []int{u}
	b.recontaminate(u)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range b.g.Neighbours(v) {
			if b.decon[w] && b.count[w] == 0 {
				b.recontaminate(w)
				queue = append(queue, w)
			}
		}
	}
}

func (b *Board) recontaminate(v int) {
	b.decon[v] = false
	b.recontaminations++
	if b.everClean[v] {
		b.violations++
	}
	// A recontaminated node loses its settled status.
	b.everClean[v] = false
	b.cleanOrder[v] = -1
	b.cleanTime[v] = -1
}

// settle records that v is stably clean (or finally guarded by a
// terminated agent) for clean-order accounting.
func (b *Board) settle(v int) {
	if b.cleanOrder[v] >= 0 {
		return
	}
	b.everClean[v] = b.count[v] == 0
	b.cleanOrder[v] = b.cleanSeq
	b.cleanSeq++
	b.cleanTime[v] = b.currentTime
}

// StateOf returns the paper-state of node v.
func (b *Board) StateOf(v int) State {
	switch {
	case b.count[v] > 0:
		return Guarded
	case b.decon[v]:
		return Clean
	default:
		return Contaminated
	}
}

// AgentsOn returns the number of agents currently standing on v.
func (b *Board) AgentsOn(v int) int { return b.count[v] }

// Position returns the node agent id stands on and whether it is still
// active (false once terminated).
func (b *Board) Position(id int) (int, bool) {
	if id < 0 || id >= len(b.pos) {
		panic(fmt.Sprintf("board: unknown agent %d", id))
	}
	if b.pos[id] < 0 {
		return -1 - b.pos[id], false
	}
	return b.pos[id], true
}

// ContaminatedCount returns the number of contaminated nodes.
func (b *Board) ContaminatedCount() int {
	n := 0
	for _, ok := range b.decon {
		if !ok {
			n++
		}
	}
	return n
}

// AllClean reports whether every node is decontaminated — the capture
// condition: no contaminated node remains for the intruder.
func (b *Board) AllClean() bool {
	for _, ok := range b.decon {
		if !ok {
			return false
		}
	}
	return true
}

// Moves returns the total number of agent moves so far.
func (b *Board) Moves() int64 { return b.moves }

// Recontaminations returns the total number of node recontaminations.
func (b *Board) Recontaminations() int64 { return b.recontaminations }

// MonotoneViolations returns the number of recontaminations of stably
// clean nodes; a correct contiguous monotone strategy keeps this zero.
func (b *Board) MonotoneViolations() int64 { return b.violations }

// PeakAway returns the maximum number of agents simultaneously away
// from the homebase: the working-team requirement of the run.
func (b *Board) PeakAway() int { return b.peakAway }

// Now returns the current board clock.
func (b *Board) Now() int64 { return b.currentTime }

// CleanOrder returns, for node v, the order index in which it settled
// (first stayed stably clean, or had an agent terminate on it), or -1.
func (b *Board) CleanOrder(v int) int { return b.cleanOrder[v] }

// CleanTime returns the board time at which node v settled, or -1.
func (b *Board) CleanTime(v int) int64 { return b.cleanTime[v] }

// Contiguous reports whether the decontaminated set (clean plus
// guarded nodes) induces a connected subgraph — the defining constraint
// of contiguous search. Cost: O(n + m).
func (b *Board) Contiguous() bool {
	return graph.SubsetConnected(b.g, b.decon)
}

// Snapshot returns a copy of the per-node states, for renderers and
// tests.
func (b *Board) Snapshot() []State {
	out := make([]State, b.g.Order())
	for v := range out {
		out[v] = b.StateOf(v)
	}
	return out
}
