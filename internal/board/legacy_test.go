package board

import (
	"math/rand"
	"testing"

	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
)

// legacyBoard is the pre-packing reference implementation: one byte or
// word per node per fact ([]bool planes, []int counts) and a full
// neighbourhood scan on every exposure. It exists only to pin the
// packed Board's semantics — every operation below mirrors the seed
// implementation line for line, so a divergence between the two under
// random operation sequences is a bug in the packed representation,
// not a modelling choice.
type legacyBoard struct {
	g    graph.Graph
	n    int
	home int
	pos  []int

	count     []int
	decon     []bool
	everClean []bool

	away     int
	peakAway int

	moves            int64
	recontaminations int64
	violations       int64

	cleanSeq    int
	cleanOrder  []int
	cleanTime   []int64
	currentTime int64
}

func newLegacy(g graph.Graph, home int) *legacyBoard {
	n := g.Order()
	b := &legacyBoard{
		g:          g,
		n:          n,
		home:       home,
		count:      make([]int, n),
		decon:      make([]bool, n),
		everClean:  make([]bool, n),
		cleanOrder: make([]int, n),
		cleanTime:  make([]int64, n),
	}
	for i := range b.cleanOrder {
		b.cleanOrder[i] = -1
		b.cleanTime[i] = -1
	}
	b.decon[home] = true
	return b
}

func (b *legacyBoard) place(at int64) int {
	b.currentTime = at
	id := len(b.pos)
	b.pos = append(b.pos, b.home)
	b.count[b.home]++
	return id
}

func (b *legacyBoard) clone(v int, at int64) int {
	b.currentTime = at
	id := len(b.pos)
	b.pos = append(b.pos, v)
	b.count[v]++
	if v != b.home {
		b.away++
		if b.away > b.peakAway {
			b.peakAway = b.away
		}
	}
	return id
}

func (b *legacyBoard) move(id, to int, at int64) {
	b.currentTime = at
	from := b.pos[id]
	b.pos[id] = to
	b.count[from]--
	b.count[to]++
	b.moves++
	if from != b.home {
		b.away--
	}
	if to != b.home {
		b.away++
		if b.away > b.peakAway {
			b.peakAway = b.away
		}
	}
	b.decon[to] = true
	if b.count[from] == 0 {
		b.expose(from)
	}
}

func (b *legacyBoard) terminate(id int, at int64) {
	b.currentTime = at
	v := b.pos[id]
	b.pos[id] = -1 - v
	b.settle(v)
}

func (b *legacyBoard) expose(u int) {
	if !b.decon[u] {
		return
	}
	spread := false
	for _, w := range b.g.Neighbours(u) {
		if !b.decon[w] {
			spread = true
			break
		}
	}
	if !spread {
		b.settle(u)
		return
	}
	queue := []int{u}
	b.recontaminate(u)
	for head := 0; head < len(queue); head++ {
		for _, w := range b.g.Neighbours(queue[head]) {
			if b.decon[w] && b.count[w] == 0 {
				b.recontaminate(w)
				queue = append(queue, w)
			}
		}
	}
}

func (b *legacyBoard) recontaminate(v int) {
	b.decon[v] = false
	b.recontaminations++
	if b.everClean[v] {
		b.violations++
	}
	b.everClean[v] = false
	b.cleanOrder[v] = -1
	b.cleanTime[v] = -1
}

func (b *legacyBoard) settle(v int) {
	if b.cleanOrder[v] >= 0 {
		return
	}
	if b.count[v] == 0 {
		b.everClean[v] = true
	}
	b.cleanOrder[v] = b.cleanSeq
	b.cleanTime[v] = b.currentTime
	b.cleanSeq++
}

func (b *legacyBoard) stateOf(v int) State {
	switch {
	case b.count[v] > 0:
		return Guarded
	case b.decon[v]:
		return Clean
	default:
		return Contaminated
	}
}

func (b *legacyBoard) contiguous() bool {
	start := -1
	total := 0
	for v := 0; v < b.n; v++ {
		if b.decon[v] {
			total++
			if start < 0 {
				start = v
			}
		}
	}
	if total == 0 {
		return true
	}
	seen := make([]bool, b.n)
	seen[start] = true
	reached := 1
	queue := []int{start}
	for head := 0; head < len(queue); head++ {
		for _, w := range b.g.Neighbours(queue[head]) {
			if b.decon[w] && !seen[w] {
				seen[w] = true
				reached++
				queue = append(queue, w)
			}
		}
	}
	return reached == total
}

// plainGraph strips a graph of its NeighbourVisitor/EdgeChecker
// extensions so the packed board's slice-fallback paths run too.
type plainGraph struct{ g graph.Graph }

func (p plainGraph) Order() int             { return p.g.Order() }
func (p plainGraph) Neighbours(v int) []int { return p.g.Neighbours(v) }

// starGraph has a hub of degree n-1: with n > 256 the hub overflows
// the byte-wide contaminated-neighbour counters, forcing the packed
// board onto its expose-time scan fallback.
type starGraph struct{ n int }

func (s starGraph) Order() int { return s.n }
func (s starGraph) Neighbours(v int) []int {
	if v == 0 {
		out := make([]int, s.n-1)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	return []int{0}
}

// compareBoards asserts full observable equality between the packed
// board and the legacy reference.
func compareBoards(t *testing.T, step int, b *Board, l *legacyBoard) {
	t.Helper()
	if b.Moves() != l.moves || b.Recontaminations() != l.recontaminations ||
		b.MonotoneViolations() != l.violations || b.PeakAway() != l.peakAway {
		t.Fatalf("step %d: counters diverged: packed (m=%d r=%d v=%d p=%d) legacy (m=%d r=%d v=%d p=%d)",
			step, b.Moves(), b.Recontaminations(), b.MonotoneViolations(), b.PeakAway(),
			l.moves, l.recontaminations, l.violations, l.peakAway)
	}
	if b.AllClean() != (l.n-deconCountOf(l) == 0) || b.ContaminatedCount() != l.n-deconCountOf(l) {
		t.Fatalf("step %d: contamination totals diverged", step)
	}
	for v := 0; v < l.n; v++ {
		if b.StateOf(v) != l.stateOf(v) {
			t.Fatalf("step %d: node %d state %v, legacy %v", step, v, b.StateOf(v), l.stateOf(v))
		}
		if b.AgentsOn(v) != l.count[v] {
			t.Fatalf("step %d: node %d count %d, legacy %d", step, v, b.AgentsOn(v), l.count[v])
		}
		if b.CleanOrder(v) != l.cleanOrder[v] || b.CleanTime(v) != l.cleanTime[v] {
			t.Fatalf("step %d: node %d clean record (%d,%d), legacy (%d,%d)",
				step, v, b.CleanOrder(v), b.CleanTime(v), l.cleanOrder[v], l.cleanTime[v])
		}
	}
	if b.Contiguous() != l.contiguous() {
		t.Fatalf("step %d: contiguity diverged", step)
	}
}

func deconCountOf(l *legacyBoard) int {
	n := 0
	for _, d := range l.decon {
		if d {
			n++
		}
	}
	return n
}

// runRandomOps drives both boards through the same random operation
// sequence, comparing after every step, and returns the op trace so a
// Reset board can replay it.
func runRandomOps(t *testing.T, rng *rand.Rand, g graph.Graph, b *Board, l *legacyBoard, steps int) {
	at := int64(0)
	b.Place(at)
	l.place(at)
	active := []int{0}
	for step := 0; step < steps; step++ {
		at += int64(rng.Intn(2))
		switch op := rng.Intn(10); {
		case op == 0: // place another agent at home
			b.Place(at)
			l.place(at)
			active = append(active, len(l.pos)-1)
		case op == 1 && len(active) > 1: // terminate a random agent
			i := rng.Intn(len(active))
			id := active[i]
			b.Terminate(id, at)
			l.terminate(id, at)
			active = append(active[:i], active[i+1:]...)
		case op == 2: // clone on a random occupied node
			id := active[rng.Intn(len(active))]
			v, _ := b.Position(id)
			b.Clone(v, at)
			l.clone(v, at)
			active = append(active, len(l.pos)-1)
		default: // move a random agent to a random neighbour
			id := active[rng.Intn(len(active))]
			v, _ := b.Position(id)
			nbrs := g.Neighbours(v)
			if len(nbrs) == 0 {
				continue
			}
			to := nbrs[rng.Intn(len(nbrs))]
			b.Move(id, to, at)
			l.move(id, to, at)
		}
		compareBoards(t, step, b, l)
	}
}

// TestPackedMatchesLegacyReference is the packed representation's
// ground truth: on random operation sequences over several topologies
// — including a visitor-less wrapper (slice fallback) and a
// hub-degree-256 star (contamNbrs overflow, scan fallback) — every
// observable of the packed board must equal the legacy byte-per-fact
// implementation after every single operation. Run it under -race to
// double as a memory-safety check on the bit planes.
func TestPackedMatchesLegacyReference(t *testing.T) {
	cases := []struct {
		name  string
		g     graph.Graph
		steps int
	}{
		{"hypercube/d=3", hypercube.ForDim(3), 400},
		{"hypercube/d=5", hypercube.ForDim(5), 600},
		{"plain/d=4", plainGraph{hypercube.ForDim(4)}, 500},
		{"star/n=257", starGraph{257}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				b := New(tc.g, 0)
				b.RecordClean(true)
				if _, isStar := tc.g.(starGraph); isStar && b.contamNbrs != nil {
					t.Fatal("star hub should overflow the contamNbrs counters")
				}
				l := newLegacy(tc.g, 0)
				runRandomOps(t, rand.New(rand.NewSource(seed)), tc.g, b, l, tc.steps)
			}
		})
	}
}

// TestResetEqualsFresh: a Reset packed board must be observably
// identical to a newly constructed one — same random run, same
// outcome — since pooled environments rely on Reset alone.
func TestResetEqualsFresh(t *testing.T) {
	g := hypercube.ForDim(4)
	b := New(g, 0)
	b.RecordClean(true)
	runRandomOps(t, rand.New(rand.NewSource(7)), g, b, newLegacy(g, 0), 500)

	b.Reset()
	fresh := New(g, 0)
	fresh.RecordClean(true)
	for v := 0; v < g.Order(); v++ {
		if b.StateOf(v) != fresh.StateOf(v) || b.AgentsOn(v) != fresh.AgentsOn(v) ||
			b.CleanOrder(v) != fresh.CleanOrder(v) {
			t.Fatalf("Reset board differs from fresh at node %d", v)
		}
	}
	if b.Moves() != 0 || b.PeakAway() != 0 || b.Now() != 0 {
		t.Fatal("Reset board kept counters")
	}

	// Replaying the same sequence on the reset board must reproduce the
	// fresh board's run exactly.
	runRandomOps(t, rand.New(rand.NewSource(11)), g, b, newLegacy(g, 0), 500)
	runRandomOps(t, rand.New(rand.NewSource(11)), g, fresh, newLegacy(g, 0), 500)
	for v := 0; v < g.Order(); v++ {
		if b.StateOf(v) != fresh.StateOf(v) || b.CleanOrder(v) != fresh.CleanOrder(v) {
			t.Fatalf("replay diverged at node %d", v)
		}
	}
	if b.Moves() != fresh.Moves() || b.Recontaminations() != fresh.Recontaminations() {
		t.Fatal("replay counters diverged")
	}
}
