package board

import (
	"math/rand"
	"testing"
)

// TestSparseCountMatchesMap drives the open-addressing count table
// through random inc/dec/reset traffic mirrored into a plain map,
// crossing several growth and deletion phases: backward-shift deletion
// is the classic place for a probe-chain bug to hide.
func TestSparseCountMatchesMap(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s sparseCount
		ref := map[int]int{}
		const nodes = 300
		for op := 0; op < 5000; op++ {
			v := rng.Intn(nodes)
			switch {
			case rng.Intn(20) == 0:
				s.reset()
				ref = map[int]int{}
			case ref[v] > 0 && rng.Intn(2) == 0:
				got := s.dec(v)
				ref[v]--
				if ref[v] == 0 {
					delete(ref, v)
				}
				if got != ref[v] {
					t.Fatalf("seed %d op %d: dec(%d) = %d, want %d", seed, op, v, got, ref[v])
				}
			default:
				got := s.inc(v)
				ref[v]++
				if got != ref[v] {
					t.Fatalf("seed %d op %d: inc(%d) = %d, want %d", seed, op, v, got, ref[v])
				}
			}
			// Spot-check random lookups, including absent keys.
			for i := 0; i < 3; i++ {
				w := rng.Intn(nodes)
				if s.get(w) != ref[w] {
					t.Fatalf("seed %d op %d: get(%d) = %d, want %d", seed, op, w, s.get(w), ref[w])
				}
			}
		}
	}
}

// TestSparseCountDecPanicsOnEmptyNode: decrementing a node with no
// recorded agents must panic loudly, not corrupt the table.
func TestSparseCountDecPanicsOnEmptyNode(t *testing.T) {
	var s sparseCount
	s.inc(3)
	defer func() {
		if recover() == nil {
			t.Error("dec on an empty node did not panic")
		}
	}()
	s.dec(4)
}
