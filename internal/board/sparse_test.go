package board

import (
	"math/rand"
	"testing"

	"hypersearch/internal/hypercube"
)

// TestSparseCountMatchesMap drives the open-addressing count table
// through random inc/dec/reset traffic mirrored into a plain map,
// crossing several growth and deletion phases: backward-shift deletion
// is the classic place for a probe-chain bug to hide.
func TestSparseCountMatchesMap(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s sparseCount
		ref := map[int]int{}
		const nodes = 300
		for op := 0; op < 5000; op++ {
			v := rng.Intn(nodes)
			switch {
			case rng.Intn(20) == 0:
				s.reset()
				ref = map[int]int{}
			case ref[v] > 0 && rng.Intn(2) == 0:
				got := s.dec(v)
				ref[v]--
				if ref[v] == 0 {
					delete(ref, v)
				}
				if got != ref[v] {
					t.Fatalf("seed %d op %d: dec(%d) = %d, want %d", seed, op, v, got, ref[v])
				}
			default:
				got := s.inc(v)
				ref[v]++
				if got != ref[v] {
					t.Fatalf("seed %d op %d: inc(%d) = %d, want %d", seed, op, v, got, ref[v])
				}
			}
			// Spot-check random lookups, including absent keys.
			for i := 0; i < 3; i++ {
				w := rng.Intn(nodes)
				if s.get(w) != ref[w] {
					t.Fatalf("seed %d op %d: get(%d) = %d, want %d", seed, op, w, s.get(w), ref[w])
				}
			}
		}
	}
}

// TestSparseCountDecPanicsOnEmptyNode: decrementing a node with no
// recorded agents must panic loudly, not corrupt the table.
func TestSparseCountDecPanicsOnEmptyNode(t *testing.T) {
	var s sparseCount
	s.inc(3)
	defer func() {
		if recover() == nil {
			t.Error("dec on an empty node did not panic")
		}
	}()
	s.dec(4)
}

// TestSparseCountReserve: reserving capacity up front preserves the
// live entries, prevents any further growth up to the reserved load,
// and is idempotent and safe on empty and on already-populated tables.
func TestSparseCountReserve(t *testing.T) {
	var s sparseCount
	for v := 0; v < 10; v++ {
		s.inc(v)
	}
	const k = 1000
	s.reserve(k)
	capAfter := len(s.keys)
	if capAfter < 2*(k+1) {
		t.Fatalf("reserve(%d) left capacity %d, want >= %d", k, capAfter, 2*(k+1))
	}
	for v := 0; v < 10; v++ {
		if s.get(v) != 1 {
			t.Fatalf("reserve lost entry for node %d", v)
		}
	}
	for v := 10; v < k; v++ {
		s.inc(v)
	}
	if len(s.keys) != capAfter {
		t.Fatalf("table grew to %d entries despite reserve(%d) to capacity %d", len(s.keys), k, capAfter)
	}
	for v := 0; v < k; v++ {
		if s.get(v) != 1 {
			t.Fatalf("node %d count = %d after fill, want 1", v, s.get(v))
		}
	}
	s.reserve(k / 2) // smaller reservation must be a no-op
	if len(s.keys) != capAfter {
		t.Fatalf("shrinking reserve resized the table to %d", len(s.keys))
	}
}

// TestBoardReserve: Board.Reserve pre-sizes both the position slice and
// the count table without disturbing live agents.
func TestBoardReserve(t *testing.T) {
	b := New(hypercube.New(4), 0)
	a := b.Place(0)
	b.Reserve(500)
	if v, active := b.Position(a); !active || v != b.Home() {
		t.Fatalf("Reserve disturbed agent %d: node %d active=%v", a, v, active)
	}
	for i := 1; i < 500; i++ {
		b.Place(0)
	}
	if got := b.AgentsOn(b.Home()); got != 500 {
		t.Fatalf("homebase holds %d agents, want 500", got)
	}
}
