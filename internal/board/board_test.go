package board

import (
	"testing"

	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
)

// pathGraph returns the path 0-1-2-...-n-1.
func pathGraph(n int) graph.Graph {
	g := graph.NewAdjacency(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestInitialState(t *testing.T) {
	b := New(pathGraph(4), 0)
	if b.StateOf(0) != Clean {
		t.Errorf("home state = %v", b.StateOf(0))
	}
	for v := 1; v < 4; v++ {
		if b.StateOf(v) != Contaminated {
			t.Errorf("node %d state = %v", v, b.StateOf(v))
		}
	}
	if b.AllClean() || b.ContaminatedCount() != 3 {
		t.Error("initial contamination wrong")
	}
	if b.Home() != 0 || b.Graph().Order() != 4 {
		t.Error("accessors wrong")
	}
}

func TestNewRejectsBadHome(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad homebase accepted")
		}
	}()
	New(pathGraph(3), 3)
}

func TestPlaceAndGuard(t *testing.T) {
	b := New(pathGraph(3), 0)
	a := b.Place(0)
	if a != 0 || b.Agents() != 1 {
		t.Error("agent id/count wrong")
	}
	if b.StateOf(0) != Guarded || b.AgentsOn(0) != 1 {
		t.Error("home not guarded after place")
	}
	if p, active := b.Position(a); p != 0 || !active {
		t.Error("position wrong")
	}
}

// Sweeping a path with one agent is a valid monotone contiguous search.
func TestPathSweepIsMonotone(t *testing.T) {
	const n = 6
	b := New(pathGraph(n), 0)
	b.RecordClean(true)
	a := b.Place(0)
	for v := 1; v < n; v++ {
		b.Move(a, v, int64(v))
		if !b.Contiguous() {
			t.Fatalf("contiguity broken at step %d", v)
		}
	}
	if !b.AllClean() {
		t.Error("path not fully cleaned")
	}
	if b.MonotoneViolations() != 0 || b.Recontaminations() != 0 {
		t.Error("sweep should not recontaminate")
	}
	if b.Moves() != n-1 {
		t.Errorf("moves = %d", b.Moves())
	}
	// Every node but the last settled in sweep order.
	for v := 0; v < n-1; v++ {
		if b.CleanOrder(v) != v {
			t.Errorf("clean order of %d = %d", v, b.CleanOrder(v))
		}
	}
	// The final node is guarded, not yet settled.
	if b.CleanOrder(n-1) != -1 {
		t.Error("guarded terminal node should not be settled yet")
	}
	b.Terminate(a, int64(n))
	if b.CleanOrder(n-1) < 0 {
		t.Error("terminate should settle the final node")
	}
	if _, active := b.Position(a); active {
		t.Error("terminated agent still active")
	}
}

// A single agent on a cycle cannot clean monotonically: walking away
// from the frontier exposes the node behind.
func TestCycleRecontaminates(t *testing.T) {
	g := graph.NewAdjacency(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	b := New(g, 0)
	a := b.Place(0)
	b.Move(a, 1, 1) // leaving 0 exposes it to neighbour 3
	if b.StateOf(0) != Contaminated {
		t.Errorf("node 0 state = %v, want recontaminated", b.StateOf(0))
	}
	if b.Recontaminations() != 1 {
		t.Errorf("recontaminations = %d", b.Recontaminations())
	}
	// Node 0 was never stably clean, so no monotonicity violation yet.
	if b.MonotoneViolations() != 0 {
		t.Errorf("violations = %d, want 0", b.MonotoneViolations())
	}
}

// A multiply-guarded node is not exposed until its last agent leaves,
// and walking back through clean territory causes no violations.
func TestMultiGuardAndBacktrack(t *testing.T) {
	b := New(pathGraph(4), 0)
	b.RecordClean(true)
	a1 := b.Place(0)
	a2 := b.Place(0)
	b.Move(a1, 1, 1)
	// 0 still holds a2: guarded, not settled.
	if b.StateOf(0) != Guarded || b.CleanOrder(0) != -1 {
		t.Fatal("home should remain guarded while the rear guard stays")
	}
	b.Move(a2, 1, 2)
	// Now 0 is exposed; its only neighbour is guarded -> stably clean.
	if b.StateOf(0) != Clean || b.CleanOrder(0) != 0 {
		t.Fatal("home should settle once the last agent leaves")
	}
	// Sweep to the end with a1, a2 trailing one behind.
	b.Move(a1, 2, 3)
	b.Move(a2, 2, 4)
	b.Move(a1, 3, 5)
	if !b.AllClean() {
		t.Fatal("everything should be decontaminated")
	}
	// Backtrack a1 through clean territory: no recontamination.
	b.Move(a1, 2, 6)
	b.Move(a2, 1, 7)
	b.Move(a1, 1, 8)
	b.Move(a1, 0, 9)
	if b.MonotoneViolations() != 0 || b.Recontaminations() != 0 {
		t.Fatalf("backtracking through clean territory recontaminated: %d/%d",
			b.MonotoneViolations(), b.Recontaminations())
	}
	if !b.AllClean() {
		t.Fatal("everything should still be clean")
	}
}

func TestFloodSwallowsCleanRegion(t *testing.T) {
	// Star: center 0, leaves 1..4. Clean leaf 1, then abandon center
	// while other leaves are contaminated: the flood must take 0 and
	// count a violation for stably-clean leaf 1 when it reaches it.
	g := graph.NewAdjacency(5)
	for v := 1; v <= 4; v++ {
		g.AddEdge(0, v)
	}
	b := New(g, 0)
	b.RecordClean(true)
	a := b.Place(0)
	guard := b.Place(0) // rear guard holds the center
	b.Move(a, 1, 1)
	b.Move(a, 0, 2) // leaf 1 exposed; only neighbour 0 guarded -> stably clean
	if b.StateOf(1) != Clean || b.CleanOrder(1) < 0 {
		t.Fatal("leaf 1 should be stably clean")
	}
	b.Move(a, 2, 3) // center still guarded by the rear guard
	if b.StateOf(0) != Guarded {
		t.Fatal("center should be guarded")
	}
	b.Move(guard, 2, 4) // center exposed to contaminated leaves 3, 4
	if b.StateOf(0) != Contaminated {
		t.Fatal("center should be recontaminated")
	}
	// The flood must have swallowed the stably clean, unguarded leaf 1.
	if b.StateOf(1) != Contaminated {
		t.Fatal("leaf 1 should flood")
	}
	if b.MonotoneViolations() != 1 {
		t.Fatalf("violations = %d, want 1 (leaf 1)", b.MonotoneViolations())
	}
	if b.CleanOrder(1) != -1 || b.CleanTime(1) != -1 {
		t.Error("flooded node should lose its settled status")
	}
	// Leaf 2 is guarded by both agents, so the flood stopped there.
	if b.StateOf(2) != Guarded {
		t.Fatal("leaf 2 should be guarded")
	}
}

func TestMoveValidation(t *testing.T) {
	cases := []struct {
		name string
		bad  func(b *Board, a int)
	}{
		{"non-edge", func(b *Board, a int) { b.Move(a, 2, 1) }},
		{"unknown agent", func(b *Board, a int) { b.Move(7, 1, 1) }},
		{"negative agent", func(b *Board, a int) { b.Move(-1, 1, 1) }},
		{"time backwards", func(b *Board, a int) {
			b.Move(a, 1, 5)
			b.Move(a, 0, 4)
		}},
		{"position of unknown agent", func(b *Board, a int) { b.Position(9) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := New(pathGraph(3), 0)
			a := b.Place(0)
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", c.name)
				}
			}()
			c.bad(b, a)
		})
	}
}

func TestTerminatedAgentCannotMove(t *testing.T) {
	b := New(pathGraph(3), 0)
	a := b.Place(0)
	b.Terminate(a, 1)
	defer func() {
		if recover() == nil {
			t.Error("terminated agent moved")
		}
	}()
	b.Move(a, 1, 2)
}

func TestCloneRules(t *testing.T) {
	b := New(pathGraph(3), 0)
	a := b.Place(0)
	c := b.Clone(0, 1)
	if b.AgentsOn(0) != 2 || c != 1 {
		t.Error("clone accounting wrong")
	}
	b.Move(a, 1, 2)
	c2 := b.Clone(1, 3)
	if b.AgentsOn(1) != 2 {
		t.Error("clone on remote node wrong")
	}
	_ = c2
	defer func() {
		if recover() == nil {
			t.Error("clone on unguarded node accepted")
		}
	}()
	b.Clone(2, 4)
}

func TestPeakAwayTracking(t *testing.T) {
	h := hypercube.New(3)
	b := New(h, 0)
	a1 := b.Place(0)
	a2 := b.Place(0)
	if b.PeakAway() != 0 {
		t.Error("peak away should start 0")
	}
	b.Move(a1, 1, 1)
	b.Move(a2, 2, 2)
	if b.PeakAway() != 2 {
		t.Errorf("peak away = %d", b.PeakAway())
	}
	b.Move(a1, 0, 3)
	if b.PeakAway() != 2 {
		t.Error("peak away must not decrease")
	}
}

func TestSnapshotAndNow(t *testing.T) {
	b := New(pathGraph(3), 0)
	b.RecordClean(true)
	a := b.Place(0)
	b.Move(a, 1, 7)
	snap := b.Snapshot()
	if snap[0] != Clean || snap[1] != Guarded || snap[2] != Contaminated {
		t.Errorf("snapshot = %v", snap)
	}
	if b.Now() != 7 {
		t.Errorf("Now = %d", b.Now())
	}
	if b.CleanTime(0) != 7 {
		t.Errorf("CleanTime(0) = %d", b.CleanTime(0))
	}
}

func TestStateString(t *testing.T) {
	if Contaminated.String() != "contaminated" || Guarded.String() != "guarded" || Clean.String() != "clean" {
		t.Error("State strings wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state string empty")
	}
}

// Fixpoint property: after any move sequence, an unguarded clean node
// never has a contaminated neighbour (the paper's recursive clean
// definition holds by construction).
func TestCleanFixpointInvariant(t *testing.T) {
	h := hypercube.New(4)
	b := New(h, 0)
	a := b.Place(0)
	// A wandering agent: deterministic pseudo-walk.
	cur := 0
	step := int64(1)
	for i := 0; i < 500; i++ {
		ns := h.Neighbours(cur)
		cur = ns[(i*7+i/3)%len(ns)]
		b.Move(a, cur, step)
		step++
		for v := 0; v < h.Order(); v++ {
			if b.StateOf(v) != Clean {
				continue
			}
			for _, w := range h.Neighbours(v) {
				if b.StateOf(w) == Contaminated {
					t.Fatalf("clean node %d adjacent to contaminated %d after move %d", v, w, i)
				}
			}
		}
	}
}
