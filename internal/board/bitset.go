package board

import mathbits "math/bits"

// words is a fixed-capacity bitset packed into 64-bit words. The board
// keeps one bitplane per boolean node attribute (decontaminated,
// ever-clean, settled, occupied, flood-visited), so per-node state
// costs bits instead of the bytes the legacy []bool/[]int layout paid.
// Bits above the node count are never set, so popcounts need no tail
// masking.
type words []uint64

func newWords(n int) words { return make(words, (n+63)/64) }

func (w words) get(i int) bool { return w[i>>6]&(1<<(uint(i)&63)) != 0 }

func (w words) set(i int) { w[i>>6] |= 1 << (uint(i) & 63) }

func (w words) clear(i int) { w[i>>6] &^= 1 << (uint(i) & 63) }

// clearAll zeroes the bitset in O(n/64); the compiler lowers the loop
// to a memclr.
func (w words) clearAll() {
	for i := range w {
		w[i] = 0
	}
}

// firstSet returns the lowest set bit index, or -1 when empty.
func (w words) firstSet() int {
	for i, x := range w {
		if x != 0 {
			return i<<6 + mathbits.TrailingZeros64(x)
		}
	}
	return -1
}
