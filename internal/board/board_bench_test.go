package board

import (
	"testing"

	"hypersearch/internal/hypercube"
)

// BenchmarkMoveHotPath measures the incremental contamination
// bookkeeping: a two-agent leapfrog along a long path (every move
// triggers an exposure check, none floods).
func BenchmarkMoveHotPath(b *testing.B) {
	h := hypercube.New(10)
	bd := New(h, 0)
	a := bd.Place(0)
	cur := 0
	var t int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := h.Neighbours(cur)[i%10]
		t++
		bd.Move(a, next, t)
		cur = next
	}
}

// BenchmarkContiguityCheck measures the full O(n+m) connectivity scan
// used by the every-move checking mode.
func BenchmarkContiguityCheck(b *testing.B) {
	h := hypercube.New(12)
	bd := New(h, 0)
	bd.Place(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !bd.Contiguous() {
			b.Fatal("board should be contiguous")
		}
	}
}
