package heapqueue

import (
	"testing"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
)

func TestTreeIsSpanningTreeOfHypercube(t *testing.T) {
	const d = 7
	bt := New(d)
	h := hypercube.New(d)
	if !graph.IsTree(bt.Graph()) {
		t.Fatal("broadcast tree is not a tree")
	}
	if bt.Order() != h.Order() {
		t.Fatal("order mismatch")
	}
	// Every tree edge is a hypercube edge.
	for v := 1; v < bt.Order(); v++ {
		if h.Distance(v, bt.Parent(v)) != 1 {
			t.Errorf("tree edge (%d,%d) is not a hypercube edge", v, bt.Parent(v))
		}
	}
}

func TestBFSTreeProperty(t *testing.T) {
	// The broadcast tree is a breadth-first spanning tree: tree depth
	// equals hypercube distance from the root.
	const d = 8
	bt := New(d)
	h := hypercube.New(d)
	dist := graph.BFS(h, 0)
	for v := 0; v < bt.Order(); v++ {
		if bt.Depth(v) != dist[v] {
			t.Errorf("v=%d: tree depth %d, BFS dist %d", v, bt.Depth(v), dist[v])
		}
		if bt.Graph().Depth(v) != dist[v] {
			t.Errorf("v=%d: graph.Tree depth %d, BFS dist %d", v, bt.Graph().Depth(v), dist[v])
		}
	}
}

func TestHeapQueueRecursion(t *testing.T) {
	// Definition 1: a node of type T(k) has k children of types
	// T(k-1), ..., T(0) in that order (our children are label-ordered).
	const d = 7
	bt := New(d)
	for v := 0; v < bt.Order(); v++ {
		k := bt.Type(v)
		ch := bt.Children(v)
		if len(ch) != k {
			t.Fatalf("v=%d type T(%d) has %d children", v, k, len(ch))
		}
		for i, c := range ch {
			if bt.Type(c) != k-1-i {
				t.Errorf("v=%d child %d: type T(%d), want T(%d)", v, c, bt.Type(c), k-1-i)
			}
		}
		if bt.SubtreeSize(v) != 1<<k {
			t.Errorf("v=%d: |T(%d)| = %d, want %d", v, k, bt.SubtreeSize(v), 1<<k)
		}
	}
}

func TestProperty1TypeCounts(t *testing.T) {
	const d = 9
	bt := New(d)
	for l := 1; l <= d; l++ {
		for k := 0; k <= d-l; k++ {
			got := bt.CountType(l, k)
			want := combin.TreeNodesOfType(d, l, k)
			if int64(got) != want {
				t.Errorf("level %d type T(%d): counted %d, closed form %d", l, k, got, want)
			}
		}
	}
	if bt.CountType(0, d) != 1 {
		t.Error("root type count wrong")
	}
}

func TestProperty2And6Leaves(t *testing.T) {
	const d = 8
	bt := New(d)
	leaves := bt.Leaves()
	if int64(len(leaves)) != combin.Pow2(d-1) {
		t.Fatalf("%d leaves, want %d", len(leaves), combin.Pow2(d-1))
	}
	perLevel := make([]int64, d+1)
	for _, v := range leaves {
		perLevel[bt.Depth(v)]++
		// Property 6: all leaves are in class C_d.
		if bits.Class(bits.Node(v)) != d {
			t.Errorf("leaf %d not in C_%d", v, d)
		}
	}
	for l := 1; l <= d; l++ {
		if perLevel[l] != combin.TreeLeavesAtLevel(d, l) {
			t.Errorf("level %d: %d leaves, want %d", l, perLevel[l], combin.TreeLeavesAtLevel(d, l))
		}
	}
}

func TestProperty7NeighbourClasses(t *testing.T) {
	// For x in C_i (i > 0): exactly one smaller neighbour in some C_j
	// with j < i, the rest in C_i; all bigger neighbours in C_k, k > i.
	const d = 7
	h := hypercube.New(d)
	for v := 1; v < h.Order(); v++ {
		i := h.Class(v)
		below := 0
		for _, w := range h.SmallerNeighbours(v) {
			if c := h.Class(w); c < i {
				below++
			} else if c != i {
				t.Fatalf("v=%d: smaller neighbour %d in class %d > %d", v, w, c, i)
			}
		}
		if below != 1 {
			t.Errorf("v=%d: %d smaller neighbours below C_%d, want 1", v, below, i)
		}
		for _, w := range h.BiggerNeighbours(v) {
			if h.Class(w) <= i {
				t.Errorf("v=%d: bigger neighbour %d in class %d <= %d", v, w, h.Class(w), i)
			}
		}
	}
}

func TestProperty8Witness(t *testing.T) {
	// For x in C_i, i > 1: there is a smaller neighbour y in C_i that
	// itself has a smaller neighbour z in C_{i-1}.
	// Known paper slip: the property fails for exactly one node, x = 3
	// (binary ...011) in C_2 — the only case where bit i-1 is set and
	// no position j < i-1 exists, so neither proof case applies. The
	// exception is harmless to Theorem 7 (at the relevant time only the
	// source holds agents); we assert the property everywhere else and
	// assert the exception stays an exception.
	const d = 8
	h := hypercube.New(d)
	for i := 2; i <= d; i++ {
		for _, v := range h.NodesInClass(i) {
			if v == 3 {
				continue
			}
			found := false
			for _, y := range h.SmallerNeighbours(v) {
				if h.Class(y) != i {
					continue
				}
				for _, z := range h.SmallerNeighbours(y) {
					if h.Class(z) == i-1 {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("no Property-8 witness for node %d in C_%d", v, i)
			}
		}
	}
	// The documented exception: node 3 has no witness.
	found := false
	for _, y := range h.SmallerNeighbours(3) {
		if h.Class(y) != 2 {
			continue
		}
		for _, z := range h.SmallerNeighbours(y) {
			if h.Class(z) == 1 {
				found = true
			}
		}
	}
	if found {
		t.Error("node 3 unexpectedly has a Property-8 witness; update the paper-slip note")
	}
}

func TestAgentsRequiredAndDispatchPlan(t *testing.T) {
	if AgentsRequired(0) != 1 || AgentsRequired(1) != 1 || AgentsRequired(4) != 8 {
		t.Error("AgentsRequired wrong")
	}
	for k := 1; k <= 20; k++ {
		plan := DispatchPlan(k)
		if len(plan) != k {
			t.Fatalf("k=%d: plan length %d", k, len(plan))
		}
		var sum int64
		for _, p := range plan {
			sum += p
		}
		if sum != AgentsRequired(k) {
			t.Errorf("k=%d: plan sums to %d, want %d (all agents leave)", k, sum, AgentsRequired(k))
		}
		// The T(0) child (last slot) gets exactly one agent.
		if plan[k-1] != 1 {
			t.Errorf("k=%d: T(0) child gets %d agents", k, plan[k-1])
		}
	}
	if DispatchPlan(0) != nil {
		t.Error("leaf dispatch plan should be nil")
	}
}

func TestPathFromRoot(t *testing.T) {
	const d = 6
	bt := New(d)
	for v := 0; v < bt.Order(); v++ {
		p := bt.PathFromRoot(v)
		if p[0] != 0 || p[len(p)-1] != v || len(p) != bt.Depth(v)+1 {
			t.Fatalf("bad path to %d: %v", v, p)
		}
		for i := 1; i < len(p); i++ {
			if bt.Parent(p[i]) != p[i-1] {
				t.Fatalf("path to %d not a tree path: %v", v, p)
			}
		}
	}
}

func TestFigure1Structure(t *testing.T) {
	// Figure 1 of the paper: the broadcast tree T(6) of H_6. Check the
	// headline numbers visible in the figure: the root has 6 children
	// of types T(5)..T(0), and level 1 is exactly the root's children.
	bt := New(6)
	root := bt.Children(0)
	if len(root) != 6 {
		t.Fatalf("root has %d children", len(root))
	}
	for i, c := range root {
		if bt.Type(c) != 5-i {
			t.Errorf("root child %d has type T(%d)", c, bt.Type(c))
		}
		if bt.Depth(c) != 1 {
			t.Errorf("root child %d at depth %d", c, bt.Depth(c))
		}
	}
	// |T(6)| = 64 and leaves = 32.
	if bt.SubtreeSize(0) != 64 || len(bt.Leaves()) != 32 {
		t.Error("T(6) size/leaf counts wrong")
	}
}

// TestNextHopDownMatchesPathFromRoot: stepping NextHopDown from the
// root visits exactly the vertices PathFromRoot returns.
func TestNextHopDownMatchesPathFromRoot(t *testing.T) {
	for d := 0; d <= 6; d++ {
		bt := New(d)
		for x := 0; x < bt.Order(); x++ {
			want := bt.PathFromRoot(x)
			got := []int{0}
			for cur := 0; cur != x; {
				next := bt.NextHopDown(cur, x)
				if next == cur {
					t.Fatalf("d=%d: NextHopDown stalled at %d short of %d", d, cur, x)
				}
				if bt.Parent(next) != cur {
					t.Fatalf("d=%d: NextHopDown(%d,%d)=%d is not a tree child", d, cur, x, next)
				}
				got = append(got, next)
				cur = next
			}
			if len(got) != len(want) {
				t.Fatalf("d=%d root->%d: stepped %v, want %v", d, x, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("d=%d root->%d: stepped %v, want %v", d, x, got, want)
				}
			}
		}
	}
}

// TestNextHopDownRejectsNonDescendants: asking for a hop toward a node
// outside the subtree panics rather than fabricating a non-tree edge.
func TestNextHopDownRejectsNonDescendants(t *testing.T) {
	bt := New(3)
	for _, pair := range [][2]int{{4, 5}, {2, 1}, {6, 7}} {
		v, x := pair[0], pair[1]
		// Skip pairs that are genuine ancestor/descendant in this d.
		if func() (desc bool) {
			for c := x; ; c = bt.Parent(c) {
				if c == v {
					return true
				}
				if c == 0 {
					return false
				}
			}
		}() {
			continue
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NextHopDown(%d,%d) should panic", v, x)
				}
			}()
			bt.NextHopDown(v, x)
		}()
	}
}
