package heapqueue_test

import (
	"fmt"

	"hypersearch/internal/heapqueue"
)

// The broadcast tree is the paper's heap queue T(d): the root has d
// children of types T(d-1)..T(0), recursively.
func Example() {
	bt := heapqueue.New(4)
	fmt.Println("root type:", bt.Type(0))
	for _, c := range bt.Children(0) {
		fmt.Printf("child %04b: type T(%d), subtree size %d\n", c, bt.Type(c), bt.SubtreeSize(c))
	}
	fmt.Println("leaves:", len(bt.Leaves()))
	// Output:
	// root type: 4
	// child 0001: type T(3), subtree size 8
	// child 0010: type T(2), subtree size 4
	// child 0100: type T(1), subtree size 2
	// child 1000: type T(0), subtree size 1
	// leaves: 8
}

// DispatchPlan is the visibility strategy's local split: a type-T(k)
// node holds 2^(k-1) agents and forwards them to its children.
func ExampleDispatchPlan() {
	fmt.Println(heapqueue.AgentsRequired(4), heapqueue.DispatchPlan(4))
	// Output:
	// 8 [4 2 1 1]
}
