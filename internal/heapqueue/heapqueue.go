// Package heapqueue implements the broadcast spanning tree of the
// hypercube — a heap queue T(d) in the paper's terminology
// (Definition 1) — together with the structural properties
// (Properties 1-8) the two cleaning strategies rely on.
//
// The broadcast tree of H_d is rooted at node 00...0; node x is joined
// to every node of the next level that differs from x in a position
// higher than m(x) (the most significant bit of x). Equivalently: the
// parent of x != 0 is x with its most significant bit cleared.
package heapqueue

import (
	"fmt"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
)

// Tree is the broadcast tree of H_d. It wraps a graph.Tree over the
// hypercube's dense vertex indices and adds the paper's type and class
// queries.
type Tree struct {
	d    int
	tree *graph.Tree
}

// New builds the broadcast tree T(d) of H_d.
func New(d int) *Tree {
	bits.CheckDim(d)
	if d > 24 {
		panic(fmt.Sprintf("heapqueue: dimension %d too large to materialize", d))
	}
	n := 1 << d
	parent := make([]int, n)
	for v := 1; v < n; v++ {
		parent[v] = int(bits.Parent(bits.Node(v)))
	}
	return &Tree{d: d, tree: graph.MustTree(0, parent)}
}

// Dim returns the hypercube dimension d; the root has type T(d).
func (t *Tree) Dim() int { return t.d }

// Graph returns the underlying rooted tree (over dense hypercube
// vertex indices).
func (t *Tree) Graph() *graph.Tree { return t.tree }

// Order returns 2^d.
func (t *Tree) Order() int { return t.tree.Order() }

// Root returns the root vertex (always 0).
func (t *Tree) Root() int { return 0 }

// Parent returns the tree parent of v, or -1 for the root.
func (t *Tree) Parent(v int) int { return t.tree.Parent(v) }

// Children returns the tree children of v ordered by increasing edge
// label (equivalently, by decreasing subtree type).
func (t *Tree) Children(v int) []int { return t.tree.Children(v) }

// Type returns k such that the subtree rooted at v is a heap queue of
// type T(k): d - m(v).
func (t *Tree) Type(v int) int { return bits.TreeType(bits.Node(v), t.d) }

// IsLeaf reports whether v is a T(0) node.
func (t *Tree) IsLeaf(v int) bool { return t.tree.IsLeaf(v) }

// Depth returns the level of v (equal to its tree depth: the broadcast
// tree is a BFS tree of the hypercube).
func (t *Tree) Depth(v int) int { return bits.Level(bits.Node(v)) }

// Leaves returns all T(0) nodes in preorder.
func (t *Tree) Leaves() []int { return t.tree.Leaves() }

// SubtreeSize returns the number of vertices under v (inclusive); for a
// node of type T(k) this is 2^k.
func (t *Tree) SubtreeSize(v int) int { return t.tree.SubtreeSize(v) }

// AgentsRequired returns the agent complement a node of type T(k)
// holds under Algorithm CLEAN WITH VISIBILITY: 2^(k-1) for k >= 1 and
// 1 for a leaf (Theorem 5).
func AgentsRequired(k int) int64 {
	if k <= 0 {
		return 1
	}
	return combin.Pow2(k - 1)
}

// DispatchPlan returns, for a node of type T(k), the number of agents
// to send to each child ordered as Children() orders them (types
// T(k-1), ..., T(1), T(0)): 2^(i-1) agents to the T(i) child and one
// agent to the T(0) child. The plan sums to AgentsRequired(k) for
// k >= 1 and is empty for leaves.
func DispatchPlan(k int) []int64 {
	if k <= 0 {
		return nil
	}
	plan := make([]int64, k)
	for idx := 0; idx < k; idx++ {
		childType := k - 1 - idx
		plan[idx] = AgentsRequired(childType)
		if childType == 0 {
			plan[idx] = 1
		}
	}
	return plan
}

// PathFromRoot returns the tree path from the root to v, inclusive.
func (t *Tree) PathFromRoot(v int) []int {
	depth := t.Depth(v)
	path := make([]int, depth+1)
	for i := depth; i >= 0; i-- {
		path[i] = v
		if v != 0 {
			v = t.Parent(v)
		}
	}
	return path
}

// NextHopDown returns the child of v on the tree path from v down to
// its descendant x, or v itself when v == x. Iterating it from the
// root walks exactly PathFromRoot(x) without allocating the slice: the
// broadcast tree adds the set bits of x lowest position first. It
// panics if x is not in the subtree of v.
func (t *Tree) NextHopDown(v, x int) int {
	rest := uint32(x &^ v)
	// x descends from v iff v's bits are a subset of x's and every
	// extra bit of x lies above m(v) — checking the lowest suffices.
	if x&v != v || (rest != 0 && int(rest&-rest) <= v) {
		panic(fmt.Sprintf("heapqueue: %d is not a descendant of %d", x, v))
	}
	if rest == 0 {
		return v
	}
	return v | int(rest&-rest)
}

// CountType returns the number of type-T(k) nodes at level l
// (Property 1), computed from the tree itself; tests compare it with
// the closed form in internal/combin.
func (t *Tree) CountType(l, k int) int {
	count := 0
	for _, v := range bits.NodesAtLevel(t.d, l) {
		if t.Type(int(v)) == k {
			count++
		}
	}
	return count
}
