// Package heapqueue implements the broadcast spanning tree of the
// hypercube — a heap queue T(d) in the paper's terminology
// (Definition 1) — together with the structural properties
// (Properties 1-8) the two cleaning strategies rely on.
//
// The broadcast tree of H_d is rooted at node 00...0; node x is joined
// to every node of the next level that differs from x in a position
// higher than m(x) (the most significant bit of x). Equivalently: the
// parent of x != 0 is x with its most significant bit cleared.
//
// Every structural query has a closed form in the node's bits, so the
// tree supports the same two representations as internal/hypercube:
// New materializes a graph.Tree (child slices shareable without
// allocation), Implicit stores only d and computes everything on the
// fly, and ForDim picks by size. Both answer identically; the implicit
// Children allocates per call, so hot paths use VisitChildren.
package heapqueue

import (
	"fmt"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
)

// MaterializeLimit is the largest dimension ForDim materializes the
// child lists for, matching hypercube.MaterializeLimit so a dimension's
// topology pair is always in one representation.
const MaterializeLimit = 16

// MaxMaterializedDim is the hard ceiling for New.
const MaxMaterializedDim = 24

// Tree is the broadcast tree of H_d. It adds the paper's type and
// class queries over either a materialized graph.Tree or the pure
// bit-algebra closed forms.
type Tree struct {
	d    int
	tree *graph.Tree // nil for the implicit representation
}

// New builds the broadcast tree T(d) of H_d with materialized child
// lists. It panics past MaxMaterializedDim — use Implicit (or ForDim)
// for big boards.
func New(d int) *Tree {
	bits.CheckDim(d)
	if d > MaxMaterializedDim {
		panic(fmt.Sprintf("heapqueue: dimension %d too large to materialize; use heapqueue.Implicit(%d) (or ForDim) for the closed-form representation", d, d))
	}
	n := 1 << d
	parent := make([]int, n)
	for v := 1; v < n; v++ {
		parent[v] = int(bits.Parent(bits.Node(v)))
	}
	return &Tree{d: d, tree: graph.MustTree(0, parent)}
}

// Implicit returns T(d) in the closed-form representation: O(1)
// memory, every query computed from the node's bits. Children and
// Leaves allocate per call; VisitChildren does not.
func Implicit(d int) *Tree {
	bits.CheckDim(d)
	return &Tree{d: d}
}

// ForDim returns T(d) in the representation appropriate for its size:
// materialized up to MaterializeLimit, implicit beyond.
func ForDim(d int) *Tree {
	if d <= MaterializeLimit {
		return New(d)
	}
	return Implicit(d)
}

// IsImplicit reports whether t is the closed-form representation.
func (t *Tree) IsImplicit() bool { return t.tree == nil }

// Dim returns the hypercube dimension d; the root has type T(d).
func (t *Tree) Dim() int { return t.d }

// Graph returns the underlying rooted tree (over dense hypercube
// vertex indices). Only the materialized representation carries one;
// on an implicit tree it panics.
func (t *Tree) Graph() *graph.Tree {
	if t.tree == nil {
		panic("heapqueue: implicit tree has no materialized graph.Tree; construct with New for Graph()")
	}
	return t.tree
}

// Order returns 2^d.
func (t *Tree) Order() int { return 1 << t.d }

// Root returns the root vertex (always 0).
func (t *Tree) Root() int { return 0 }

// Parent returns the tree parent of v — v with its most significant
// bit cleared — or -1 for the root.
func (t *Tree) Parent(v int) int {
	if v == 0 {
		return -1
	}
	return int(bits.Parent(bits.Node(v)))
}

// Children returns the tree children of v ordered by increasing edge
// label (equivalently, by decreasing subtree type). Materialized: a
// cached view (do not modify); implicit: freshly allocated — prefer
// VisitChildren on hot paths.
func (t *Tree) Children(v int) []int {
	if t.tree != nil {
		return t.tree.Children(v)
	}
	m := bits.Msb(bits.Node(v))
	out := make([]int, t.d-m)
	for i := m; i < t.d; i++ {
		out[i-m] = v | 1<<i
	}
	return out
}

// VisitChildren calls yield for the children of v in increasing edge
// label order — exactly the order Children returns — stopping early
// when yield returns false. Allocation-free on both representations.
func (t *Tree) VisitChildren(v int, yield func(c int) bool) {
	for i := bits.Msb(bits.Node(v)); i < t.d; i++ {
		if !yield(v | 1<<i) {
			return
		}
	}
}

// Type returns k such that the subtree rooted at v is a heap queue of
// type T(k): d - m(v).
func (t *Tree) Type(v int) int { return bits.TreeType(bits.Node(v), t.d) }

// IsLeaf reports whether v is a T(0) node.
func (t *Tree) IsLeaf(v int) bool { return bits.IsTreeLeaf(bits.Node(v), t.d) }

// Depth returns the level of v (equal to its tree depth: the broadcast
// tree is a BFS tree of the hypercube).
func (t *Tree) Depth(v int) int { return bits.Level(bits.Node(v)) }

// Leaves returns all T(0) nodes: the vertices with their most
// significant bit at position d, i.e. [2^(d-1), 2^d). The materialized
// representation lists them in preorder (the historical order); the
// implicit one in increasing vertex order.
func (t *Tree) Leaves() []int {
	if t.tree != nil {
		return t.tree.Leaves()
	}
	if t.d == 0 {
		return []int{0}
	}
	half := 1 << (t.d - 1)
	out := make([]int, half)
	for i := range out {
		out[i] = half + i
	}
	return out
}

// SubtreeSize returns the number of vertices under v (inclusive); for
// a node of type T(k) this is exactly 2^k (Definition 1), so both
// representations answer from the closed form.
func (t *Tree) SubtreeSize(v int) int { return 1 << t.Type(v) }

// AgentsRequired returns the agent complement a node of type T(k)
// holds under Algorithm CLEAN WITH VISIBILITY: 2^(k-1) for k >= 1 and
// 1 for a leaf (Theorem 5).
func AgentsRequired(k int) int64 {
	if k <= 0 {
		return 1
	}
	return combin.Pow2(k - 1)
}

// DispatchPlan returns, for a node of type T(k), the number of agents
// to send to each child ordered as Children() orders them (types
// T(k-1), ..., T(1), T(0)): 2^(i-1) agents to the T(i) child and one
// agent to the T(0) child. The plan sums to AgentsRequired(k) for
// k >= 1 and is empty for leaves.
func DispatchPlan(k int) []int64 {
	if k <= 0 {
		return nil
	}
	plan := make([]int64, k)
	for idx := 0; idx < k; idx++ {
		childType := k - 1 - idx
		plan[idx] = AgentsRequired(childType)
		if childType == 0 {
			plan[idx] = 1
		}
	}
	return plan
}

// PathFromRoot returns the tree path from the root to v, inclusive.
func (t *Tree) PathFromRoot(v int) []int {
	depth := t.Depth(v)
	path := make([]int, depth+1)
	for i := depth; i >= 0; i-- {
		path[i] = v
		if v != 0 {
			v = t.Parent(v)
		}
	}
	return path
}

// NextHopDown returns the child of v on the tree path from v down to
// its descendant x, or v itself when v == x. Iterating it from the
// root walks exactly PathFromRoot(x) without allocating the slice: the
// broadcast tree adds the set bits of x lowest position first. It
// panics if x is not in the subtree of v.
func (t *Tree) NextHopDown(v, x int) int {
	rest := uint32(x &^ v)
	// x descends from v iff v's bits are a subset of x's and every
	// extra bit of x lies above m(v) — checking the lowest suffices.
	if x&v != v || (rest != 0 && int(rest&-rest) <= v) {
		panic(fmt.Sprintf("heapqueue: %d is not a descendant of %d", x, v))
	}
	if rest == 0 {
		return v
	}
	return v | int(rest&-rest)
}

// CountType returns the number of type-T(k) nodes at level l
// (Property 1), computed from the tree itself; tests compare it with
// the closed form in internal/combin.
func (t *Tree) CountType(l, k int) int {
	count := 0
	for _, v := range bits.NodesAtLevel(t.d, l) {
		if t.Type(int(v)) == k {
			count++
		}
	}
	return count
}
