package heapqueue

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestImplicitTreeMatchesMaterialized: the closed-form broadcast tree
// must agree with the materialized graph.Tree on every navigation
// query, child order included (dispatch order is part of the paper's
// algorithm).
func TestImplicitTreeMatchesMaterialized(t *testing.T) {
	for d := 0; d <= 8; d++ {
		m, im := New(d), Implicit(d)
		if m.Order() != im.Order() || m.IsImplicit() || !im.IsImplicit() {
			t.Fatalf("d=%d: order or representation flags wrong", d)
		}
		for v := 0; v < m.Order(); v++ {
			if v != 0 && m.Parent(v) != im.Parent(v) {
				t.Fatalf("d=%d v=%d: Parent %d vs %d", d, v, m.Parent(v), im.Parent(v))
			}
			if !reflect.DeepEqual(m.Children(v), im.Children(v)) && !(len(m.Children(v)) == 0 && len(im.Children(v)) == 0) {
				t.Fatalf("d=%d v=%d: Children %v vs %v", d, v, m.Children(v), im.Children(v))
			}
			var visited []int
			im.VisitChildren(v, func(c int) bool { visited = append(visited, c); return true })
			if !reflect.DeepEqual(visited, m.Children(v)) && !(len(visited) == 0 && len(m.Children(v)) == 0) {
				t.Fatalf("d=%d v=%d: VisitChildren %v, want %v", d, v, visited, m.Children(v))
			}
			if m.Type(v) != im.Type(v) || m.IsLeaf(v) != im.IsLeaf(v) ||
				m.Depth(v) != im.Depth(v) || m.SubtreeSize(v) != im.SubtreeSize(v) {
				t.Fatalf("d=%d v=%d: node attributes differ", d, v)
			}
			if !reflect.DeepEqual(m.PathFromRoot(v), im.PathFromRoot(v)) {
				t.Fatalf("d=%d v=%d: PathFromRoot differs", d, v)
			}
			if v != 0 {
				if m.NextHopDown(0, v) != im.NextHopDown(0, v) {
					t.Fatalf("d=%d v=%d: NextHopDown differs", d, v)
				}
			}
		}
		// Leaves: the implicit tree enumerates the top level in label
		// order, the materialized one in tree preorder — same set.
		ml, il := append([]int(nil), m.Leaves()...), append([]int(nil), im.Leaves()...)
		sort.Ints(ml)
		sort.Ints(il)
		if !reflect.DeepEqual(ml, il) {
			t.Fatalf("d=%d: leaf sets differ", d)
		}
	}
}

// TestTreeForDimThreshold mirrors hypercube.ForDim: materialized up to
// the limit, implicit beyond it.
func TestTreeForDimThreshold(t *testing.T) {
	if ForDim(MaterializeLimit).IsImplicit() {
		t.Errorf("ForDim(%d) should materialize", MaterializeLimit)
	}
	if !ForDim(MaterializeLimit + 1).IsImplicit() {
		t.Errorf("ForDim(%d) should be implicit", MaterializeLimit+1)
	}
	big := ForDim(26)
	if big.Order() != 1<<26 || big.Parent(1<<25) != 0 {
		t.Error("implicit ForDim(26) navigation wrong")
	}
}

// TestTreeNewPanicNamesImplicit: as with the hypercube, the size wall
// must point at the implicit constructor.
func TestTreeNewPanicNamesImplicit(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New past the materialization wall did not panic")
		}
		if !strings.Contains(r.(string), "Implicit") {
			t.Errorf("panic %q does not name heapqueue.Implicit", r)
		}
	}()
	New(MaxMaterializedDim + 1)
}

// TestGraphPanicsOnImplicit: the materialized-only escape hatch must
// refuse rather than return nil.
func TestGraphPanicsOnImplicit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Graph() on an implicit tree did not panic")
		}
	}()
	Implicit(20).Graph()
}
