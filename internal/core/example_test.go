package core_test

import (
	"fmt"

	"hypersearch/internal/core"
)

// The one-call API: run a strategy, read the costs.
func ExampleRun() {
	res, _, err := core.Run(core.Spec{Strategy: core.Visibility, Dim: 6})
	if err != nil {
		panic(err)
	}
	fmt.Printf("agents=%d moves=%d steps=%d captured=%v\n",
		res.TeamSize, res.TotalMoves, res.Makespan, res.Captured)
	// Output:
	// agents=32 moves=112 steps=6 captured=true
}

// The asynchronous adversary: randomized per-move latencies change the
// schedule but not the outcome.
func ExampleRun_adversarial() {
	res, _, err := core.Run(core.Spec{
		Strategy:           core.Clean,
		Dim:                5,
		AdversarialLatency: 9,
		Seed:               7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("agents=%d captured=%v monotone=%v\n",
		res.TeamSize, res.Captured, res.MonotoneOK)
	// Output:
	// agents=15 captured=true monotone=true
}

// Strategy discovery for tools.
func ExampleStrategies() {
	for _, name := range core.Strategies() {
		fmt.Println(name)
	}
	// Output:
	// clean
	// visibility
	// cloning
	// synchronous
	// naive-dfs
	// naive-convoy
}
