// Package core is the public face of the library: a single-call API
// over the paper's strategies (and the baselines), the two execution
// engines (deterministic discrete-event simulation and real goroutine
// concurrency), and the cost/correctness summary they produce.
//
// Typical use:
//
//	res, env, err := core.Run(core.Spec{Strategy: core.Visibility, Dim: 8, Record: true})
//	fmt.Println(res)                 // agents, moves, time, invariants
//	fmt.Print(viz.CleanOrder(env.H, env.B, true)) // needs Record: true
package core

import (
	"fmt"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netsim"
	"hypersearch/internal/runtime"
	"hypersearch/internal/strategy"
	"hypersearch/internal/strategy/cloning"
	"hypersearch/internal/strategy/coordinated"
	"hypersearch/internal/strategy/naive"
	"hypersearch/internal/strategy/synchronous"
	"hypersearch/internal/strategy/visibility"
	"hypersearch/internal/trace"
)

// Strategy names accepted by Spec.Strategy.
const (
	Clean       = coordinated.Name // Algorithm 1: synchronizer-coordinated
	Visibility  = visibility.Name  // Algorithm 2: local rule with neighbour visibility
	Cloning     = cloning.Name     // Section 5 cloning variant
	Synchronous = synchronous.Name // Section 5 synchronous variant
	NaiveDFS    = naive.DFSName    // oblivious single-agent sweep (baseline)
	NaiveConvoy = naive.ConvoyName // oblivious convoy sweep (baseline)
)

// Engine names accepted by Spec.Engine.
const (
	EngineDES        = "des"        // deterministic discrete-event simulation (default)
	EngineGoroutines = "goroutines" // one goroutine per agent, real preemption
	EngineNetwork    = "network"    // message-passing hosts, 1-bit visibility beacons
)

// Spec describes one search run.
type Spec struct {
	Strategy string // which strategy; see the name constants
	Dim      int    // hypercube dimension d (n = 2^d)
	Engine   string // EngineDES (default) or EngineGoroutines

	// Asynchrony: 0 runs the DES with unit latency (ideal time). A
	// positive value runs the asynchronous adversary — per-move
	// latencies uniform in [1, AdversarialLatency] on the DES, or
	// random sleeps up to that many microseconds on goroutines.
	AdversarialLatency int64
	Seed               int64

	ConvoyTeam     int  // team size for NaiveConvoy (default 1)
	CheckEveryMove bool // verify contiguity after every move (O(n) each)
	Record         bool // keep a structured trace (DES engine only)

	// Stream receives every trace event as the run emits it without
	// retaining anything (DES engine only) — the memory-bounded
	// alternative to Record for boards whose full logs do not fit in
	// memory; see trace.NewStream. Record and Stream are independent.
	Stream trace.Sink

	// Faults optionally injects a deterministic fault plan. On the DES
	// engine the plan's delay faults (stall, latency-spike,
	// lock-starve, lost-wakeup, kernel-lag) compile to an injector;
	// crash faults need the crash-tolerant goroutine runtime and link
	// faults need the network engine, so plans carrying either are
	// rejected rather than silently not firing. On the network engine
	// the plan's link faults drive the wire layer (netsim validates
	// them against the topology at config time). Determinism is
	// preserved: the same (Spec, Faults) pair always produces the same
	// Result, which is what lets the campaign service cache runs by
	// (d, protocol, seed, Faults.CanonicalHash()).
	Faults *faults.Plan
}

// Strategies lists the registered strategy names.
func Strategies() []string {
	return []string{Clean, Visibility, Cloning, Synchronous, NaiveDFS, NaiveConvoy}
}

// Run executes the spec and returns the result summary. For DES runs
// the returned Env exposes the topology, final board, and trace; for
// goroutine runs Env is nil (the engine is real-time and keeps no
// virtual clock).
func Run(spec Spec) (metrics.Result, *strategy.Env, error) {
	if spec.Dim < 0 {
		return metrics.Result{}, nil, fmt.Errorf("core: negative dimension %d", spec.Dim)
	}
	switch spec.Engine {
	case "", EngineDES:
		return runDES(spec, strategy.Fresh{})
	case EngineGoroutines:
		return runGoroutines(spec)
	case EngineNetwork:
		if spec.Faults != nil {
			if err := spec.Faults.ValidateForHosts(1 << spec.Dim); err != nil {
				return metrics.Result{}, nil, err
			}
			if spec.Strategy == Clean && spec.Faults.HasHostCrashFaults() {
				return metrics.Result{}, nil, fmt.Errorf("core: plan %q carries host-crash/cascade faults, which the clean network engine rejects", spec.Faults.Name)
			}
		}
		cfg := netsim.Config{
			Seed:       spec.Seed,
			MaxLatency: time.Duration(spec.AdversarialLatency) * time.Microsecond,
			Faults:     spec.Faults,
		}
		switch spec.Strategy {
		case Visibility:
			return netsim.Run(spec.Dim, cfg).Result, nil, nil
		case Clean:
			return netsim.RunClean(spec.Dim, cfg).Result, nil, nil
		case Cloning:
			return netsim.RunCloning(spec.Dim, cfg).Result, nil, nil
		default:
			return metrics.Result{}, nil, fmt.Errorf("core: strategy %q has no network engine", spec.Strategy)
		}
	default:
		return metrics.Result{}, nil, fmt.Errorf("core: unknown engine %q", spec.Engine)
	}
}

// RunWith is Run with the DES execution environment drawn from src
// instead of freshly allocated: sweeps pass an envpool.Pool so runs of
// the same dimension reuse one environment. The returned Env is still
// owned by src — the caller must hand it back with src.Release once
// done reading results and traces, and must not touch it afterwards.
// Non-DES engines ignore src and behave exactly like Run.
func RunWith(spec Spec, src strategy.Source) (metrics.Result, *strategy.Env, error) {
	if spec.Engine == "" || spec.Engine == EngineDES {
		if spec.Dim < 0 {
			return metrics.Result{}, nil, fmt.Errorf("core: negative dimension %d", spec.Dim)
		}
		return runDES(spec, src)
	}
	return Run(spec)
}

func runDES(spec Spec, src strategy.Source) (metrics.Result, *strategy.Env, error) {
	opts := strategy.Options{Record: spec.Record, Stream: spec.Stream}
	if spec.CheckEveryMove {
		opts.Contiguity = strategy.CheckEveryMove
	}
	if spec.Faults != nil {
		if err := spec.Faults.Validate(); err != nil {
			return metrics.Result{}, nil, err
		}
		if spec.Faults.RequiresRecovery() {
			return metrics.Result{}, nil, fmt.Errorf("core: plan %q carries crash faults, which need the crash-tolerant goroutine runtime (runtime.RunCleanFT/RunVisibilityFT)", spec.Faults.Name)
		}
		if spec.Faults.HasLinkFaults() {
			return metrics.Result{}, nil, fmt.Errorf("core: plan %q carries link faults, which need the network engine", spec.Faults.Name)
		}
		opts.Faults = faults.NewInjector(spec.Faults)
	}
	if spec.AdversarialLatency > 0 {
		opts.Latency = strategy.NewAdversarial(spec.Seed, spec.AdversarialLatency)
	}
	if spec.Strategy == Synchronous {
		// The synchronous variant is only defined for unit latency.
		opts.Latency = strategy.Unit{}
	}
	var res metrics.Result
	env := src.Acquire(spec.Dim, opts)
	switch spec.Strategy {
	case Clean:
		res = coordinated.RunEnv(env)
	case Visibility:
		res = visibility.RunEnv(env)
	case Cloning:
		res = cloning.RunEnv(env)
	case Synchronous:
		res = synchronous.RunEnv(env)
	case NaiveDFS:
		res = naive.RunDFSEnv(env)
	case NaiveConvoy:
		team := spec.ConvoyTeam
		if team < 1 {
			team = 1
		}
		res = naive.RunConvoyEnv(env, team)
	default:
		src.Release(env)
		return metrics.Result{}, nil, fmt.Errorf("core: unknown strategy %q", spec.Strategy)
	}
	return res, env, nil
}

func runGoroutines(spec Spec) (metrics.Result, *strategy.Env, error) {
	if spec.Faults != nil {
		return metrics.Result{}, nil, fmt.Errorf("core: fault plans on the goroutine engine go through runtime.RunCleanFT/RunVisibilityFT, not Spec.Faults")
	}
	cfg := runtime.Config{
		Seed:       spec.Seed,
		MaxLatency: time.Duration(spec.AdversarialLatency) * time.Microsecond,
	}
	switch spec.Strategy {
	case Clean:
		return runtime.RunClean(spec.Dim, cfg), nil, nil
	case Visibility:
		return runtime.RunVisibility(spec.Dim, cfg), nil, nil
	default:
		return metrics.Result{}, nil, fmt.Errorf("core: strategy %q has no goroutine engine", spec.Strategy)
	}
}
