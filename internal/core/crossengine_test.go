package core

import (
	"testing"

	"hypersearch/internal/combin"
)

// TestEnginesAgreeOnCosts checks the reproduction's strongest internal
// consistency property: all three engines — deterministic DES, real
// goroutines, message-passing hosts — realize the same strategies with
// identical move totals and team sizes, whatever the schedule.
func TestEnginesAgreeOnCosts(t *testing.T) {
	const d = 6
	engines := []string{EngineDES, EngineGoroutines, EngineNetwork}

	t.Run("visibility", func(t *testing.T) {
		for _, engine := range engines {
			res, _, err := Run(Spec{Strategy: Visibility, Dim: d, Engine: engine, Seed: 42, AdversarialLatency: 11})
			if err != nil {
				t.Fatalf("%s: %v", engine, err)
			}
			if !res.Ok() {
				t.Fatalf("%s: %s", engine, res.String())
			}
			if res.TotalMoves != combin.VisibilityMoves(d) {
				t.Errorf("%s: moves %d, want %d", engine, res.TotalMoves, combin.VisibilityMoves(d))
			}
			if int64(res.TeamSize) != combin.VisibilityAgents(d) {
				t.Errorf("%s: team %d", engine, res.TeamSize)
			}
		}
	})

	t.Run("clean", func(t *testing.T) {
		for _, engine := range engines {
			res, _, err := Run(Spec{Strategy: Clean, Dim: d, Engine: engine, Seed: 42, AdversarialLatency: 11})
			if err != nil {
				t.Fatalf("%s: %v", engine, err)
			}
			if !res.Ok() {
				t.Fatalf("%s: %s", engine, res.String())
			}
			if res.AgentMoves != combin.CleanAgentMoves(d)-int64(d) {
				t.Errorf("%s: agent moves %d", engine, res.AgentMoves)
			}
			if int64(res.TeamSize) != combin.CleanTeamSize(d) {
				t.Errorf("%s: team %d", engine, res.TeamSize)
			}
			if res.Recontaminations != 0 {
				t.Errorf("%s: %d recontaminations", engine, res.Recontaminations)
			}
		}
	})

	t.Run("cloning", func(t *testing.T) {
		for _, engine := range []string{EngineDES, EngineNetwork} {
			res, _, err := Run(Spec{Strategy: Cloning, Dim: d, Engine: engine, Seed: 42, AdversarialLatency: 11})
			if err != nil {
				t.Fatalf("%s: %v", engine, err)
			}
			if !res.Ok() || res.TotalMoves != combin.CloningMoves(d) {
				t.Errorf("%s: %s", engine, res.String())
			}
		}
	})
}

// TestCleanSyncMovesAgreeAcrossEngines pins the synchronizer's exact
// trajectory: it is deterministic (descend-first routing, lexicographic
// walk), so all engines must count the same synchronizer moves.
func TestCleanSyncMovesAgreeAcrossEngines(t *testing.T) {
	const d = 5
	ref, _, err := Run(Spec{Strategy: Clean, Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{EngineGoroutines, EngineNetwork} {
		res, _, err := Run(Spec{Strategy: Clean, Dim: d, Engine: engine, Seed: 7, AdversarialLatency: 13})
		if err != nil {
			t.Fatal(err)
		}
		if res.SyncMoves != ref.SyncMoves {
			t.Errorf("%s: sync moves %d, DES reference %d", engine, res.SyncMoves, ref.SyncMoves)
		}
	}
}
