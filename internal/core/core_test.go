package core

import (
	"testing"

	"hypersearch/internal/combin"
)

func TestRunAllStrategiesDES(t *testing.T) {
	for _, name := range []string{Clean, Visibility, Cloning, Synchronous} {
		res, env, err := Run(Spec{Strategy: name, Dim: 5, CheckEveryMove: true, Record: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Ok() {
			t.Errorf("%s: %s", name, res.String())
		}
		if env == nil || env.Log() == nil {
			t.Errorf("%s: missing env/trace", name)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	res, _, err := Run(Spec{Strategy: NaiveDFS, Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Captured {
		t.Error("naive DFS should fail capture")
	}
	res, _, err = Run(Spec{Strategy: NaiveConvoy, Dim: 4, ConvoyTeam: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TeamSize != 3 {
		t.Errorf("convoy team = %d", res.TeamSize)
	}
}

func TestRunGoroutineEngine(t *testing.T) {
	for _, name := range []string{Clean, Visibility} {
		res, env, err := Run(Spec{Strategy: name, Dim: 4, Engine: EngineGoroutines, Seed: 7, AdversarialLatency: 20})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Ok() {
			t.Errorf("%s: %s", name, res.String())
		}
		if env != nil {
			t.Errorf("%s: goroutine engine should not return an env", name)
		}
	}
}

func TestRunNetworkEngine(t *testing.T) {
	res, env, err := Run(Spec{Strategy: Visibility, Dim: 5, Engine: EngineNetwork, Seed: 2, AdversarialLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() || env != nil {
		t.Errorf("network engine: %s env=%v", res.String(), env)
	}
	if res.TotalMoves != combin.VisibilityMoves(5) {
		t.Errorf("moves %d", res.TotalMoves)
	}
	resc, _, err := Run(Spec{Strategy: Clean, Dim: 4, Engine: EngineNetwork, Seed: 5, AdversarialLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !resc.Ok() || int64(resc.TeamSize) != combin.CleanTeamSize(4) {
		t.Errorf("network CLEAN: %s", resc.String())
	}
	resk, _, err := Run(Spec{Strategy: Cloning, Dim: 4, Engine: EngineNetwork, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !resk.Ok() || resk.TotalMoves != combin.CloningMoves(4) {
		t.Errorf("network cloning: %s", resk.String())
	}
	if _, _, err := Run(Spec{Strategy: Synchronous, Dim: 4, Engine: EngineNetwork}); err == nil {
		t.Error("network engine should reject unsupported strategies")
	}
}

func TestRunAdversarialDES(t *testing.T) {
	res, _, err := Run(Spec{Strategy: Visibility, Dim: 5, AdversarialLatency: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() || res.TotalMoves != combin.VisibilityMoves(5) {
		t.Errorf("%s", res.String())
	}
	if res.Makespan < 5 {
		t.Errorf("adversarial makespan %d below d", res.Makespan)
	}
}

func TestRunErrors(t *testing.T) {
	if _, _, err := Run(Spec{Strategy: "nope", Dim: 3}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, _, err := Run(Spec{Strategy: Clean, Dim: 3, Engine: "quantum"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, _, err := Run(Spec{Strategy: Clean, Dim: -1}); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, _, err := Run(Spec{Strategy: Cloning, Dim: 3, Engine: EngineGoroutines}); err == nil {
		t.Error("cloning has no goroutine engine but was accepted")
	}
}

func TestStrategiesList(t *testing.T) {
	names := Strategies()
	if len(names) != 6 {
		t.Errorf("strategies = %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate %q", n)
		}
		seen[n] = true
	}
}

// Cross-strategy integration: the headline trade-off of the paper.
func TestTradeoffShape(t *testing.T) {
	const d = 8
	clean, _, _ := Run(Spec{Strategy: Clean, Dim: d})
	vis, _, _ := Run(Spec{Strategy: Visibility, Dim: d})
	if clean.TeamSize >= vis.TeamSize {
		t.Errorf("CLEAN should use fewer agents: %d vs %d", clean.TeamSize, vis.TeamSize)
	}
	if clean.Makespan <= vis.Makespan {
		t.Errorf("CLEAN should be slower: %d vs %d", clean.Makespan, vis.Makespan)
	}
	clone, _, _ := Run(Spec{Strategy: Cloning, Dim: d})
	if clone.TotalMoves >= vis.TotalMoves {
		t.Errorf("cloning should move less: %d vs %d", clone.TotalMoves, vis.TotalMoves)
	}
}
