package core

import (
	"testing"

	"hypersearch/internal/combin"
)

// TestScaleVisibility drives the visibility strategy through kilonode
// boards and across the materialization threshold (d=16 is the largest
// dimension hypercube.ForDim still materializes) on the discrete-event
// engine, checking the exact closed forms hold at scale. The inline
// event-driven engine carries these dimensions; the d=20 megannode
// point lives in the hqbench scale families. Skipped under -short.
func TestScaleVisibility(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	for _, d := range []int{12, 14, 16} {
		res, _, err := Run(Spec{Strategy: Visibility, Dim: d})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("d=%d: %s", d, res.String())
		}
		if int64(res.TeamSize) != combin.VisibilityAgents(d) ||
			res.TotalMoves != combin.VisibilityMoves(d) ||
			res.Makespan != int64(d) {
			t.Errorf("d=%d: %s", d, res.String())
		}
	}
}

// TestScaleClean drives the coordinated strategy to n = 4096.
func TestScaleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const d = 12
	res, _, err := Run(Spec{Strategy: Clean, Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("%s", res.String())
	}
	if int64(res.TeamSize) != combin.CleanTeamSize(d) {
		t.Errorf("team %d", res.TeamSize)
	}
	if res.AgentMoves != combin.CleanAgentMoves(d)-int64(d) {
		t.Errorf("agent moves %d", res.AgentMoves)
	}
	if res.Recontaminations != 0 {
		t.Errorf("recontaminations %d", res.Recontaminations)
	}
}

// TestCleanClosedFormTable sweeps Algorithm CLEAN across dimensions
// and asserts the run reproduces the paper's closed forms exactly:
// TeamSize = CleanTeamSize(d) (Theorem 2) and AgentMoves =
// CleanAgentMoves(d) - d (Theorem 3; the DES run saves one move per
// root child because phase 0 places agents instead of escorting them
// up from a remote pool). Dimensions 14+ cross the implicit-topology
// threshold on pooled runs and are skipped under -short.
func TestCleanClosedFormTable(t *testing.T) {
	dims := []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 16}
	if !testing.Short() {
		dims = append(dims, 18)
	}
	for _, d := range dims {
		if testing.Short() && d > 12 {
			break
		}
		res, _, err := Run(Spec{Strategy: Clean, Dim: d})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("d=%d: %s", d, res.String())
		}
		if int64(res.TeamSize) != combin.CleanTeamSize(d) {
			t.Errorf("d=%d: team %d, want %d", d, res.TeamSize, combin.CleanTeamSize(d))
		}
		if want := combin.CleanAgentMoves(d) - int64(d); res.AgentMoves != want {
			t.Errorf("d=%d: agent moves %d, want %d", d, res.AgentMoves, want)
		}
		if res.Recontaminations != 0 {
			t.Errorf("d=%d: recontaminations %d", d, res.Recontaminations)
		}
	}
}

// TestScaleGoroutines runs a thousand-goroutine concurrent execution.
func TestScaleGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	res, _, err := Run(Spec{Strategy: Visibility, Dim: 11, Engine: EngineGoroutines, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() || res.TotalMoves != combin.VisibilityMoves(11) {
		t.Errorf("%s", res.String())
	}
}

// TestScaleNetwork runs the message-passing engine with 1024 host
// goroutines plus mailbox pumps.
func TestScaleNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	res, _, err := Run(Spec{Strategy: Visibility, Dim: 10, Engine: EngineNetwork, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() || res.TotalMoves != combin.VisibilityMoves(10) {
		t.Errorf("%s", res.String())
	}
	resc, _, err := Run(Spec{Strategy: Clean, Dim: 8, Engine: EngineNetwork, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resc.Ok() {
		t.Errorf("%s", resc.String())
	}
}
