package core

import (
	"testing"

	"hypersearch/internal/combin"
)

// TestScaleVisibility drives the visibility strategy to kilonode
// hypercubes on the discrete-event engine, checking the exact closed
// forms hold at scale. Skipped under -short.
func TestScaleVisibility(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	for _, d := range []int{12, 14} {
		res, _, err := Run(Spec{Strategy: Visibility, Dim: d})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("d=%d: %s", d, res.String())
		}
		if int64(res.TeamSize) != combin.VisibilityAgents(d) ||
			res.TotalMoves != combin.VisibilityMoves(d) ||
			res.Makespan != int64(d) {
			t.Errorf("d=%d: %s", d, res.String())
		}
	}
}

// TestScaleClean drives the coordinated strategy to n = 4096.
func TestScaleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const d = 12
	res, _, err := Run(Spec{Strategy: Clean, Dim: d})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("%s", res.String())
	}
	if int64(res.TeamSize) != combin.CleanTeamSize(d) {
		t.Errorf("team %d", res.TeamSize)
	}
	if res.AgentMoves != combin.CleanAgentMoves(d)-int64(d) {
		t.Errorf("agent moves %d", res.AgentMoves)
	}
	if res.Recontaminations != 0 {
		t.Errorf("recontaminations %d", res.Recontaminations)
	}
}

// TestScaleGoroutines runs a thousand-goroutine concurrent execution.
func TestScaleGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	res, _, err := Run(Spec{Strategy: Visibility, Dim: 11, Engine: EngineGoroutines, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() || res.TotalMoves != combin.VisibilityMoves(11) {
		t.Errorf("%s", res.String())
	}
}

// TestScaleNetwork runs the message-passing engine with 1024 host
// goroutines plus mailbox pumps.
func TestScaleNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	res, _, err := Run(Spec{Strategy: Visibility, Dim: 10, Engine: EngineNetwork, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() || res.TotalMoves != combin.VisibilityMoves(10) {
		t.Errorf("%s", res.String())
	}
	resc, _, err := Run(Spec{Strategy: Clean, Dim: 8, Engine: EngineNetwork, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resc.Ok() {
		t.Errorf("%s", resc.String())
	}
}
