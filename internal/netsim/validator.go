package netsim

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"hypersearch/internal/bits"
	"hypersearch/internal/board"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/metrics"
)

// validator observes every agent lifecycle event of a network run and
// checks the global invariants (monotonicity, contiguity, capture).
// The atomic-move semantics are shared by both implementations: an
// agent departs its host and arrives at the destination when the
// arrival message is processed; between depart and arrive it is "on
// the link", which the board models by keeping it on the source until
// arrival.
type validator interface {
	place() int
	clone(at int) int
	depart(agent, from int)
	arrive(agent, from, to int)
	terminate(agent, at int)
	agents() int
	stats(team int, agentMsgs, beaconMsgs int64) Stats
}

// ValidatorMode selects the validator implementation.
type ValidatorMode int

// The two validator implementations.
const (
	// ValidatorStriped (the default) shards event recording over
	// power-of-two stripes of the node index: hosts append to a
	// per-stripe ledger under a per-stripe lock, and the invariants
	// are checked once, at stats() time, by merging the ledgers in
	// global sequence order and replaying them onto a fresh board.
	// Hosts in different stripes never contend, which is what lets
	// the visibility run complete at d=12 even under the race
	// detector.
	ValidatorStriped ValidatorMode = iota
	// ValidatorLocked is the original single-mutex validator: every
	// event applies to one shared board immediately, so invariant
	// violations panic at the offending event instead of at stats().
	ValidatorLocked
)

// makeValidator builds the configured validator over H_d.
func (cfg Config) makeValidator(h *hypercube.Hypercube) validator {
	if cfg.newValidator != nil {
		return cfg.newValidator(h)
	}
	if cfg.Validator == ValidatorLocked {
		return newLockedValidator(h)
	}
	return newStripedValidator(h)
}

// buildStats assembles the Stats shared by both validators from a
// fully-applied board.
func buildStats(b *board.Board, team int, agentMsgs, beaconMsgs int64) Stats {
	return Stats{
		Result: metrics.Result{
			Strategy:         Name,
			Dim:              bits.Dim(b.Graph().Order()),
			Nodes:            b.Graph().Order(),
			TeamSize:         team,
			PeakAway:         b.PeakAway(),
			AgentMoves:       b.Moves(),
			TotalMoves:       b.Moves(),
			Recontaminations: b.Recontaminations(),
			MonotoneOK:       b.MonotoneViolations() == 0,
			ContiguousOK:     b.Contiguous(),
			Captured:         b.AllClean(),
		},
		AgentMessages:  agentMsgs,
		BeaconMessages: beaconMsgs,
		BeaconBits:     beaconMsgs, // one bit each, by construction
	}
}

// lockedValidator serializes every event through one mutex onto the
// shared board.
type lockedValidator struct {
	mu      sync.Mutex
	b       *board.Board
	pending map[int]int // agent -> source host while migrating
}

func newLockedValidator(h *hypercube.Hypercube) *lockedValidator {
	return &lockedValidator{b: board.New(h, 0)}
}

// reset re-arms a pooled locked validator: the board resets in O(n)
// (identical to a fresh board.New, see board.Reset), migrations in
// flight cannot exist after the previous run quiesced.
func (v *lockedValidator) reset() {
	v.b.Reset()
	clear(v.pending)
}

func (v *lockedValidator) place() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.b.Place(0)
}

func (v *lockedValidator) clone(at int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.b.Clone(at, 0)
}

func (v *lockedValidator) depart(agent, from int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.pending == nil {
		v.pending = make(map[int]int)
	}
	v.pending[agent] = from
}

func (v *lockedValidator) arrive(agent, from, to int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if src, ok := v.pending[agent]; ok {
		delete(v.pending, agent)
		if src != from {
			panic(fmt.Sprintf("netsim: agent %d departed %d but arrived from %d", agent, src, from))
		}
		v.b.Move(agent, to, 0)
		return
	}
	// Boot-time arrival at the homebase: the agent is already there.
	if to != v.b.Home() {
		panic(fmt.Sprintf("netsim: arrival of non-migrating agent %d at %d", agent, to))
	}
}

func (v *lockedValidator) terminate(agent, _ int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.b.Terminate(agent, 0)
}

func (v *lockedValidator) agents() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.b.Agents()
}

func (v *lockedValidator) stats(team int, agentMsgs, beaconMsgs int64) Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return buildStats(v.b, team, agentMsgs, beaconMsgs)
}

// valOp is one recorded lifecycle event in a stripe ledger.
type valOp struct {
	seq   int64
	kind  opKind
	agent int
	from  int
	to    int
}

type opKind uint8

const (
	opPlace opKind = iota
	opClone
	opDepart
	opArrive
	opTerminate
)

// stripe is one shard of the striped validator's ledger. Padding keeps
// neighbouring stripes off one cache line.
type stripe struct {
	mu  sync.Mutex
	ops []valOp
	_   [40]byte
}

// maxStripes bounds the stripe count; past this, contention is spread
// thin enough that more shards only cost memory.
const maxStripes = 64

// stripedValidator shards event recording by node index. Correctness
// argument (see ALGORITHMS.md): every event takes a global sequence
// number from one atomic counter *during* the event — after its
// preconditions hold on the calling host, before the host acts on its
// consequences — so the sequence order is a linearization of the run:
// it respects program order on every host and the happens-before
// created by each message (depart is sequenced before the matching
// arrive because the arrival message is only sent after depart
// returns). stats() merges the per-stripe ledgers in sequence order
// and replays them onto a fresh board; since the locked validator
// applies events to its board in *some* linearization of the same run,
// and the board is deterministic given an event order, the replay
// checks exactly the invariants the locked validator checks — only
// deferred to stats() time instead of inline.
type stripedValidator struct {
	h       *hypercube.Hypercube
	seq     atomic.Int64
	created atomic.Int64 // next agent id (board ids are assigned at replay)
	mask    int
	stripes []stripe

	// stats()-time replay scratch, reused across pooled runs. The
	// replay board resets to exactly the fresh-board state, so a pooled
	// validator's Stats are byte-identical to a fresh validator's.
	merged  []valOp
	replay  *board.Board
	ids     []int
	pending map[int]int
}

func newStripedValidator(h *hypercube.Hypercube) *stripedValidator {
	n := 1
	for n < maxStripes && n < h.Order() {
		n <<= 1
	}
	return &stripedValidator{h: h, mask: n - 1, stripes: make([]stripe, n)}
}

// reset re-arms a pooled striped validator in O(stripes): counters
// restart from zero and every ledger truncates keeping its capacity.
func (v *stripedValidator) reset() {
	v.seq.Store(0)
	v.created.Store(0)
	for i := range v.stripes {
		v.stripes[i].ops = v.stripes[i].ops[:0]
	}
}

// record stamps the op with the next global sequence number and
// appends it to node's stripe.
func (v *stripedValidator) record(node int, op valOp) {
	op.seq = v.seq.Add(1)
	st := &v.stripes[node&v.mask]
	st.mu.Lock()
	st.ops = append(st.ops, op)
	st.mu.Unlock()
}

func (v *stripedValidator) place() int {
	id := int(v.created.Add(1)) - 1
	v.record(0, valOp{kind: opPlace, agent: id, to: 0})
	return id
}

func (v *stripedValidator) clone(at int) int {
	id := int(v.created.Add(1)) - 1
	v.record(at, valOp{kind: opClone, agent: id, to: at})
	return id
}

func (v *stripedValidator) depart(agent, from int) {
	v.record(from, valOp{kind: opDepart, agent: agent, from: from})
}

func (v *stripedValidator) arrive(agent, from, to int) {
	v.record(to, valOp{kind: opArrive, agent: agent, from: from, to: to})
}

func (v *stripedValidator) terminate(agent, at int) {
	v.record(at, valOp{kind: opTerminate, agent: agent, to: at})
}

func (v *stripedValidator) agents() int { return int(v.created.Load()) }

// stats merges the ledgers and replays them. Callers must have joined
// every host goroutine first (the Run functions wg.Wait before stats),
// so the ledgers are complete; the stripe locks are still taken to
// keep the harvest well-ordered under the race detector.
func (v *stripedValidator) stats(team int, agentMsgs, beaconMsgs int64) Stats {
	ops := v.merged[:0]
	for i := range v.stripes {
		st := &v.stripes[i]
		st.mu.Lock()
		ops = append(ops, st.ops...)
		st.mu.Unlock()
	}
	v.merged = ops
	slices.SortFunc(ops, func(a, b valOp) int { return cmp.Compare(a.seq, b.seq) })

	if v.replay == nil {
		v.replay = board.New(v.h, 0)
	} else {
		v.replay.Reset()
	}
	b := v.replay
	if n := int(v.created.Load()); cap(v.ids) < n {
		v.ids = make([]int, n)
	} else {
		v.ids = v.ids[:n]
	}
	ids := v.ids // recorded agent id -> board id
	if v.pending == nil {
		v.pending = make(map[int]int)
	} else {
		clear(v.pending)
	}
	pending := v.pending
	for _, op := range ops {
		switch op.kind {
		case opPlace:
			ids[op.agent] = b.Place(0)
		case opClone:
			ids[op.agent] = b.Clone(op.to, 0)
		case opDepart:
			pending[op.agent] = op.from
		case opArrive:
			if src, ok := pending[op.agent]; ok {
				delete(pending, op.agent)
				if src != op.from {
					panic(fmt.Sprintf("netsim: agent %d departed %d but arrived from %d", op.agent, src, op.from))
				}
				b.Move(ids[op.agent], op.to, 0)
				continue
			}
			// Boot-time arrival at the homebase: already there.
			if op.to != b.Home() {
				panic(fmt.Sprintf("netsim: arrival of non-migrating agent %d at %d", op.agent, op.to))
			}
		case opTerminate:
			b.Terminate(ids[op.agent], 0)
		}
	}
	return buildStats(b, team, agentMsgs, beaconMsgs)
}
