package netsim

import (
	"fmt"
	"testing"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
)

// stragglerPlan injects duplicates and delays on the root's first tree
// link: the duplicate copy flies one beat behind a frame the protocol
// needs, so its delivery timer routinely outlives the run — the exact
// shape that was a benign straggler on a throwaway network and becomes
// a use-after-reuse on a pooled one.
func stragglerPlan(d int) *faults.Plan {
	c0 := heapqueue.New(d).Children(0)[0]
	return &faults.Plan{Name: "straggler", Seed: 31, Faults: []faults.Fault{
		{Kind: faults.LinkDup, Target: faults.LinkTarget(0, c0), At: 1, Until: 32},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, c0), At: 1, Until: 16, Delay: 500},
	}}
}

// TestTimerStragglerQuiescence is the regression test for the timer
// lifecycle bug: a delayed duplicate delivery scheduled near the end of
// a run used to fire after wg.Wait() returned, touching mailboxes the
// run had logically finished with. With the drain barrier, every RunOn
// returns only after all of its timers fired, so a tight reuse loop on
// one fabric — tiny d, high MaxLatency, under -race — sees zero
// pending timers and byte-identical stats every iteration. A stale
// frame leaking into the next run's reopened mailboxes would either
// trip the race detector, corrupt the arrival counts, or panic the
// validator.
func TestTimerStragglerQuiescence(t *testing.T) {
	const d = 2
	f := NewFabric(d)
	cfg := Config{Seed: 17, MaxLatency: 800 * time.Microsecond, Faults: stragglerPlan(d)}
	var first Stats
	for i := 0; i < 50; i++ {
		s := RunOn(f, cfg)
		if n := f.PendingTimers(); n != 0 {
			t.Fatalf("iteration %d: %d timers outlived their run", i, n)
		}
		if i == 0 {
			first = s
			if first.Link.Dups == 0 {
				t.Fatal("straggler plan injected no duplicates; test is inert")
			}
			continue
		}
		if s != first {
			t.Fatalf("iteration %d: stale wire state leaked into the reused fabric:\nfirst: %+v\n  got: %+v", i, first, s)
		}
	}
}

// TestRunOnDrainsDeliveryTimers covers the fault-free delivery path's
// barrier: high-latency runs on a reused fabric always return with the
// timer set drained, for all three engines.
func TestRunOnDrainsDeliveryTimers(t *testing.T) {
	runs := []struct {
		name string
		run  func(f *Fabric, cfg Config) Stats
	}{
		{"visibility", RunOn},
		{"clean", RunCleanOn},
		{"cloning", RunCloningOn},
	}
	for _, r := range runs {
		f := NewFabric(3)
		cfg := Config{Seed: 23, MaxLatency: 400 * time.Microsecond}
		for i := 0; i < 10; i++ {
			s := r.run(f, cfg)
			if !s.Ok() {
				t.Fatalf("%s iteration %d: invariants violated: %s", r.name, i, s.Result)
			}
			if n := f.PendingTimers(); n != 0 {
				t.Fatalf("%s iteration %d: %d delivery timers still pending", r.name, i, n)
			}
		}
	}
}

// TestMailboxResetCapsRetainedCapacity pins the pool-hygiene rule: a
// reset mailbox keeps its backing array only up to maxRetainedCap, so
// one burst-heavy run cannot pin its peak capacity in the arena
// forever.
func TestMailboxResetCapsRetainedCapacity(t *testing.T) {
	big := NewMailbox()
	for i := 0; i < 4*maxRetainedCap; i++ {
		big.Send(Message{Agent: i})
	}
	big.Close()
	big.reset()
	if c := cap(big.items); c > maxRetainedCap {
		t.Errorf("reset retained cap %d > bound %d", c, maxRetainedCap)
	}

	small := NewMailbox()
	for i := 0; i < 10; i++ {
		small.Send(Message{Agent: i})
	}
	small.Close()
	before := cap(small.items)
	small.reset()
	if cap(small.items) != before {
		t.Errorf("reset dropped a within-bound backing array (cap %d -> %d)", before, cap(small.items))
	}
	if len(small.items) != 0 || small.head != 0 {
		t.Errorf("reset left queued state: len=%d head=%d", len(small.items), small.head)
	}

	// A reset mailbox is open again: Send must not panic, Recv must
	// deliver, and messages left queued at reset must be gone.
	small.Send(Message{Agent: 42})
	if m, ok := small.Recv(); !ok || m.Agent != 42 {
		t.Errorf("reset mailbox did not deliver: got %v ok=%v", m.Agent, ok)
	}
}

// TestHostRNGStreamsDistinctAcrossSeeds is the regression test for the
// (seed, host) stream collision: under the old Seed ^ v*0x9E3779B9
// derivation, host v at seed 0 drew the identical stream as host 0 at
// seed v*0x9E3779B9. The splitmix64 chain must separate that exact
// family, and (seed, host) pairs must not collide across a dense grid.
func TestHostRNGStreamsDistinctAcrossSeeds(t *testing.T) {
	const mult = 0x9E3779B9
	for v := 1; v <= 64; v++ {
		a := newHostRNG(0, v, streamVisibility)
		b := newHostRNG(int64(v)*mult, 0, streamVisibility)
		if a.next() == b.next() && a.next() == b.next() {
			t.Errorf("host %d at seed 0 collides with host 0 at seed %d*0x9E3779B9", v, v)
		}
	}

	// Injectivity over a grid: the first two outputs of every
	// (seed, host, stream) triple are pairwise distinct.
	seen := map[[2]uint64]string{}
	for _, stream := range []uint64{streamVisibility, streamClean, streamCloning} {
		for seed := int64(0); seed < 4; seed++ {
			for v := 0; v < 64; v++ {
				r := newHostRNG(seed, v, stream)
				key := [2]uint64{r.next(), r.next()}
				id := fmt.Sprintf("seed=%d host=%d stream=%x", seed, v, stream)
				if prev, dup := seen[key]; dup {
					t.Fatalf("stream collision: %s duplicates %s", id, prev)
				}
				seen[key] = id
			}
		}
	}
}

// TestHostRNGStreamsDeterministic pins that the derivation is a pure
// function of (seed, host, stream): reruns draw identical latencies.
func TestHostRNGStreamsDeterministic(t *testing.T) {
	a := newHostRNG(99, 7, streamClean)
	b := newHostRNG(99, 7, streamClean)
	for i := 0; i < 100; i++ {
		if x, y := a.Int63n(1000), b.Int63n(1000); x != y {
			t.Fatalf("draw %d differs: %d vs %d", i, x, y)
		}
	}
}
