package netsim

import (
	"testing"
	"time"

	"hypersearch/internal/combin"
)

func TestNetsimCorrectAcrossDimensions(t *testing.T) {
	for d := 0; d <= 8; d++ {
		s := Run(d, Config{Seed: int64(d), MaxLatency: 30 * time.Microsecond})
		if !s.Captured || !s.MonotoneOK || !s.ContiguousOK {
			t.Errorf("d=%d: %s", d, s.Result.String())
		}
		if s.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, s.Recontaminations)
		}
		if int64(s.TeamSize) != combin.VisibilityAgents(d) {
			t.Errorf("d=%d: team %d", d, s.TeamSize)
		}
		if d > 0 && s.TotalMoves != combin.VisibilityMoves(d) {
			t.Errorf("d=%d: moves %d, want %d", d, s.TotalMoves, combin.VisibilityMoves(d))
		}
	}
}

func TestNetsimManySeeds(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s := Run(5, Config{Seed: seed, MaxLatency: 20 * time.Microsecond})
		if !s.Ok() || s.TotalMoves != combin.VisibilityMoves(5) {
			t.Errorf("seed %d: %s", seed, s.Result.String())
		}
	}
}

func TestNetsimZeroLatency(t *testing.T) {
	s := Run(6, Config{})
	if !s.Ok() {
		t.Errorf("%s", s.Result.String())
	}
}

func TestNetsimMessageAccounting(t *testing.T) {
	const d = 6
	s := Run(d, Config{Seed: 1})
	// Every move is one agent migration.
	if s.AgentMessages != s.TotalMoves {
		t.Errorf("agent messages %d != moves %d", s.AgentMessages, s.TotalMoves)
	}
	// Beacons carry exactly one bit each, and each host beacons its
	// dependents exactly once: total = sum over hosts of the number of
	// neighbours that treat it as a smaller neighbour, which is
	// bounded by twice the edge count and is at least the edge count
	// of the dependency relation (n-1 tree edges at minimum).
	if s.BeaconBits != s.BeaconMessages {
		t.Error("beacons must carry exactly one bit")
	}
	edges := int64(d) * (1 << (d - 1))
	if s.BeaconMessages > 2*edges {
		t.Errorf("beacons %d exceed 2x edges %d", s.BeaconMessages, 2*edges)
	}
	if s.BeaconMessages < int64(1<<d)-1 {
		t.Errorf("beacons %d below n-1", s.BeaconMessages)
	}
}

func TestNetsimBeaconCountDeterministic(t *testing.T) {
	// The protocol's message complexity is schedule-independent.
	a := Run(5, Config{Seed: 3, MaxLatency: 10 * time.Microsecond})
	b := Run(5, Config{Seed: 99, MaxLatency: 50 * time.Microsecond})
	if a.BeaconMessages != b.BeaconMessages || a.AgentMessages != b.AgentMessages {
		t.Errorf("message counts vary by schedule: %d/%d vs %d/%d",
			a.AgentMessages, a.BeaconMessages, b.AgentMessages, b.BeaconMessages)
	}
}

func TestMailboxUnboundedFIFO(t *testing.T) {
	mb := NewMailbox()
	const n = 10000
	// Blast sends without a reader: must not block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			mb.Send(Message{Agent: i})
		}
		mb.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("unbounded mailbox blocked")
	}
	// Drain in order; messages enqueued before Close still arrive.
	for i := 0; i < n; i++ {
		m, ok := mb.Recv()
		if !ok || m.Agent != i {
			t.Fatalf("message %d: got %v ok=%v", i, m.Agent, ok)
		}
	}
	if _, ok := mb.Recv(); ok {
		t.Fatal("Recv should report closed after drain")
	}
}

func TestMailboxInterleaved(t *testing.T) {
	mb := NewMailbox()
	go func() {
		for i := 0; i < 100; i++ {
			mb.Send(Message{Agent: i})
			if i%7 == 0 {
				time.Sleep(time.Microsecond)
			}
		}
		mb.Close()
	}()
	prev := -1
	for {
		m, ok := mb.Recv()
		if !ok {
			break
		}
		if m.Agent != prev+1 {
			t.Fatalf("out of order: %d after %d", m.Agent, prev)
		}
		prev = m.Agent
	}
	if prev != 99 {
		t.Fatalf("lost messages, last = %d", prev)
	}
}

func TestMailboxSendAfterClosePanics(t *testing.T) {
	mb := NewMailbox()
	mb.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("send on closed mailbox should panic")
		}
	}()
	mb.Send(Message{})
}
