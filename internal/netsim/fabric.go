package netsim

import (
	"sync"
	"sync/atomic"
	"time"

	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
)

// Fabric is the reusable network fabric of one hypercube dimension:
// everything a netsim run builds per execution that is not the run's
// logical content — mailboxes, per-host scratch, validator ledgers and
// replay scratch, and the wire-fault layer's link/ledger state. A
// Fabric follows the envpool sharing contract (see ALGORITHMS.md,
// "Network arena reset contract"):
//
//   - the topology (hypercube + broadcast tree) is immutable and may
//     be shared process-wide (NewFabricOn accepts the envpool copy);
//   - all mutable state is reset in O(n) at the start of the next run;
//   - a run that panicked leaves the fabric poisoned (Completed stays
//     false), so pools must drop it — blocked host goroutines may
//     still hold references into its mailboxes and ledgers;
//   - every wall-clock timer a run schedules is registered with a
//     quiescence barrier, and the run drains the barrier before
//     returning, so no timer can outlive its run and touch a fabric
//     that has been handed to the next one.
//
// A Fabric is NOT safe for concurrent use: it hosts one run at a time.
type Fabric struct {
	d  int
	h  *hypercube.Hypercube
	bt *heapqueue.Tree

	net  *network  // visibility/cloning wiring, built on first use
	cnet *cleanNet // coordinated wiring, built on first use

	striped *stripedValidator
	locked  *lockedValidator
	ids     []int // boot-time agent id scratch

	completed bool
}

// NewFabric builds a fresh fabric with its own private topology.
func NewFabric(d int) *Fabric {
	return NewFabricOn(hypercube.New(d), heapqueue.New(d))
}

// NewFabricOn builds a fabric over a shared immutable topology pair
// (typically envpool.Topology's), the netsim analogue of
// strategy.NewEnvOn.
func NewFabricOn(h *hypercube.Hypercube, bt *heapqueue.Tree) *Fabric {
	return &Fabric{d: h.Dim(), h: h, bt: bt}
}

// Dim returns the fabric's hypercube dimension.
func (f *Fabric) Dim() int { return f.d }

// Completed reports whether the fabric's last run finished. A fabric
// whose run panicked mid-flight reports false and must not be pooled.
func (f *Fabric) Completed() bool { return f.completed }

// Quiesce blocks until every wall-clock timer scheduled by the
// fabric's runs — delivery latencies and the wire-fault layer's
// retransmit/delay/duplicate timers — has fired and returned. The Run
// functions quiesce before harvesting stats, so this is a no-op
// double-check for pools that want the guarantee explicit.
func (f *Fabric) Quiesce() {
	if f.net != nil {
		f.net.quiesce()
	}
	if f.cnet != nil {
		f.cnet.quiesce()
	}
}

// PendingTimers reports how many scheduled timers across the fabric's
// wiring have not yet completed; zero whenever no run is in flight.
func (f *Fabric) PendingTimers() int64 {
	var n int64
	if f.net != nil {
		n += f.net.timers.pending.Load()
		if f.net.flPool != nil {
			n += f.net.flPool.PendingTimers()
		}
	}
	if f.cnet != nil {
		n += f.cnet.timers.pending.Load()
		if f.cnet.flPool != nil {
			n += f.cnet.flPool.PendingTimers()
		}
	}
	return n
}

// begin marks a run in flight: the fabric stays poisoned until the
// run completes, so a panic anywhere in between keeps it out of pools.
func (f *Fabric) begin() { f.completed = false }

// complete marks the run finished; the fabric may be pooled again.
func (f *Fabric) complete() { f.completed = true }

// validator returns the run's invariant checker: the pooled
// implementation the config selects, reset for a new run, or a fresh
// one from the test hook.
func (f *Fabric) validator(cfg Config) validator {
	if cfg.newValidator != nil {
		return cfg.newValidator(f.h)
	}
	if cfg.Validator == ValidatorLocked {
		if f.locked == nil {
			f.locked = newLockedValidator(f.h)
		} else {
			f.locked.reset()
		}
		return f.locked
	}
	if f.striped == nil {
		f.striped = newStripedValidator(f.h)
	} else {
		f.striped.reset()
	}
	return f.striped
}

// bootIDs returns the length-n agent id scratch slice.
func (f *Fabric) bootIDs(n int) []int {
	if cap(f.ids) < n {
		f.ids = make([]int, n)
	}
	f.ids = f.ids[:n]
	return f.ids
}

// visNetwork returns the visibility/cloning wiring reset for a new
// run: mailboxes reopened with bounded retained capacity, message
// counters zeroed, and the wire-fault layer re-armed when the plan
// asks for it.
func (f *Fabric) visNetwork(cfg Config, val validator) *network {
	n := f.net
	if n == nil {
		n = &network{
			h: f.h, bt: f.bt,
			boxes:   make([]*Mailbox, f.h.Order()),
			scratch: make([]hostScratch, f.h.Order()),
		}
		for v := range n.boxes {
			n.boxes[v] = NewMailbox()
		}
		f.net = n
	} else {
		for _, q := range n.boxes {
			q.reset()
		}
	}
	n.cfg = cfg
	n.val = val
	n.agentMsgs.Store(0)
	n.beaconMsgs.Store(0)
	n.wireFaults()
	return n
}

// cleanNetwork returns the coordinated wiring reset for a new run.
func (f *Fabric) cleanNetwork(cfg Config, val validator) *cleanNet {
	c := f.cnet
	if c == nil {
		c = &cleanNet{
			h: f.h, bt: f.bt,
			boxes:   make([]*cleanMailbox, f.h.Order()),
			scratch: make([]cleanScratch, f.h.Order()),
		}
		for v := range c.boxes {
			c.boxes[v] = newCleanMailbox()
		}
		f.cnet = c
	} else {
		for _, q := range c.boxes {
			q.reset()
		}
	}
	c.cfg = cfg
	c.val = val
	c.moves.Store(0)
	c.syncMoves.Store(0)
	c.wireFaults()
	return c
}

// hostScratch is one visibility/cloning host's reusable protocol
// state; runHost re-arms it at host start, so the fabric-level reset
// stays O(1) per host.
type hostScratch struct {
	rng      hostRNG
	gathered []int  // agents stationed here this phase
	ready    uint64 // bitmask over SmallerNeighbours: beacon seen
}

// cleanScratch is one coordinated host's reusable state.
type cleanScratch struct {
	rng hostRNG
	st  cleanHost
}

// timerSet is a run's timer quiescence barrier: every time.AfterFunc
// the engine schedules registers at schedule time and deregisters only
// after its callback returns, and wait blocks until the count drains.
// Joining the host goroutines proves the protocol finished; draining
// the barrier proves no delivery is still in flight on a wall-clock
// timer — without it a delayed Send is a benign straggler on a
// throwaway network but a use-after-reuse on a pooled one.
type timerSet struct {
	wg      sync.WaitGroup
	pending atomic.Int64 // observable mirror of the WaitGroup count
}

// after schedules fn on a wall-clock timer under the barrier.
func (t *timerSet) after(d time.Duration, fn func()) {
	t.pending.Add(1)
	t.wg.Add(1)
	time.AfterFunc(d, func() {
		defer func() {
			t.pending.Add(-1)
			t.wg.Done()
		}()
		fn()
	})
}

// wait blocks until every scheduled timer has fired and returned. The
// engines' sends never chain timers, and wait is only called after
// the host goroutines have joined, so no new registration can race the
// drain.
func (t *timerSet) wait() { t.wg.Wait() }
