package netsim

import (
	"testing"
	"time"

	"hypersearch/internal/combin"
)

func TestCloningNetsimCorrectAcrossDimensions(t *testing.T) {
	for d := 0; d <= 8; d++ {
		s := RunCloning(d, Config{Seed: int64(d), MaxLatency: 20 * time.Microsecond})
		if !s.Captured || !s.MonotoneOK || !s.ContiguousOK {
			t.Errorf("d=%d: %s", d, s.Result.String())
		}
		if s.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, s.Recontaminations)
		}
		if int64(s.TeamSize) != combin.VisibilityAgents(d) {
			t.Errorf("d=%d: team %d, want %d", d, s.TeamSize, combin.VisibilityAgents(d))
		}
	}
}

func TestCloningNetsimMessageOptimal(t *testing.T) {
	// n-1 agent migrations: every broadcast-tree edge carries exactly
	// one message. The minimum for any strategy that must visit every
	// host.
	for _, d := range []int{3, 5, 7} {
		s := RunCloning(d, Config{Seed: 1})
		if s.AgentMessages != combin.CloningMoves(d) {
			t.Errorf("d=%d: migrations %d, want n-1 = %d", d, s.AgentMessages, combin.CloningMoves(d))
		}
		if s.TotalMoves != combin.CloningMoves(d) {
			t.Errorf("d=%d: moves %d", d, s.TotalMoves)
		}
	}
}

func TestCloningNetsimManySeeds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := RunCloning(5, Config{Seed: seed, MaxLatency: 15 * time.Microsecond})
		if !s.Ok() || s.TotalMoves != combin.CloningMoves(5) {
			t.Errorf("seed %d: %s", seed, s.Result.String())
		}
	}
}
