package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hypersearch/internal/combin"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/netsim/faultlink"
)

// CleanName identifies the message-passing CLEAN run in results.
const CleanName = "clean-netsim"

// Message kinds of the coordinated protocol (disjoint from the
// visibility protocol's kinds; the two protocols use separate mailbox
// types).
const (
	// CourierHop carries a source-routed cleaner one hop; on an escort
	// leg the synchronizer rides in the same message ("the
	// synchronizer guides one agent to level l+1"), which makes the
	// pair's landing atomic exactly as in the other engines.
	CourierHop MessageKind = iota + 16
	// SyncHop carries the synchronizer alone (walks, bounces).
	SyncHop
	// Shutdown floods the network when the search completes; every
	// host forwards it once and retires after hearing it from each
	// neighbour.
	Shutdown
)

// cleanMessage is the coordinated protocol's wire format.
type cleanMessage struct {
	Kind  MessageKind
	From  int
	Agent int
	Route []int      // CourierHop: remaining hops, next first
	Sync  *syncState // escorting synchronizer, or SyncHop payload
}

// syncState is the synchronizer's complete knowledge; it travels with
// the agent, so no host ever holds global state.
type syncState struct {
	ID       int     // the synchronizer's agent id
	Phase    int     // level currently being cleaned into
	Dest     int     // travel destination (multi-hop), -1 when arrived
	BounceTo int     // return leg of an escort, -1 none
	Stop     int     // current stop, -1 between stops
	Stops    []int   // remaining stops of the phase, lexicographic
	Escorts  []int   // remaining children to escort at the stop
	Extras   [][]int // courier routes still to dispatch from the root
	Final    bool    // heading home to finish the search
}

// RunClean executes Algorithm CLEAN as a pure message-passing system:
// hosts share no memory, cleaners are source-routed messages, the
// synchronizer migrates with its program and rides the same message as
// the cleaner it guides on every escort leg. Costs are identical to
// the other two engines; only the realization differs.
func RunClean(d int, cfg Config) Stats { return RunCleanOn(NewFabric(d), cfg) }

// RunCleanOn executes Algorithm CLEAN on a caller-owned fabric,
// reusing its mailboxes, scratch and validator; like RunOn, it drains
// the timer quiescence barrier before returning.
func RunCleanOn(f *Fabric, cfg Config) Stats {
	f.begin()
	d := f.d
	team := int(combin.CleanTeamSize(d))

	val := f.validator(cfg)
	ids := f.bootIDs(team)
	for i := range ids {
		ids[i] = val.place()
	}
	if d == 0 {
		val.terminate(ids[0], 0)
		s := val.stats(team, 0, 0)
		s.Strategy = CleanName
		f.complete()
		return s
	}

	c := f.cleanNetwork(cfg, val)
	c.syncID = ids[0]
	c.pool = ids[1:]

	var wg sync.WaitGroup
	wg.Add(f.h.Order())
	for v := 0; v < f.h.Order(); v++ {
		go c.host(&wg, v)
	}

	// Boot: the synchronizer "arrives" at the root with phase 0 ready.
	c.boxes[0].Send(cleanMessage{
		Kind: SyncHop, From: 0, Agent: c.syncID,
		Sync: &syncState{
			ID: c.syncID, Phase: 0, Dest: -1, BounceTo: -1,
			Stop: 0, Escorts: append([]int(nil), f.bt.Children(0)...),
		},
	})
	wg.Wait()
	c.quiesce()
	s := val.stats(team, c.moves.Load(), 0)
	s.Strategy = CleanName
	s.SyncMoves = c.syncMoves.Load()
	s.AgentMoves = s.TotalMoves - s.SyncMoves
	s.BeaconMessages = 0 // the coordinated protocol needs no beacons
	s.BeaconBits = 0
	if c.fl != nil {
		s.Link = c.fl.SummaryStats()
	}
	f.complete()
	return s
}

// cleanNet is the shared wiring; hosts communicate only via mailboxes.
// Like network, it lives inside a Fabric and is reused across runs.
type cleanNet struct {
	h       *hypercube.Hypercube
	bt      *heapqueue.Tree
	cfg     Config
	val     validator
	boxes   []*cleanMailbox
	scratch []cleanScratch
	syncID  int
	pool    []int // boot-time pool membership (root-local thereafter)

	// fl is the active wire-fault layer (nil on the fault-free path);
	// flPool is the pooled instance it aliases, as in network.
	fl     *faultlink.Layer[cleanMessage]
	flPool *faultlink.Layer[cleanMessage]

	timers timerSet // quiescence barrier over delivery timers

	moves     atomic.Int64
	syncMoves atomic.Int64
}

// wireFaults interposes the wire-fault layer on the coordinated
// protocol for delivery faults (drop, dup, delay, partition). Host
// crashes — plain or cascading — are rejected for this engine: the
// synchronizer's program and the cleaners themselves ride the
// messages, so an amnesia crash plus ledger replay would re-forward
// agents that already moved on, which no recovery contract covers.
// The visibility engines, whose host state is rebuildable soft state,
// remain the crash/cascade testbed.
func (c *cleanNet) wireFaults() {
	if err := c.cfg.Faults.ValidateForHosts(c.h.Order()); err != nil {
		panic(fmt.Errorf("netsim: %w", err))
	}
	if !c.cfg.Faults.HasLinkFaults() {
		c.fl = nil
		return
	}
	if c.cfg.Faults.HasHostCrashFaults() {
		panic(fmt.Errorf("netsim: plan %q carries host-crash/cascade faults, which the %s engine does not support — protocol state rides the messages and cannot be replayed; use the visibility engines", c.cfg.Faults.Name, CleanName))
	}
	if c.flPool == nil {
		c.flPool = faultlink.New(c.cfg.Faults, c.h.Order(), faultlink.Options{},
			func(to, _ int, _ bool, m cleanMessage) {
				// Without host crashes there are no ledger replays, and
				// protocol causality (the shutdown flood starts only
				// after every cleaner is home) means no frame can chase
				// a closed mailbox: deliver loudly.
				c.boxes[to].Send(m)
			},
			func(to int) {
				panic(fmt.Sprintf("netsim: crash callback fired for host %d on the %s engine — host-crash plans are rejected at config time", to, CleanName))
			})
	} else {
		c.flPool.Reset(c.cfg.Faults)
	}
	c.fl = c.flPool
}

// quiesce drains the run's delivery timers and, when faulted, the wire
// layer's retransmit/delay/duplicate timers.
func (c *cleanNet) quiesce() {
	c.timers.wait()
	if c.fl != nil {
		c.fl.Quiesce()
	}
}

// cleanHost is one host's local state.
type cleanHost struct {
	pool      []int // parked cleaners (root only)
	gathered  []int // cleaners stationed here for the current phase
	sync      *syncState
	shutdowns int // Shutdown messages heard (retire at deg)
	closed    bool
}

// reset re-arms the host state for a new run, keeping slice capacity.
func (st *cleanHost) reset() {
	st.pool = st.pool[:0]
	st.gathered = st.gathered[:0]
	st.sync = nil
	st.shutdowns = 0
	st.closed = false
}

// host runs one host's event loop and joins the run's WaitGroup
// (closure-free spawn, like network.visHost).
func (c *cleanNet) host(wg *sync.WaitGroup, v int) {
	defer wg.Done()
	c.runHost(v)
}

func (c *cleanNet) runHost(v int) {
	sc := &c.scratch[v]
	sc.rng = newHostRNG(c.cfg.Seed, v, streamClean)
	rng := &sc.rng
	st := &sc.st
	st.reset()
	if v == 0 {
		st.pool = append(st.pool, c.pool...)
	}
	for {
		m, ok := c.boxes[v].Recv()
		if !ok {
			break
		}
		switch m.Kind {
		case CourierHop:
			c.onCourier(rng, v, st, m)
		case SyncHop:
			c.val.arrive(m.Agent, m.From, v)
			st.sync = m.Sync
			if st.sync.Dest == v {
				st.sync.Dest = -1
			}
		case Shutdown:
			st.shutdowns++
			if !st.closed {
				st.closed = true
				for _, w := range c.h.Neighbours(v) {
					c.send(rng, w, cleanMessage{Kind: Shutdown, From: v})
				}
			}
			if st.shutdowns == len(c.h.Neighbours(v)) {
				c.boxes[v].Close()
			}
			continue
		default:
			panic(fmt.Sprintf("netsim: clean host %d got message kind %d", v, m.Kind))
		}
		c.advance(rng, v, st)
	}
}

// onCourier lands or forwards a source-routed cleaner; an escorting
// synchronizer lands with it.
func (c *cleanNet) onCourier(rng *hostRNG, v int, st *cleanHost, m cleanMessage) {
	c.val.arrive(m.Agent, m.From, v)
	if len(m.Route) > 0 {
		next := m.Route[0]
		c.val.depart(m.Agent, v)
		c.moves.Add(1)
		c.send(rng, next, cleanMessage{
			Kind: CourierHop, From: v, Agent: m.Agent, Route: m.Route[1:],
		})
		return
	}
	if v == 0 {
		st.pool = append(st.pool, m.Agent)
	} else {
		st.gathered = append(st.gathered, m.Agent)
	}
	if m.Sync != nil {
		c.val.arrive(m.Sync.ID, m.From, v)
		st.sync = m.Sync
		if st.sync.Dest == v {
			st.sync.Dest = -1
		}
	}
}

// advance runs the synchronizer program as far as host-local state
// allows; it is re-entered on every arrival at this host.
func (c *cleanNet) advance(rng *hostRNG, v int, st *cleanHost) {
	s := st.sync
	if s == nil {
		return
	}
	// Travel leg: keep hopping toward Dest.
	if s.Dest >= 0 && s.Dest != v {
		path := c.h.ShortestPath(v, s.Dest)
		c.hopSync(rng, v, path[1], st)
		return
	}
	s.Dest = -1
	// Bounce leg: escorted a cleaner down, now return to the stop.
	if s.BounceTo >= 0 {
		dst := s.BounceTo
		s.BounceTo = -1
		s.Dest = dst
		c.hopSync(rng, v, dst, st) // the child is adjacent to the stop
		return
	}
	// Root duties: dispatch couriers while the pool lasts.
	if v == 0 && len(s.Extras) > 0 {
		for len(st.pool) > 0 && len(s.Extras) > 0 {
			a := st.pool[len(st.pool)-1]
			st.pool = st.pool[:len(st.pool)-1]
			route := s.Extras[0]
			s.Extras = s.Extras[1:]
			c.val.depart(a, v)
			c.moves.Add(1)
			c.send(rng, route[0], cleanMessage{
				Kind: CourierHop, From: v, Agent: a, Route: route[1:],
			})
		}
		if len(s.Extras) > 0 {
			return // wait for returners to refill the pool
		}
	}
	// Final leg: wait for every returner, then flood the shutdown.
	if s.Final {
		if v != 0 {
			panic("netsim: final leg away from the root")
		}
		if len(st.pool) != c.expectedFinalPool() {
			return // returners still walking home
		}
		st.sync = nil
		st.shutdowns = 0
		st.closed = true
		for _, w := range c.h.Neighbours(v) {
			c.send(rng, w, cleanMessage{Kind: Shutdown, From: v})
		}
		return
	}
	// Stop duties.
	if s.Stop == v {
		k := c.bt.Type(v)
		if k == 0 {
			// Leaf: release the guard homeward and move on.
			if len(st.gathered) != 1 {
				panic(fmt.Sprintf("netsim: leaf %d holds %d cleaners", v, len(st.gathered)))
			}
			a := st.gathered[0]
			st.gathered = st.gathered[:0]
			route := c.h.ShortestPath(v, 0)
			c.val.depart(a, v)
			c.moves.Add(1)
			c.send(rng, route[1], cleanMessage{
				Kind: CourierHop, From: v, Agent: a, Route: route[2:],
			})
			c.nextStop(rng, v, st, s)
			return
		}
		if len(s.Escorts) == 0 {
			c.nextStop(rng, v, st, s)
			return
		}
		// Complement check: the stationed guard plus couriers (the
		// root's complement is its pool).
		have := len(st.gathered)
		if v == 0 {
			have = len(st.pool)
		}
		if have < len(s.Escorts) {
			return // couriers still inbound
		}
		child := s.Escorts[0]
		s.Escorts = s.Escorts[1:]
		var a int
		if v == 0 {
			a = st.pool[len(st.pool)-1]
			st.pool = st.pool[:len(st.pool)-1]
		} else {
			a = st.gathered[len(st.gathered)-1]
			st.gathered = st.gathered[:len(st.gathered)-1]
		}
		// The cleaner and the synchronizer travel as one message: the
		// guided descent of step 2.2.
		c.val.depart(a, v)
		c.moves.Add(1)
		s.Dest = child
		s.BounceTo = v
		sync := st.sync
		st.sync = nil
		c.val.depart(sync.ID, v)
		c.syncMoves.Add(1)
		c.send(rng, child, cleanMessage{
			Kind: CourierHop, From: v, Agent: a, Sync: sync,
		})
		return
	}
	// Arrived somewhere that is not the stop: only legal at the root
	// between phases, where nextStop routes onward.
	c.nextStop(rng, v, st, s)
}

// nextStop advances the program once the current stop (if any) is
// complete.
func (c *cleanNet) nextStop(rng *hostRNG, v int, st *cleanHost, s *syncState) {
	if len(s.Stops) > 0 {
		s.Stop = s.Stops[0]
		s.Stops = s.Stops[1:]
		s.Escorts = append([]int(nil), c.bt.Children(s.Stop)...)
		s.Dest = s.Stop
		if s.Dest == v {
			// Never happens on the hypercube (consecutive stops
			// differ), but keep the program total.
			s.Dest = -1
			c.advance(rng, v, st)
			return
		}
		path := c.h.ShortestPath(v, s.Dest)
		c.hopSync(rng, v, path[1], st)
		return
	}
	if s.Phase >= c.h.Dim()-1 {
		s.Final = true
		s.Stop = -1
		if v == 0 {
			c.advance(rng, v, st)
			return
		}
		s.Dest = 0
		path := c.h.ShortestPath(v, 0)
		c.hopSync(rng, v, path[1], st)
		return
	}
	// Prepare the next phase and head home for couriers.
	l := s.Phase + 1
	s.Phase = l
	s.Stop = -1
	s.Stops = append([]int(nil), c.h.NodesAtLevel(l)...)
	s.Extras = nil
	for _, x := range c.h.NodesAtLevel(l) {
		k := c.bt.Type(x)
		for i := 0; i < k-1; i++ {
			route := c.bt.PathFromRoot(x)
			s.Extras = append(s.Extras, route[1:])
		}
	}
	if v == 0 {
		c.advance(rng, v, st)
		return
	}
	s.Dest = 0
	path := c.h.ShortestPath(v, 0)
	c.hopSync(rng, v, path[1], st)
}

// expectedFinalPool is the pool size once every cleaner except the
// level-d guard has walked home: team - synchronizer - 1.
func (c *cleanNet) expectedFinalPool() int {
	return int(combin.CleanTeamSize(c.h.Dim())) - 2
}

// hopSync migrates the synchronizer one hop; the state rides along.
func (c *cleanNet) hopSync(rng *hostRNG, from, to int, st *cleanHost) {
	s := st.sync
	st.sync = nil
	c.val.depart(s.ID, from)
	c.syncMoves.Add(1)
	c.send(rng, to, cleanMessage{Kind: SyncHop, From: from, Agent: s.ID, Sync: s})
}

// send delivers a coordinated-protocol message with link latency,
// routing through the wire-fault layer when the plan interposes one.
func (c *cleanNet) send(rng *hostRNG, to int, m cleanMessage) {
	lat := time.Duration(0)
	if c.cfg.MaxLatency > 0 {
		lat = time.Duration(rng.Int63n(int64(c.cfg.MaxLatency) + 1))
	}
	if c.fl != nil {
		c.fl.Send(m.From, to, lat, m)
		return
	}
	if lat == 0 {
		c.boxes[to].Send(m)
		return
	}
	c.timers.after(lat, func() { c.boxes[to].Send(m) })
}
