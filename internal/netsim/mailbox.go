package netsim

import "sync"

// queue is an unbounded FIFO mailbox: sends never block, so host
// goroutines can post to each other without deadlock regardless of
// topology cycles. It is condition-variable based rather than a
// channel with a pump goroutine: a d-dimensional network already runs
// 2^d host goroutines, and doubling that with pumps would blow the
// race detector's goroutine budget at d=12.
type queue[T any] struct {
	mu       sync.Mutex
	nonEmpty sync.Cond
	items    []T
	head     int
	closed   bool
}

func newQueue[T any]() *queue[T] {
	q := &queue[T]{}
	q.nonEmpty.L = &q.mu
	return q
}

// Send enqueues m without blocking. Like a channel send, it panics on
// a closed mailbox — a send after retirement is a protocol bug.
func (q *queue[T]) Send(m T) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("netsim: send on closed mailbox")
	}
	q.items = append(q.items, m)
	q.nonEmpty.Signal()
	q.mu.Unlock()
}

// TrySend enqueues m unless the mailbox is closed, reporting whether
// it was accepted. The wire-fault layer delivers through it: a crash
// marker or ledger replay aimed at a host that has dispatched and
// retired is meaningless, and dropping it mirrors a real network's
// indifference to traffic at a decommissioned node.
func (q *queue[T]) TrySend(m T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, m)
	q.nonEmpty.Signal()
	q.mu.Unlock()
	return true
}

// Recv dequeues the oldest message, blocking while the mailbox is
// empty and open. It returns ok=false once the mailbox is closed and
// drained (messages enqueued before Close are still delivered).
func (q *queue[T]) Recv() (m T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.head == len(q.items) {
		return m, false
	}
	m = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release payload references
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return m, true
}

// maxRetainedCap bounds the backing capacity a mailbox keeps across
// arena reuse. Recv compacts but never shrinks, so one burst-heavy run
// (the homebase receives the whole team at boot; at d=12 that is 925
// arrivals) would otherwise pin its peak capacity in the pool forever.
// 256 slots retain every burst up to d=9 and let the rare bigger runs
// pay a fresh grow.
const maxRetainedCap = 256

// reset reopens the mailbox for a new run on a pooled fabric: the
// backing array is dropped if it outgrew maxRetainedCap, otherwise it
// is zeroed (releasing any payload references) and kept. Callers must
// have quiesced the previous run first — no host goroutine or delivery
// timer may still hold the mailbox.
func (q *queue[T]) reset() {
	q.mu.Lock()
	if cap(q.items) > maxRetainedCap {
		q.items = nil
	} else {
		clear(q.items[:cap(q.items)])
		q.items = q.items[:0]
	}
	q.head = 0
	q.closed = false
	q.mu.Unlock()
}

// Close marks the mailbox closed; queued messages remain receivable.
func (q *queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.nonEmpty.Broadcast()
	q.mu.Unlock()
}

// Mailbox is the visibility/cloning protocols' unbounded mailbox.
type Mailbox = queue[Message]

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox { return newQueue[Message]() }

// cleanMailbox is the coordinated protocol's unbounded mailbox.
type cleanMailbox = queue[cleanMessage]

func newCleanMailbox() *cleanMailbox { return newQueue[cleanMessage]() }
