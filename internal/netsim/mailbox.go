package netsim

// Mailbox is an unbounded FIFO channel: sends never block, so host
// goroutines can post to each other without deadlock regardless of
// topology cycles. A pump goroutine shuttles messages from In to Out;
// Close(In) drains and then closes Out.
type Mailbox struct {
	In  chan<- Message
	Out <-chan Message
}

// NewMailbox starts the pump and returns the endpoints.
func NewMailbox() *Mailbox {
	in := make(chan Message)
	out := make(chan Message)
	go pump(in, out)
	return &Mailbox{In: in, Out: out}
}

func pump(in <-chan Message, out chan<- Message) {
	var queue []Message
	for {
		if len(queue) == 0 {
			m, ok := <-in
			if !ok {
				close(out)
				return
			}
			queue = append(queue, m)
			continue
		}
		select {
		case m, ok := <-in:
			if !ok {
				for _, q := range queue {
					out <- q
				}
				close(out)
				return
			}
			queue = append(queue, m)
		case out <- queue[0]:
			queue = queue[1:]
		}
	}
}
