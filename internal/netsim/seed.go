package netsim

// Per-host randomness. Every host owns a private latency stream
// derived from (Config.Seed, host, engine stream tag). The derivation
// runs the whole triple through splitmix64's finalizer instead of the
// old xor-with-multiplier scheme (Seed ^ v*const), which collided
// across (seed, host) pairs: host v at seed 0 drew the same stream as
// host 0 at seed v*const. The generator itself is also splitmix64, so
// a host's RNG is two words of state — no per-host rand.Rand table.

// Engine stream tags keep the three protocols' latency streams
// disjoint even for the same (seed, host) pair.
const (
	streamVisibility uint64 = 0x76697369 // "visi"
	streamClean      uint64 = 0x636c656e // "clen"
	streamCloning    uint64 = 0x636c6f6e // "clon"
)

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix,
// the standard way to spread correlated seeds across the word space.
// (Same function as internal/runtime's seed derivation.)
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hostRNG is a zero-allocation splitmix64 sequence. Hosts only need
// latency jitter from it, so a single word of state replaces the
// ~5KB source every rand.New used to allocate per host per run.
type hostRNG struct {
	state uint64
}

// newHostRNG derives host v's stream for one run. Chaining the mixer
// (rather than xoring the inputs together) makes the map from
// (seed, host, stream) to initial state injective in practice: each
// stage's output avalanche separates inputs that differ in any field.
func newHostRNG(seed int64, v int, stream uint64) hostRNG {
	s := splitmix64(uint64(seed))
	s = splitmix64(s + uint64(v))
	s = splitmix64(s + stream)
	return hostRNG{state: s}
}

// next advances the stream: splitmix64 already folds in the golden
// increment, so stepping the state by it and mixing is the canonical
// generator.
func (r *hostRNG) next() uint64 {
	out := splitmix64(r.state)
	r.state += 0x9E3779B97F4A7C15
	return out
}

// Int63n returns a value in [0, n). The modulo bias (< 2^-40 for the
// sub-millisecond latency ranges the engines draw) is irrelevant for
// link jitter; what matters is that the stream is deterministic per
// (seed, host, engine).
func (r *hostRNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("netsim: Int63n with non-positive bound")
	}
	return int64(r.next()>>1) % n
}
