package netsim

import (
	"testing"
	"time"

	"hypersearch/internal/combin"
)

func TestCleanNetsimCorrectAcrossDimensions(t *testing.T) {
	for d := 0; d <= 7; d++ {
		s := RunClean(d, Config{Seed: int64(d), MaxLatency: 20 * time.Microsecond})
		if !s.Captured || !s.MonotoneOK || !s.ContiguousOK {
			t.Errorf("d=%d: %s", d, s.Result.String())
		}
		if s.Recontaminations != 0 {
			t.Errorf("d=%d: %d recontaminations", d, s.Recontaminations)
		}
		if int64(s.TeamSize) != combin.CleanTeamSize(d) {
			t.Errorf("d=%d: team %d", d, s.TeamSize)
		}
	}
}

func TestCleanNetsimCostsMatchDES(t *testing.T) {
	// The message-passing realization performs exactly the same
	// cleaner moves as the discrete-event reference (the final leaf
	// agent stays out, as there): (d+1)*2^(d-1) - d.
	for _, d := range []int{3, 5, 6} {
		s := RunClean(d, Config{Seed: 11})
		wantAgents := combin.CleanAgentMoves(d) - int64(d)
		if s.AgentMessages != wantAgents {
			t.Errorf("d=%d: cleaner hops %d, want %d", d, s.AgentMessages, wantAgents)
		}
		if s.SyncMoves == 0 {
			t.Errorf("d=%d: synchronizer did not move", d)
		}
		if s.TotalMoves != wantAgents+s.SyncMoves {
			t.Errorf("d=%d: move split inconsistent: %d != %d + %d",
				d, s.TotalMoves, wantAgents, s.SyncMoves)
		}
	}
}

func TestCleanNetsimManySeeds(t *testing.T) {
	ref := RunClean(5, Config{Seed: 0, MaxLatency: 15 * time.Microsecond})
	for seed := int64(1); seed < 12; seed++ {
		s := RunClean(5, Config{Seed: seed, MaxLatency: 15 * time.Microsecond})
		if !s.Ok() || s.Recontaminations != 0 {
			t.Errorf("seed %d: %s", seed, s.Result.String())
		}
		// The protocol is deterministic in its traffic, whatever the
		// schedule.
		if s.AgentMessages != ref.AgentMessages || s.SyncMoves != ref.SyncMoves {
			t.Errorf("seed %d: traffic differs: %d/%d vs %d/%d",
				seed, s.AgentMessages, s.SyncMoves, ref.AgentMessages, ref.SyncMoves)
		}
	}
}

func TestCleanNetsimZeroLatency(t *testing.T) {
	s := RunClean(6, Config{})
	if !s.Ok() {
		t.Errorf("%s", s.Result.String())
	}
}
