package faultlink

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"hypersearch/internal/faults"
)

// FuzzWirePlan is the netsim half of the fuzzed-plans contract: any
// JSON plan the grammar accepts must drive the wire layer without
// panics, deliver every admitted frame exactly once, and release each
// link's frames strictly in order — no matter which drop/dup/delay/
// crash combination the plan throws at it.
func FuzzWirePlan(f *testing.F) {
	f.Add([]byte(`{"seed":1,"faults":[{"kind":"link-drop","target":"link:0-1","at":1,"until":6,"times":2}]}`))
	f.Add([]byte(`{"seed":2,"faults":[{"kind":"link-dup","target":"link:2-5","at":1,"until":9}]}`))
	f.Add([]byte(`{"seed":3,"faults":[{"kind":"link-delay","target":"link:4-1","at":2,"until":4,"delay":300}]}`))
	f.Add([]byte(`{"seed":4,"faults":[{"kind":"host-crash","target":"link:0-3","at":3}]}`))
	f.Add([]byte(`{"seed":5,"faults":[` +
		`{"kind":"link-drop","target":"link:0-1","at":1,"until":12,"times":4},` +
		`{"kind":"link-dup","target":"link:0-1","at":3,"until":8},` +
		`{"kind":"link-delay","target":"link:0-1","at":5,"delay":900},` +
		`{"kind":"host-crash","target":"link:0-1","at":7}]}`))
	f.Add([]byte(`{"seed":6,"faults":[{"kind":"link-drop","target":"link:9-9","at":1}]}`))

	const (
		hosts   = 64
		perLink = 12
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := faults.Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		lfs := p.LinkFaults()
		if len(lfs) == 0 {
			return
		}
		type lnk struct{ from, to int }
		links := map[lnk]bool{}
		var totalDelay int64
		for _, lf := range lfs {
			from, to, err := faults.ParseLinkTarget(lf.Target)
			if err != nil {
				t.Fatalf("validated plan has unparseable target %q: %v", lf.Target, err)
			}
			if from >= hosts || to >= hosts {
				return // layer only spans `hosts` hosts
			}
			links[lnk{from, to}] = true
			if lf.Kind == faults.LinkDelay {
				totalDelay += lf.Delay * perLink
			}
		}
		if totalDelay > 50_000_000 { // 50ms of injected flight at 1ns/unit: keep iterations fast
			return
		}

		var (
			mu        sync.Mutex
			last      = map[lnk]int{}
			delivered int
			violation string
		)
		l := New(p, hosts, Options{RetransmitBase: time.Nanosecond, DelayUnit: time.Nanosecond},
			func(to, from int, replay bool, seq int) {
				if replay {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				k := lnk{from, to}
				if seq != last[k]+1 && violation == "" {
					violation = fmt.Sprintf("link %d-%d released frame %d after %d", from, to, seq, last[k])
				}
				last[k] = seq
				delivered++
			},
			func(to int) {})

		sent := 0
		for k := range links {
			for i := 1; i <= perLink; i++ {
				l.Send(k.from, k.to, 0, i)
				sent++
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			n, v := delivered, violation
			mu.Unlock()
			if v != "" {
				t.Fatal(v)
			}
			if n == sent {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d frames delivered: %+v", n, sent, l.Stats())
			}
			time.Sleep(50 * time.Microsecond)
		}
		s := l.Stats()
		if s.Frames != int64(sent) {
			t.Fatalf("Frames=%d, want %d (%+v)", s.Frames, sent, s)
		}
		if s.Drops != s.Retransmits {
			t.Fatalf("every drop must schedule exactly one retransmit: %+v", s)
		}
	})
}
