// Package faultlink is the netsim wire-fault layer: it sits between a
// sender host and the receiver's mailbox and applies the link faults of
// an internal/faults Plan — frame drops, duplications, delays, and
// receiver host crashes — while running the recovery machinery that
// makes the protocols survive them.
//
// # Sequence numbers and the ARQ protocol
//
// Every directed link (u,v) numbers its logical frames 1,2,3,... in the
// sender's program order. Because each link has exactly one sending
// host, the assignment is deterministic: frame k on a link is always
// the same protocol message, regardless of OS scheduling. Fault
// triggers count these sequence numbers, never wall-clock, which is
// what lets one seeded JSON plan drive identical fault schedules on
// every run.
//
// Loss recovery is a sender-side ARQ (automatic repeat request): each
// transmission attempt of a frame carries (seq, attempt), the receiver
// acknowledges admission, and an unacknowledged attempt is resent after
// a deterministic exponential backoff (RetransmitBase << attempt). The
// implementation collapses the ack round-trip: the only loss in the
// system is injected, so the layer knows at send time whether attempt
// n of frame k is dropped, and schedules the retransmission exactly
// then. The observable schedule — which attempts exist, when they fire
// relative to each other — is identical to a real timeout-driven ARQ
// whose timer equals the backoff, with no nondeterministic timer races.
// A link-drop fault may swallow at most MaxLinkRetransmits-2 attempts
// per frame (enforced by Plan.Validate), so delivery always succeeds
// within the budget; exceeding it panics as a plan bug.
//
// # In-order release, duplicates
//
// The receiver side of each link admits frames in sequence order:
// out-of-order frames (reordered past successors by link-delay) are
// held in a reorder buffer and released when the gap closes, and
// duplicate copies (link-dup, or a retransmission racing a late ack in
// a real ARQ) are discarded by sequence number. Hosts therefore see
// each logical frame exactly once, in per-link order — the same
// delivery contract the fault-free mailbox gives them.
//
// # Host crashes and the order ledger
//
// A host-crash fault fires when frame At of its link is admitted: the
// receiving host loses its soft protocol state (amnesia), while the
// layer's per-host order ledger — every frame the host has been
// delivered, in admission order — survives, exactly like the
// whiteboard order ledger that runtime.RunCleanFT replays after an
// agent crash. The layer invokes the crash callback and then redelivers
// the full ledger with replay=true; the host rebuilds its state from
// the replay, and engines skip validator/accounting effects for
// replayed frames so no agent move or beacon is double-counted.
// Re-sends the rebuilt host issues (beacons it already sent before the
// crash) are collapsed by SendIdempotent, so recovery adds zero logical
// frames: the wire schedule downstream of a crash is identical to the
// crash-free one.
//
// # Partitions
//
// A partition fault cuts a declared set of links — or the subcube
// boundary cut:dim=k — atomically: the same frame window [At, Until]
// applies to every member link, and a caught frame is parked in the
// cut until the partition heals, Delay logical units later. The heal
// replays each link's backlog in per-link sequence order: parked
// frames re-enter flight on the quiescence-tracked timers and the
// receiver's in-order release admits them exactly as the ARQ admits a
// retransmitted frame — nothing is lost, everything is late. Frames
// past the window that physically arrive during the outage wait in
// the reorder buffer behind the parked ones, so no traffic is
// admitted across the cut before the backlog.
//
// # Cascades
//
// A cascade fault is a host crash under correlated failure: it fires
// exactly like host-crash at frame At of its link, and if the crashed
// host's ledger replay redelivers at least Threshold entries — the
// recovery load crossing the bar — the named neighbour hosts in
// Victims crash too, in order, each with its own ledger replay.
// Victim crashes run after the primary's ledger lock is released and
// take one host lock at a time, so cascades never deadlock against
// concurrent admissions.
//
// # Logical wire time
//
// WireTime is the layer's logical clock: a deterministic Δtime bill
// advanced in frame admission order. Every admitted frame charges the
// logical duration the plan injected into it — RetransmitUnits <<
// (n-1) for each dropped attempt n, the link-delay units it carried
// in flight, and the partition heal window it sat out. The charge is
// a pure function of (link, seq), so the total is independent of the
// physical interleaving: wall-clock backoff and delay timers realize
// the schedule, but the accounting never reads them. A fault-free
// frame bills zero, which makes WireTime exactly the recovery cost of
// the plan.
//
// # Determinism contract
//
// Of the wire counters, Frames, Drops, Retransmits, Dups, Crashes,
// Partitioned, Cascades and WireTime are pure functions of the plan
// and the protocol (Summary returns exactly these); Held,
// DupsDiscarded, Deduped and Replays depend on physical arrival
// interleavings and are exposed for diagnostics only. One caveat:
// a cascade's threshold decision reads the primary host's full order
// ledger, so it is deterministic exactly when every frame the host
// admitted before the trigger arrived on the faulted link itself (a
// single-fed host, e.g. any host whose only smaller neighbour is the
// sender). Plans that point cascades at multi-fed hosts get
// best-effort secondary crashes and forfeit the byte-identical
// Summary guarantee.
package faultlink

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hypersearch/internal/faults"
)

// Options tunes the wall-clock side of the layer. The zero value picks
// defaults that keep small-d test campaigns fast.
type Options struct {
	// RetransmitBase is the ARQ backoff base: attempt n of a frame is
	// resent RetransmitBase << (n-1) after the drop. Default 50µs.
	RetransmitBase time.Duration
	// DelayUnit converts a link-delay or partition fault's Delay
	// (engine units) into wall time. Default 1µs.
	DelayUnit time.Duration
	// RetransmitUnits is the logical-clock cost of the first backoff:
	// attempt n of a dropped frame bills RetransmitUnits << (n-1)
	// WireTime units. Default 50, mirroring the RetransmitBase /
	// DelayUnit wall-clock ratio.
	RetransmitUnits int64
}

func (o Options) withDefaults() Options {
	if o.RetransmitBase <= 0 {
		o.RetransmitBase = 50 * time.Microsecond
	}
	if o.DelayUnit <= 0 {
		o.DelayUnit = time.Microsecond
	}
	if o.RetransmitUnits <= 0 {
		o.RetransmitUnits = 50
	}
	return o
}

// Summary is the schedule-independent subset of the wire counters: the
// fields byte-identical across reruns of the same seeded plan. It is
// comparable with == so engines can embed it in comparable stats.
type Summary struct {
	Frames      int64 // logical frames admitted to the wire
	Drops       int64 // transmission attempts swallowed by link-drop
	Retransmits int64 // ARQ resends (one per drop, by construction)
	Dups        int64 // duplicate copies injected by link-dup
	Crashes     int64 // host-crash and primary cascade crashes fired
	Partitioned int64 // frames caught in a partition cut's backlog
	Cascades    int64 // secondary crashes fired by tripped cascades
	WireTime    int64 // logical Δtime bill: backoff + delay + heal units, in admission order
}

// WireStats is the full wire accounting: Summary plus the
// schedule-dependent diagnostic counters.
type WireStats struct {
	Summary
	Transmissions int64 // attempts put on the wire (= Frames + Drops)
	Deduped       int64 // idempotent sends collapsed at the sender
	DupsDiscarded int64 // copies discarded by receiver dedup
	Held          int64 // frames buffered out of order
	Replays       int64 // ledger entries redelivered after crashes
}

// wireFault is the compiled form of one link fault. A partition fault
// compiles to one record per member directed link, all carrying the
// same window and heal delay — the "atomic cut" is exactly this shared
// schedule.
type wireFault struct {
	kind      faults.Kind
	from, to  int
	at        int64
	until     int64
	times     int   // link-drop: attempts swallowed per matching frame
	delay     int64 // link-delay: extra flight units; partition: heal window units
	threshold int   // cascade: replay volume tripping the secondaries
	victims   []int // cascade: hosts crashed when the threshold trips
}

// Layer applies a plan's link faults to a message-passing engine whose
// payloads are T. deliver hands an admitted frame to the receiving
// host (replay=true for ledger redeliveries after a crash); crash
// tells host `to` it has lost its soft state, and is always followed
// by the full-ledger replay before any newer frame is admitted.
type Layer[T any] struct {
	opts    Options
	deliver func(to, from int, replay bool, payload T)
	crash   func(to int)
	faults  []wireFault

	mu    sync.Mutex
	links map[int64]*link[T]

	hosts []hostState[T]

	// timers is the quiescence barrier over the layer's wall-clock
	// machinery: every time.AfterFunc (retransmit backoff, delayed
	// flight, duplicate copy) registers here and Quiesce blocks until
	// all of them have fired and returned. pendingTimers mirrors the
	// same count observably for tests.
	timers        sync.WaitGroup
	pendingTimers atomic.Int64

	frames        atomic.Int64
	transmissions atomic.Int64
	drops         atomic.Int64
	retransmits   atomic.Int64
	dups          atomic.Int64
	crashes       atomic.Int64
	partitioned   atomic.Int64
	cascades      atomic.Int64
	wireTime      atomic.Int64
	deduped       atomic.Int64
	dupsDiscarded atomic.Int64
	held          atomic.Int64
	replays       atomic.Int64
}

// link is the per-directed-link state. Lock order: Layer.mu > link.mu
// > hostState.mu; the deliver callback runs under link.mu+hostState.mu
// and must not call back into the layer.
type link[T any] struct {
	mu       sync.Mutex
	from, to int
	nextSeq  int64            // last assigned frame number
	once     map[string]int64 // idempotency key -> admitted frame
	expect   int64            // next frame to release in order
	held     map[int64]T      // reorder buffer: frame -> payload
}

// hostState is the receiver-side order ledger of one host.
type hostState[T any] struct {
	mu     sync.Mutex
	ledger []ledgerEntry[T]
}

type ledgerEntry[T any] struct {
	from    int
	payload T
}

// New compiles the plan's link faults into a layer over `hosts` hosts.
// A nil plan (or one without link faults) yields a pass-through layer.
// It panics on an invalid plan, mirroring faults.NewInjector, so
// engines can assume wire hooks never fail.
func New[T any](plan *faults.Plan, hosts int, opts Options,
	deliver func(to, from int, replay bool, payload T), crash func(to int)) *Layer[T] {
	l := &Layer[T]{
		opts:    opts.withDefaults(),
		deliver: deliver,
		crash:   crash,
		links:   make(map[int64]*link[T]),
		hosts:   make([]hostState[T], hosts),
	}
	l.faults = compileFaults(plan, hosts)
	return l
}

// compileFaults validates the plan and compiles its link faults into
// trigger records, expanding each partition into one record per member
// directed link. A nil plan compiles to none (pass-through layer).
// Faults naming hosts outside the topology are a config bug, rejected
// here (panicking, mirroring faults.NewInjector) rather than compiled
// into triggers that could never fire.
func compileFaults(plan *faults.Plan, hosts int) []wireFault {
	if plan == nil {
		return nil
	}
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	d := 0
	for 1<<(d+1) <= hosts {
		d++
	}
	var wfs []wireFault
	for _, f := range plan.LinkFaults() {
		wf := wireFault{
			kind: f.Kind,
			at:   int64(f.At), until: int64(f.Until),
			times: f.Times, delay: f.Delay,
			threshold: f.Threshold, victims: f.Victims,
		}
		if wf.until == 0 {
			wf.until = wf.at
		}
		if wf.kind == faults.LinkDrop && wf.times == 0 {
			wf.times = 1
		}
		if f.Kind == faults.Partition {
			links, err := faults.PartitionLinks(f.Target, d)
			if err != nil {
				panic(fmt.Errorf("faultlink: %w", err))
			}
			for _, lk := range links {
				member := wf
				member.from, member.to = lk[0], lk[1]
				wfs = append(wfs, member)
			}
			continue
		}
		from, to, err := faults.ParseLinkTarget(f.Target)
		if err != nil {
			panic(err) // unreachable: Validate parsed it already
		}
		if from >= hosts || to >= hosts {
			panic(fmt.Errorf("faultlink: fault target %q names a host outside the %d-host layer — it could never fire", f.Target, hosts))
		}
		for _, v := range f.Victims {
			if v >= hosts {
				panic(fmt.Errorf("faultlink: cascade victim %d outside the %d-host layer", v, hosts))
			}
		}
		wf.from, wf.to = from, to
		wfs = append(wfs, wf)
	}
	return wfs
}

// Reset re-arms a quiesced layer for a new run under a new plan:
// sequence counters restart from frame 1, the idempotency, reorder and
// ledger state of the previous run is discarded (capacity kept), and
// the wire counters zero. Callers must have joined the previous run's
// hosts and called Quiesce first — a still-flying timer would admit a
// stale frame into the new run's ledgers.
func (l *Layer[T]) Reset(plan *faults.Plan) {
	l.faults = compileFaults(plan, len(l.hosts))
	l.mu.Lock()
	for _, lk := range l.links {
		lk.mu.Lock()
		lk.nextSeq = 0
		lk.expect = 1
		clear(lk.once)
		clear(lk.held)
		lk.mu.Unlock()
	}
	l.mu.Unlock()
	for i := range l.hosts {
		h := &l.hosts[i]
		h.mu.Lock()
		clear(h.ledger) // release payload references
		h.ledger = h.ledger[:0]
		h.mu.Unlock()
	}
	l.frames.Store(0)
	l.transmissions.Store(0)
	l.drops.Store(0)
	l.retransmits.Store(0)
	l.dups.Store(0)
	l.crashes.Store(0)
	l.partitioned.Store(0)
	l.cascades.Store(0)
	l.wireTime.Store(0)
	l.deduped.Store(0)
	l.dupsDiscarded.Store(0)
	l.held.Store(0)
	l.replays.Store(0)
}

// after schedules fn under the quiescence barrier. The count is taken
// at schedule time and dropped only after fn returns, so a chained
// reschedule (a retransmit arming the next attempt from inside its
// callback) keeps the counter above zero for the whole chain — Quiesce
// can never observe a momentary zero between links of a chain.
func (l *Layer[T]) after(d time.Duration, fn func()) {
	l.pendingTimers.Add(1)
	l.timers.Add(1)
	time.AfterFunc(d, func() {
		defer func() {
			l.pendingTimers.Add(-1)
			l.timers.Done()
		}()
		fn()
	})
}

// Quiesce blocks until every timer the layer has scheduled has fired
// and returned. A duplicate copy is not needed for protocol completion,
// so its timer can outlive the run that scheduled it; engines must
// Quiesce after joining their hosts and before the layer's state is
// harvested or recycled.
func (l *Layer[T]) Quiesce() { l.timers.Wait() }

// PendingTimers reports how many scheduled timers have not yet
// completed; zero after Quiesce, by construction.
func (l *Layer[T]) PendingTimers() int64 { return l.pendingTimers.Load() }

// Send admits one logical frame from -> to and transmits it with the
// given base latency plus whatever the plan injects.
func (l *Layer[T]) Send(from, to int, latency time.Duration, payload T) {
	lk := l.linkFor(from, to)
	lk.mu.Lock()
	lk.nextSeq++
	seq := lk.nextSeq
	lk.mu.Unlock()
	l.frames.Add(1)
	l.transmit(lk, seq, 1, latency, payload)
}

// SendIdempotent admits the frame only if no frame with the same key
// was already admitted on this link; it reports whether the frame was
// admitted, so callers can keep their message accounting in step (a
// collapsed re-send is not a message). This is the re-beacon path:
// after a crash a rebuilt host blindly re-sends its beacons, and the
// sender-side dedup makes recovery add zero wire frames.
func (l *Layer[T]) SendIdempotent(from, to int, key string, latency time.Duration, payload T) bool {
	lk := l.linkFor(from, to)
	lk.mu.Lock()
	if _, sent := lk.once[key]; sent {
		lk.mu.Unlock()
		l.deduped.Add(1)
		return false
	}
	lk.nextSeq++
	seq := lk.nextSeq
	if lk.once == nil {
		lk.once = make(map[string]int64)
	}
	lk.once[key] = seq
	lk.mu.Unlock()
	l.frames.Add(1)
	l.transmit(lk, seq, 1, latency, payload)
	return true
}

// Stats snapshots the wire counters.
func (l *Layer[T]) Stats() WireStats {
	return WireStats{
		Summary: Summary{
			Frames:      l.frames.Load(),
			Drops:       l.drops.Load(),
			Retransmits: l.retransmits.Load(),
			Dups:        l.dups.Load(),
			Crashes:     l.crashes.Load(),
			Partitioned: l.partitioned.Load(),
			Cascades:    l.cascades.Load(),
			WireTime:    l.wireTime.Load(),
		},
		Transmissions: l.transmissions.Load(),
		Deduped:       l.deduped.Load(),
		DupsDiscarded: l.dupsDiscarded.Load(),
		Held:          l.held.Load(),
		Replays:       l.replays.Load(),
	}
}

// SummaryStats snapshots only the deterministic counters.
func (l *Layer[T]) SummaryStats() Summary { return l.Stats().Summary }

func (l *Layer[T]) linkFor(from, to int) *link[T] {
	key := int64(from)<<32 | int64(to)
	l.mu.Lock()
	lk := l.links[key]
	if lk == nil {
		lk = &link[T]{from: from, to: to, expect: 1}
		l.links[key] = lk
	}
	l.mu.Unlock()
	return lk
}

// verdict folds every matching fault over one transmission attempt:
// whether it is dropped, whether a duplicate copy is injected, and how
// many extra flight units it carries. It is a pure function of
// (link, seq, attempt), which is what keeps the fault schedule
// deterministic.
func (l *Layer[T]) verdict(lk *link[T], seq int64, attempt int) (drop, dup bool, delay int64) {
	for _, f := range l.faults {
		if f.from != lk.from || f.to != lk.to || seq < f.at || seq > f.until {
			continue
		}
		switch f.kind {
		case faults.LinkDrop:
			if attempt <= f.times {
				drop = true
			}
		case faults.LinkDup:
			dup = true
		case faults.LinkDelay:
			delay += f.delay
		case faults.Partition:
			// A caught frame sits in the cut for the heal window; the
			// park is realized as delayed flight so the backlog re-enters
			// on quiescence-tracked timers, and the receiver's in-order
			// release keeps per-link order across the heal.
			delay += f.delay
		}
	}
	return drop, dup, delay
}

// frameCost is the logical Δtime bill of frame seq on lk: the sum of
// the backoff units of every dropped attempt plus the injected delay
// (link-delay and partition heal) the surviving attempt carries. It is
// a pure function of (link, seq) — evaluated from the same verdicts
// that drive the physical schedule but reading none of its wall-clock
// timers — so the accumulated WireTime is interleaving-independent.
func (l *Layer[T]) frameCost(lk *link[T], seq int64) int64 {
	var cost int64
	for attempt := 1; ; attempt++ {
		drop, _, delay := l.verdict(lk, seq, attempt)
		if !drop {
			return cost + delay
		}
		cost += l.opts.RetransmitUnits << (attempt - 1)
	}
}

// partitionHit reports whether frame seq on lk was caught in a
// partition cut's window.
func (l *Layer[T]) partitionHit(lk *link[T], seq int64) bool {
	for _, f := range l.faults {
		if f.kind == faults.Partition && f.from == lk.from && f.to == lk.to &&
			seq >= f.at && seq <= f.until {
			return true
		}
	}
	return false
}

// crashFaultAt returns the host-crash or cascade fault fired by
// admitting frame seq on lk, or nil. No fired flag is needed: each
// (link, seq) is admitted exactly once, so a one-shot trigger cannot
// re-fire.
func (l *Layer[T]) crashFaultAt(lk *link[T], seq int64) *wireFault {
	for i := range l.faults {
		f := &l.faults[i]
		if (f.kind == faults.HostCrash || f.kind == faults.Cascade) &&
			f.from == lk.from && f.to == lk.to && f.at == seq {
			return f
		}
	}
	return nil
}

// transmit puts attempt n of frame seq on the wire.
func (l *Layer[T]) transmit(lk *link[T], seq int64, attempt int, latency time.Duration, payload T) {
	if attempt > faults.MaxLinkRetransmits {
		panic(fmt.Sprintf("faultlink: frame %d on link %d-%d exceeded %d transmissions — plan validation should have bounded this",
			seq, lk.from, lk.to, faults.MaxLinkRetransmits))
	}
	l.transmissions.Add(1)
	drop, dup, delay := l.verdict(lk, seq, attempt)
	if drop {
		l.drops.Add(1)
		l.retransmits.Add(1)
		backoff := l.opts.RetransmitBase << (attempt - 1)
		l.after(backoff, func() { l.transmit(lk, seq, attempt+1, latency, payload) })
		return
	}
	flight := latency + time.Duration(delay)*l.opts.DelayUnit
	if flight == 0 {
		l.receive(lk, seq, payload)
	} else {
		l.after(flight, func() { l.receive(lk, seq, payload) })
	}
	if dup {
		l.dups.Add(1)
		// The copy flies the same route a beat behind the original;
		// whichever lands first is admitted, the other discarded.
		l.after(flight+l.opts.DelayUnit, func() { l.receive(lk, seq, payload) })
	}
}

// receive is the receiver side of the link: dedup by sequence number,
// hold out-of-order frames, and release in-order runs.
func (l *Layer[T]) receive(lk *link[T], seq int64, payload T) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if seq < lk.expect {
		l.dupsDiscarded.Add(1)
		return
	}
	if seq > lk.expect {
		if _, holding := lk.held[seq]; holding {
			l.dupsDiscarded.Add(1)
			return
		}
		if lk.held == nil {
			lk.held = make(map[int64]T)
		}
		lk.held[seq] = payload
		l.held.Add(1)
		return
	}
	// In order: admit it, then drain any consecutive held successors.
	for {
		l.admit(lk, lk.expect, payload)
		lk.expect++
		next, ok := lk.held[lk.expect]
		if !ok {
			return
		}
		delete(lk.held, lk.expect)
		payload = next
	}
}

// admit delivers frame seq to the receiving host: WireTime billing,
// ledger append, the deliver callback, and — if a host-crash or
// cascade fault fires here — the crash callback followed by the
// full-ledger replay, then any tripped cascade victims. Holding
// hostState.mu across crash + replay makes them atomic with respect to
// admissions from the host's other links; victim crashes run after the
// primary's lock is released, one host lock at a time, so no two
// hostState locks are ever held together.
func (l *Layer[T]) admit(lk *link[T], seq int64, payload T) {
	l.wireTime.Add(l.frameCost(lk, seq))
	if l.partitionHit(lk, seq) {
		l.partitioned.Add(1)
	}
	h := &l.hosts[lk.to]
	h.mu.Lock()
	h.ledger = append(h.ledger, ledgerEntry[T]{from: lk.from, payload: payload})
	l.deliver(lk.to, lk.from, false, payload)
	var victims []int
	if wf := l.crashFaultAt(lk, seq); wf != nil {
		l.crashes.Add(1)
		l.crash(lk.to)
		for _, e := range h.ledger {
			l.replays.Add(1)
			l.deliver(lk.to, e.from, true, e.payload)
		}
		if wf.kind == faults.Cascade && len(h.ledger) >= wf.threshold {
			victims = wf.victims
		}
	}
	h.mu.Unlock()
	for _, v := range victims {
		l.cascades.Add(1)
		l.crashHost(v)
	}
}

// crashHost crashes host v as a cascade secondary: the crash callback
// followed by v's own full-ledger replay, under v's hostState lock.
func (l *Layer[T]) crashHost(v int) {
	h := &l.hosts[v]
	h.mu.Lock()
	l.crash(v)
	for _, e := range h.ledger {
		l.replays.Add(1)
		l.deliver(v, e.from, true, e.payload)
	}
	h.mu.Unlock()
}
