package faultlink

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"hypersearch/internal/faults"
)

// recorder collects delivered frames and crash notices in order.
type recorder struct {
	mu     sync.Mutex
	events []string
}

func (r *recorder) deliver(to, from int, replay bool, payload int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tag := "deliver"
	if replay {
		tag = "replay"
	}
	r.events = append(r.events, fmt.Sprintf("%s %d->%d:%d", tag, from, to, payload))
}

func (r *recorder) crash(to int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, fmt.Sprintf("crash %d", to))
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

// waitFor polls until the recorder has n events or the deadline hits.
func (r *recorder) waitFor(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs := r.snapshot()
		if len(evs) >= n {
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d events, have %v", n, evs)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func newTestLayer(plan *faults.Plan, hosts int) (*Layer[int], *recorder) {
	r := &recorder{}
	l := New(plan, hosts, Options{}, r.deliver, r.crash)
	return l, r
}

func TestPassThroughDeliversInOrder(t *testing.T) {
	l, r := newTestLayer(nil, 4)
	for i := 1; i <= 5; i++ {
		l.Send(0, 1, 0, i)
	}
	got := r.waitFor(t, 5)
	for i, want := range []string{
		"deliver 0->1:1", "deliver 0->1:2", "deliver 0->1:3",
		"deliver 0->1:4", "deliver 0->1:5",
	} {
		if got[i] != want {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want, got)
		}
	}
	s := l.Stats()
	if s.Frames != 5 || s.Transmissions != 5 || s.Drops != 0 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestDropHealsByRetransmit(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 1), At: 1, Times: 2},
	}}
	l, r := newTestLayer(plan, 2)
	l.Send(0, 1, 0, 42)
	got := r.waitFor(t, 1)
	if got[0] != "deliver 0->1:42" {
		t.Fatalf("got %v", got)
	}
	s := l.Stats()
	if s.Frames != 1 || s.Drops != 2 || s.Retransmits != 2 || s.Transmissions != 3 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestDropDefaultSwallowsOneAttempt(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(3, 1), At: 2, Until: 3},
	}}
	l, r := newTestLayer(plan, 4)
	for i := 1; i <= 4; i++ {
		l.Send(3, 1, 0, i)
	}
	got := r.waitFor(t, 4)
	// Frames 2 and 3 each lose one attempt but still deliver in order.
	want := []string{"deliver 3->1:1", "deliver 3->1:2", "deliver 3->1:3", "deliver 3->1:4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	if s := l.Stats(); s.Drops != 2 || s.Retransmits != 2 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestDuplicateIsDiscardedByReceiver(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Faults: []faults.Fault{
		{Kind: faults.LinkDup, Target: faults.LinkTarget(0, 1), At: 1},
	}}
	l, r := newTestLayer(plan, 2)
	l.Send(0, 1, 0, 7)
	// Both copies must land: the original plus its discarded twin.
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().DupsDiscarded < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("duplicate never discarded: %+v, events %v", l.Stats(), r.snapshot())
		}
		time.Sleep(100 * time.Microsecond)
	}
	got := r.snapshot()
	if len(got) != 1 || got[0] != "deliver 0->1:7" {
		t.Fatalf("host saw %v, want exactly one delivery", got)
	}
	if s := l.Stats(); s.Dups != 1 || s.Frames != 1 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestDelayReordersButReleaseIsInOrder(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Faults: []faults.Fault{
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, 1), At: 1, Delay: 3000},
	}}
	l, r := newTestLayer(plan, 2)
	l.Send(0, 1, 0, 1) // delayed 3ms
	l.Send(0, 1, 0, 2) // lands first, must be held
	got := r.waitFor(t, 2)
	if got[0] != "deliver 0->1:1" || got[1] != "deliver 0->1:2" {
		t.Fatalf("release order %v, want frame 1 before frame 2", got)
	}
	if s := l.Stats(); s.Held != 1 {
		t.Fatalf("expected the second frame to be held: %+v", s)
	}
}

func TestHostCrashReplaysLedgerInOrder(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Faults: []faults.Fault{
		{Kind: faults.HostCrash, Target: faults.LinkTarget(1, 2), At: 2},
	}}
	l, r := newTestLayer(plan, 3)
	l.Send(0, 2, 0, 10) // from another link: must appear in the replay
	l.Send(1, 2, 0, 20)
	l.Send(1, 2, 0, 21) // frame 2 on 1->2: fires the crash
	got := r.waitFor(t, 7)
	want := []string{
		"deliver 0->2:10",
		"deliver 1->2:20",
		"deliver 1->2:21",
		"crash 2",
		"replay 0->2:10",
		"replay 1->2:20",
		"replay 1->2:21",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	if s := l.Stats(); s.Crashes != 1 || s.Replays != 3 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestSendIdempotentCollapsesResends(t *testing.T) {
	l, r := newTestLayer(nil, 2)
	if !l.SendIdempotent(0, 1, "beacon", 0, 1) {
		t.Fatal("first idempotent send must be admitted")
	}
	if l.SendIdempotent(0, 1, "beacon", 0, 1) {
		t.Fatal("second idempotent send with the same key must collapse")
	}
	if !l.SendIdempotent(1, 0, "beacon", 0, 2) {
		t.Fatal("same key on a different link is a different frame")
	}
	got := r.waitFor(t, 2)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if s := l.Stats(); s.Frames != 2 || s.Deduped != 1 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestSummaryIsDeterministicAcrossRuns(t *testing.T) {
	plan := &faults.Plan{Seed: 9, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 1), At: 1, Until: 4, Times: 3},
		{Kind: faults.LinkDup, Target: faults.LinkTarget(0, 1), At: 2, Until: 3},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, 1), At: 1, Delay: 500},
		{Kind: faults.HostCrash, Target: faults.LinkTarget(0, 1), At: 3},
	}}
	run := func() Summary {
		l, r := newTestLayer(plan, 2)
		for i := 1; i <= 6; i++ {
			l.Send(0, 1, 0, i)
		}
		// 6 deliveries + crash + 3 replays.
		r.waitFor(t, 10)
		return l.SummaryStats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("summaries differ across identical runs: %+v vs %+v", a, b)
	}
	if a.Frames != 6 || a.Drops != 4*3 || a.Retransmits != a.Drops || a.Dups != 2 || a.Crashes != 1 {
		t.Fatalf("unexpected summary %+v", a)
	}
}

func TestNewPanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid plan")
		}
	}()
	New(&faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: "link:1-1", At: 1},
	}}, 2, Options{}, func(int, int, bool, int) {}, func(int) {})
}

// TestQuiesceDrainsStragglerTimers provokes the post-run straggler
// directly: a duplicated, delayed frame schedules its copy's delivery
// on a wall-clock timer that the protocol never waits for. The barrier
// must report the pending timer, block until it fires, and leave the
// observable count at zero — the property pooled fabrics rest on.
func TestQuiesceDrainsStragglerTimers(t *testing.T) {
	plan := &faults.Plan{Name: "q", Seed: 1, Faults: []faults.Fault{
		{Kind: faults.LinkDup, Target: faults.LinkTarget(0, 1), At: 1},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, 1), At: 1, Delay: 20000},
	}}
	l, r := newTestLayer(plan, 2)
	l.Send(0, 1, 0, 7)
	// The delayed original and its duplicate copy are both on timers
	// the moment Send returns; a caller that only waited for protocol
	// completion (the first delivery) would leave the copy flying.
	if n := l.PendingTimers(); n == 0 {
		t.Fatal("no pending timers after a delayed+duplicated send; straggler not provoked")
	}
	l.Quiesce()
	if n := l.PendingTimers(); n != 0 {
		t.Fatalf("%d timers pending after Quiesce", n)
	}
	evs := r.snapshot()
	if len(evs) != 1 || evs[0] != "deliver 0->1:7" {
		t.Fatalf("after quiesce: want exactly one admitted delivery, got %v", evs)
	}
	if s := l.Stats(); s.Dups != 1 || s.DupsDiscarded != 1 {
		t.Fatalf("dup accounting wrong after quiesce: %+v", s)
	}
}

// TestResetReusesLayerAcrossPlans pins the pooled-layer lifecycle:
// after Quiesce+Reset the layer runs a different plan from a clean
// slate — fresh sequence numbers, empty ledgers, zeroed counters —
// and a reset to a nil plan behaves exactly like a pass-through layer.
func TestResetReusesLayerAcrossPlans(t *testing.T) {
	plan := &faults.Plan{Name: "r1", Seed: 2, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 1), At: 1, Times: 2},
	}}
	l, r := newTestLayer(plan, 2)
	l.Send(0, 1, 0, 1)
	l.Quiesce()
	if s := l.Stats(); s.Drops != 2 || s.Retransmits != 2 {
		t.Fatalf("faulted run accounting: %+v", s)
	}

	l.Reset(nil)
	if s := l.Stats(); s != (WireStats{}) {
		t.Fatalf("reset left counters: %+v", s)
	}
	l.Send(0, 1, 0, 2)
	l.Quiesce()
	if s := l.Stats(); s.Frames != 1 || s.Drops != 0 || s.Transmissions != 1 {
		t.Fatalf("pass-through after reset: %+v", s)
	}
	evs := r.snapshot()
	if want := "deliver 0->1:2"; evs[len(evs)-1] != want {
		t.Fatalf("frame after reset renumbered wrong: %v", evs)
	}
}

func TestPartitionParksBacklogAndHealsInOrder(t *testing.T) {
	plan := &faults.Plan{Name: "part", Seed: 3, Faults: []faults.Fault{
		{Kind: faults.Partition, Target: faults.LinksTarget([][2]int{{0, 1}}),
			At: 1, Until: 2, Delay: 2000},
	}}
	l, r := newTestLayer(plan, 2)
	l.Send(0, 1, 0, 1) // caught in the cut
	l.Send(0, 1, 0, 2) // caught in the cut
	l.Send(0, 1, 0, 3) // past the window: lands first, must wait behind the backlog
	got := r.waitFor(t, 3)
	want := []string{"deliver 0->1:1", "deliver 0->1:2", "deliver 0->1:3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	l.Quiesce()
	s := l.Stats()
	if s.Partitioned != 2 || s.Frames != 3 {
		t.Fatalf("unexpected stats %+v", s)
	}
	if s.WireTime != 2*2000 {
		t.Fatalf("WireTime = %d, want the two parked frames' heal bill %d", s.WireTime, 2*2000)
	}
}

func TestPartitionCutDimSeversOnlyTheMatching(t *testing.T) {
	// cut:dim=2 on H_2 severs {0,2} and {1,3}; the dimension-1 edge
	// {0,1} must be untouched and bill zero.
	plan := &faults.Plan{Name: "cut", Seed: 4, Faults: []faults.Fault{
		{Kind: faults.Partition, Target: faults.CutDimTarget(2), At: 1, Delay: 1000},
	}}
	l, r := newTestLayer(plan, 4)
	l.Send(0, 2, 0, 20) // dim-2 edge: caught
	l.Send(0, 1, 0, 10) // dim-1 edge: unaffected
	r.waitFor(t, 2)
	l.Quiesce()
	s := l.Stats()
	if s.Partitioned != 1 {
		t.Fatalf("Partitioned = %d, want 1 (only the dim-2 frame): %+v", s.Partitioned, s)
	}
	if s.WireTime != 1000 {
		t.Fatalf("WireTime = %d, want the single heal bill 1000", s.WireTime)
	}
}

func TestCascadeTripsVictimsOverThreshold(t *testing.T) {
	// Host 1's ledger reaches 2 entries when frame 2 on 0->1 fires the
	// cascade; threshold 2 trips, crashing neighbour 3 with its own
	// ledger replay.
	plan := &faults.Plan{Name: "casc", Seed: 5, Faults: []faults.Fault{
		{Kind: faults.Cascade, Target: faults.LinkTarget(0, 1), At: 2,
			Threshold: 2, Victims: []int{3}},
	}}
	l, r := newTestLayer(plan, 4)
	l.Send(0, 3, 0, 30) // victim's pre-crash history
	r.waitFor(t, 1)
	l.Send(0, 1, 0, 10)
	l.Send(0, 1, 0, 11) // frame 2: fires the cascade
	got := r.waitFor(t, 8)
	want := []string{
		"deliver 0->3:30",
		"deliver 0->1:10",
		"deliver 0->1:11",
		"crash 1",
		"replay 0->1:10",
		"replay 0->1:11",
		"crash 3",
		"replay 0->3:30",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	if s := l.Stats(); s.Crashes != 1 || s.Cascades != 1 || s.Replays != 3 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestCascadeBelowThresholdDoesNotTrip(t *testing.T) {
	plan := &faults.Plan{Name: "casc-quiet", Seed: 6, Faults: []faults.Fault{
		{Kind: faults.Cascade, Target: faults.LinkTarget(0, 1), At: 2,
			Threshold: 3, Victims: []int{3}},
	}}
	l, r := newTestLayer(plan, 4)
	l.Send(0, 1, 0, 10)
	l.Send(0, 1, 0, 11) // fires the primary crash; ledger 2 < threshold 3
	got := r.waitFor(t, 5)
	for _, ev := range got {
		if ev == "crash 3" {
			t.Fatalf("cascade tripped below threshold: %v", got)
		}
	}
	if s := l.Stats(); s.Crashes != 1 || s.Cascades != 0 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestWireTimeBillsBackoffAndDelay(t *testing.T) {
	// Frame 1: two dropped attempts bill 50<<0 + 50<<1 = 150 units, and
	// the surviving attempt carries 500 delay units. Frame 2 is
	// fault-free and must bill zero.
	plan := &faults.Plan{Name: "bill", Seed: 7, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 1), At: 1, Times: 2},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, 1), At: 1, Delay: 500},
	}}
	l, r := newTestLayer(plan, 2)
	l.Send(0, 1, 0, 1)
	r.waitFor(t, 1)
	if s := l.Stats(); s.WireTime != 150+500 {
		t.Fatalf("WireTime = %d, want 650", s.WireTime)
	}
	l.Send(0, 1, 0, 2)
	r.waitFor(t, 2)
	l.Quiesce()
	if s := l.Stats(); s.WireTime != 650 {
		t.Fatalf("fault-free frame billed time: WireTime = %d, want 650", s.WireTime)
	}
}

func TestNewRejectsOutOfRangeLinkTarget(t *testing.T) {
	// link:0-5 can never fire on a 4-host layer; compiling it must be a
	// loud config error, not a silent no-op.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range link target")
		}
	}()
	New(&faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 5), At: 1},
	}}, 4, Options{}, func(int, int, bool, int) {}, func(int) {})
}

// TestSummaryDeterministicAcrossGOMAXPROCS drives a correlated-fault
// plan from concurrent senders under GOMAXPROCS=1 and GOMAXPROCS=N:
// the same seeded plan must produce an identical Summary — including
// the logical WireTime bill — regardless of physical parallelism.
func TestSummaryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	plan := &faults.Plan{Name: "gmp", Seed: 8, Faults: []faults.Fault{
		{Kind: faults.Partition, Target: faults.CutDimTarget(1), At: 1, Until: 3, Delay: 300},
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 2), At: 2, Times: 2},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(2, 3), At: 1, Until: 2, Delay: 700},
	}}
	const frames = 6
	links := [][2]int{{0, 1}, {1, 0}, {0, 2}, {2, 3}, {3, 1}}
	run := func() Summary {
		l, r := newTestLayer(plan, 4)
		var wg sync.WaitGroup
		for _, lk := range links {
			wg.Add(1)
			go func(from, to int) {
				defer wg.Done()
				for i := 1; i <= frames; i++ {
					l.Send(from, to, 0, i)
				}
			}(lk[0], lk[1])
		}
		wg.Wait()
		r.waitFor(t, frames*len(links))
		l.Quiesce()
		return l.SummaryStats()
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(old)
	parallel := run()
	if serial != parallel {
		t.Fatalf("summary differs across GOMAXPROCS:\n  1: %+v\n  N: %+v", serial, parallel)
	}
	if serial.WireTime == 0 || serial.Partitioned == 0 {
		t.Fatalf("plan injected no measurable faults: %+v", serial)
	}
}
