package netsim

import (
	"sync"
	"testing"

	"hypersearch/internal/hypercube"
)

// dualValidator feeds every event to both validator implementations
// under one outer mutex, so both observe the identical event order.
// Agent ids must agree call-for-call: both implementations assign them
// sequentially from zero.
type dualValidator struct {
	mu      sync.Mutex
	locked  *lockedValidator
	striped *stripedValidator
	t       *testing.T
}

func newDualValidator(t *testing.T, h *hypercube.Hypercube) *dualValidator {
	return &dualValidator{
		locked:  newLockedValidator(h),
		striped: newStripedValidator(h),
		t:       t,
	}
}

func (v *dualValidator) place() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	a, b := v.locked.place(), v.striped.place()
	if a != b {
		v.t.Errorf("place: locked id %d, striped id %d", a, b)
	}
	return a
}

func (v *dualValidator) clone(at int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	a, b := v.locked.clone(at), v.striped.clone(at)
	if a != b {
		v.t.Errorf("clone at %d: locked id %d, striped id %d", at, a, b)
	}
	return a
}

func (v *dualValidator) depart(agent, from int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.locked.depart(agent, from)
	v.striped.depart(agent, from)
}

func (v *dualValidator) arrive(agent, from, to int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.locked.arrive(agent, from, to)
	v.striped.arrive(agent, from, to)
}

func (v *dualValidator) terminate(agent, at int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.locked.terminate(agent, at)
	v.striped.terminate(agent, at)
}

func (v *dualValidator) agents() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	a, b := v.locked.agents(), v.striped.agents()
	if a != b {
		v.t.Errorf("agents: locked %d, striped %d", a, b)
	}
	return a
}

func (v *dualValidator) stats(team int, agentMsgs, beaconMsgs int64) Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	a := v.locked.stats(team, agentMsgs, beaconMsgs)
	b := v.striped.stats(team, agentMsgs, beaconMsgs)
	if a != b {
		v.t.Errorf("stats diverge:\n  locked:  %+v\n  striped: %+v", a, b)
	}
	return a
}

// TestStripedMatchesLockedStats runs every protocol with both
// validators observing the identical event order and requires
// field-identical Stats at d <= 8.
func TestStripedMatchesLockedStats(t *testing.T) {
	protocols := []struct {
		name string
		run  func(d int, cfg Config) Stats
	}{
		{"visibility", Run},
		{"clean", RunClean},
		{"cloning", RunCloning},
	}
	for _, p := range protocols {
		for d := 0; d <= 8; d++ {
			if testing.Short() && d > 5 {
				continue
			}
			var dual *dualValidator
			cfg := Config{
				Seed: int64(7*d + 1),
				newValidator: func(h *hypercube.Hypercube) validator {
					dual = newDualValidator(t, h)
					return dual
				},
			}
			got := p.run(d, cfg)
			if dual == nil {
				t.Fatalf("%s d=%d: validator hook never invoked", p.name, d)
			}
			if !got.Captured || !got.MonotoneOK || !got.ContiguousOK {
				t.Errorf("%s d=%d: bad run %+v", p.name, d, got.Result)
			}
		}
	}
}

// TestLockedValidatorMode exercises the explicit single-mutex mode end
// to end, so the legacy path stays usable for debugging.
func TestLockedValidatorMode(t *testing.T) {
	for d := 0; d <= 6; d++ {
		s := Run(d, Config{Validator: ValidatorLocked})
		if !s.Captured || !s.MonotoneOK || !s.ContiguousOK {
			t.Errorf("d=%d locked validator: %+v", d, s.Result)
		}
	}
}

// TestStripedValidatorD12 is the scalability acceptance check: the
// visibility protocol must complete a d=12 run (4096 hosts) with the
// striped validator, including under the race detector, where the
// single-mutex validator used to serialize every host.
func TestStripedValidatorD12(t *testing.T) {
	if testing.Short() {
		t.Skip("d=12 network run is long in -short mode")
	}
	s := Run(12, Config{})
	if !s.Captured || !s.MonotoneOK || !s.ContiguousOK {
		t.Fatalf("d=12 striped run invalid: %+v", s.Result)
	}
	if s.TeamSize == 0 || s.AgentMoves == 0 {
		t.Fatalf("d=12 run produced empty stats: %+v", s.Result)
	}
}
