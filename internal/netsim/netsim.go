// Package netsim executes the visibility strategy as a literal
// distributed system: every hypercube host is a goroutine, links carry
// randomized latency, agents migrate between hosts as messages, and —
// exactly as Section 4 of the paper suggests — the "visibility" of
// neighbour states is realized by each host sending a single bit to
// its neighbours when it becomes guarded ("this capability could be
// easily achieved if the agents ... send a message (e.g., a single
// bit) to their neighbouring nodes").
//
// There is no shared memory between hosts: coordination is purely
// message-passing (the per-host whiteboard is host-local state). A
// locked board validates the global invariants as moves land, as in
// the goroutine runtime.
//
// When Config.Faults carries link faults, every message crosses the
// wire-fault layer (internal/netsim/faultlink): frames can be dropped
// (healed by the layer's sequence-numbered ack/retransmit ARQ),
// duplicated (discarded by receiver dedup), delayed past successors
// (held and released in order), and a receiving host can crash — it
// loses its soft protocol state and rebuilds it from the layer's
// order ledger, with Replay-marked messages that skip validator and
// accounting effects and re-sent beacons collapsed by the idempotent
// sender. Boot injections to the homebase bypass the layer: host 0's
// console is the one reliable component, exactly like the initial
// placement in the runtime engines.
//
// Every run executes on a Fabric — the pooled network arena holding
// mailboxes, per-host scratch, validator ledgers and the wire-fault
// layer. Run builds a private throwaway fabric; RunOn executes on a
// caller-owned (typically netarena-pooled) one, reusing all of it.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netsim/faultlink"
)

// Name identifies the engine in results.
const Name = "visibility-netsim"

// MessageKind distinguishes the two message types on the wire.
type MessageKind uint8

// The wire protocol: agents migrate, and hosts beacon one bit.
const (
	// AgentArrival carries one migrating agent.
	AgentArrival MessageKind = iota
	// GuardedBeacon is the paper's single bit: "my node is guarded
	// (and will be clean when I leave)". One per (host, neighbour).
	GuardedBeacon
	// HostRestart is the wire-fault layer's crash marker: the host
	// drops its soft protocol state and rebuilds it from the
	// Replay-marked ledger redeliveries that follow immediately.
	HostRestart
)

// Message is what travels on a link.
type Message struct {
	Kind   MessageKind
	Replay bool // ledger redelivery after a crash: skip validator/accounting effects
	From   int  // sending host
	Agent  int  // AgentArrival: the migrating agent's id
}

// Config controls a network execution.
type Config struct {
	Seed       int64
	MaxLatency time.Duration // per-link-delivery latency in [0, MaxLatency]

	// Faults, when it carries link faults, routes every message
	// through the wire-fault layer. Non-link faults in the plan are
	// ignored by this engine (they drive the DES/runtime injector).
	Faults *faults.Plan

	// Validator selects the invariant-checker implementation; the
	// zero value is the sharded (striped) validator.
	Validator ValidatorMode

	// newValidator lets tests substitute a validator (e.g. the dual
	// checker comparing both implementations on one run).
	newValidator func(*hypercube.Hypercube) validator
}

// Stats extends the cost summary with wire-level accounting.
type Stats struct {
	metrics.Result
	AgentMessages  int64 // migrations (equals moves)
	BeaconMessages int64 // single-bit notifications
	BeaconBits     int64 // payload bits carried by beacons (1 each)

	// Link is the wire-fault accounting; zero without link faults.
	// Only faultlink's deterministic counters appear here, so Stats
	// stays comparable and byte-identical across reruns.
	Link faultlink.Summary
}

// Run executes CLEAN WITH VISIBILITY on H_d as a message-passing
// system on a fresh throwaway fabric and returns the run statistics.
func Run(d int, cfg Config) Stats { return RunOn(NewFabric(d), cfg) }

// RunOn executes CLEAN WITH VISIBILITY on the fabric's hypercube,
// reusing the fabric's mailboxes, scratch and validator. The caller
// owns the fabric; after RunOn returns every timer the run scheduled
// has drained (the quiescence barrier), so the fabric may immediately
// host the next run.
func RunOn(f *Fabric, cfg Config) Stats {
	f.begin()
	d := f.d
	team := int(combin.VisibilityAgents(d))

	val := f.validator(cfg)
	ids := f.bootIDs(team)
	for i := range ids {
		ids[i] = val.place()
	}
	if d == 0 {
		val.terminate(ids[0], 0)
		s := val.stats(team, 0, 0)
		f.complete()
		return s
	}

	net := f.visNetwork(cfg, val)

	var wg sync.WaitGroup
	wg.Add(f.h.Order())
	for v := 0; v < f.h.Order(); v++ {
		go net.visHost(&wg, v)
	}

	// Boot: the homebase host receives the whole team as arrivals.
	// Boot injections bypass the fault layer: there is no link into
	// host 0's console, so the initial placement is reliable.
	for _, id := range ids {
		net.boxes[0].Send(Message{Kind: AgentArrival, From: 0, Agent: id})
	}

	wg.Wait()
	// Quiesce before harvesting: joining the hosts proves the protocol
	// finished, draining the timer barrier proves no wall-clock
	// delivery (a late duplicate copy, say) is still in flight into
	// the mailboxes and ledgers the next run will reuse.
	net.quiesce()
	s := val.stats(team, net.agentMsgs.Load(), net.beaconMsgs.Load())
	if net.fl != nil {
		s.Link = net.fl.SummaryStats()
	}
	f.complete()
	return s
}

// network is the shared wiring (hosts otherwise share nothing). It
// lives inside a Fabric and is reused across runs: mailboxes reopen,
// scratch re-arms per host, and the wire-fault layer resets under the
// new plan.
type network struct {
	h       *hypercube.Hypercube
	bt      *heapqueue.Tree
	cfg     Config
	val     validator
	boxes   []*Mailbox
	scratch []hostScratch

	// fl is the active wire-fault layer (nil on the fault-free path);
	// flPool is the pooled instance it aliases, kept across runs so a
	// faulted run after a clean one reuses the link/ledger maps.
	fl     *faultlink.Layer[Message]
	flPool *faultlink.Layer[Message]

	timers timerSet // quiescence barrier over fault-free delivery timers

	agentMsgs  atomic.Int64
	beaconMsgs atomic.Int64
}

// wireFaults interposes the wire-fault layer when the plan asks for
// it. Deliveries and crash markers use TrySend: a retired host has
// closed its mailbox, and traffic at a decommissioned node is simply
// dropped, never a protocol bug. The plan is validated against this
// topology first — a link target naming a host outside 2^d would
// silently never fire, so it is rejected here at engine-config time.
func (n *network) wireFaults() {
	if err := n.cfg.Faults.ValidateForHosts(n.h.Order()); err != nil {
		panic(fmt.Errorf("netsim: %w", err))
	}
	if !n.cfg.Faults.HasLinkFaults() {
		n.fl = nil
		return
	}
	if n.flPool == nil {
		n.flPool = faultlink.New(n.cfg.Faults, n.h.Order(), faultlink.Options{},
			func(to, _ int, replay bool, m Message) {
				m.Replay = replay
				n.boxes[to].TrySend(m)
			},
			func(to int) {
				n.boxes[to].TrySend(Message{Kind: HostRestart, From: to})
			})
	} else {
		n.flPool.Reset(n.cfg.Faults)
	}
	n.fl = n.flPool
}

// quiesce drains every wall-clock timer the run scheduled: the
// engine's own delivery timers and, when faulted, the wire layer's
// retransmit/delay/duplicate timers.
func (n *network) quiesce() {
	n.timers.wait()
	if n.fl != nil {
		n.fl.Quiesce()
	}
}

// send delivers a message after the link's randomized latency; rng is
// owned by the sending host.
func (n *network) send(rng *hostRNG, to int, m Message) {
	lat := time.Duration(0)
	if n.cfg.MaxLatency > 0 {
		lat = time.Duration(rng.Int63n(int64(n.cfg.MaxLatency) + 1))
	}
	if n.fl != nil {
		n.sendFaulted(lat, to, m)
		return
	}
	switch m.Kind {
	case AgentArrival:
		n.agentMsgs.Add(1)
	case GuardedBeacon:
		n.beaconMsgs.Add(1)
	}
	if lat == 0 {
		n.boxes[to].Send(m)
		return
	}
	n.timers.after(lat, func() { n.boxes[to].Send(m) })
}

// sendFaulted routes the message through the wire-fault layer.
// Beacons take the idempotent path: a host rebuilt after a crash
// blindly re-sends the beacons it already sent, the sender collapses
// them, and only admitted frames count as messages. Agent dispatches
// are always first sends — a host crash happens before its dispatch,
// and the rebuilt host dispatches exactly once — so they use the
// plain path.
func (n *network) sendFaulted(lat time.Duration, to int, m Message) {
	if m.Kind == GuardedBeacon {
		if n.fl.SendIdempotent(m.From, to, "beacon", lat, m) {
			n.beaconMsgs.Add(1)
		}
		return
	}
	n.agentMsgs.Add(1)
	n.fl.Send(m.From, to, lat, m)
}

// visHost runs one host's event loop and joins the run's WaitGroup.
// Spawning a method with plain arguments keeps the per-host goroutine
// launch closure-free: on a pooled fabric, host startup allocates
// nothing.
func (n *network) visHost(wg *sync.WaitGroup, v int) {
	defer wg.Done()
	runHost(n, v)
}

// runHost is one host's event loop: the local program of Section 4.2
// driven entirely by arrivals and beacons. All host state lives in the
// fabric's per-host scratch, re-armed here at host start.
func runHost(n *network, v int) {
	sc := &n.scratch[v]
	sc.rng = newHostRNG(n.cfg.Seed, v, streamVisibility)
	rng := &sc.rng
	k := n.bt.Type(v)
	required := int(heapqueue.AgentsRequired(k))
	smaller := n.h.SmallerNeighbours(v)
	allReady := readyMask(len(smaller))

	sc.gathered = sc.gathered[:0]
	sc.ready = 0
	dispatched := false

	// The root has no smaller neighbours and may dispatch immediately
	// once its complement arrives; everyone else waits for beacons.
	for {
		m, ok := n.boxes[v].Recv()
		if !ok {
			break
		}
		if dispatched {
			// Retired: only a crash marker or ledger replays can trail
			// the dispatch-triggering message in the drain; the host's
			// protocol obligations are already discharged.
			continue
		}
		switch m.Kind {
		case AgentArrival:
			if !m.Replay {
				n.val.arrive(m.Agent, m.From, v)
			}
			sc.gathered = append(sc.gathered, m.Agent)
			if len(sc.gathered) == required {
				// Guarded with the full complement: one bit to every
				// neighbour that waits on this host's state — the
				// neighbours y for which v is a *smaller* neighbour
				// (label(v,y) <= m(y)). Others have already retired
				// their mailboxes and never read v's state.
				for i, w := range n.h.Neighbours(v) {
					if i+1 <= bits.Msb(bits.Node(w)) {
						n.send(rng, w, Message{Kind: GuardedBeacon, From: v})
					}
				}
			}
		case GuardedBeacon:
			if i := indexOf(smaller, m.From); i >= 0 {
				sc.ready |= 1 << uint(i)
			}
		case HostRestart:
			// Amnesia crash: lose the soft protocol state. The wire
			// layer replays every delivered frame right behind this
			// marker; replays rebuild gathered/ready without touching
			// the validator, and any re-sent beacons collapse in the
			// idempotent sender.
			sc.gathered = sc.gathered[:0]
			sc.ready = 0
			continue
		default:
			panic(fmt.Sprintf("netsim: host %d got unknown message kind %d", v, m.Kind))
		}
		if len(sc.gathered) < required {
			continue
		}
		if sc.ready != allReady {
			continue
		}
		dispatched = true
		if k == 0 {
			n.val.terminate(sc.gathered[0], v)
			n.boxes[v].Close()
			continue
		}
		// Dispatch the complement down the broadcast tree and retire
		// this host: with the children notified, no further message
		// can matter here.
		plan := heapqueue.DispatchPlan(k)
		for i, child := range n.bt.Children(v) {
			for j := int64(0); j < plan[i]; j++ {
				a := sc.gathered[len(sc.gathered)-1]
				sc.gathered = sc.gathered[:len(sc.gathered)-1]
				n.val.depart(a, v)
				n.send(rng, child, Message{Kind: AgentArrival, From: v, Agent: a})
			}
		}
		n.boxes[v].Close()
	}
}

// readyMask is the "all smaller neighbours have beaconed" bitmask for
// a host with k smaller neighbours (k <= d < 64).
func readyMask(k int) uint64 { return uint64(1)<<uint(k) - 1 }

// indexOf returns w's position in the (short, <= d entries) neighbour
// list, or -1.
func indexOf(list []int, w int) int {
	for i, x := range list {
		if x == w {
			return i
		}
	}
	return -1
}
