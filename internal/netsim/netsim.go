// Package netsim executes the visibility strategy as a literal
// distributed system: every hypercube host is a goroutine, links carry
// randomized latency, agents migrate between hosts as messages, and —
// exactly as Section 4 of the paper suggests — the "visibility" of
// neighbour states is realized by each host sending a single bit to
// its neighbours when it becomes guarded ("this capability could be
// easily achieved if the agents ... send a message (e.g., a single
// bit) to their neighbouring nodes").
//
// There is no shared memory between hosts: coordination is purely
// message-passing (the per-host whiteboard is host-local state). A
// locked board validates the global invariants as moves land, as in
// the goroutine runtime.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/metrics"
)

// Name identifies the engine in results.
const Name = "visibility-netsim"

// MessageKind distinguishes the two message types on the wire.
type MessageKind uint8

// The wire protocol: agents migrate, and hosts beacon one bit.
const (
	// AgentArrival carries one migrating agent.
	AgentArrival MessageKind = iota
	// GuardedBeacon is the paper's single bit: "my node is guarded
	// (and will be clean when I leave)". One per (host, neighbour).
	GuardedBeacon
)

// Message is what travels on a link.
type Message struct {
	Kind  MessageKind
	From  int // sending host
	Agent int // AgentArrival: the migrating agent's id
}

// Config controls a network execution.
type Config struct {
	Seed       int64
	MaxLatency time.Duration // per-link-delivery latency in [0, MaxLatency]

	// Validator selects the invariant-checker implementation; the
	// zero value is the sharded (striped) validator.
	Validator ValidatorMode

	// newValidator lets tests substitute a validator (e.g. the dual
	// checker comparing both implementations on one run).
	newValidator func(*hypercube.Hypercube) validator
}

// Stats extends the cost summary with wire-level accounting.
type Stats struct {
	metrics.Result
	AgentMessages  int64 // migrations (equals moves)
	BeaconMessages int64 // single-bit notifications
	BeaconBits     int64 // payload bits carried by beacons (1 each)
}

// Run executes CLEAN WITH VISIBILITY on H_d as a message-passing
// system and returns the run statistics.
func Run(d int, cfg Config) Stats {
	h := hypercube.New(d)
	bt := heapqueue.New(d)
	team := int(combin.VisibilityAgents(d))

	val := cfg.makeValidator(h)
	ids := make([]int, team)
	for i := range ids {
		ids[i] = val.place()
	}
	if d == 0 {
		val.terminate(ids[0], 0)
		return val.stats(team, 0, 0)
	}

	net := &network{
		h: h, bt: bt, cfg: cfg, val: val,
		boxes: make([]*Mailbox, h.Order()),
	}
	for v := range net.boxes {
		net.boxes[v] = NewMailbox()
	}

	var wg sync.WaitGroup
	for v := 0; v < h.Order(); v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			runHost(net, v)
		}(v)
	}

	// Boot: the homebase host receives the whole team as arrivals.
	for _, id := range ids {
		net.boxes[0].Send(Message{Kind: AgentArrival, From: 0, Agent: id})
	}

	wg.Wait()
	return val.stats(team, net.agentMsgs.Load(), net.beaconMsgs.Load())
}

// network is the shared wiring (hosts otherwise share nothing).
type network struct {
	h     *hypercube.Hypercube
	bt    *heapqueue.Tree
	cfg   Config
	val   validator
	boxes []*Mailbox

	agentMsgs  atomic.Int64
	beaconMsgs atomic.Int64
}

// send delivers a message after the link's randomized latency; rng is
// owned by the sending host.
func (n *network) send(rng *rand.Rand, to int, m Message) {
	lat := time.Duration(0)
	if n.cfg.MaxLatency > 0 {
		lat = time.Duration(rng.Int63n(int64(n.cfg.MaxLatency) + 1))
	}
	switch m.Kind {
	case AgentArrival:
		n.agentMsgs.Add(1)
	case GuardedBeacon:
		n.beaconMsgs.Add(1)
	}
	if lat == 0 {
		n.boxes[to].Send(m)
		return
	}
	time.AfterFunc(lat, func() { n.boxes[to].Send(m) })
}

// runHost is one host's event loop: the local program of Section 4.2
// driven entirely by arrivals and beacons.
func runHost(n *network, v int) {
	rng := rand.New(rand.NewSource(n.cfg.Seed ^ int64(v)*0x9E3779B9))
	k := n.bt.Type(v)
	required := int(heapqueue.AgentsRequired(k))
	smaller := n.h.SmallerNeighbours(v)

	var gathered []int
	ready := make(map[int]bool, len(smaller)) // smaller neighbour -> beacon seen
	dispatched := false

	// The root has no smaller neighbours and may dispatch immediately
	// once its complement arrives; everyone else waits for beacons.
	for {
		m, ok := n.boxes[v].Recv()
		if !ok {
			break
		}
		switch m.Kind {
		case AgentArrival:
			n.val.arrive(m.Agent, m.From, v)
			gathered = append(gathered, m.Agent)
			if len(gathered) == required {
				// Guarded with the full complement: one bit to every
				// neighbour that waits on this host's state — the
				// neighbours y for which v is a *smaller* neighbour
				// (label(v,y) <= m(y)). Others have already retired
				// their mailboxes and never read v's state.
				for i, w := range n.h.Neighbours(v) {
					if i+1 <= bits.Msb(bits.Node(w)) {
						n.send(rng, w, Message{Kind: GuardedBeacon, From: v})
					}
				}
			}
		case GuardedBeacon:
			ready[m.From] = true
		default:
			panic(fmt.Sprintf("netsim: host %d got unknown message kind %d", v, m.Kind))
		}
		if dispatched || len(gathered) < required {
			continue
		}
		if !allReady(smaller, ready) {
			continue
		}
		dispatched = true
		if k == 0 {
			n.val.terminate(gathered[0], v)
			n.boxes[v].Close()
			continue
		}
		// Dispatch the complement down the broadcast tree and retire
		// this host: with the children notified, no further message
		// can matter here.
		plan := heapqueue.DispatchPlan(k)
		for i, child := range n.bt.Children(v) {
			for j := int64(0); j < plan[i]; j++ {
				a := gathered[len(gathered)-1]
				gathered = gathered[:len(gathered)-1]
				n.val.depart(a, v)
				n.send(rng, child, Message{Kind: AgentArrival, From: v, Agent: a})
			}
		}
		n.boxes[v].Close()
	}
}

func allReady(smaller []int, ready map[int]bool) bool {
	for _, w := range smaller {
		if !ready[w] {
			return false
		}
	}
	return true
}
