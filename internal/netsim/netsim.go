// Package netsim executes the visibility strategy as a literal
// distributed system: every hypercube host is a goroutine, links carry
// randomized latency, agents migrate between hosts as messages, and —
// exactly as Section 4 of the paper suggests — the "visibility" of
// neighbour states is realized by each host sending a single bit to
// its neighbours when it becomes guarded ("this capability could be
// easily achieved if the agents ... send a message (e.g., a single
// bit) to their neighbouring nodes").
//
// There is no shared memory between hosts: coordination is purely
// message-passing (the per-host whiteboard is host-local state). A
// locked board validates the global invariants as moves land, as in
// the goroutine runtime.
//
// When Config.Faults carries link faults, every message crosses the
// wire-fault layer (internal/netsim/faultlink): frames can be dropped
// (healed by the layer's sequence-numbered ack/retransmit ARQ),
// duplicated (discarded by receiver dedup), delayed past successors
// (held and released in order), and a receiving host can crash — it
// loses its soft protocol state and rebuilds it from the layer's
// order ledger, with Replay-marked messages that skip validator and
// accounting effects and re-sent beacons collapsed by the idempotent
// sender. Boot injections to the homebase bypass the layer: host 0's
// console is the one reliable component, exactly like the initial
// placement in the runtime engines.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netsim/faultlink"
)

// Name identifies the engine in results.
const Name = "visibility-netsim"

// MessageKind distinguishes the two message types on the wire.
type MessageKind uint8

// The wire protocol: agents migrate, and hosts beacon one bit.
const (
	// AgentArrival carries one migrating agent.
	AgentArrival MessageKind = iota
	// GuardedBeacon is the paper's single bit: "my node is guarded
	// (and will be clean when I leave)". One per (host, neighbour).
	GuardedBeacon
	// HostRestart is the wire-fault layer's crash marker: the host
	// drops its soft protocol state and rebuilds it from the
	// Replay-marked ledger redeliveries that follow immediately.
	HostRestart
)

// Message is what travels on a link.
type Message struct {
	Kind   MessageKind
	Replay bool // ledger redelivery after a crash: skip validator/accounting effects
	From   int  // sending host
	Agent  int  // AgentArrival: the migrating agent's id
}

// Config controls a network execution.
type Config struct {
	Seed       int64
	MaxLatency time.Duration // per-link-delivery latency in [0, MaxLatency]

	// Faults, when it carries link faults, routes every message
	// through the wire-fault layer. Non-link faults in the plan are
	// ignored by this engine (they drive the DES/runtime injector).
	Faults *faults.Plan

	// Validator selects the invariant-checker implementation; the
	// zero value is the sharded (striped) validator.
	Validator ValidatorMode

	// newValidator lets tests substitute a validator (e.g. the dual
	// checker comparing both implementations on one run).
	newValidator func(*hypercube.Hypercube) validator
}

// Stats extends the cost summary with wire-level accounting.
type Stats struct {
	metrics.Result
	AgentMessages  int64 // migrations (equals moves)
	BeaconMessages int64 // single-bit notifications
	BeaconBits     int64 // payload bits carried by beacons (1 each)

	// Link is the wire-fault accounting; zero without link faults.
	// Only faultlink's deterministic counters appear here, so Stats
	// stays comparable and byte-identical across reruns.
	Link faultlink.Summary
}

// Run executes CLEAN WITH VISIBILITY on H_d as a message-passing
// system and returns the run statistics.
func Run(d int, cfg Config) Stats {
	h := hypercube.New(d)
	bt := heapqueue.New(d)
	team := int(combin.VisibilityAgents(d))

	val := cfg.makeValidator(h)
	ids := make([]int, team)
	for i := range ids {
		ids[i] = val.place()
	}
	if d == 0 {
		val.terminate(ids[0], 0)
		return val.stats(team, 0, 0)
	}

	net := &network{
		h: h, bt: bt, cfg: cfg, val: val,
		boxes: make([]*Mailbox, h.Order()),
	}
	for v := range net.boxes {
		net.boxes[v] = NewMailbox()
	}
	net.wireFaults()

	var wg sync.WaitGroup
	for v := 0; v < h.Order(); v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			runHost(net, v)
		}(v)
	}

	// Boot: the homebase host receives the whole team as arrivals.
	// Boot injections bypass the fault layer: there is no link into
	// host 0's console, so the initial placement is reliable.
	for _, id := range ids {
		net.boxes[0].Send(Message{Kind: AgentArrival, From: 0, Agent: id})
	}

	wg.Wait()
	s := val.stats(team, net.agentMsgs.Load(), net.beaconMsgs.Load())
	if net.fl != nil {
		s.Link = net.fl.SummaryStats()
	}
	return s
}

// network is the shared wiring (hosts otherwise share nothing).
type network struct {
	h     *hypercube.Hypercube
	bt    *heapqueue.Tree
	cfg   Config
	val   validator
	boxes []*Mailbox
	fl    *faultlink.Layer[Message] // nil on the fault-free path

	agentMsgs  atomic.Int64
	beaconMsgs atomic.Int64
}

// wireFaults interposes the wire-fault layer when the plan asks for
// it. Deliveries and crash markers use TrySend: a retired host has
// closed its mailbox, and traffic at a decommissioned node is simply
// dropped, never a protocol bug.
func (n *network) wireFaults() {
	if !n.cfg.Faults.HasLinkFaults() {
		return
	}
	n.fl = faultlink.New(n.cfg.Faults, n.h.Order(), faultlink.Options{},
		func(to, _ int, replay bool, m Message) {
			m.Replay = replay
			n.boxes[to].TrySend(m)
		},
		func(to int) {
			n.boxes[to].TrySend(Message{Kind: HostRestart, From: to})
		})
}

// send delivers a message after the link's randomized latency; rng is
// owned by the sending host.
func (n *network) send(rng *rand.Rand, to int, m Message) {
	lat := time.Duration(0)
	if n.cfg.MaxLatency > 0 {
		lat = time.Duration(rng.Int63n(int64(n.cfg.MaxLatency) + 1))
	}
	if n.fl != nil {
		n.sendFaulted(lat, to, m)
		return
	}
	switch m.Kind {
	case AgentArrival:
		n.agentMsgs.Add(1)
	case GuardedBeacon:
		n.beaconMsgs.Add(1)
	}
	if lat == 0 {
		n.boxes[to].Send(m)
		return
	}
	time.AfterFunc(lat, func() { n.boxes[to].Send(m) })
}

// sendFaulted routes the message through the wire-fault layer.
// Beacons take the idempotent path: a host rebuilt after a crash
// blindly re-sends the beacons it already sent, the sender collapses
// them, and only admitted frames count as messages. Agent dispatches
// are always first sends — a host crash happens before its dispatch,
// and the rebuilt host dispatches exactly once — so they use the
// plain path.
func (n *network) sendFaulted(lat time.Duration, to int, m Message) {
	if m.Kind == GuardedBeacon {
		if n.fl.SendIdempotent(m.From, to, "beacon", lat, m) {
			n.beaconMsgs.Add(1)
		}
		return
	}
	n.agentMsgs.Add(1)
	n.fl.Send(m.From, to, lat, m)
}

// runHost is one host's event loop: the local program of Section 4.2
// driven entirely by arrivals and beacons.
func runHost(n *network, v int) {
	rng := rand.New(rand.NewSource(n.cfg.Seed ^ int64(v)*0x9E3779B9))
	k := n.bt.Type(v)
	required := int(heapqueue.AgentsRequired(k))
	smaller := n.h.SmallerNeighbours(v)

	var gathered []int
	ready := make(map[int]bool, len(smaller)) // smaller neighbour -> beacon seen
	dispatched := false

	// The root has no smaller neighbours and may dispatch immediately
	// once its complement arrives; everyone else waits for beacons.
	for {
		m, ok := n.boxes[v].Recv()
		if !ok {
			break
		}
		if dispatched {
			// Retired: only a crash marker or ledger replays can trail
			// the dispatch-triggering message in the drain; the host's
			// protocol obligations are already discharged.
			continue
		}
		switch m.Kind {
		case AgentArrival:
			if !m.Replay {
				n.val.arrive(m.Agent, m.From, v)
			}
			gathered = append(gathered, m.Agent)
			if len(gathered) == required {
				// Guarded with the full complement: one bit to every
				// neighbour that waits on this host's state — the
				// neighbours y for which v is a *smaller* neighbour
				// (label(v,y) <= m(y)). Others have already retired
				// their mailboxes and never read v's state.
				for i, w := range n.h.Neighbours(v) {
					if i+1 <= bits.Msb(bits.Node(w)) {
						n.send(rng, w, Message{Kind: GuardedBeacon, From: v})
					}
				}
			}
		case GuardedBeacon:
			ready[m.From] = true
		case HostRestart:
			// Amnesia crash: lose the soft protocol state. The wire
			// layer replays every delivered frame right behind this
			// marker; replays rebuild gathered/ready without touching
			// the validator, and any re-sent beacons collapse in the
			// idempotent sender.
			gathered = gathered[:0]
			clear(ready)
			continue
		default:
			panic(fmt.Sprintf("netsim: host %d got unknown message kind %d", v, m.Kind))
		}
		if len(gathered) < required {
			continue
		}
		if !allReady(smaller, ready) {
			continue
		}
		dispatched = true
		if k == 0 {
			n.val.terminate(gathered[0], v)
			n.boxes[v].Close()
			continue
		}
		// Dispatch the complement down the broadcast tree and retire
		// this host: with the children notified, no further message
		// can matter here.
		plan := heapqueue.DispatchPlan(k)
		for i, child := range n.bt.Children(v) {
			for j := int64(0); j < plan[i]; j++ {
				a := gathered[len(gathered)-1]
				gathered = gathered[:len(gathered)-1]
				n.val.depart(a, v)
				n.send(rng, child, Message{Kind: AgentArrival, From: v, Agent: a})
			}
		}
		n.boxes[v].Close()
	}
}

func allReady(smaller []int, ready map[int]bool) bool {
	for _, w := range smaller {
		if !ready[w] {
			return false
		}
	}
	return true
}
