package netsim

import (
	"fmt"
	"testing"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
)

// netsimFaultPlans builds the canonical link-fault campaign for H_d:
// the same four scenario shapes cmd/hqfaults runs, expressed against
// the concrete broadcast-tree links of this dimension. Frame numbering
// per link is fixed by the host program: on a parent->child tree link
// the guarded beacon (sent when the parent gathers its complement) is
// frame 1 and agent dispatches follow from frame 2; on a pure
// dependency link the beacon is the only frame.
func netsimFaultPlans(d int) []*faults.Plan {
	bt := heapqueue.New(d)
	h := hypercube.New(d)
	c0 := bt.Children(0)[0]

	lossy := &faults.Plan{Name: "lossy-links", Seed: 11, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, c0), At: 1, Until: 8, Times: 2},
	}}
	dup := &faults.Plan{Name: "dup-storm", Seed: 12, Faults: []faults.Fault{
		{Kind: faults.LinkDup, Target: faults.LinkTarget(0, c0), At: 1, Until: 16},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, c0), At: 2, Until: 5, Delay: 400},
	}}
	if gcs := bt.Children(c0); len(gcs) > 0 {
		lossy.Faults = append(lossy.Faults, faults.Fault{
			Kind: faults.LinkDrop, Target: faults.LinkTarget(c0, gcs[0]), At: 1, Until: 4, Times: 1,
		})
		dup.Faults = append(dup.Faults, faults.Fault{
			Kind: faults.LinkDup, Target: faults.LinkTarget(c0, gcs[0]), At: 1, Until: 8,
		})
	}

	// All of the last node's neighbours are smaller, so every link
	// into it carries a beacon as frame 1: swallow them all.
	blackout := &faults.Plan{Name: "beacon-blackout", Seed: 13}
	last := h.Order() - 1
	for _, u := range h.SmallerNeighbours(last) {
		blackout.Faults = append(blackout.Faults, faults.Fault{
			Kind: faults.LinkDrop, Target: faults.LinkTarget(u, last), At: 1, Times: 3,
		})
	}

	crash := &faults.Plan{Name: "host-crash", Seed: 14, Faults: []faults.Fault{
		// Frame 2 on the root's first tree link is the first agent
		// dispatch: the child crashes mid-gather and must rebuild.
		{Kind: faults.HostCrash, Target: faults.LinkTarget(0, c0), At: 2},
	}}

	mixed := &faults.Plan{Name: "mixed", Seed: 15}
	mixed.Faults = append(mixed.Faults, lossy.Faults...)
	mixed.Faults = append(mixed.Faults, dup.Faults...)
	mixed.Faults = append(mixed.Faults, crash.Faults...)

	return []*faults.Plan{lossy, dup, blackout, crash, mixed}
}

// checkFaultedStats asserts the non-negotiables of a faulted run: it
// terminated with all nodes clean, monotone and contiguous, with zero
// recontaminations.
func checkFaultedStats(t *testing.T, s Stats, plan string) {
	t.Helper()
	if !s.Captured || !s.MonotoneOK || !s.ContiguousOK {
		t.Errorf("%s: faulted run not clean: captured=%v monotone=%v contiguous=%v",
			plan, s.Captured, s.MonotoneOK, s.ContiguousOK)
	}
	if s.Recontaminations != 0 {
		t.Errorf("%s: %d recontaminations under faults", plan, s.Recontaminations)
	}
}

// TestFaultedRunsTerminateClean drives both engines through every
// scenario with both validator implementations and asserts the run is
// indistinguishable from a clean one at the protocol level: same
// moves, same message counts, all nodes clean.
func TestFaultedRunsTerminateClean(t *testing.T) {
	for d := 2; d <= 8; d++ {
		if testing.Short() && d > 5 {
			continue
		}
		for _, mode := range []ValidatorMode{ValidatorStriped, ValidatorLocked} {
			base := Config{Seed: int64(31*d + 7), MaxLatency: 300 * time.Microsecond, Validator: mode}
			cleanVis := Run(d, base)
			cleanClone := RunCloning(d, base)
			for _, plan := range netsimFaultPlans(d) {
				cfg := base
				cfg.Faults = plan
				name := fmt.Sprintf("d=%d mode=%d plan=%s", d, mode, plan.Name)

				s := Run(d, cfg)
				checkFaultedStats(t, s, name+" visibility")
				if s.AgentMoves != cleanVis.AgentMoves || s.AgentMessages != cleanVis.AgentMessages ||
					s.BeaconMessages != cleanVis.BeaconMessages || s.TeamSize != cleanVis.TeamSize {
					t.Errorf("%s: recovery changed the logical run: faulted {moves=%d agents=%d beacons=%d team=%d} clean {%d %d %d %d}",
						name, s.AgentMoves, s.AgentMessages, s.BeaconMessages, s.TeamSize,
						cleanVis.AgentMoves, cleanVis.AgentMessages, cleanVis.BeaconMessages, cleanVis.TeamSize)
				}

				c := RunCloning(d, cfg)
				checkFaultedStats(t, c, name+" cloning")
				if c.AgentMoves != cleanClone.AgentMoves || c.AgentMessages != cleanClone.AgentMessages ||
					c.BeaconMessages != cleanClone.BeaconMessages {
					t.Errorf("%s cloning: recovery changed the logical run", name)
				}
			}
		}
	}
}

// TestFaultedStatsDeterministic reruns every faulted scenario and
// requires byte-identical Stats — including the wire Summary — which
// is what hqfaults' -verify replay rests on.
func TestFaultedStatsDeterministic(t *testing.T) {
	for _, d := range []int{3, 6} {
		if testing.Short() && d > 5 {
			continue
		}
		for _, plan := range netsimFaultPlans(d) {
			cfg := Config{Seed: int64(d) * 97, MaxLatency: 250 * time.Microsecond, Faults: plan}
			a, b := Run(d, cfg), Run(d, cfg)
			if a != b {
				t.Errorf("d=%d plan=%s: visibility stats differ across reruns:\n%+v\n%+v", d, plan.Name, a, b)
			}
			ca, cb := RunCloning(d, cfg), RunCloning(d, cfg)
			if ca != cb {
				t.Errorf("d=%d plan=%s: cloning stats differ across reruns:\n%+v\n%+v", d, plan.Name, ca, cb)
			}
		}
	}
}

// TestFaultedWireAccounting pins the deterministic wire counters of
// two scenarios whose schedules are easy to derive by hand.
func TestFaultedWireAccounting(t *testing.T) {
	d := 4
	plans := netsimFaultPlans(d)

	crash := plans[3]
	s := Run(d, Config{Seed: 5, Faults: crash})
	if s.Link.Crashes != 1 {
		t.Errorf("host-crash plan fired %d crashes, want 1 (%+v)", s.Link.Crashes, s.Link)
	}

	blackout := plans[2]
	s = Run(d, Config{Seed: 5, Faults: blackout})
	wantDrops := int64(3 * d) // d beacon links into the last node, 3 attempts swallowed each
	if s.Link.Drops != wantDrops || s.Link.Retransmits != wantDrops {
		t.Errorf("beacon-blackout: drops=%d retransmits=%d, want %d each", s.Link.Drops, s.Link.Retransmits, wantDrops)
	}
	if s.Link.Frames == 0 {
		t.Error("beacon-blackout: no frames crossed the wire layer")
	}
}

// TestDualValidatorUnderLinkFaults runs every scenario with the dual
// validator, which t.Errors on any field divergence between the
// locked and striped implementations while both observe the faulted
// event stream.
func TestDualValidatorUnderLinkFaults(t *testing.T) {
	for d := 2; d <= 8; d++ {
		if testing.Short() && d > 5 {
			continue
		}
		for _, plan := range netsimFaultPlans(d) {
			cfg := Config{
				Seed:       int64(13*d + 3),
				MaxLatency: 200 * time.Microsecond,
				Faults:     plan,
				newValidator: func(h *hypercube.Hypercube) validator {
					return newDualValidator(t, h)
				},
			}
			s := Run(d, cfg)
			checkFaultedStats(t, s, fmt.Sprintf("dual d=%d plan=%s visibility", d, plan.Name))
			c := RunCloning(d, cfg)
			checkFaultedStats(t, c, fmt.Sprintf("dual d=%d plan=%s cloning", d, plan.Name))
		}
	}
}
