package netsim

import (
	"fmt"
	"testing"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
)

// netsimFaultPlans builds the canonical link-fault campaign for H_d:
// the same four scenario shapes cmd/hqfaults runs, expressed against
// the concrete broadcast-tree links of this dimension. Frame numbering
// per link is fixed by the host program: on a parent->child tree link
// the guarded beacon (sent when the parent gathers its complement) is
// frame 1 and agent dispatches follow from frame 2; on a pure
// dependency link the beacon is the only frame.
func netsimFaultPlans(d int) []*faults.Plan {
	bt := heapqueue.New(d)
	h := hypercube.New(d)
	c0 := bt.Children(0)[0]

	lossy := &faults.Plan{Name: "lossy-links", Seed: 11, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, c0), At: 1, Until: 8, Times: 2},
	}}
	dup := &faults.Plan{Name: "dup-storm", Seed: 12, Faults: []faults.Fault{
		{Kind: faults.LinkDup, Target: faults.LinkTarget(0, c0), At: 1, Until: 16},
		{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, c0), At: 2, Until: 5, Delay: 400},
	}}
	if gcs := bt.Children(c0); len(gcs) > 0 {
		lossy.Faults = append(lossy.Faults, faults.Fault{
			Kind: faults.LinkDrop, Target: faults.LinkTarget(c0, gcs[0]), At: 1, Until: 4, Times: 1,
		})
		dup.Faults = append(dup.Faults, faults.Fault{
			Kind: faults.LinkDup, Target: faults.LinkTarget(c0, gcs[0]), At: 1, Until: 8,
		})
	}

	// All of the last node's neighbours are smaller, so every link
	// into it carries a beacon as frame 1: swallow them all.
	blackout := &faults.Plan{Name: "beacon-blackout", Seed: 13}
	last := h.Order() - 1
	for _, u := range h.SmallerNeighbours(last) {
		blackout.Faults = append(blackout.Faults, faults.Fault{
			Kind: faults.LinkDrop, Target: faults.LinkTarget(u, last), At: 1, Times: 3,
		})
	}

	crash := &faults.Plan{Name: "host-crash", Seed: 14, Faults: []faults.Fault{
		// Frame 2 on the root's first tree link is the first agent
		// dispatch: the child crashes mid-gather and must rebuild.
		{Kind: faults.HostCrash, Target: faults.LinkTarget(0, c0), At: 2},
	}}

	mixed := &faults.Plan{Name: "mixed", Seed: 15}
	mixed.Faults = append(mixed.Faults, lossy.Faults...)
	mixed.Faults = append(mixed.Faults, dup.Faults...)
	mixed.Faults = append(mixed.Faults, crash.Faults...)

	// The partition cuts every link incident to the homebase for the
	// first three frames of each: the boot beacon and the first agent
	// dispatches are parked in the cut and released, in per-link order,
	// when it heals 600 logical units later.
	islanded := &faults.Plan{Name: "homebase-islanded", Seed: 16, Faults: []faults.Fault{
		{Kind: faults.Partition, Target: faults.LinksTarget(faults.IslandLinks(0, d)),
			At: 1, Until: 3, Delay: 600},
	}}

	// Host 1 is single-fed (its only smaller neighbour is the root), so
	// its ledger holds exactly 2 entries — beacon, first dispatch — when
	// frame 2 fires the cascade: threshold 2 trips deterministically and
	// crashes its larger neighbours.
	cascade := &faults.Plan{Name: "crash-cascade", Seed: 17, Faults: []faults.Fault{
		{Kind: faults.Cascade, Target: faults.LinkTarget(0, 1), At: 2,
			Threshold: 2, Victims: cascadeVictims(d)},
	}}

	return []*faults.Plan{lossy, dup, blackout, crash, mixed, islanded, cascade}
}

// cascadeVictims returns up to two of host 1's larger hypercube
// neighbours (1^2=3, 1^4=5), the secondary-crash targets of the
// crash-cascade plan.
func cascadeVictims(d int) []int {
	victims := []int{3}
	if d >= 3 {
		victims = append(victims, 5)
	}
	return victims
}

// checkFaultedStats asserts the non-negotiables of a faulted run: it
// terminated with all nodes clean, monotone and contiguous, with zero
// recontaminations.
func checkFaultedStats(t *testing.T, s Stats, plan string) {
	t.Helper()
	if !s.Captured || !s.MonotoneOK || !s.ContiguousOK {
		t.Errorf("%s: faulted run not clean: captured=%v monotone=%v contiguous=%v",
			plan, s.Captured, s.MonotoneOK, s.ContiguousOK)
	}
	if s.Recontaminations != 0 {
		t.Errorf("%s: %d recontaminations under faults", plan, s.Recontaminations)
	}
}

// TestFaultedRunsTerminateClean drives both engines through every
// scenario with both validator implementations and asserts the run is
// indistinguishable from a clean one at the protocol level: same
// moves, same message counts, all nodes clean.
func TestFaultedRunsTerminateClean(t *testing.T) {
	for d := 2; d <= 8; d++ {
		if testing.Short() && d > 5 {
			continue
		}
		for _, mode := range []ValidatorMode{ValidatorStriped, ValidatorLocked} {
			base := Config{Seed: int64(31*d + 7), MaxLatency: 300 * time.Microsecond, Validator: mode}
			cleanVis := Run(d, base)
			cleanClone := RunCloning(d, base)
			for _, plan := range netsimFaultPlans(d) {
				cfg := base
				cfg.Faults = plan
				name := fmt.Sprintf("d=%d mode=%d plan=%s", d, mode, plan.Name)

				s := Run(d, cfg)
				checkFaultedStats(t, s, name+" visibility")
				if s.AgentMoves != cleanVis.AgentMoves || s.AgentMessages != cleanVis.AgentMessages ||
					s.BeaconMessages != cleanVis.BeaconMessages || s.TeamSize != cleanVis.TeamSize {
					t.Errorf("%s: recovery changed the logical run: faulted {moves=%d agents=%d beacons=%d team=%d} clean {%d %d %d %d}",
						name, s.AgentMoves, s.AgentMessages, s.BeaconMessages, s.TeamSize,
						cleanVis.AgentMoves, cleanVis.AgentMessages, cleanVis.BeaconMessages, cleanVis.TeamSize)
				}

				c := RunCloning(d, cfg)
				checkFaultedStats(t, c, name+" cloning")
				if c.AgentMoves != cleanClone.AgentMoves || c.AgentMessages != cleanClone.AgentMessages ||
					c.BeaconMessages != cleanClone.BeaconMessages {
					t.Errorf("%s cloning: recovery changed the logical run", name)
				}
			}
		}
	}
}

// TestFaultedStatsDeterministic reruns every faulted scenario and
// requires byte-identical Stats — including the wire Summary — which
// is what hqfaults' -verify replay rests on.
func TestFaultedStatsDeterministic(t *testing.T) {
	for _, d := range []int{3, 6} {
		if testing.Short() && d > 5 {
			continue
		}
		for _, plan := range netsimFaultPlans(d) {
			cfg := Config{Seed: int64(d) * 97, MaxLatency: 250 * time.Microsecond, Faults: plan}
			a, b := Run(d, cfg), Run(d, cfg)
			if a != b {
				t.Errorf("d=%d plan=%s: visibility stats differ across reruns:\n%+v\n%+v", d, plan.Name, a, b)
			}
			ca, cb := RunCloning(d, cfg), RunCloning(d, cfg)
			if ca != cb {
				t.Errorf("d=%d plan=%s: cloning stats differ across reruns:\n%+v\n%+v", d, plan.Name, ca, cb)
			}
		}
	}
}

// TestFaultedWireAccounting pins the deterministic wire counters of
// two scenarios whose schedules are easy to derive by hand.
func TestFaultedWireAccounting(t *testing.T) {
	d := 4
	plans := netsimFaultPlans(d)

	crash := plans[3]
	s := Run(d, Config{Seed: 5, Faults: crash})
	if s.Link.Crashes != 1 {
		t.Errorf("host-crash plan fired %d crashes, want 1 (%+v)", s.Link.Crashes, s.Link)
	}

	blackout := plans[2]
	s = Run(d, Config{Seed: 5, Faults: blackout})
	wantDrops := int64(3 * d) // d beacon links into the last node, 3 attempts swallowed each
	if s.Link.Drops != wantDrops || s.Link.Retransmits != wantDrops {
		t.Errorf("beacon-blackout: drops=%d retransmits=%d, want %d each", s.Link.Drops, s.Link.Retransmits, wantDrops)
	}
	if s.Link.Frames == 0 {
		t.Error("beacon-blackout: no frames crossed the wire layer")
	}
}

// TestDualValidatorUnderLinkFaults runs every scenario with the dual
// validator, which t.Errors on any field divergence between the
// locked and striped implementations while both observe the faulted
// event stream.
func TestDualValidatorUnderLinkFaults(t *testing.T) {
	for d := 2; d <= 8; d++ {
		if testing.Short() && d > 5 {
			continue
		}
		for _, plan := range netsimFaultPlans(d) {
			cfg := Config{
				Seed:       int64(13*d + 3),
				MaxLatency: 200 * time.Microsecond,
				Faults:     plan,
				newValidator: func(h *hypercube.Hypercube) validator {
					return newDualValidator(t, h)
				},
			}
			s := Run(d, cfg)
			checkFaultedStats(t, s, fmt.Sprintf("dual d=%d plan=%s visibility", d, plan.Name))
			c := RunCloning(d, cfg)
			checkFaultedStats(t, c, fmt.Sprintf("dual d=%d plan=%s cloning", d, plan.Name))
		}
	}
}

// deliveryOnlyPlans filters the campaign to the plans the coordinated
// engine accepts: everything except host-crash/cascade shapes.
func deliveryOnlyPlans(d int) []*faults.Plan {
	var out []*faults.Plan
	for _, p := range netsimFaultPlans(d) {
		if !p.HasHostCrashFaults() {
			out = append(out, p)
		}
	}
	return out
}

// TestCleanFaultedRunsTerminateClean drives the coordinated engine
// through every delivery-fault scenario (drop, dup, delay, partition):
// recovery must leave the logical run — moves, team size, invariants —
// byte-identical to the fault-free one.
func TestCleanFaultedRunsTerminateClean(t *testing.T) {
	for d := 2; d <= 8; d++ {
		if testing.Short() && d > 5 {
			continue
		}
		for _, mode := range []ValidatorMode{ValidatorStriped, ValidatorLocked} {
			base := Config{Seed: int64(17*d + 1), MaxLatency: 300 * time.Microsecond, Validator: mode}
			fresh := RunClean(d, base)
			for _, plan := range deliveryOnlyPlans(d) {
				cfg := base
				cfg.Faults = plan
				name := fmt.Sprintf("clean d=%d mode=%d plan=%s", d, mode, plan.Name)
				s := RunClean(d, cfg)
				checkFaultedStats(t, s, name)
				if s.TotalMoves != fresh.TotalMoves || s.SyncMoves != fresh.SyncMoves ||
					s.AgentMoves != fresh.AgentMoves || s.TeamSize != fresh.TeamSize {
					t.Errorf("%s: recovery changed the logical run: faulted {total=%d sync=%d agent=%d team=%d} clean {%d %d %d %d}",
						name, s.TotalMoves, s.SyncMoves, s.AgentMoves, s.TeamSize,
						fresh.TotalMoves, fresh.SyncMoves, fresh.AgentMoves, fresh.TeamSize)
				}
			}
		}
	}
}

// TestCleanFaultedStatsDeterministic is the -verify contract for the
// coordinated engine: byte-identical Stats, including the wire Summary
// and its WireTime bill, across reruns of each delivery-fault plan.
func TestCleanFaultedStatsDeterministic(t *testing.T) {
	for _, d := range []int{3, 6} {
		if testing.Short() && d > 5 {
			continue
		}
		for _, plan := range deliveryOnlyPlans(d) {
			cfg := Config{Seed: int64(d) * 89, MaxLatency: 250 * time.Microsecond, Faults: plan}
			a, b := RunClean(d, cfg), RunClean(d, cfg)
			if a != b {
				t.Errorf("d=%d plan=%s: clean-engine stats differ across reruns:\n%+v\n%+v", d, plan.Name, a, b)
			}
		}
	}
}

// TestCleanRejectsHostCrashPlans pins the engine-config contract: the
// coordinated engine, whose protocol state rides the messages, must
// refuse crash and cascade plans loudly instead of running them wrong.
func TestCleanRejectsHostCrashPlans(t *testing.T) {
	plan := &faults.Plan{Name: "bad", Seed: 1, Faults: []faults.Fault{
		{Kind: faults.HostCrash, Target: faults.LinkTarget(0, 1), At: 1},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on a host-crash plan for the clean engine")
		}
	}()
	RunClean(3, Config{Seed: 1, Faults: plan})
}

// TestEnginesRejectOutOfRangeTargets is the regression test for the
// silently-inert-fault bug: a link target naming a host outside 2^d
// must be rejected at engine-config time by all three engines, not
// compiled into a trigger that never fires.
func TestEnginesRejectOutOfRangeTargets(t *testing.T) {
	plan := &faults.Plan{Name: "oob", Seed: 1, Faults: []faults.Fault{
		{Kind: faults.LinkDrop, Target: faults.LinkTarget(8, 9), At: 1},
	}}
	runs := map[string]func(){
		"visibility": func() { Run(3, Config{Seed: 1, Faults: plan}) },
		"cloning":    func() { RunCloning(3, Config{Seed: 1, Faults: plan}) },
		"clean":      func() { RunClean(3, Config{Seed: 1, Faults: plan}) },
	}
	for name, run := range runs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-range link target was accepted silently", name)
				}
			}()
			run()
		}()
	}
}

// TestPartitionAndCascadeWireAccounting pins the new deterministic
// counters at the engine level: the islanded homebase parks a known
// set of frames and bills their heal time, and the cascade fires its
// primary plus every victim.
func TestPartitionAndCascadeWireAccounting(t *testing.T) {
	d := 4
	plans := netsimFaultPlans(d)

	islanded := plans[5]
	s := Run(d, Config{Seed: 5, Faults: islanded})
	if s.Link.Partitioned == 0 {
		t.Errorf("homebase-islanded parked no frames: %+v", s.Link)
	}
	if want := s.Link.Partitioned * 600; s.Link.WireTime != want {
		t.Errorf("islanded WireTime = %d, want Partitioned×600 = %d (%+v)", s.Link.WireTime, want, s.Link)
	}

	cascade := plans[6]
	s = Run(d, Config{Seed: 5, Faults: cascade})
	if s.Link.Crashes != 1 {
		t.Errorf("crash-cascade fired %d primary crashes, want 1 (%+v)", s.Link.Crashes, s.Link)
	}
	if want := int64(len(cascadeVictims(d))); s.Link.Cascades != want {
		t.Errorf("crash-cascade fired %d secondary crashes, want %d (%+v)", s.Link.Cascades, want, s.Link)
	}
}
