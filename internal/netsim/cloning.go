package netsim

import (
	"fmt"
	"sync"

	"hypersearch/internal/bits"
)

// CloningName identifies the message-passing cloning run in results.
const CloningName = "cloning-netsim"

// RunCloning executes the Section-5 cloning variant on the network
// engine: a single agent message seeds the homebase; every host that
// gathers its (single) arrival and sees its smaller neighbours ready
// clones locally — cloning costs no messages — and sends exactly one
// agent down each broadcast-tree edge. Total agent migrations: n-1,
// the minimum possible, making the variant the message-optimal
// realization of the visibility model.
func RunCloning(d int, cfg Config) Stats { return RunCloningOn(NewFabric(d), cfg) }

// RunCloningOn executes the cloning variant on a caller-owned fabric,
// reusing its mailboxes, scratch and validator; like RunOn, it drains
// the timer quiescence barrier before returning.
func RunCloningOn(f *Fabric, cfg Config) Stats {
	f.begin()
	val := f.validator(cfg)
	seed := val.place()
	if f.d == 0 {
		val.terminate(seed, 0)
		s := val.stats(1, 0, 0)
		s.Strategy = CloningName
		f.complete()
		return s
	}

	net := f.visNetwork(cfg, val)

	var wg sync.WaitGroup
	wg.Add(f.h.Order())
	for v := 0; v < f.h.Order(); v++ {
		go net.cloningHost(&wg, v)
	}
	net.boxes[0].Send(Message{Kind: AgentArrival, From: 0, Agent: seed})
	wg.Wait()
	net.quiesce()

	s := val.stats(val.agents(), net.agentMsgs.Load(), net.beaconMsgs.Load())
	if net.fl != nil {
		s.Link = net.fl.SummaryStats()
	}
	s.Strategy = CloningName
	f.complete()
	return s
}

// cloningHost runs one host's cloning loop and joins the run's
// WaitGroup (closure-free spawn, like visHost).
func (n *network) cloningHost(wg *sync.WaitGroup, v int) {
	defer wg.Done()
	runCloningHost(n, v)
}

// runCloningHost is the local cloning rule: one arrival, clone for the
// children, beacon the dependents. The gathered scratch doubles as the
// movers list at dispatch.
func runCloningHost(n *network, v int) {
	sc := &n.scratch[v]
	sc.rng = newHostRNG(n.cfg.Seed, v, streamCloning)
	rng := &sc.rng
	smaller := n.h.SmallerNeighbours(v)
	allReady := readyMask(len(smaller))

	sc.gathered = sc.gathered[:0]
	sc.ready = 0
	incumbent := -1
	dispatched := false

	for {
		m, ok := n.boxes[v].Recv()
		if !ok {
			break
		}
		if dispatched {
			// Retired: only crash markers and replays can trail the
			// dispatch trigger in the drain.
			continue
		}
		switch m.Kind {
		case AgentArrival:
			if !m.Replay {
				n.val.arrive(m.Agent, m.From, v)
			}
			incumbent = m.Agent
			for i, w := range n.h.Neighbours(v) {
				if i+1 <= bits.Msb(bits.Node(w)) {
					n.send(rng, w, Message{Kind: GuardedBeacon, From: v})
				}
			}
		case GuardedBeacon:
			if i := indexOf(smaller, m.From); i >= 0 {
				sc.ready |= 1 << uint(i)
			}
		case HostRestart:
			// Amnesia crash: the ledger replay behind this marker
			// rebuilds incumbent/ready; re-beacons collapse in the
			// idempotent sender.
			incumbent = -1
			sc.ready = 0
			continue
		default:
			panic(fmt.Sprintf("netsim: cloning host %d got message kind %d", v, m.Kind))
		}
		if incumbent < 0 || sc.ready != allReady {
			continue
		}
		dispatched = true
		children := n.bt.Children(v)
		if len(children) == 0 {
			n.val.terminate(incumbent, v)
			n.boxes[v].Close()
			continue
		}
		// The incumbent continues to the first child; clones take the
		// rest. Cloning is host-local: no messages, no latency.
		movers := append(sc.gathered[:0], incumbent)
		for i := 1; i < len(children); i++ {
			movers = append(movers, n.val.clone(v))
		}
		sc.gathered = movers
		for i, child := range children {
			n.val.depart(movers[i], v)
			n.send(rng, child, Message{Kind: AgentArrival, From: v, Agent: movers[i]})
		}
		n.boxes[v].Close()
	}
}
