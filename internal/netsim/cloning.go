package netsim

import (
	"fmt"
	"math/rand"
	"sync"

	"hypersearch/internal/bits"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
)

// CloningName identifies the message-passing cloning run in results.
const CloningName = "cloning-netsim"

// RunCloning executes the Section-5 cloning variant on the network
// engine: a single agent message seeds the homebase; every host that
// gathers its (single) arrival and sees its smaller neighbours ready
// clones locally — cloning costs no messages — and sends exactly one
// agent down each broadcast-tree edge. Total agent migrations: n-1,
// the minimum possible, making the variant the message-optimal
// realization of the visibility model.
func RunCloning(d int, cfg Config) Stats {
	h := hypercube.New(d)
	bt := heapqueue.New(d)

	val := cfg.makeValidator(h)
	seed := val.place()
	if d == 0 {
		val.terminate(seed, 0)
		s := val.stats(1, 0, 0)
		s.Strategy = CloningName
		return s
	}

	net := &network{
		h: h, bt: bt, cfg: cfg, val: val,
		boxes: make([]*Mailbox, h.Order()),
	}
	for v := range net.boxes {
		net.boxes[v] = NewMailbox()
	}
	net.wireFaults()

	var wg sync.WaitGroup
	for v := 0; v < h.Order(); v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			runCloningHost(net, v)
		}(v)
	}
	net.boxes[0].Send(Message{Kind: AgentArrival, From: 0, Agent: seed})
	wg.Wait()

	s := val.stats(val.agents(), net.agentMsgs.Load(), net.beaconMsgs.Load())
	if net.fl != nil {
		s.Link = net.fl.SummaryStats()
	}
	s.Strategy = CloningName
	return s
}

// runCloningHost is the local cloning rule: one arrival, clone for the
// children, beacon the dependents.
func runCloningHost(n *network, v int) {
	rng := rand.New(rand.NewSource(n.cfg.Seed ^ int64(v)*0x01000193))
	smaller := n.h.SmallerNeighbours(v)
	ready := make(map[int]bool, len(smaller))
	incumbent := -1
	dispatched := false

	for {
		m, ok := n.boxes[v].Recv()
		if !ok {
			break
		}
		if dispatched {
			// Retired: only crash markers and replays can trail the
			// dispatch trigger in the drain.
			continue
		}
		switch m.Kind {
		case AgentArrival:
			if !m.Replay {
				n.val.arrive(m.Agent, m.From, v)
			}
			incumbent = m.Agent
			for i, w := range n.h.Neighbours(v) {
				if i+1 <= bits.Msb(bits.Node(w)) {
					n.send(rng, w, Message{Kind: GuardedBeacon, From: v})
				}
			}
		case GuardedBeacon:
			ready[m.From] = true
		case HostRestart:
			// Amnesia crash: the ledger replay behind this marker
			// rebuilds incumbent/ready; re-beacons collapse in the
			// idempotent sender.
			incumbent = -1
			clear(ready)
			continue
		default:
			panic(fmt.Sprintf("netsim: cloning host %d got message kind %d", v, m.Kind))
		}
		if incumbent < 0 || !allReady(smaller, ready) {
			continue
		}
		dispatched = true
		children := n.bt.Children(v)
		if len(children) == 0 {
			n.val.terminate(incumbent, v)
			n.boxes[v].Close()
			continue
		}
		// The incumbent continues to the first child; clones take the
		// rest. Cloning is host-local: no messages, no latency.
		movers := []int{incumbent}
		for i := 1; i < len(children); i++ {
			movers = append(movers, n.val.clone(v))
		}
		for i, child := range children {
			n.val.depart(movers[i], v)
			n.send(rng, child, Message{Kind: AgentArrival, From: v, Agent: movers[i]})
		}
		n.boxes[v].Close()
	}
}
