// Package intruder models the hostile agent being captured. The
// worst-case adversary is already built into the board's contamination
// closure (an arbitrarily fast, omniscient intruder can be anywhere in
// the contaminated set); this package adds a concrete randomized
// intruder token that moves inside that set, used by demos and by
// property tests validating the closure model: the token is always
// inside the closure, and it is caught exactly when the closure runs
// dry.
package intruder

import (
	"math/rand"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
)

// Intruder is a concrete intruder token on a board. It is adversarial
// within its information: after every agent action it relocates, if
// necessary, anywhere in the contaminated region (it moves arbitrarily
// fast, so any contaminated node reachable through unguarded territory
// is available — which is the whole contaminated set, by the closure's
// construction).
type Intruder struct {
	g      graph.Graph
	b      *board.Board
	rng    *rand.Rand
	at     int
	caught bool
	moves  int64
}

// New places an intruder on a uniformly random contaminated node. If
// the board is already fully clean the intruder starts caught.
func New(g graph.Graph, b *board.Board, seed int64) *Intruder {
	in := &Intruder{g: g, b: b, rng: rand.New(rand.NewSource(seed)), at: -1}
	in.relocate()
	return in
}

// At returns the intruder's node, or -1 once caught.
func (in *Intruder) At() int {
	if in.caught {
		return -1
	}
	return in.at
}

// Caught reports whether the intruder has been captured.
func (in *Intruder) Caught() bool { return in.caught }

// Moves returns how many times the intruder relocated.
func (in *Intruder) Moves() int64 { return in.moves }

// React updates the intruder after an agent action: if its node is no
// longer contaminated (an agent arrived or the region was sealed), it
// flees to a random contaminated node; if none exists, it is captured.
func (in *Intruder) React() {
	if in.caught {
		return
	}
	if in.at >= 0 && in.b.StateOf(in.at) == board.Contaminated {
		return // still safe where it is
	}
	in.relocate()
}

func (in *Intruder) relocate() {
	options := make([]int, 0)
	for v := 0; v < in.g.Order(); v++ {
		if in.b.StateOf(v) == board.Contaminated {
			options = append(options, v)
		}
	}
	if len(options) == 0 {
		in.caught = true
		in.at = -1
		return
	}
	next := options[in.rng.Intn(len(options))]
	if next != in.at {
		in.moves++
	}
	in.at = next
}

// InsideClosure reports whether the intruder is consistent with the
// worst-case model: caught, or standing on a contaminated node.
func (in *Intruder) InsideClosure() bool {
	return in.caught || in.b.StateOf(in.at) == board.Contaminated
}
