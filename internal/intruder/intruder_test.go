package intruder

import (
	"testing"

	"hypersearch/internal/board"
	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
)

func pathGraph(n int) graph.Graph {
	g := graph.NewAdjacency(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestIntruderStartsContaminated(t *testing.T) {
	g := pathGraph(5)
	b := board.New(g, 0)
	in := New(g, b, 1)
	if in.Caught() {
		t.Fatal("intruder caught before the search began")
	}
	if at := in.At(); at <= 0 || at >= 5 {
		t.Fatalf("intruder at %d", at)
	}
	if !in.InsideClosure() {
		t.Error("intruder outside the contaminated closure")
	}
}

func TestIntruderFleesAndIsCaught(t *testing.T) {
	g := pathGraph(4)
	b := board.New(g, 0)
	a := b.Place(0)
	in := New(g, b, 42)
	for v := 1; v < 4; v++ {
		b.Move(a, v, int64(v))
		in.React()
		if !in.InsideClosure() {
			t.Fatalf("intruder escaped the closure at step %d", v)
		}
	}
	if !in.Caught() || in.At() != -1 {
		t.Fatal("intruder should be caught after the sweep")
	}
	// Reacting after capture is a no-op.
	in.React()
	if !in.Caught() {
		t.Fatal("capture must be permanent")
	}
}

func TestIntruderCaughtImmediatelyOnCleanBoard(t *testing.T) {
	g := pathGraph(1)
	b := board.New(g, 0)
	in := New(g, b, 3)
	if !in.Caught() {
		t.Fatal("no contaminated node exists; intruder must start caught")
	}
}

func TestIntruderExploitsRecontamination(t *testing.T) {
	// On a cycle a single agent leaks territory; the intruder must
	// always find a contaminated node to stand on.
	g := graph.NewAdjacency(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	b := board.New(g, 0)
	a := b.Place(0)
	in := New(g, b, 7)
	cur := 0
	for step := 1; step <= 20; step++ {
		cur = (cur + 1) % 5
		b.Move(a, cur, int64(step))
		in.React()
		if in.Caught() {
			t.Fatal("a single agent cannot catch the intruder on a cycle")
		}
		if !in.InsideClosure() {
			t.Fatal("intruder left the closure")
		}
	}
	if b.Recontaminations() == 0 {
		t.Error("expected recontaminations on the cycle chase")
	}
}

func TestIntruderDeterministicPerSeed(t *testing.T) {
	g := hypercube.New(4)
	run := func(seed int64) []int {
		b := board.New(g, 0)
		a := b.Place(0)
		in := New(g, b, seed)
		var positions []int
		cur := 0
		for step := 1; step <= 30; step++ {
			ns := g.Neighbours(cur)
			cur = ns[step%len(ns)]
			b.Move(a, cur, int64(step))
			in.React()
			positions = append(positions, in.At())
		}
		return positions
	}
	p1, p2 := run(11), run(11)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("intruder not deterministic for equal seeds")
		}
	}
}

func TestIntruderMovesCounted(t *testing.T) {
	g := pathGraph(3)
	b := board.New(g, 0)
	a := b.Place(0)
	in := New(g, b, 5)
	start := in.Moves()
	b.Move(a, 1, 1)
	in.React()
	b.Move(a, 2, 2)
	in.React()
	if !in.Caught() {
		t.Fatal("should be caught")
	}
	if in.Moves() < start {
		t.Error("move counter went backwards")
	}
}
