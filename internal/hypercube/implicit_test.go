package hypercube

import (
	"reflect"
	"strings"
	"testing"
)

// TestImplicitMatchesMaterialized: the XOR-computed representation
// must agree with the cached adjacency lists on every query the
// engines use, in the exact same order — determinism of every engine
// rides on the iteration order being identical.
func TestImplicitMatchesMaterialized(t *testing.T) {
	for d := 0; d <= 8; d++ {
		m, im := New(d), Implicit(d)
		if m.Order() != im.Order() || m.Size() != im.Size() || m.Dim() != im.Dim() {
			t.Fatalf("d=%d: order/size/dim differ", d)
		}
		if m.IsImplicit() || !im.IsImplicit() {
			t.Fatalf("d=%d: IsImplicit flags wrong", d)
		}
		collect := func(visit func(func(int) bool)) []int {
			var out []int
			visit(func(w int) bool { out = append(out, w); return true })
			return out
		}
		for v := 0; v < m.Order(); v++ {
			if !reflect.DeepEqual(m.Neighbours(v), im.Neighbours(v)) {
				t.Fatalf("d=%d v=%d: Neighbours differ", d, v)
			}
			if got := collect(func(y func(int) bool) { im.VisitNeighbours(v, y) }); !reflect.DeepEqual(got, m.Neighbours(v)) && !(len(got) == 0 && len(m.Neighbours(v)) == 0) {
				t.Fatalf("d=%d v=%d: VisitNeighbours %v, want %v", d, v, got, m.Neighbours(v))
			}
			if !reflect.DeepEqual(m.SmallerNeighbours(v), im.SmallerNeighbours(v)) ||
				!reflect.DeepEqual(m.BiggerNeighbours(v), im.BiggerNeighbours(v)) {
				t.Fatalf("d=%d v=%d: partition neighbours differ", d, v)
			}
			for _, w := range m.Neighbours(v) {
				if !im.HasEdge(v, w) || im.Label(v, w) != m.Label(v, w) {
					t.Fatalf("d=%d: edge (%d,%d) disagrees", d, v, w)
				}
			}
			if im.HasEdge(v, v) {
				t.Fatalf("d=%d: self-loop at %d", d, v)
			}
		}
		for l := 0; l <= d; l++ {
			if !reflect.DeepEqual(m.NodesAtLevel(l), im.NodesAtLevel(l)) {
				t.Fatalf("d=%d l=%d: NodesAtLevel differ", d, l)
			}
			if got := collect(func(y func(int) bool) { im.VisitNodesAtLevel(l, y) }); !reflect.DeepEqual(got, m.NodesAtLevel(l)) {
				t.Fatalf("d=%d l=%d: VisitNodesAtLevel %v, want %v", d, l, got, m.NodesAtLevel(l))
			}
		}
	}
}

// TestForDimThreshold: ForDim materializes up to MaterializeLimit and
// goes implicit beyond, transparently crossing the d>24 wall that New
// enforces.
func TestForDimThreshold(t *testing.T) {
	if ForDim(MaterializeLimit).IsImplicit() {
		t.Errorf("ForDim(%d) should materialize", MaterializeLimit)
	}
	if !ForDim(MaterializeLimit + 1).IsImplicit() {
		t.Errorf("ForDim(%d) should be implicit", MaterializeLimit+1)
	}
	big := ForDim(26) // beyond MaxMaterializedDim: only possible implicitly
	if big.Order() != 1<<26 || len(big.Neighbours(5)) != 26 {
		t.Error("implicit ForDim(26) wrong")
	}
}

// TestNewPanicNamesImplicit: the refusal to materialize a huge board
// must tell the caller what to use instead.
func TestNewPanicNamesImplicit(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New(25) did not panic")
		}
		if !strings.Contains(r.(string), "Implicit") {
			t.Errorf("panic %q does not name hypercube.Implicit", r)
		}
	}()
	New(MaxMaterializedDim + 1)
}
