package hypercube

import (
	"testing"

	"hypersearch/internal/bits"
)

// TestNextHopTowardMatchesShortestPath: stepping NextHopToward from v
// visits exactly the vertices ShortestPath(v, w) returns, for every
// pair — the incremental router and the slice-returning one implement
// the same canonical path (clear low bits first, then set low bits
// first).
func TestNextHopTowardMatchesShortestPath(t *testing.T) {
	for d := 0; d <= 6; d++ {
		h := New(d)
		for v := 0; v < h.Order(); v++ {
			for w := 0; w < h.Order(); w++ {
				want := h.ShortestPath(v, w)
				got := []int{v}
				for cur := v; cur != w; {
					next := h.NextHopToward(cur, w)
					if next == cur {
						t.Fatalf("d=%d: NextHopToward(%d,%d) stalled before arrival", d, cur, w)
					}
					got = append(got, next)
					cur = next
					if len(got) > d+2 {
						t.Fatalf("d=%d: walk %d->%d did not terminate", d, v, w)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("d=%d %d->%d: stepped %v, want %v", d, v, w, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("d=%d %d->%d: stepped %v, want %v", d, v, w, got, want)
					}
				}
			}
		}
	}
}

// TestNextHopTowardAtDestination: the function is a fixed point at the
// destination.
func TestNextHopTowardAtDestination(t *testing.T) {
	h := New(4)
	for v := 0; v < h.Order(); v++ {
		if got := h.NextHopToward(v, v); got != v {
			t.Fatalf("NextHopToward(%d,%d) = %d, want fixed point", v, v, got)
		}
	}
}

// TestCachedNeighbourPartitions: the cached smaller/bigger lists match
// the bits-level definitions and partition the neighbour row.
func TestCachedNeighbourPartitions(t *testing.T) {
	for d := 0; d <= 6; d++ {
		h := New(d)
		for v := 0; v < h.Order(); v++ {
			s, b := h.SmallerNeighbours(v), h.BiggerNeighbours(v)
			ws := bits.SmallerNeighbours(bits.Node(v), d)
			wb := bits.BiggerNeighbours(bits.Node(v), d)
			if len(s) != len(ws) || len(b) != len(wb) {
				t.Fatalf("d=%d v=%d: partition sizes %d/%d, want %d/%d", d, v, len(s), len(b), len(ws), len(wb))
			}
			for i, x := range ws {
				if s[i] != int(x) {
					t.Fatalf("d=%d v=%d: smaller[%d]=%d, want %d", d, v, i, s[i], int(x))
				}
			}
			for i, x := range wb {
				if b[i] != int(x) {
					t.Fatalf("d=%d v=%d: bigger[%d]=%d, want %d", d, v, i, b[i], int(x))
				}
			}
			if len(s)+len(b) != d {
				t.Fatalf("d=%d v=%d: partition does not cover all %d neighbours", d, v, d)
			}
		}
	}
}

// TestNeighbourQueriesZeroAlloc: the cached topology queries allocate
// nothing.
func TestNeighbourQueriesZeroAlloc(t *testing.T) {
	h := New(8)
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < h.Order(); v++ {
			_ = h.Neighbours(v)
			_ = h.SmallerNeighbours(v)
			_ = h.BiggerNeighbours(v)
			_ = h.NextHopToward(v, h.Order()-1-v)
		}
	})
	if allocs != 0 {
		t.Fatalf("topology queries allocate %.0f per sweep, want 0", allocs)
	}
}
