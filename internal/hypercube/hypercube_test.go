package hypercube

import (
	"testing"
	"testing/quick"

	"hypersearch/internal/bits"
	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
)

func TestOrderAndSize(t *testing.T) {
	for d := 0; d <= 10; d++ {
		h := New(d)
		if h.Order() != 1<<d {
			t.Errorf("d=%d order = %d", d, h.Order())
		}
		wantEdges := 0
		if d > 0 {
			wantEdges = d << (d - 1)
		}
		if h.Size() != wantEdges {
			t.Errorf("d=%d size = %d, want %d", d, h.Size(), wantEdges)
		}
		if graph.Size(h) != wantEdges {
			t.Errorf("d=%d graph.Size disagrees", d)
		}
	}
}

func TestNeighbourStructure(t *testing.T) {
	const d = 6
	h := New(d)
	for v := 0; v < h.Order(); v++ {
		ns := h.Neighbours(v)
		if len(ns) != d {
			t.Fatalf("v=%d has %d neighbours", v, len(ns))
		}
		for i, w := range ns {
			if h.Label(v, w) != i+1 {
				t.Errorf("v=%d neighbour %d: label %d at slot %d", v, w, h.Label(v, w), i)
			}
			if h.Distance(v, w) != 1 {
				t.Errorf("v=%d neighbour %d at distance %d", v, w, h.Distance(v, w))
			}
		}
	}
}

func TestConnectedAndBipartiteLevels(t *testing.T) {
	h := New(7)
	if !graph.Connected(h) {
		t.Fatal("H_7 must be connected")
	}
	// Edges only join consecutive levels.
	for v := 0; v < h.Order(); v++ {
		for _, w := range h.Neighbours(v) {
			if diff := h.Level(v) - h.Level(w); diff != 1 && diff != -1 {
				t.Fatalf("edge (%d,%d) joins levels %d and %d", v, w, h.Level(v), h.Level(w))
			}
		}
	}
}

func TestBFSMatchesHamming(t *testing.T) {
	h := New(6)
	dist := graph.BFS(h, 0)
	for v := 0; v < h.Order(); v++ {
		if dist[v] != h.Level(v) {
			t.Errorf("BFS dist to %d = %d, level = %d", v, dist[v], h.Level(v))
		}
	}
}

func TestSmallerBiggerSplit(t *testing.T) {
	const d = 5
	h := New(d)
	for v := 0; v < h.Order(); v++ {
		s, b := h.SmallerNeighbours(v), h.BiggerNeighbours(v)
		if len(s)+len(b) != d {
			t.Fatalf("v=%d: split %d+%d", v, len(s), len(b))
		}
		for _, w := range b {
			if bits.Parent(bits.Node(w)) != bits.Node(v) {
				t.Errorf("bigger neighbour %d of %d is not a tree child", w, v)
			}
		}
	}
}

func TestNodesAtLevelAndClassPartition(t *testing.T) {
	const d = 7
	h := New(d)
	seen := make([]bool, h.Order())
	for l := 0; l <= d; l++ {
		nodes := h.NodesAtLevel(l)
		if int64(len(nodes)) != combin.NodesAtLevel(d, l) {
			t.Errorf("level %d has %d nodes", l, len(nodes))
		}
		for _, v := range nodes {
			if seen[v] {
				t.Fatalf("node %d in two levels", v)
			}
			seen[v] = true
		}
	}
	seenClass := make([]bool, h.Order())
	for i := 0; i <= d; i++ {
		nodes := h.NodesInClass(i)
		if int64(len(nodes)) != combin.ClassSize(d, i) {
			t.Errorf("class %d has %d nodes", i, len(nodes))
		}
		for _, v := range nodes {
			if h.Class(v) != i {
				t.Errorf("node %d in class list %d but Class=%d", v, i, h.Class(v))
			}
			if seenClass[v] {
				t.Fatalf("node %d in two classes", v)
			}
			seenClass[v] = true
		}
	}
}

func TestShortestPathProperties(t *testing.T) {
	const d = 6
	h := New(d)
	f := func(a, b uint16) bool {
		v, w := int(a)%h.Order(), int(b)%h.Order()
		p := h.ShortestPath(v, w)
		if p[0] != v || p[len(p)-1] != w || len(p) != h.Distance(v, w)+1 {
			return false
		}
		for i := 1; i < len(p); i++ {
			if h.Distance(p[i-1], p[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIndexNodeRoundTrip(t *testing.T) {
	h := New(5)
	for v := 0; v < h.Order(); v++ {
		if h.Index(h.Node(v)) != v {
			t.Fatalf("round trip broken at %d", v)
		}
	}
	if h.String(5) != "00101" {
		t.Errorf("String(5) = %q", h.String(5))
	}
}

func TestNewPanicsOnHugeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(25) did not panic")
		}
	}()
	New(25)
}

func TestH0AndH1(t *testing.T) {
	h0 := New(0)
	if h0.Order() != 1 || len(h0.Neighbours(0)) != 0 {
		t.Error("H_0 wrong")
	}
	h1 := New(1)
	if h1.Order() != 2 || h1.Neighbours(0)[0] != 1 || h1.Label(0, 1) != 1 {
		t.Error("H_1 wrong")
	}
}
