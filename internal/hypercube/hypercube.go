// Package hypercube implements the d-dimensional hypercube topology
// H_d used by the paper: n = 2^d nodes, d*2^(d-1) edges, port labels
// λ_x(x,y) equal to the position of the differing bit, the level
// decomposition, and the class decomposition C_i of Section 4.
//
// Nodes are identified both by their bitstring (bits.Node) and by the
// dense integer index used by internal/graph; for the hypercube these
// coincide numerically, so the conversion is a cast.
//
// Two representations share the one Hypercube type:
//
//   - New(d) materializes per-node neighbour caches (n*d ints plus the
//     Definition-2 partitions and the level buckets), making the
//     slice-returning Graph interface allocation-free. Cheap through
//     mid dimensions, prohibitive past d=24 (~3 GiB).
//   - Implicit(d) stores nothing but d: every query is computed on the
//     fly by XOR bit-flips. Slice-returning accessors then allocate
//     per call, but the Visit* methods iterate allocation-free in the
//     exact same label order — the big-board engines (d >= 20, a
//     million nodes and up) run entirely on those.
//
// ForDim picks automatically: materialized up to MaterializeLimit,
// implicit beyond.
package hypercube

import (
	"fmt"

	"hypersearch/internal/bits"
	"hypersearch/internal/graph"
)

// MaterializeLimit is the largest dimension ForDim materializes
// neighbour caches for. Above it (2^16 nodes, ~8 MiB of cache) the
// implicit representation wins: no O(n*d) memory, no cache misses on
// the neighbour rows, identical iteration order.
const MaterializeLimit = 16

// MaxMaterializedDim is the hard ceiling for New: past it the caches
// alone are gigabytes. Implicit has no such ceiling below bits.MaxDim.
const MaxMaterializedDim = 24

// Hypercube is the topology H_d. It implements graph.Graph,
// graph.NeighbourVisitor and graph.EdgeChecker. The zero value is not
// usable; construct with New, Implicit or ForDim.
type Hypercube struct {
	d int
	n int
	// cache holds the materialized representation; nil means implicit
	// (every accessor computes by bit-flips on the fly).
	cache *cache
}

// cache is the materialized per-node state built by New.
type cache struct {
	// neighbours caches, per node, the d neighbours ordered by label.
	neighbours [][]int
	// smaller and bigger cache the label-partitioned neighbour lists of
	// Definition 2 (labels <= m(v) and > m(v) respectively). Both views
	// slice the same flat backing array as neighbours conceptually
	// splits it, so the strategies' per-node fan-out queries allocate
	// nothing.
	smaller [][]int
	bigger  [][]int
	// levels caches the level decomposition: levels[l] holds the
	// level-l vertices in increasing order, flat-backed.
	levels [][]int
}

// New returns the hypercube H_d with materialized neighbour caches. It
// panics for d outside [0, bits.MaxDim] and for d > MaxMaterializedDim
// — use Implicit (or ForDim) for big boards.
func New(d int) *Hypercube {
	bits.CheckDim(d)
	if d > MaxMaterializedDim {
		// 2^24 * 24 ints is already ~3 GiB; refuse silly cache sizes.
		panic(fmt.Sprintf("hypercube: dimension %d too large to materialize; use hypercube.Implicit(%d) (or ForDim) for the cache-free representation", d, d))
	}
	n := 1 << d
	h := &Hypercube{
		d: d, n: n,
		cache: &cache{
			neighbours: make([][]int, n),
			smaller:    make([][]int, n),
			bigger:     make([][]int, n),
		},
	}
	c := h.cache
	flat := make([]int, n*d)
	for v := 0; v < n; v++ {
		row := flat[v*d : (v+1)*d : (v+1)*d]
		for i := 1; i <= d; i++ {
			row[i-1] = int(bits.Flip(bits.Node(v), i))
		}
		c.neighbours[v] = row
		// The row is ordered by label, so the smaller/bigger partition
		// of Definition 2 is a split of the same backing storage at
		// m(v): labels 1..m flip set bits (or the msb), labels m+1..d
		// set higher bits.
		m := bits.Msb(bits.Node(v))
		c.smaller[v] = row[:m:m]
		c.bigger[v] = row[m:]
	}
	// Bucket vertices by level into one flat array; ascending vertex
	// order within a bucket is the increasing lexicographic order the
	// synchronizer's level walk requires.
	c.levels = make([][]int, d+1)
	levelFlat := make([]int, n)
	offsets := make([]int, d+2)
	for v := 0; v < n; v++ {
		offsets[h.Level(v)+1]++
	}
	for l := 0; l <= d; l++ {
		offsets[l+1] += offsets[l]
		c.levels[l] = levelFlat[offsets[l]:offsets[l]:offsets[l+1]]
	}
	for v := 0; v < n; v++ {
		l := h.Level(v)
		c.levels[l] = append(c.levels[l], v)
	}
	return h
}

// Implicit returns the hypercube H_d in the cache-free representation:
// O(1) memory, every neighbour computed by an XOR bit-flip on demand.
// The slice-returning accessors allocate per call; hot paths use the
// Visit* iterators, which allocate nothing and visit in the identical
// label order.
func Implicit(d int) *Hypercube {
	bits.CheckDim(d)
	return &Hypercube{d: d, n: 1 << d}
}

// ForDim returns H_d in the representation appropriate for its size:
// materialized caches up to MaterializeLimit, implicit beyond. This is
// the constructor generic callers should use.
func ForDim(d int) *Hypercube {
	if d <= MaterializeLimit {
		return New(d)
	}
	return Implicit(d)
}

// IsImplicit reports whether h is the cache-free representation.
func (h *Hypercube) IsImplicit() bool { return h.cache == nil }

// Dim returns the dimension d.
func (h *Hypercube) Dim() int { return h.d }

// Order implements graph.Graph: 2^d nodes.
func (h *Hypercube) Order() int { return h.n }

// Size implements graph.Sized: d * 2^(d-1) edges.
func (h *Hypercube) Size() int {
	if h.d == 0 {
		return 0
	}
	return h.d * (h.n / 2)
}

// Neighbours implements graph.Graph: the d neighbours of v ordered by
// edge label 1..d. On the materialized representation the slice is a
// cached view (callers must not modify it); on the implicit one it is
// freshly allocated — hot paths should use VisitNeighbours instead.
func (h *Hypercube) Neighbours(v int) []int {
	if h.cache != nil {
		return h.cache.neighbours[v]
	}
	out := make([]int, h.d)
	for i := 1; i <= h.d; i++ {
		out[i-1] = v ^ 1<<(i-1)
	}
	return out
}

// VisitNeighbours implements graph.NeighbourVisitor: it calls yield
// for the d neighbours of v in increasing label order — exactly the
// order Neighbours returns — stopping early when yield returns false.
// It allocates nothing on either representation.
func (h *Hypercube) VisitNeighbours(v int, yield func(w int) bool) {
	for i := 0; i < h.d; i++ {
		if !yield(v ^ 1<<i) {
			return
		}
	}
}

// Neighbour returns the neighbour of v across the edge labelled i
// (1-based): one XOR, no memory access.
func (h *Hypercube) Neighbour(v, i int) int { return v ^ 1<<(i-1) }

// HasEdge implements graph.EdgeChecker: whether (u, v) is a hypercube
// edge, in O(1).
func (h *Hypercube) HasEdge(u, v int) bool {
	return bits.IsNeighbour(bits.Node(u), bits.Node(v))
}

// Node converts a dense vertex index to its bitstring identifier.
func (h *Hypercube) Node(v int) bits.Node { return bits.Node(v) }

// Index converts a bitstring identifier to its dense vertex index.
func (h *Hypercube) Index(x bits.Node) int { return int(x) }

// Label returns the port label λ_v(v, w) of the edge between
// neighbouring vertices v and w.
func (h *Hypercube) Label(v, w int) int {
	return bits.Label(bits.Node(v), bits.Node(w))
}

// Level returns the level of vertex v (number of one-bits).
func (h *Hypercube) Level(v int) int { return bits.Level(bits.Node(v)) }

// Class returns the class index i such that v is in C_i.
func (h *Hypercube) Class(v int) int { return bits.Class(bits.Node(v)) }

// SmallerNeighbours returns the neighbours of v with label <= m(v), as
// dense indices ordered by label (Definition 2). Materialized: a
// cached view (do not modify); implicit: freshly allocated — prefer
// VisitSmallerNeighbours on hot paths.
func (h *Hypercube) SmallerNeighbours(v int) []int {
	if h.cache != nil {
		return h.cache.smaller[v]
	}
	m := bits.Msb(bits.Node(v))
	out := make([]int, m)
	for i := 1; i <= m; i++ {
		out[i-1] = v ^ 1<<(i-1)
	}
	return out
}

// BiggerNeighbours returns the neighbours of v with label > m(v): the
// broadcast-tree children of v, as dense indices ordered by label.
// Materialized: a cached view (do not modify); implicit: freshly
// allocated — prefer VisitBiggerNeighbours on hot paths.
func (h *Hypercube) BiggerNeighbours(v int) []int {
	if h.cache != nil {
		return h.cache.bigger[v]
	}
	m := bits.Msb(bits.Node(v))
	out := make([]int, h.d-m)
	for i := m + 1; i <= h.d; i++ {
		out[i-m-1] = v | 1<<(i-1)
	}
	return out
}

// VisitSmallerNeighbours calls yield for the neighbours of v with
// label <= m(v) in increasing label order, allocation-free. (The loop
// is written out rather than delegated to bits so no adapter closure
// is built per call.)
func (h *Hypercube) VisitSmallerNeighbours(v int, yield func(w int) bool) {
	m := bits.Msb(bits.Node(v))
	for i := 0; i < m; i++ {
		if !yield(v ^ 1<<i) {
			return
		}
	}
}

// VisitBiggerNeighbours calls yield for the neighbours of v with
// label > m(v) — v's broadcast-tree children — in increasing label
// order, allocation-free.
func (h *Hypercube) VisitBiggerNeighbours(v int, yield func(w int) bool) {
	for i := bits.Msb(bits.Node(v)); i < h.d; i++ {
		if !yield(v | 1<<i) {
			return
		}
	}
}

// NodesAtLevel returns the dense indices of the level-l vertices in
// increasing (lexicographic) order. Materialized: a cached view (do
// not modify); implicit: freshly allocated — prefer VisitNodesAtLevel
// on hot paths.
func (h *Hypercube) NodesAtLevel(l int) []int {
	if h.cache != nil {
		return h.cache.levels[l]
	}
	out := make([]int, 0, combinCap(h.d, l))
	bits.VisitNodesAtLevel(h.d, l, func(x bits.Node) bool {
		out = append(out, int(x))
		return true
	})
	return out
}

// combinCap sizes the implicit NodesAtLevel allocation: C(d, l),
// computed without importing combin (a cycle through graph otherwise
// threatens nothing, but the loop is three lines).
func combinCap(d, l int) int {
	if l < 0 || l > d {
		return 0
	}
	if l > d-l {
		l = d - l
	}
	c := 1
	for i := 1; i <= l; i++ {
		c = c * (d - l + i) / i
	}
	return c
}

// VisitNodesAtLevel calls yield for every level-l vertex in increasing
// (lexicographic) order — exactly the order NodesAtLevel returns —
// stopping early when yield returns false. It enumerates with Gosper's
// hack, allocation-free on both representations; the synchronizer's
// million-node level walks at d >= 20 run on it.
func (h *Hypercube) VisitNodesAtLevel(l int, yield func(v int) bool) {
	if l < 0 || l > h.d {
		panic(fmt.Sprintf("hypercube: level %d out of range [0,%d]", l, h.d))
	}
	if l == 0 {
		yield(0)
		return
	}
	v := uint32(1<<l - 1)
	limit := uint32(1) << h.d
	for v < limit {
		if !yield(int(v)) {
			return
		}
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
		if c == 0 {
			return
		}
	}
}

// NodesInClass returns the dense indices of class C_i in increasing
// order.
func (h *Hypercube) NodesInClass(i int) []int {
	ns := bits.NodesInClass(h.d, i)
	out := make([]int, len(ns))
	for j, x := range ns {
		out[j] = int(x)
	}
	return out
}

// ShortestPath returns a shortest hypercube path between vertices v and
// w (inclusive), correcting low-position bits first and clearing before
// setting, as the synchronizer's router does.
func (h *Hypercube) ShortestPath(v, w int) []int {
	p := bits.HammingPath(bits.Node(v), bits.Node(w), h.d)
	out := make([]int, len(p))
	for i, x := range p {
		out[i] = int(x)
	}
	return out
}

// NextHopToward returns the neighbour of v that is the next vertex on
// ShortestPath(v, w), or v itself when v == w. Iterating it walks
// exactly the vertices ShortestPath returns without allocating the
// path slice; agents use it for step-by-step routing.
func (h *Hypercube) NextHopToward(v, w int) int {
	return int(bits.NextHopToward(bits.Node(v), bits.Node(w)))
}

// Distance returns the hypercube (Hamming) distance between v and w.
func (h *Hypercube) Distance(v, w int) int {
	return bits.HammingDistance(bits.Node(v), bits.Node(w))
}

// String renders vertex v as a d-bit binary string.
func (h *Hypercube) String(v int) string { return bits.String(bits.Node(v), h.d) }

var _ graph.Graph = (*Hypercube)(nil)
var _ graph.Sized = (*Hypercube)(nil)
var _ graph.NeighbourVisitor = (*Hypercube)(nil)
var _ graph.EdgeChecker = (*Hypercube)(nil)
