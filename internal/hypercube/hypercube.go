// Package hypercube implements the d-dimensional hypercube topology
// H_d used by the paper: n = 2^d nodes, d*2^(d-1) edges, port labels
// λ_x(x,y) equal to the position of the differing bit, the level
// decomposition, and the class decomposition C_i of Section 4.
//
// Nodes are identified both by their bitstring (bits.Node) and by the
// dense integer index used by internal/graph; for the hypercube these
// coincide numerically, so the conversion is a cast.
package hypercube

import (
	"fmt"

	"hypersearch/internal/bits"
	"hypersearch/internal/graph"
)

// Hypercube is the topology H_d. It implements graph.Graph. The zero
// value is not usable; construct with New.
type Hypercube struct {
	d int
	n int
	// neighbours caches, per node, the d neighbours ordered by label.
	// For the dimensions this repository simulates the cache is cheap
	// (n*d ints) and makes the Graph interface allocation-free.
	neighbours [][]int
	// smaller and bigger cache the label-partitioned neighbour lists of
	// Definition 2 (labels <= m(v) and > m(v) respectively). Both views
	// slice the same flat backing array as neighbours conceptually
	// splits it, so the strategies' per-node fan-out queries allocate
	// nothing.
	smaller [][]int
	bigger  [][]int
	// levels caches the level decomposition: levels[l] holds the
	// level-l vertices in increasing order, flat-backed.
	levels [][]int
}

// New returns the hypercube H_d. It panics for d outside [0, bits.MaxDim].
func New(d int) *Hypercube {
	bits.CheckDim(d)
	if d > 24 {
		// 2^24 * 24 ints is already ~3 GiB; refuse silly cache sizes.
		panic(fmt.Sprintf("hypercube: dimension %d too large to materialize", d))
	}
	n := 1 << d
	h := &Hypercube{
		d: d, n: n,
		neighbours: make([][]int, n),
		smaller:    make([][]int, n),
		bigger:     make([][]int, n),
	}
	flat := make([]int, n*d)
	for v := 0; v < n; v++ {
		row := flat[v*d : (v+1)*d : (v+1)*d]
		for i := 1; i <= d; i++ {
			row[i-1] = int(bits.Flip(bits.Node(v), i))
		}
		h.neighbours[v] = row
		// The row is ordered by label, so the smaller/bigger partition
		// of Definition 2 is a split of the same backing storage at
		// m(v): labels 1..m flip set bits (or the msb), labels m+1..d
		// set higher bits.
		m := bits.Msb(bits.Node(v))
		h.smaller[v] = row[:m:m]
		h.bigger[v] = row[m:]
	}
	// Bucket vertices by level into one flat array; ascending vertex
	// order within a bucket is the increasing lexicographic order the
	// synchronizer's level walk requires.
	h.levels = make([][]int, d+1)
	levelFlat := make([]int, n)
	offsets := make([]int, d+2)
	for v := 0; v < n; v++ {
		offsets[h.Level(v)+1]++
	}
	for l := 0; l <= d; l++ {
		offsets[l+1] += offsets[l]
		h.levels[l] = levelFlat[offsets[l]:offsets[l]:offsets[l+1]]
	}
	for v := 0; v < n; v++ {
		l := h.Level(v)
		h.levels[l] = append(h.levels[l], v)
	}
	return h
}

// Dim returns the dimension d.
func (h *Hypercube) Dim() int { return h.d }

// Order implements graph.Graph: 2^d nodes.
func (h *Hypercube) Order() int { return h.n }

// Size implements graph.Sized: d * 2^(d-1) edges.
func (h *Hypercube) Size() int {
	if h.d == 0 {
		return 0
	}
	return h.d * (h.n / 2)
}

// Neighbours implements graph.Graph: the d neighbours of v ordered by
// edge label 1..d. Callers must not modify the returned slice.
func (h *Hypercube) Neighbours(v int) []int { return h.neighbours[v] }

// Node converts a dense vertex index to its bitstring identifier.
func (h *Hypercube) Node(v int) bits.Node { return bits.Node(v) }

// Index converts a bitstring identifier to its dense vertex index.
func (h *Hypercube) Index(x bits.Node) int { return int(x) }

// Label returns the port label λ_v(v, w) of the edge between
// neighbouring vertices v and w.
func (h *Hypercube) Label(v, w int) int {
	return bits.Label(bits.Node(v), bits.Node(w))
}

// Level returns the level of vertex v (number of one-bits).
func (h *Hypercube) Level(v int) int { return bits.Level(bits.Node(v)) }

// Class returns the class index i such that v is in C_i.
func (h *Hypercube) Class(v int) int { return bits.Class(bits.Node(v)) }

// SmallerNeighbours returns the neighbours of v with label <= m(v), as
// dense indices ordered by label (Definition 2). The slice is a cached
// view; callers must not modify it.
func (h *Hypercube) SmallerNeighbours(v int) []int { return h.smaller[v] }

// BiggerNeighbours returns the neighbours of v with label > m(v): the
// broadcast-tree children of v, as dense indices ordered by label. The
// slice is a cached view; callers must not modify it.
func (h *Hypercube) BiggerNeighbours(v int) []int { return h.bigger[v] }

// NodesAtLevel returns the dense indices of the level-l vertices in
// increasing (lexicographic) order. The slice is a cached view;
// callers must not modify it.
func (h *Hypercube) NodesAtLevel(l int) []int { return h.levels[l] }

// NodesInClass returns the dense indices of class C_i in increasing
// order.
func (h *Hypercube) NodesInClass(i int) []int {
	ns := bits.NodesInClass(h.d, i)
	out := make([]int, len(ns))
	for j, x := range ns {
		out[j] = int(x)
	}
	return out
}

// ShortestPath returns a shortest hypercube path between vertices v and
// w (inclusive), correcting low-position bits first and clearing before
// setting, as the synchronizer's router does.
func (h *Hypercube) ShortestPath(v, w int) []int {
	p := bits.HammingPath(bits.Node(v), bits.Node(w), h.d)
	out := make([]int, len(p))
	for i, x := range p {
		out[i] = int(x)
	}
	return out
}

// NextHopToward returns the neighbour of v that is the next vertex on
// ShortestPath(v, w), or v itself when v == w. Iterating it walks
// exactly the vertices ShortestPath returns without allocating the
// path slice; agents use it for step-by-step routing.
func (h *Hypercube) NextHopToward(v, w int) int {
	return int(bits.NextHopToward(bits.Node(v), bits.Node(w)))
}

// Distance returns the hypercube (Hamming) distance between v and w.
func (h *Hypercube) Distance(v, w int) int {
	return bits.HammingDistance(bits.Node(v), bits.Node(w))
}

// String renders vertex v as a d-bit binary string.
func (h *Hypercube) String(v int) string { return bits.String(bits.Node(v), h.d) }

var _ graph.Graph = (*Hypercube)(nil)
var _ graph.Sized = (*Hypercube)(nil)
