package graph

import (
	"math/rand"
	"testing"
)

func path(n int) *Adjacency {
	g := NewAdjacency(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Adjacency {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func TestAdjacencyBasics(t *testing.T) {
	g := NewAdjacency(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.Order() != 4 || g.Size() != 2 {
		t.Fatalf("order/size = %d/%d", g.Order(), g.Size())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if ns := g.Neighbours(1); len(ns) != 2 {
		t.Errorf("neighbours of 1 = %v", ns)
	}
}

func TestAdjacencyRejectsBadEdges(t *testing.T) {
	g := NewAdjacency(3)
	g.AddEdge(0, 1)
	for _, bad := range []func(){
		func() { g.AddEdge(0, 0) },
		func() { g.AddEdge(0, 1) },
		func() { g.AddEdge(0, 3) },
		func() { g.AddEdge(-1, 0) },
		func() { g.Neighbours(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad edge operation did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestNewAdjacencyNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative order did not panic")
		}
	}()
	NewAdjacency(-1)
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	dist := BFS(g, 0)
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d", i, d)
		}
	}
	// Disconnected vertex.
	g2 := NewAdjacency(3)
	g2.AddEdge(0, 1)
	dist2 := BFS(g2, 0)
	if dist2[2] != -1 {
		t.Errorf("unreachable vertex has dist %d", dist2[2])
	}
}

func TestShortestPath(t *testing.T) {
	g := cycle(6)
	p := ShortestPath(g, 0, 3)
	if len(p) != 4 {
		t.Errorf("path = %v", p)
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Errorf("endpoints wrong: %v", p)
	}
	if q := ShortestPath(g, 2, 2); len(q) != 1 || q[0] != 2 {
		t.Errorf("trivial path = %v", q)
	}
	g2 := NewAdjacency(2)
	if ShortestPath(g2, 0, 1) != nil {
		t.Error("unreachable path not nil")
	}
}

func TestConnected(t *testing.T) {
	if !Connected(NewAdjacency(0)) || !Connected(NewAdjacency(1)) {
		t.Error("trivial graphs should be connected")
	}
	if !Connected(cycle(5)) {
		t.Error("cycle should be connected")
	}
	g := NewAdjacency(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if Connected(g) {
		t.Error("two components reported connected")
	}
}

func TestSubsetConnected(t *testing.T) {
	g := path(6)
	in := []bool{true, true, true, false, false, false}
	if !SubsetConnected(g, in) {
		t.Error("prefix of a path should be connected")
	}
	in = []bool{true, false, true, false, false, false}
	if SubsetConnected(g, in) {
		t.Error("gap should disconnect")
	}
	if !SubsetConnected(g, make([]bool, 6)) {
		t.Error("empty subset should count as connected")
	}
}

func TestReachable(t *testing.T) {
	g := path(7)
	blocked := make([]bool, 7)
	blocked[3] = true
	seen := Reachable(g, []int{0}, blocked)
	for v := 0; v <= 2; v++ {
		if !seen[v] {
			t.Errorf("vertex %d should be reachable", v)
		}
	}
	for v := 3; v <= 6; v++ {
		if seen[v] {
			t.Errorf("vertex %d should be cut off", v)
		}
	}
	// Blocked seed contributes nothing.
	seen = Reachable(g, []int{3}, blocked)
	for v := range seen {
		if seen[v] {
			t.Errorf("blocked seed leaked to %d", v)
		}
	}
}

func TestIsTree(t *testing.T) {
	if !IsTree(path(5)) {
		t.Error("path is a tree")
	}
	if IsTree(cycle(5)) {
		t.Error("cycle is not a tree")
	}
	g := NewAdjacency(4)
	g.AddEdge(0, 1)
	if IsTree(g) {
		t.Error("forest is not a (single) tree")
	}
}

func TestDFSOrder(t *testing.T) {
	g := NewAdjacency(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	got := DFSOrder(g, 0)
	want := []int{0, 1, 3, 4, 2}
	if len(got) != len(want) {
		t.Fatalf("order = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSizeWithoutSized(t *testing.T) {
	// A Graph that does not implement Sized falls back to a scan.
	g := anonymous{path(4)}
	if Size(g) != 3 {
		t.Errorf("Size = %d", Size(g))
	}
}

// anonymous hides the Sized implementation of the wrapped graph.
type anonymous struct{ g *Adjacency }

func (a anonymous) Order() int             { return a.g.Order() }
func (a anonymous) Neighbours(v int) []int { return a.g.Neighbours(v) }

func TestRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		g := NewAdjacency(n)
		// Random spanning tree plus chords: always connected.
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(perm[i], perm[rng.Intn(i)])
		}
		if !Connected(g) {
			t.Fatal("spanning construction not connected")
		}
		dist := BFS(g, 0)
		for v, dv := range dist {
			if dv < 0 {
				t.Fatalf("vertex %d unreachable in connected graph", v)
			}
			p := ShortestPath(g, 0, v)
			if len(p)-1 != dv {
				t.Fatalf("ShortestPath length %d != BFS dist %d", len(p)-1, dv)
			}
		}
	}
}

func TestTreeConstruction(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   / \
	//  3   4
	parent := []int{0, 0, 0, 1, 1}
	tr := MustTree(0, parent)
	if tr.Order() != 5 || tr.Size() != 4 {
		t.Fatal("order/size wrong")
	}
	if tr.Root() != 0 || tr.Parent(0) != -1 || tr.Parent(3) != 1 {
		t.Error("root/parent wrong")
	}
	if !tr.IsLeaf(4) || tr.IsLeaf(1) {
		t.Error("leaf classification wrong")
	}
	if tr.Depth(3) != 2 || tr.Depth(0) != 0 {
		t.Error("depth wrong")
	}
	if tr.SubtreeSize(1) != 3 || tr.SubtreeSize(0) != 5 {
		t.Error("subtree size wrong")
	}
	if tr.Height() != 2 {
		t.Errorf("height = %d", tr.Height())
	}
	leaves := tr.Leaves()
	if len(leaves) != 3 {
		t.Errorf("leaves = %v", leaves)
	}
	if ns := tr.Neighbours(1); len(ns) != 3 || ns[0] != 0 {
		t.Errorf("neighbours of 1 = %v", ns)
	}
	if !IsTree(tr) {
		t.Error("Tree does not satisfy IsTree")
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := NewTree(5, []int{0}); err == nil {
		t.Error("root out of range accepted")
	}
	if _, err := NewTree(0, []int{1, 0}); err == nil {
		t.Error("parent[root] != root accepted")
	}
	// parent[1] = 1 with root 0 leaves vertices 1..3 unreachable.
	if _, err := NewTree(0, []int{0, 1, 1, 2}); err == nil {
		t.Error("unreachable vertices accepted")
	}
	// 1 and 2 form a 2-cycle detached from the root.
	if _, err := NewTree(0, []int{0, 2, 1}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := NewTree(0, []int{0, 5}); err == nil {
		t.Error("out-of-range parent accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTree did not panic")
		}
	}()
	MustTree(0, []int{1, 0})
}
