// Package graph provides the topology-generic substrate the search
// strategies and invariant checkers are written against: a Graph
// interface, adjacency-list graphs, trees, and the classic traversals
// (BFS, DFS, connectivity, shortest paths).
//
// Node identifiers are dense integers [0, Order()): the hypercube
// package maps its bitstring nodes onto this space directly, and the
// checkers in internal/board work for any Graph.
package graph

import "fmt"

// Graph is a finite undirected graph over dense integer vertices
// 0..Order()-1. Implementations must return neighbour slices that the
// caller may read but not modify.
type Graph interface {
	// Order returns the number of vertices.
	Order() int
	// Neighbours returns the vertices adjacent to v.
	Neighbours(v int) []int
}

// Sized is an optional extension reporting the number of edges without
// a full scan.
type Sized interface {
	// Size returns the number of undirected edges.
	Size() int
}

// NeighbourVisitor is an optional extension for graphs that can
// enumerate neighbours without materializing a slice — implicit
// topologies compute them on the fly (the hypercube by XOR bit-flips).
// Implementations must visit neighbours in the same order Neighbours
// returns them (for the hypercube: increasing edge label) and stop as
// soon as yield returns false. Determinism of every engine in this
// repository depends on that iteration order being fixed.
type NeighbourVisitor interface {
	VisitNeighbours(v int, yield func(w int) bool)
}

// EdgeChecker is an optional extension for graphs with an O(1)
// adjacency test (the hypercube: one XOR and a popcount). Hot paths
// resolve it once instead of scanning neighbour lists per query.
type EdgeChecker interface {
	HasEdge(u, v int) bool
}

// VisitNeighbours iterates the neighbours of v through the
// NeighbourVisitor fast path when g provides one, falling back to
// ranging over Neighbours. yield returns false to stop early.
func VisitNeighbours(g Graph, v int, yield func(w int) bool) {
	if nv, ok := g.(NeighbourVisitor); ok {
		nv.VisitNeighbours(v, yield)
		return
	}
	for _, w := range g.Neighbours(v) {
		if !yield(w) {
			return
		}
	}
}

// HasEdge reports whether (u, v) is an edge of g, using the
// EdgeChecker fast path when available.
func HasEdge(g Graph, u, v int) bool {
	if ec, ok := g.(EdgeChecker); ok {
		return ec.HasEdge(u, v)
	}
	for _, w := range g.Neighbours(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Size returns the number of undirected edges of g, using the Sized
// fast path when available.
func Size(g Graph) int {
	if s, ok := g.(Sized); ok {
		return s.Size()
	}
	total := 0
	for v := 0; v < g.Order(); v++ {
		total += len(g.Neighbours(v))
	}
	return total / 2
}

// Adjacency is a mutable adjacency-list graph.
type Adjacency struct {
	adj [][]int
}

// NewAdjacency returns an empty graph with n vertices and no edges.
func NewAdjacency(n int) *Adjacency {
	if n < 0 {
		panic("graph: negative order")
	}
	return &Adjacency{adj: make([][]int, n)}
}

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate
// edges are rejected with a panic: the search model assumes a simple
// graph.
func (g *Adjacency) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	for _, w := range g.adj[u] {
		if w == v {
			panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

func (g *Adjacency) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}

// Order implements Graph.
func (g *Adjacency) Order() int { return len(g.adj) }

// Neighbours implements Graph.
func (g *Adjacency) Neighbours(v int) []int {
	g.check(v)
	return g.adj[v]
}

// Size implements Sized.
func (g *Adjacency) Size() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// HasEdge reports whether (u, v) is an edge.
func (g *Adjacency) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// BFS runs a breadth-first traversal from src and returns the distance
// (in edges) from src to every vertex, with -1 for unreachable vertices.
func BFS(g Graph, src int) []int {
	dist := make([]int, g.Order())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbours(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst inclusive, or
// nil if dst is unreachable.
func ShortestPath(g Graph, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	parent := make([]int, g.Order())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbours(v) {
			if parent[w] < 0 {
				parent[w] = v
				if w == dst {
					return unwind(parent, src, dst)
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

func unwind(parent []int, src, dst int) []int {
	rev := []int{dst}
	for v := dst; v != src; v = parent[v] {
		rev = append(rev, parent[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Connected reports whether g is connected (the empty graph counts as
// connected).
func Connected(g Graph) bool {
	n := g.Order()
	if n == 0 {
		return true
	}
	dist := BFS(g, 0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// SubsetConnected reports whether the sub-graph of g induced by the
// vertex set `in` (in[v] == true keeps v) is connected. The empty
// subset counts as connected.
func SubsetConnected(g Graph, in []bool) bool {
	n := g.Order()
	start := -1
	count := 0
	for v := 0; v < n; v++ {
		if in[v] {
			count++
			if start < 0 {
				start = v
			}
		}
	}
	if count == 0 {
		return true
	}
	seen := make([]bool, n)
	seen[start] = true
	reached := 1
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbours(v) {
			if in[w] && !seen[w] {
				seen[w] = true
				reached++
				queue = append(queue, w)
			}
		}
	}
	return reached == count
}

// Reachable returns the set of vertices reachable from any seed without
// entering a blocked vertex. Blocked seeds contribute nothing. The
// result marks reachable vertices true; blocked vertices are never
// marked.
func Reachable(g Graph, seeds []int, blocked []bool) []bool {
	seen := make([]bool, g.Order())
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if !blocked[s] && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbours(v) {
			if !blocked[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// IsTree reports whether g is connected and acyclic.
func IsTree(g Graph) bool {
	return Connected(g) && Size(g) == g.Order()-1
}

// DFSOrder returns the vertices of g in preorder of a depth-first
// traversal from src, visiting neighbours in adjacency order. Vertices
// unreachable from src are omitted.
func DFSOrder(g Graph, src int) []int {
	seen := make([]bool, g.Order())
	order := make([]int, 0, g.Order())
	var rec func(v int)
	rec = func(v int) {
		seen[v] = true
		order = append(order, v)
		for _, w := range g.Neighbours(v) {
			if !seen[w] {
				rec(w)
			}
		}
	}
	rec(src)
	return order
}
