package graph

import "fmt"

// Tree is a rooted tree over dense integer vertices, represented by a
// parent array. It implements Graph (as the underlying undirected
// tree) and adds rooted-tree queries used by the tree-search baseline
// and by the broadcast-tree package.
type Tree struct {
	root     int
	parent   []int // parent[root] == root
	children [][]int
}

// NewTree builds a rooted tree from a parent array; parent[root] must
// equal root and every other vertex's parent chain must reach the root.
func NewTree(root int, parent []int) (*Tree, error) {
	n := len(parent)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("graph: root %d out of range [0,%d)", root, n)
	}
	if parent[root] != root {
		return nil, fmt.Errorf("graph: parent[root] = %d, want %d", parent[root], root)
	}
	t := &Tree{root: root, parent: append([]int(nil), parent...), children: make([][]int, n)}
	for v := 0; v < n; v++ {
		p := parent[v]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("graph: parent[%d] = %d out of range", v, p)
		}
		if v != root {
			t.children[p] = append(t.children[p], v)
		}
	}
	// Verify every vertex reaches the root (no cycles, no forests).
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[root] = 0
	queue := []int{root}
	seen := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.children[v] {
			depth[c] = depth[v] + 1
			seen++
			queue = append(queue, c)
		}
	}
	if seen != n {
		return nil, fmt.Errorf("graph: parent array is not a single tree (%d of %d reachable)", seen, n)
	}
	return t, nil
}

// MustTree is NewTree that panics on error, for statically correct
// construction sites.
func MustTree(root int, parent []int) *Tree {
	t, err := NewTree(root, parent)
	if err != nil {
		panic(err)
	}
	return t
}

// Order implements Graph.
func (t *Tree) Order() int { return len(t.parent) }

// Size implements Sized: a tree has n-1 edges.
func (t *Tree) Size() int { return len(t.parent) - 1 }

// Neighbours implements Graph: the parent (if any) followed by the
// children.
func (t *Tree) Neighbours(v int) []int {
	ns := make([]int, 0, len(t.children[v])+1)
	if v != t.root {
		ns = append(ns, t.parent[v])
	}
	return append(ns, t.children[v]...)
}

// Root returns the root vertex.
func (t *Tree) Root() int { return t.root }

// Parent returns the parent of v, or -1 for the root.
func (t *Tree) Parent(v int) int {
	if v == t.root {
		return -1
	}
	return t.parent[v]
}

// Children returns the children of v in insertion order; callers must
// not modify the slice.
func (t *Tree) Children(v int) []int { return t.children[v] }

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int) bool { return len(t.children[v]) == 0 }

// Depth returns the number of edges from the root to v.
func (t *Tree) Depth(v int) int {
	d := 0
	for v != t.root {
		v = t.parent[v]
		d++
	}
	return d
}

// SubtreeSize returns the number of vertices in the subtree rooted at v
// (including v).
func (t *Tree) SubtreeSize(v int) int {
	total := 1
	for _, c := range t.children[v] {
		total += t.SubtreeSize(c)
	}
	return total
}

// Leaves returns all leaves in preorder.
func (t *Tree) Leaves() []int {
	var out []int
	var rec func(v int)
	rec = func(v int) {
		if t.IsLeaf(v) {
			out = append(out, v)
			return
		}
		for _, c := range t.children[v] {
			rec(c)
		}
	}
	rec(t.root)
	return out
}

// Height returns the maximum depth over all vertices.
func (t *Tree) Height() int {
	best := 0
	var rec func(v, d int)
	rec = func(v, d int) {
		if d > best {
			best = d
		}
		for _, c := range t.children[v] {
			rec(c, d+1)
		}
	}
	rec(t.root, 0)
	return best
}
