package whiteboard

import (
	"strings"
	"sync"
	"testing"
)

func TestReadWriteAdd(t *testing.T) {
	s := NewStore(3)
	agents := s.Field("agents")
	b := s.At(1)
	if b.Read(agents) != 0 {
		t.Error("unwritten field should read 0")
	}
	b.Write(agents, 5)
	if b.Read(agents) != 5 {
		t.Error("write lost")
	}
	if b.Add(agents, -2) != 3 || b.Read(agents) != 3 {
		t.Error("Add wrong")
	}
	if s.Len() != 3 {
		t.Error("Len wrong")
	}
}

func TestFieldInterning(t *testing.T) {
	s := NewStore(1)
	a := s.Field("alpha")
	b := s.Field("beta")
	if a == b {
		t.Fatal("distinct names interned to the same Field")
	}
	if s.Field("alpha") != a {
		t.Error("re-interning is not idempotent")
	}
	if s.FieldName(a) != "alpha" || s.FieldName(b) != "beta" {
		t.Error("FieldName round trip wrong")
	}
}

func TestReadBeyondSlab(t *testing.T) {
	s := NewStore(1)
	// Intern many fields but never write them on this board: Read must
	// report zero without growing anything.
	var last Field
	for i := 0; i < 100; i++ {
		last = s.Field("f" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	if s.At(0).Read(last) != 0 {
		t.Error("unwritten high field should read 0")
	}
	if s.At(0).Bits() != 0 {
		t.Error("reads must not count toward Bits")
	}
}

func TestCompareAndSwapElection(t *testing.T) {
	s := NewStore(1)
	elect := s.Field("sync")
	b := s.At(0)
	if !b.CompareAndSwap(elect, 0, 7) {
		t.Fatal("first CAS should win")
	}
	if b.CompareAndSwap(elect, 0, 9) {
		t.Fatal("second CAS should lose")
	}
	if b.Read(elect) != 7 {
		t.Error("winner overwritten")
	}
}

func TestUpdate(t *testing.T) {
	s := NewStore(1)
	x := s.Field("x")
	b := s.At(0)
	got := b.Update(x, func(v int64) int64 { return v*2 + 1 })
	if got != 1 || b.Read(x) != 1 {
		t.Error("Update wrong")
	}
	if b.Update(x, func(v int64) int64 { return v + 9 }) != 10 {
		t.Error("second Update wrong")
	}
}

func TestConcurrentElectionExactlyOneWinner(t *testing.T) {
	s := NewStore(1)
	f := s.Field("sync")
	b := s.At(0)
	const workers = 64
	var wg sync.WaitGroup
	wins := make(chan int, workers)
	for i := 1; i <= workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if b.CompareAndSwap(f, 0, int64(id)) {
				wins <- id
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	count := 0
	var winner int
	for id := range wins {
		count++
		winner = id
	}
	if count != 1 {
		t.Fatalf("%d winners", count)
	}
	if b.Read(f) != int64(winner) {
		t.Error("stored winner mismatch")
	}
}

func TestConcurrentAdd(t *testing.T) {
	s := NewStore(1)
	count := s.Field("count")
	b := s.At(0)
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				b.Add(count, 1)
			}
		}()
	}
	wg.Wait()
	if b.Read(count) != workers*per {
		t.Errorf("count = %d", b.Read(count))
	}
}

// Interning itself must be safe under concurrency: many goroutines
// racing to intern overlapping name sets must agree on the IDs.
func TestConcurrentInterning(t *testing.T) {
	s := NewStore(1)
	const workers = 32
	const names = 20
	results := make([][]Field, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := make([]Field, names)
			for j := 0; j < names; j++ {
				fs[j] = s.Field("n" + string(rune('a'+j)))
			}
			results[i] = fs
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		for j := 0; j < names; j++ {
			if results[i][j] != results[0][j] {
				t.Fatalf("worker %d interned %q as %d, worker 0 as %d",
					i, "n"+string(rune('a'+j)), results[i][j], results[0][j])
			}
		}
	}
}

func TestBitsAccounting(t *testing.T) {
	s := NewStore(2)
	b := s.At(0)
	if b.Bits() != 0 {
		t.Error("empty board should use 0 bits")
	}
	b.Write(s.Field("flag"), 1)
	if b.Bits() != 1 {
		t.Errorf("1-bit value counted as %d", b.Bits())
	}
	b.Write(s.Field("count"), 255) // 8 bits
	if b.Bits() != 9 {
		t.Errorf("bits = %d, want 9", b.Bits())
	}
	b.Write(s.Field("neg"), -4) // |−4| = 100b -> 3 bits
	if b.Bits() != 12 {
		t.Errorf("bits = %d, want 12", b.Bits())
	}
	if s.MaxBits() != 12 {
		t.Errorf("MaxBits = %d", s.MaxBits())
	}
	s.At(1).Write(s.Field("big"), 1<<40)
	if s.MaxBits() != 41 {
		t.Errorf("MaxBits = %d, want 41", s.MaxBits())
	}
}

func TestDumpDeterministic(t *testing.T) {
	s := NewStore(1)
	b := s.At(0)
	b.Write(s.Field("zeta"), 1)
	b.Write(s.Field("alpha"), 2)
	d := b.Dump()
	if !strings.HasPrefix(d, "alpha=2 ") || !strings.Contains(d, "zeta=1") {
		t.Errorf("Dump = %q", d)
	}
	if d != b.Dump() {
		t.Error("Dump not deterministic")
	}
}
