// Package whiteboard implements the per-node shared storage of the
// paper's agent model: a small mutual-exclusion key/value store holding
// O(log n)-bit fields, accessed fairly by the agents residing on (or,
// in the visibility model, adjacent to) a node.
//
// The store tracks a bit budget so tests can assert the paper's space
// claim: every strategy fits its per-node state in O(log n) bits.
package whiteboard

import (
	"fmt"
	"sort"
	"sync"
)

// Board is one node's whiteboard. The zero value is unusable; create
// stores with NewStore.
type Board struct {
	mu     sync.Mutex
	fields map[string]int64
}

// Store is the collection of whiteboards for a topology, one per node.
type Store struct {
	boards []Board
}

// NewStore returns whiteboards for n nodes.
func NewStore(n int) *Store {
	s := &Store{boards: make([]Board, n)}
	for i := range s.boards {
		s.boards[i].fields = make(map[string]int64)
	}
	return s
}

// At returns node v's whiteboard.
func (s *Store) At(v int) *Board { return &s.boards[v] }

// Len returns the number of whiteboards.
func (s *Store) Len() int { return len(s.boards) }

// Read returns the value of a field (0 if never written), under the
// board's lock.
func (b *Board) Read(field string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fields[field]
}

// Write sets a field under the board's lock.
func (b *Board) Write(field string, v int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fields[field] = v
}

// Add atomically adds delta to a field and returns the new value.
func (b *Board) Add(field string, delta int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fields[field] += delta
	return b.fields[field]
}

// CompareAndSwap atomically sets field to new if it currently equals
// old, reporting whether the swap happened. Agents use it to elect the
// synchronizer ("the first that gains access will become the
// synchronizer").
func (b *Board) CompareAndSwap(field string, old, new int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fields[field] != old {
		return false
	}
	b.fields[field] = new
	return true
}

// Update runs fn on the current value of field under the lock and
// stores the result, returning it. It generalizes read-modify-write
// cycles that must be atomic under fair mutual exclusion.
func (b *Board) Update(field string, fn func(int64) int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := fn(b.fields[field])
	b.fields[field] = v
	return v
}

// Bits returns the total number of bits the board currently stores:
// for each field, the bits of its value (minimum 1). Field names are
// program text, not stored state, so they do not count — matching the
// paper's accounting, where the whiteboard holds a constant number of
// O(log n)-bit values.
func (b *Board) Bits() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, v := range b.fields {
		total += bitsOf(v)
	}
	return total
}

func bitsOf(v int64) int {
	if v < 0 {
		v = -v
	}
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// MaxBits returns the largest per-board bit usage across the store,
// for O(log n) space assertions.
func (s *Store) MaxBits() int {
	max := 0
	for i := range s.boards {
		if b := s.boards[i].Bits(); b > max {
			max = b
		}
	}
	return max
}

// Dump renders a board's fields deterministically, for debugging.
func (b *Board) Dump() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.fields))
	for k := range b.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d ", k, b.fields[k])
	}
	return out
}
