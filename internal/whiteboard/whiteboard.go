// Package whiteboard implements the per-node shared storage of the
// paper's agent model: a small mutual-exclusion key/value store holding
// O(log n)-bit fields, accessed fairly by the agents residing on (or,
// in the visibility model, adjacent to) a node.
//
// Field names are interned once — typically at store construction or
// agent startup — into dense integer Field IDs; the Read/Write/Add/
// CompareAndSwap hot path is then a mutex plus a slice index, with no
// map lookup and no string hashing. This mirrors the paper's model:
// field names are program text, only the O(log n)-bit values are
// stored state.
//
// The store tracks a bit budget so tests can assert the paper's space
// claim: every strategy fits its per-node state in O(log n) bits.
package whiteboard

import (
	"fmt"
	"sort"
	"sync"
)

// Field is an interned field name, valid for the Store that issued it.
// Obtain Fields from Store.Field.
type Field int32

// Board is one node's whiteboard. The zero value is unusable; create
// stores with NewStore.
type Board struct {
	mu      sync.Mutex
	store   *Store
	vals    []int64 // indexed by Field; grown on first touch past the end
	written []bool  // tracks fields ever written, for Bits/Dump
}

// Store is the collection of whiteboards for a topology, one per node,
// plus the field interner they share.
type Store struct {
	boards []Board

	fmu   sync.RWMutex
	ids   map[string]Field
	names []string
}

// NewStore returns whiteboards for n nodes.
func NewStore(n int) *Store {
	s := &Store{
		boards: make([]Board, n),
		ids:    make(map[string]Field),
	}
	for i := range s.boards {
		s.boards[i].store = s
	}
	return s
}

// Field interns a field name, returning its dense ID. Interning is
// idempotent and safe for concurrent use, but it is the slow path:
// resolve fields once at construction (or when a dynamic key such as
// a per-order record is created), never per access.
func (s *Store) Field(name string) Field {
	s.fmu.RLock()
	f, ok := s.ids[name]
	s.fmu.RUnlock()
	if ok {
		return f
	}
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if f, ok := s.ids[name]; ok {
		return f
	}
	f = Field(len(s.names))
	s.ids[name] = f
	s.names = append(s.names, name)
	return f
}

// FieldName returns the name a Field was interned under.
func (s *Store) FieldName(f Field) string {
	s.fmu.RLock()
	defer s.fmu.RUnlock()
	return s.names[f]
}

// At returns node v's whiteboard.
func (s *Store) At(v int) *Board { return &s.boards[v] }

// Len returns the number of whiteboards.
func (s *Store) Len() int { return len(s.boards) }

// ensure grows the board's value slab to cover f. Caller holds b.mu.
func (b *Board) ensure(f Field) {
	if int(f) >= len(b.vals) {
		vals := make([]int64, f+1)
		copy(vals, b.vals)
		b.vals = vals
		written := make([]bool, f+1)
		copy(written, b.written)
		b.written = written
	}
}

// Read returns the value of a field (0 if never written), under the
// board's lock.
func (b *Board) Read(f Field) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if int(f) >= len(b.vals) {
		return 0
	}
	return b.vals[f]
}

// Write sets a field under the board's lock.
func (b *Board) Write(f Field, v int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(f)
	b.vals[f] = v
	b.written[f] = true
}

// Add atomically adds delta to a field and returns the new value.
func (b *Board) Add(f Field, delta int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(f)
	b.vals[f] += delta
	b.written[f] = true
	return b.vals[f]
}

// CompareAndSwap atomically sets field to new if it currently equals
// old, reporting whether the swap happened. Agents use it to elect the
// synchronizer ("the first that gains access will become the
// synchronizer").
func (b *Board) CompareAndSwap(f Field, old, new int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(f)
	if b.vals[f] != old {
		return false
	}
	b.vals[f] = new
	b.written[f] = true
	return true
}

// Update runs fn on the current value of field under the lock and
// stores the result, returning it. It generalizes read-modify-write
// cycles that must be atomic under fair mutual exclusion.
func (b *Board) Update(f Field, fn func(int64) int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(f)
	v := fn(b.vals[f])
	b.vals[f] = v
	b.written[f] = true
	return v
}

// Bits returns the total number of bits the board currently stores:
// for each field ever written, the bits of its value (minimum 1).
// Field names are program text, not stored state, so they do not count
// — matching the paper's accounting, where the whiteboard holds a
// constant number of O(log n)-bit values.
func (b *Board) Bits() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for f, w := range b.written {
		if w {
			total += bitsOf(b.vals[f])
		}
	}
	return total
}

func bitsOf(v int64) int {
	if v < 0 {
		v = -v
	}
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// MaxBits returns the largest per-board bit usage across the store,
// for O(log n) space assertions.
func (s *Store) MaxBits() int {
	max := 0
	for i := range s.boards {
		if b := s.boards[i].Bits(); b > max {
			max = b
		}
	}
	return max
}

// Dump renders a board's written fields deterministically (sorted by
// name), for debugging.
func (b *Board) Dump() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	type kv struct {
		k string
		v int64
	}
	entries := make([]kv, 0, len(b.vals))
	for f, w := range b.written {
		if w {
			entries = append(entries, kv{b.store.FieldName(Field(f)), b.vals[f]})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	out := ""
	for _, e := range entries {
		out += fmt.Sprintf("%s=%d ", e.k, e.v)
	}
	return out
}
