package whiteboard

import (
	"sync"
	"testing"
)

// The election primitive of both the startup CAS race and the
// crash-recovery re-election: under heavy contention exactly one
// claimant may win each epoch field.
func TestCompareAndSwapSingleWinner(t *testing.T) {
	const claimants = 64
	const epochs = 50
	s := NewStore(1)
	for e := 0; e < epochs; e++ {
		field := s.Field("epoch." + string(rune('a'+e%26)) + string(rune('0'+e/26)))
		var wg sync.WaitGroup
		winners := make(chan int64, claimants)
		for i := 0; i < claimants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if s.At(0).CompareAndSwap(field, 0, int64(i)+1) {
					winners <- int64(i) + 1
				}
			}(i)
		}
		wg.Wait()
		close(winners)
		var won []int64
		for w := range winners {
			won = append(won, w)
		}
		if len(won) != 1 {
			t.Fatalf("epoch %d: %d winners, want exactly 1", e, len(won))
		}
		if got := s.At(0).Read(field); got != won[0] {
			t.Fatalf("epoch %d: field holds %d, winner was %d", e, got, won[0])
		}
	}
}

// Concurrent Add calls (the visibility model's agent counters) must
// never lose an increment.
func TestAddUnderContention(t *testing.T) {
	const writers = 32
	const perWriter = 500
	s := NewStore(4)
	agents := s.Field("agents")
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				s.At(j%4).Add(agents, 1)
			}
		}()
	}
	wg.Wait()
	var total int64
	for v := 0; v < 4; v++ {
		total += s.At(v).Read(agents)
	}
	if total != writers*perWriter {
		t.Fatalf("lost increments: %d, want %d", total, writers*perWriter)
	}
}

// Update must be atomic read-modify-write even when the function is
// non-trivial; interleaved lost updates would show as a wrong maximum.
func TestUpdateAtomicity(t *testing.T) {
	const writers = 16
	const perWriter = 200
	s := NewStore(1)
	max := s.Field("max")
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				v := int64(i*perWriter + j)
				s.At(0).Update(max, func(cur int64) int64 {
					if v > cur {
						return v
					}
					return cur
				})
			}
		}(i)
	}
	wg.Wait()
	if got := s.At(0).Read(max); got != writers*perWriter-1 {
		t.Fatalf("max = %d, want %d", got, writers*perWriter-1)
	}
}

// Lease counters as the fault-tolerant runtime uses them: one writer
// heartbeating monotonically per agent, a watchdog reader sampling
// concurrently. Reads must be monotone per field — a regression here
// would let the watchdog see time flowing backwards and fence a live
// agent. Fields are interned up front, as the runtime does in
// initAgents, so the hot loops never touch the interner.
func TestLeaseMonotoneReads(t *testing.T) {
	const agents = 8
	const beats = 2000
	s := NewStore(1)
	lease := make([]Field, agents)
	for a := range lease {
		lease[a] = s.Field("lease." + string(rune('0'+a)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for n := int64(1); n <= beats; n++ {
				s.At(0).Write(lease[a], n)
			}
		}(a)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		last := make([]int64, agents)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for a := 0; a < agents; a++ {
				v := s.At(0).Read(lease[a])
				if v < last[a] {
					panic("lease counter went backwards")
				}
				last[a] = v
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	for a := 0; a < agents; a++ {
		if got := s.At(0).Read(lease[a]); got != beats {
			t.Fatalf("agent %d: final lease %d, want %d", a, got, beats)
		}
	}
}
