// Package isoperimetry derives lower bounds on the team size of any
// monotone contiguous search strategy from vertex-isoperimetric
// inequalities, addressing the open problem the paper closes with
// ("is Ω(n/log n) a lower bound?").
//
// The argument: in a monotone contiguous strategy the decontaminated
// set S only grows, and at every instant each node of S adjacent to a
// contaminated node must be guarded (an unguarded decontaminated node
// with a contaminated neighbour floods immediately). The guarded nodes
// therefore cover the inner vertex boundary of S, so
//
//	team >= max over 1 <= k < n of  min over |S| = k of |∂_in(S)|.
//
// The inner-boundary minimum over arbitrary k-sets is a classical
// quantity. On the hypercube, Harper's theorem says Hamming balls
// minimize it; for k equal to the volume of the ball of radius r the
// minimum inner boundary is the top sphere C(d, r). Taking k = |ball of
// radius d/2| gives
//
//	team >= C(d, floor(d/2)) = Θ(n / sqrt(log n)),
//
// which answers the paper's open problem for monotone strategies: the
// true bound is Θ(n/√log n), not the conjectured Ω(n/log n) — and the
// coordinated Algorithm CLEAN is asymptotically optimal among monotone
// strategies, with a constant-factor gap measured in experiment X7.
//
// For tiny graphs the package also computes the exact bound by brute
// force over all vertex subsets, which tests compare against the
// exhaustive strategy search in internal/strategy/optimal.
package isoperimetry

import (
	"fmt"
	"math/bits"

	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
)

// HypercubeLowerBound returns the Harper-ball lower bound on the team
// size of any monotone contiguous search of H_d: the largest sphere
// C(d, r) realized as the inner boundary of a Hamming ball whose
// volume stays below 2^d. This is C(d, floor(d/2)) for every d >= 1.
func HypercubeLowerBound(d int) int64 {
	if d <= 0 {
		return 1
	}
	best := int64(1)
	volume := int64(0)
	for r := 0; r < d; r++ {
		volume += combin.Binomial(d, r)
		// The ball of radius r (volume counted above) has inner
		// boundary exactly its top sphere C(d, r) once it is a proper
		// subset; the bound is the largest such sphere.
		if volume < combin.Pow2(d) {
			if s := combin.Binomial(d, r); s > best {
				best = s
			}
		}
	}
	return best
}

// InnerBoundary returns the number of vertices of S (given as a
// bitmask over a graph of order <= 30) that have a neighbour outside S.
func InnerBoundary(g graph.Graph, set uint32) int {
	count := 0
	for v := 0; v < g.Order(); v++ {
		if set&(1<<uint(v)) == 0 {
			continue
		}
		for _, w := range g.Neighbours(v) {
			if set&(1<<uint(w)) == 0 {
				count++
				break
			}
		}
	}
	return count
}

// ExactMonotoneLowerBound computes, by exhaustive enumeration of all
// vertex subsets, the exact isoperimetric lower bound
//
//	max_{1 <= k < n} min_{|S| = k} |∂_in(S)|
//
// for graphs of order <= 24. Connectivity of S is NOT required, so the
// result is a valid (possibly loose) lower bound for the contiguous
// problem too.
func ExactMonotoneLowerBound(g graph.Graph) int {
	n := g.Order()
	if n > 24 {
		panic(fmt.Sprintf("isoperimetry: exact bound limited to order 24, got %d", n))
	}
	if n <= 1 {
		return 1
	}
	minBoundary := make([]int, n) // index k-1: min boundary over |S| = k
	for k := range minBoundary {
		minBoundary[k] = n + 1
	}
	for set := uint32(1); set < uint32(1)<<n-1; set++ {
		k := bits.OnesCount32(set)
		b := InnerBoundary(g, set)
		if b < minBoundary[k-1] {
			minBoundary[k-1] = b
		}
	}
	best := 1
	for k := 1; k < n; k++ {
		if minBoundary[k-1] > best && minBoundary[k-1] <= n {
			best = minBoundary[k-1]
		}
	}
	return best
}

// HammingBallBoundaries returns, for each radius r in [0, d), the
// volume of the Hamming ball of radius r and its inner boundary (the
// sphere C(d, r)), the curve behind HypercubeLowerBound. Used by the
// X7 experiment table.
func HammingBallBoundaries(d int) []BallRow {
	rows := make([]BallRow, 0, d)
	volume := int64(0)
	for r := 0; r < d; r++ {
		volume += combin.Binomial(d, r)
		rows = append(rows, BallRow{Radius: r, Volume: volume, Boundary: combin.Binomial(d, r)})
	}
	return rows
}

// BallRow is one radius of the Harper-ball curve.
type BallRow struct {
	Radius   int
	Volume   int64 // |ball(r)|
	Boundary int64 // inner boundary = C(d, r)
}
