package isoperimetry_test

import (
	"fmt"

	"hypersearch/internal/combin"
	"hypersearch/internal/isoperimetry"
)

// The Harper-ball bound answers the paper's open problem for monotone
// strategies: Θ(n/√log n) agents are necessary, and Algorithm CLEAN is
// within a small constant of it.
func ExampleHypercubeLowerBound() {
	for _, d := range []int{6, 10, 14} {
		lb := isoperimetry.HypercubeLowerBound(d)
		clean := combin.CleanTeamSize(d)
		fmt.Printf("d=%2d: bound %5d, CLEAN uses %5d (%.2fx)\n",
			d, lb, clean, float64(clean)/float64(lb))
	}
	// Output:
	// d= 6: bound    20, CLEAN uses    26 (1.30x)
	// d=10: bound   252, CLEAN uses   337 (1.34x)
	// d=14: bound  3432, CLEAN uses  4720 (1.38x)
}
