package isoperimetry

import (
	"testing"
	"testing/quick"

	"hypersearch/internal/strategy/greedy"
	"hypersearch/internal/strategy/levelsweep"
	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/topologies"
)

// Cross-module property: on random connected graphs, the chain
//
//	isoperimetric bound <= exhaustive optimum <= greedy <= level-sweep*
//
// holds (*level-sweep is not always above greedy, but both must be
// feasible and above the bound).
func TestBoundChainOnRandomGraphs(t *testing.T) {
	f := func(rawN, rawExtra uint8, seed int64) bool {
		n := 3 + int(rawN)%10 // keep the exhaustive search cheap
		extra := int(rawExtra) % 6
		g := topologies.RandomConnected(n, extra, seed)
		lb := ExactMonotoneLowerBound(g)
		opt := optimal.MinimalTeam(g, 0, 12, optimal.Limits{})
		if !opt.Feasible {
			return false
		}
		if lb > opt.Team {
			return false
		}
		gr, _, _ := greedy.Run(g, 0)
		if !gr.Ok() || gr.TeamSize < opt.Team {
			return false
		}
		ls, _, _ := levelsweep.Run(g, 0)
		return ls.Ok() && ls.TeamSize >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
