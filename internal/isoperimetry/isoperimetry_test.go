package isoperimetry

import (
	"testing"

	"hypersearch/internal/combin"
	"hypersearch/internal/graph"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/strategy/optimal"
)

func TestHypercubeLowerBoundIsCentralBinomial(t *testing.T) {
	for d := 1; d <= 20; d++ {
		want := combin.Binomial(d, d/2)
		if got := HypercubeLowerBound(d); got != want {
			t.Errorf("d=%d: bound %d, want C(d, d/2) = %d", d, got, want)
		}
	}
	if HypercubeLowerBound(0) != 1 {
		t.Error("degenerate bound wrong")
	}
}

func TestBoundBelowCleanTeamAndAboveNOverLogN(t *testing.T) {
	// The bound must sit below what Algorithm CLEAN uses (it is a
	// lower bound on every monotone strategy) and, from d = 7 on,
	// strictly above n/log n — refuting the availability of an
	// O(n/log n) monotone strategy.
	for d := 2; d <= 20; d++ {
		lb := HypercubeLowerBound(d)
		if lb > combin.CleanTeamSize(d) {
			t.Errorf("d=%d: bound %d exceeds CLEAN's team %d", d, lb, combin.CleanTeamSize(d))
		}
		if int64(1)<<d >= 128 && float64(lb) <= combin.NOverLogN(d) {
			t.Errorf("d=%d: bound %d not above n/log n = %.1f", d, lb, combin.NOverLogN(d))
		}
	}
}

func TestInnerBoundary(t *testing.T) {
	h := hypercube.New(3)
	// The ball of radius 1 around 000: {000, 001, 010, 100}.
	ball := uint32(1 | 1<<1 | 1<<2 | 1<<4)
	if got := InnerBoundary(h, ball); got != 3 {
		t.Errorf("ball boundary = %d, want 3", got)
	}
	// The whole cube has empty boundary.
	if got := InnerBoundary(h, 0xFF); got != 0 {
		t.Errorf("full-set boundary = %d", got)
	}
	// A single vertex is its own boundary.
	if got := InnerBoundary(h, 1); got != 1 {
		t.Errorf("singleton boundary = %d", got)
	}
}

func TestExactBoundSmallHypercubes(t *testing.T) {
	// A finding of this reproduction: the exact isoperimetric bound is
	// TIGHT on small hypercubes — it coincides with the true minimal
	// team from exhaustive strategy search (1, 2, 4, 7 for H_1..H_4).
	cases := []struct {
		d    int
		want int
	}{
		{1, 1}, {2, 2}, {3, 4}, {4, 7},
	}
	for _, c := range cases {
		h := hypercube.New(c.d)
		got := ExactMonotoneLowerBound(h)
		if got != c.want {
			t.Errorf("H_%d exact bound = %d, want %d", c.d, got, c.want)
		}
		// The closed-form Harper bound can never exceed the exact one.
		if hb := HypercubeLowerBound(c.d); int(hb) > got {
			t.Errorf("H_%d: Harper %d above exact %d", c.d, hb, got)
		}
	}
}

func TestExactBoundIsValidAgainstOptimalSearch(t *testing.T) {
	// The isoperimetric bound must never exceed the true minimal team
	// found by exhaustive strategy search.
	graphs := map[string]graph.Graph{
		"H_2": hypercube.New(2),
		"H_3": hypercube.New(3),
		"H_4": hypercube.New(4),
	}
	for name, g := range graphs {
		lb := ExactMonotoneLowerBound(g)
		opt := optimal.MinimalTeam(g, 0, 10, optimal.Limits{})
		if !opt.Feasible {
			t.Fatalf("%s: no feasible team", name)
		}
		if lb > opt.Team {
			t.Errorf("%s: bound %d exceeds optimum %d", name, lb, opt.Team)
		}
		// Observed (and asserted while it holds): the bound is tight on
		// these instances.
		if lb != opt.Team {
			t.Errorf("%s: bound %d no longer tight against optimum %d", name, lb, opt.Team)
		}
	}
}

func TestExactBoundPathAndCycle(t *testing.T) {
	path := graph.NewAdjacency(6)
	for i := 0; i < 5; i++ {
		path.AddEdge(i, i+1)
	}
	if got := ExactMonotoneLowerBound(path); got != 1 {
		t.Errorf("path bound = %d, want 1", got)
	}
	cycle := graph.NewAdjacency(6)
	for i := 0; i < 6; i++ {
		cycle.AddEdge(i, (i+1)%6)
	}
	if got := ExactMonotoneLowerBound(cycle); got != 2 {
		t.Errorf("cycle bound = %d, want 2", got)
	}
}

func TestExactBoundRejectsLargeGraphs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("order-25 graph accepted")
		}
	}()
	ExactMonotoneLowerBound(graph.NewAdjacency(25))
}

func TestHammingBallBoundaries(t *testing.T) {
	rows := HammingBallBoundaries(6)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	var volume int64
	for _, row := range rows {
		volume += row.Boundary // boundary of radius r equals C(d, r), the increment
		if row.Volume != volume {
			t.Errorf("r=%d: volume %d, want %d", row.Radius, row.Volume, volume)
		}
	}
	// The peak boundary is the central binomial.
	peak := int64(0)
	for _, row := range rows {
		if row.Boundary > peak {
			peak = row.Boundary
		}
	}
	if peak != combin.Binomial(6, 3) {
		t.Errorf("peak %d", peak)
	}
}
