package main

import (
	"bufio"
	"bytes"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// buildDaemon compiles hqserved once per test binary.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hqserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSIGTERMDrainExitsZero starts the real daemon process, completes
// a campaign against it, sends SIGTERM, and requires a graceful exit
// with status 0.
func TestSIGTERMDrainExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon exec test skipped in -short")
	}
	bin := buildDaemon(t)
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-journal", journal)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address; everything after feeds a
	// background drainer so the pipe never blocks the process.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving on "); i >= 0 {
			addr = strings.Fields(line[i+len("serving on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address (scan err %v)", sc.Err())
	}
	tail := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		tail <- rest.String()
	}()

	base := "http://" + addr
	body := `{"name":"sigterm","dim_min":2,"dim_max":4,"protocols":["visibility"]}`
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Follow the stream to completion so the SIGTERM lands on an idle
	// daemon with a journaled, completed campaign.
	resp, err = http.Get(base + "/campaigns/c0/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	stream := bufio.NewScanner(resp.Body)
	sawDone := false
	for stream.Scan() {
		if strings.Contains(stream.Text(), `"done"`) {
			sawDone = true
		}
	}
	resp.Body.Close()
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stderr to EOF (the process exiting closes the pipe) before
	// Wait, which would otherwise close the pipe under the reader and
	// drop the final drain lines.
	logs := <-tail
	err = cmd.Wait()
	if err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, logs)
	}
	if !strings.Contains(logs, "drained") {
		t.Fatalf("daemon exited without draining:\n%s", logs)
	}
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal missing or empty after drain: %v", err)
	}
}

// TestSmokeMode runs `hqserved -smoke` — the same entry point `make
// serve-smoke` uses — and requires the cache-hit proof and the journal
// compaction round-trip in its output.
func TestSmokeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon exec test skipped in -short")
	}
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-smoke")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("hqserved -smoke: %v\n%s", err, out.String())
	}
	for _, want := range []string{"streamed live", "cache hit", "compacted journal", "compaction round-trip", "smoke: ok"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}
