// Command hqserved is the sweep service: a long-lived HTTP daemon that
// accepts concurrent campaign requests (a dimension range, a protocol
// set, seeds, and an optional fault plan), executes them on the
// pooled simulation fleet, and streams per-run progress as chunked
// JSONL. Admission is bounded (429 past the queue), campaigns carry
// deadlines and cooperative cancellation, a panicking run fails only
// its own campaign, results are cached by their deterministic key, and
// every accepted/completed campaign is journaled fsync-durably so a
// restarted daemon resumes interrupted work.
//
// Persistence is bounded: the journal auto-compacts (rewritten as its
// snapshot, atomically) once its live fraction drops under
// -compact-threshold, POST /compact forces a rewrite, and the result
// cache is an LRU under -cache-max-entries / -cache-max-bytes —
// eviction only re-simulates, never changes results. The journal is
// flock-guarded: a second daemon on the same -journal path fails at
// startup naming the holder.
//
// Usage:
//
//	hqserved                         # serve on :8080, journal hqserved.jsonl
//	hqserved -addr :9000 -journal /var/lib/hq/journal.jsonl
//	hqserved -compact-threshold 0.5 -cache-max-entries 65536 -cache-max-bytes 268435456
//	hqserved -smoke                  # self-contained end-to-end smoke (CI)
//	hqserved -loadtest               # the robustness load-test, with numbers
//
// Submit with curl:
//
//	curl -s localhost:8080/campaigns -d '{"name":"sweep","dim_min":2,"dim_max":8,"protocols":["visibility","clean"],"seeds":[1,2]}'
//	curl -sN localhost:8080/campaigns/c0/stream     # live JSONL progress
//	curl -s  localhost:8080/campaigns/c0            # snapshot + records
//	curl -sX POST localhost:8080/campaigns/c0/cancel
//
// SIGTERM/SIGINT drains gracefully: in-flight campaigns finish, queued
// ones stay journaled for the next start, then the daemon exits 0.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hypersearch/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		journal  = flag.String("journal", "hqserved.jsonl", "crash-safe campaign journal path")
		active   = flag.Int("max-active", 0, "max concurrently executing campaigns (0 = NumCPU)")
		depth    = flag.Int("queue-depth", 0, "campaign queue depth (0 = 2x max-active)")
		workers  = flag.Int("workers", 0, "sched workers per campaign (0 = auto)")
		maxDim   = flag.Int("max-dim", 12, "largest admissible dimension")
		maxRuns  = flag.Int("max-runs", 4096, "largest admissible campaign expansion")
		deadline = flag.Duration("default-deadline", 0, "deadline for campaigns that set none (0 = unlimited)")
		compact  = flag.Float64("compact-threshold", 0, "auto-compact the journal when its live-record fraction drops to this (0 = default 2/3, negative = manual only)")
		cacheN   = flag.Int("cache-max-entries", 0, "result-cache entry budget, LRU-evicted (0 = unbounded)")
		cacheB   = flag.Int64("cache-max-bytes", 0, "approximate result-cache byte budget, LRU-evicted (0 = unbounded)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		smoke    = flag.Bool("smoke", false, "run the self-contained smoke check and exit")
		loadtest = flag.Bool("loadtest", false, "run the robustness load-test and exit")
	)
	flag.Parse()

	cfg := serve.Config{
		JournalPath:     *journal,
		MaxActive:       *active,
		QueueDepth:      *depth,
		Workers:         *workers,
		MaxDim:          *maxDim,
		MaxRuns:         *maxRuns,
		DefaultDeadline:  *deadline,
		CompactThreshold: *compact,
		CacheMaxEntries:  *cacheN,
		CacheMaxBytes:    *cacheB,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hqserved: "+format+"\n", args...)
		},
	}

	var err error
	switch {
	case *smoke:
		err = runSmoke(cfg)
	case *loadtest:
		err = runLoadTest()
	default:
		err = runServe(cfg, *addr, *drainFor)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqserved:", err)
		os.Exit(1)
	}
}

// runServe is daemon mode: serve until SIGTERM/SIGINT, then drain and
// exit cleanly.
func runServe(cfg serve.Config, addr string, drainFor time.Duration) error {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "hqserved: serving on %s (journal %s)\n", ln.Addr(), cfg.JournalPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hqserved: %v: draining (budget %s)\n", s, drainFor)
	case err := <-httpErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Stop accepting connections first, then drain campaigns: in-flight
	// work finishes, queued campaigns stay journaled for the next start.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	hs.Shutdown(shutdownCtx)
	if err := srv.Drain(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hqserved: drain budget exhausted, campaigns cancelled: %v\n", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "hqserved: drained, bye")
	return nil
}

// runSmoke is `make serve-smoke`: start a daemon on an ephemeral port
// with a scratch journal, submit a small campaign, require streamed
// per-run progress, then resubmit it verbatim and require the rerun to
// be served from the result cache with byte-identical records.
// Finally the compaction round-trip: POST /compact must shrink the
// journal, and a restarted daemon on the compacted journal must serve
// the same campaign from its warmed cache, byte-identical again.
func runSmoke(cfg serve.Config) error {
	dir, err := os.MkdirTemp("", "hqserved-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.JournalPath = filepath.Join(dir, "journal.jsonl")
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	body := `{"name":"smoke","dim_min":2,"dim_max":6,"protocols":["visibility","clean"],"seeds":[1]}`

	first, nruns, err := smokeCampaign(base, body)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: first submission simulated %d runs, streamed live\n", nruns)
	hits0, _ := srv.Cache().Stats()
	second, nruns2, err := smokeCampaign(base, body)
	if err != nil {
		return err
	}
	hits1, _ := srv.Cache().Stats()
	if got := hits1 - hits0; got < int64(nruns2) {
		return fmt.Errorf("smoke: rerun should be cache-served, got %d hits for %d runs", got, nruns2)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("smoke: cache-served records differ from simulated ones:\nfirst:  %s\nsecond: %s", first, second)
	}
	fmt.Printf("smoke: identical resubmission was a cache hit, records byte-identical\n")

	// Compaction round-trip: the two campaigns wrote 4 journal records
	// (2 accepted + 2 completed); the snapshot collapses them to 2.
	resp, err := http.Post(base+"/compact", "", nil)
	if err != nil {
		return err
	}
	var cr serve.CompactResult
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if cr.RecordsAfter >= cr.RecordsBefore {
		return fmt.Errorf("smoke: compaction did not shrink the journal: %d -> %d records", cr.RecordsBefore, cr.RecordsAfter)
	}
	fmt.Printf("smoke: compacted journal %d -> %d records\n", cr.RecordsBefore, cr.RecordsAfter)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}

	// Restart on the compacted journal: replay must warm the cache so
	// the resubmission is pure hits, byte-identical to the original.
	srv2, err := serve.NewServer(cfg)
	if err != nil {
		return fmt.Errorf("smoke: restart on compacted journal: %w", err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	base2 := "http://" + ln2.Addr().String()
	hits2, _ := srv2.Cache().Stats()
	third, nruns3, err := smokeCampaign(base2, body)
	if err != nil {
		return fmt.Errorf("smoke: post-restart submission: %w", err)
	}
	hits3, _ := srv2.Cache().Stats()
	if got := hits3 - hits2; got < int64(nruns3) {
		return fmt.Errorf("smoke: post-restart rerun should hit the compaction-warmed cache, got %d hits for %d runs", got, nruns3)
	}
	if !bytes.Equal(first, third) {
		return fmt.Errorf("smoke: compaction round-trip records differ:\nfirst: %s\nthird: %s", first, third)
	}
	fmt.Printf("smoke: compaction round-trip served %d runs from the restarted journal, byte-identical\n", nruns3)
	hs2.Shutdown(ctx)
	if err := srv2.Drain(ctx); err != nil {
		return err
	}
	if err := srv2.Close(); err != nil {
		return err
	}
	fmt.Println("smoke: ok")
	return nil
}

// smokeCampaign submits one campaign, follows its stream to the done
// event, and returns the canonical JSON of its run records plus the
// streamed run count.
func smokeCampaign(base, body string) ([]byte, int, error) {
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, 0, fmt.Errorf("smoke: submit got HTTP %d", resp.StatusCode)
	}
	var sn serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		return nil, 0, err
	}

	stream, err := http.Get(base + "/campaigns/" + sn.ID + "/stream")
	if err != nil {
		return nil, 0, err
	}
	defer stream.Body.Close()
	runs, done := 0, false
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e serve.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, 0, fmt.Errorf("smoke: bad stream line: %w", err)
		}
		switch e.Type {
		case "run":
			runs++
		case "done":
			if e.Status != serve.StatusCompleted {
				return nil, 0, fmt.Errorf("smoke: campaign %s ended %s (%s)", sn.ID, e.Status, e.Error)
			}
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if !done {
		return nil, 0, errors.New("smoke: stream ended without a done event")
	}
	if runs == 0 {
		return nil, 0, errors.New("smoke: no per-run progress was streamed")
	}

	final, err := http.Get(base + "/campaigns/" + sn.ID)
	if err != nil {
		return nil, 0, err
	}
	defer final.Body.Close()
	var fin serve.Snapshot
	if err := json.NewDecoder(final.Body).Decode(&fin); err != nil {
		return nil, 0, err
	}
	if fin.Done != runs || len(fin.Runs) != runs {
		return nil, 0, fmt.Errorf("smoke: streamed %d runs but snapshot has done=%d records=%d", runs, fin.Done, len(fin.Runs))
	}
	recs, err := json.Marshal(fin.Runs)
	return recs, runs, err
}

// runLoadTest runs the robustness harness and prints its report — the
// source of the EXPERIMENTS.md S1 numbers.
func runLoadTest() error {
	dir, err := os.MkdirTemp("", "hqserved-loadtest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := serve.RunLoadTest(serve.LoadConfig{Dir: dir, MaxDim: 8})
	if rep != nil {
		fmt.Println("loadtest:", rep)
	}
	return err
}
